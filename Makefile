# Convenience targets; `make check` is the tier-1 gate.

.PHONY: all check test bench bench-service sweep clean

all:
	dune build

# Build + full test suite (unit, property, integration, service).
check:
	dune build && dune runtest

test: check

# Paper tables/figures + micro-benchmarks.
bench:
	dune exec bench/main.exe

# Serving-layer benchmark: pool throughput at 1/2/4/8 domains and
# solution-cache hit rate under a Zipf-skewed request mix.
bench-service:
	dune exec bench/service_bench.exe

# Small end-to-end sweep through the service pool.
sweep:
	dune exec bin/locmap_cli.exe -- sweep -w fmm,lu,fft -m 4x4,6x6 -d 4

clean:
	dune clean
