# Convenience targets; `make check` is the tier-1 gate.

.PHONY: all check test bench bench-service bench-resilience chaos sweep clean

all:
	dune build

# Build + full test suite (unit, property, integration, service).
check:
	dune build && dune runtest

test: check

# Paper tables/figures + micro-benchmarks.
bench:
	dune exec bench/main.exe

# Serving-layer benchmark: pool throughput at 1/2/4/8 domains and
# solution-cache hit rate under a Zipf-skewed request mix.
bench-service:
	dune exec bench/service_bench.exe

# Resilience-layer cost: wrapper overhead with injection disabled
# (p50/p99, target < 2%) and degraded-path vs full-pipeline latency.
bench-resilience:
	dune exec bench/resilience_bench.exe

# Chaos gate: the resilience suite (fault matrix, deadlines, crash
# isolation, 1/2/4/8-domain byte-determinism under injection) repeated
# under three fixed seeds that parameterise the injection plans.
chaos:
	dune build test/test_resilience.exe
	@for seed in 1 42 1337; do \
	  echo "== CHAOS_SEED=$$seed =="; \
	  CHAOS_SEED=$$seed dune exec test/test_resilience.exe || exit 1; \
	done

# Small end-to-end sweep through the service pool.
sweep:
	dune exec bin/locmap_cli.exe -- sweep -w fmm,lu,fft -m 4x4,6x6 -d 4

clean:
	dune clean
