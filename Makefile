# Convenience targets; `make check` is the tier-1 gate.

.PHONY: all check test bench bench-service bench-service-smoke \
        bench-resilience bench-resilience-smoke bench-verify \
        bench-analysis bench-analysis-smoke bench-obs bench-obs-smoke \
        bench-loadgen bench-loadgen-smoke bench-sched sched-smoke \
        serve-smoke \
        chaos chaos-net sweep lint fmt fmt-check verify clean

all:
	dune build

# Build + full test suite (unit, property, integration, service).
check:
	dune build && dune runtest

test: check

# Paper tables/figures + micro-benchmarks.
bench:
	dune exec bench/main.exe

# Serving-layer benchmark: pool throughput at 1/2/4/8 domains and
# solution-cache hit rate under a Zipf-skewed request mix. The smoke
# variant is the CI bit-rot gate (tiny inputs, domains 1,2).
bench-service:
	dune exec bench/service_bench.exe

bench-service-smoke:
	dune exec bench/service_bench.exe -- --smoke

# Analysis fast-path benchmark: summary construction per registry
# workload, seed sequential path vs the memoized fast path at 1/2/4/8
# domains; writes BENCH_analysis.json (geomean CME speedup target:
# >= 3x). The smoke variant is the CI bit-rot gate: 3 workloads at
# scale 0.1, and it cross-checks fast = seed summaries byte-for-byte.
bench-analysis:
	dune exec bench/analysis_bench.exe

bench-analysis-smoke:
	dune exec bench/analysis_bench.exe -- --smoke --out /dev/null

# Resilience-layer cost: wrapper overhead with injection disabled
# (p50/p99, target < 2%) and degraded-path vs full-pipeline latency.
bench-resilience:
	dune exec bench/resilience_bench.exe

bench-resilience-smoke:
	dune exec bench/resilience_bench.exe -- --smoke

# Observability cost: the serving path with no obs handles vs
# registered-but-disabled vs enabled metrics+tracer (targets: ~0%
# disabled, < 2% enabled), plus ns/op for the individual instrument
# operations. Exit code reflects only response byte-equality across
# the three variants; timings are informational.
bench-obs:
	dune exec bench/obs_bench.exe

bench-obs-smoke:
	dune exec bench/obs_bench.exe -- --smoke

# Network load benchmark: open-loop Poisson arrivals against a
# self-hosted `lib/net` server — throughput, shed rate, served/shed
# latency percentiles. The smoke variant is the CI bit-rot gate.
bench-loadgen:
	dune exec bench/loadgen_bench.exe

bench-loadgen-smoke:
	dune exec bench/loadgen_bench.exe -- --smoke

# Cluster-scheduler benchmark: fcfs vs EASY backfilling vs
# locality-aware contiguous placement over the 21-workload registry at
# a sweep of offered loads; writes BENCH_sched.json (modelled numbers
# only, byte-stable across domain counts) and exits non-zero unless
# the locality-aware policy beats both baselines on mean stretch or
# deadline-miss rate somewhere while keeping utilization within 5% of
# EASY. The smoke variant is the CI gate: 6 workloads, one load,
# domains 1,2 — it also pins cross-domain schedule byte-determinism.
bench-sched:
	dune exec bench/sched_bench.exe

sched-smoke:
	dune exec bench/sched_bench.exe -- --smoke --out /dev/null

# End-to-end serve smoke: start `locmap serve` on an ephemeral port,
# drive a loadgen burst to completion, then SIGTERM the server in the
# middle of a second burst and require a clean drain — the server
# exits 0 only if every admitted request was answered. The server runs
# as the built binary (not via `dune exec`) so the signal reaches it.
serve-smoke:
	dune build bin/locmap_cli.exe bench/loadgen_bench.exe
	@rm -f .smoke_port; \
	./_build/default/bin/locmap_cli.exe serve --port 0 \
	  --port-file .smoke_port --max-inflight 2 -d 2 & \
	pid=$$!; \
	for i in $$(seq 1 100); do \
	  [ -s .smoke_port ] && break; sleep 0.1; \
	done; \
	if ! [ -s .smoke_port ]; then echo "server never came up"; \
	  kill $$pid 2> /dev/null; exit 1; fi; \
	port=$$(cat .smoke_port); \
	./_build/default/bench/loadgen_bench.exe --smoke --port $$port \
	  || { kill -TERM $$pid; exit 1; }; \
	./_build/default/bench/loadgen_bench.exe --smoke --port $$port \
	  --tolerate-drain & lg=$$!; \
	sleep 0.3; \
	kill -TERM $$pid; \
	wait $$pid; server_status=$$?; \
	wait $$lg; lg_status=$$?; \
	rm -f .smoke_port; \
	if [ $$server_status -ne 0 ]; then \
	  echo "serve-smoke FAILED: server exit $$server_status (lost requests?)"; \
	  exit 1; \
	fi; \
	if [ $$lg_status -ne 0 ]; then \
	  echo "serve-smoke FAILED: drain-tolerant loadgen exit $$lg_status"; \
	  exit 1; \
	fi; \
	echo "serve-smoke ok: clean drain, zero admitted requests lost"

# Chaos gate: the resilience suite (fault matrix, deadlines, crash
# isolation, 1/2/4/8-domain byte-determinism under injection) repeated
# under three fixed seeds that parameterise the injection plans.
chaos:
	dune build test/test_resilience.exe
	@for seed in 1 42 1337; do \
	  echo "== CHAOS_SEED=$$seed =="; \
	  CHAOS_SEED=$$seed dune exec test/test_resilience.exe || exit 1; \
	done

# Socket-chaos gate: the loadgen drives a self-hosted server whose
# socket ops are wrapped in seeded fault injection (short reads/writes,
# trickle, mid-stream resets) across three fixed seeds, with per-client
# quotas and the circuit breaker armed. The loadgen reconnects through
# resets (--tolerate-resets accepts the stranded sends), but the
# server-side zero-loss invariant is never relaxed: any admitted
# request that goes unanswered fails the run.
chaos-net:
	dune build bench/loadgen_bench.exe
	@for seed in 7 42 1337; do \
	  echo "== chaos-net seed=$$seed =="; \
	  ./_build/default/bench/loadgen_bench.exe --smoke \
	    --chaos "seed=$$seed,short=0.3,reset=0.25,reset_bytes=768,trickle=0.1" \
	    --breaker --tolerate-resets || exit 1; \
	done; \
	echo "chaos-net ok: 3 seeds, clean drains, zero admitted requests lost"
sweep:
	dune exec bin/locmap_cli.exe -- sweep -w fmm,lu,fft -m 4x4,6x6 -d 4

# Concurrency lint (see Verify.Ast_lint): parsetree-based lock-order,
# blocking-under-lock and domain-escape analysis, interprocedural over
# a per-run call graph, scanning all of lib/, bin/ and bench/ (the
# old target hand-listed "Pool-reachable" directories and had rotted).
# Findings also land in lint_findings.json — the CI artifact. Then
# the self-test gates: every AST rule must fire on its seeded fixture
# and stay silent on the near-miss negative, and the lexical fallback
# tier must still flag its own seeded fixture.
lint:
	dune build bin/locmap_lint.exe
	./_build/default/bin/locmap_lint.exe --json lint_findings.json
	./_build/default/bin/locmap_lint.exe --selftest test/fixtures/ast_lint
	@if ./_build/default/bin/locmap_lint.exe --no-ast -q \
	    test/fixtures/lint > /dev/null 2>&1; then \
	  echo "lexical self-test FAILED: seeded fixture not flagged"; exit 1; \
	else \
	  echo "lexical self-test ok: seeded fixture flagged"; \
	fi

# Semantic verifier over every bundled workload, plus the negative
# self-test (corrupted artifacts must be rejected).
verify:
	dune exec bin/locmap_cli.exe -- check --selftest
	dune exec bin/locmap_cli.exe -- check --selftest --llc shared -q

# Formatting gate. ocamlformat is optional tooling: skip (successfully)
# when the binary is not on PATH so minimal containers still pass.
fmt-check:
	@if command -v ocamlformat > /dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "fmt-check: ocamlformat not installed, skipping"; \
	fi

fmt:
	@if command -v ocamlformat > /dev/null 2>&1; then \
	  dune build @fmt --auto-promote; \
	else \
	  echo "fmt: ocamlformat not installed, skipping"; \
	fi

# Verification-cost benchmark: Mapper.map with ~verify on vs off
# (target: <= 5% overhead).
bench-verify:
	dune exec bench/verify_bench.exe

clean:
	dune clean
