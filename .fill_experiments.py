# Fill EXPERIMENTS.md placeholders from bench_output.txt (run from /root/repo)
import re, sys

out = open('bench_output.txt').read()

def after(title, marker, n=1):
    """values on the first line starting with `marker` after `title`"""
    idx = out.index(title)
    m = re.search(r'^%s\s+(.*)$' % marker, out[idx:], re.M)
    vals = m.group(1).split()
    return vals[:n]

def fval(title, marker, n=1):
    return ' / '.join(after(title, marker, n))

subs = {}
subs['{{F2P}}'], subs['{{F2S}}'] = after('Figure 2', 'GEOMEAN', 2)
subs['{{F7A}}'] = fval('Figure 7a', 'MEAN')
subs['{{F7N}}'], subs['{{F7T}}'] = after('Figure 7b', 'GEOMEAN', 2)
subs['{{F7O}}'] = fval('Figure 7c', 'MEAN')
subs['{{F8A}}'] = fval('Figure 8a', 'MEAN', 2)
subs['{{F8N}}'], subs['{{F8T}}'] = after('Figure 8b', 'GEOMEAN', 2)
subs['{{F12}}'] = fval('Figure 12', 'GEOMEAN', 2)
g15 = after('Figure 15', 'GEOMEAN', 2)
g7 = subs['{{F7T}}']; g8 = subs['{{F8T}}']
subs['{{F15}}'] = '%s / %s (vs %s / %s realistic)' % (g15[0], g15[1], g7, g8)
mp = re.findall(r'^(private|shared)\s+(-?[\d.]+)\s*$',
                out[out.index('Multiprogrammed'):], re.M)
subs['{{MP}}'] = ' / '.join(v for _, v in mp[:2])
t3 = re.findall(r'([\d.]+)%', out[out.index('Table 3'):out.index('Table 4')])
t3 = [float(x) for x in t3]
subs['{{T3MOVED}}'] = '%.1f-%.1f %%' % (min(t3), max(t3))

doc = open('EXPERIMENTS.md').read()
for k, v in subs.items():
    if k not in doc:
        print('missing placeholder', k); sys.exit(1)
    doc = doc.replace(k, v)
open('EXPERIMENTS.md', 'w').write(doc)
print('filled:', subs)
