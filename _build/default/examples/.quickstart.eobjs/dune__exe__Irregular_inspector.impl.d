examples/irregular_inspector.ml: Array Format Ir Locmap Machine Mem Workloads
