examples/quickstart.mli:
