examples/quickstart.ml: Format Ir Locmap Machine
