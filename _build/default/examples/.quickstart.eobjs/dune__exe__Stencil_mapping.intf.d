examples/stencil_mapping.mli:
