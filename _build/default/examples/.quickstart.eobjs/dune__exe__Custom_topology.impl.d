examples/custom_topology.ml: Ir List Locmap Machine Noc Printf Workloads
