examples/irregular_inspector.mli:
