examples/stencil_mapping.ml: Array Format Ir Locmap Machine Mem Workloads
