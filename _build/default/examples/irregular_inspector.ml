(* Inspector-executor on an irregular application: build a molecular-
   dynamics-style kernel whose access pattern is only known at runtime
   (index arrays), inspect it, and compare the paper's protocol against
   the default mapping — including the inspector's overhead and the
   step-0 execution under the default schedule.

   Run with: dune exec examples/irregular_inspector.exe *)

let () =
  let cfg = Machine.Config.default in

  (* n particles; each interacts with a runtime neighbour list. Each
     timing step advances to a fresh data slice (see Wl_common.sliced),
     modelling steady-state capacity misses. *)
  let n = Workloads.Wl_common.aligned 4096 in
  let degree = 12 in
  let steps = 8 in
  let rng = Workloads.Wl_common.rng ~seed:2024 in
  let nbr =
    Workloads.Wl_common.clustered_table ~rng ~n ~degree ~spread:128
      ~long_range:0.05 ~target:n
  in
  let x = { Ir.Program.name = "x"; elem_size = 8; length = n * steps } in
  let f = { Ir.Program.name = "f"; elem_size = 8; length = n * steps } in
  let i = Ir.Affine.var "i" and d = Ir.Affine.var "d" in
  let slice = Ir.Affine.var ~coeff:n Ir.Trace.step_var in
  let forces =
    Ir.Loop_nest.make ~name:"forces" ~compute_cycles:40
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~inner:[ Ir.Loop_nest.loop "d" ~hi:degree ]
      [
        Ir.Access.read "x" (Ir.Access.direct (Ir.Affine.add i slice));
        Ir.Access.read "x"
          (Ir.Access.Indirect
             {
               table = "nbr";
               pos = Ir.Affine.(add (var ~coeff:degree "i") d);
               offset = slice;
             });
        Ir.Access.write "f" (Ir.Access.direct (Ir.Affine.add i slice));
      ]
  in
  let prog =
    Ir.Program.create ~name:"md" ~kind:Ir.Program.Irregular ~arrays:[ x; f ]
      ~index_tables:[ ("nbr", nbr) ]
      ~time_steps:steps [ forces ]
  in
  let layout = Ir.Layout.allocate ~page_size:cfg.page_size prog in
  let trace = Ir.Trace.create prog layout in

  (* The inspector's view (cold caches, first timing step) vs the
     executor's steady state. *)
  let pt = Mem.Page_table.create ~page_size:cfg.page_size () in
  let amap = Machine.Addr_map.create cfg pt in
  let sets = Ir.Iter_set.partition prog ~fraction:cfg.iter_set_fraction in
  let cold, warm = Locmap.Analysis.observed_summaries cfg amap trace ~sets in
  Format.printf
    "inspector view of set 0:  MAI = %a@.executor steady state:    MAI = \
     %a@.mean inspector-vs-steady error: %.3f@.@."
    Locmap.Affinity.pp
    (Locmap.Summary.mai cold.(0))
    Locmap.Affinity.pp
    (Locmap.Summary.mai warm.(0))
    (Locmap.Analysis.mean_error Locmap.Summary.mai cold warm);

  (* The full protocol: step 0 runs under the default schedule while
     the inspector observes; the remapped executor takes over from
     step 1, paying the modelled overhead once. *)
  let info = Locmap.Mapper.map cfg trace in
  Format.printf
    "inspector overhead: %d cycles; %d sets; %.1f%% moved by balancing@.@."
    info.overhead_cycles (Array.length info.sets)
    (100. *. info.moved_fraction);

  let base =
    Machine.Engine.run_single cfg ~trace
      ~schedule:(Locmap.Mapper.default_schedule cfg trace)
      ()
  in
  let opt = Machine.Engine.run cfg [ Locmap.Mapper.job trace info ] in
  let pct a b = 100. *. (1. -. (float_of_int b /. float_of_int a)) in
  Format.printf
    "default:            %d cycles@.inspector-executor: %d cycles (%d of \
     them overhead)@.network latency %+.1f%%, execution time %+.1f%%@."
    base.stats.cycles opt.stats.cycles opt.stats.overhead_cycles
    (pct base.stats.net_latency opt.stats.net_latency)
    (pct base.stats.cycles opt.stats.cycles)
