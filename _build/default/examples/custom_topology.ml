(* Custom machines: the mapper only needs the physical location
   information exposed through the configuration, so it adapts to other
   mesh sizes, MC placements and region shapes without change
   (Section 3.9). This example compares the default 6x6/corner machine
   with an 8x8 mesh, edge-midpoint MCs, a different region shape and a
   one-sided custom MC placement, on the same workload.

   Run with: dune exec examples/custom_topology.exe *)

let improvement cfg trace =
  let base =
    Machine.Engine.run_single cfg ~trace
      ~schedule:(Locmap.Mapper.default_schedule cfg trace)
      ()
  in
  let info = Locmap.Mapper.map ~measure_error:false cfg trace in
  let opt = Machine.Engine.run cfg [ Locmap.Mapper.job trace info ] in
  let pct a b = 100. *. (1. -. (float_of_int b /. float_of_int a)) in
  ( pct base.stats.net_latency opt.stats.net_latency,
    pct base.stats.cycles opt.stats.cycles )

let () =
  let entry = Workloads.Registry.find "lulesh" in
  let prog = entry.program ~scale:0.5 () in
  let layout =
    Ir.Layout.allocate ~page_size:Machine.Config.default.page_size prog
  in
  let trace = Ir.Trace.create prog layout in

  let machines =
    [
      ("6x6, corner MCs (Table 4)", Machine.Config.default);
      ("8x8, corner MCs", { Machine.Config.default with rows = 8; cols = 8 });
      ( "6x6 torus, edge-midpoint MCs",
        {
          Machine.Config.default with
          topology_kind = Noc.Topology.Torus;
          mc_placement = Noc.Topology.Edge_midpoints;
        } );
      ( "6x6, edge-midpoint MCs",
        {
          Machine.Config.default with
          mc_placement = Noc.Topology.Edge_midpoints;
        } );
      ( "6x6, 3x2-node regions (6 regions)",
        { Machine.Config.default with region_h = 3; region_w = 2 } );
      ( "4x4 mesh, MCs on one side",
        {
          Machine.Config.default with
          rows = 4;
          cols = 4;
          mc_placement =
            Noc.Topology.Custom
              [
                Noc.Coord.make ~row:0 ~col:0;
                Noc.Coord.make ~row:1 ~col:0;
                Noc.Coord.make ~row:2 ~col:0;
                Noc.Coord.make ~row:3 ~col:0;
              ];
        } );
    ]
  in
  Printf.printf "%-36s %18s %16s\n" "machine" "network latency"
    "execution time";
  List.iter
    (fun (label, cfg) ->
      match Machine.Config.validate cfg with
      | Error e -> Printf.printf "%-36s invalid: %s\n" label e
      | Ok () ->
          let net, time = improvement cfg trace in
          Printf.printf "%-36s %+17.1f%% %+15.1f%%\n" label net time)
    machines
