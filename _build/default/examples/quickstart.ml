(* Quickstart: map a small parallel kernel onto the default 6x6
   manycore, with and without location awareness, and compare.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Describe the machine (Table 4 defaults: 6x6 mesh, corner MCs,
     private 512 KB LLC banks). *)
  let cfg = Machine.Config.default in
  Format.printf "Machine:@.%a@.@." Machine.Config.pp cfg;

  (* 2. Describe the program: a vector kernel A[i] = B[i] + C[i] + D[i]
     (the paper's Figure 5), 40k parallel iterations, run twice. *)
  let n = 40_960 in  (* 160 pages/array: B,C,D,A of iteration i share one MC *)
  let arr name = { Ir.Program.name; elem_size = 8; length = n } in
  let i = Ir.Affine.var "i" in
  let nest =
    Ir.Loop_nest.make ~name:"vadd" ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:24
      [
        Ir.Access.read "b" (Ir.Access.direct i);
        Ir.Access.read "c" (Ir.Access.direct i);
        Ir.Access.read "d" (Ir.Access.direct i);
        Ir.Access.write "a" (Ir.Access.direct i);
      ]
  in
  let prog =
    Ir.Program.create ~name:"quickstart" ~kind:Ir.Program.Regular
      ~arrays:[ arr "a"; arr "b"; arr "c"; arr "d" ]
      ~time_steps:2 [ nest ]
  in

  (* 3. Lay the arrays out in memory and compile the access streams. *)
  let layout = Ir.Layout.allocate ~page_size:cfg.page_size prog in
  let trace = Ir.Trace.create prog layout in

  (* 4. Run the round-robin default mapping... *)
  let baseline = Locmap.Mapper.default_schedule cfg trace in
  let base =
    Machine.Engine.run_single cfg ~trace ~schedule:baseline ()
  in

  (* 5. ...and the paper's location-aware mapping. *)
  let info = Locmap.Mapper.map cfg trace in
  let opt = Machine.Engine.run cfg [ Locmap.Mapper.job trace info ] in

  let pct a b = 100. *. (1. -. (float_of_int b /. float_of_int a)) in
  Format.printf "Default mapping:@.%a@.@." Machine.Stats.pp base.stats;
  Format.printf "Location-aware mapping:@.%a@.@." Machine.Stats.pp opt.stats;
  Format.printf
    "MAI estimation error: %.3f@.Sets moved by balancing: %.1f%%@.@."
    info.mai_error
    (100. *. info.moved_fraction);
  Format.printf "Network latency reduction: %.1f%%@."
    (pct base.stats.net_latency opt.stats.net_latency);
  Format.printf "Execution time reduction:  %.1f%%@."
    (pct base.stats.cycles opt.stats.cycles)
