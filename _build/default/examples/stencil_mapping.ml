(* Stencil mapping: walk through the paper's machinery on a regular
   2-D heat-diffusion kernel — CME-based affinity estimation, MAC
   tables, Algorithm 1 and load balancing — and inspect the artefacts
   at each stage before simulating.

   Run with: dune exec examples/stencil_mapping.exe *)

let pitch = Workloads.Wl_common.pitch

let () =
  let cfg = Machine.Config.default in

  (* A 2-D heat-diffusion step over a padded grid: row-major sweep and
     a column relaxation, like the ADI codes in the suite. *)
  let rows = 4 in
  let n = pitch * rows in
  let grid = { Ir.Program.name = "grid"; elem_size = 8; length = n + pitch } in
  let next = { Ir.Program.name = "next"; elem_size = 8; length = n + pitch } in
  let i = Ir.Affine.var "i" in
  let row_sweep =
    Ir.Loop_nest.make ~name:"row_sweep" ~compute_cycles:20
      ~par:(Ir.Loop_nest.loop "i" ~hi:(n - 2))
      [
        Ir.Access.read "grid" (Ir.Access.direct i);
        Ir.Access.read "grid" (Ir.Access.direct (Ir.Affine.add i (Ir.Affine.const 1)));
        Ir.Access.read "grid" (Ir.Access.direct (Ir.Affine.add i (Ir.Affine.const 2)));
        Ir.Access.write "next" (Ir.Access.direct (Ir.Affine.add i (Ir.Affine.const 1)));
      ]
  in
  let at2 = Ir.Affine.add i (Ir.Affine.var ~coeff:pitch "j") in
  let column_relax =
    Ir.Loop_nest.make ~name:"column_relax" ~compute_cycles:16
      ~par:(Ir.Loop_nest.loop "i" ~hi:pitch)
      ~inner:[ Ir.Loop_nest.loop "j" ~hi:rows ]
      [
        Ir.Access.read "next" (Ir.Access.direct at2);
        Ir.Access.write "grid" (Ir.Access.direct at2);
      ]
  in
  let prog =
    Ir.Program.create ~name:"heat2d" ~kind:Ir.Program.Regular
      ~arrays:[ grid; next ] ~time_steps:2
      [ row_sweep; column_relax ]
  in
  let layout = Ir.Layout.allocate ~page_size:cfg.page_size prog in
  let trace = Ir.Trace.create prog layout in

  (* 1. The architecture information the compiler sees: MAC per region. *)
  let regions = Locmap.Region.create cfg in
  Format.printf "The compiler's view of the machine (%a):@." Locmap.Region.pp
    regions;
  for r = 0 to Locmap.Region.count regions - 1 do
    Format.printf "  MAC(R%d) = %a@." (r + 1) Locmap.Affinity.pp
      (Locmap.Affinity.mac cfg regions r)
  done;

  (* 2. Compile-time summaries via CME, and their affinity vectors. *)
  let pt = Mem.Page_table.create ~page_size:cfg.page_size () in
  let amap = Machine.Addr_map.create cfg pt in
  let sets = Ir.Iter_set.partition prog ~fraction:cfg.iter_set_fraction in
  let summaries = Locmap.Analysis.cme_summaries cfg amap trace ~sets in
  Format.printf "@.%d iteration sets; CME-estimated MAI of the first four:@."
    (Array.length sets);
  Array.iteri
    (fun k s ->
      if k < 4 then
        Format.printf "  set %d: MAI = %a@." k Locmap.Affinity.pp
          (Locmap.Summary.mai s))
    summaries;

  (* 3. Algorithm 1: best region per set, then location-aware balance. *)
  let tables = Locmap.Assign.create cfg regions in
  let pre = Locmap.Assign.assign tables summaries in
  let post =
    Locmap.Balance.balance ~regions
      ~cost:(fun set r -> Locmap.Assign.error tables summaries.(set) ~region:r)
      ~region_of_set:pre
  in
  let show label a =
    let counts = Locmap.Balance.counts ~num_regions:9 a in
    Format.printf "%s sets per region:" label;
    Array.iter (fun c -> Format.printf " %3d" c) counts;
    Format.printf "@."
  in
  Format.printf "@.";
  show "before balancing" pre;
  show "after balancing " post;

  (* 4. The full pipeline and the simulated outcome. *)
  let info = Locmap.Mapper.map cfg trace in
  let base =
    Machine.Engine.run_single cfg ~trace
      ~schedule:(Locmap.Mapper.default_schedule cfg trace)
      ()
  in
  let opt = Machine.Engine.run cfg [ Locmap.Mapper.job trace info ] in
  let pct a b = 100. *. (1. -. (float_of_int b /. float_of_int a)) in
  Format.printf
    "@.simulated: network latency %+.1f%%, execution time %+.1f%% (MAI error \
     %.3f, moved %.1f%%)@."
    (pct base.stats.net_latency opt.stats.net_latency)
    (pct base.stats.cycles opt.stats.cycles)
    info.mai_error
    (100. *. info.moved_fraction)
