(** Hardware/OS-based application-to-core placement, after Das et
    al. [16] (the paper's Figure 14 comparison).

    The scheme ranks execution contexts by memory intensity and places
    the most intensive ones on the cores closest to *any* memory
    controller. Following the paper's adaptation, each thread of the
    multi-threaded application (the default round-robin mapping's
    per-core share of iteration sets) is treated as if it were a
    separate application. The scheme is distance-to-memory aware but
    not *location* aware: it ignores which specific MC a thread's data
    lives on, and ignores the L2-bank-to-MC leg entirely — exactly the
    two deficiencies the paper demonstrates. *)

val schedule :
  ?fraction:float -> Machine.Config.t -> Ir.Trace.t -> Machine.Schedule.t
(** Iteration sets keep their default thread grouping; threads are
    permuted onto cores by the intensity/proximity ranking. *)

val core_ranking : Machine.Config.t -> int array
(** Cores sorted by ascending distance to their nearest MC (the
    placement order the scheme fills). Exposed for tests. *)
