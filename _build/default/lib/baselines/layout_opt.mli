(** Data-layout optimisation, after Ding et al. [22] (the paper's
    Figure 13 comparison, "DO").

    The scheme keeps the computation mapping fixed and instead picks,
    for each array, a single program-wide layout: a cyclic page
    *rotation* that shifts which MC serves each of the array's pages.
    The rotation minimising the total core-to-MC distance of the
    array's accesses (observed under the given schedule) is applied
    through the page table. One layout per array is the scheme's
    inherent limitation — different nests may want different rotations
    — which is why the paper's computation mapping composes with and
    usually beats it. *)

val optimize :
  Machine.Config.t ->
  Ir.Trace.t ->
  schedule:Machine.Schedule.t ->
  Mem.Page_table.t ->
  unit
(** Installs the chosen per-array page remappings into the page table.
    Call before creating the {!Machine.Addr_map} used for simulation or
    mapping. *)

val best_rotation :
  Machine.Config.t ->
  Ir.Trace.t ->
  schedule:Machine.Schedule.t ->
  array_name:string ->
  int
(** The rotation (in pages, [0 .. num_mcs-1]) [optimize] would pick for
    one array. Exposed for tests. *)
