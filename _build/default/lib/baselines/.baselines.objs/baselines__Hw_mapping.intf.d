lib/baselines/hw_mapping.mli: Ir Machine
