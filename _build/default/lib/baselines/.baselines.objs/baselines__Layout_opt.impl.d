lib/baselines/layout_opt.ml: Array Ir List Machine Mem Noc
