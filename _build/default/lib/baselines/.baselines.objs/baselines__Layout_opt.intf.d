lib/baselines/layout_opt.mli: Ir Machine Mem
