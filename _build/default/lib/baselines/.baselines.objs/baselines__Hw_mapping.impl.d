lib/baselines/hw_mapping.ml: Array Float Fun Int Ir Locmap Machine Mem Noc Option
