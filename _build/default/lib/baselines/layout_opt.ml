(* Per-(page, core) access weights for one array, observed by walking
   the schedule's traffic. *)
let page_weights (cfg : Machine.Config.t) trace ~(schedule : Machine.Schedule.t)
    ~base_page ~pages =
  let num_cores = Machine.Config.num_cores cfg in
  let w = Array.make_matrix pages num_cores 0 in
  Array.iteri
    (fun k (s : Ir.Iter_set.t) ->
      let core = schedule.core_of.(k) in
      Ir.Trace.iter_range ~step:0 trace ~nest:s.nest ~lo:s.lo ~hi:s.hi
        (fun ~addr ~write:_ ->
          let page = addr / cfg.Machine.Config.page_size in
          let p = page - base_page in
          if p >= 0 && p < pages then w.(p).(core) <- w.(p).(core) + 1))
    schedule.sets;
  w

let rotation_cost (cfg : Machine.Config.t) ~w ~base_page ~pages rot =
  let topo = Machine.Config.topology cfg in
  let num_mcs = Noc.Topology.num_mcs topo in
  let num_cores = Machine.Config.num_cores cfg in
  (* Distance from each core to each MC, precomputed. *)
  let dist =
    Array.init num_cores (fun core ->
        let c = Noc.Topology.coord_of_node topo core in
        Array.init num_mcs (Noc.Topology.distance_to_mc topo c))
  in
  let total = ref 0 in
  for p = 0 to pages - 1 do
    let ppage = base_page + ((p + rot) mod pages) in
    let mc = ppage mod num_mcs in
    for core = 0 to num_cores - 1 do
      if w.(p).(core) > 0 then
        total := !total + (w.(p).(core) * dist.(core).(mc))
    done
  done;
  !total

let best_rotation_of (cfg : Machine.Config.t) trace ~schedule ~base_page ~pages
    =
  let num_mcs = Machine.Config.num_mcs cfg in
  let w = page_weights cfg trace ~schedule ~base_page ~pages in
  let best = ref 0 and best_cost = ref max_int in
  for rot = 0 to min (num_mcs - 1) (pages - 1) do
    let cost = rotation_cost cfg ~w ~base_page ~pages rot in
    if cost < !best_cost then begin
      best_cost := cost;
      best := rot
    end
  done;
  !best

let array_pages (cfg : Machine.Config.t) trace name =
  let layout = Ir.Trace.layout trace in
  let base = Ir.Layout.base layout name in
  let extent = Ir.Layout.extent_bytes layout name in
  let ps = cfg.Machine.Config.page_size in
  (base / ps, extent / ps)

let best_rotation cfg trace ~schedule ~array_name =
  let base_page, pages = array_pages cfg trace array_name in
  if pages = 0 then 0
  else best_rotation_of cfg trace ~schedule ~base_page ~pages

let optimize (cfg : Machine.Config.t) trace ~schedule pt =
  let layout = Ir.Trace.layout trace in
  List.iter
    (fun name ->
      let base_page, pages = array_pages cfg trace name in
      if pages > 1 then begin
        let rot =
          best_rotation_of cfg trace ~schedule ~base_page ~pages
        in
        if rot <> 0 then
          for p = 0 to pages - 1 do
            Mem.Page_table.remap_page pt ~vpage:(base_page + p)
              ~ppage:(base_page + ((p + rot) mod pages))
          done
      end)
    (Ir.Layout.arrays layout)
