let core_ranking (cfg : Machine.Config.t) =
  let topo = Machine.Config.topology cfg in
  let n = Noc.Topology.num_nodes topo in
  let dist_to_nearest_mc node =
    let c = Noc.Topology.coord_of_node topo node in
    let best = ref max_int in
    for k = 0 to Noc.Topology.num_mcs topo - 1 do
      best := min !best (Noc.Topology.distance_to_mc topo c k)
    done;
    !best
  in
  let cores = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match Int.compare (dist_to_nearest_mc a) (dist_to_nearest_mc b) with
      | 0 -> Int.compare a b
      | c -> c)
    cores;
  cores

let schedule ?fraction (cfg : Machine.Config.t) trace =
  let fraction =
    Option.value fraction ~default:cfg.Machine.Config.iter_set_fraction
  in
  let prog = Ir.Trace.program trace in
  let sets = Ir.Iter_set.partition prog ~fraction in
  let num_cores = Machine.Config.num_cores cfg in
  let pt = Mem.Page_table.create ~page_size:cfg.Machine.Config.page_size () in
  let amap = Machine.Addr_map.create cfg pt in
  (* Observe per-thread memory intensity under the default grouping
     (thread t owns sets t, t+P, t+2P, ...). *)
  let cold, _ = Locmap.Analysis.observed_summaries cfg amap trace ~sets in
  let misses = Array.make num_cores 0 in
  let accesses = Array.make num_cores 0 in
  Array.iteri
    (fun k (s : Locmap.Summary.t) ->
      let t = k mod num_cores in
      misses.(t) <- misses.(t) + s.llc_misses;
      accesses.(t) <- accesses.(t) + Locmap.Summary.accesses s)
    cold;
  let intensity t =
    if accesses.(t) = 0 then 0.
    else float_of_int misses.(t) /. float_of_int accesses.(t)
  in
  let threads = Array.init num_cores Fun.id in
  Array.sort
    (fun a b ->
      match Float.compare (intensity b) (intensity a) with
      | 0 -> Int.compare a b
      | c -> c)
    threads;
  let ranking = core_ranking cfg in
  (* Most memory-intensive thread -> core nearest memory. *)
  let core_of_thread = Array.make num_cores 0 in
  Array.iteri (fun rank t -> core_of_thread.(t) <- ranking.(rank)) threads;
  let core_of =
    Array.init (Array.length sets) (fun k -> core_of_thread.(k mod num_cores))
  in
  Machine.Schedule.make ~sets ~core_of
