type t = {
  page_size : int;
  remap : (int, int) Hashtbl.t;  (* vpage -> ppage *)
  domains : (int, int) Hashtbl.t;  (* vpage -> domain *)
}

let create ~page_size () =
  if page_size <= 0 then invalid_arg "Page_table.create: bad page size";
  { page_size; remap = Hashtbl.create 4096; domains = Hashtbl.create 64 }

let page_size t = t.page_size

let mapped_page t ~vpage =
  match Hashtbl.find_opt t.remap vpage with
  | Some p -> p
  | None -> vpage

let translate t va =
  if va < 0 then invalid_arg "Page_table.translate: negative address";
  let vpage = va / t.page_size in
  let off = va mod t.page_size in
  (mapped_page t ~vpage * t.page_size) + off

let remap_page t ~vpage ~ppage =
  if vpage < 0 || ppage < 0 then
    invalid_arg "Page_table.remap_page: negative page";
  if vpage = ppage then Hashtbl.remove t.remap vpage
  else Hashtbl.replace t.remap vpage ppage

let set_domain t ~vpage d = Hashtbl.replace t.domains vpage d

let domain t ~addr ~default =
  match Hashtbl.find_opt t.domains (addr / t.page_size) with
  | Some d -> d
  | None -> default

let remapped_count t = Hashtbl.length t.remap
