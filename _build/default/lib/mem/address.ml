let page_of ~page_size addr =
  if page_size <= 0 then invalid_arg "Address.page_of: bad page size";
  addr / page_size

let line_of ~line_size addr =
  if line_size <= 0 then invalid_arg "Address.line_of: bad line size";
  addr / line_size

let line_addr ~line_size addr = addr - (addr mod line_size)

let align_up n ~to_ =
  if to_ <= 0 then invalid_arg "Address.align_up: bad alignment";
  (n + to_ - 1) / to_ * to_

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* splitmix64-style finalizer, truncated to OCaml's int. *)
let mix x =
  let x = x * 0x9E3779B97F4A7C1 in
  let x = x lxor (x lsr 27) in
  let x = x * 0x3C79AC492BA7B65 in
  let x = x lxor (x lsr 31) in
  x land max_int
