lib/mem/address.mli:
