lib/mem/distribution.mli: Format
