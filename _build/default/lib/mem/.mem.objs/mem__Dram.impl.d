lib/mem/dram.ml: Address Array Format
