lib/mem/dram.mli: Format
