lib/mem/page_table.ml: Hashtbl
