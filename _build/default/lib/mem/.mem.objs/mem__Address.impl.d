lib/mem/address.ml:
