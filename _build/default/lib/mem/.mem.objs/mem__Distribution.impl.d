lib/mem/distribution.ml: Address Format
