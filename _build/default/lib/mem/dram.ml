type kind =
  | Ddr3_1333
  | Ddr4_2400

type timing = {
  t_cas : int;  (** column access, row already open *)
  t_rcd : int;  (** activate (row open) *)
  t_rp : int;  (** precharge (row close) *)
  burst : int;  (** channel occupancy of one line transfer *)
  num_banks : int;
}

(* Core cycles at 1 GHz. DDR4 trades similar absolute latencies for a
   faster channel and twice the banks. *)
let timing_of = function
  | Ddr3_1333 -> { t_cas = 14; t_rcd = 14; t_rp = 14; burst = 6; num_banks = 8 }
  | Ddr4_2400 ->
      { t_cas = 14; t_rcd = 14; t_rp = 14; burst = 3; num_banks = 16 }

(* FR-FCFS approximation: a real controller reorders its request
   buffer to batch same-row requests, so interleaved streams from many
   cores still mostly hit the row buffer. We model that effect as a
   small window of "effectively open" recent rows per bank. *)
let open_window = 4

type t = {
  k : kind;
  tm : timing;
  row_buffer : int;
  open_rows : int array array;  (* per bank, LRU window; -1 = closed *)
  bank_free : int array;
  mutable channel_free : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(kind = Ddr3_1333) ~row_buffer () =
  if row_buffer <= 0 then invalid_arg "Dram.create: bad row-buffer size";
  let tm = timing_of kind in
  {
    k = kind;
    tm;
    row_buffer;
    open_rows = Array.init tm.num_banks (fun _ -> Array.make open_window (-1));
    bank_free = Array.make tm.num_banks 0;
    channel_free = 0;
    hits = 0;
    misses = 0;
  }

let kind t = t.k

let service t ~now ~addr =
  if addr < 0 then invalid_arg "Dram.service: negative address";
  let row_id = addr / t.row_buffer in
  (* Bank-address hashing (standard in modern controllers): page-level
     MC interleaving leaves each MC a strided row-id space, and a plain
     modulo would concentrate it onto a fraction of the banks. *)
  let bank = Address.mix row_id mod t.tm.num_banks in
  let row = row_id in
  let start = max now t.bank_free.(bank) in
  let window = t.open_rows.(bank) in
  let pos = ref (-1) in
  for k = 0 to open_window - 1 do
    if window.(k) = row then pos := k
  done;
  let access_lat =
    if !pos >= 0 then begin
      (* Move the row to the window front (most recently batched). *)
      for k = !pos downto 1 do
        window.(k) <- window.(k - 1)
      done;
      window.(0) <- row;
      t.hits <- t.hits + 1;
      t.tm.t_cas
    end
    else begin
      t.misses <- t.misses + 1;
      let close = if window.(open_window - 1) >= 0 then t.tm.t_rp else 0 in
      for k = open_window - 1 downto 1 do
        window.(k) <- window.(k - 1)
      done;
      window.(0) <- row;
      close + t.tm.t_rcd + t.tm.t_cas
    end
  in
  (* The data burst serialises on the shared channel. *)
  let data_start = max (start + access_lat) t.channel_free in
  let finish = data_start + t.tm.burst in
  t.bank_free.(bank) <- finish;
  t.channel_free <- finish;
  finish

let reset t =
  Array.iter (fun w -> Array.fill w 0 open_window (-1)) t.open_rows;
  Array.fill t.bank_free 0 (Array.length t.bank_free) 0;
  t.channel_free <- 0;
  t.hits <- 0;
  t.misses <- 0

let row_hits t = t.hits
let row_misses t = t.misses
let accesses t = t.hits + t.misses

let row_hit_rate t =
  let n = accesses t in
  if n = 0 then 0. else float_of_int t.hits /. float_of_int n

let pp_kind ppf = function
  | Ddr3_1333 -> Format.pp_print_string ppf "DDR3-1333"
  | Ddr4_2400 -> Format.pp_print_string ppf "DDR4-2400"
