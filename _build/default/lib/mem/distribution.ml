type granularity =
  | Page_grain
  | Line_grain

type cluster_mode =
  | Mesh_default
  | All_to_all
  | Quadrant
  | Snc4

type t = {
  mem_gran : granularity;
  llc_gran : granularity;
  cluster : cluster_mode;
}

let default =
  { mem_gran = Page_grain; llc_gran = Line_grain; cluster = Mesh_default }

let interleave g ~page_size ~line_size ~count addr =
  if count <= 0 then invalid_arg "Distribution.interleave: bad count";
  let unit_size =
    match g with
    | Page_grain -> page_size
    | Line_grain -> line_size
  in
  addr / unit_size mod count

let hashed ~page_size ~count addr =
  if count <= 0 then invalid_arg "Distribution.hashed: bad count";
  Address.mix (addr / page_size) mod count

let pp_granularity ppf = function
  | Page_grain -> Format.pp_print_string ppf "page"
  | Line_grain -> Format.pp_print_string ppf "cache line"

let pp_cluster ppf = function
  | Mesh_default -> Format.pp_print_string ppf "mesh-default"
  | All_to_all -> Format.pp_print_string ppf "all-to-all"
  | Quadrant -> Format.pp_print_string ppf "quadrant"
  | Snc4 -> Format.pp_print_string ppf "SNC-4"

let pp ppf t =
  Format.fprintf ppf "mem:%a llc:%a cluster:%a" pp_granularity t.mem_gran
    pp_granularity t.llc_gran pp_cluster t.cluster
