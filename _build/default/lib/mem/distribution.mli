(** Data-distribution (address-interleaving) policies.

    Two independent choices govern where a physical address lives
    (paper, "Default Data Mapping" and Figure 11):
    - across *memory controllers*: round-robin at page or cache-line
      granularity;
    - across *shared-LLC banks*: round-robin at cache-line or page
      granularity.

    The KNL cluster modes (Figure 16) are additional policies layered on
    top: [All_to_all] hashes addresses uniformly over banks and MCs,
    [Quadrant] keeps the bank-to-MC leg inside one mesh quadrant, and
    [Snc4] confines a page's bank and MC to the quadrant that owns the
    page. *)

type granularity =
  | Page_grain
  | Line_grain

type cluster_mode =
  | Mesh_default  (** plain round-robin interleaving (the 6x6 default) *)
  | All_to_all  (** uniform hashing, no locality relation *)
  | Quadrant  (** bank chooses the MC of its own quadrant *)
  | Snc4  (** page domain confines both bank and MC to a quadrant *)

type t = {
  mem_gran : granularity;  (** MC interleaving granularity *)
  llc_gran : granularity;  (** shared-LLC bank interleaving granularity *)
  cluster : cluster_mode;
}

val default : t
(** Page-granularity MC round-robin + line-granularity bank round-robin
    on the plain mesh — the paper's Table 4 defaults. *)

val interleave :
  granularity -> page_size:int -> line_size:int -> count:int -> int -> int
(** [interleave g ~page_size ~line_size ~count addr] is the round-robin
    destination index of [addr] among [count] targets at granularity
    [g]. *)

val hashed : page_size:int -> count:int -> int -> int
(** Uniform hashing of [addr]'s page over [count] targets
    (All_to_all). *)

val pp : Format.formatter -> t -> unit

val pp_granularity : Format.formatter -> granularity -> unit

val pp_cluster : Format.formatter -> cluster_mode -> unit
