(** Virtual-to-physical translation with preserved interleaving bits.

    The paper's compiler needs to know, from a *virtual* address, which
    MC and LLC bank a datum maps to. It obtains this through an OS call
    that pins the translation so the MC/bank-selecting bits of the
    virtual address survive into the physical address (Section 4). We
    model that contract directly: translation is the identity unless a
    page has been explicitly remapped, and remapping is the mechanism
    the data-layout-optimisation baseline uses to move pages between
    MCs.

    The table also records an optional NUMA *domain* per page, used by
    the KNL SNC-4 cluster mode (domain = quadrant owning the page). *)

type t

val create : page_size:int -> unit -> t
(** Fresh identity table. Raises [Invalid_argument] on a non-positive
    page size. *)

val page_size : t -> int

val translate : t -> int -> int
(** [translate t va] is the physical address of [va]. Identity unless
    [va]'s page was remapped with {!remap_page}. *)

val remap_page : t -> vpage:int -> ppage:int -> unit
(** Redirects virtual page [vpage] to physical page [ppage]. *)

val mapped_page : t -> vpage:int -> int
(** Physical page currently backing [vpage] (identity by default). *)

val set_domain : t -> vpage:int -> int -> unit
(** Assigns a NUMA domain (e.g. KNL quadrant) to a page. *)

val domain : t -> addr:int -> default:int -> int
(** Domain of the page containing the *virtual* address [addr];
    [default] when unset. *)

val remapped_count : t -> int
(** Number of pages with a non-identity mapping. *)
