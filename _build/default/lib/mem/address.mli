(** Physical/virtual address arithmetic.

    Addresses are byte offsets represented as non-negative [int]s. The
    helpers here centralise the page/line index computations the rest of
    the system relies on (paper, Section 2: the low bits of a physical
    address give the byte offset in a line, the next group selects the
    LLC bank, and page-level bits select the memory controller). *)

val page_of : page_size:int -> int -> int
(** [page_of ~page_size addr] is the page index containing [addr]. *)

val line_of : line_size:int -> int -> int
(** [line_of ~line_size addr] is the cache-line index containing
    [addr]. *)

val line_addr : line_size:int -> int -> int
(** [line_addr ~line_size addr] is [addr] rounded down to its line
    base. *)

val align_up : int -> to_:int -> int
(** [align_up n ~to_] rounds [n] up to the next multiple of [to_]. *)

val is_pow2 : int -> bool

val mix : int -> int
(** A deterministic avalanche hash over an address-sized int, used by
    hashing interleaving modes (KNL all-to-all). *)
