lib/cache/llc.mli: Format
