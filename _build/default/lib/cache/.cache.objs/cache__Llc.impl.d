lib/cache/llc.ml: Format Printf String
