type org =
  | Private
  | Shared

let equal a b =
  match (a, b) with
  | Private, Private | Shared, Shared -> true
  | Private, Shared | Shared, Private -> false

let to_string = function
  | Private -> "private"
  | Shared -> "shared"

let pp ppf o = Format.pp_print_string ppf (to_string o)

let of_string s =
  match String.lowercase_ascii s with
  | "private" -> Ok Private
  | "shared" -> Ok Shared
  | other -> Error (Printf.sprintf "unknown LLC organisation %S" other)
