(** Last-level cache organisations.

    The paper evaluates two LLC organisations (Section 2):
    - [Private]: each node's L2 bank caches only its own core's data; an
      L1 miss probes the local bank with no network traversal, and a
      bank miss goes over the NoC to an MC.
    - [Shared]: S-NUCA — every line has a statically determined home
      bank (address-interleaved), so even LLC hits may cross the
      network; a bank miss sends a request from the *bank* (not the
      core) to the MC. *)

type org =
  | Private
  | Shared

val equal : org -> org -> bool

val pp : Format.formatter -> org -> unit

val to_string : org -> string

val of_string : string -> (org, string) result
(** Accepts ["private"] and ["shared"] (case-insensitive). *)
