type t = {
  line_size : int;
  sets : int;
  assoc : int;
  tags : int array;  (* sets * assoc; -1 = invalid; tag = line index *)
  dirty : Bytes.t;
  stamp : int array;  (* LRU timestamps *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

type result =
  | Hit
  | Miss of {
      victim_line_addr : int;
      victim_dirty : bool;
    }

let create ~size ~assoc ~line_size () =
  if size <= 0 || assoc <= 0 || line_size <= 0 then
    invalid_arg "Sa_cache.create: non-positive geometry";
  let lines = size / line_size in
  if lines = 0 || lines mod assoc <> 0 then
    invalid_arg "Sa_cache.create: size not divisible into sets";
  let sets = lines / assoc in
  {
    line_size;
    sets;
    assoc;
    tags = Array.make lines (-1);
    dirty = Bytes.make lines '\000';
    stamp = Array.make lines 0;
    clock = 0;
    hits = 0;
    misses = 0;
    writebacks = 0;
  }

let access t ~addr ~write =
  if addr < 0 then invalid_arg "Sa_cache.access: negative address";
  let line = addr / t.line_size in
  let set = line mod t.sets in
  let base = set * t.assoc in
  t.clock <- t.clock + 1;
  (* Search the set for a hit, remembering the LRU (or an invalid)
     way as the victim. *)
  let found = ref (-1) in
  let victim = ref (-1) in
  let oldest = ref max_int in
  let invalid = ref (-1) in
  for w = base to base + t.assoc - 1 do
    if t.tags.(w) = line then found := w
    else if t.tags.(w) = -1 then invalid := w
    else if t.stamp.(w) < !oldest then begin
      oldest := t.stamp.(w);
      victim := w
    end
  done;
  let victim = if !invalid >= 0 then invalid else victim in
  if !found >= 0 then begin
    let w = !found in
    t.stamp.(w) <- t.clock;
    if write then Bytes.unsafe_set t.dirty w '\001';
    t.hits <- t.hits + 1;
    Hit
  end
  else begin
    let w = !victim in
    let victim_tag = t.tags.(w) in
    let victim_dirty = victim_tag >= 0 && Bytes.unsafe_get t.dirty w = '\001' in
    if victim_dirty then t.writebacks <- t.writebacks + 1;
    let victim_line_addr = if victim_tag >= 0 then victim_tag * t.line_size else -1 in
    t.tags.(w) <- line;
    Bytes.unsafe_set t.dirty w (if write then '\001' else '\000');
    t.stamp.(w) <- t.clock;
    t.misses <- t.misses + 1;
    Miss { victim_line_addr; victim_dirty }
  end

let probe t ~addr =
  let line = addr / t.line_size in
  let set = line mod t.sets in
  let base = set * t.assoc in
  let rec go w = w < base + t.assoc && (t.tags.(w) = line || go (w + 1)) in
  go base

let invalidate t ~addr =
  let line = addr / t.line_size in
  let set = line mod t.sets in
  let base = set * t.assoc in
  for w = base to base + t.assoc - 1 do
    if t.tags.(w) = line then begin
      t.tags.(w) <- -1;
      Bytes.unsafe_set t.dirty w '\000'
    end
  done

let line_size t = t.line_size
let num_sets t = t.sets
let assoc t = t.assoc
let capacity t = t.sets * t.assoc * t.line_size

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  t.clock <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0

let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks
let accesses t = t.hits + t.misses

let hit_rate t =
  let n = accesses t in
  if n = 0 then 0. else float_of_int t.hits /. float_of_int n
