(** Iteration-set-to-core schedules.

    A schedule pairs the partition of a program into iteration sets with
    the core chosen for each set — the artifact every mapping strategy
    (the paper's, the round-robin default, the baselines) produces and
    the simulator consumes. *)

type t = {
  sets : Ir.Iter_set.t array;  (** indexed by global set id *)
  core_of : int array;  (** core id per set *)
}

val make : sets:Ir.Iter_set.t array -> core_of:int array -> t
(** Raises [Invalid_argument] if the arrays' lengths differ. *)

val round_robin : ?cores:int array -> num_cores:int -> Ir.Iter_set.t array -> t
(** The paper's default (baseline) mapping: sets assigned to cores in
    round-robin order, location-oblivious. [cores] restricts the
    assignment to an explicit core list (multiprogrammed runs); it
    defaults to cores [0 .. num_cores-1]. *)

val num_sets : t -> int

val sets_of_core : t -> core:int -> Ir.Iter_set.t list
(** Sets assigned to [core], in set-id order. *)

val sets_of_core_nest : t -> core:int -> nest:int -> Ir.Iter_set.t list
(** Sets of one nest assigned to [core], in iteration order. *)

val load_of_cores : t -> num_cores:int -> int array
(** Iteration count (not set count) assigned to each core. *)

val validate : t -> num_cores:int -> (unit, string) result
(** Every set assigned to exactly one in-range core. *)

val moved_fraction : before:t -> after:t -> float
(** Fraction of sets whose core changed — the paper's Table 3 "fraction
    moved by load balancing" when applied to pre/post-balance
    schedules. Raises [Invalid_argument] on mismatched partitions. *)
