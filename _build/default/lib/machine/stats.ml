type t = {
  mutable cycles : int;
  mutable overhead_cycles : int;
  mutable accesses : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable llc_hits : int;
  mutable llc_misses : int;
  mutable net_latency : int;
  mutable net_queueing : int;
  mutable net_packets : int;
  mutable net_hops : int;
  mutable dram_row_hits : int;
  mutable dram_row_misses : int;
  mutable writebacks : int;
}

let create () =
  {
    cycles = 0;
    overhead_cycles = 0;
    accesses = 0;
    l1_hits = 0;
    l1_misses = 0;
    llc_hits = 0;
    llc_misses = 0;
    net_latency = 0;
    net_queueing = 0;
    net_packets = 0;
    net_hops = 0;
    dram_row_hits = 0;
    dram_row_misses = 0;
    writebacks = 0;
  }

let ratio a b = if b = 0 then 0. else float_of_int a /. float_of_int b

let l1_hit_rate t = ratio t.l1_hits (t.l1_hits + t.l1_misses)
let llc_hit_rate t = ratio t.llc_hits (t.llc_hits + t.llc_misses)
let llc_miss_ratio t = ratio t.llc_misses t.accesses
let avg_net_latency t = ratio t.net_latency t.net_packets
let overhead_fraction t = ratio t.overhead_cycles t.cycles

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cycles: %d (overhead %d)@ accesses: %d@ L1 hit rate: %.3f@ LLC \
     hit rate: %.3f (miss ratio %.3f)@ network: %d packets, %d cycles \
     (%.1f avg, %d queueing, %d hops)@ DRAM: %d row hits / %d misses@ \
     writebacks: %d@]"
    t.cycles t.overhead_cycles t.accesses (l1_hit_rate t) (llc_hit_rate t)
    (llc_miss_ratio t) t.net_packets t.net_latency (avg_net_latency t)
    t.net_queueing t.net_hops t.dram_row_hits t.dram_row_misses t.writebacks
