(** The single source of truth for physical location of data.

    [Addr_map] answers, for any address, which MC serves its page and
    which LLC bank homes its line, under the configuration's
    data-distribution policy (including the KNL cluster modes). It is
    shared by the simulator, the compile-time analysis and the runtime
    inspector — this *is* the "architecture information exposed to the
    compiler" of the paper's Figure 4, combined with the OS guarantee
    that virtual addresses expose the interleaving bits (Section 4). *)

type t

val create : Config.t -> Mem.Page_table.t -> t

val config : t -> Config.t

val topology : t -> Noc.Topology.t

val translate : t -> int -> int
(** Virtual-to-physical translation (identity unless pages were
    remapped after creation — re-create the map after remapping). *)

val mc_of : t -> int -> int
(** MC id serving the page of a *physical* address. *)

val mc_node : t -> int -> int
(** Mesh node an MC attaches to. *)

val bank_node_of : t -> int -> int
(** Node id of the shared-LLC home bank of a *physical* address. *)

val num_mcs : t -> int

val num_nodes : t -> int

val quadrant_of_node : t -> int -> int
(** 0..3: NW, NE, SW, SE quadrant of the mesh. *)

val mc_of_quadrant : t -> int -> int
(** The MC nearest to a quadrant's centre. *)
