type job = {
  trace : Ir.Trace.t;
  schedule_of_step : int -> Schedule.t;
  steps : int;
  cores : int array;
  step_overhead : int -> int;
}

let job ?steps ?(cores = [||]) ?(step_overhead = fun _ -> 0) ~trace
    ~schedule_of_step () =
  let steps =
    match steps with
    | Some s -> s
    | None -> (Ir.Trace.program trace).Ir.Program.time_steps
  in
  if steps <= 0 then invalid_arg "Engine.job: non-positive steps";
  { trace; schedule_of_step; steps; cores; step_overhead }

type result = {
  stats : Stats.t;
  job_finish : int array;
  net_latency_histogram : int array;
  link_busy : int array;
}

(* Per-core execution cursor. *)
type core_state = {
  mutable job : int;  (* -1 = idle *)
  mutable sets : Ir.Iter_set.t list;  (* remaining sets of current phase *)
  mutable step : int;  (* timing-loop step of the current phase *)
  mutable nest : int;
  mutable iter : int;  (* next parallel iteration of current set *)
  mutable iter_hi : int;  (* end of current set *)
  mutable buf : int array;  (* current iteration's encoded accesses *)
  mutable buf_len : int;
  mutable buf_pos : int;
  mutable pend_pa : int;  (* physical address of pending shared tx; -1 *)
  mutable pend_write : bool;
  mutable pend_victim : int;  (* victim line address; -1 *)
  mutable pend_victim_dirty : bool;
  mutable time : int;
}

type job_state = {
  j : job;
  jid : int;
  mutable step : int;
  mutable nest : int;
  mutable remaining : int;  (* cores still executing the current phase *)
  mutable phase_finish : int;
  mutable finish : int;
  mutable done_ : bool;
}

(* Deferred events: later stages of a miss transaction, scheduled at
   their actual start times so the network and DRAM only ever see
   traffic in (approximately) global-time order. Sending a response at
   its post-DRAM timestamp directly from the initial request event
   would reserve links far in the future and stall unrelated earlier
   packets behind phantom traffic. *)
type deferred =
  | Resp_to_core of {
      src : int;
      core : int;
    }  (** data packet [src]->core node, then the core resumes *)
  | Resp_via_bank of {
      mcn : int;
      bank : int;
      core : int;
    }  (** S-NUCA fill: data MC->bank, then bank->core *)
  | Bank_access of { core : int }  (** request reached the home bank *)
  | Wb_to_mc of {
      src : int;
      victim : int;
    }  (** fire-and-forget dirty writeback towards the victim's MC *)
  | Wb_to_bank of {
      src : int;
      victim : int;
    }  (** fire-and-forget L1 victim towards its home bank *)

type state = {
  cfg : Config.t;
  topo : Noc.Topology.t;
  amap : Addr_map.t;
  net : Noc.Network.t;
  l1 : Cache.Sa_cache.t array;
  l2 : Cache.Sa_cache.t array;
  bank_free : int array;  (* shared-org bank port occupancy *)
  drams : Mem.Dram.t array;
  heap : Event_heap.t;
  cores : core_state array;
  jobs : job_state array;
  stats : Stats.t;
  data_flits : int;
  shared : bool;
  mutable deferred : deferred option array;
  mutable deferred_count : int;
}

let new_core_state () =
  {
    job = -1;
    sets = [];
    step = 0;
    nest = 0;
    iter = 0;
    iter_hi = 0;
    buf = [||];
    buf_len = 0;
    buf_pos = 0;
    pend_pa = -1;
    pend_write = false;
    pend_victim = -1;
    pend_victim_dirty = false;
    time = 0;
  }

let max_appi trace =
  let m = ref 1 in
  for nest = 0 to Ir.Trace.num_nests trace - 1 do
    m := max !m (Ir.Trace.accesses_per_par_iter trace ~nest)
  done;
  !m

(* Load the next iteration set (if any) into the cursor. *)
let next_set cs =
  match cs.sets with
  | [] -> false
  | s :: rest ->
      cs.sets <- rest;
      cs.iter <- s.Ir.Iter_set.lo;
      cs.iter_hi <- s.Ir.Iter_set.hi;
      true

(* Start phase (js.step, js.nest) for all of the job's cores at [t0].
   Returns the number of cores that received work. *)
let start_phase st js t0 =
  let sched = js.j.schedule_of_step js.step in
  let with_work = ref 0 in
  Array.iter
    (fun core ->
      let cs = st.cores.(core) in
      cs.job <- js.jid;
      cs.step <- js.step;
      cs.nest <- js.nest;
      cs.sets <- Schedule.sets_of_core_nest sched ~core ~nest:js.nest;
      cs.buf_len <- 0;
      cs.buf_pos <- 0;
      cs.pend_pa <- -1;
      (* The barrier release itself propagates over the NoC: cores
         farther from the releasing node start a few cycles later. *)
      let skew =
        Noc.Routing.hop_count st.topo ~src:0 ~dst:core
        * (st.cfg.Config.router_overhead + 1)
      in
      cs.time <- t0 + skew;
      if next_set cs then begin
        incr with_work;
        Event_heap.push st.heap ~time:(t0 + skew) ~id:core
      end)
    js.j.cores;
  js.remaining <- !with_work;
  js.phase_finish <- t0;
  !with_work

(* Advance the job to its next phase; called when the barrier opens. *)
let rec advance_job st js =
  let num_nests = Ir.Trace.num_nests js.j.trace in
  let t = js.phase_finish in
  if js.nest + 1 < num_nests then begin
    js.nest <- js.nest + 1;
    if start_phase st js t = 0 then begin
      js.phase_finish <- t;
      advance_job st js
    end
  end
  else begin
    (* End of a timing-loop step: charge the runtime-scheme overhead. *)
    let ov = js.j.step_overhead js.step in
    if ov < 0 then invalid_arg "Engine: negative step overhead";
    st.stats.Stats.overhead_cycles <- st.stats.Stats.overhead_cycles + ov;
    let t = t + ov in
    if js.step + 1 < js.j.steps then begin
      js.step <- js.step + 1;
      js.nest <- 0;
      if start_phase st js t = 0 then begin
        js.phase_finish <- t;
        advance_job st js
      end
    end
    else begin
      js.finish <- t;
      js.done_ <- true
    end
  end

let finish_phase_core st cs t =
  let js = st.jobs.(cs.job) in
  cs.job <- -1;
  if t > js.phase_finish then js.phase_finish <- t;
  js.remaining <- js.remaining - 1;
  if js.remaining = 0 then advance_job st js

let num_core_ids st = Array.length st.cores

let schedule_deferred st ~time ev =
  if st.deferred_count = Array.length st.deferred then begin
    let bigger = Array.make (2 * Array.length st.deferred) None in
    Array.blit st.deferred 0 bigger 0 st.deferred_count;
    st.deferred <- bigger
  end;
  st.deferred.(st.deferred_count) <- Some ev;
  Event_heap.push st.heap ~time ~id:(num_core_ids st + st.deferred_count);
  st.deferred_count <- st.deferred_count + 1

(* The core's pending access completed: consume it and resume. *)
let resume_core st core t =
  let cs = st.cores.(core) in
  cs.pend_pa <- -1;
  cs.pend_victim <- -1;
  cs.pend_victim_dirty <- false;
  cs.buf_pos <- cs.buf_pos + 1;
  cs.time <- t;
  Event_heap.push st.heap ~time:t ~id:core

(* Execute the first stage of core [c]'s pending transaction at time
   [t]: inject the request and schedule the later stages at their own
   times. *)
let execute_shared st c t =
  let cs = st.cores.(c) in
  let pa = cs.pend_pa in
  let node = c in
  if not st.shared then begin
    (* Private LLC: the local bank already missed; fetch from memory. *)
    if cs.pend_victim_dirty && cs.pend_victim >= 0 then
      schedule_deferred st ~time:t
        (Wb_to_mc { src = node; victim = cs.pend_victim });
    let mc = Addr_map.mc_of st.amap pa in
    let mcn = Addr_map.mc_node st.amap mc in
    let t1 = Noc.Network.send st.net ~now:t ~src:node ~dst:mcn ~flits:1 in
    let t2 = Mem.Dram.service st.drams.(mc) ~now:t1 ~addr:pa in
    schedule_deferred st ~time:t2 (Resp_to_core { src = mcn; core = c })
  end
  else begin
    (* Shared LLC (S-NUCA): the L1 victim (if dirty) flows to its own
       home bank; the request travels to the line's home bank. *)
    if cs.pend_victim_dirty && cs.pend_victim >= 0 then
      schedule_deferred st ~time:t
        (Wb_to_bank { src = node; victim = cs.pend_victim });
    let bank = Addr_map.bank_node_of st.amap pa in
    let t1 = Noc.Network.send st.net ~now:t ~src:node ~dst:bank ~flits:1 in
    schedule_deferred st ~time:t1 (Bank_access { core = c })
  end

(* The request of [core]'s pending transaction reached the home bank. *)
let bank_access st ~core t =
  let cs = st.cores.(core) in
  let pa = cs.pend_pa in
  let bank = Addr_map.bank_node_of st.amap pa in
  let t1 = max t st.bank_free.(bank) in
  let t2 = t1 + st.cfg.Config.l2_hit_lat in
  st.bank_free.(bank) <- t2;
  match Cache.Sa_cache.access st.l2.(bank) ~addr:pa ~write:cs.pend_write with
  | Cache.Sa_cache.Hit ->
      st.stats.Stats.llc_hits <- st.stats.Stats.llc_hits + 1;
      schedule_deferred st ~time:t2 (Resp_to_core { src = bank; core })
  | Cache.Sa_cache.Miss { victim_line_addr; victim_dirty } ->
      st.stats.Stats.llc_misses <- st.stats.Stats.llc_misses + 1;
      if victim_dirty && victim_line_addr >= 0 then
        schedule_deferred st ~time:t2
          (Wb_to_mc { src = bank; victim = victim_line_addr });
      let mc = Addr_map.mc_of st.amap pa in
      let mcn = Addr_map.mc_node st.amap mc in
      let t3 = Noc.Network.send st.net ~now:t2 ~src:bank ~dst:mcn ~flits:1 in
      let t4 = Mem.Dram.service st.drams.(mc) ~now:t3 ~addr:pa in
      schedule_deferred st ~time:t4 (Resp_via_bank { mcn; bank; core })

let run_deferred st ev t =
  match ev with
  | Resp_to_core { src; core } ->
      let arrive =
        Noc.Network.send st.net ~now:t ~src ~dst:core ~flits:st.data_flits
      in
      resume_core st core (arrive + st.cfg.Config.l1_hit_lat)
  | Resp_via_bank { mcn; bank; core } ->
      let arrive =
        Noc.Network.send st.net ~now:t ~src:mcn ~dst:bank ~flits:st.data_flits
      in
      schedule_deferred st ~time:arrive (Resp_to_core { src = bank; core })
  | Bank_access { core } -> bank_access st ~core t
  | Wb_to_mc { src; victim } ->
      let mc = Addr_map.mc_of st.amap victim in
      let arrive =
        Noc.Network.send st.net ~now:t ~src
          ~dst:(Addr_map.mc_node st.amap mc) ~flits:st.data_flits
      in
      ignore (Mem.Dram.service st.drams.(mc) ~now:arrive ~addr:victim);
      st.stats.Stats.writebacks <- st.stats.Stats.writebacks + 1
  | Wb_to_bank { src; victim } ->
      let bank = Addr_map.bank_node_of st.amap victim in
      ignore
        (Noc.Network.send st.net ~now:t ~src ~dst:bank ~flits:st.data_flits);
      st.stats.Stats.writebacks <- st.stats.Stats.writebacks + 1

(* Run core [c] forward from time [t] through private-level work until
   it needs a shared resource, exhausts its phase, or parks a pending
   transaction. *)
let advance_private st c t =
  let cs = st.cores.(c) in
  let trace = st.jobs.(cs.job).j.trace in
  cs.time <- t;
  let continue = ref true in
  while !continue do
    if cs.buf_pos < cs.buf_len then begin
      let enc = cs.buf.(cs.buf_pos) in
      let va = Ir.Trace.decode_addr enc in
      let write = Ir.Trace.decode_write enc in
      let pa = Addr_map.translate st.amap va in
      st.stats.Stats.accesses <- st.stats.Stats.accesses + 1;
      match Cache.Sa_cache.access st.l1.(c) ~addr:pa ~write with
      | Cache.Sa_cache.Hit ->
          st.stats.Stats.l1_hits <- st.stats.Stats.l1_hits + 1;
          cs.time <- cs.time + st.cfg.Config.l1_hit_lat;
          cs.buf_pos <- cs.buf_pos + 1
      | Cache.Sa_cache.Miss { victim_line_addr; victim_dirty } -> (
          st.stats.Stats.l1_misses <- st.stats.Stats.l1_misses + 1;
          if st.shared then begin
            (* Any L1 miss goes over the network to the home bank. *)
            cs.pend_pa <- pa;
            cs.pend_write <- write;
            cs.pend_victim <- victim_line_addr;
            cs.pend_victim_dirty <- victim_dirty;
            Event_heap.push st.heap ~time:cs.time ~id:c;
            continue := false
          end
          else
            (* Private LLC: probe the local bank without network. *)
            match Cache.Sa_cache.access st.l2.(c) ~addr:pa ~write with
            | Cache.Sa_cache.Hit ->
                st.stats.Stats.llc_hits <- st.stats.Stats.llc_hits + 1;
                cs.time <- cs.time + st.cfg.Config.l2_hit_lat;
                cs.buf_pos <- cs.buf_pos + 1
            | Cache.Sa_cache.Miss { victim_line_addr; victim_dirty } ->
                st.stats.Stats.llc_misses <- st.stats.Stats.llc_misses + 1;
                cs.pend_pa <- pa;
                cs.pend_write <- write;
                cs.pend_victim <- victim_line_addr;
                cs.pend_victim_dirty <- victim_dirty;
                Event_heap.push st.heap ~time:cs.time ~id:c;
                continue := false)
    end
    else if cs.iter < cs.iter_hi then begin
      (* Charge the iteration's arithmetic — with a deterministic
         +/-12.5% per-(core, iteration) variation. Real cores never stay
         in exact cycle lockstep (variable instruction paths, OS noise);
         without the variation, barrier-synchronised cores issue their
         misses in perfectly simultaneous convoys and congestion is
         grossly overstated. Then expand the iteration's accesses. *)
      let compute = Ir.Trace.compute_cycles_per_par_iter trace ~nest:cs.nest in
      let jitter =
        if compute >= 8 then
          let h = Mem.Address.mix ((c * 0x9E3779B9) + (cs.iter * 31) + cs.nest) in
          (h mod (compute / 4)) - (compute / 8)
        else 0
      in
      cs.time <- cs.time + compute + jitter;
      cs.buf_len <-
        Ir.Trace.fill_iteration ~step:cs.step trace ~nest:cs.nest
          ~iter:cs.iter ~buf:cs.buf;
      cs.buf_pos <- 0;
      cs.iter <- cs.iter + 1
    end
    else if next_set cs then ()
    else begin
      finish_phase_core st cs cs.time;
      continue := false
    end
  done

let process st id t =
  if id < num_core_ids st then begin
    let cs = st.cores.(id) in
    if cs.pend_pa >= 0 then execute_shared st id t
    else advance_private st id t
  end
  else begin
    let slot = id - num_core_ids st in
    match st.deferred.(slot) with
    | Some ev ->
        st.deferred.(slot) <- None;
        run_deferred st ev t
    | None -> invalid_arg "Engine: deferred event fired twice"
  end

let run ?(ideal_network = false) ?page_table cfg jobs =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Engine.run: " ^ e));
  if jobs = [] then invalid_arg "Engine.run: no jobs";
  let pt =
    match page_table with
    | Some pt -> pt
    | None -> Mem.Page_table.create ~page_size:cfg.Config.page_size ()
  in
  let amap = Addr_map.create cfg pt in
  let topo = Addr_map.topology amap in
  let n = Noc.Topology.num_nodes topo in
  (* Default core assignment: a single job gets all cores. *)
  let jobs =
    List.map
      (fun (j : job) ->
        if j.cores = [||] then { j with cores = Array.init n Fun.id } else j)
      jobs
  in
  (* Core sets must be disjoint and in range. *)
  let owner = Array.make n (-1) in
  List.iteri
    (fun jid (j : job) ->
      Array.iter
        (fun c ->
          if c < 0 || c >= n then invalid_arg "Engine.run: core out of range";
          if owner.(c) >= 0 then invalid_arg "Engine.run: overlapping job cores";
          owner.(c) <- jid)
        j.cores)
    jobs;
  List.iter
    (fun (j : job) ->
      let mine = Array.make n false in
      Array.iter (fun c -> mine.(c) <- true) j.cores;
      for step = 0 to j.steps - 1 do
        let sched = j.schedule_of_step step in
        (match Schedule.validate sched ~num_cores:n with
        | Ok () -> ()
        | Error e -> invalid_arg ("Engine.run: " ^ e));
        Array.iter
          (fun c ->
            if not mine.(c) then
              invalid_arg
                "Engine.run: schedule assigns a set to a core outside the job"
            )
          sched.Schedule.core_of
      done)
    jobs;
  let st =
    {
      cfg;
      topo;
      amap;
      net =
        Noc.Network.create ~ideal:ideal_network
          ~router_overhead:cfg.Config.router_overhead topo;
      l1 =
        Array.init n (fun _ ->
            Cache.Sa_cache.create ~size:cfg.Config.l1_size
              ~assoc:cfg.Config.l1_assoc ~line_size:cfg.Config.l1_line ());
      l2 =
        Array.init n (fun _ ->
            Cache.Sa_cache.create ~size:cfg.Config.l2_size
              ~assoc:cfg.Config.l2_assoc ~line_size:cfg.Config.l2_line ());
      bank_free = Array.make n 0;
      drams =
        Array.init (Noc.Topology.num_mcs topo) (fun _ ->
            Mem.Dram.create ~kind:cfg.Config.dram_kind
              ~row_buffer:cfg.Config.row_buffer ());
      heap = Event_heap.create ~capacity:(4 * n);
      cores = Array.init n (fun _ -> new_core_state ());
      jobs =
        Array.of_list
          (List.mapi
             (fun jid j ->
               {
                 j;
                 jid;
                 step = 0;
                 nest = 0;
                 remaining = 0;
                 phase_finish = 0;
                 finish = 0;
                 done_ = false;
               })
             jobs);
      stats = Stats.create ();
      data_flits = Config.data_flits cfg;
      shared = Cache.Llc.equal cfg.Config.llc_org Cache.Llc.Shared;
      deferred = Array.make 1024 None;
      deferred_count = 0;
    }
  in
  (* Size each core's iteration buffer for its job. *)
  Array.iter
    (fun js ->
      let appi = max_appi js.j.trace in
      Array.iter (fun c -> st.cores.(c).buf <- Array.make appi 0) js.j.cores)
    st.jobs;
  Array.iter
    (fun js ->
      if start_phase st js 0 = 0 then advance_job st js)
    st.jobs;
  let rec drain () =
    match Event_heap.pop st.heap with
    | None -> ()
    | Some (t, c) ->
        process st c t;
        drain ()
  in
  drain ();
  (* Fold shared-resource statistics into the result. *)
  st.stats.Stats.net_latency <- Noc.Network.total_latency st.net;
  st.stats.Stats.net_queueing <- Noc.Network.total_queueing st.net;
  st.stats.Stats.net_packets <- Noc.Network.packets_sent st.net;
  st.stats.Stats.net_hops <- Noc.Network.total_hops st.net;
  Array.iter
    (fun d ->
      st.stats.Stats.dram_row_hits <-
        st.stats.Stats.dram_row_hits + Mem.Dram.row_hits d;
      st.stats.Stats.dram_row_misses <-
        st.stats.Stats.dram_row_misses + Mem.Dram.row_misses d)
    st.drams;
  let job_finish = Array.map (fun js -> js.finish) st.jobs in
  st.stats.Stats.cycles <- Array.fold_left max 0 job_finish;
  {
    stats = st.stats;
    job_finish;
    net_latency_histogram = Noc.Network.latency_histogram st.net;
    link_busy = Noc.Network.link_busy st.net;
  }

let run_single ?ideal_network ?page_table cfg ~trace ~schedule () =
  run ?ideal_network ?page_table cfg
    [ job ~trace ~schedule_of_step:(fun _ -> schedule) () ]
