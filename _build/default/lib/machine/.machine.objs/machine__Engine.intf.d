lib/machine/engine.mli: Config Ir Mem Schedule Stats
