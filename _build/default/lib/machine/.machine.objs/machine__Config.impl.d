lib/machine/config.ml: Cache Format Mem Noc Printf
