lib/machine/schedule.ml: Array Fun Int Ir List Printf
