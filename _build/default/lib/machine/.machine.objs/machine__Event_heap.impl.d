lib/machine/event_heap.ml: Array
