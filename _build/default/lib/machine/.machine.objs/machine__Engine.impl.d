lib/machine/engine.ml: Addr_map Array Cache Config Event_heap Fun Ir List Mem Noc Schedule Stats
