lib/machine/config.mli: Cache Format Mem Noc
