lib/machine/addr_map.ml: Array Config Float Fun List Mem Noc
