lib/machine/schedule.mli: Ir
