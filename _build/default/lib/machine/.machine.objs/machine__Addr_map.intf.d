lib/machine/addr_map.mli: Config Mem Noc
