type t = {
  sets : Ir.Iter_set.t array;
  core_of : int array;
}

let make ~sets ~core_of =
  if Array.length sets <> Array.length core_of then
    invalid_arg "Schedule.make: mismatched lengths";
  { sets; core_of }

let round_robin ?cores ~num_cores sets =
  let pool =
    match cores with
    | Some cs ->
        if cs = [||] then invalid_arg "Schedule.round_robin: empty core list";
        cs
    | None -> Array.init num_cores Fun.id
  in
  let core_of = Array.init (Array.length sets) (fun k -> pool.(k mod Array.length pool)) in
  { sets; core_of }

let num_sets t = Array.length t.sets

let sets_of_core t ~core =
  let acc = ref [] in
  for k = Array.length t.sets - 1 downto 0 do
    if t.core_of.(k) = core then acc := t.sets.(k) :: !acc
  done;
  !acc

let sets_of_core_nest t ~core ~nest =
  sets_of_core t ~core
  |> List.filter (fun (s : Ir.Iter_set.t) -> s.nest = nest)
  |> List.sort (fun (a : Ir.Iter_set.t) (b : Ir.Iter_set.t) ->
         Int.compare a.lo b.lo)

let load_of_cores t ~num_cores =
  let load = Array.make num_cores 0 in
  Array.iteri
    (fun k core ->
      if core >= 0 && core < num_cores then
        load.(core) <- load.(core) + Ir.Iter_set.size t.sets.(k))
    t.core_of;
  load

let validate t ~num_cores =
  let bad = ref None in
  Array.iteri
    (fun k core ->
      if !bad = None && (core < 0 || core >= num_cores) then
        bad := Some (k, core))
    t.core_of;
  match !bad with
  | Some (k, core) ->
      Error (Printf.sprintf "set %d assigned to out-of-range core %d" k core)
  | None -> Ok ()

let moved_fraction ~before ~after =
  let n = Array.length before.sets in
  if n <> Array.length after.sets then
    invalid_arg "Schedule.moved_fraction: different partitions";
  if n = 0 then 0.
  else begin
    let moved = ref 0 in
    for k = 0 to n - 1 do
      if before.core_of.(k) <> after.core_of.(k) then incr moved
    done;
    float_of_int !moved /. float_of_int n
  end
