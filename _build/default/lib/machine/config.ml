type t = {
  rows : int;
  cols : int;
  topology_kind : Noc.Topology.kind;
  mc_placement : Noc.Topology.mc_placement;
  region_h : int;
  region_w : int;
  l1_size : int;
  l1_assoc : int;
  l1_line : int;
  l2_size : int;
  l2_assoc : int;
  l2_line : int;
  llc_org : Cache.Llc.org;
  router_overhead : int;
  flit_bytes : int;
  page_size : int;
  row_buffer : int;
  dram_kind : Mem.Dram.kind;
  dist : Mem.Distribution.t;
  l1_hit_lat : int;
  l2_hit_lat : int;
  iter_set_fraction : float;
  mac_tolerance : int;
  mac_mode : mac_mode;
  placement : placement;
  seed : int;
}

and mac_mode =
  | Nearest_set
  | Inverse_distance

and placement =
  | Random_balanced
  | Least_loaded

let default =
  {
    rows = 6;
    cols = 6;
    topology_kind = Noc.Topology.Mesh;
    mc_placement = Noc.Topology.Corners;
    region_h = 2;
    region_w = 2;
    l1_size = 16 * 1024;
    l1_assoc = 8;
    l1_line = 32;
    l2_size = 512 * 1024;
    l2_assoc = 16;
    l2_line = 64;
    llc_org = Cache.Llc.Private;
    router_overhead = 3;
    flit_bytes = 32;
    page_size = 2048;
    row_buffer = 2048;
    dram_kind = Mem.Dram.Ddr3_1333;
    dist = Mem.Distribution.default;
    l1_hit_lat = 2;
    l2_hit_lat = 10;
    iter_set_fraction = 0.0025;
    mac_tolerance = 2;
    mac_mode = Nearest_set;
    placement = Random_balanced;
    seed = 42;
  }

let topology t =
  Noc.Topology.create ~kind:t.topology_kind ~rows:t.rows ~cols:t.cols
    t.mc_placement

let num_cores t = t.rows * t.cols

let num_mcs t = Noc.Topology.num_mcs (topology t)

let region_rows t = (t.rows + t.region_h - 1) / t.region_h

let region_cols t = (t.cols + t.region_w - 1) / t.region_w

let num_regions t = region_rows t * region_cols t

let data_flits t = Noc.Packet.flits Noc.Packet.Data ~line_size:t.l2_line ~flit_bytes:t.flit_bytes

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.rows <= 0 || t.cols <= 0 then err "non-positive mesh dimensions"
  else if t.region_h <= 0 || t.region_w <= 0 then err "non-positive region size"
  else if t.rows mod t.region_h <> 0 || t.cols mod t.region_w <> 0 then
    err "regions (%dx%d) do not tile the %dx%d mesh" t.region_h t.region_w
      t.rows t.cols
  else if t.l1_size <= 0 || t.l2_size <= 0 then err "non-positive cache size"
  else if t.l1_size mod (t.l1_line * t.l1_assoc) <> 0 then
    err "L1 geometry inconsistent"
  else if t.l2_size mod (t.l2_line * t.l2_assoc) <> 0 then
    err "L2 geometry inconsistent"
  else if t.page_size <= 0 || t.row_buffer <= 0 then err "non-positive page/row size"
  else if t.iter_set_fraction <= 0. || t.iter_set_fraction > 1. then
    err "iteration-set fraction out of (0,1]"
  else if t.l1_hit_lat < 0 || t.l2_hit_lat < 0 || t.router_overhead < 0 then
    err "negative latency"
  else Ok ()

let pp ppf t =
  Format.fprintf ppf
    "@[<v>Manycore size: %d cores (%dx%d), 1 GHz@ Regions: %d (%dx%d)@ L1: \
     %d KB, %d-way, %d B lines@ L2: %d KB/bank, %d-way, %d B lines (%a)@ \
     Router overhead: %d cycles@ Page size: %d B@ Row buffer: %d B@ DRAM: \
     %a, %d MCs@ Distribution: %a@ Iteration-set size: %.2f%%@]"
    (num_cores t) t.rows t.cols (num_regions t) t.region_h t.region_w
    (t.l1_size / 1024) t.l1_assoc t.l1_line (t.l2_size / 1024) t.l2_assoc
    t.l2_line Cache.Llc.pp t.llc_org t.router_overhead t.page_size
    t.row_buffer Mem.Dram.pp_kind t.dram_kind (num_mcs t)
    Mem.Distribution.pp t.dist
    (100. *. t.iter_set_fraction)
