type t = {
  cfg : Config.t;
  topo : Noc.Topology.t;
  pt : Mem.Page_table.t;
  identity : bool;  (* no page remappings at creation time *)
  mc_nodes : int array;
  quadrant_of : int array;  (* per node *)
  quadrant_nodes : int array array;
  mc_of_quad : int array;
}

let create (cfg : Config.t) pt =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Addr_map.create: " ^ e));
  let topo = Config.topology cfg in
  let n = Noc.Topology.num_nodes topo in
  let quadrant_of =
    Array.init n (fun node ->
        let c = Noc.Topology.coord_of_node topo node in
        let south = if c.Noc.Coord.row >= (cfg.rows + 1) / 2 then 2 else 0 in
        let east = if c.Noc.Coord.col >= (cfg.cols + 1) / 2 then 1 else 0 in
        south + east)
  in
  let quadrant_nodes =
    Array.init 4 (fun q ->
        Array.of_list
          (List.filter
             (fun node -> quadrant_of.(node) = q)
             (List.init n Fun.id)))
  in
  let quad_center q =
    let members = quadrant_nodes.(q) in
    let sum_r = ref 0 and sum_c = ref 0 in
    Array.iter
      (fun node ->
        let c = Noc.Topology.coord_of_node topo node in
        sum_r := !sum_r + c.Noc.Coord.row;
        sum_c := !sum_c + c.Noc.Coord.col)
      members;
    let m = max 1 (Array.length members) in
    (float_of_int !sum_r /. float_of_int m, float_of_int !sum_c /. float_of_int m)
  in
  let mc_of_quad =
    Array.init 4 (fun q ->
        let cr, cc = quad_center q in
        let best = ref 0 and best_d = ref infinity in
        for k = 0 to Noc.Topology.num_mcs topo - 1 do
          let mc = Noc.Topology.mc_coord topo k in
          let d =
            Float.abs (cr -. float_of_int mc.Noc.Coord.row)
            +. Float.abs (cc -. float_of_int mc.Noc.Coord.col)
          in
          if d < !best_d then begin
            best_d := d;
            best := k
          end
        done;
        !best)
  in
  {
    cfg;
    topo;
    pt;
    identity = Mem.Page_table.remapped_count pt = 0;
    mc_nodes =
      Array.init (Noc.Topology.num_mcs topo) (Noc.Topology.mc_node topo);
    quadrant_of;
    quadrant_nodes;
    mc_of_quad;
  }

let config t = t.cfg
let topology t = t.topo

let translate t va = if t.identity then va else Mem.Page_table.translate t.pt va

let num_mcs t = Array.length t.mc_nodes
let num_nodes t = Noc.Topology.num_nodes t.topo

let mc_node t k = t.mc_nodes.(k)
let quadrant_of_node t node = t.quadrant_of.(node)
let mc_of_quadrant t q = t.mc_of_quad.(q)

let default_bank t pa =
  Mem.Distribution.interleave t.cfg.dist.llc_gran ~page_size:t.cfg.page_size
    ~line_size:t.cfg.l2_line ~count:(num_nodes t) pa

let snc4_domain t pa =
  Mem.Page_table.domain t.pt ~addr:pa ~default:(pa / t.cfg.page_size mod 4)

let mc_of t pa =
  match t.cfg.dist.cluster with
  | Mem.Distribution.Mesh_default ->
      Mem.Distribution.interleave t.cfg.dist.mem_gran
        ~page_size:t.cfg.page_size ~line_size:t.cfg.l2_line ~count:(num_mcs t)
        pa
  | Mem.Distribution.All_to_all ->
      Mem.Distribution.hashed ~page_size:t.cfg.page_size ~count:(num_mcs t) pa
  | Mem.Distribution.Quadrant -> t.mc_of_quad.(t.quadrant_of.(default_bank t pa))
  | Mem.Distribution.Snc4 -> t.mc_of_quad.(snc4_domain t pa)

let bank_node_of t pa =
  match t.cfg.dist.cluster with
  | Mem.Distribution.Mesh_default | Mem.Distribution.Quadrant ->
      default_bank t pa
  | Mem.Distribution.All_to_all ->
      Mem.Address.mix (pa / t.cfg.l2_line) mod num_nodes t
  | Mem.Distribution.Snc4 ->
      let q = snc4_domain t pa in
      let members = t.quadrant_nodes.(q) in
      members.(pa / t.cfg.l2_line mod Array.length members)
