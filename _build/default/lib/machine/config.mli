(** Machine configuration.

    [default] reproduces the paper's Table 4: a 6x6 mesh at 1 GHz with
    four corner MCs, 9 regions of 2x2 nodes, 16 KB/8-way/32 B L1s,
    512 KB/16-way/64 B L2 banks, 3-cycle routers, 2 KB pages and
    row buffers, DDR3-1333, page-granularity MC interleaving and
    line-granularity LLC-bank interleaving, and 0.25 % iteration sets.
    The sensitivity experiments (Figures 9-12, 16) are expressed as
    functional updates of this record. *)

type t = {
  rows : int;
  cols : int;
  topology_kind : Noc.Topology.kind;  (** mesh (paper) or torus *)
  mc_placement : Noc.Topology.mc_placement;
  region_h : int;  (** rows of nodes per region *)
  region_w : int;  (** columns of nodes per region *)
  l1_size : int;
  l1_assoc : int;
  l1_line : int;
  l2_size : int;  (** per-bank LLC capacity *)
  l2_assoc : int;
  l2_line : int;
  llc_org : Cache.Llc.org;
  router_overhead : int;  (** cycles per hop *)
  flit_bytes : int;
  page_size : int;
  row_buffer : int;
  dram_kind : Mem.Dram.kind;
  dist : Mem.Distribution.t;
  l1_hit_lat : int;
  l2_hit_lat : int;
  iter_set_fraction : float;  (** iteration-set size as a fraction *)
  mac_tolerance : int;
      (** Manhattan-distance slack when computing MAC nearest-MC sets
          (reproduces the paper's Figure 6a on the default machine) *)
  mac_mode : mac_mode;
      (** how region-to-MC affinity is encoded (Section 3.9 discusses
          finer-granular encodings than the nearest-set default) *)
  placement : placement;
      (** how a set is placed on a core inside its chosen region
          (Section 3.9: random with load bound, or an OS-style
          least-loaded choice the paper found ~2% better) *)
  seed : int;  (** RNG seed for the random within-region placement *)
}

and mac_mode =
  | Nearest_set
      (** equal weight over MCs within [mac_tolerance] of the nearest
          (the paper's Figure 6a) *)
  | Inverse_distance
      (** weight proportional to 1 / (1 + distance), normalised — a
          finer-granular encoding *)

and placement =
  | Random_balanced  (** random among the least-loaded region cores *)
  | Least_loaded
      (** deterministic least-loaded core (lowest id breaks ties) —
          the OS-scheduling option of footnote 6 *)

val default : t

val topology : t -> Noc.Topology.t
(** Builds the mesh topology described by the configuration. *)

val num_cores : t -> int

val num_mcs : t -> int

val region_rows : t -> int
(** Number of region rows ([rows / region_h], rounded up). *)

val region_cols : t -> int

val num_regions : t -> int

val data_flits : t -> int
(** Flits of a cache-line-carrying packet. *)

val validate : t -> (unit, string) result
(** Checks internal consistency (positive sizes, regions that tile the
    mesh, power-of-two-free constraints the caches need). *)

val pp : Format.formatter -> t -> unit
(** Prints the configuration as a Table-4-style listing. *)
