(** Mesh topology description.

    A manycore is a [rows] x [cols] 2-D mesh of nodes; each node hosts a
    core, private L1 caches, an L2 (LLC) bank and a router (paper,
    Section 2, Figure 3). Memory controllers (MCs) attach to specific
    routers; their placement is part of the topology and is exposed to
    the compiler (the paper's "physical location information"). *)

type mc_placement =
  | Corners  (** one MC at each of the four mesh corners (paper default) *)
  | Edge_midpoints
      (** one MC at the middle of each mesh side (the paper's "different
          MC placement" sensitivity experiment, Figure 9) *)
  | Custom of Coord.t list  (** explicit MC router positions *)

type kind =
  | Mesh  (** plain 2-D mesh (the paper's machine) *)
  | Torus
      (** 2-D torus: edges wrap around, halving worst-case distances —
          the kind of alternative topology Section 3.9 says the scheme
          handles once positions are exposed to the compiler *)

type t

val create : ?kind:kind -> rows:int -> cols:int -> mc_placement -> t
(** [create ~rows ~cols placement] builds a mesh (or torus with
    [~kind:Torus]). Raises [Invalid_argument] if [rows] or [cols] is
    not positive, or if a [Custom] placement lists a coordinate outside
    the mesh. *)

val kind : t -> kind

val distance : t -> Coord.t -> Coord.t -> int
(** Link distance between two coordinates under the topology's kind:
    Manhattan on a mesh, wrap-aware on a torus. *)

val distance_f : t -> float * float -> Coord.t -> float
(** Same metric from a fractional position (e.g. a region centre) to a
    node coordinate. *)

val rows : t -> int

val cols : t -> int

val num_nodes : t -> int

val mc_placement : t -> mc_placement

val num_mcs : t -> int

val node_of_coord : t -> Coord.t -> int
(** Row-major node id of a coordinate. *)

val coord_of_node : t -> int -> Coord.t

val mc_coord : t -> int -> Coord.t
(** [mc_coord t k] is the router position of the [k]-th MC
    (0-based). Raises [Invalid_argument] if [k] is out of range. *)

val mc_node : t -> int -> int
(** [mc_node t k] is the node id the [k]-th MC attaches to. *)

val distance_to_mc : t -> Coord.t -> int -> int
(** [distance_to_mc t c k] is the link distance from [c] to MC [k]
    under the topology's kind. *)

val pp : Format.formatter -> t -> unit
