lib/noc/coord.ml: Format Int
