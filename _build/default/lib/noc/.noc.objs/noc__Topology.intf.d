lib/noc/topology.mli: Coord Format
