lib/noc/packet.ml: Format
