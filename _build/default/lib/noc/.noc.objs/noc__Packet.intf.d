lib/noc/packet.mli: Format
