lib/noc/routing.ml: List Topology
