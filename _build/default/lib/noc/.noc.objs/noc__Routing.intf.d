lib/noc/routing.mli: Topology
