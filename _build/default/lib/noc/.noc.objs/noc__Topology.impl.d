lib/noc/topology.ml: Array Coord Float Format List
