lib/noc/network.ml: Array Routing Topology
