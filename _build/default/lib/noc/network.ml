type t = {
  topo : Topology.t;
  router_overhead : int;
  ideal : bool;
  free_at : int array;  (** per directed link: first cycle it is free *)
  busy : int array;  (** per directed link: cumulative occupancy cycles *)
  lat_hist : int array;  (** per-packet latency histogram, log2 buckets *)
  mutable total_latency : int;
  mutable total_queueing : int;
  mutable packets : int;
  mutable hops : int;
}

let create ?(ideal = false) ~router_overhead topo =
  if router_overhead < 0 then
    invalid_arg "Network.create: negative router overhead";
  {
    topo;
    router_overhead;
    ideal;
    free_at = Array.make (Routing.num_links topo) 0;
    busy = Array.make (Routing.num_links topo) 0;
    lat_hist = Array.make 24 0;
    total_latency = 0;
    total_queueing = 0;
    packets = 0;
    hops = 0;
  }

let topology t = t.topo
let is_ideal t = t.ideal

let send t ~now ~src ~dst ~flits =
  if flits <= 0 then invalid_arg "Network.send: non-positive flit count";
  if t.ideal || src = dst then now
  else begin
    let time = ref now in
    let queue = ref 0 in
    let hops = ref 0 in
    Routing.iter_path t.topo ~src ~dst (fun link ->
        let start =
          if t.free_at.(link) > !time then begin
            queue := !queue + (t.free_at.(link) - !time);
            t.free_at.(link)
          end
          else !time
        in
        t.free_at.(link) <- start + flits;
        t.busy.(link) <- t.busy.(link) + flits;
        time := start + t.router_overhead + 1;
        incr hops);
    (* Tail flits arrive [flits - 1] cycles after the head. *)
    let arrival = !time + flits - 1 in
    let lat = arrival - now in
    let bucket =
      let rec go b v = if v <= 1 || b = 23 then b else go (b + 1) (v / 2) in
      go 0 lat
    in
    t.lat_hist.(bucket) <- t.lat_hist.(bucket) + 1;
    t.total_latency <- t.total_latency + lat;
    t.total_queueing <- t.total_queueing + !queue;
    t.packets <- t.packets + 1;
    t.hops <- t.hops + !hops;
    arrival
  end

let latency_histogram t = Array.copy t.lat_hist

let link_busy t = Array.copy t.busy

let reset t =
  Array.fill t.free_at 0 (Array.length t.free_at) 0;
  Array.fill t.busy 0 (Array.length t.busy) 0;
  Array.fill t.lat_hist 0 (Array.length t.lat_hist) 0;
  t.total_latency <- 0;
  t.total_queueing <- 0;
  t.packets <- 0;
  t.hops <- 0

let total_latency t = t.total_latency
let total_queueing t = t.total_queueing
let packets_sent t = t.packets
let total_hops t = t.hops

let avg_latency t =
  if t.packets = 0 then 0. else float_of_int t.total_latency /. float_of_int t.packets
