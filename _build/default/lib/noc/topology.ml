type mc_placement =
  | Corners
  | Edge_midpoints
  | Custom of Coord.t list

type kind =
  | Mesh
  | Torus

type t = {
  rows : int;
  cols : int;
  knd : kind;
  placement : mc_placement;
  mcs : Coord.t array;
}

let mc_coords ~rows ~cols = function
  | Corners ->
      [|
        Coord.make ~row:0 ~col:0;
        Coord.make ~row:0 ~col:(cols - 1);
        Coord.make ~row:(rows - 1) ~col:0;
        Coord.make ~row:(rows - 1) ~col:(cols - 1);
      |]
  | Edge_midpoints ->
      [|
        Coord.make ~row:0 ~col:(cols / 2);
        Coord.make ~row:(rows / 2) ~col:0;
        Coord.make ~row:(rows / 2) ~col:(cols - 1);
        Coord.make ~row:(rows - 1) ~col:(cols / 2);
      |]
  | Custom cs ->
      if cs = [] then invalid_arg "Topology.create: empty MC placement";
      List.iter
        (fun (c : Coord.t) ->
          if c.row >= rows || c.col >= cols then
            invalid_arg "Topology.create: MC outside mesh")
        cs;
      Array.of_list cs

let create ?(kind = Mesh) ~rows ~cols placement =
  if rows <= 0 || cols <= 0 then
    invalid_arg "Topology.create: non-positive dimension";
  { rows; cols; knd = kind; placement; mcs = mc_coords ~rows ~cols placement }

let kind t = t.knd

let wrap_delta d size = min d (size - d)

let distance t (a : Coord.t) (b : Coord.t) =
  match t.knd with
  | Mesh -> Coord.manhattan a b
  | Torus ->
      wrap_delta (abs (a.Coord.row - b.Coord.row)) t.rows
      + wrap_delta (abs (a.Coord.col - b.Coord.col)) t.cols

let distance_f t (r, c) (b : Coord.t) =
  let dr = Float.abs (r -. float_of_int b.Coord.row) in
  let dc = Float.abs (c -. float_of_int b.Coord.col) in
  match t.knd with
  | Mesh -> dr +. dc
  | Torus ->
      Float.min dr (float_of_int t.rows -. dr)
      +. Float.min dc (float_of_int t.cols -. dc)

let rows t = t.rows
let cols t = t.cols
let num_nodes t = t.rows * t.cols
let mc_placement t = t.placement
let num_mcs t = Array.length t.mcs

let node_of_coord t (c : Coord.t) = (c.row * t.cols) + c.col

let coord_of_node t n = Coord.make ~row:(n / t.cols) ~col:(n mod t.cols)

let mc_coord t k =
  if k < 0 || k >= Array.length t.mcs then
    invalid_arg "Topology.mc_coord: index out of range";
  t.mcs.(k)

let mc_node t k = node_of_coord t (mc_coord t k)

let distance_to_mc t c k = distance t c (mc_coord t k)

let pp ppf t =
  Format.fprintf ppf "%dx%d %s, %d MCs at %a" t.rows t.cols
    (match t.knd with
    | Mesh -> "mesh"
    | Torus -> "torus")
    (num_mcs t)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Coord.pp)
    (Array.to_list t.mcs)
