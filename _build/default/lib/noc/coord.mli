(** Two-dimensional mesh coordinates.

    A coordinate names a node position on the on-chip mesh: [row] counts
    from the top, [col] from the left, both starting at 0. *)

type t = {
  row : int;
  col : int;
}

val make : row:int -> col:int -> t
(** [make ~row ~col] builds a coordinate. Raises [Invalid_argument] if
    either component is negative. *)

val manhattan : t -> t -> int
(** [manhattan a b] is the Manhattan (L1) distance between [a] and [b],
    i.e. the number of mesh links an X-Y-routed packet traverses. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [(row,col)]. *)
