(** Packet kinds and their flit sizes.

    The network transfers two physical packet shapes: short control
    packets (read/write requests, one flit) and data packets carrying a
    cache line (header flit plus the line payload). *)

type kind =
  | Request  (** miss request travelling towards an LLC bank or MC *)
  | Data  (** cache-line-carrying response or fill *)
  | Writeback  (** dirty-line eviction travelling towards an MC *)

val flits : kind -> line_size:int -> flit_bytes:int -> int
(** [flits kind ~line_size ~flit_bytes] is the number of flits the
    packet occupies on a link: 1 for a request, [1 + ceil(line_size /
    flit_bytes)] for data-carrying packets. *)

val pp_kind : Format.formatter -> kind -> unit
