type t = {
  row : int;
  col : int;
}

let make ~row ~col =
  if row < 0 || col < 0 then
    invalid_arg "Coord.make: negative component";
  { row; col }

let manhattan a b = abs (a.row - b.row) + abs (a.col - b.col)

let equal a b = a.row = b.row && a.col = b.col

let compare a b =
  match Int.compare a.row b.row with
  | 0 -> Int.compare a.col b.col
  | c -> c

let pp ppf { row; col } = Format.fprintf ppf "(%d,%d)" row col
