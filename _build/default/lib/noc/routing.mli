(** Deterministic X-Y (dimension-order) routing over a 2-D mesh.

    Packets first travel along the X dimension (columns), then along the
    Y dimension (rows) — the routing policy of the paper's target
    architecture (Table 4). Paths are returned as sequences of directed
    link identifiers, which index the contention state kept by
    {!Network}. *)

type direction =
  | East  (** towards larger column *)
  | West  (** towards smaller column *)
  | South  (** towards larger row *)
  | North  (** towards smaller row *)

val direction_index : direction -> int
(** Stable 0..3 encoding of a direction. *)

val num_links : Topology.t -> int
(** Upper bound on directed-link identifiers: every node has one
    outgoing link per direction (border links exist but are unused). *)

val link_id : Topology.t -> node:int -> direction -> int
(** Identifier of the directed link leaving [node] in [direction]. *)

val path : Topology.t -> src:int -> dst:int -> int list
(** [path t ~src ~dst] is the ordered list of directed links an X-Y
    routed packet traverses from node [src] to node [dst] (on a torus,
    each dimension takes the shorter way around). Empty when
    [src = dst]. *)

val hop_count : Topology.t -> src:int -> dst:int -> int
(** Number of links on the X-Y path — equals {!Topology.distance}. *)

val iter_path : Topology.t -> src:int -> dst:int -> (int -> unit) -> unit
(** Allocation-free traversal of the path, for the simulator's hot
    loop. The callback receives each directed link id in order. *)
