type direction =
  | East
  | West
  | South
  | North

let direction_index = function
  | East -> 0
  | West -> 1
  | South -> 2
  | North -> 3

let num_links t = 4 * Topology.num_nodes t

let link_id t ~node dir =
  if node < 0 || node >= Topology.num_nodes t then
    invalid_arg "Routing.link_id: node out of range";
  (node * 4) + direction_index dir

let iter_path t ~src ~dst f =
  let cols = Topology.cols t and rows = Topology.rows t in
  let torus = Topology.kind t = Topology.Torus in
  let src_row = src / cols and src_col = src mod cols in
  let dst_row = dst / cols and dst_col = dst mod cols in
  (* Per-dimension direction: on a torus, take the shorter way around
     (ties go towards increasing coordinates). *)
  let step_of cur target size =
    if cur = target then 0
    else if not torus then if cur < target then 1 else -1
    else begin
      let fwd = (target - cur + size) mod size in
      if fwd <= size - fwd then 1 else -1
    end
  in
  (* X first: walk columns. *)
  let node = ref src in
  let col = ref src_col in
  while !col <> dst_col do
    let step = step_of !col dst_col cols in
    let dir = if step > 0 then East else West in
    f ((!node * 4) + direction_index dir);
    col := (!col + step + cols) mod cols;
    node := (src_row * cols) + !col
  done;
  (* Then Y: walk rows. *)
  let row = ref src_row in
  while !row <> dst_row do
    let step = step_of !row dst_row rows in
    let dir = if step > 0 then South else North in
    f ((!node * 4) + direction_index dir);
    row := (!row + step + rows) mod rows;
    node := (!row * cols) + dst_col
  done

let path t ~src ~dst =
  let acc = ref [] in
  iter_path t ~src ~dst (fun l -> acc := l :: !acc);
  List.rev !acc

let hop_count t ~src ~dst =
  Topology.distance t (Topology.coord_of_node t src)
    (Topology.coord_of_node t dst)
