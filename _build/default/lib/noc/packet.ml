type kind =
  | Request
  | Data
  | Writeback

let flits kind ~line_size ~flit_bytes =
  if line_size <= 0 || flit_bytes <= 0 then
    invalid_arg "Packet.flits: non-positive size";
  match kind with
  | Request -> 1
  | Data | Writeback -> 1 + ((line_size + flit_bytes - 1) / flit_bytes)

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Request -> "request"
    | Data -> "data"
    | Writeback -> "writeback")
