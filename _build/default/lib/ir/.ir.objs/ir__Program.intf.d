lib/ir/program.mli: Format Loop_nest
