lib/ir/access.mli: Affine Format
