lib/ir/loop_nest.mli: Access Format
