lib/ir/trace.mli: Layout Program
