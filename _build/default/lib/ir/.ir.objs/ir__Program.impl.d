lib/ir/program.ml: Access Format List Loop_nest Printf String
