lib/ir/iter_set.ml: Array Float Format List Loop_nest Program
