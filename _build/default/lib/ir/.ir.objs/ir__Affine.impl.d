lib/ir/affine.ml: Format List String
