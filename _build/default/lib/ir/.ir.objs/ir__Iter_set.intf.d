lib/ir/iter_set.mli: Format Program
