lib/ir/layout.ml: Array List Mem Program
