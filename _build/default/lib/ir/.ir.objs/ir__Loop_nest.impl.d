lib/ir/loop_nest.ml: Access Format List Printf String
