lib/ir/trace.ml: Access Affine Array Layout List Loop_nest Printf Program
