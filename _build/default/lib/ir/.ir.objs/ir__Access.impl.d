lib/ir/access.ml: Affine Format
