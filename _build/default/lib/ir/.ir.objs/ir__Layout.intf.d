lib/ir/layout.mli: Program
