type caccess =
  | Cdirect of {
      base : int;  (* array base + const offset, bytes *)
      coeffs : int array;  (* per loop var, in bytes *)
      write : bool;
    }
  | Cindirect of {
      abase : int;
      elem : int;
      alen : int;  (* elements, for bounds checking *)
      table : int array;
      pconst : int;
      pcoeffs : int array;
      oconst : int;
      ocoeffs : int array;
      write : bool;
    }

type cnest = {
  par : Loop_nest.loop;
  inner : Loop_nest.loop array;
  body : caccess array;
  nvars : int;
  appi : int;
  compute_per_par_iter : int;
  iterations : int;
}

type t = {
  prog : Program.t;
  layout : Layout.t;
  nests : cnest array;
}

(* Position 0 of the variable vector is the timing-step variable "t";
   the parallel and inner loop variables follow. *)
let step_var = "t"

let compile_coeffs vars e =
  Array.map (fun v -> Affine.coeff e v) vars

(* Static bounds check: the extreme element indices of an affine
   reference over the loop (and step) ranges must stay inside the
   array. *)
let check_direct_bounds prog (n : Loop_nest.t) (a : Access.t) e =
  let decl = Program.array_decl prog a.array_name in
  let ranges =
    (step_var, 0, prog.Program.time_steps - 1)
    :: List.map
         (fun (l : Loop_nest.loop) ->
           (l.var, l.lo, l.lo + ((Loop_nest.trip l - 1) * l.step)))
         (n.par :: n.inner)
  in
  let lo, hi =
    List.fold_left
      (fun (lo, hi) (v, vlo, vhi) ->
        let c = Affine.coeff e v in
        if c >= 0 then (lo + (c * vlo), hi + (c * vhi))
        else (lo + (c * vhi), hi + (c * vlo)))
      (Affine.constant_part e, Affine.constant_part e)
      ranges
  in
  if lo < 0 || hi >= decl.length then
    invalid_arg
      (Printf.sprintf
         "Trace: reference to %s in nest %s ranges over [%d, %d] but the           array has %d elements"
         a.array_name n.name lo hi decl.length)

let compile_access (prog : Program.t) layout vars nest (a : Access.t) =
  let decl = Program.array_decl prog a.array_name in
  let abase = Layout.base layout a.array_name in
  let write = Access.is_write a in
  match a.index with
  | Access.Direct e ->
      check_direct_bounds prog nest a e;
      Cdirect
        {
          base = abase + (decl.elem_size * Affine.constant_part e);
          coeffs =
            Array.map (fun c -> c * decl.elem_size) (compile_coeffs vars e);
          write;
        }
  | Access.Indirect { table; pos; offset } ->
      Cindirect
        {
          abase;
          elem = decl.elem_size;
          alen = decl.length;
          table = Program.find_table prog table;
          pconst = Affine.constant_part pos;
          pcoeffs = compile_coeffs vars pos;
          oconst = Affine.constant_part offset;
          ocoeffs = compile_coeffs vars offset;
          write;
        }

let compile_nest prog layout (n : Loop_nest.t) =
  let vars =
    Array.of_list
      (step_var :: n.par.var
      :: List.map (fun (l : Loop_nest.loop) -> l.var) n.inner)
  in
  {
    par = n.par;
    inner = Array.of_list n.inner;
    body =
      Array.of_list (List.map (compile_access prog layout vars n) n.body);
    nvars = Array.length vars;
    appi = Loop_nest.accesses_per_par_iter n;
    compute_per_par_iter = Loop_nest.inner_trip n * n.compute_cycles;
    iterations = Loop_nest.iterations n;
  }

let create prog layout =
  {
    prog;
    layout;
    nests =
      Array.of_list (List.map (compile_nest prog layout) prog.Program.nests);
  }

let program t = t.prog
let layout t = t.layout
let num_nests t = Array.length t.nests

let get_nest t nest =
  if nest < 0 || nest >= Array.length t.nests then
    invalid_arg "Trace: nest index out of range";
  t.nests.(nest)

let iterations t ~nest = (get_nest t nest).iterations
let accesses_per_par_iter t ~nest = (get_nest t nest).appi
let compute_cycles_per_par_iter t ~nest = (get_nest t nest).compute_per_par_iter

let eval_terms coeffs vals nvars =
  let acc = ref 0 in
  for k = 0 to nvars - 1 do
    acc := !acc + (Array.unsafe_get coeffs k * Array.unsafe_get vals k)
  done;
  !acc

let addr_of cn vals = function
  | Cdirect { base; coeffs; _ } -> base + eval_terms coeffs vals cn.nvars
  | Cindirect
      { abase; elem; alen; table; pconst; pcoeffs; oconst; ocoeffs; _ } ->
      let pos = pconst + eval_terms pcoeffs vals cn.nvars in
      if pos < 0 || pos >= Array.length table then
        invalid_arg
          (Printf.sprintf "Trace: index-table position %d out of bounds" pos);
      let idx = Array.unsafe_get table pos + oconst + eval_terms ocoeffs vals cn.nvars in
      if idx < 0 || idx >= alen then
        invalid_arg
          (Printf.sprintf "Trace: indirect element index %d out of bounds" idx);
      abase + (elem * idx)

let is_write = function
  | Cdirect { write; _ } | Cindirect { write; _ } -> write

(* Walk the inner loops of [cn] with the parallel variable fixed,
   calling [f] per body access. *)
let iter_inner cn vals f =
  let ninner = Array.length cn.inner in
  let body = cn.body in
  let nbody = Array.length body in
  let rec go d =
    if d = ninner then
      for b = 0 to nbody - 1 do
        f (Array.unsafe_get body b)
      done
    else begin
      let l = cn.inner.(d) in
      let v = ref l.lo in
      while !v < l.hi do
        vals.(d + 2) <- !v;
        go (d + 1);
        v := !v + l.step
      done
    end
  in
  go 0

let iter_range ?(step = 0) t ~nest ~lo ~hi f =
  let cn = get_nest t nest in
  if lo < 0 || hi > cn.iterations || lo > hi then
    invalid_arg "Trace.iter_range: bad range";
  let vals = Array.make cn.nvars 0 in
  vals.(0) <- step;
  for i = lo to hi - 1 do
    vals.(1) <- cn.par.lo + (i * cn.par.step);
    iter_inner cn vals (fun ca ->
        f ~addr:(addr_of cn vals ca) ~write:(is_write ca))
  done

let fill_iteration ?(step = 0) t ~nest ~iter ~buf =
  let cn = get_nest t nest in
  if iter < 0 || iter >= cn.iterations then
    invalid_arg "Trace.fill_iteration: iteration out of range";
  if Array.length buf < cn.appi then
    invalid_arg "Trace.fill_iteration: buffer too small";
  let vals = Array.make cn.nvars 0 in
  vals.(0) <- step;
  vals.(1) <- cn.par.lo + (iter * cn.par.step);
  let n = ref 0 in
  iter_inner cn vals (fun ca ->
      let addr = addr_of cn vals ca in
      buf.(!n) <- (addr lsl 1) lor (if is_write ca then 1 else 0);
      incr n);
  !n

let decode_addr enc = enc lsr 1
let decode_write enc = enc land 1 = 1
