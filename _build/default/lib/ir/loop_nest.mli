(** Parallel loop nests.

    A nest has one parallel outermost loop — the dimension whose
    iterations the mapper distributes over cores — and any number of
    sequential inner loops. The body is the list of array references
    performed by each innermost iteration, plus the arithmetic work it
    represents, expressed in core cycles. *)

type loop = {
  var : string;
  lo : int;  (** inclusive *)
  hi : int;  (** exclusive *)
  step : int;  (** positive *)
}

type t = {
  name : string;
  par : loop;  (** the parallel loop *)
  inner : loop list;  (** sequential inner loops, outermost first *)
  body : Access.t list;
  compute_cycles : int;  (** per innermost iteration *)
}

val loop : ?lo:int -> ?step:int -> string -> hi:int -> loop
(** [loop v ~hi] is [for v = lo to hi-1 step step]; [lo] defaults to 0
    and [step] to 1. *)

val make :
  name:string ->
  par:loop ->
  ?inner:loop list ->
  ?compute_cycles:int ->
  Access.t list ->
  t
(** Builds a nest. [compute_cycles] defaults to 4. Raises
    [Invalid_argument] on an empty or ill-formed loop (non-positive
    step, [hi <= lo]). *)

val trip : loop -> int
(** Number of iterations of a single loop. *)

val iterations : t -> int
(** Trip count of the parallel loop — the unit the mapper partitions
    into iteration sets. *)

val inner_trip : t -> int
(** Product of inner-loop trip counts. *)

val accesses_per_par_iter : t -> int
(** Memory references issued by one parallel iteration. *)

val is_regular : t -> bool
(** All references affine. *)

val pp : Format.formatter -> t -> unit
