(** Whole multi-threaded programs.

    A program is a set of array declarations, optional index tables
    (contents of index arrays, known only at runtime), and a sequence of
    parallel loop nests executed [time_steps] times inside an outer
    timing loop — the structure the paper's inspector–executor scheme
    assumes for irregular applications (Section 4). *)

type array_decl = {
  name : string;
  elem_size : int;  (** bytes per element *)
  length : int;  (** number of elements *)
}

type kind =
  | Regular  (** compile-time analysable: CME drives the mapping *)
  | Irregular  (** index-array based: inspector–executor drives it *)

type t = private {
  name : string;
  kind : kind;
  arrays : array_decl list;
  index_tables : (string * int array) list;
  nests : Loop_nest.t list;
  time_steps : int;
}

val create :
  name:string ->
  kind:kind ->
  arrays:array_decl list ->
  ?index_tables:(string * int array) list ->
  ?time_steps:int ->
  Loop_nest.t list ->
  t
(** Builds and validates a program: array and table names must be
    unique, every reference must name a declared array, every
    indirection a declared table, and [time_steps] must be positive
    (default 1). Raises [Invalid_argument] otherwise. *)

val array_decl : t -> string -> array_decl
(** Raises [Not_found] for an undeclared array. *)

val find_table : t -> string -> int array
(** Raises [Not_found] for an undeclared table. *)

val num_nests : t -> int

val total_par_iterations : t -> int
(** Σ over nests of the parallel trip count. *)

val total_accesses_per_step : t -> int
(** Memory references issued by one timing-loop step. *)

val footprint_bytes : t -> int
(** Total bytes of declared arrays (index tables excluded). *)

val num_arrays : t -> int
(** Declared arrays plus index tables — the paper's Table 3 "number of
    arrays" column counts both. *)

val pp : Format.formatter -> t -> unit
