type array_decl = {
  name : string;
  elem_size : int;
  length : int;
}

type kind =
  | Regular
  | Irregular

type t = {
  name : string;
  kind : kind;
  arrays : array_decl list;
  index_tables : (string * int array) list;
  nests : Loop_nest.t list;
  time_steps : int;
}

let check_unique what names =
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg (Printf.sprintf "Program.create: duplicate %s name" what)

let validate_access ~arrays ~tables (a : Access.t) =
  if not (List.exists (fun (d : array_decl) -> d.name = a.array_name) arrays)
  then
    invalid_arg
      (Printf.sprintf "Program.create: reference to undeclared array %S"
         a.array_name);
  match a.index with
  | Access.Direct _ -> ()
  | Access.Indirect { table; _ } ->
      if not (List.mem_assoc table tables) then
        invalid_arg
          (Printf.sprintf "Program.create: reference to undeclared table %S"
             table)

let create ~name ~kind ~arrays ?(index_tables = []) ?(time_steps = 1) nests =
  if nests = [] then invalid_arg "Program.create: no loop nests";
  if time_steps <= 0 then invalid_arg "Program.create: non-positive time_steps";
  List.iter
    (fun d ->
      if d.elem_size <= 0 || d.length <= 0 then
        invalid_arg
          (Printf.sprintf "Program.create: array %S has bad geometry" d.name))
    arrays;
  check_unique "array" (List.map (fun (d : array_decl) -> d.name) arrays);
  check_unique "index table" (List.map fst index_tables);
  List.iter
    (fun (n : Loop_nest.t) ->
      List.iter (validate_access ~arrays ~tables:index_tables) n.body)
    nests;
  { name; kind; arrays; index_tables; nests; time_steps }

let array_decl t name =
  List.find (fun (d : array_decl) -> d.name = name) t.arrays

let find_table t name = List.assoc name t.index_tables

let num_nests t = List.length t.nests

let total_par_iterations t =
  List.fold_left (fun acc n -> acc + Loop_nest.iterations n) 0 t.nests

let total_accesses_per_step t =
  List.fold_left
    (fun acc n ->
      acc + (Loop_nest.iterations n * Loop_nest.accesses_per_par_iter n))
    0 t.nests

let footprint_bytes t =
  List.fold_left (fun acc d -> acc + (d.elem_size * d.length)) 0 t.arrays

let num_arrays t = List.length t.arrays + List.length t.index_tables

let pp ppf t =
  Format.fprintf ppf "@[<v>program %s (%s): %d nests, %d arrays, %d steps@]"
    t.name
    (match t.kind with
    | Regular -> "regular"
    | Irregular -> "irregular")
    (num_nests t) (num_arrays t) t.time_steps
