type entry = {
  base : int;
  elem_size : int;
  extent : int;
}

type t = {
  page_size : int;
  entries : (string * entry) list;  (* allocation order *)
  footprint : int;
}

let allocate ~page_size (p : Program.t) =
  if page_size <= 0 then invalid_arg "Layout.allocate: bad page size";
  let cursor = ref 0 in
  let place name ~bytes ~elem_size =
    let extent = Mem.Address.align_up bytes ~to_:page_size in
    let base = !cursor in
    cursor := base + extent;
    (name, { base; elem_size; extent })
  in
  let array_entries =
    List.map
      (fun (d : Program.array_decl) ->
        place d.name ~bytes:(d.elem_size * d.length) ~elem_size:d.elem_size)
      p.arrays
  in
  let table_entries =
    List.map
      (fun (name, contents) ->
        place name ~bytes:(8 * Array.length contents) ~elem_size:8)
      p.index_tables
  in
  { page_size; entries = array_entries @ table_entries; footprint = !cursor }

let find t name =
  match List.assoc_opt name t.entries with
  | Some e -> e
  | None -> raise Not_found

let base t name = (find t name).base
let elem_size t name = (find t name).elem_size
let extent_bytes t name = (find t name).extent

let with_base t name new_base =
  let found = ref false in
  let entries =
    List.map
      (fun (n, e) ->
        if n = name then begin
          found := true;
          (n, { e with base = new_base })
        end
        else (n, e))
      t.entries
  in
  if not !found then raise Not_found;
  let footprint =
    List.fold_left (fun acc (_, e) -> max acc (e.base + e.extent)) 0 entries
  in
  { t with entries; footprint }

let footprint t = t.footprint
let arrays t = List.map fst t.entries
let page_size t = t.page_size
