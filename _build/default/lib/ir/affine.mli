(** Affine expressions over loop variables.

    An affine expression is [const + Σ coeff_v · v] for loop variables
    [v]. These are the index expressions the compiler can analyse
    exactly — the paper's "regular" references (Section 4). *)

type t

val const : int -> t

val var : ?coeff:int -> string -> t
(** [var ~coeff v] is [coeff · v]; [coeff] defaults to 1. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : int -> t -> t

val ( + ) : t -> t -> t

val ( * ) : int -> t -> t

val constant_part : t -> int

val coeff : t -> string -> int
(** Coefficient of a variable ([0] if absent). *)

val vars : t -> string list
(** Variables with non-zero coefficients, sorted. *)

val eval : (string -> int) -> t -> int
(** [eval env e] evaluates [e] with variable values from [env]. *)

val is_constant : t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
