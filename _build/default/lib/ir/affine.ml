type t = {
  const : int;
  terms : (string * int) list;  (* sorted by variable, no zero coeffs *)
}

let normalize terms =
  terms
  |> List.filter (fun (_, c) -> c <> 0)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let const c = { const = c; terms = [] }

let var ?(coeff = 1) v = { const = 0; terms = normalize [ (v, coeff) ] }

let merge a b =
  let rec go xs ys =
    match (xs, ys) with
    | [], r | r, [] -> r
    | ((vx, cx) as x) :: xs', ((vy, cy) as y) :: ys' -> (
        match String.compare vx vy with
        | 0 ->
            let c = cx + cy in
            if c = 0 then go xs' ys' else (vx, c) :: go xs' ys'
        | n when n < 0 -> x :: go xs' ys
        | _ -> y :: go xs ys')
  in
  go a b

let add a b = { const = a.const + b.const; terms = merge a.terms b.terms }

let scale k e =
  if k = 0 then const 0
  else { const = k * e.const; terms = List.map (fun (v, c) -> (v, k * c)) e.terms }

let sub a b = add a (scale (-1) b)

let constant_part e = e.const

let coeff e v =
  match List.assoc_opt v e.terms with
  | Some c -> c
  | None -> 0

let vars e = List.map fst e.terms

let eval env e =
  List.fold_left (fun acc (v, c) -> acc + (c * env v)) e.const e.terms

let is_constant e = e.terms = []

let ( + ) = add
let ( * ) = scale

let equal a b = a.const = b.const && a.terms = b.terms

let pp ppf e =
  let pp_term ppf (v, c) =
    if c = 1 then Format.pp_print_string ppf v
    else Format.fprintf ppf "%d*%s" c v
  in
  match (e.terms, e.const) with
  | [], c -> Format.pp_print_int ppf c
  | ts, 0 ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
        pp_term ppf ts
  | ts, c ->
      Format.fprintf ppf "%a + %d"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
           pp_term)
        ts c
