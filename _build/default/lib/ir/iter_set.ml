type t = {
  nest : int;
  lo : int;
  hi : int;
}

let size t = t.hi - t.lo

let partition_nest ~iterations ~nest ~fraction =
  if fraction <= 0. || fraction > 1. then
    invalid_arg "Iter_set.partition: fraction out of (0, 1]";
  if iterations <= 0 then invalid_arg "Iter_set.partition: empty nest";
  let set_size =
    max 1 (int_of_float (Float.round (fraction *. float_of_int iterations)))
  in
  let count = (iterations + set_size - 1) / set_size in
  Array.init count (fun k ->
      { nest; lo = k * set_size; hi = min iterations ((k + 1) * set_size) })

let partition (p : Program.t) ~fraction =
  p.nests
  |> List.mapi (fun nest n ->
         partition_nest ~iterations:(Loop_nest.iterations n) ~nest ~fraction)
  |> Array.concat

let pp ppf t = Format.fprintf ppf "set(nest %d, [%d,%d))" t.nest t.lo t.hi
