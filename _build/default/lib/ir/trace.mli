(** Deterministic expansion of programs into address streams.

    [create] compiles a program against a memory layout: every reference
    is lowered to precomputed base/stride form so address generation is
    a few integer operations per access. Both the compile-time analysis
    (CME, affinity construction), the runtime inspector, and the
    simulator replay exactly the same stream, which is what makes
    compile-time MAI/CAI estimates comparable to observed ones.

    Addresses are *virtual*; callers translate through a
    {!Mem.Page_table} where needed. *)

type t

val create : Program.t -> Layout.t -> t
(** Compiles all nests. Raises [Invalid_argument] if a reference's
    index table or array cannot be resolved (programs built with
    {!Program.create} always can), or if an affine reference can
    provably range outside its array over the loop and timing-step
    bounds. *)

val program : t -> Program.t

val layout : t -> Layout.t

val num_nests : t -> int

val iterations : t -> nest:int -> int

val accesses_per_par_iter : t -> nest:int -> int

val compute_cycles_per_par_iter : t -> nest:int -> int

val step_var : string
(** The reserved timing-step variable name (["t"]): references may use
    it to address per-step data slices; it is bound to the timing-loop
    index during expansion. *)

val iter_range :
  ?step:int ->
  t ->
  nest:int ->
  lo:int ->
  hi:int ->
  (addr:int -> write:bool -> unit) ->
  unit
(** [iter_range t ~nest ~lo ~hi f] calls [f] for every access issued by
    parallel iterations [lo, hi) of [nest], in program order, with the
    step variable bound to [step] (default 0). Raises
    [Invalid_argument] on a range outside the nest's iteration space,
    or if an indirection reads outside its index table. *)

val fill_iteration :
  ?step:int -> t -> nest:int -> iter:int -> buf:int array -> int
(** [fill_iteration t ~nest ~iter ~buf] writes the encoded accesses of
    one parallel iteration into [buf] and returns their count. Each
    element encodes [(addr lsl 1) lor write_bit] — see {!decode_addr}
    and {!decode_write}. [buf] must hold at least
    [accesses_per_par_iter] elements. *)

val decode_addr : int -> int

val decode_write : int -> bool
