(** Memory layout: virtual base addresses of arrays.

    The allocator places arrays (and index tables) back-to-back on page
    boundaries — the deterministic layout both the compile-time analysis
    and the simulator share. A layout can be rebased per array, which is
    how the data-layout-optimisation baseline expresses its
    transformations. *)

type t

val allocate : page_size:int -> Program.t -> t
(** Sequential page-aligned allocation, arrays first (in declaration
    order), then index tables. *)

val base : t -> string -> int
(** Virtual base address of an array or index table. Raises
    [Not_found] if unknown. *)

val elem_size : t -> string -> int
(** Element size of an array ([8] for index tables). *)

val extent_bytes : t -> string -> int
(** Allocated bytes (page-aligned) of an array. *)

val with_base : t -> string -> int -> t
(** Functional update of one array's base address. *)

val footprint : t -> int
(** One past the highest allocated byte. *)

val arrays : t -> string list
(** All allocated names, in allocation order. *)

val page_size : t -> int
