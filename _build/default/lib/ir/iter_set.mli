(** Iteration sets — the paper's scheduling granule.

    An iteration set is a contiguous block of consecutive parallel-loop
    iterations of one nest (Section 3.2). Consecutive iterations share
    spatial locality, so they are mapped as a unit; the default size is
    0.25 % of the nest's iterations (Table 4). *)

type t = {
  nest : int;  (** nest index within the program *)
  lo : int;  (** first parallel iteration (inclusive) *)
  hi : int;  (** last parallel iteration (exclusive) *)
}

val size : t -> int

val partition : Program.t -> fraction:float -> t array
(** [partition p ~fraction] splits every nest's parallel iterations
    into sets of [fraction] of that nest's trip count (at least one
    iteration per set; the last set of a nest may be smaller). Sets are
    returned in nest order then iteration order, so the array index is
    the global set id. Raises [Invalid_argument] unless
    [0 < fraction <= 1]. *)

val partition_nest : iterations:int -> nest:int -> fraction:float -> t array
(** Single-nest variant of {!partition}. *)

val pp : Format.formatter -> t -> unit
