type index =
  | Direct of Affine.t
  | Indirect of {
      table : string;
      pos : Affine.t;
      offset : Affine.t;
    }

type kind =
  | Read
  | Write

type t = {
  array_name : string;
  index : index;
  kind : kind;
}

let read a index = { array_name = a; index; kind = Read }
let write a index = { array_name = a; index; kind = Write }
let direct e = Direct e
let indirect ~table ~pos = Indirect { table; pos; offset = Affine.const 0 }

let is_regular t =
  match t.index with
  | Direct _ -> true
  | Indirect _ -> false

let is_write t =
  match t.kind with
  | Write -> true
  | Read -> false

let pp ppf t =
  let arrow = if is_write t then "<-" else "->" in
  match t.index with
  | Direct e -> Format.fprintf ppf "%s[%a] %s" t.array_name Affine.pp e arrow
  | Indirect { table; pos; offset } ->
      if Affine.is_constant offset && Affine.constant_part offset = 0 then
        Format.fprintf ppf "%s[%s[%a]] %s" t.array_name table Affine.pp pos
          arrow
      else
        Format.fprintf ppf "%s[%s[%a]+%a] %s" t.array_name table Affine.pp pos
          Affine.pp offset arrow
