type loop = {
  var : string;
  lo : int;
  hi : int;
  step : int;
}

type t = {
  name : string;
  par : loop;
  inner : loop list;
  body : Access.t list;
  compute_cycles : int;
}

let loop ?(lo = 0) ?(step = 1) var ~hi = { var; lo; hi; step }

let check_loop l =
  if l.step <= 0 then
    invalid_arg (Printf.sprintf "Loop_nest: loop %s has non-positive step" l.var);
  if l.hi <= l.lo then
    invalid_arg (Printf.sprintf "Loop_nest: loop %s is empty" l.var)

let make ~name ~par ?(inner = []) ?(compute_cycles = 4) body =
  check_loop par;
  List.iter check_loop inner;
  if compute_cycles < 0 then
    invalid_arg "Loop_nest.make: negative compute cycles";
  let vars = par.var :: List.map (fun l -> l.var) inner in
  let sorted = List.sort_uniq String.compare vars in
  if List.length sorted <> List.length vars then
    invalid_arg "Loop_nest.make: duplicate loop variable";
  { name; par; inner; body; compute_cycles }

let trip l = ((l.hi - l.lo - 1) / l.step) + 1

let iterations t = trip t.par

let inner_trip t = List.fold_left (fun acc l -> acc * trip l) 1 t.inner

let accesses_per_par_iter t = inner_trip t * List.length t.body

let is_regular t = List.for_all Access.is_regular t.body

let pp ppf t =
  let pp_loop ppf l =
    Format.fprintf ppf "for %s = %d..%d step %d" l.var l.lo (l.hi - 1) l.step
  in
  Format.fprintf ppf "@[<v 2>nest %s:@ par %a@ %a@ body: %a@]" t.name pp_loop
    t.par
    (Format.pp_print_list pp_loop)
    t.inner
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Access.pp)
    t.body
