(** Array references inside a loop body.

    A reference is either *regular* — an affine element index the
    compiler analyses at compile time — or *irregular* — an index-array
    indirection [A\[idx\[pos\] + offset\]] whose targets are only known
    at runtime, handled by the inspector–executor scheme (paper,
    Section 4). *)

type index =
  | Direct of Affine.t  (** element index is an affine expression *)
  | Indirect of {
      table : string;  (** name of the index array *)
      pos : Affine.t;  (** affine position within the index array *)
      offset : Affine.t;  (** affine addend to the looked-up value *)
    }

type kind =
  | Read
  | Write

type t = {
  array_name : string;
  index : index;
  kind : kind;
}

val read : string -> index -> t

val write : string -> index -> t

val direct : Affine.t -> index

val indirect : table:string -> pos:Affine.t -> index
(** Indirection with a zero offset. *)

val is_regular : t -> bool

val is_write : t -> bool

val pp : Format.formatter -> t -> unit
