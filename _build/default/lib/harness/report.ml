let table ~title ~headers rows =
  let all = headers :: rows in
  let cols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all
  in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let render row =
    List.mapi (fun c w ->
        pad (Option.value (List.nth_opt row c) ~default:"") w)
      widths
    |> String.concat "  "
  in
  print_newline ();
  print_endline title;
  print_endline (String.make (String.length title) '-');
  print_endline (render headers);
  print_endline
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun r -> print_endline (render r)) rows;
  flush stdout

let geomean_ratio ratios =
  match ratios with
  | [] -> 1.
  | _ ->
      let log_sum =
        List.fold_left (fun acc r -> acc +. Float.log (Float.max r 1e-6)) 0.
          ratios
      in
      Float.exp (log_sum /. float_of_int (List.length ratios))

let geomean_reduction pcts =
  let ratios = List.map (fun p -> 1. -. (p /. 100.)) pcts in
  100. *. (1. -. geomean_ratio ratios)

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let pct x = Printf.sprintf "%.1f" x
let f3 x = Printf.sprintf "%.3f" x
