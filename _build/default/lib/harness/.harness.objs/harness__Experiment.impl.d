lib/harness/experiment.ml: Baselines Cache Digest Extensions Hashtbl Ir Locmap Machine Marshal Mem Workloads
