lib/harness/report.mli:
