lib/harness/figures.mli:
