lib/harness/report.ml: Float List Option Printf String
