lib/harness/experiment.mli: Ir Locmap Machine Workloads
