lib/harness/figures.ml: Array Cache Experiment Format Hashtbl Ir List Locmap Machine Mem Noc Option Printf Report Workloads
