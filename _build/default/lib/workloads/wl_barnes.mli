(** barnes — Barnes-Hut n-body tree walk (Splash-2).

    Irregular: clustered neighbour lists with 35 % long-range tree-cell
    links over misaligned per-step slices; weakly localisable (one of
    the paper's smallest winners).

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
