(* volrend — volume rendering (Splash-2).

   Ray casting through a voxel octree: samples are spread widely
   through misaligned per-frame slices (40 % long-range), so per-set MC
   affinity is weak and drifts between frames — the paper likewise
   reports small savings. *)

open Wl_common

let degree = 8
let steps = 8

let program ?(scale = 1.0) () =
  let rays = misaligned (scaled scale 6144) in
  let voxels = misaligned (scaled scale 16384) in
  let r = rng ~seed:53 in
  let sample =
    clustered_table ~rng:r ~n:rays ~degree ~spread:(voxels / 2)
      ~long_range:0.4 ~target:voxels
  in
  let vox, vo = sliced "vox" voxels ~steps in
  let pixel, po = sliced "pixel" rays ~steps in
  let image, io = sliced "image" rays ~steps in
  let d = v "d" in
  let cast =
    Ir.Loop_nest.make ~name:"cast"
      ~par:(Ir.Loop_nest.loop "i" ~hi:rays)
      ~inner:[ Ir.Loop_nest.loop "d" ~hi:degree ]
      ~compute_cycles:20
      [
        rd_at "vox" ~offset:vo ~table:"sample" ~pos:((degree *! i_) +! d);
        wr "pixel" (i_ +! po);
      ]
  in
  let composite =
    Ir.Loop_nest.make ~name:"composite"
      ~par:(Ir.Loop_nest.loop "i" ~hi:rays)
      ~compute_cycles:12
      [ rd "pixel" (i_ +! po); wr "image" (i_ +! io) ]
  in
  Ir.Program.create ~name:"volrend" ~kind:Ir.Program.Irregular
    ~arrays:[ vox; pixel; image ]
    ~index_tables:[ ("sample", sample) ]
    ~time_steps:steps
    [ cast; composite ]
