(** fft — radix-2 butterfly stage and reorder pass.

    Regular: butterflies touch both array halves (whole interleave
    periods apart) plus a strided reorder with poor spatial locality.

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
