(** lu — right-looking LU factorisation.

    Regular: row-major trailing update plus a pitch-aligned pivot-column
    elimination.

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
