(** volrend — volume renderer (Splash-2).

    Irregular: ray casting over misaligned voxel slices with 40 %
    long-range samples; weakly localisable, like the paper reports.

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
