(* moldyn — molecular dynamics with Verlet neighbour lists (Han &
   Tseng).

   A dense, extremely local pair list (cell-sorted particles, 2 %
   long-range) over aligned slices: after inspection, almost all of a
   set's traffic binds to one MC — the paper reports moldyn among its
   biggest winners. *)

open Wl_common

let degree = 16
let steps = 8

let program ?(scale = 1.0) () =
  let n = aligned (scaled scale 5120) in
  let r = rng ~seed:83 in
  let nbr =
    clustered_table ~rng:r ~n ~degree ~spread:96 ~long_range:0.02 ~target:n
  in
  let x, xo = sliced "x" n ~steps in
  let f, fo = sliced "f" n ~steps in
  let vold, vo = sliced "vold" n ~steps in
  let d = v "d" in
  let forces =
    Ir.Loop_nest.make ~name:"compute_forces"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~inner:[ Ir.Loop_nest.loop "d" ~hi:degree ]
      ~compute_cycles:20
      [
        rd "x" (i_ +! xo);
        rd_at "x" ~offset:xo ~table:"nbr" ~pos:((degree *! i_) +! d);
        wr "f" (i_ +! fo);
      ]
  in
  let integrate =
    Ir.Loop_nest.make ~name:"verlet_update"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:16
      [
        rd "f" (i_ +! fo);
        rd "vold" (i_ +! vo);
        wr "vold" (i_ +! vo);
        wr "x" (i_ +! xo);
      ]
  in
  Ir.Program.create ~name:"moldyn" ~kind:Ir.Program.Irregular
    ~arrays:[ x; f; vold ]
    ~index_tables:[ ("nbr", nbr) ]
    ~time_steps:steps
    [ forces; integrate ]
