(** nbf — non-bonded force kernel (Han & Tseng).

    Irregular: tight cutoff-radius pair lists driving gathers over
    particle positions, plus a coordinate update.

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
