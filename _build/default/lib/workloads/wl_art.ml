(* art — adaptive-resonance image recognition (SPEC OMP).

   The weight matrix is stored column-major (one column per F2 neuron,
   pitch-padded rows — see {!Wl_common.pitch}): scanning a neuron\'s
   weights walks a single LLC bank and MC. An output sweep streams the
   activations. *)

open Wl_common

let base_kdim = 8

let program ?(scale = 1.0) () =
  (* Larger inputs deepen the weight window; neurons span one pitch. *)
  let kdim = max 2 (scaled scale base_kdim) in
  let n = pitch in
  let w, wo = sliced "w" (pitch * kdim) ~steps:2 in
  let y, yo = sliced "y" n ~steps:2 in
  let k = v "k" in
  let f2_scan =
    Ir.Loop_nest.make ~name:"f2_scan"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~inner:[ Ir.Loop_nest.loop "k" ~hi:kdim ]
      ~compute_cycles:16
      [ rd "w" (i_ +! (pitch *! k) +! wo); rd "xin" k; wr "y" (i_ +! yo) ]
  in
  let output =
    Ir.Loop_nest.make ~name:"output_sweep"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:12
      [ rd "y" (i_ +! yo); wr "y" (i_ +! yo) ]
  in
  Ir.Program.create ~name:"art" ~kind:Ir.Program.Regular
    ~arrays:[ w; arr "xin" kdim; y ]
    ~time_steps:2
    [ f2_scan; output ]
