(* water — water molecule dynamics (Splash-2).

   Intra-molecular forces stream over each molecule's own state;
   inter-molecular forces read a tight cutoff-radius neighbour list
   (high locality, 10 % long-range). *)

open Wl_common

let degree = 10
let steps = 8

let program ?(scale = 1.0) () =
  let n = aligned (scaled scale 5120) in
  let r = rng ~seed:61 in
  let nbr =
    clustered_table ~rng:r ~n ~degree ~spread:384 ~long_range:0.1 ~target:n
  in
  let pos, po = sliced "pos" n ~steps in
  let bond, bo = sliced "bond" n ~steps in
  let force, fo = sliced "force" n ~steps in
  let d = v "d" in
  let intra =
    Ir.Loop_nest.make ~name:"intra_forces"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:36
      [ rd "pos" (i_ +! po); rd "bond" (i_ +! bo); wr "force" (i_ +! fo) ]
  in
  let inter =
    Ir.Loop_nest.make ~name:"inter_forces"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~inner:[ Ir.Loop_nest.loop "d" ~hi:degree ]
      ~compute_cycles:24
      [
        rd "pos" (i_ +! po);
        rd_at "pos" ~offset:po ~table:"nbr" ~pos:((degree *! i_) +! d);
        wr "force" (i_ +! fo);
      ]
  in
  let integrate =
    Ir.Loop_nest.make ~name:"integrate"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:16
      [ rd "force" (i_ +! fo); wr "pos" (i_ +! po) ]
  in
  Ir.Program.create ~name:"water" ~kind:Ir.Program.Irregular
    ~arrays:[ pos; bond; force ]
    ~index_tables:[ ("nbr", nbr) ]
    ~time_steps:steps
    [ intra; inter; integrate ]
