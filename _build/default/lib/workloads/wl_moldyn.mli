(** moldyn — molecular dynamics with Verlet lists (Han & Tseng).

    Irregular: dense, cell-sorted neighbour lists (2 % long-range) over
    aligned slices; one of the paper's biggest winners.

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
