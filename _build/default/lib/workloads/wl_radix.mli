(** radix — radix sort (Splash-2).

    Irregular: bucket-local histogram scatter and permutation writes;
    fresh key batches per timing step.

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
