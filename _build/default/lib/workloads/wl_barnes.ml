(* barnes — Barnes-Hut n-body (Splash-2).

   Tree-walk interactions: each body reads a neighbour list that mixes
   nearby bodies with far tree cells (35 % long-range links), over
   *misaligned* per-step data slices. Both properties limit how much
   any mapping can localise — the paper also reports barnes among its
   smallest winners. *)

open Wl_common

let degree = 8
let steps = 8

let program ?(scale = 1.0) () =
  let n = misaligned (scaled scale 6144) in
  let r = rng ~seed:11 in
  let nbr =
    clustered_table ~rng:r ~n ~degree ~spread:3072 ~long_range:0.35 ~target:n
  in
  let pos, po = sliced "pos" n ~steps in
  let acc, ao = sliced "acc" n ~steps in
  let vel, vo = sliced "vel" n ~steps in
  let d = v "d" in
  let forces =
    Ir.Loop_nest.make ~name:"tree_walk"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~inner:[ Ir.Loop_nest.loop "d" ~hi:degree ]
      ~compute_cycles:28
      [
        rd "pos" (i_ +! po);
        rd_at "pos" ~offset:po ~table:"nbr" ~pos:((degree *! i_) +! d);
        wr "acc" (i_ +! ao);
      ]
  in
  let advance =
    Ir.Loop_nest.make ~name:"advance"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:20
      [
        rd "acc" (i_ +! ao);
        rd "vel" (i_ +! vo);
        wr "vel" (i_ +! vo);
        wr "pos" (i_ +! po);
      ]
  in
  Ir.Program.create ~name:"barnes" ~kind:Ir.Program.Irregular
    ~arrays:[ pos; acc; vel ]
    ~index_tables:[ ("nbr", nbr) ]
    ~time_steps:steps
    [ forces; advance ]
