(** raytrace — ray tracer (Splash-2).

    Irregular: image-coherent geometry hits with a 30 % incoherent
    reflection tail; fresh rays every frame (timing step).

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
