(** mxm — dense matrix multiplication.

    Regular: streaming row blocks of A with an L1-resident B tile and
    accumulation into C.

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
