(* swim — shallow-water finite differences (ADI-style sweeps).

   One row-major sweep, one *column* sweep over the padded 2-D fields
   (pitch-aligned rows, see {!Wl_common.pitch}), and a copy-back. The
   column sweep keeps each column on a single LLC bank and MC, which is
   what makes swim one of the paper's biggest winners under both LLC
   organisations. *)

open Wl_common

let base_rows = 4

let program ?(scale = 1.0) () =
  (* Larger inputs add rows; the column dimension is one pitch wide. *)
  let rows = max 2 (scaled scale base_rows) in
  let cols = pitch in
  let n = pitch * rows in
  let fields = [ "u"; "v"; "p"; "unew"; "vnew"; "pnew" ] in
  let decls, off =
    let ds = ref [] in
    let off = ref (Ir.Affine.const 0) in
    List.iter
      (fun f ->
        let d, o = sliced f n ~steps:2 in
        ds := d :: !ds;
        off := o)
      fields;
    (List.rev !ds, !off)
  in
  let j = v "j" in
  let at2 = i_ +! (pitch *! j) +! off in
  let row_sweep =
    Ir.Loop_nest.make ~name:"row_sweep"
      ~par:(Ir.Loop_nest.loop "i" ~hi:(n - 2))
      ~compute_cycles:28
      [
        rd "u" (i_ +! off);
        rd "v" (i_ +! off);
        rd "p" (i_ +! c 1 +! off);
        wr "unew" (i_ +! off);
        wr "vnew" (i_ +! off);
      ]
  in
  let column_sweep =
    Ir.Loop_nest.make ~name:"column_sweep"
      ~par:(Ir.Loop_nest.loop "i" ~hi:cols)
      ~inner:[ Ir.Loop_nest.loop "j" ~hi:rows ]
      ~compute_cycles:24
      [ rd "unew" at2; rd "vnew" at2; wr "pnew" at2 ]
  in
  let copy_back =
    Ir.Loop_nest.make ~name:"copy_back"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:12
      [ rd "pnew" (i_ +! off); wr "p" (i_ +! off) ]
  in
  Ir.Program.create ~name:"swim" ~kind:Ir.Program.Regular ~arrays:decls
    ~time_steps:2
    [ row_sweep; column_sweep; copy_back ]
