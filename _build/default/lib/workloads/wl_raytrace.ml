(* raytrace — ray tracing (Splash-2).

   Rays traverse a spatial acceleration structure: consecutive rays hit
   mostly nearby geometry (image-space coherence) with a 30 % incoherent
   tail (reflections), and write a private framebuffer streamingly. A
   fresh bundle of rays arrives every frame (timing step). *)

open Wl_common

let degree = 6
let steps = 8

let program ?(scale = 1.0) () =
  let rays = aligned (scaled scale 8192) in
  let geom = aligned (scaled scale 4096) in
  let r = rng ~seed:41 in
  let hit =
    clustered_table ~rng:r ~n:rays ~degree ~spread:512 ~long_range:0.3
      ~target:geom
  in
  let ray, rayo = sliced "ray" rays ~steps in
  let tri, trio = sliced "tri" geom ~steps in
  let shade, so = sliced "shade" rays ~steps in
  let fb, fbo = sliced "fb" rays ~steps in
  let d = v "d" in
  let trace =
    Ir.Loop_nest.make ~name:"trace"
      ~par:(Ir.Loop_nest.loop "i" ~hi:rays)
      ~inner:[ Ir.Loop_nest.loop "d" ~hi:degree ]
      ~compute_cycles:24
      [
        rd "ray" (i_ +! rayo);
        rd_at "tri" ~offset:trio ~table:"hit" ~pos:((degree *! i_) +! d);
        wr "shade" (i_ +! so);
      ]
  in
  let write_fb =
    Ir.Loop_nest.make ~name:"framebuffer"
      ~par:(Ir.Loop_nest.loop "i" ~hi:rays)
      ~compute_cycles:8
      [ rd "shade" (i_ +! so); wr "fb" (i_ +! fbo) ]
  in
  Ir.Program.create ~name:"raytrace" ~kind:Ir.Program.Irregular
    ~arrays:[ ray; tri; shade; fb ]
    ~index_tables:[ ("hit", hit) ]
    ~time_steps:steps
    [ trace; write_fb ]
