lib/workloads/wl_radiosity.mli: Ir
