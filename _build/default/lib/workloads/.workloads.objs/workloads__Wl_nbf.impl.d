lib/workloads/wl_nbf.ml: Ir Wl_common
