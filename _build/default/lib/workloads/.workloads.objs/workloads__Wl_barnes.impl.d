lib/workloads/wl_barnes.ml: Ir Wl_common
