lib/workloads/wl_lu.mli: Ir
