lib/workloads/wl_raytrace.mli: Ir
