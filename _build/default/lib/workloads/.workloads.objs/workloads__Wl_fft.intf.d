lib/workloads/wl_fft.mli: Ir
