lib/workloads/wl_hpccg.mli: Ir
