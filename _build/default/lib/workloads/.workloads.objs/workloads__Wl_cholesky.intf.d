lib/workloads/wl_cholesky.mli: Ir
