lib/workloads/wl_diff.mli: Ir
