lib/workloads/wl_common.ml: Array Float Ir Random
