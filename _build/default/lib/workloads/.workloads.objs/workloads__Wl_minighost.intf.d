lib/workloads/wl_minighost.mli: Ir
