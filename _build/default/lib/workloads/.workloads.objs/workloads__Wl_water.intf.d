lib/workloads/wl_water.mli: Ir
