lib/workloads/wl_art.mli: Ir
