lib/workloads/wl_fmm.mli: Ir
