lib/workloads/wl_raytrace.ml: Ir Wl_common
