lib/workloads/wl_minighost.ml: Ir Wl_common
