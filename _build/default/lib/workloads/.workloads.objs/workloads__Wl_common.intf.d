lib/workloads/wl_common.mli: Ir Random
