lib/workloads/wl_swim.mli: Ir
