lib/workloads/wl_diff.ml: Ir Wl_common
