lib/workloads/wl_moldyn.ml: Ir Wl_common
