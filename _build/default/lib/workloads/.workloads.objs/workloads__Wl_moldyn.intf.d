lib/workloads/wl_moldyn.mli: Ir
