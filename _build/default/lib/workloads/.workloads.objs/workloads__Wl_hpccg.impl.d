lib/workloads/wl_hpccg.ml: Ir Wl_common
