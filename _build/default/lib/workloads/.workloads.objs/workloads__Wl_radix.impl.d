lib/workloads/wl_radix.ml: Ir Wl_common
