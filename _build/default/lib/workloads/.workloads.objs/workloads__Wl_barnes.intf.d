lib/workloads/wl_barnes.mli: Ir
