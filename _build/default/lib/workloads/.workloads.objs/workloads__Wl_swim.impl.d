lib/workloads/wl_swim.ml: Ir List Wl_common
