lib/workloads/wl_lulesh.mli: Ir
