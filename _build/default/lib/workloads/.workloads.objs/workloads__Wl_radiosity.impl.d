lib/workloads/wl_radiosity.ml: Ir Wl_common
