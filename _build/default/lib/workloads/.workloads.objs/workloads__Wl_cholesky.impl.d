lib/workloads/wl_cholesky.ml: Ir Wl_common
