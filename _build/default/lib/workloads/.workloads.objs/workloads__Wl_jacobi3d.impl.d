lib/workloads/wl_jacobi3d.ml: Ir Wl_common
