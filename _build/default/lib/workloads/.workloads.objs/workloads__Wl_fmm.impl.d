lib/workloads/wl_fmm.ml: Ir Wl_common
