lib/workloads/wl_volrend.ml: Ir Wl_common
