lib/workloads/wl_water.ml: Ir Wl_common
