lib/workloads/wl_radix.mli: Ir
