lib/workloads/wl_equake.mli: Ir
