lib/workloads/wl_equake.ml: Ir Wl_common
