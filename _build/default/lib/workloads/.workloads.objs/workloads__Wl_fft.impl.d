lib/workloads/wl_fft.ml: Ir Wl_common
