lib/workloads/wl_lulesh.ml: Ir Wl_common
