lib/workloads/wl_art.ml: Ir Wl_common
