lib/workloads/wl_volrend.mli: Ir
