lib/workloads/wl_lu.ml: Ir Wl_common
