lib/workloads/wl_nbf.mli: Ir
