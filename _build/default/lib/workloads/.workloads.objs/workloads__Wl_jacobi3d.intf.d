lib/workloads/wl_jacobi3d.mli: Ir
