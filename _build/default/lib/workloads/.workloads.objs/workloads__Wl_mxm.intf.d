lib/workloads/wl_mxm.mli: Ir
