lib/workloads/wl_mxm.ml: Ir Wl_common
