(* cholesky — blocked factorisation sweeps.

   The trailing-matrix update streams row-major; the column scaling
   walks matrix columns of the pitch-padded layout (one LLC bank and
   one MC per column — see {!Wl_common.pitch}), reusing the lines the
   update just brought into the LLC. *)

open Wl_common

let base_rows = 6

let program ?(scale = 1.0) () =
  let rows = max 2 (scaled scale base_rows) in
  let cols = pitch in
  let n = pitch * rows in
  let m, mo = sliced "M" n ~steps:2 in
  let dg, dgo = sliced "D" pitch ~steps:2 in
  let j = v "j" in
  let update =
    Ir.Loop_nest.make ~name:"trailing_update"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:20
      [ rd "M" (i_ +! mo); wr "M" (i_ +! mo) ]
  in
  let scale_columns =
    Ir.Loop_nest.make ~name:"scale_columns"
      ~par:(Ir.Loop_nest.loop "i" ~hi:cols)
      ~inner:[ Ir.Loop_nest.loop "j" ~hi:rows ]
      ~compute_cycles:16
      [
        rd "D" (i_ +! dgo);
        rd "M" (i_ +! (pitch *! j) +! mo);
        wr "M" (i_ +! (pitch *! j) +! mo);
      ]
  in
  Ir.Program.create ~name:"cholesky" ~kind:Ir.Program.Regular
    ~arrays:[ m; dg ] ~time_steps:2
    [ update; scale_columns ]
