(* radiosity — hierarchical radiosity (Splash-2).

   Patch-to-patch visibility interactions: each patch samples a dozen
   other patches with only loose spatial structure (scene-graph order,
   25 % long-range), plus an energy-redistribution sweep. *)

open Wl_common

let degree = 12
let steps = 8

let program ?(scale = 1.0) () =
  let n = aligned (scaled scale 5120) in
  let r = rng ~seed:37 in
  let vis =
    clustered_table ~rng:r ~n ~degree ~spread:1536 ~long_range:0.25 ~target:n
  in
  let rad, ro = sliced "rad" n ~steps in
  let ff, fo = sliced "ff" n ~steps in
  let gathered, go = sliced "gathered" n ~steps in
  let d = v "d" in
  let gather =
    Ir.Loop_nest.make ~name:"gather_radiosity"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~inner:[ Ir.Loop_nest.loop "d" ~hi:degree ]
      ~compute_cycles:20
      [
        rd_at "rad" ~offset:ro ~table:"vis" ~pos:((degree *! i_) +! d);
        rd_at "ff" ~offset:fo ~table:"vis" ~pos:((degree *! i_) +! d);
        wr "gathered" (i_ +! go);
      ]
  in
  let shoot =
    Ir.Loop_nest.make ~name:"shoot"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:16
      [ rd "gathered" (i_ +! go); rd "rad" (i_ +! ro); wr "rad" (i_ +! ro) ]
  in
  Ir.Program.create ~name:"radiosity" ~kind:Ir.Program.Irregular
    ~arrays:[ rad; ff; gathered ]
    ~index_tables:[ ("vis", vis) ]
    ~time_steps:steps
    [ gather; shoot ]
