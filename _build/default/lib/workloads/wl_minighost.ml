(* minighost — 3-D stencil with halo exchange, pencil traversal.

   Same pitch-aligned pencil sweep as jacobi-3d, plus pack/unpack nests
   that stream the boundary faces into exchange buffers. *)

open Wl_common

let nx = 32
let planes = 3

let program ?(scale = 1.0) () =
  let plane = aligned (scaled scale pitch) in
  let n = plane * (planes + 2) in
  let g, go = sliced "g" n ~steps:2 in
  let gout, gouto = sliced "gout" n ~steps:2 in
  let faces = max 256 (plane / nx) in
  let z = v "z" in
  let at d = i_ +! (plane *! z) +! c (plane + d) +! go in
  let sweep =
    Ir.Loop_nest.make ~name:"stencil_pencil"
      ~par:(Ir.Loop_nest.loop "i" ~hi:(plane - nx - 1))
      ~inner:[ Ir.Loop_nest.loop "z" ~hi:planes ]
      ~compute_cycles:20
      [
        rd "g" (at 0);
        rd "g" (at 1);
        rd "g" (at nx);
        rd "g" (at (-plane));
        rd "g" (at plane);
        wr "gout" (i_ +! (plane *! z) +! c plane +! gouto);
      ]
  in
  let pack =
    Ir.Loop_nest.make ~name:"pack_halo"
      ~par:(Ir.Loop_nest.loop "i" ~hi:faces)
      ~compute_cycles:8
      [ rd "gout" ((nx *! i_) +! gouto); wr "sendbuf" i_ ]
  in
  let unpack =
    Ir.Loop_nest.make ~name:"unpack_halo"
      ~par:(Ir.Loop_nest.loop "i" ~hi:faces)
      ~compute_cycles:8
      [ rd "recvbuf" i_; wr "g" ((nx *! i_) +! go) ]
  in
  Ir.Program.create ~name:"minighost" ~kind:Ir.Program.Regular
    ~arrays:
      [ g; gout; arr "sendbuf" (faces + 64); arr "recvbuf" (faces + 64) ]
    ~time_steps:2
    [ sweep; pack; unpack ]
