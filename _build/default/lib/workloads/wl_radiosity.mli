(** radiosity — hierarchical radiosity (Splash-2).

    Irregular: patch-to-patch visibility sampling with loose spatial
    structure (25 % long-range) plus an energy redistribution sweep.

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
