(* mxm — dense matrix multiplication (the paper's "mxm").

   The parallel loop ranges over output rows; the inner loops stream a
   row block of A (unit stride), reuse a small B tile temporally and
   accumulate into C. Mostly streaming with strong L1 temporal reuse —
   regular and highly localisable. *)

open Wl_common

let kdim = 16
let jdim = 4

let program ?(scale = 1.0) () =
  let n = aligned (scaled scale 1024) in
  let a, ao = sliced "A" (n * kdim) ~steps:2 in
  let b = arr "B" (kdim * jdim) in  (* small hot tile, L1-resident *)
  let c_m, co = sliced "C" (n * jdim) ~steps:2 in
  let j = v "j" and k = v "k" in
  let nest =
    Ir.Loop_nest.make ~name:"row_block"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~inner:[ Ir.Loop_nest.loop "j" ~hi:jdim; Ir.Loop_nest.loop "k" ~hi:kdim ]
      ~compute_cycles:12
      [
        rd "A" ((kdim *! i_) +! k +! ao);
        rd "B" ((jdim *! k) +! j);
        wr "C" ((jdim *! i_) +! j +! co);
      ]
  in
  Ir.Program.create ~name:"mxm" ~kind:Ir.Program.Regular
    ~arrays:[ a; b; c_m ] ~time_steps:2 [ nest ]
