(* hpccg — conjugate-gradient mini-app (Mantevo).

   The sparse matrix-vector product reads a banded CSR structure (27-pt
   stencil flattened: nearly diagonal index arrays), and the CG vector
   updates are pure streaming — regular nests inside an irregular
   application, exactly the mixed case the paper's footnote 7
   describes. *)

open Wl_common

let degree = 8
let steps = 8

let program ?(scale = 1.0) () =
  let n = aligned (scaled scale 8192) in
  let r = rng ~seed:73 in
  let cols =
    clustered_table ~rng:r ~n ~degree ~spread:48 ~long_range:0.02 ~target:n
  in
  let aval, av = sliced "aval" (n * degree) ~steps in
  let pvec, po = sliced "p" n ~steps in
  let qvec, qo = sliced "q" n ~steps in
  let xvec, xo = sliced "xvec" n ~steps in
  let d = v "d" in
  let spmv =
    Ir.Loop_nest.make ~name:"spmv"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~inner:[ Ir.Loop_nest.loop "d" ~hi:degree ]
      ~compute_cycles:12
      [
        rd "aval" ((degree *! i_) +! d +! av);
        rd_at "p" ~offset:po ~table:"cols" ~pos:((degree *! i_) +! d);
        wr "q" (i_ +! qo);
      ]
  in
  let axpy =
    Ir.Loop_nest.make ~name:"axpy"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:12
      [
        rd "q" (i_ +! qo);
        rd "xvec" (i_ +! xo);
        wr "xvec" (i_ +! xo);
        rd "p" (i_ +! po);
        wr "p" (i_ +! po);
      ]
  in
  Ir.Program.create ~name:"hpccg" ~kind:Ir.Program.Irregular
    ~arrays:[ aval; pvec; qvec; xvec ]
    ~index_tables:[ ("cols", cols) ]
    ~time_steps:steps
    [ spmv; axpy ]
