(* equake — earthquake simulation on an unstructured mesh (SPEC OMP).

   Element-to-node gathers over an unstructured tetrahedral mesh:
   misaligned per-step slices and 45 % long-range connectivity (the
   mesh was never bandwidth-reduced) leave little locality for any
   mapping — the paper reports equake among its smallest
   improvements. *)

open Wl_common

let degree = 8
let steps = 8

let program ?(scale = 1.0) () =
  let elems = misaligned (scaled scale 6144) in
  let nodes = misaligned (scaled scale 8192) in
  let r = rng ~seed:79 in
  let conn =
    clustered_table ~rng:r ~n:elems ~degree ~spread:(nodes / 2)
      ~long_range:0.45 ~target:nodes
  in
  let disp, dpo = sliced "disp" nodes ~steps in
  let stiff, sto = sliced "stiff" (elems * degree) ~steps in
  let eforce, efo = sliced "eforce" elems ~steps in
  let vel, vo = sliced "vel" elems ~steps in
  let d = v "d" in
  let gather =
    Ir.Loop_nest.make ~name:"element_gather"
      ~par:(Ir.Loop_nest.loop "i" ~hi:elems)
      ~inner:[ Ir.Loop_nest.loop "d" ~hi:degree ]
      ~compute_cycles:20
      [
        rd_at "disp" ~offset:dpo ~table:"conn" ~pos:((degree *! i_) +! d);
        rd "stiff" ((degree *! i_) +! d +! sto);
        wr "eforce" (i_ +! efo);
      ]
  in
  let smooth =
    Ir.Loop_nest.make ~name:"time_integrate"
      ~par:(Ir.Loop_nest.loop "i" ~hi:elems)
      ~compute_cycles:16
      [ rd "eforce" (i_ +! efo); wr "vel" (i_ +! vo) ]
  in
  Ir.Program.create ~name:"equake" ~kind:Ir.Program.Irregular
    ~arrays:[ disp; stiff; eforce; vel ]
    ~index_tables:[ ("conn", conn) ]
    ~time_steps:steps
    [ gather; smooth ]
