(** water — water molecule dynamics (Splash-2).

    Irregular: streaming intra-molecular forces plus a cutoff-radius
    neighbour list (high locality).

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
