(* lulesh — structured hexahedral hydrodynamics (CORAL).

   The element loop gathers the eight corner nodes of each hex (affine
   offsets on the structured mesh), reads the element volume, and
   writes the force. High access count per iteration over aligned
   arrays: the paper's single biggest beneficiary, reproduced here as
   the most localisable kernel of the suite. *)

open Wl_common

let nx = 32

let program ?(scale = 1.0) () =
  let n = aligned (scaled scale 24576) in
  (* The structured mesh is pitch-padded plane-major: the +/-z corner
     offsets are whole interleave periods, so a hex's eight corners sit
     on at most three nearby banks and one MC. *)
  let nxy = pitch in
  let nodes = aligned (n + nxy + nx + 64) in
  let x, xo = sliced "x" nodes ~steps:2 in
  let vol, vlo = sliced "vol" n ~steps:2 in
  let force, fco = sliced "force" n ~steps:2 in
  let corner d = i_ +! c d +! xo in
  let gather =
    Ir.Loop_nest.make ~name:"calc_force"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:48
      [
        rd "x" (corner 0);
        rd "x" (corner 1);
        rd "x" (corner nx);
        rd "x" (corner (nx + 1));
        rd "x" (corner nxy);
        rd "x" (corner (nxy + 1));
        rd "x" (corner (nxy + nx));
        rd "x" (corner (nxy + nx + 1));
        rd "vol" (i_ +! vlo);
        wr "force" (i_ +! fco);
      ]
  in
  let integrate =
    Ir.Loop_nest.make ~name:"integrate"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:20
      [ rd "force" (i_ +! fco); rd "x" (i_ +! xo); wr "x" (i_ +! xo) ]
  in
  Ir.Program.create ~name:"lulesh" ~kind:Ir.Program.Regular
    ~arrays:[ x; vol; force ]
    ~time_steps:2
    [ gather; integrate ]
