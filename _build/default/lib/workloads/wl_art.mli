(** art — adaptive resonance network (SPEC OMP).

    Regular: column-major weight matrix scans (one bank and MC per
    neuron column) plus an activation sweep.

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
