(** minighost — 3-D stencil with halo exchange (Mantevo).

    Regular: pencil stencil sweep plus strided halo pack/unpack nests.

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
