(* radix — radix sort (Splash-2).

   The counting pass scatters histogram increments by key digit; the
   permutation pass writes each key to its destination bucket. Keys are
   bucket-local ([blocked_table]), so consecutive iteration sets target
   consecutive key ranges — localisable scatter traffic. A fresh key
   batch arrives every timing step (outer sort passes). *)

open Wl_common

let steps = 8

let program ?(scale = 1.0) () =
  let n = aligned (scaled scale 16384) in
  let buckets = aligned (scaled scale 4096) in
  let r = rng ~seed:67 in
  let digit = blocked_table ~rng:r ~n ~degree:1 ~block:512 ~target:buckets in
  let rank = blocked_table ~rng:r ~n ~degree:1 ~block:2048 ~target:n in
  let keys, ko = sliced "keys" n ~steps in
  let hist, ho = sliced "hist" buckets ~steps in
  let sorted, so = sliced "sorted" n ~steps in
  let count =
    Ir.Loop_nest.make ~name:"count_digits"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:12
      [ rd "keys" (i_ +! ko); wr_at "hist" ~offset:ho ~table:"digit" ~pos:i_ ]
  in
  let permute =
    Ir.Loop_nest.make ~name:"permute"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:12
      [
        rd "keys" (i_ +! ko);
        rd_at "hist" ~offset:ho ~table:"digit" ~pos:i_;
        wr_at "sorted" ~offset:so ~table:"rank" ~pos:i_;
      ]
  in
  Ir.Program.create ~name:"radix" ~kind:Ir.Program.Irregular
    ~arrays:[ keys; hist; sorted ]
    ~index_tables:[ ("digit", digit); ("rank", rank) ]
    ~time_steps:steps
    [ count; permute ]
