(* lu — right-looking LU factorisation.

   The trailing-matrix update streams the padded matrix row-major; the
   pivot-column elimination then walks columns (single LLC bank and MC
   per column, see {!Wl_common.pitch}), hitting the lines the update
   left in the LLC. *)

open Wl_common

let base_rows = 6

let program ?(scale = 1.0) () =
  let rows = max 2 (scaled scale base_rows) in
  let cols = pitch in
  let n = pitch * rows in
  let a, ao = sliced "A" n ~steps:2 in
  let l, lo = sliced "L" pitch ~steps:2 in
  let j = v "j" in
  let update =
    Ir.Loop_nest.make ~name:"trailing_update"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:20
      [ rd "A" (i_ +! ao); wr "A" (i_ +! ao) ]
  in
  let eliminate =
    Ir.Loop_nest.make ~name:"column_eliminate"
      ~par:(Ir.Loop_nest.loop "i" ~hi:cols)
      ~inner:[ Ir.Loop_nest.loop "j" ~hi:rows ]
      ~compute_cycles:16
      [
        rd "L" (i_ +! lo);
        rd "A" (i_ +! (pitch *! j) +! ao);
        wr "A" (i_ +! (pitch *! j) +! ao);
      ]
  in
  Ir.Program.create ~name:"lu" ~kind:Ir.Program.Regular ~arrays:[ a; l ]
    ~time_steps:2
    [ update; eliminate ]
