(** equake — unstructured seismic simulation (SPEC OMP).

    Irregular: element-to-node gathers over a never-renumbered mesh
    (45 % long-range) on misaligned slices; weakly localisable.

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
