let elem = 8

let scaled scale n = max 64 (int_of_float (Float.round (scale *. float_of_int n)))

let pitch = 9216

(* 9216 elements * 8 B = 72 KB = the least common multiple of the MC
   interleave period (four 2 KB pages) and the shared-LLC bank
   interleave period (36 64 B lines). Arrays padded to this boundary
   are *co-aligned*: the same element index of any two aligned arrays
   lives on the same MC and the same LLC bank, so an iteration's
   accesses concentrate instead of smearing over the chip — the padding
   a location-aware compiler (which already controls allocation through
   the paper's OS call, Section 4) applies. *)
let aligned n = (n + pitch - 1) / pitch * pitch

(* 256 elements = one 2 KB page; an odd page count staggers the MC of
   same-index references across arrays. *)
let misaligned n =
  let pages = ((n + 255) / 256) + 1 in
  let pages = if pages mod 2 = 0 then pages + 1 else pages in
  pages * 256

let arr name length = { Ir.Program.name; elem_size = elem; length }

let rng ~seed = Random.State.make [| seed; 0x10cA110c |]

let clustered_table ~rng ~n ~degree ~spread ~long_range ~target =
  if n <= 0 || degree <= 0 || target <= 0 then
    invalid_arg "Wl_common.clustered_table: bad geometry";
  Array.init (n * degree) (fun k ->
      let i = k / degree in
      if Random.State.float rng 1.0 < long_range then
        Random.State.int rng target
      else begin
        let center = i * target / n in
        let off = Random.State.int rng ((2 * spread) + 1) - spread in
        let j = center + off in
        if j < 0 then 0 else if j >= target then target - 1 else j
      end)

let uniform_table ~rng ~len ~target =
  if len <= 0 || target <= 0 then
    invalid_arg "Wl_common.uniform_table: bad geometry";
  Array.init len (fun _ -> Random.State.int rng target)

let blocked_table ~rng ~n ~degree ~block ~target =
  if n <= 0 || degree <= 0 || block <= 0 || target <= 0 then
    invalid_arg "Wl_common.blocked_table: bad geometry";
  Array.init (n * degree) (fun k ->
      let i = k / degree in
      let base = i * target / n / block * block in
      let hi = min block (target - base) in
      base + Random.State.int rng (max 1 hi))

let t_ = Ir.Affine.var "t"
let i_ = Ir.Affine.var "i"
let v name = Ir.Affine.var name
let c k = Ir.Affine.const k
let ( +! ) = Ir.Affine.add
let ( *! ) = Ir.Affine.scale

let sliced name n ~steps =
  if steps <= 0 then invalid_arg "Wl_common.sliced: non-positive steps";
  (arr name (n * steps), Ir.Affine.var ~coeff:n "t")

let rd a e = Ir.Access.read a (Ir.Access.direct e)
let wr a e = Ir.Access.write a (Ir.Access.direct e)

let indirect ?offset ~table ~pos () =
  match offset with
  | None -> Ir.Access.indirect ~table ~pos
  | Some o -> Ir.Access.Indirect { table; pos; offset = o }

let rd_at ?offset a ~table ~pos = Ir.Access.read a (indirect ?offset ~table ~pos ())
let wr_at ?offset a ~table ~pos = Ir.Access.write a (indirect ?offset ~table ~pos ())
