(* fmm — fast multipole method (Splash-2).

   Two interaction lists per body: a tight near-field list (local
   cells) and a sparser far-field list reaching across the domain.
   The near list dominates and is localisable; the far list is not. *)

open Wl_common

let near_deg = 6
let far_deg = 4
let steps = 8

let program ?(scale = 1.0) () =
  let n = aligned (scaled scale 6144) in
  let r = rng ~seed:23 in
  let near =
    clustered_table ~rng:r ~n ~degree:near_deg ~spread:192 ~long_range:0.05
      ~target:n
  in
  let far =
    clustered_table ~rng:r ~n ~degree:far_deg ~spread:(n / 2) ~long_range:0.5
      ~target:n
  in
  let pos, po = sliced "pos" n ~steps in
  let mpole, mo = sliced "mpole" n ~steps in
  let acc, ao = sliced "acc" n ~steps in
  let d = v "d" in
  let near_field =
    Ir.Loop_nest.make ~name:"near_field"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~inner:[ Ir.Loop_nest.loop "d" ~hi:near_deg ]
      ~compute_cycles:24
      [
        rd "pos" (i_ +! po);
        rd_at "pos" ~offset:po ~table:"near" ~pos:((near_deg *! i_) +! d);
        wr "acc" (i_ +! ao);
      ]
  in
  let far_field =
    Ir.Loop_nest.make ~name:"far_field"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~inner:[ Ir.Loop_nest.loop "d" ~hi:far_deg ]
      ~compute_cycles:32
      [
        rd_at "mpole" ~offset:mo ~table:"far" ~pos:((far_deg *! i_) +! d);
        wr "acc" (i_ +! ao);
      ]
  in
  Ir.Program.create ~name:"fmm" ~kind:Ir.Program.Irregular
    ~arrays:[ pos; mpole; acc ]
    ~index_tables:[ ("near", near); ("far", far) ]
    ~time_steps:steps
    [ near_field; far_field ]
