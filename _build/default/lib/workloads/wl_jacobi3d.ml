(* jacobi-3d — 7-point 3-D Jacobi relaxation, pencil traversal.

   The grid is laid out plane-major with a pitch-aligned plane size
   (conflict-avoiding padding); the parallel loop ranges over the
   points of a plane and the inner loop walks the z-pencil. The +/-z
   neighbours are whole interleave periods away, so every access of an
   iteration stays on (nearly) the same MC and LLC bank. *)

open Wl_common

let nx = 32
let planes = 4

let program ?(scale = 1.0) () =
  let plane = aligned (scaled scale pitch) in
  let n = plane * (planes + 2) in
  let grid, go = sliced "grid" n ~steps:2 in
  let out, oo = sliced "out" n ~steps:2 in
  let z = v "z" in
  let at d = i_ +! (plane *! z) +! c (plane + d) +! go in
  let nest =
    Ir.Loop_nest.make ~name:"relax_pencil"
      ~par:(Ir.Loop_nest.loop "i" ~hi:(plane - nx - 1))
      ~inner:[ Ir.Loop_nest.loop "z" ~hi:planes ]
      ~compute_cycles:18
      [
        rd "grid" (at 0);
        rd "grid" (at 1);
        rd "grid" (at nx);
        rd "grid" (at (-plane));
        rd "grid" (at plane);
        wr "out" (i_ +! (plane *! z) +! c plane +! oo);
      ]
  in
  Ir.Program.create ~name:"jacobi-3d" ~kind:Ir.Program.Regular
    ~arrays:[ grid; out ]
    ~time_steps:2 [ nest ]
