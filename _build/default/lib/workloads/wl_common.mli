(** Shared scaffolding for the 21 benchmark kernels.

    Every kernel is a scaled-down synthetic program whose *access-
    pattern shape* matches the corresponding application of the paper's
    evaluation (Splash-2, SPEC-OMP, CORAL and friends): the same mix of
    streaming/strided/temporal regular references, or index-array
    indirections with the same kind of neighbour locality. Sizes are
    megabytes rather than the paper's 451 MB-1.4 GB inputs — the
    MC/bank interleaving that creates per-set affinity skew depends on
    the footprint's page structure, not its absolute size.

    Arrays aligned with {!aligned} occupy a multiple of four 2 KB pages,
    so same-index references of different arrays share an MC (a highly
    localisable layout, the paper's Figure 1b); unaligned arrays smear
    each iteration's accesses over several MCs (weakly localisable) —
    the suite deliberately contains both kinds. *)

val elem : int
(** Element size used by every kernel (8-byte doubles). *)

val scaled : float -> int -> int
(** [scaled scale n] is [n] scaled and clamped to at least 64. *)

val aligned : int -> int
(** Round an element count up to a {!pitch} multiple, co-aligning the
    array with every other aligned array on both the MC and the
    LLC-bank interleave. *)

val misaligned : int -> int
(** Round an element count up to an *odd* page multiple, so same-index
    references of different arrays land on different MCs (weakly
    localisable layout). *)

val arr : string -> int -> Ir.Program.array_decl

val rng : seed:int -> Random.State.t
(** Deterministic per-benchmark generator. *)

val clustered_table :
  rng:Random.State.t ->
  n:int ->
  degree:int ->
  spread:int ->
  long_range:float ->
  target:int ->
  int array
(** [clustered_table ~rng ~n ~degree ~spread ~long_range ~target] is an
    [n*degree] index table into [0, target): entry [(i, d)] points near
    [i]'s proportional position in the target array, within
    [±spread] elements, except with probability [long_range] where it
    is uniform — the neighbour-list locality shape of n-body and mesh
    codes. *)

val uniform_table :
  rng:Random.State.t -> len:int -> target:int -> int array
(** Uniformly random indices into [0, target). *)

val blocked_table :
  rng:Random.State.t -> n:int -> degree:int -> block:int -> target:int -> int array
(** Indices uniform within the [block]-sized block containing [i]'s
    proportional position — radix-sort/bucket locality. *)

val pitch : int
(** Row pitch (9216 elements = 72 KB) used by the 2-D kernels: a whole
    number of MC-interleave periods (4 x 2 KB pages) *and* of LLC-bank
    interleave periods (36 x 64 B lines), as produced by conflict-
    avoiding array padding. Walking a column therefore stays on one
    LLC bank and one MC — the access shape that gives iteration sets
    their cache affinity (CAI) in S-NUCA mode. *)

val sliced :
  string -> int -> steps:int -> Ir.Program.array_decl * Ir.Affine.t
(** [sliced name n ~steps] declares an array of [steps] back-to-back
    slices of [n] elements and returns the per-step base offset
    ([n * t]). Indexing every reference with the offset makes each
    timing-loop step stream a fresh slice — reproducing the
    steady-state capacity misses of the paper's GB-scale inputs at
    simulable sizes (see DESIGN.md). With [n] aligned, all slices share
    the same MC-interleave phase, so per-set affinity is stable across
    steps (the inspector–executor assumption); with [n] misaligned the
    phase drifts and estimation error grows. *)

(** {2 Access shorthands} *)

val t_ : Ir.Affine.t
(** The timing-step variable (see {!Ir.Trace.step_var}). *)

val i_ : Ir.Affine.t
(** The conventional parallel loop variable ["i"]. *)

val v : string -> Ir.Affine.t

val c : int -> Ir.Affine.t

val ( +! ) : Ir.Affine.t -> Ir.Affine.t -> Ir.Affine.t

val ( *! ) : int -> Ir.Affine.t -> Ir.Affine.t

val rd : string -> Ir.Affine.t -> Ir.Access.t

val wr : string -> Ir.Affine.t -> Ir.Access.t

val rd_at :
  ?offset:Ir.Affine.t -> string -> table:string -> pos:Ir.Affine.t ->
  Ir.Access.t
(** Indirect read [a[table[pos] + offset]] (offset defaults to 0). *)

val wr_at :
  ?offset:Ir.Affine.t -> string -> table:string -> pos:Ir.Affine.t ->
  Ir.Access.t
