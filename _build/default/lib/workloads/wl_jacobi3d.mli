(** jacobi-3d — 7-point 3-D Jacobi relaxation.

    Regular: pencil traversal over a pitch-padded plane-major grid; the
    z-neighbours are whole interleave periods away.

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
