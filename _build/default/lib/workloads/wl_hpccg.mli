(** hpccg — conjugate-gradient mini-app (Mantevo).

    Irregular: banded CSR sparse matrix-vector product (nearly diagonal
    index arrays) plus regular vector updates.

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
