(** fmm — fast multipole method (Splash-2).

    Irregular: a tight near-field interaction list plus a sparse
    far-field list; the near field dominates and localises.

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
