(** cholesky — blocked Cholesky factorisation sweeps.

    Regular: a row-major trailing update followed by a pitch-aligned
    column scaling (one LLC bank and MC per column).

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
