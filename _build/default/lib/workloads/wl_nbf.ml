(* nbf — non-bonded force kernel (the MOLDYN/NBF pair of Han & Tseng).

   A cutoff-radius pair list with tight spatial locality drives a
   gather/accumulate over particle positions, followed by a coordinate
   update sweep. *)

open Wl_common

let degree = 12
let steps = 8

let program ?(scale = 1.0) () =
  let n = aligned (scaled scale 6144) in
  let r = rng ~seed:71 in
  let pairs =
    clustered_table ~rng:r ~n ~degree ~spread:288 ~long_range:0.08 ~target:n
  in
  let x, xo = sliced "x" n ~steps in
  let f, fo = sliced "f" n ~steps in
  let d = v "d" in
  let forces =
    Ir.Loop_nest.make ~name:"nonbonded"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~inner:[ Ir.Loop_nest.loop "d" ~hi:degree ]
      ~compute_cycles:24
      [
        rd "x" (i_ +! xo);
        rd_at "x" ~offset:xo ~table:"pairs" ~pos:((degree *! i_) +! d);
        wr "f" (i_ +! fo);
      ]
  in
  let update =
    Ir.Loop_nest.make ~name:"update_coords"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:16
      [ rd "f" (i_ +! fo); rd "x" (i_ +! xo); wr "x" (i_ +! xo) ]
  in
  Ir.Program.create ~name:"nbf" ~kind:Ir.Program.Irregular
    ~arrays:[ x; f ]
    ~index_tables:[ ("pairs", pairs) ]
    ~time_steps:steps
    [ forces; update ]
