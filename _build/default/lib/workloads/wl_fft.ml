(* fft — butterfly stage plus transpose-style reorder.

   Nest 1 is one radix-2 butterfly stage: each iteration touches
   (re, im) at [i] and at [i + n/2]; the half-array offset is a whole
   number of MC-interleave periods, so both ends of a butterfly share
   an MC. Nest 2 is the strided reorder pass with poor spatial
   locality, typical of FFT shuffles. *)

open Wl_common

let program ?(scale = 1.0) () =
  let half = aligned (scaled scale 16384) in
  let n = 2 * half in
  let re, reo = sliced "re" n ~steps:2 in
  let im, imo = sliced "im" n ~steps:2 in
  let re2, re2o = sliced "re2" half ~steps:2 in
  let im2, im2o = sliced "im2" half ~steps:2 in
  let butterfly =
    Ir.Loop_nest.make ~name:"butterfly"
      ~par:(Ir.Loop_nest.loop "i" ~hi:half)
      ~compute_cycles:32
      [
        rd "re" (i_ +! reo);
        rd "im" (i_ +! imo);
        rd "re" (i_ +! c half +! reo);
        rd "im" (i_ +! c half +! imo);
        wr "re" (i_ +! reo);
        wr "im" (i_ +! imo);
      ]
  in
  let reorder =
    Ir.Loop_nest.make ~name:"reorder"
      ~par:(Ir.Loop_nest.loop "i" ~hi:half)
      ~compute_cycles:16
      [
        rd "re" ((2 *! i_) +! reo);
        rd "im" ((2 *! i_) +! imo);
        wr "re2" (i_ +! re2o);
        wr "im2" (i_ +! im2o);
      ]
  in
  Ir.Program.create ~name:"fft" ~kind:Ir.Program.Regular
    ~arrays:[ re; im; re2; im2 ]
    ~time_steps:2 [ butterfly; reorder ]
