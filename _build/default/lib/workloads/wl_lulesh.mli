(** lulesh — hexahedral hydrodynamics gather (CORAL).

    Regular: eight-corner gathers on a pitch-padded structured mesh;
    the suite's most localisable kernel (the paper's biggest winner).

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
