(** swim — shallow-water finite differences (SPEC OMP).

    Regular: ADI-style row sweep, column sweep and copy-back over
    pitch-aligned 2-D fields.

    See DESIGN.md for the substitution rationale behind the synthetic
    kernels. *)

val program : ?scale:float -> unit -> Ir.Program.t
(** Builds the benchmark; [scale] multiplies the base input size
    (default 1.0). Deterministic: repeated calls produce identical
    programs and index tables. *)
