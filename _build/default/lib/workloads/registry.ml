type entry = {
  name : string;
  kind : Ir.Program.kind;
  description : string;
  program : ?scale:float -> unit -> Ir.Program.t;
}

let entry name kind description program = { name; kind; description; program }

let all =
  [
    entry "barnes" Ir.Program.Irregular "Barnes-Hut n-body tree walk"
      Wl_barnes.program;
    entry "fmm" Ir.Program.Irregular "fast multipole method" Wl_fmm.program;
    entry "radiosity" Ir.Program.Irregular "hierarchical radiosity"
      Wl_radiosity.program;
    entry "raytrace" Ir.Program.Irregular "ray tracer" Wl_raytrace.program;
    entry "volrend" Ir.Program.Irregular "volume renderer" Wl_volrend.program;
    entry "water" Ir.Program.Irregular "water molecule dynamics"
      Wl_water.program;
    entry "cholesky" Ir.Program.Regular "Cholesky factorisation sweeps"
      Wl_cholesky.program;
    entry "fft" Ir.Program.Regular "radix-2 FFT stage + reorder"
      Wl_fft.program;
    entry "lu" Ir.Program.Regular "LU trailing-matrix update" Wl_lu.program;
    entry "radix" Ir.Program.Irregular "radix sort scatter" Wl_radix.program;
    entry "jacobi-3d" Ir.Program.Regular "7-point 3-D Jacobi stencil"
      Wl_jacobi3d.program;
    entry "lulesh" Ir.Program.Regular "hexahedral hydrodynamics gather"
      Wl_lulesh.program;
    entry "minighost" Ir.Program.Regular "3-D stencil with halo exchange"
      Wl_minighost.program;
    entry "swim" Ir.Program.Regular "shallow-water finite differences"
      Wl_swim.program;
    entry "mxm" Ir.Program.Regular "dense matrix multiplication"
      Wl_mxm.program;
    entry "art" Ir.Program.Regular "adaptive resonance network"
      Wl_art.program;
    entry "nbf" Ir.Program.Irregular "non-bonded force kernel" Wl_nbf.program;
    entry "hpccg" Ir.Program.Irregular "conjugate gradient mini-app"
      Wl_hpccg.program;
    entry "equake" Ir.Program.Irregular "unstructured seismic simulation"
      Wl_equake.program;
    entry "moldyn" Ir.Program.Irregular "molecular dynamics neighbour list"
      Wl_moldyn.program;
    entry "diff" Ir.Program.Regular "explicit PDE solver" Wl_diff.program;
  ]

let names = List.map (fun e -> e.name) all

let find_opt name = List.find_opt (fun e -> e.name = name) all

let find name =
  match find_opt name with
  | Some e -> e
  | None -> raise Not_found

let regular = List.filter (fun e -> e.kind = Ir.Program.Regular) all
let irregular = List.filter (fun e -> e.kind = Ir.Program.Irregular) all
