(* diff — explicit finite-difference PDE solver (the paper's
   differential-equation solver).

   Two alternating three-point sweeps (predictor/corrector) over
   aligned 1-D fields plus a coefficient array. *)

open Wl_common

let program ?(scale = 1.0) () =
  let n = aligned (scaled scale 24576) in
  let len = aligned (n + 64) in
  let a, ao = sliced "a" len ~steps:2 in
  let b, bo = sliced "b" len ~steps:2 in
  let coef, cfo = sliced "coef" len ~steps:2 in
  let predict =
    Ir.Loop_nest.make ~name:"predict"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:24
      [
        rd "a" (i_ +! ao);
        rd "a" (i_ +! c 1 +! ao);
        rd "a" (i_ +! c 2 +! ao);
        rd "coef" (i_ +! cfo);
        wr "b" (i_ +! c 1 +! bo);
      ]
  in
  let correct =
    Ir.Loop_nest.make ~name:"correct"
      ~par:(Ir.Loop_nest.loop "i" ~hi:n)
      ~compute_cycles:24
      [
        rd "b" (i_ +! bo);
        rd "b" (i_ +! c 1 +! bo);
        rd "b" (i_ +! c 2 +! bo);
        rd "coef" (i_ +! cfo);
        wr "a" (i_ +! c 1 +! ao);
      ]
  in
  Ir.Program.create ~name:"diff" ~kind:Ir.Program.Regular
    ~arrays:[ a; b; coef ]
    ~time_steps:2
    [ predict; correct ]
