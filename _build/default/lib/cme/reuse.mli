(** Per-reference reuse analysis for affine loop nests.

    For every reference of a nest this module derives the quantities the
    miss estimator needs: which loops the reference actually depends on
    (temporal reuse carried by the others), its dominant byte stride,
    and the bytes of fresh data it walks per parallel iteration. This is
    the reuse-vector skeleton of cache-miss-equation analyses à la Ghosh
    et al., reduced to the stride/footprint classification the mapper
    consumes. *)

type info = {
  regular : bool;  (** affine reference (analysable) *)
  elem_size : int;
  extent_bytes : int;  (** allocated bytes of the referenced array *)
  step_dependent : bool;
      (** the reference advances with the timing-step variable (per-step
          data slices): its data is never revisited across steps, so
          cache-residency shortcuts do not apply *)
  dominant_stride : int;
      (** bytes between consecutive *distinct* elements the reference
          touches: the innermost inner-loop stride it depends on, or the
          parallel-loop stride when it ignores all inner loops *)
  reuse_factor : int;
      (** executions per distinct element within one parallel iteration
          (product of the trip counts of inner loops the reference does
          not depend on) *)
  fresh_bytes_per_par_iter : int;
      (** bytes of previously-untouched data walked per parallel
          iteration (>= [elem_size], capped at the array extent) *)
}

val analyze : Ir.Program.t -> Ir.Layout.t -> nest:int -> info array
(** One [info] per body reference, in body order. Raises
    [Invalid_argument] for an out-of-range nest. *)

val nest_footprint : Ir.Program.t -> Ir.Layout.t -> nest:int -> int
(** Sum over distinct arrays referenced by the nest of their allocated
    bytes — the capacity test's working-set approximation. *)
