lib/cme/cme.ml: Array Cache Ir List Machine Reuse
