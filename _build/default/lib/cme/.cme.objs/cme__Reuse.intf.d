lib/cme/reuse.mli: Ir
