lib/cme/reuse.ml: Array Ir List String
