lib/cme/cme.mli: Ir Machine Reuse
