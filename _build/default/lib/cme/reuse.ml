type info = {
  regular : bool;
  elem_size : int;
  extent_bytes : int;
  step_dependent : bool;
  dominant_stride : int;
  reuse_factor : int;
  fresh_bytes_per_par_iter : int;
}

let nth_nest (p : Ir.Program.t) nest =
  match List.nth_opt p.nests nest with
  | Some n -> n
  | None -> invalid_arg "Reuse: nest index out of range"

let analyze (p : Ir.Program.t) layout ~nest =
  let n = nth_nest p nest in
  let analyze_ref (a : Ir.Access.t) =
    let decl = Ir.Program.array_decl p a.array_name in
    let extent = Ir.Layout.extent_bytes layout a.array_name in
    match a.index with
    | Ir.Access.Direct e ->
        (* Inner loops the reference ignores carry pure temporal reuse;
           the innermost one it depends on sets the stride of its fresh
           data. *)
        let reuse_factor =
          List.fold_left
            (fun acc (l : Ir.Loop_nest.loop) ->
              if Ir.Affine.coeff e l.var = 0 then acc * Ir.Loop_nest.trip l
              else acc)
            1 n.inner
        in
        let inner_stride =
          List.fold_left
            (fun acc (l : Ir.Loop_nest.loop) ->
              let c = Ir.Affine.coeff e l.var in
              if c <> 0 then c * l.step * decl.elem_size else acc)
            0 n.inner
        in
        let par_stride =
          Ir.Affine.coeff e n.par.var * n.par.step * decl.elem_size
        in
        let dominant_stride =
          if inner_stride <> 0 then inner_stride else par_stride
        in
        let unique_execs = Ir.Loop_nest.inner_trip n / reuse_factor in
        let fresh =
          max decl.elem_size (unique_execs * abs dominant_stride)
        in
        {
          regular = true;
          elem_size = decl.elem_size;
          extent_bytes = extent;
          step_dependent = Ir.Affine.coeff e Ir.Trace.step_var <> 0;
          dominant_stride;
          reuse_factor;
          fresh_bytes_per_par_iter = min extent fresh;
        }
    | Ir.Access.Indirect _ ->
        {
          regular = false;
          elem_size = decl.elem_size;
          extent_bytes = extent;
          step_dependent = false;
          dominant_stride = decl.elem_size;
          reuse_factor = 1;
          fresh_bytes_per_par_iter = min extent (Ir.Loop_nest.inner_trip n * decl.elem_size);
        }
  in
  Array.of_list (List.map analyze_ref n.body)

let nest_footprint (p : Ir.Program.t) layout ~nest =
  let n = nth_nest p nest in
  let names =
    List.sort_uniq String.compare
      (List.map (fun (a : Ir.Access.t) -> a.array_name) n.body)
  in
  List.fold_left
    (fun acc name -> acc + Ir.Layout.extent_bytes layout name)
    0 names
