(** Computation/data co-optimisation — the paper's stated future work
    (Section 7: "co-optimizing computation and data mapping together").

    Computation mapping and data layout are coupled: the best core for
    an iteration set depends on where its pages live, and the best page
    placement depends on which cores access them. This extension runs a
    simple coordinate descent between the two: re-place pages (the
    Ding-et-al-style rotations of {!Baselines.Layout_opt}) under the
    current schedule, then re-map computation against the new layout,
    for a fixed number of rounds. Each half-step only ever improves its
    own objective, so a couple of rounds typically reach a fixed
    point. *)

val run :
  ?rounds:int ->
  Machine.Config.t ->
  Ir.Trace.t ->
  Mem.Page_table.t ->
  Locmap.Mapper.info
(** [run cfg trace pt] alternates layout optimisation and re-mapping
    for [rounds] rounds (default 2, at least 1), installing the final
    page remappings into [pt] and returning the final mapping. Simulate
    the result with the same page table. *)
