lib/extensions/cooptimize.mli: Ir Locmap Machine Mem
