lib/extensions/cooptimize.ml: Baselines Locmap Machine Option
