let run ?(rounds = 2) (cfg : Machine.Config.t) trace pt =
  if rounds < 1 then invalid_arg "Cooptimize.run: need at least one round";
  let schedule = ref (Locmap.Mapper.default_schedule cfg trace) in
  let info = ref None in
  for _ = 1 to rounds do
    (* Data half-step: rotate each array's pages to suit the current
       computation placement. Rotations are recomputed from scratch each
       round (they replace, not compose with, the previous ones). *)
    Baselines.Layout_opt.optimize cfg trace ~schedule:!schedule pt;
    (* Computation half-step: re-map against the new layout. *)
    let i = Locmap.Mapper.map ~measure_error:false ~page_table:pt cfg trace in
    info := Some i;
    schedule := i.Locmap.Mapper.schedule
  done;
  Option.get !info
