(** Logical partitioning of the mesh into regions.

    The paper divides the 2-D network space into rectangular regions
    (default: 9 regions of 2x2 nodes on the 6x6 mesh) and computes all
    core-side affinities at region granularity (Section 3.3): cores in
    the same region are assumed to have the same affinity to a given MC
    or LLC bank, and the extra core candidates within a region give the
    load balancer room to work. *)

type t

val create : Machine.Config.t -> t
(** Raises [Invalid_argument] if the configured regions do not tile the
    mesh. *)

val count : t -> int

val grid_rows : t -> int
(** Region-grid dimensions (e.g. 3x3 for 9 regions). *)

val grid_cols : t -> int

val of_node : t -> int -> int
(** Region id of a node. *)

val nodes_of : t -> int -> int array
(** Node ids inside a region, row-major. *)

val center : t -> int -> float * float
(** Geometric centre (row, col) of a region's nodes. *)

val grid_coord : t -> int -> int * int
(** (row, col) of a region within the region grid. *)

val grid_distance : t -> int -> int -> int
(** Manhattan distance between two regions in the region grid — the
    proximity order used by the load balancer (Section 3.5). *)

val neighbors : t -> int -> int list
(** Orthogonally adjacent regions, in increasing id order — the
    neighbour set CAC spreads affinity over (Section 3.7). *)

val pp : Format.formatter -> t -> unit
