let is_shared (cfg : Machine.Config.t) =
  Cache.Llc.equal cfg.llc_org Cache.Llc.Shared

let fresh_summaries cfg amap ~count =
  let num_regions = Machine.Config.num_regions cfg in
  Array.init count (fun _ ->
      Summary.create ~num_mcs:(Machine.Addr_map.num_mcs amap) ~num_regions)

let cme_summaries (cfg : Machine.Config.t) amap trace ~sets =
  let prog = Ir.Trace.program trace in
  let layout = Ir.Trace.layout trace in
  let regions = Region.create cfg in
  let shared = is_shared cfg in
  let summaries = fresh_summaries cfg amap ~count:(Array.length sets) in
  let predictor = ref None in
  let current_nest = ref (-1) in
  Array.iteri
    (fun k (s : Ir.Iter_set.t) ->
      if s.nest <> !current_nest then begin
        current_nest := s.nest;
        predictor := Some (Cme.create cfg prog layout ~nest:s.nest)
      end;
      let p = Option.get !predictor in
      let sm = summaries.(k) in
      Ir.Trace.iter_range ~step:0 trace ~nest:s.nest ~lo:s.lo ~hi:s.hi
        (fun ~addr ~write:_ ->
          let pa = Machine.Addr_map.translate amap addr in
          match Cme.classify p with
          | Cme.L1_hit -> Summary.add_l1_hit sm
          | Cme.Llc_hit ->
              let region =
                if shared then
                  Region.of_node regions
                    (Machine.Addr_map.bank_node_of amap pa)
                else 0
              in
              Summary.add_llc_hit sm ~region
          | Cme.Llc_miss ->
              let bank_region =
                if shared then
                  Region.of_node regions
                    (Machine.Addr_map.bank_node_of amap pa)
                else -1
              in
              Summary.add_llc_miss sm ~bank_region
                ~mc:(Machine.Addr_map.mc_of amap pa)))
    sets;
  summaries

let observed_summaries ?(warm_pass = true) (cfg : Machine.Config.t) amap trace
    ~sets =
  let regions = Region.create cfg in
  let shared = is_shared cfg in
  let l1 =
    Cache.Sa_cache.create ~size:cfg.l1_size ~assoc:cfg.l1_assoc
      ~line_size:cfg.l1_line ()
  in
  let banks =
    if shared then
      Array.init (Machine.Config.num_cores cfg) (fun _ ->
          Cache.Sa_cache.create ~size:cfg.l2_size ~assoc:cfg.l2_assoc
            ~line_size:cfg.l2_line ())
    else
      [|
        Cache.Sa_cache.create ~size:cfg.l2_size ~assoc:cfg.l2_assoc
          ~line_size:cfg.l2_line ();
      |]
  in
  let steps = (Ir.Trace.program trace).Ir.Program.time_steps in
  let replay ~step summaries =
    Array.iteri
      (fun k (s : Ir.Iter_set.t) ->
        let sm = summaries.(k) in
        Ir.Trace.iter_range ~step trace ~nest:s.nest ~lo:s.lo ~hi:s.hi
          (fun ~addr ~write ->
            let pa = Machine.Addr_map.translate amap addr in
            match Cache.Sa_cache.access l1 ~addr:pa ~write with
            | Cache.Sa_cache.Hit -> Summary.add_l1_hit sm
            | Cache.Sa_cache.Miss _ -> (
                let bank_node, bank =
                  if shared then
                    let b = Machine.Addr_map.bank_node_of amap pa in
                    (b, banks.(b))
                  else (0, banks.(0))
                in
                match Cache.Sa_cache.access bank ~addr:pa ~write with
                | Cache.Sa_cache.Hit ->
                    let region =
                      if shared then Region.of_node regions bank_node else 0
                    in
                    Summary.add_llc_hit sm ~region
                | Cache.Sa_cache.Miss _ ->
                    let bank_region =
                      if shared then Region.of_node regions bank_node else -1
                    in
                    Summary.add_llc_miss sm ~bank_region
                      ~mc:(Machine.Addr_map.mc_of amap pa))))
      sets
  in
  let cold = fresh_summaries cfg amap ~count:(Array.length sets) in
  replay ~step:0 cold;
  if not warm_pass then (cold, cold)
  else begin
    (* Second pass continues with warm caches — and, for programs that
       advance through per-step data slices, with the next step's
       addresses: the executor's view. *)
    let warm = fresh_summaries cfg amap ~count:(Array.length sets) in
    replay ~step:(min 1 (steps - 1)) warm;
    (cold, warm)
  end

let mean_error proj est truth =
  let n = Array.length est in
  if n <> Array.length truth then
    invalid_arg "Analysis.mean_error: mismatched lengths";
  if n = 0 then 0.
  else begin
    let sum = ref 0. in
    for k = 0 to n - 1 do
      sum := !sum +. Affinity.eta (proj est.(k)) (proj truth.(k))
    done;
    !sum /. float_of_int n
  end
