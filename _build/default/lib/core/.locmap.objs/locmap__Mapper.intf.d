lib/core/mapper.mli: Ir Machine Mem
