lib/core/balance.mli: Region
