lib/core/assign.mli: Machine Region Summary
