lib/core/analysis.ml: Affinity Array Cache Cme Ir Machine Option Region Summary
