lib/core/affinity.ml: Array Float Format List Machine Noc Region
