lib/core/region.ml: Array Format List Machine
