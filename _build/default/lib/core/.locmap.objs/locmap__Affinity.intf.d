lib/core/affinity.mli: Format Machine Region
