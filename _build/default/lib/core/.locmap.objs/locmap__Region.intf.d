lib/core/region.mli: Format Machine
