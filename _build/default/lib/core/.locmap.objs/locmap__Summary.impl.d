lib/core/summary.ml: Affinity Array
