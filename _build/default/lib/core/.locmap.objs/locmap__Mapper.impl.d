lib/core/mapper.ml: Analysis Array Assign Balance Cache Float Fun Ir List Machine Mem Option Random Region Summary
