lib/core/analysis.mli: Ir Machine Summary
