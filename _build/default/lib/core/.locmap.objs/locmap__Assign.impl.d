lib/core/assign.ml: Affinity Array Cache Float Machine Region Summary
