lib/core/balance.ml: Array Float Fun Int List Region
