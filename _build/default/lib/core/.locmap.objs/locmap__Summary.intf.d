lib/core/summary.mli:
