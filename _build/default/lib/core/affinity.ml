let eta a b =
  let m = Array.length a in
  if m = 0 then invalid_arg "Affinity.eta: empty vector";
  if m <> Array.length b then invalid_arg "Affinity.eta: length mismatch";
  let sum = ref 0. in
  for k = 0 to m - 1 do
    sum := !sum +. Float.abs (a.(k) -. b.(k))
  done;
  !sum /. float_of_int m

let normalize v =
  let m = Array.length v in
  if m = 0 then invalid_arg "Affinity.normalize: empty vector";
  let sum = Array.fold_left ( +. ) 0. v in
  if sum <= 0. then Array.make m (1. /. float_of_int m)
  else Array.map (fun x -> x /. sum) v

let of_counts c = normalize (Array.map float_of_int c)

let is_distribution ?(eps = 1e-9) v =
  Array.length v > 0
  && Array.for_all (fun x -> x >= -.eps) v
  && Float.abs (Array.fold_left ( +. ) 0. v -. 1.) <= eps

let mac (cfg : Machine.Config.t) regions r =
  let topo = Machine.Config.topology cfg in
  let m = Noc.Topology.num_mcs topo in
  let centre = Region.center regions r in
  let dist k = Noc.Topology.distance_f topo centre (Noc.Topology.mc_coord topo k) in
  let d = Array.init m dist in
  match cfg.Machine.Config.mac_mode with
  | Machine.Config.Nearest_set ->
      let dmin = Array.fold_left min infinity d in
      let tol = float_of_int cfg.Machine.Config.mac_tolerance in
      let near = Array.map (fun x -> x <= dmin +. tol) d in
      let n =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 near
      in
      Array.init m (fun k -> if near.(k) then 1. /. float_of_int n else 0.)
  | Machine.Config.Inverse_distance ->
      normalize (Array.map (fun x -> 1. /. (1. +. x)) d)

let mac_all cfg regions = Array.init (Region.count regions) (mac cfg regions)

let cac regions r =
  let n = Region.count regions in
  let v = Array.make n 0. in
  let ns = Region.neighbors regions r in
  (match ns with
  | [] -> v.(r) <- 1.
  | _ ->
      v.(r) <- 0.5;
      let share = 0.5 /. float_of_int (List.length ns) in
      List.iter (fun q -> v.(q) <- share) ns);
  v

let cac_all regions = Array.init (Region.count regions) (cac regions)

let pp ppf v =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf x -> Format.fprintf ppf "%.3f" x))
    (Array.to_list v)
