(** Building per-set summaries, at compile time and at runtime.

    [cme_summaries] is the compile-time path for regular applications:
    every access is classified by the CME estimator and its MC/bank
    located through the exposed address mapping (paper, Section 4).

    [observed_summaries] is the runtime path: a functional replay of the
    access stream through L1/LLC-shaped caches. It returns two views:
    the *cold* view — what the inspector sees during the first timing
    iteration — and the *warm* view — the steady state the executor
    experiences. The gap between estimated (or cold) and warm summaries
    is exactly the MAI/CAI error the paper reports in Figures 7a/8a. *)

val cme_summaries :
  Machine.Config.t ->
  Machine.Addr_map.t ->
  Ir.Trace.t ->
  sets:Ir.Iter_set.t array ->
  Summary.t array

val observed_summaries :
  ?warm_pass:bool ->
  Machine.Config.t ->
  Machine.Addr_map.t ->
  Ir.Trace.t ->
  sets:Ir.Iter_set.t array ->
  Summary.t array * Summary.t array
(** [(cold, warm)] summaries, one per set. [warm_pass:false] (default
    [true]) skips the second replay and returns the cold summaries in
    both positions — for callers that only need the inspector view. *)

val mean_error :
  (Summary.t -> float array) -> Summary.t array -> Summary.t array -> float
(** [mean_error proj est truth] is the mean over sets of
    [Affinity.eta (proj est.(k)) (proj truth.(k))] — the per-application
    MAI/CAI error metric. *)
