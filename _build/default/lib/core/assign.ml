type t = {
  shared : bool;
  mac : float array array;
  cac : float array array;
  num_regions : int;
  alpha_override : float option;
}

let create ?alpha_override (cfg : Machine.Config.t) regions =
  (match alpha_override with
  | Some a when a < 0. || a > 1. ->
      invalid_arg "Assign.create: alpha_override out of [0, 1]"
  | _ -> ());
  {
    shared = Cache.Llc.equal cfg.llc_org Cache.Llc.Shared;
    mac = Affinity.mac_all cfg regions;
    cac = Affinity.cac_all regions;
    num_regions = Region.count regions;
    alpha_override;
  }

let error t summary ~region =
  if region < 0 || region >= t.num_regions then
    invalid_arg "Assign.error: region out of range";
  if not t.shared then
    Affinity.eta (Summary.mai summary) t.mac.(region)
  else begin
    (* Algorithm 2: in S-NUCA a miss is requested from (and returns
       through) the line's home bank, so the set's "memory" affinity is
       located at the LLC banks serving its misses (Section 3.8's
       MAI(LLC)) — compared, like CAI, against the region-proximity
       vector CAC. *)
    let alpha =
      match t.alpha_override with
      | Some a -> a
      | None -> Summary.alpha summary
    in
    let eta_c = Affinity.eta (Summary.cai summary) t.cac.(region) in
    let eta_m =
      Affinity.eta (Summary.mai_regions summary) t.cac.(region)
    in
    (alpha *. eta_c) +. ((1. -. alpha) *. eta_m)
  end

let best_region t summary =
  let best = ref 0 in
  let best_err = ref (error t summary ~region:0) in
  for r = 1 to t.num_regions - 1 do
    let e = error t summary ~region:r in
    if e < !best_err then begin
      best := r;
      best_err := e
    end
  done;
  (!best, !best_err)

let assign t summaries =
  (* Ties (common for sets with near-uniform affinity) are broken
     towards the region with the fewest sets so far: the paper does not
     specify a tie order, and spreading ties keeps the subsequent load
     balancer from moving half the sets. *)
  let counts = Array.make t.num_regions 0 in
  Array.map
    (fun s ->
      let best = ref 0 in
      let best_err = ref (error t s ~region:0) in
      for r = 1 to t.num_regions - 1 do
        let e = error t s ~region:r in
        if
          e < !best_err -. 1e-9
          || (Float.abs (e -. !best_err) <= 1e-9 && counts.(r) < counts.(!best))
        then begin
          best := r;
          best_err := e
        end
      done;
      counts.(!best) <- counts.(!best) + 1;
      !best)
    summaries

let mac t r = t.mac.(r)
let cac t r = t.cac.(r)
