type t = {
  cfg : Machine.Config.t;
  grid_rows : int;
  grid_cols : int;
}

let create (cfg : Machine.Config.t) =
  (match Machine.Config.validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Region.create: " ^ e));
  {
    cfg;
    grid_rows = Machine.Config.region_rows cfg;
    grid_cols = Machine.Config.region_cols cfg;
  }

let count t = t.grid_rows * t.grid_cols
let grid_rows t = t.grid_rows
let grid_cols t = t.grid_cols

let of_node t node =
  let row = node / t.cfg.Machine.Config.cols in
  let col = node mod t.cfg.Machine.Config.cols in
  let rr = row / t.cfg.Machine.Config.region_h in
  let rc = col / t.cfg.Machine.Config.region_w in
  (rr * t.grid_cols) + rc

let grid_coord t r = (r / t.grid_cols, r mod t.grid_cols)

let nodes_of t r =
  if r < 0 || r >= count t then invalid_arg "Region.nodes_of: out of range";
  let rr, rc = grid_coord t r in
  let h = t.cfg.Machine.Config.region_h in
  let w = t.cfg.Machine.Config.region_w in
  let cols = t.cfg.Machine.Config.cols in
  Array.init (h * w) (fun k ->
      let dr = k / w and dc = k mod w in
      (((rr * h) + dr) * cols) + (rc * w) + dc)

let center t r =
  let rr, rc = grid_coord t r in
  let h = float_of_int t.cfg.Machine.Config.region_h in
  let w = float_of_int t.cfg.Machine.Config.region_w in
  ( (float_of_int rr *. h) +. ((h -. 1.) /. 2.),
    (float_of_int rc *. w) +. ((w -. 1.) /. 2.) )

let grid_distance t a b =
  let ar, ac = grid_coord t a and br, bc = grid_coord t b in
  abs (ar - br) + abs (ac - bc)

let neighbors t r =
  let rr, rc = grid_coord t r in
  [ (rr - 1, rc); (rr, rc - 1); (rr, rc + 1); (rr + 1, rc) ]
  |> List.filter (fun (a, b) ->
         a >= 0 && a < t.grid_rows && b >= 0 && b < t.grid_cols)
  |> List.map (fun (a, b) -> (a * t.grid_cols) + b)

let pp ppf t =
  Format.fprintf ppf "%dx%d region grid (%d regions of %dx%d nodes)"
    t.grid_rows t.grid_cols (count t) t.cfg.Machine.Config.region_h
    t.cfg.Machine.Config.region_w
