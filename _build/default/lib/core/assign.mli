(** Iteration-set-to-region assignment (Algorithms 1 and 2, first
    part).

    For a private LLC the error of placing a set in region [R] is
    [η(MAI, MAC(R))] (Algorithm 1); for a shared LLC it is the
    α-weighted combination [α·η(CAI, CAC(R)) + (1-α)·η(MAI, MAC(R))]
    (Section 3.8, Algorithm 2), with α the set's estimated LLC hit
    fraction. Each set goes to the region minimising its error. *)

type t
(** Precomputed MAC/CAC tables for one machine. *)

val create : ?alpha_override:float -> Machine.Config.t -> Region.t -> t
(** [alpha_override] fixes the shared-LLC α weight instead of deriving
    it per set from the summary (an ablation knob: 0.0 uses only the
    memory term, 1.0 only the cache term). *)

val error : t -> Summary.t -> region:int -> float
(** Placement error of a summarised set in [region] under the
    configuration's LLC organisation. *)

val best_region : t -> Summary.t -> int * float
(** Region with the smallest error (lowest id wins ties, matching the
    deterministic scan of Algorithm 1) and that error. *)

val assign : t -> Summary.t array -> int array
(** [assign t summaries] is the pre-balance region choice for every
    set: minimum error, with ties broken towards the region holding the
    fewest sets so far (the paper leaves tie order unspecified). *)

val mac : t -> int -> float array
(** The MAC vector of a region (for inspection). *)

val cac : t -> int -> float array
