let counts ~num_regions region_of_set =
  let c = Array.make num_regions 0 in
  Array.iter
    (fun r ->
      if r < 0 || r >= num_regions then
        invalid_arg "Balance.counts: region out of range";
      c.(r) <- c.(r) + 1)
    region_of_set;
  c

let is_balanced ~num_regions region_of_set =
  let c = counts ~num_regions region_of_set in
  let n = Array.length region_of_set in
  let lo = n / num_regions in
  let hi = if n mod num_regions = 0 then lo else lo + 1 in
  Array.for_all (fun x -> x >= lo && x <= hi) c

let balance ~regions ~cost ~region_of_set =
  let num_regions = Region.count regions in
  let n = Array.length region_of_set in
  let result = Array.copy region_of_set in
  if n = 0 || num_regions <= 1 then result
  else begin
    let count = counts ~num_regions region_of_set in
    (* Desired loads: everyone gets [n / m]; the remainder stays with
       the currently most-loaded regions to minimise movement. *)
    let base = n / num_regions in
    let rem = n mod num_regions in
    let order =
      List.sort
        (fun a b -> Int.compare count.(b) count.(a))
        (List.init num_regions Fun.id)
    in
    let desired = Array.make num_regions base in
    List.iteri (fun i r -> if i < rem then desired.(r) <- base + 1) order;
    let surplus = Array.init num_regions (fun r -> count.(r) - desired.(r)) in
    (* Donor/receiver pairs by region proximity (the paper's
       SORTED_NBGH), nearest pairs first. *)
    let pairs = ref [] in
    for d = 0 to num_regions - 1 do
      for r = 0 to num_regions - 1 do
        if surplus.(d) > 0 && surplus.(r) < 0 then
          pairs := (Region.grid_distance regions d r, d, r) :: !pairs
      done
    done;
    let pairs =
      List.sort
        (fun (da, d1, r1) (db, d2, r2) ->
          match Int.compare da db with
          | 0 -> (
              match Int.compare d1 d2 with
              | 0 -> Int.compare r1 r2
              | c -> c)
          | c -> c)
        !pairs
    in
    (* Sets currently in each region, cheapest-to-move last so we can
       pop from the tail. *)
    let members = Array.make num_regions [] in
    Array.iteri (fun k r -> members.(r) <- k :: members.(r)) result;
    List.iter
      (fun (_, d, r) ->
        let quota = min surplus.(d) (-surplus.(r)) in
        if quota > 0 then begin
          (* Donate the sets whose error increase (receiver - donor) is
             smallest. *)
          let ranked =
            List.sort
              (fun a b ->
                Float.compare (cost a r -. cost a d) (cost b r -. cost b d))
              members.(d)
          in
          let rec take k moved rest =
            if k = 0 then (moved, rest)
            else
              match rest with
              | [] -> (moved, [])
              | s :: tl -> take (k - 1) (s :: moved) tl
          in
          let moved, kept = take quota [] ranked in
          List.iter
            (fun s ->
              result.(s) <- r;
              members.(r) <- s :: members.(r))
            moved;
          members.(d) <- kept;
          surplus.(d) <- surplus.(d) - List.length moved;
          surplus.(r) <- surplus.(r) + List.length moved
        end)
      pairs;
    result
  end
