(** Location-aware load balancing (Algorithm 1, lines 15-24).

    After the affinity-driven assignment, regions may hold unequal
    numbers of iteration sets. The balancer computes the target average,
    identifies donors (above it) and receivers (below it), orders
    donor/receiver pairs by region-grid proximity, and transfers sets
    along that order — so load moves between *nearby* regions first and
    the affinity loss stays small. Within a pair, the sets donated are
    those whose placement-error increase is smallest. *)

val balance :
  regions:Region.t ->
  cost:(int -> int -> float) ->
  region_of_set:int array ->
  int array
(** [balance ~regions ~cost ~region_of_set] returns the post-balance
    region per set. [cost set region] is the placement error of [set]
    in [region] (typically {!Assign.error}). The input array is not
    mutated. *)

val counts : num_regions:int -> int array -> int array
(** Sets per region. *)

val is_balanced : num_regions:int -> int array -> bool
(** All regions within one set of the exact average. *)
