(** Affinity vectors and the similarity metric.

    An affinity vector is a discrete probability distribution: MAI/MAC
    range over memory controllers, CAI/CAC over regions (Sections
    3.2-3.7). The dissimilarity between two vectors is the paper's
    [η(δ, δ') = Σ_k |δ_k - δ'_k| / m]. *)

val eta : float array -> float array -> float
(** The paper's error (dissimilarity) measure. Raises
    [Invalid_argument] on length mismatch or empty vectors. *)

val normalize : float array -> float array
(** Scales a non-negative vector to sum to 1; an all-zero vector
    becomes uniform. *)

val of_counts : int array -> float array
(** {!normalize} over integer counts. *)

val is_distribution : ?eps:float -> float array -> bool
(** Entries non-negative and summing to 1 within [eps] (default
    1e-9). *)

val mac : Machine.Config.t -> Region.t -> int -> float array
(** [mac cfg regions r] is the MAC vector of region [r]. Under the
    default {!Machine.Config.Nearest_set} mode, affinity is split
    equally over the MCs whose Manhattan distance from the region's
    centre is within [cfg.mac_tolerance] of the minimum — this
    reproduces the paper's Figure 6a on the default machine
    (Section 3.3). {!Machine.Config.Inverse_distance} is the
    finer-granular encoding Section 3.9 suggests. *)

val mac_all : Machine.Config.t -> Region.t -> float array array

val cac : Region.t -> int -> float array
(** [cac regions r] is the CAC vector of region [r]: 0.5 on [r] itself
    and the remaining 0.5 split equally over its orthogonal neighbours
    (Figure 6c, Section 3.7). *)

val cac_all : Region.t -> float array array

val pp : Format.formatter -> float array -> unit
