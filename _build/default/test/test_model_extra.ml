(* Additional edge-case tests across the model: non-square regions,
   alternative MC placements, engine diagnostics, and API corners that
   the mainline suites do not reach. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let cfg = Machine.Config.default

(* ------------------------------------------------------------------ *)

let test_regions_2x1 () =
  let c = { cfg with Machine.Config.region_h = 2; region_w = 1 } in
  let r = Locmap.Region.create c in
  check_int "18 regions" 18 (Locmap.Region.count r);
  check_int "grid is 3x6" 3 (Locmap.Region.grid_rows r);
  check_int "six columns" 6 (Locmap.Region.grid_cols r);
  check_int "two nodes each" 2 (Array.length (Locmap.Region.nodes_of r 0));
  (* Node 6 = (1,0) belongs to region 0 (rows 0-1, col 0). *)
  check_int "vertical pairing" 0 (Locmap.Region.of_node r 6);
  (* All 36 nodes covered exactly once. *)
  let seen = Array.make 36 0 in
  for reg = 0 to 17 do
    Array.iter (fun n -> seen.(n) <- seen.(n) + 1) (Locmap.Region.nodes_of r reg)
  done;
  check_bool "partition" true (Array.for_all (( = ) 1) seen)

let test_regions_1x1 () =
  let c = { cfg with Machine.Config.region_h = 1; region_w = 1 } in
  let r = Locmap.Region.create c in
  check_int "36 regions" 36 (Locmap.Region.count r);
  for n = 0 to 35 do
    check_int "region = node" n (Locmap.Region.of_node r n)
  done

let test_mac_midpoint_machine () =
  let c = { cfg with Machine.Config.mc_placement = Noc.Topology.Edge_midpoints } in
  let r = Locmap.Region.create c in
  for reg = 0 to 8 do
    check_bool
      (Printf.sprintf "MAC(R%d) is a distribution" (reg + 1))
      true
      (Locmap.Affinity.is_distribution ~eps:1e-9 (Locmap.Affinity.mac c r reg))
  done;
  (* The top-middle region is closest to the top-middle MC (index 0). *)
  let v = Locmap.Affinity.mac c r 1 in
  check_bool "R2 prefers the top MC" true
    (v.(0) >= v.(1) && v.(0) >= v.(2) && v.(0) >= v.(3))

let test_cac_two_region_machine () =
  (* A 6x6 mesh split into two 3x6 regions: each region has exactly one
     neighbour, which receives the full spill weight. *)
  let c = { cfg with Machine.Config.region_h = 3; region_w = 6 } in
  let r = Locmap.Region.create c in
  check_int "two regions" 2 (Locmap.Region.count r);
  let v = Locmap.Affinity.cac r 0 in
  Alcotest.(check (float 1e-9)) "self half" 0.5 v.(0);
  Alcotest.(check (float 1e-9)) "neighbour half" 0.5 v.(1)

(* ------------------------------------------------------------------ *)

let torus66 =
  Noc.Topology.create ~kind:Noc.Topology.Torus ~rows:6 ~cols:6
    Noc.Topology.Corners

let test_torus_distance () =
  let c = Noc.Coord.make in
  check_int "wraps columns" 1
    (Noc.Topology.distance torus66 (c ~row:0 ~col:0) (c ~row:0 ~col:5));
  check_int "wraps both dims" 2
    (Noc.Topology.distance torus66 (c ~row:0 ~col:0) (c ~row:5 ~col:5));
  check_int "interior unchanged" 4
    (Noc.Topology.distance torus66 (c ~row:1 ~col:1) (c ~row:3 ~col:3));
  check_int "mesh does not wrap" 10
    (Noc.Topology.distance
       (Noc.Topology.create ~rows:6 ~cols:6 Noc.Topology.Corners)
       (c ~row:0 ~col:0) (c ~row:5 ~col:5))

let test_torus_routing () =
  (* Path length equals the wrap-aware distance for every pair. *)
  for src = 0 to 35 do
    for dst = 0 to 35 do
      check_int
        (Printf.sprintf "path %d->%d" src dst)
        (Noc.Routing.hop_count torus66 ~src ~dst)
        (List.length (Noc.Routing.path torus66 ~src ~dst))
    done
  done;
  (* Corner to opposite corner: one wrap hop per dimension. *)
  check_int "corner shortcut" 2 (Noc.Routing.hop_count torus66 ~src:0 ~dst:35)

let test_torus_machine_runs () =
  (* Note: on a 6x6 torus the four *corner* MCs wrap to within two hops
     of one another, flattening every region's MAC — there is then
     little to localise. Edge-midpoint MCs stay spread out, so that is
     the placement a torus machine would use. *)
  let c =
    {
      cfg with
      Machine.Config.topology_kind = Noc.Topology.Torus;
      mc_placement = Noc.Topology.Edge_midpoints;
    }
  in
  let r = Locmap.Region.create c in
  for reg = 0 to 8 do
    check_bool "torus MAC is a distribution" true
      (Locmap.Affinity.is_distribution ~eps:1e-9 (Locmap.Affinity.mac c r reg))
  done;
  let p = Harness.Experiment.prepare_name ~scale:0.25 "jacobi-3d" in
  let base = Harness.Experiment.run c p Harness.Experiment.Default in
  let la = Harness.Experiment.run c p Harness.Experiment.Location_aware in
  check_bool "LA still reduces network latency on the torus" true
    (la.stats.Machine.Stats.net_latency
    < base.stats.Machine.Stats.net_latency)

let test_addr_map_created_before_remap () =
  (* Addr_map captures the translation state at creation: remapping a
     page afterwards requires re-creating the map (documented). *)
  let pt = Mem.Page_table.create ~page_size:cfg.Machine.Config.page_size () in
  let before = Machine.Addr_map.create cfg pt in
  Mem.Page_table.remap_page pt ~vpage:0 ~ppage:5;
  check_int "stale map stays identity" 100 (Machine.Addr_map.translate before 100);
  let after = Machine.Addr_map.create cfg pt in
  check_int "fresh map sees the remap" ((5 * 2048) + 100)
    (Machine.Addr_map.translate after 100)

(* ------------------------------------------------------------------ *)

let arr name length = { Ir.Program.name; elem_size = 8; length }

let small_prog =
  Ir.Program.create ~name:"p" ~kind:Ir.Program.Regular
    ~arrays:[ arr "a" 4096 ]
    [
      Ir.Loop_nest.make ~name:"n" ~compute_cycles:5
        ~par:(Ir.Loop_nest.loop "i" ~hi:4096)
        [ Ir.Access.read "a" (Ir.Access.direct (Ir.Affine.var "i")) ];
    ]

let run_small () =
  let layout = Ir.Layout.allocate ~page_size:cfg.Machine.Config.page_size small_prog in
  let trace = Ir.Trace.create small_prog layout in
  let sets = Ir.Iter_set.partition small_prog ~fraction:0.01 in
  let schedule = Machine.Schedule.round_robin ~num_cores:36 sets in
  Machine.Engine.run_single cfg ~trace ~schedule ()

let test_engine_histogram_consistency () =
  let r = run_small () in
  check_int "histogram covers every packet" r.stats.Machine.Stats.net_packets
    (Array.fold_left ( + ) 0 r.net_latency_histogram)

let test_engine_link_busy () =
  let r = run_small () in
  check_int "one counter per directed link" (36 * 4) (Array.length r.link_busy);
  check_bool "non-negative" true (Array.for_all (fun b -> b >= 0) r.link_busy);
  check_bool "some links used" true (Array.exists (fun b -> b > 0) r.link_busy)

let test_trace_compute_cycles () =
  let layout = Ir.Layout.allocate ~page_size:cfg.Machine.Config.page_size small_prog in
  let trace = Ir.Trace.create small_prog layout in
  check_int "compute per parallel iteration" 5
    (Ir.Trace.compute_cycles_per_par_iter trace ~nest:0);
  check_int "accesses per parallel iteration" 1
    (Ir.Trace.accesses_per_par_iter trace ~nest:0)

(* ------------------------------------------------------------------ *)

let test_iter_set_full_fraction () =
  let sets = Ir.Iter_set.partition_nest ~iterations:77 ~nest:0 ~fraction:1.0 in
  check_int "single set" 1 (Array.length sets);
  check_int "covers everything" 77 (Ir.Iter_set.size sets.(0))

let test_iter_set_bad_fraction () =
  check_bool "zero rejected" true
    (try
       ignore (Ir.Iter_set.partition_nest ~iterations:10 ~nest:0 ~fraction:0.);
       false
     with Invalid_argument _ -> true)

let test_summary_defaults () =
  let s = Locmap.Summary.create ~num_mcs:4 ~num_regions:9 in
  Alcotest.(check (float 1e-9)) "alpha neutral when empty" 0.5
    (Locmap.Summary.alpha s);
  check_bool "mai uniform when empty" true
    (Array.for_all (fun x -> Float.abs (x -. 0.25) < 1e-9) (Locmap.Summary.mai s))

let test_distribution_pp () =
  let s = Format.asprintf "%a" Mem.Distribution.pp Mem.Distribution.default in
  check_bool "mentions granularities" true
    (contains s "page" && contains s "cache line")

let test_config_pp () =
  let s = Format.asprintf "%a" Machine.Config.pp cfg in
  check_bool "prints Table 4 fields" true
    (contains s "36 cores" && contains s "DDR3-1333")

let () =
  Alcotest.run "model_extra"
    [
      ( "regions",
        [
          Alcotest.test_case "18 regions (2x1)" `Quick test_regions_2x1;
          Alcotest.test_case "36 regions (1x1)" `Quick test_regions_1x1;
          Alcotest.test_case "MAC on midpoint MCs" `Quick test_mac_midpoint_machine;
          Alcotest.test_case "CAC on two regions" `Quick test_cac_two_region_machine;
        ] );
      ( "torus",
        [
          Alcotest.test_case "distance" `Quick test_torus_distance;
          Alcotest.test_case "routing" `Quick test_torus_routing;
          Alcotest.test_case "machine runs" `Quick test_torus_machine_runs;
        ] );
      ( "addr_map",
        [
          Alcotest.test_case "creation captures translation" `Quick
            test_addr_map_created_before_remap;
        ] );
      ( "engine",
        [
          Alcotest.test_case "histogram consistency" `Quick
            test_engine_histogram_consistency;
          Alcotest.test_case "link busy" `Quick test_engine_link_busy;
          Alcotest.test_case "trace compute cycles" `Quick test_trace_compute_cycles;
        ] );
      ( "small APIs",
        [
          Alcotest.test_case "full-fraction set" `Quick test_iter_set_full_fraction;
          Alcotest.test_case "bad fraction" `Quick test_iter_set_bad_fraction;
          Alcotest.test_case "summary defaults" `Quick test_summary_defaults;
          Alcotest.test_case "distribution pp" `Quick test_distribution_pp;
          Alcotest.test_case "config pp" `Quick test_config_pp;
        ] );
    ]
