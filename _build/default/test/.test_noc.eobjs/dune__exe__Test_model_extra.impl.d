test/test_model_extra.ml: Alcotest Array Float Format Harness Ir List Locmap Machine Mem Noc Printf String
