test/test_cme.ml: Alcotest Array Cme Harness Ir Locmap Machine Mem Printf
