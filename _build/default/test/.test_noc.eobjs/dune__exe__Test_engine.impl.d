test/test_engine.ml: Alcotest Array Cache Fun Ir Machine
