test/test_props.ml: Alcotest Array Cache Fun Gen Harness Ir List Locmap Machine QCheck QCheck_alcotest
