test/test_baselines.ml: Alcotest Array Baselines Fun Harness Hashtbl Ir Lazy List Locmap Machine Mem Noc
