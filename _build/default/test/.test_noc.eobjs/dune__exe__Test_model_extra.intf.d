test/test_model_extra.mli:
