test/test_harness.ml: Alcotest Harness Ir List Machine Unix Workloads
