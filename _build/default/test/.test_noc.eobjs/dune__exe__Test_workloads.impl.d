test/test_workloads.ml: Alcotest Array Ir List Machine Printf Workloads
