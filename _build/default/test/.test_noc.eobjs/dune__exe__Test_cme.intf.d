test/test_cme.mli:
