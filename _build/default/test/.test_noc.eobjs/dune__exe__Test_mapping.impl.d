test/test_mapping.ml: Alcotest Array Cache Extensions Float Gen Harness Ir Lazy List Locmap Machine Mem Printf QCheck QCheck_alcotest
