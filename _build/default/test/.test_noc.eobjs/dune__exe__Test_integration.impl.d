test/test_integration.ml: Alcotest Cache Float Harness List Machine Printf
