test/test_noc.ml: Alcotest Array List Noc Printf QCheck QCheck_alcotest
