test/test_mem.ml: Alcotest Fun List Mem QCheck QCheck_alcotest
