test/test_machine.ml: Alcotest Array Fun Gen Ir List Machine Mem Printf QCheck QCheck_alcotest
