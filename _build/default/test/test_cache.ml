(* Tests for the set-associative cache model. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small () = Cache.Sa_cache.create ~size:1024 ~assoc:2 ~line_size:64 ()
(* 1024 / 64 = 16 lines, 2-way -> 8 sets. Addresses [a] and
   [a + 8*64 = a + 512] collide in the same set. *)

let is_hit = function
  | Cache.Sa_cache.Hit -> true
  | Cache.Sa_cache.Miss _ -> false

let test_geometry () =
  let c = small () in
  check_int "sets" 8 (Cache.Sa_cache.num_sets c);
  check_int "assoc" 2 (Cache.Sa_cache.assoc c);
  check_int "capacity" 1024 (Cache.Sa_cache.capacity c);
  check_int "line size" 64 (Cache.Sa_cache.line_size c)

let test_geometry_errors () =
  Alcotest.check_raises "indivisible"
    (Invalid_argument "Sa_cache.create: size not divisible into sets")
    (fun () -> ignore (Cache.Sa_cache.create ~size:100 ~assoc:3 ~line_size:64 ()));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Sa_cache.create: non-positive geometry") (fun () ->
      ignore (Cache.Sa_cache.create ~size:0 ~assoc:1 ~line_size:64 ()))

let test_miss_then_hit () =
  let c = small () in
  check_bool "cold miss" false (is_hit (Cache.Sa_cache.access c ~addr:0 ~write:false));
  check_bool "hit" true (is_hit (Cache.Sa_cache.access c ~addr:32 ~write:false));
  check_int "hits" 1 (Cache.Sa_cache.hits c);
  check_int "misses" 1 (Cache.Sa_cache.misses c)

let test_lru_eviction () =
  let c = small () in
  (* Three same-set lines in a 2-way set: the oldest is evicted. *)
  ignore (Cache.Sa_cache.access c ~addr:0 ~write:false);
  ignore (Cache.Sa_cache.access c ~addr:512 ~write:false);
  (* Touch 0 again so 512 becomes LRU. *)
  ignore (Cache.Sa_cache.access c ~addr:0 ~write:false);
  (match Cache.Sa_cache.access c ~addr:1024 ~write:false with
  | Cache.Sa_cache.Miss { victim_line_addr; victim_dirty } ->
      check_int "LRU victim" 512 victim_line_addr;
      check_bool "clean victim" false victim_dirty
  | Cache.Sa_cache.Hit -> Alcotest.fail "expected a miss");
  check_bool "0 survived" true (Cache.Sa_cache.probe c ~addr:0);
  check_bool "512 evicted" false (Cache.Sa_cache.probe c ~addr:512)

let test_dirty_writeback () =
  let c = small () in
  ignore (Cache.Sa_cache.access c ~addr:0 ~write:true);
  ignore (Cache.Sa_cache.access c ~addr:512 ~write:false);
  (match Cache.Sa_cache.access c ~addr:1024 ~write:false with
  | Cache.Sa_cache.Miss { victim_line_addr; victim_dirty } ->
      check_int "dirty victim is line 0" 0 victim_line_addr;
      check_bool "dirty" true victim_dirty
  | Cache.Sa_cache.Hit -> Alcotest.fail "expected a miss");
  check_int "writebacks counted" 1 (Cache.Sa_cache.writebacks c)

let test_write_hit_marks_dirty () =
  let c = small () in
  ignore (Cache.Sa_cache.access c ~addr:0 ~write:false);
  ignore (Cache.Sa_cache.access c ~addr:0 ~write:true);
  ignore (Cache.Sa_cache.access c ~addr:512 ~write:false);
  match Cache.Sa_cache.access c ~addr:1024 ~write:false with
  | Cache.Sa_cache.Miss { victim_dirty; _ } ->
      check_bool "write hit dirtied the line" true victim_dirty
  | Cache.Sa_cache.Hit -> Alcotest.fail "expected a miss"

let test_probe_no_side_effect () =
  let c = small () in
  ignore (Cache.Sa_cache.access c ~addr:0 ~write:false);
  let h = Cache.Sa_cache.hits c and m = Cache.Sa_cache.misses c in
  ignore (Cache.Sa_cache.probe c ~addr:0);
  ignore (Cache.Sa_cache.probe c ~addr:4096);
  check_int "hits unchanged" h (Cache.Sa_cache.hits c);
  check_int "misses unchanged" m (Cache.Sa_cache.misses c)

let test_invalidate () =
  let c = small () in
  ignore (Cache.Sa_cache.access c ~addr:0 ~write:true);
  Cache.Sa_cache.invalidate c ~addr:0;
  check_bool "gone" false (Cache.Sa_cache.probe c ~addr:0)

let test_reset () =
  let c = small () in
  ignore (Cache.Sa_cache.access c ~addr:0 ~write:false);
  Cache.Sa_cache.reset c;
  check_int "accesses cleared" 0 (Cache.Sa_cache.accesses c);
  check_bool "contents cleared" false (Cache.Sa_cache.probe c ~addr:0)

let test_full_way_residency () =
  let c = small () in
  (* Fill both ways of one set, re-touch both: all hits. *)
  ignore (Cache.Sa_cache.access c ~addr:0 ~write:false);
  ignore (Cache.Sa_cache.access c ~addr:512 ~write:false);
  check_bool "way 1 resident" true (is_hit (Cache.Sa_cache.access c ~addr:0 ~write:false));
  check_bool "way 2 resident" true
    (is_hit (Cache.Sa_cache.access c ~addr:512 ~write:false))

(* Property: a sequential sweep larger than the cache yields exactly one
   miss per line (streaming), and a re-sweep of a cache-sized prefix
   hits everywhere. *)
let qcheck_streaming_misses =
  QCheck.Test.make ~name:"sequential sweep misses once per line" ~count:20
    QCheck.(int_range 4 64)
    (fun lines ->
      let c = Cache.Sa_cache.create ~size:(1 lsl 14) ~assoc:8 ~line_size:64 () in
      for k = 0 to (lines * 8) - 1 do
        ignore (Cache.Sa_cache.access c ~addr:(k * 8) ~write:false)
      done;
      Cache.Sa_cache.misses c = lines)

let qcheck_hit_rate_bounds =
  QCheck.Test.make ~name:"hit rate within [0,1]" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 100_000))
    (fun addrs ->
      let c = small () in
      List.iter (fun a -> ignore (Cache.Sa_cache.access c ~addr:a ~write:false)) addrs;
      let r = Cache.Sa_cache.hit_rate c in
      r >= 0. && r <= 1.)

let () =
  Alcotest.run "cache"
    [
      ( "sa_cache",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "geometry errors" `Quick test_geometry_errors;
          Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "dirty writeback" `Quick test_dirty_writeback;
          Alcotest.test_case "write hit dirties" `Quick test_write_hit_marks_dirty;
          Alcotest.test_case "probe is pure" `Quick test_probe_no_side_effect;
          Alcotest.test_case "invalidate" `Quick test_invalidate;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "full-way residency" `Quick test_full_way_residency;
          QCheck_alcotest.to_alcotest qcheck_streaming_misses;
          QCheck_alcotest.to_alcotest qcheck_hit_rate_bounds;
        ] );
      ( "llc",
        [
          Alcotest.test_case "string roundtrip" `Quick (fun () ->
              check_bool "private" true
                (Cache.Llc.of_string "Private" = Ok Cache.Llc.Private);
              check_bool "shared" true
                (Cache.Llc.of_string "shared" = Ok Cache.Llc.Shared);
              check_bool "unknown is error" true
                (match Cache.Llc.of_string "weird" with
                | Error _ -> true
                | Ok _ -> false);
              check_bool "equal" true (Cache.Llc.equal Cache.Llc.Shared Cache.Llc.Shared);
              check_bool "not equal" false
                (Cache.Llc.equal Cache.Llc.Shared Cache.Llc.Private));
        ] );
    ]
