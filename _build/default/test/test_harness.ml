(* Tests for the experiment harness: preparation, memoised runs,
   strategies and report aggregation. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cfg = Machine.Config.default

let test_prepare () =
  let p = Harness.Experiment.prepare_name ~scale:0.25 "fft" in
  check_bool "entry name" true (p.entry.Workloads.Registry.name = "fft");
  check_bool "trace compiled" true (Ir.Trace.num_nests p.trace > 0);
  check_bool "unknown raises" true
    (try
       ignore (Harness.Experiment.prepare_name "nope");
       false
     with Not_found -> true)

let test_run_memoised () =
  Harness.Experiment.clear_cache ();
  let p = Harness.Experiment.prepare_name ~scale:0.25 "fft" in
  let t0 = Unix.gettimeofday () in
  let a = Harness.Experiment.run cfg p Harness.Experiment.Default in
  let t1 = Unix.gettimeofday () in
  let b = Harness.Experiment.run cfg p Harness.Experiment.Default in
  let t2 = Unix.gettimeofday () in
  check_bool "same object from cache" true (a == b);
  check_bool "cache fast" true (t2 -. t1 < (t1 -. t0) /. 2. +. 0.01)

let test_strategies_distinct () =
  Harness.Experiment.clear_cache ();
  let p = Harness.Experiment.prepare_name ~scale:0.25 "jacobi-3d" in
  let dflt = Harness.Experiment.run cfg p Harness.Experiment.Default in
  let ideal = Harness.Experiment.run cfg p Harness.Experiment.Ideal_network in
  let la = Harness.Experiment.run cfg p Harness.Experiment.Location_aware in
  check_int "ideal network silent" 0 ideal.stats.Machine.Stats.net_packets;
  check_bool "LA carries mapping info" true (la.info <> None);
  check_bool "default has no info" true (dflt.info = None);
  check_bool "LA reduces network latency on jacobi" true
    (la.stats.Machine.Stats.net_latency < dflt.stats.Machine.Stats.net_latency)

let test_reductions () =
  check_bool "50%" true (Harness.Experiment.reduction ~base:100 50 = 50.);
  check_bool "negative when worse" true (Harness.Experiment.reduction ~base:100 120 < 0.);
  check_bool "zero base safe" true (Harness.Experiment.reduction ~base:0 5 = 0.)

let test_strategy_names () =
  let all =
    Harness.Experiment.
      [ Default; Location_aware; La_oracle; Ideal_network; Hw_placement;
        Data_opt; La_plus_do; Co_optimized ]
  in
  let names = List.map Harness.Experiment.strategy_name all in
  check_int "distinct names" (List.length all)
    (List.length (List.sort_uniq compare names))

(* ------------------------------------------------------------------ *)

let test_geomean () =
  Alcotest.(check (float 1e-9)) "identity" 1. (Harness.Report.geomean_ratio [ 1.; 1. ]);
  Alcotest.(check (float 1e-6)) "sqrt" 2. (Harness.Report.geomean_ratio [ 1.; 4. ]);
  Alcotest.(check (float 1e-9)) "empty" 1. (Harness.Report.geomean_ratio []);
  (* Reduction aggregation matches the paper's GEOMEAN semantics. *)
  Alcotest.(check (float 1e-6)) "all fifty" 50.
    (Harness.Report.geomean_reduction [ 50.; 50. ]);
  check_bool "mixed stays between" true
    (let g = Harness.Report.geomean_reduction [ 80.; 0. ] in
     g > 0. && g < 80.)

let test_mean_and_formats () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Harness.Report.mean [ 1.; 2.; 3. ]);
  Alcotest.(check string) "pct" "12.3" (Harness.Report.pct 12.34);
  Alcotest.(check string) "f3" "0.123" (Harness.Report.f3 0.1234)

let test_figures_registry () =
  check_int "16 drivers" 16 (List.length Harness.Figures.all);
  check_bool "find fig7" true (Harness.Figures.find "fig7" <> None);
  check_bool "find unknown" true (Harness.Figures.find "fig99" = None);
  check_bool "ids unique" true
    (let ids = List.map (fun (f : Harness.Figures.fig) -> f.id) Harness.Figures.all in
     List.length (List.sort_uniq compare ids) = List.length ids)

let () =
  Alcotest.run "harness"
    [
      ( "experiment",
        [
          Alcotest.test_case "prepare" `Quick test_prepare;
          Alcotest.test_case "memoised" `Quick test_run_memoised;
          Alcotest.test_case "strategies" `Quick test_strategies_distinct;
          Alcotest.test_case "reductions" `Quick test_reductions;
          Alcotest.test_case "strategy names" `Quick test_strategy_names;
        ] );
      ( "report",
        [
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "mean and formats" `Quick test_mean_and_formats;
        ] );
      ("figures", [ Alcotest.test_case "registry" `Quick test_figures_registry ]);
    ]
