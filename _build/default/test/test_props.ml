(* Property tests against independent reference models: the
   set-associative cache versus a naive LRU oracle, and compiled trace
   expansion versus direct evaluation of randomly generated affine
   programs. *)

(* ------------------------------------------------------------------ *)
(* A deliberately naive set-associative LRU cache: each set is a list
   of (line, dirty), most recently used first. *)

module Ref_cache = struct
  type t = {
    sets : int;
    assoc : int;
    line : int;
    mutable state : (int * bool) list array;
  }

  let create ~size ~assoc ~line_size () =
    let lines = size / line_size in
    {
      sets = lines / assoc;
      assoc;
      line = line_size;
      state = Array.make (lines / assoc) [];
    }

  (* Returns (hit, victim_dirty_line option). *)
  let access t ~addr ~write =
    let line = addr / t.line in
    let set = line mod t.sets in
    let entries = t.state.(set) in
    match List.assoc_opt line entries with
    | Some dirty ->
        t.state.(set) <-
          (line, dirty || write) :: List.remove_assoc line entries;
        (true, None)
    | None ->
        let entries = (line, write) :: entries in
        if List.length entries > t.assoc then begin
          let kept = List.filteri (fun k _ -> k < t.assoc) entries in
          let victim = List.nth entries t.assoc in
          t.state.(set) <- kept;
          (false, Some victim)
        end
        else begin
          t.state.(set) <- entries;
          (false, None)
        end
end

let qcheck_cache_matches_reference =
  QCheck.Test.make ~name:"Sa_cache behaves like the naive LRU oracle"
    ~count:60
    QCheck.(
      list_of_size
        Gen.(int_range 50 400)
        (pair (int_bound 8191) bool))
    (fun trace ->
      let c = Cache.Sa_cache.create ~size:1024 ~assoc:2 ~line_size:64 () in
      let r = Ref_cache.create ~size:1024 ~assoc:2 ~line_size:64 () in
      List.for_all
        (fun (addr, write) ->
          let got = Cache.Sa_cache.access c ~addr ~write in
          let hit_ref, victim_ref = Ref_cache.access r ~addr ~write in
          match got with
          | Cache.Sa_cache.Hit -> hit_ref
          | Cache.Sa_cache.Miss { victim_line_addr; victim_dirty } -> (
              (not hit_ref)
              &&
              match victim_ref with
              | None -> victim_line_addr = -1
              | Some (vline, vdirty) ->
                  victim_line_addr = vline * 64 && victim_dirty = vdirty))
        trace)

(* ------------------------------------------------------------------ *)
(* Random small affine programs: trace expansion must equal direct
   evaluation of the index expressions, in program order. *)

let gen_program =
  QCheck.Gen.(
    let* par_trip = int_range 2 12 in
    let* inner_trip = int_range 1 4 in
    let* nrefs = int_range 1 4 in
    let* coeffs =
      list_size (return nrefs)
        (triple (int_range 0 3) (int_range 0 3) (int_range 0 15))
    in
    let* steps = int_range 1 3 in
    return (par_trip, inner_trip, coeffs, steps))

let build (par_trip, inner_trip, coeffs, steps) =
  (* Size the array so every reference stays in bounds. *)
  let max_index =
    List.fold_left
      (fun acc (ci, cj, c0) ->
        max acc ((ci * (par_trip - 1)) + (cj * (inner_trip - 1)) + c0))
      0 coeffs
  in
  let arr =
    { Ir.Program.name = "a"; elem_size = 8; length = max_index + 1 }
  in
  let body =
    List.map
      (fun (ci, cj, c0) ->
        Ir.Access.read "a"
          (Ir.Access.direct
             Ir.Affine.(
               add (var ~coeff:ci "i") (add (var ~coeff:cj "j") (const c0)))))
      coeffs
  in
  Ir.Program.create ~name:"rand" ~kind:Ir.Program.Regular ~arrays:[ arr ]
    ~time_steps:steps
    [
      Ir.Loop_nest.make ~name:"n"
        ~par:(Ir.Loop_nest.loop "i" ~hi:par_trip)
        ~inner:[ Ir.Loop_nest.loop "j" ~hi:inner_trip ]
        body;
    ]

let expected_addrs (par_trip, inner_trip, coeffs, _) base step lo hi =
  let out = ref [] in
  for i = lo to hi - 1 do
    for j = 0 to inner_trip - 1 do
      List.iter
        (fun (ci, cj, c0) ->
          ignore step;
          out := (base + (8 * ((ci * i) + (cj * j) + c0))) :: !out)
        coeffs
    done
  done;
  ignore par_trip;
  List.rev !out

let qcheck_trace_matches_direct_eval =
  QCheck.Test.make ~name:"trace expansion equals direct evaluation" ~count:100
    (QCheck.make gen_program) (fun spec ->
      let prog = build spec in
      let layout = Ir.Layout.allocate ~page_size:2048 prog in
      let trace = Ir.Trace.create prog layout in
      let base = Ir.Layout.base layout "a" in
      let par_trip, _, _, steps = spec in
      let lo = 0 and hi = min par_trip 5 in
      List.for_all
        (fun step ->
          let got = ref [] in
          Ir.Trace.iter_range ~step trace ~nest:0 ~lo ~hi
            (fun ~addr ~write:_ -> got := addr :: !got);
          List.rev !got = expected_addrs spec base step lo hi)
        (List.init steps Fun.id))

(* ------------------------------------------------------------------ *)
(* Mapper end-to-end invariants on random fractions. *)

let qcheck_mapper_covers_all_sets =
  QCheck.Test.make ~name:"mapper assigns every set to a valid core" ~count:10
    QCheck.(int_range 1 40)
    (fun pct ->
      let p = Harness.Experiment.prepare_name ~scale:0.25 "fft" in
      let cfg = Machine.Config.default in
      let info =
        Locmap.Mapper.map ~measure_error:false
          ~fraction:(float_of_int pct /. 1000.)
          cfg p.Harness.Experiment.trace
      in
      Machine.Schedule.validate info.schedule
        ~num_cores:(Machine.Config.num_cores cfg)
      = Ok ()
      && Array.length info.schedule.core_of = Array.length info.sets)

let () =
  Alcotest.run "props"
    [
      ( "reference models",
        [
          QCheck_alcotest.to_alcotest qcheck_cache_matches_reference;
          QCheck_alcotest.to_alcotest qcheck_trace_matches_direct_eval;
          QCheck_alcotest.to_alcotest qcheck_mapper_covers_all_sets;
        ] );
    ]
