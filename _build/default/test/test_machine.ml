(* Tests for machine description: configuration, address mapping,
   schedules, stats and the event heap. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cfg = Machine.Config.default

let test_config_default () =
  check_int "36 cores" 36 (Machine.Config.num_cores cfg);
  check_int "4 MCs" 4 (Machine.Config.num_mcs cfg);
  check_int "9 regions" 9 (Machine.Config.num_regions cfg);
  check_int "3x3 region grid" 3 (Machine.Config.region_rows cfg);
  check_int "data flits" 3 (Machine.Config.data_flits cfg);
  check_bool "valid" true (Machine.Config.validate cfg = Ok ())

let test_config_validate_errors () =
  let bad = { cfg with Machine.Config.region_h = 4 } in
  check_bool "regions must tile" true
    (match Machine.Config.validate bad with
    | Error _ -> true
    | Ok () -> false);
  let bad = { cfg with Machine.Config.l1_size = 1000 } in
  check_bool "cache geometry" true
    (match Machine.Config.validate bad with
    | Error _ -> true
    | Ok () -> false);
  let bad = { cfg with Machine.Config.iter_set_fraction = 0. } in
  check_bool "fraction bounds" true
    (match Machine.Config.validate bad with
    | Error _ -> true
    | Ok () -> false)

(* ------------------------------------------------------------------ *)

let pt () = Mem.Page_table.create ~page_size:cfg.page_size ()

let test_addr_map_default () =
  let am = Machine.Addr_map.create cfg (pt ()) in
  check_int "page rr mc 0" 0 (Machine.Addr_map.mc_of am 100);
  check_int "page rr mc 2" 2 (Machine.Addr_map.mc_of am (2 * 2048));
  check_int "page rr wraps" 1 (Machine.Addr_map.mc_of am (5 * 2048));
  check_int "line rr bank" 3 (Machine.Addr_map.bank_node_of am (3 * 64));
  check_int "line rr wraps" 0 (Machine.Addr_map.bank_node_of am (36 * 64));
  check_int "mc node 0 is corner" 0 (Machine.Addr_map.mc_node am 0);
  check_int "translate identity" 777 (Machine.Addr_map.translate am 777)

let test_addr_map_quadrants () =
  let am = Machine.Addr_map.create cfg (pt ()) in
  check_int "NW" 0 (Machine.Addr_map.quadrant_of_node am 0);
  check_int "NE" 1 (Machine.Addr_map.quadrant_of_node am 5);
  check_int "SW" 2 (Machine.Addr_map.quadrant_of_node am 30);
  check_int "SE" 3 (Machine.Addr_map.quadrant_of_node am 35);
  (* Corner MCs align with their quadrants. *)
  for q = 0 to 3 do
    check_int (Printf.sprintf "mc of quadrant %d" q) q
      (Machine.Addr_map.mc_of_quadrant am q)
  done

let test_addr_map_knl_modes () =
  let with_cluster c =
    Machine.Addr_map.create
      { cfg with Machine.Config.dist = { cfg.Machine.Config.dist with cluster = c } }
      (pt ())
  in
  let am_q = with_cluster Mem.Distribution.Quadrant in
  (* Quadrant mode: the MC is the one of the bank's quadrant. *)
  for k = 0 to 200 do
    let pa = k * 64 in
    let bank = Machine.Addr_map.bank_node_of am_q pa in
    check_int "quadrant mode ties mc to bank quadrant"
      (Machine.Addr_map.mc_of_quadrant am_q
         (Machine.Addr_map.quadrant_of_node am_q bank))
      (Machine.Addr_map.mc_of am_q pa)
  done;
  let am_s = with_cluster Mem.Distribution.Snc4 in
  (* SNC-4: bank and MC share the page's domain. *)
  for k = 0 to 200 do
    let pa = k * 2048 in
    let d = k mod 4 in
    check_int "snc4 mc from domain"
      (Machine.Addr_map.mc_of_quadrant am_s d)
      (Machine.Addr_map.mc_of am_s pa);
    check_int "snc4 bank inside domain" d
      (Machine.Addr_map.quadrant_of_node am_s
         (Machine.Addr_map.bank_node_of am_s pa))
  done;
  let am_a = with_cluster Mem.Distribution.All_to_all in
  check_bool "all-to-all in range" true
    (List.for_all
       (fun k ->
         let mc = Machine.Addr_map.mc_of am_a (k * 2048) in
         mc >= 0 && mc < 4)
       (List.init 100 Fun.id))

let test_addr_map_translate_remap () =
  let table = pt () in
  Mem.Page_table.remap_page table ~vpage:0 ~ppage:9;
  let am = Machine.Addr_map.create cfg table in
  check_int "remapped" ((9 * 2048) + 5) (Machine.Addr_map.translate am 5);
  check_int "mc follows physical page" 1
    (Machine.Addr_map.mc_of am (Machine.Addr_map.translate am 5))

(* ------------------------------------------------------------------ *)

let sets_of n =
  Ir.Iter_set.partition_nest ~iterations:n ~nest:0 ~fraction:0.01

let test_schedule_round_robin () =
  let sets = sets_of 1000 in
  let s = Machine.Schedule.round_robin ~num_cores:36 sets in
  check_bool "valid" true (Machine.Schedule.validate s ~num_cores:36 = Ok ());
  check_int "first set on core 0" 0 s.core_of.(0);
  check_int "37th set wraps" 0 s.core_of.(36);
  let loads = Machine.Schedule.load_of_cores s ~num_cores:36 in
  let mn = Array.fold_left min max_int loads and mx = Array.fold_left max 0 loads in
  check_bool "balanced" true (mx - mn <= 10)

let test_schedule_restricted_cores () =
  let sets = sets_of 100 in
  let s = Machine.Schedule.round_robin ~cores:[| 3; 7 |] ~num_cores:36 sets in
  check_bool "only chosen cores" true
    (Array.for_all (fun c -> c = 3 || c = 7) s.core_of)

let test_schedule_sets_of_core_nest () =
  let sets = sets_of 100 in
  let s = Machine.Schedule.round_robin ~num_cores:4 sets in
  let mine = Machine.Schedule.sets_of_core_nest s ~core:1 ~nest:0 in
  check_bool "ordered by iteration" true
    (let rec mono = function
       | (a : Ir.Iter_set.t) :: (b : Ir.Iter_set.t) :: tl ->
           a.lo < b.lo && mono (b :: tl)
       | _ -> true
     in
     mono mine)

let test_schedule_moved_fraction () =
  let sets = sets_of 100 in
  let a = Machine.Schedule.round_robin ~num_cores:4 sets in
  let b = Machine.Schedule.make ~sets ~core_of:(Array.map (fun c -> (c + 1) mod 4) a.core_of) in
  Alcotest.(check (float 1e-9)) "all moved" 1.0 (Machine.Schedule.moved_fraction ~before:a ~after:b);
  Alcotest.(check (float 1e-9)) "none moved" 0.0 (Machine.Schedule.moved_fraction ~before:a ~after:a)

let test_schedule_validate_errors () =
  let sets = sets_of 10 in
  let s = Machine.Schedule.make ~sets ~core_of:(Array.make (Array.length sets) 99) in
  check_bool "out of range rejected" true
    (match Machine.Schedule.validate s ~num_cores:36 with
    | Error _ -> true
    | Ok () -> false)

(* ------------------------------------------------------------------ *)

let test_event_heap_ordering () =
  let h = Machine.Event_heap.create ~capacity:2 in
  List.iter
    (fun (t, id) -> Machine.Event_heap.push h ~time:t ~id)
    [ (5, 0); (1, 1); (9, 2); (1, 3); (0, 4) ];
  check_int "size" 5 (Machine.Event_heap.size h);
  check_bool "peek" true (Machine.Event_heap.peek_time h = Some 0);
  let times = ref [] in
  let rec drain () =
    match Machine.Event_heap.pop h with
    | Some (t, _) ->
        times := t :: !times;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 0; 1; 1; 5; 9 ] (List.rev !times);
  check_bool "empty" true (Machine.Event_heap.is_empty h)

let qcheck_heap_sorted =
  QCheck.Test.make ~name:"heap pops in non-decreasing time order" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 10_000))
    (fun times ->
      let h = Machine.Event_heap.create ~capacity:4 in
      List.iteri (fun id t -> Machine.Event_heap.push h ~time:t ~id) times;
      let rec drain last =
        match Machine.Event_heap.pop h with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain min_int)

(* ------------------------------------------------------------------ *)

let test_stats_ratios () =
  let s = Machine.Stats.create () in
  s.Machine.Stats.l1_hits <- 3;
  s.Machine.Stats.l1_misses <- 1;
  s.Machine.Stats.llc_hits <- 1;
  s.Machine.Stats.llc_misses <- 1;
  s.Machine.Stats.accesses <- 4;
  Alcotest.(check (float 1e-9)) "l1 rate" 0.75 (Machine.Stats.l1_hit_rate s);
  Alcotest.(check (float 1e-9)) "llc rate" 0.5 (Machine.Stats.llc_hit_rate s);
  Alcotest.(check (float 1e-9)) "miss ratio" 0.25 (Machine.Stats.llc_miss_ratio s);
  Alcotest.(check (float 1e-9)) "zero-safe" 0. (Machine.Stats.avg_net_latency s)

let () =
  Alcotest.run "machine"
    [
      ( "config",
        [
          Alcotest.test_case "defaults (Table 4)" `Quick test_config_default;
          Alcotest.test_case "validation" `Quick test_config_validate_errors;
        ] );
      ( "addr_map",
        [
          Alcotest.test_case "default interleaving" `Quick test_addr_map_default;
          Alcotest.test_case "quadrants" `Quick test_addr_map_quadrants;
          Alcotest.test_case "KNL modes" `Quick test_addr_map_knl_modes;
          Alcotest.test_case "translate remap" `Quick test_addr_map_translate_remap;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "round robin" `Quick test_schedule_round_robin;
          Alcotest.test_case "core subset" `Quick test_schedule_restricted_cores;
          Alcotest.test_case "per-nest ordering" `Quick test_schedule_sets_of_core_nest;
          Alcotest.test_case "moved fraction" `Quick test_schedule_moved_fraction;
          Alcotest.test_case "validation" `Quick test_schedule_validate_errors;
        ] );
      ( "event_heap",
        [
          Alcotest.test_case "ordering" `Quick test_event_heap_ordering;
          QCheck_alcotest.to_alcotest qcheck_heap_sorted;
        ] );
      ("stats", [ Alcotest.test_case "ratios" `Quick test_stats_ratios ]);
    ]
