(* Tests for the 21-benchmark suite: construction, registry consistency
   and bounded trace expansion for every kernel. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cfg = Machine.Config.default

let test_registry_shape () =
  check_int "21 benchmarks" 21 (List.length Workloads.Registry.all);
  check_int "names match" 21 (List.length Workloads.Registry.names);
  check_bool "10 regular / 11 irregular" true
    (List.length Workloads.Registry.regular = 10
    && List.length Workloads.Registry.irregular = 11);
  check_bool "find works" true
    ((Workloads.Registry.find "moldyn").Workloads.Registry.kind
    = Ir.Program.Irregular);
  check_bool "find_opt none" true (Workloads.Registry.find_opt "nope" = None);
  check_bool "find raises" true
    (try
       ignore (Workloads.Registry.find "nope");
       false
     with Not_found -> true)

let test_paper_order () =
  (* Figure 7's x-axis order starts with the Splash-2 applications. *)
  Alcotest.(check (list string))
    "first six are Splash-2"
    [ "barnes"; "fmm"; "radiosity"; "raytrace"; "volrend"; "water" ]
    (List.filteri (fun k _ -> k < 6) Workloads.Registry.names)

(* Every benchmark builds, compiles to a trace, and expands a sample of
   iterations at the first and last timing step without violating any
   bounds check. *)
let test_one_benchmark (e : Workloads.Registry.entry) () =
  let prog = e.program ~scale:0.25 () in
  check_bool "kind matches registry" true (prog.Ir.Program.kind = e.kind);
  check_bool "has nests" true (Ir.Program.num_nests prog > 0);
  check_bool "positive iterations" true (Ir.Program.total_par_iterations prog > 0);
  let layout = Ir.Layout.allocate ~page_size:cfg.page_size prog in
  let trace = Ir.Trace.create prog layout in
  let steps = prog.Ir.Program.time_steps in
  let count = ref 0 in
  for nest = 0 to Ir.Trace.num_nests trace - 1 do
    let iters = Ir.Trace.iterations trace ~nest in
    List.iter
      (fun step ->
        Ir.Trace.iter_range ~step trace ~nest ~lo:0 ~hi:(min 8 iters)
          (fun ~addr ~write:_ ->
            incr count;
            check_bool "address in footprint" true
              (addr >= 0 && addr < Ir.Layout.footprint layout)))
      [ 0; steps - 1 ]
  done;
  check_bool "emitted accesses" true (!count > 0)

let test_sets_give_enough_parallelism () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let prog = e.program ~scale:1.0 () in
      let sets = Ir.Iter_set.partition prog ~fraction:cfg.iter_set_fraction in
      check_bool
        (Printf.sprintf "%s has >= 4 sets per core" e.name)
        true
        (Array.length sets >= 4 * Machine.Config.num_cores cfg))
    Workloads.Registry.all

let test_scale_shrinks () =
  (* barnes uses misaligned sizing, which scales below 1.0; the pitch-
     aligned kernels only grow (pitch is their minimum). *)
  let small = (Workloads.Registry.find "barnes").program ~scale:0.25 () in
  let big = (Workloads.Registry.find "barnes").program ~scale:1.0 () in
  check_bool "barnes shrinks" true
    (Ir.Program.footprint_bytes small < Ir.Program.footprint_bytes big);
  let j1 = (Workloads.Registry.find "jacobi-3d").program ~scale:1.0 () in
  let j2 = (Workloads.Registry.find "jacobi-3d").program ~scale:2.0 () in
  check_bool "jacobi grows" true
    (Ir.Program.footprint_bytes j1 < Ir.Program.footprint_bytes j2)

let test_common_helpers () =
  check_int "aligned multiple of pitch" (2 * Workloads.Wl_common.pitch)
    (Workloads.Wl_common.aligned (Workloads.Wl_common.pitch + 1));
  check_bool "misaligned is odd pages" true
    (Workloads.Wl_common.misaligned 6144 / 256 mod 2 = 1);
  let r = Workloads.Wl_common.rng ~seed:1 in
  let t =
    Workloads.Wl_common.clustered_table ~rng:r ~n:100 ~degree:4 ~spread:10
      ~long_range:0.1 ~target:100
  in
  check_int "table length" 400 (Array.length t);
  check_bool "entries in range" true (Array.for_all (fun x -> x >= 0 && x < 100) t);
  let b = Workloads.Wl_common.blocked_table ~rng:r ~n:50 ~degree:2 ~block:16 ~target:64 in
  check_bool "blocked in range" true (Array.for_all (fun x -> x >= 0 && x < 64) b);
  let u = Workloads.Wl_common.uniform_table ~rng:r ~len:32 ~target:8 in
  check_bool "uniform in range" true (Array.for_all (fun x -> x >= 0 && x < 8) u)

let test_all_scales_compile () =
  (* Every benchmark must produce a bounds-clean trace at every scale
     the harness uses (including Figure 17's 2x and 4x). *)
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      List.iter
        (fun scale ->
          let prog = e.program ~scale () in
          let layout = Ir.Layout.allocate ~page_size:cfg.page_size prog in
          ignore (Ir.Trace.create prog layout))
        [ 0.25; 0.5; 1.0; 2.0; 4.0 ])
    Workloads.Registry.all

let test_determinism () =
  let a = (Workloads.Registry.find "barnes").program () in
  let b = (Workloads.Registry.find "barnes").program () in
  check_bool "index tables reproducible" true
    (Ir.Program.find_table a "nbr" = Ir.Program.find_table b "nbr")

let () =
  Alcotest.run "workloads"
    ([
       ( "registry",
         [
           Alcotest.test_case "shape" `Quick test_registry_shape;
           Alcotest.test_case "paper order" `Quick test_paper_order;
           Alcotest.test_case "parallelism" `Quick test_sets_give_enough_parallelism;
           Alcotest.test_case "scaling" `Quick test_scale_shrinks;
           Alcotest.test_case "all scales compile" `Quick test_all_scales_compile;
           Alcotest.test_case "determinism" `Quick test_determinism;
         ] );
       ("helpers", [ Alcotest.test_case "wl_common" `Quick test_common_helpers ]);
     ]
    @ [
        ( "benchmarks",
          List.map
            (fun (e : Workloads.Registry.entry) ->
              Alcotest.test_case e.name `Quick (test_one_benchmark e))
            Workloads.Registry.all );
      ])
