(* Tests for the paper's contribution: regions, affinity vectors (with
   the paper's Figure 6 and Table 2 values as golden references),
   Algorithms 1/2, the load balancer and the top-level mapper. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cfg = Machine.Config.default
let shared_cfg = { cfg with Machine.Config.llc_org = Cache.Llc.Shared }
let regions = Locmap.Region.create cfg

let vec = Alcotest.testable (fun ppf v -> Locmap.Affinity.pp ppf v)
    (fun a b ->
      Array.length a = Array.length b
      && Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) a b)

(* ------------------------------------------------------------------ *)

let test_region_structure () =
  check_int "count" 9 (Locmap.Region.count regions);
  check_int "grid rows" 3 (Locmap.Region.grid_rows regions);
  (* Node (0,0) in R1 (id 0); node (2,3) in R5 (id 4); node (5,5) in R9. *)
  check_int "corner node" 0 (Locmap.Region.of_node regions 0);
  check_int "centre node" 4 (Locmap.Region.of_node regions 15);
  check_int "far corner" 8 (Locmap.Region.of_node regions 35)

let test_region_nodes_roundtrip () =
  for r = 0 to 8 do
    let nodes = Locmap.Region.nodes_of regions r in
    check_int (Printf.sprintf "region %d has 4 nodes" r) 4 (Array.length nodes);
    Array.iter
      (fun n ->
        check_int (Printf.sprintf "node %d back to region %d" n r) r
          (Locmap.Region.of_node regions n))
      nodes
  done

let test_region_neighbors () =
  (* Figure 6c's neighbourhoods: R1 (id 0) touches R2 and R4; R5 (id 4)
     touches R2, R4, R6, R8. *)
  Alcotest.(check (list int)) "corner" [ 1; 3 ] (Locmap.Region.neighbors regions 0);
  Alcotest.(check (list int)) "centre" [ 1; 3; 5; 7 ] (Locmap.Region.neighbors regions 4);
  Alcotest.(check (list int)) "edge" [ 0; 2; 4 ] (Locmap.Region.neighbors regions 1)

let test_region_distance () =
  check_int "self" 0 (Locmap.Region.grid_distance regions 4 4);
  check_int "corner to corner" 4 (Locmap.Region.grid_distance regions 0 8);
  check_int "symmetric" (Locmap.Region.grid_distance regions 2 6)
    (Locmap.Region.grid_distance regions 6 2)

(* ------------------------------------------------------------------ *)

let test_eta_paper_examples () =
  (* Table 2, first column: MAI = (0.5, 0.25, 0.25, 0) against MAC(R5) =
     (0.25, 0.25, 0.25, 0.25) gives 0.125. *)
  let mai = [| 0.5; 0.25; 0.25; 0.0 |] in
  Alcotest.(check (float 1e-9)) "eta vs R5" 0.125
    (Locmap.Affinity.eta mai [| 0.25; 0.25; 0.25; 0.25 |]);
  (* Against MAC(R1) = (1,0,0,0): (0.5+0.25+0.25+0)/4 = 0.25. *)
  Alcotest.(check (float 1e-9)) "eta vs R1" 0.25
    (Locmap.Affinity.eta mai [| 1.; 0.; 0.; 0. |])

let test_eta_properties () =
  let a = [| 0.5; 0.5; 0.; 0. |] and b = [| 0.; 0.; 0.5; 0.5 |] in
  Alcotest.(check (float 1e-9)) "identical vectors" 0. (Locmap.Affinity.eta a a);
  Alcotest.(check (float 1e-9)) "symmetric" (Locmap.Affinity.eta a b)
    (Locmap.Affinity.eta b a);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Affinity.eta: length mismatch") (fun () ->
      ignore (Locmap.Affinity.eta a [| 1. |]))

let qcheck_eta_bounds =
  let gen = QCheck.(list_of_size (QCheck.Gen.return 4) (float_bound_exclusive 1.)) in
  QCheck.Test.make ~name:"eta of distributions lies in [0, 1/2]" ~count:200
    (QCheck.pair gen gen) (fun (a, b) ->
      QCheck.assume (List.exists (fun x -> x > 0.) a);
      QCheck.assume (List.exists (fun x -> x > 0.) b);
      let na = Locmap.Affinity.normalize (Array.of_list a) in
      let nb = Locmap.Affinity.normalize (Array.of_list b) in
      let e = Locmap.Affinity.eta na nb in
      e >= 0. && e <= 0.5 +. 1e-9)

let test_normalize () =
  Alcotest.check vec "sums to one" [| 0.5; 0.25; 0.25; 0. |]
    (Locmap.Affinity.of_counts [| 2; 1; 1; 0 |]);
  Alcotest.check vec "all-zero becomes uniform" [| 0.25; 0.25; 0.25; 0.25 |]
    (Locmap.Affinity.of_counts [| 0; 0; 0; 0 |]);
  check_bool "is_distribution" true
    (Locmap.Affinity.is_distribution (Locmap.Affinity.of_counts [| 3; 1 |]))

(* Golden test: MAC vectors of Figure 6a on the default machine. *)
let test_mac_figure_6a () =
  let expect =
    [|
      [| 1.; 0.; 0.; 0. |];
      [| 0.5; 0.5; 0.; 0. |];
      [| 0.; 1.; 0.; 0. |];
      [| 0.5; 0.; 0.5; 0. |];
      [| 0.25; 0.25; 0.25; 0.25 |];
      [| 0.; 0.5; 0.; 0.5 |];
      [| 0.; 0.; 1.; 0. |];
      [| 0.; 0.; 0.5; 0.5 |];
      [| 0.; 0.; 0.; 1. |];
    |]
  in
  (* MC order on the default topology: MC0=(0,0) MC1=(0,5) MC2=(5,0)
     MC3=(5,5); the paper's Figure 6a numbers are the same up to MC
     numbering. *)
  Array.iteri
    (fun r e ->
      Alcotest.check vec (Printf.sprintf "MAC(R%d)" (r + 1)) e
        (Locmap.Affinity.mac cfg regions r))
    expect

(* Golden test: CAC vectors of Figure 6c. *)
let test_cac_figure_6c () =
  let third = 0.5 /. 3. in
  Alcotest.check vec "CAC(R1)"
    [| 0.5; 0.25; 0.; 0.25; 0.; 0.; 0.; 0.; 0. |]
    (Locmap.Affinity.cac regions 0);
  Alcotest.check vec "CAC(R2)"
    [| third; 0.5; third; 0.; third; 0.; 0.; 0.; 0. |]
    (Locmap.Affinity.cac regions 1);
  Alcotest.check vec "CAC(R5)"
    [| 0.; 0.125; 0.; 0.125; 0.5; 0.125; 0.; 0.125; 0. |]
    (Locmap.Affinity.cac regions 4)

(* ------------------------------------------------------------------ *)

let summary_with ~mc_counts =
  let s = Locmap.Summary.create ~num_mcs:4 ~num_regions:9 in
  Array.iteri
    (fun mc n ->
      for _ = 1 to n do
        Locmap.Summary.add_llc_miss s ~mc ~bank_region:(-1)
      done)
    mc_counts;
  s

(* Golden test: Table 2's preferred regions. Note: under Figure 6a's
   own MAC vectors, MAI (0.5, 0.25, 0.25, 0) in fact *ties* at error
   0.125 between the two regions adjacent to the dominant MC and the
   centre region (the paper's Table 2 entry for R2 appears to be
   miscomputed); the argmin therefore only needs to land in that set. *)
let test_assign_table2 () =
  let tables = Locmap.Assign.create cfg regions in
  let s1 = summary_with ~mc_counts:[| 2; 1; 1; 0 |] in
  let r1, e1 = Locmap.Assign.best_region tables s1 in
  check_bool "Table 2 col 1 in the argmin tie {R2, R4, R5}" true
    (List.mem r1 [ 1; 3; 4 ]);
  Alcotest.(check (float 1e-9)) "error 0.125" 0.125 e1;
  Alcotest.(check (float 1e-9)) "R5 also achieves 0.125" 0.125
    (Locmap.Assign.error tables s1 ~region:4);
  (* MAI (0, 0, 0.5, 0.5) -> R8 (error 0): MC2=(5,0), MC3=(5,5) split
     the bottom-middle region's affinity. *)
  let s2 = summary_with ~mc_counts:[| 0; 0; 1; 1 |] in
  let r2, e2 = Locmap.Assign.best_region tables s2 in
  check_int "Table 2 col 2 prefers R8" 7 r2;
  Alcotest.(check (float 1e-9)) "error 0" 0. e2

let test_summary_alpha () =
  let s = Locmap.Summary.create ~num_mcs:4 ~num_regions:9 in
  Locmap.Summary.add_llc_hit s ~region:0;
  Locmap.Summary.add_llc_hit s ~region:1;
  Locmap.Summary.add_llc_miss s ~mc:0 ~bank_region:2;
  Locmap.Summary.add_llc_miss s ~mc:1 ~bank_region:3;
  Locmap.Summary.add_l1_hit s;
  Alcotest.(check (float 1e-9)) "alpha = hits / llc accesses" 0.5
    (Locmap.Summary.alpha s);
  check_int "accesses" 5 (Locmap.Summary.accesses s);
  Alcotest.check vec "mai" [| 0.5; 0.5; 0.; 0. |] (Locmap.Summary.mai s);
  Alcotest.check vec "mai_regions"
    [| 0.; 0.; 0.5; 0.5; 0.; 0.; 0.; 0.; 0. |]
    (Locmap.Summary.mai_regions s);
  let m = Locmap.Summary.merge s s in
  check_int "merge doubles" 10 (Locmap.Summary.accesses m)

(* ------------------------------------------------------------------ *)

let test_balance_basic () =
  (* 90 sets all assigned to region 0; balancing must spread them to 10
     per region. *)
  let region_of_set = Array.make 90 0 in
  let balanced =
    Locmap.Balance.balance ~regions ~cost:(fun _ _ -> 0.) ~region_of_set
  in
  check_bool "balanced" true (Locmap.Balance.is_balanced ~num_regions:9 balanced);
  let counts = Locmap.Balance.counts ~num_regions:9 balanced in
  check_bool "ten each" true (Array.for_all (( = ) 10) counts);
  (* Input untouched. *)
  check_bool "input preserved" true (Array.for_all (( = ) 0) region_of_set)

let test_balance_keeps_balanced_input () =
  let region_of_set = Array.init 90 (fun k -> k mod 9) in
  let balanced =
    Locmap.Balance.balance ~regions ~cost:(fun _ _ -> 0.) ~region_of_set
  in
  Alcotest.(check (array int)) "unchanged" region_of_set balanced

let test_balance_moves_cheapest () =
  (* Regions 0 and 2 hold 9 sets each; all other regions are empty. Set
     7 is far cheaper to relocate than its region-mates, so it must be
     among the moved ones. *)
  let region_of_set = Array.make 18 0 in
  for k = 9 to 17 do
    region_of_set.(k) <- 2
  done;
  let cost set r =
    if r = 0 || r = 2 then 0. else if set = 7 then 0.01 else 1.0
  in
  let balanced = Locmap.Balance.balance ~regions ~cost ~region_of_set in
  check_bool "balanced" true (Locmap.Balance.is_balanced ~num_regions:9 balanced);
  check_bool "set 7 moved" true (balanced.(7) <> 0)

let qcheck_balance_invariants =
  QCheck.Test.make ~name:"balance yields a balanced assignment" ~count:100
    QCheck.(list_of_size Gen.(int_range 9 200) (int_bound 8))
    (fun assignment ->
      let region_of_set = Array.of_list assignment in
      let balanced =
        Locmap.Balance.balance ~regions ~cost:(fun _ _ -> 0.) ~region_of_set
      in
      Array.length balanced = Array.length region_of_set
      && Array.for_all (fun r -> r >= 0 && r < 9) balanced
      && Locmap.Balance.is_balanced ~num_regions:9 balanced)

(* ------------------------------------------------------------------ *)

let prepared = lazy (Harness.Experiment.prepare_name ~scale:0.25 "moldyn")

let test_mapper_schedule_valid () =
  let p = Lazy.force prepared in
  let info = Locmap.Mapper.map cfg p.Harness.Experiment.trace in
  check_bool "valid schedule" true
    (Machine.Schedule.validate info.schedule ~num_cores:36 = Ok ());
  check_int "covers all sets"
    (Array.length info.sets)
    (Array.length info.schedule.core_of);
  check_bool "moved fraction sane" true
    (info.moved_fraction >= 0. && info.moved_fraction <= 1.);
  check_bool "irregular pays overhead" true (info.overhead_cycles > 0);
  check_bool "estimation is inspector" true
    (info.estimation = Locmap.Mapper.Inspector)

let test_mapper_deterministic () =
  let p = Lazy.force prepared in
  let a = Locmap.Mapper.map cfg p.Harness.Experiment.trace in
  let b = Locmap.Mapper.map cfg p.Harness.Experiment.trace in
  Alcotest.(check (array int)) "same cores" a.schedule.core_of b.schedule.core_of

let test_mapper_core_subset () =
  let p = Lazy.force prepared in
  let cores = [| 0; 1; 6; 7 |] in
  let info = Locmap.Mapper.map ~cores cfg p.Harness.Experiment.trace in
  check_bool "placement restricted" true
    (Array.for_all (fun c -> Array.mem c cores) info.schedule.core_of)

let test_mapper_per_nest_balance () =
  let p = Lazy.force prepared in
  let info = Locmap.Mapper.map cfg p.Harness.Experiment.trace in
  (* Each nest's iterations must be spread across cores: no core may
     hold much more than the fair share of any nest (Algorithm 1 runs
     once per nest). *)
  List.iteri
    (fun nest _ ->
      let loads = Array.make 36 0 in
      Array.iteri
        (fun k core ->
          let s = info.Locmap.Mapper.sets.(k) in
          if s.Ir.Iter_set.nest = nest then
            loads.(core) <- loads.(core) + Ir.Iter_set.size s)
        info.schedule.core_of;
      let total = Array.fold_left ( + ) 0 loads in
      let fair = total / 36 in
      check_bool
        (Printf.sprintf "nest %d balanced" nest)
        true
        (Array.for_all (fun l -> l <= (3 * fair) + 8) loads))
    p.Harness.Experiment.prog.Ir.Program.nests

let test_mapper_oracle_mode () =
  let p = Lazy.force prepared in
  let info =
    Locmap.Mapper.map ~estimation:Locmap.Mapper.Oracle cfg
      p.Harness.Experiment.trace
  in
  Alcotest.(check (float 1e-9)) "oracle has zero error" 0. info.mai_error

let test_mapper_ablation_knobs () =
  let p = Lazy.force prepared in
  let no_balance =
    Locmap.Mapper.map ~measure_error:false ~balance:false cfg
      p.Harness.Experiment.trace
  in
  Alcotest.(check (float 1e-9)) "no balancing moves nothing" 0.
    no_balance.moved_fraction;
  Alcotest.(check (array int)) "pre = post without balancing"
    no_balance.pre_balance_region no_balance.region_of_set;
  let a0 =
    Locmap.Mapper.map ~measure_error:false ~alpha_override:0.0 shared_cfg
      p.Harness.Experiment.trace
  in
  let a1 =
    Locmap.Mapper.map ~measure_error:false ~alpha_override:1.0 shared_cfg
      p.Harness.Experiment.trace
  in
  check_bool "alpha extremes give different assignments" true
    (a0.pre_balance_region <> a1.pre_balance_region);
  check_bool "invalid alpha rejected" true
    (try
       ignore
         (Locmap.Mapper.map ~alpha_override:1.5 shared_cfg
            p.Harness.Experiment.trace);
       false
     with Invalid_argument _ -> true)

let test_mac_modes () =
  let inv = { cfg with Machine.Config.mac_mode = Machine.Config.Inverse_distance } in
  for r = 0 to 8 do
    let v = Locmap.Affinity.mac inv regions r in
    check_bool
      (Printf.sprintf "inverse-distance MAC(R%d) is a distribution" (r + 1))
      true
      (Locmap.Affinity.is_distribution ~eps:1e-9 v);
    check_bool "all MCs get some weight" true (Array.for_all (fun x -> x > 0.) v)
  done;
  (* The corner region still prefers its own MC most strongly. *)
  let v = Locmap.Affinity.mac inv regions 0 in
  check_bool "nearest MC dominates" true
    (v.(0) > v.(1) && v.(0) > v.(2) && v.(0) > v.(3))

let test_placement_policies () =
  let p = Lazy.force prepared in
  let ll =
    Locmap.Mapper.map ~measure_error:false
      { cfg with Machine.Config.placement = Machine.Config.Least_loaded }
      p.Harness.Experiment.trace
  in
  check_bool "least-loaded placement is valid" true
    (Machine.Schedule.validate ll.schedule ~num_cores:36 = Ok ());
  let ll2 =
    Locmap.Mapper.map ~measure_error:false
      { cfg with Machine.Config.placement = Machine.Config.Least_loaded }
      p.Harness.Experiment.trace
  in
  Alcotest.(check (array int)) "least-loaded is deterministic"
    ll.schedule.core_of ll2.schedule.core_of

let test_cooptimize () =
  let p = Lazy.force prepared in
  let pt = Mem.Page_table.create ~page_size:cfg.Machine.Config.page_size () in
  let info = Extensions.Cooptimize.run ~rounds:2 cfg p.Harness.Experiment.trace pt in
  check_bool "valid schedule" true
    (Machine.Schedule.validate info.schedule ~num_cores:36 = Ok ());
  check_bool "rounds must be positive" true
    (try
       ignore (Extensions.Cooptimize.run ~rounds:0 cfg p.Harness.Experiment.trace pt);
       false
     with Invalid_argument _ -> true)

let test_mapper_shared_mode () =
  let p = Lazy.force prepared in
  let info = Locmap.Mapper.map shared_cfg p.Harness.Experiment.trace in
  check_bool "alpha in range" true
    (info.alpha_mean >= 0. && info.alpha_mean <= 1.);
  check_bool "cai error measured" true (info.cai_error >= 0.)

let () =
  Alcotest.run "mapping"
    [
      ( "region",
        [
          Alcotest.test_case "structure" `Quick test_region_structure;
          Alcotest.test_case "nodes roundtrip" `Quick test_region_nodes_roundtrip;
          Alcotest.test_case "neighbors" `Quick test_region_neighbors;
          Alcotest.test_case "grid distance" `Quick test_region_distance;
        ] );
      ( "affinity",
        [
          Alcotest.test_case "eta paper values" `Quick test_eta_paper_examples;
          Alcotest.test_case "eta properties" `Quick test_eta_properties;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "MAC = Figure 6a" `Quick test_mac_figure_6a;
          Alcotest.test_case "CAC = Figure 6c" `Quick test_cac_figure_6c;
          QCheck_alcotest.to_alcotest qcheck_eta_bounds;
        ] );
      ( "assign",
        [
          Alcotest.test_case "Table 2 preferences" `Quick test_assign_table2;
          Alcotest.test_case "summary and alpha" `Quick test_summary_alpha;
        ] );
      ( "balance",
        [
          Alcotest.test_case "spreads overload" `Quick test_balance_basic;
          Alcotest.test_case "balanced input unchanged" `Quick
            test_balance_keeps_balanced_input;
          Alcotest.test_case "moves cheapest sets" `Quick test_balance_moves_cheapest;
          QCheck_alcotest.to_alcotest qcheck_balance_invariants;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "schedule valid" `Quick test_mapper_schedule_valid;
          Alcotest.test_case "deterministic" `Quick test_mapper_deterministic;
          Alcotest.test_case "core subset" `Quick test_mapper_core_subset;
          Alcotest.test_case "per-nest balance" `Quick test_mapper_per_nest_balance;
          Alcotest.test_case "oracle mode" `Quick test_mapper_oracle_mode;
          Alcotest.test_case "ablation knobs" `Quick test_mapper_ablation_knobs;
          Alcotest.test_case "MAC modes" `Quick test_mac_modes;
          Alcotest.test_case "placement policies" `Quick test_placement_policies;
          Alcotest.test_case "co-optimisation" `Quick test_cooptimize;
          Alcotest.test_case "shared mode" `Quick test_mapper_shared_mode;
        ] );
    ]
