(* Tests for the comparison baselines: hardware-based placement [16]
   and data-layout optimisation [22]. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cfg = Machine.Config.default

let prepared = lazy (Harness.Experiment.prepare_name ~scale:0.25 "moldyn")

let test_core_ranking () =
  let ranking = Baselines.Hw_mapping.core_ranking cfg in
  check_int "all cores ranked" 36 (Array.length ranking);
  (* First ranked core touches an MC (distance 0); ranking is by
     non-decreasing distance to the nearest MC. *)
  let topo = Machine.Config.topology cfg in
  let dist node =
    let c = Noc.Topology.coord_of_node topo node in
    List.fold_left min max_int
      (List.init 4 (Noc.Topology.distance_to_mc topo c))
  in
  check_int "closest first" 0 (dist ranking.(0));
  let sorted = ref true in
  for k = 0 to 34 do
    if dist ranking.(k) > dist ranking.(k + 1) then sorted := false
  done;
  check_bool "non-decreasing" true !sorted;
  (* No duplicates. *)
  let seen = Array.make 36 false in
  Array.iter (fun c -> seen.(c) <- true) ranking;
  check_bool "a permutation" true (Array.for_all Fun.id seen)

let test_hw_schedule_valid () =
  let p = Lazy.force prepared in
  let s = Baselines.Hw_mapping.schedule cfg p.Harness.Experiment.trace in
  check_bool "valid" true (Machine.Schedule.validate s ~num_cores:36 = Ok ());
  (* Thread grouping is preserved: sets k and k+36 stay on one core. *)
  let n = Array.length s.core_of in
  let ok = ref true in
  for k = 0 to n - 37 do
    if
      s.sets.(k).Ir.Iter_set.nest = s.sets.(k + 36).Ir.Iter_set.nest
      && s.core_of.(k) <> s.core_of.(k + 36)
    then ok := false
  done;
  check_bool "threads keep their sets" true !ok

let test_layout_rotation_range () =
  let p = Lazy.force prepared in
  let s = Locmap.Mapper.default_schedule cfg p.Harness.Experiment.trace in
  let rot =
    Baselines.Layout_opt.best_rotation cfg p.Harness.Experiment.trace
      ~schedule:s ~array_name:"x"
  in
  check_bool "rotation in range" true (rot >= 0 && rot < 4)

let test_layout_optimize_is_permutation () =
  let p = Lazy.force prepared in
  let s = Locmap.Mapper.default_schedule cfg p.Harness.Experiment.trace in
  let pt = Mem.Page_table.create ~page_size:cfg.page_size () in
  Baselines.Layout_opt.optimize cfg p.Harness.Experiment.trace ~schedule:s pt;
  (* Translation must remain injective over the whole footprint. *)
  let layout = Ir.Trace.layout p.Harness.Experiment.trace in
  let pages = Ir.Layout.footprint layout / cfg.page_size in
  let seen = Hashtbl.create pages in
  let ok = ref true in
  for vp = 0 to pages - 1 do
    let pp = Mem.Page_table.translate pt (vp * cfg.page_size) / cfg.page_size in
    if Hashtbl.mem seen pp then ok := false;
    Hashtbl.replace seen pp ()
  done;
  check_bool "page mapping stays injective" true !ok

let test_layout_objective_not_worse () =
  (* The chosen rotation must not increase the distance objective
     relative to rotation 0 (identity). *)
  let p = Lazy.force prepared in
  let trace = p.Harness.Experiment.trace in
  let s = Locmap.Mapper.default_schedule cfg trace in
  let pt = Mem.Page_table.create ~page_size:cfg.page_size () in
  Baselines.Layout_opt.optimize cfg trace ~schedule:s pt;
  (* Weak check exposed by the API: rotations picked per array are the
     argmin, hence their cost is <= the identity's. Here we just assert
     the call completes and produces at most a full-footprint remap. *)
  let layout = Ir.Trace.layout trace in
  check_bool "bounded remapping" true
    (Mem.Page_table.remapped_count pt
    <= Ir.Layout.footprint layout / cfg.page_size)

let () =
  Alcotest.run "baselines"
    [
      ( "hw_mapping",
        [
          Alcotest.test_case "core ranking" `Quick test_core_ranking;
          Alcotest.test_case "schedule valid" `Quick test_hw_schedule_valid;
        ] );
      ( "layout_opt",
        [
          Alcotest.test_case "rotation range" `Quick test_layout_rotation_range;
          Alcotest.test_case "permutation" `Quick test_layout_optimize_is_permutation;
          Alcotest.test_case "objective" `Quick test_layout_objective_not_worse;
        ] );
    ]
