(* Tests for the memory substrate: address helpers, the page table,
   distribution policies and the DRAM timing model. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)

let test_address_helpers () =
  check_int "page_of" 3 (Mem.Address.page_of ~page_size:2048 (3 * 2048));
  check_int "page_of interior" 3 (Mem.Address.page_of ~page_size:2048 ((3 * 2048) + 2047));
  check_int "line_of" 10 (Mem.Address.line_of ~line_size:64 645);
  check_int "line_addr" 640 (Mem.Address.line_addr ~line_size:64 645);
  check_int "align_up exact" 4096 (Mem.Address.align_up 4096 ~to_:2048);
  check_int "align_up round" 6144 (Mem.Address.align_up 4097 ~to_:2048);
  check_bool "pow2 yes" true (Mem.Address.is_pow2 4096);
  check_bool "pow2 no" false (Mem.Address.is_pow2 48);
  check_bool "pow2 zero" false (Mem.Address.is_pow2 0)

let test_address_mix () =
  check_int "mix deterministic" (Mem.Address.mix 42) (Mem.Address.mix 42);
  check_bool "mix scatters" true (Mem.Address.mix 1 <> Mem.Address.mix 2);
  check_bool "mix non-negative" true (Mem.Address.mix (-5) >= 0)

(* ------------------------------------------------------------------ *)

let test_page_table_identity () =
  let pt = Mem.Page_table.create ~page_size:2048 () in
  check_int "identity" 12345 (Mem.Page_table.translate pt 12345);
  check_int "no remaps" 0 (Mem.Page_table.remapped_count pt)

let test_page_table_remap () =
  let pt = Mem.Page_table.create ~page_size:2048 () in
  Mem.Page_table.remap_page pt ~vpage:3 ~ppage:7;
  check_int "offset preserved" ((7 * 2048) + 100)
    (Mem.Page_table.translate pt ((3 * 2048) + 100));
  check_int "other pages identity" 100 (Mem.Page_table.translate pt 100);
  check_int "remap count" 1 (Mem.Page_table.remapped_count pt);
  (* Remapping a page to itself removes the entry. *)
  Mem.Page_table.remap_page pt ~vpage:3 ~ppage:3;
  check_int "identity remap removed" 0 (Mem.Page_table.remapped_count pt)

let test_page_table_domain () =
  let pt = Mem.Page_table.create ~page_size:2048 () in
  check_int "default domain" 9 (Mem.Page_table.domain pt ~addr:4096 ~default:9);
  Mem.Page_table.set_domain pt ~vpage:2 3;
  check_int "set domain" 3 (Mem.Page_table.domain pt ~addr:4096 ~default:9);
  check_int "same page any offset" 3
    (Mem.Page_table.domain pt ~addr:(4096 + 2047) ~default:9)

(* ------------------------------------------------------------------ *)

let test_distribution_interleave () =
  let page k = (k * 2048) + 5 in
  check_int "page rr 0" 0
    (Mem.Distribution.interleave Mem.Distribution.Page_grain ~page_size:2048
       ~line_size:64 ~count:4 (page 0));
  check_int "page rr wraps" 1
    (Mem.Distribution.interleave Mem.Distribution.Page_grain ~page_size:2048
       ~line_size:64 ~count:4 (page 5));
  check_int "line rr" 2
    (Mem.Distribution.interleave Mem.Distribution.Line_grain ~page_size:2048
       ~line_size:64 ~count:36 ((38 * 64) + 3))

let test_distribution_hashed () =
  let h = Mem.Distribution.hashed ~page_size:2048 ~count:4 in
  check_int "hash stable" (h 8192) (h 8192);
  check_int "same page same target" (h 8192) (h (8192 + 100));
  check_bool "in range" true
    (List.for_all (fun k -> h (k * 2048) >= 0 && h (k * 2048) < 4)
       (List.init 64 Fun.id))

let qcheck_interleave_range =
  QCheck.Test.make ~name:"interleave lands in range" ~count:300
    QCheck.(pair (int_bound 10_000_000) (int_range 1 81))
    (fun (addr, count) ->
      let g =
        if addr mod 2 = 0 then Mem.Distribution.Page_grain
        else Mem.Distribution.Line_grain
      in
      let d =
        Mem.Distribution.interleave g ~page_size:2048 ~line_size:64 ~count addr
      in
      d >= 0 && d < count)

(* ------------------------------------------------------------------ *)

let test_dram_cold_then_hit () =
  let d = Mem.Dram.create ~row_buffer:2048 () in
  let t1 = Mem.Dram.service d ~now:0 ~addr:0 in
  (* Cold access: activate (14) + CAS (14) + burst (6). *)
  check_int "cold access" 34 t1;
  let t2 = Mem.Dram.service d ~now:100 ~addr:64 in
  (* Same row: CAS + burst only. *)
  check_int "row hit" 120 t2;
  check_int "hits" 1 (Mem.Dram.row_hits d);
  check_int "misses" 1 (Mem.Dram.row_misses d)

let test_dram_channel_serialises () =
  let d = Mem.Dram.create ~row_buffer:2048 () in
  let t1 = Mem.Dram.service d ~now:0 ~addr:0 in
  let t2 = Mem.Dram.service d ~now:0 ~addr:0 in
  check_bool "bank/channel serialise" true (t2 > t1)

let test_dram_frfcfs_window () =
  let d = Mem.Dram.create ~row_buffer:2048 () in
  (* Touch four rows mapping anywhere, then re-touch the first: within
     the FR-FCFS window it still counts as a row hit. *)
  ignore (Mem.Dram.service d ~now:0 ~addr:0);
  let hits_before = Mem.Dram.row_hits d in
  ignore (Mem.Dram.service d ~now:1000 ~addr:64);
  check_int "row stays effectively open" (hits_before + 1) (Mem.Dram.row_hits d)

let test_dram_kinds () =
  check_bool "kinds differ" true (Mem.Dram.Ddr3_1333 <> Mem.Dram.Ddr4_2400);
  let d3 = Mem.Dram.create ~kind:Mem.Dram.Ddr3_1333 ~row_buffer:2048 () in
  let d4 = Mem.Dram.create ~kind:Mem.Dram.Ddr4_2400 ~row_buffer:2048 () in
  (* DDR4's faster channel makes the cold access cheaper. *)
  let t3 = Mem.Dram.service d3 ~now:0 ~addr:0 in
  let t4 = Mem.Dram.service d4 ~now:0 ~addr:0 in
  check_bool "ddr4 faster burst" true (t4 < t3)

let test_dram_reset () =
  let d = Mem.Dram.create ~row_buffer:2048 () in
  ignore (Mem.Dram.service d ~now:0 ~addr:0);
  Mem.Dram.reset d;
  check_int "accesses cleared" 0 (Mem.Dram.accesses d);
  check_int "cold again after reset" 34 (Mem.Dram.service d ~now:0 ~addr:0)

let test_dram_rate () =
  let d = Mem.Dram.create ~row_buffer:2048 () in
  ignore (Mem.Dram.service d ~now:0 ~addr:0);
  ignore (Mem.Dram.service d ~now:500 ~addr:8);
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Mem.Dram.row_hit_rate d)

let () =
  Alcotest.run "mem"
    [
      ( "address",
        [
          Alcotest.test_case "helpers" `Quick test_address_helpers;
          Alcotest.test_case "mix" `Quick test_address_mix;
        ] );
      ( "page_table",
        [
          Alcotest.test_case "identity" `Quick test_page_table_identity;
          Alcotest.test_case "remap" `Quick test_page_table_remap;
          Alcotest.test_case "domain" `Quick test_page_table_domain;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "interleave" `Quick test_distribution_interleave;
          Alcotest.test_case "hashed" `Quick test_distribution_hashed;
          QCheck_alcotest.to_alcotest qcheck_interleave_range;
        ] );
      ( "dram",
        [
          Alcotest.test_case "cold then hit" `Quick test_dram_cold_then_hit;
          Alcotest.test_case "channel serialises" `Quick test_dram_channel_serialises;
          Alcotest.test_case "fr-fcfs window" `Quick test_dram_frfcfs_window;
          Alcotest.test_case "ddr3 vs ddr4" `Quick test_dram_kinds;
          Alcotest.test_case "reset" `Quick test_dram_reset;
          Alcotest.test_case "hit rate" `Quick test_dram_rate;
        ] );
    ]
