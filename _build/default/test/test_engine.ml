(* Tests for the discrete-event simulator. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cfg = Machine.Config.default
let shared_cfg = { cfg with Machine.Config.llc_org = Cache.Llc.Shared }

let arr name length = { Ir.Program.name; elem_size = 8; length }
let i_ = Ir.Affine.var "i"

let vadd ?(n = 4096) ?(time_steps = 1) () =
  Ir.Program.create ~name:"vadd" ~kind:Ir.Program.Regular
    ~arrays:[ arr "a" n; arr "b" n ]
    ~time_steps
    [
      Ir.Loop_nest.make ~name:"v" ~compute_cycles:8
        ~par:(Ir.Loop_nest.loop "i" ~hi:n)
        [
          Ir.Access.read "a" (Ir.Access.direct i_);
          Ir.Access.write "b" (Ir.Access.direct i_);
        ];
    ]

let run ?(cfg = cfg) ?ideal_network prog =
  let layout = Ir.Layout.allocate ~page_size:cfg.Machine.Config.page_size prog in
  let trace = Ir.Trace.create prog layout in
  let sets = Ir.Iter_set.partition prog ~fraction:0.01 in
  let schedule =
    Machine.Schedule.round_robin ~num_cores:(Machine.Config.num_cores cfg) sets
  in
  Machine.Engine.run_single ?ideal_network cfg ~trace ~schedule ()

let test_counts_all_accesses () =
  let prog = vadd ~n:4096 ~time_steps:2 () in
  let r = run prog in
  check_int "every access simulated" (2 * 2 * 4096) r.stats.Machine.Stats.accesses;
  check_bool "took time" true (r.stats.Machine.Stats.cycles > 0);
  check_int "hits + misses = accesses"
    r.stats.Machine.Stats.accesses
    (r.stats.Machine.Stats.l1_hits + r.stats.Machine.Stats.l1_misses)

let test_ideal_network_is_faster () =
  let prog = vadd () in
  let real = run prog in
  let ideal = run ~ideal_network:true prog in
  check_bool "ideal at least as fast" true
    (ideal.stats.Machine.Stats.cycles <= real.stats.Machine.Stats.cycles);
  check_int "ideal has no packets" 0 ideal.stats.Machine.Stats.net_packets;
  check_bool "real sends packets" true (real.stats.Machine.Stats.net_packets > 0)

let test_determinism () =
  let prog = vadd () in
  let a = run prog and b = run prog in
  check_int "identical cycles" a.stats.Machine.Stats.cycles b.stats.Machine.Stats.cycles;
  check_int "identical net latency" a.stats.Machine.Stats.net_latency
    b.stats.Machine.Stats.net_latency

let test_shared_traffic_exceeds_private () =
  let prog = vadd () in
  let p = run prog in
  let s = run ~cfg:shared_cfg prog in
  (* In S-NUCA every L1 miss crosses the network. *)
  check_bool "more packets under shared LLC" true
    (s.stats.Machine.Stats.net_packets > p.stats.Machine.Stats.net_packets)

let test_warm_caches_across_steps () =
  (* A small LLC-resident program re-run by a timing loop misses mostly
     in step 0. *)
  let one = run (vadd ~n:2048 ~time_steps:1 ()) in
  let two = run (vadd ~n:2048 ~time_steps:2 ()) in
  check_bool "second step adds few LLC misses" true
    (two.stats.Machine.Stats.llc_misses
    < (2 * one.stats.Machine.Stats.llc_misses * 3 / 4))

let test_step_overhead_charged () =
  let prog = vadd ~time_steps:2 () in
  let layout = Ir.Layout.allocate ~page_size:cfg.Machine.Config.page_size prog in
  let trace = Ir.Trace.create prog layout in
  let sets = Ir.Iter_set.partition prog ~fraction:0.01 in
  let schedule = Machine.Schedule.round_robin ~num_cores:36 sets in
  let base =
    Machine.Engine.run cfg
      [ Machine.Engine.job ~trace ~schedule_of_step:(fun _ -> schedule) () ]
  in
  let with_overhead =
    Machine.Engine.run cfg
      [
        Machine.Engine.job ~trace
          ~schedule_of_step:(fun _ -> schedule)
          ~step_overhead:(fun step -> if step = 0 then 5000 else 0)
          ();
      ]
  in
  check_int "overhead recorded" 5000
    with_overhead.stats.Machine.Stats.overhead_cycles;
  check_int "overhead delays completion"
    (base.stats.Machine.Stats.cycles + 5000)
    with_overhead.stats.Machine.Stats.cycles

let test_multiprogrammed_jobs () =
  let prog = vadd ~n:2048 () in
  let layout = Ir.Layout.allocate ~page_size:cfg.Machine.Config.page_size prog in
  let trace = Ir.Trace.create prog layout in
  let sets = Ir.Iter_set.partition prog ~fraction:0.01 in
  let half1 = Array.init 18 Fun.id in
  let half2 = Array.init 18 (fun k -> 18 + k) in
  let job cores =
    Machine.Engine.job ~cores ~trace
      ~schedule_of_step:(fun _ ->
        Machine.Schedule.round_robin ~cores ~num_cores:36 sets)
      ()
  in
  let r = Machine.Engine.run cfg [ job half1; job half2 ] in
  check_int "two finish times" 2 (Array.length r.job_finish);
  check_bool "both finish" true (Array.for_all (fun t -> t > 0) r.job_finish)

let test_overlapping_jobs_rejected () =
  let prog = vadd ~n:2048 () in
  let layout = Ir.Layout.allocate ~page_size:cfg.Machine.Config.page_size prog in
  let trace = Ir.Trace.create prog layout in
  let sets = Ir.Iter_set.partition prog ~fraction:0.01 in
  let cores = [| 0; 1 |] in
  let job () =
    Machine.Engine.job ~cores ~trace
      ~schedule_of_step:(fun _ ->
        Machine.Schedule.round_robin ~cores ~num_cores:36 sets)
      ()
  in
  check_bool "overlap rejected" true
    (try
       ignore (Machine.Engine.run cfg [ job (); job () ]);
       false
     with Invalid_argument _ -> true)

let test_schedule_outside_job_cores_rejected () =
  let prog = vadd ~n:2048 () in
  let layout = Ir.Layout.allocate ~page_size:cfg.Machine.Config.page_size prog in
  let trace = Ir.Trace.create prog layout in
  let sets = Ir.Iter_set.partition prog ~fraction:0.01 in
  let job =
    Machine.Engine.job ~cores:[| 0; 1 |] ~trace
      ~schedule_of_step:(fun _ ->
        (* Schedule names all 36 cores but the job only owns two. *)
        Machine.Schedule.round_robin ~num_cores:36 sets)
      ()
  in
  check_bool "rejected" true
    (try
       ignore (Machine.Engine.run cfg [ job ]);
       false
     with Invalid_argument _ -> true)

let test_localised_beats_scattered () =
  (* All accesses land on MC0's pages (every fourth 256-element page):
     running on the core next to MC0 must beat the far corner. *)
  let pages = 32 in
  let prog =
    Ir.Program.create ~name:"mc0" ~kind:Ir.Program.Regular
      ~arrays:[ arr "a" (pages * 1024) ]
      [
        Ir.Loop_nest.make ~name:"v" ~compute_cycles:4
          ~par:(Ir.Loop_nest.loop "i" ~hi:pages)
          ~inner:[ Ir.Loop_nest.loop "j" ~hi:256 ]
          [
            Ir.Access.read "a"
              (Ir.Access.direct
                 Ir.Affine.(add (var ~coeff:1024 "i") (var "j")));
          ];
      ]
  in
  let layout = Ir.Layout.allocate ~page_size:cfg.Machine.Config.page_size prog in
  let trace = Ir.Trace.create prog layout in
  let sets = Ir.Iter_set.partition prog ~fraction:0.25 in
  let at core =
    Machine.Schedule.make ~sets
      ~core_of:(Array.make (Array.length sets) core)
  in
  let near = Machine.Engine.run_single cfg ~trace ~schedule:(at 0) () in
  let far = Machine.Engine.run_single cfg ~trace ~schedule:(at 35) () in
  check_bool "near-MC placement has lower network latency" true
    (near.stats.Machine.Stats.net_latency < far.stats.Machine.Stats.net_latency)

let () =
  Alcotest.run "engine"
    [
      ( "basics",
        [
          Alcotest.test_case "access accounting" `Quick test_counts_all_accesses;
          Alcotest.test_case "ideal network" `Quick test_ideal_network_is_faster;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "shared traffic" `Quick test_shared_traffic_exceeds_private;
          Alcotest.test_case "warm caches" `Quick test_warm_caches_across_steps;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "step overhead" `Quick test_step_overhead_charged;
          Alcotest.test_case "multiprogrammed" `Quick test_multiprogrammed_jobs;
          Alcotest.test_case "overlap rejected" `Quick test_overlapping_jobs_rejected;
          Alcotest.test_case "foreign cores rejected" `Quick
            test_schedule_outside_job_cores_rejected;
        ] );
      ( "physics",
        [
          Alcotest.test_case "distance matters" `Quick test_localised_beats_scattered;
        ] );
    ]
