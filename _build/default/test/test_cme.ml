(* Tests for the cache-miss estimator: reuse analysis, miss periods and
   end-to-end estimation accuracy against a functional cache replay. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cfg = Machine.Config.default

let arr name length = { Ir.Program.name; elem_size = 8; length }

let i_ = Ir.Affine.var "i"
let rd a e = Ir.Access.read a (Ir.Access.direct e)
let wr a e = Ir.Access.write a (Ir.Access.direct e)

(* Streaming kernel: unit-stride reads of a large array. *)
let stream_prog =
  Ir.Program.create ~name:"stream" ~kind:Ir.Program.Regular
    ~arrays:[ arr "a" 65536; arr "b" 65536 ]
    [
      Ir.Loop_nest.make ~name:"s"
        ~par:(Ir.Loop_nest.loop "i" ~hi:65536)
        [ rd "a" i_; wr "b" i_ ];
    ]

(* Blocked kernel: a hot tile reused through an inner loop. *)
let tile_prog =
  let k = Ir.Affine.var "k" in
  Ir.Program.create ~name:"tile" ~kind:Ir.Program.Regular
    ~arrays:[ arr "big" (16 * 8192); arr "tile" 64 ]
    [
      Ir.Loop_nest.make ~name:"t"
        ~par:(Ir.Loop_nest.loop "i" ~hi:8192)
        ~inner:[ Ir.Loop_nest.loop "k" ~hi:16 ]
        [
          rd "big" Ir.Affine.(add (var ~coeff:16 "i") k);
          rd "tile" Ir.Affine.(var ~coeff:4 "k");
        ];
    ]

let layout p = Ir.Layout.allocate ~page_size:cfg.page_size p

let test_reuse_stream () =
  let infos = Cme.Reuse.analyze stream_prog (layout stream_prog) ~nest:0 in
  check_int "two refs" 2 (Array.length infos);
  check_bool "regular" true infos.(0).Cme.Reuse.regular;
  check_int "unit stride in bytes" 8 infos.(0).Cme.Reuse.dominant_stride;
  check_int "no temporal reuse" 1 infos.(0).Cme.Reuse.reuse_factor;
  check_int "fresh bytes per iter" 8 infos.(0).Cme.Reuse.fresh_bytes_per_par_iter;
  check_bool "not step dependent" false infos.(0).Cme.Reuse.step_dependent

let test_reuse_tile () =
  let infos = Cme.Reuse.analyze tile_prog (layout tile_prog) ~nest:0 in
  (* big: depends on i and k, stride 8 bytes along k, 16 fresh elements
     per parallel iteration. *)
  check_int "big stride" 8 infos.(0).Cme.Reuse.dominant_stride;
  check_int "big fresh" 128 infos.(0).Cme.Reuse.fresh_bytes_per_par_iter;
  (* tile: depends only on k and stays within one small array. *)
  check_int "tile stride" 32 infos.(1).Cme.Reuse.dominant_stride;
  check_bool "tile fresh bounded by extent" true
    (infos.(1).Cme.Reuse.fresh_bytes_per_par_iter
    <= Ir.Layout.extent_bytes (layout tile_prog) "tile")

let test_nest_footprint () =
  let fp = Cme.Reuse.nest_footprint stream_prog (layout stream_prog) ~nest:0 in
  check_int "two arrays worth" (2 * 65536 * 8) fp

let test_periods_stream () =
  let c = Cme.create cfg stream_prog (layout stream_prog) ~nest:0 in
  (* 32-byte L1 lines, 8-byte elements: one L1 miss every 4 accesses;
     64-byte LLC lines: every second L1 miss reaches memory. *)
  check_int "L1 period" 4 (Cme.l1_period c 0);
  check_int "LLC period" 2 (Cme.llc_period c 0);
  check_bool "no fits shortcut on single step" false (Cme.fits_llc c)

let test_periods_resident_tile () =
  let c = Cme.create cfg tile_prog (layout tile_prog) ~nest:0 in
  (* The 512-byte tile is L1-resident: cold misses only. *)
  check_bool "tile cold-only at L1" true (Cme.l1_period c 1 > 1_000_000)

let test_classify_stream_stats () =
  let c = Cme.create cfg stream_prog (layout stream_prog) ~nest:0 in
  let l1m = ref 0 and llcm = ref 0 and n = 4096 in
  for _ = 1 to n do
    match Cme.classify c with
    | Cme.L1_hit -> ()
    | Cme.Llc_hit -> incr l1m
    | Cme.Llc_miss ->
        incr l1m;
        incr llcm
  done;
  (* Two streams, both with period 4 at L1 and 2 at LLC. *)
  check_int "quarter L1 misses" (n / 4) !l1m;
  check_int "eighth LLC misses" (n / 8) !llcm

let test_classify_reset () =
  let c = Cme.create cfg stream_prog (layout stream_prog) ~nest:0 in
  let first = Cme.classify c in
  ignore (Cme.classify c);
  Cme.reset c;
  check_bool "deterministic after reset" true (Cme.classify c = first)

(* End-to-end: CME summaries should be close to the observed (functional
   replay) summaries on an analysable program. *)
let test_accuracy_vs_observed () =
  let p = Harness.Experiment.prepare_name ~scale:0.25 "jacobi-3d" in
  let pt = Mem.Page_table.create ~page_size:cfg.page_size () in
  let amap = Machine.Addr_map.create cfg pt in
  let sets =
    Ir.Iter_set.partition p.Harness.Experiment.prog
      ~fraction:cfg.iter_set_fraction
  in
  let est =
    Locmap.Analysis.cme_summaries cfg amap p.Harness.Experiment.trace ~sets
  in
  let _, warm =
    Locmap.Analysis.observed_summaries cfg amap p.Harness.Experiment.trace
      ~sets
  in
  let err = Locmap.Analysis.mean_error Locmap.Summary.mai est warm in
  check_bool
    (Printf.sprintf "MAI error %.3f under 0.25 (paper band)" err)
    true (err < 0.25)

let () =
  Alcotest.run "cme"
    [
      ( "reuse",
        [
          Alcotest.test_case "streaming" `Quick test_reuse_stream;
          Alcotest.test_case "tile" `Quick test_reuse_tile;
          Alcotest.test_case "footprint" `Quick test_nest_footprint;
        ] );
      ( "periods",
        [
          Alcotest.test_case "streaming periods" `Quick test_periods_stream;
          Alcotest.test_case "resident tile" `Quick test_periods_resident_tile;
        ] );
      ( "classify",
        [
          Alcotest.test_case "stream statistics" `Quick test_classify_stream_stats;
          Alcotest.test_case "reset" `Quick test_classify_reset;
        ] );
      ( "accuracy",
        [ Alcotest.test_case "vs observed replay" `Quick test_accuracy_vs_observed ]
      );
    ]
