(* Tests for the NoC substrate: coordinates, topology, X-Y routing,
   packets and the contention-aware network. *)

let coord = Noc.Coord.make

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)

let test_coord_manhattan () =
  check_int "same point" 0
    (Noc.Coord.manhattan (coord ~row:2 ~col:3) (coord ~row:2 ~col:3));
  check_int "corner to corner" 10
    (Noc.Coord.manhattan (coord ~row:0 ~col:0) (coord ~row:5 ~col:5));
  check_int "symmetric" 7
    (Noc.Coord.manhattan (coord ~row:4 ~col:0) (coord ~row:0 ~col:3))

let test_coord_invalid () =
  Alcotest.check_raises "negative row" (Invalid_argument "Coord.make: negative component")
    (fun () -> ignore (coord ~row:(-1) ~col:0))

let test_coord_compare () =
  let a = coord ~row:1 ~col:2 and b = coord ~row:1 ~col:3 in
  check_bool "equal self" true (Noc.Coord.equal a a);
  check_bool "not equal" false (Noc.Coord.equal a b);
  check_bool "ordered" true (Noc.Coord.compare a b < 0);
  check_bool "row dominates" true
    (Noc.Coord.compare (coord ~row:0 ~col:9) (coord ~row:1 ~col:0) < 0)

(* ------------------------------------------------------------------ *)

let topo66 = Noc.Topology.create ~rows:6 ~cols:6 Noc.Topology.Corners

let test_topology_basic () =
  check_int "nodes" 36 (Noc.Topology.num_nodes topo66);
  check_int "mcs" 4 (Noc.Topology.num_mcs topo66);
  check_int "node of (2,3)" 15
    (Noc.Topology.node_of_coord topo66 (coord ~row:2 ~col:3));
  check_bool "coord roundtrip" true
    (Noc.Coord.equal
       (Noc.Topology.coord_of_node topo66 15)
       (coord ~row:2 ~col:3))

let test_topology_corners () =
  let expect = [ (0, 0); (0, 5); (5, 0); (5, 5) ] in
  List.iteri
    (fun k (r, c) ->
      check_bool
        (Printf.sprintf "MC %d position" k)
        true
        (Noc.Coord.equal (Noc.Topology.mc_coord topo66 k) (coord ~row:r ~col:c)))
    expect

let test_topology_midpoints () =
  let t = Noc.Topology.create ~rows:6 ~cols:6 Noc.Topology.Edge_midpoints in
  check_int "mcs" 4 (Noc.Topology.num_mcs t);
  check_bool "first at top middle" true
    (Noc.Coord.equal (Noc.Topology.mc_coord t 0) (coord ~row:0 ~col:3))

let test_topology_custom () =
  let t =
    Noc.Topology.create ~rows:4 ~cols:4
      (Noc.Topology.Custom [ coord ~row:1 ~col:1; coord ~row:2 ~col:2 ])
  in
  check_int "mcs" 2 (Noc.Topology.num_mcs t);
  check_int "mc node" 5 (Noc.Topology.mc_node t 0)

let test_topology_errors () =
  Alcotest.check_raises "zero rows"
    (Invalid_argument "Topology.create: non-positive dimension") (fun () ->
      ignore (Noc.Topology.create ~rows:0 ~cols:6 Noc.Topology.Corners));
  Alcotest.check_raises "mc outside mesh"
    (Invalid_argument "Topology.create: MC outside mesh") (fun () ->
      ignore
        (Noc.Topology.create ~rows:2 ~cols:2
           (Noc.Topology.Custom [ coord ~row:5 ~col:0 ])));
  Alcotest.check_raises "empty custom"
    (Invalid_argument "Topology.create: empty MC placement") (fun () ->
      ignore (Noc.Topology.create ~rows:2 ~cols:2 (Noc.Topology.Custom [])))

let test_distance_to_mc () =
  check_int "center to corner" 5
    (Noc.Topology.distance_to_mc topo66 (coord ~row:2 ~col:3) 0)

(* ------------------------------------------------------------------ *)

let test_routing_path_props () =
  (* Paths are X-first, adjacent-hop chains of the right length. *)
  let check_pair src dst =
    let hops = Noc.Routing.hop_count topo66 ~src ~dst in
    let path = Noc.Routing.path topo66 ~src ~dst in
    check_int
      (Printf.sprintf "hops %d->%d" src dst)
      hops (List.length path);
    let m =
      Noc.Coord.manhattan
        (Noc.Topology.coord_of_node topo66 src)
        (Noc.Topology.coord_of_node topo66 dst)
    in
    check_int "hop count = manhattan" m hops
  in
  check_pair 0 35;
  check_pair 35 0;
  check_pair 7 7;
  check_pair 5 30

let test_routing_xy_order () =
  (* From (0,0) to (2,2): two East links first, then two South links. *)
  let path = Noc.Routing.path topo66 ~src:0 ~dst:14 in
  let dirs = List.map (fun l -> l mod 4) path in
  Alcotest.(check (list int))
    "X then Y"
    [
      Noc.Routing.direction_index Noc.Routing.East;
      Noc.Routing.direction_index Noc.Routing.East;
      Noc.Routing.direction_index Noc.Routing.South;
      Noc.Routing.direction_index Noc.Routing.South;
    ]
    dirs

let test_routing_empty_path () =
  Alcotest.(check (list int)) "self route" [] (Noc.Routing.path topo66 ~src:9 ~dst:9)

let qcheck_routing_length =
  QCheck.Test.make ~name:"routing path length equals manhattan distance"
    ~count:200
    QCheck.(pair (int_bound 35) (int_bound 35))
    (fun (src, dst) ->
      Noc.Routing.hop_count topo66 ~src ~dst
      = List.length (Noc.Routing.path topo66 ~src ~dst))

(* ------------------------------------------------------------------ *)

let test_packet_flits () =
  check_int "request" 1
    (Noc.Packet.flits Noc.Packet.Request ~line_size:64 ~flit_bytes:16);
  check_int "data 64/16" 5
    (Noc.Packet.flits Noc.Packet.Data ~line_size:64 ~flit_bytes:16);
  check_int "writeback rounds up" 3
    (Noc.Packet.flits Noc.Packet.Writeback ~line_size:33 ~flit_bytes:32)

(* ------------------------------------------------------------------ *)

let test_network_idle_latency () =
  let net = Noc.Network.create ~router_overhead:3 topo66 in
  (* 10 hops, 1 flit: 10 * (3 + 1) = 40 cycles, no tail. *)
  check_int "single flit corner to corner" 40
    (Noc.Network.send net ~now:0 ~src:0 ~dst:35 ~flits:1);
  check_int "no queueing when idle path differs" 0
    (Noc.Network.total_queueing net)

let test_network_tail_flits () =
  let net = Noc.Network.create ~router_overhead:3 topo66 in
  (* 1 hop, 5 flits: 4 + 4 tail cycles. *)
  check_int "tail flits" 8 (Noc.Network.send net ~now:0 ~src:0 ~dst:1 ~flits:5)

let test_network_queueing () =
  let net = Noc.Network.create ~router_overhead:3 topo66 in
  let a1 = Noc.Network.send net ~now:0 ~src:0 ~dst:1 ~flits:5 in
  let a2 = Noc.Network.send net ~now:0 ~src:0 ~dst:1 ~flits:5 in
  check_bool "second packet queues" true (a2 > a1);
  check_int "queueing recorded" 5 (Noc.Network.total_queueing net)

let test_network_ideal () =
  let net = Noc.Network.create ~ideal:true ~router_overhead:3 topo66 in
  check_int "ideal is free" 17 (Noc.Network.send net ~now:17 ~src:0 ~dst:35 ~flits:5);
  check_int "no packets recorded" 0 (Noc.Network.packets_sent net)

let test_network_self_send () =
  let net = Noc.Network.create ~router_overhead:3 topo66 in
  check_int "src = dst is free" 9 (Noc.Network.send net ~now:9 ~src:4 ~dst:4 ~flits:3)

let test_network_stats_and_reset () =
  let net = Noc.Network.create ~router_overhead:3 topo66 in
  ignore (Noc.Network.send net ~now:0 ~src:0 ~dst:35 ~flits:1);
  check_int "hops" 10 (Noc.Network.total_hops net);
  check_int "packets" 1 (Noc.Network.packets_sent net);
  check_bool "avg latency positive" true (Noc.Network.avg_latency net > 0.);
  let hist = Noc.Network.latency_histogram net in
  check_int "one packet in histogram" 1 (Array.fold_left ( + ) 0 hist);
  Noc.Network.reset net;
  check_int "reset clears packets" 0 (Noc.Network.packets_sent net);
  check_int "reset clears latency" 0 (Noc.Network.total_latency net)

let qcheck_network_monotonic =
  QCheck.Test.make ~name:"network arrival is never before injection" ~count:200
    QCheck.(triple (int_bound 35) (int_bound 35) (int_range 1 8))
    (fun (src, dst, flits) ->
      let net = Noc.Network.create ~router_overhead:3 topo66 in
      Noc.Network.send net ~now:100 ~src ~dst ~flits >= 100)

let () =
  Alcotest.run "noc"
    [
      ( "coord",
        [
          Alcotest.test_case "manhattan" `Quick test_coord_manhattan;
          Alcotest.test_case "invalid" `Quick test_coord_invalid;
          Alcotest.test_case "compare" `Quick test_coord_compare;
        ] );
      ( "topology",
        [
          Alcotest.test_case "basic" `Quick test_topology_basic;
          Alcotest.test_case "corners" `Quick test_topology_corners;
          Alcotest.test_case "midpoints" `Quick test_topology_midpoints;
          Alcotest.test_case "custom" `Quick test_topology_custom;
          Alcotest.test_case "errors" `Quick test_topology_errors;
          Alcotest.test_case "distance to MC" `Quick test_distance_to_mc;
        ] );
      ( "routing",
        [
          Alcotest.test_case "path properties" `Quick test_routing_path_props;
          Alcotest.test_case "x-y order" `Quick test_routing_xy_order;
          Alcotest.test_case "self" `Quick test_routing_empty_path;
          QCheck_alcotest.to_alcotest qcheck_routing_length;
        ] );
      ("packet", [ Alcotest.test_case "flits" `Quick test_packet_flits ]);
      ( "network",
        [
          Alcotest.test_case "idle latency" `Quick test_network_idle_latency;
          Alcotest.test_case "tail flits" `Quick test_network_tail_flits;
          Alcotest.test_case "queueing" `Quick test_network_queueing;
          Alcotest.test_case "ideal" `Quick test_network_ideal;
          Alcotest.test_case "self send" `Quick test_network_self_send;
          Alcotest.test_case "stats and reset" `Quick test_network_stats_and_reset;
          QCheck_alcotest.to_alcotest qcheck_network_monotonic;
        ] );
    ]
