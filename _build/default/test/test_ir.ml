(* Tests for the loop-nest IR: affine expressions, nests, programs,
   layout, iteration sets and trace expansion. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let env = function
  | "i" -> 5
  | "j" -> 3
  | "t" -> 0
  | _ -> 0

(* ------------------------------------------------------------------ *)

let test_affine_algebra () =
  let open Ir.Affine in
  let e = add (var ~coeff:4 "i") (add (var "j") (const 7)) in
  check_int "eval" 30 (eval env e);
  check_int "coeff i" 4 (coeff e "i");
  check_int "coeff missing" 0 (coeff e "k");
  check_int "const part" 7 (constant_part e);
  Alcotest.(check (list string)) "vars sorted" [ "i"; "j" ] (vars e);
  let z = sub e e in
  check_bool "x - x = const" true (is_constant z);
  check_int "x - x = 0" 0 (eval env z);
  check_int "scale" 40 (eval env (scale 2 (var ~coeff:4 "i")));
  check_bool "scale 0 is constant" true (is_constant (scale 0 e));
  check_bool "equal normalised" true
    (equal (add (var "i") (var "j")) (add (var "j") (var "i")))

let test_affine_operators () =
  let open Ir.Affine in
  check_int "operators" 17 (eval env (var "i" + (4 * const 3)))

(* ------------------------------------------------------------------ *)

let nest_simple n =
  Ir.Loop_nest.make ~name:"n" ~par:(Ir.Loop_nest.loop "i" ~hi:n)
    [ Ir.Access.read "a" (Ir.Access.direct (Ir.Affine.var "i")) ]

let test_loop_nest_trips () =
  let l = Ir.Loop_nest.loop ~lo:2 ~step:3 "i" ~hi:11 in
  check_int "trip" 3 (Ir.Loop_nest.trip l);
  let n =
    Ir.Loop_nest.make ~name:"n"
      ~par:(Ir.Loop_nest.loop "i" ~hi:10)
      ~inner:[ Ir.Loop_nest.loop "j" ~hi:4; Ir.Loop_nest.loop "k" ~hi:5 ]
      [
        Ir.Access.read "a" (Ir.Access.direct (Ir.Affine.var "i"));
        Ir.Access.write "b" (Ir.Access.direct (Ir.Affine.var "j"));
      ]
  in
  check_int "iterations" 10 (Ir.Loop_nest.iterations n);
  check_int "inner trip" 20 (Ir.Loop_nest.inner_trip n);
  check_int "accesses per par iter" 40 (Ir.Loop_nest.accesses_per_par_iter n);
  check_bool "regular" true (Ir.Loop_nest.is_regular n)

let test_loop_nest_errors () =
  Alcotest.check_raises "empty loop"
    (Invalid_argument "Loop_nest: loop i is empty") (fun () ->
      ignore
        (Ir.Loop_nest.make ~name:"n" ~par:(Ir.Loop_nest.loop "i" ~hi:0) []));
  Alcotest.check_raises "duplicate var"
    (Invalid_argument "Loop_nest.make: duplicate loop variable") (fun () ->
      ignore
        (Ir.Loop_nest.make ~name:"n"
           ~par:(Ir.Loop_nest.loop "i" ~hi:4)
           ~inner:[ Ir.Loop_nest.loop "i" ~hi:4 ]
           []))

(* ------------------------------------------------------------------ *)

let prog_ab ?(time_steps = 1) ?(n = 64) () =
  Ir.Program.create ~name:"p" ~kind:Ir.Program.Regular
    ~arrays:
      [
        { Ir.Program.name = "a"; elem_size = 8; length = n };
        { Ir.Program.name = "b"; elem_size = 8; length = n };
      ]
    ~time_steps
    [
      Ir.Loop_nest.make ~name:"n"
        ~par:(Ir.Loop_nest.loop "i" ~hi:n)
        [
          Ir.Access.read "a" (Ir.Access.direct (Ir.Affine.var "i"));
          Ir.Access.write "b" (Ir.Access.direct (Ir.Affine.var "i"));
        ];
    ]

let test_program_validation () =
  Alcotest.check_raises "undeclared array"
    (Invalid_argument "Program.create: reference to undeclared array \"z\"")
    (fun () ->
      ignore
        (Ir.Program.create ~name:"p" ~kind:Ir.Program.Regular
           ~arrays:[ { Ir.Program.name = "a"; elem_size = 8; length = 4 } ]
           [ nest_simple 4 |> fun n -> { n with Ir.Loop_nest.body = [ Ir.Access.read "z" (Ir.Access.direct (Ir.Affine.var "i")) ] } ]));
  Alcotest.check_raises "undeclared table"
    (Invalid_argument "Program.create: reference to undeclared table \"t\"")
    (fun () ->
      ignore
        (Ir.Program.create ~name:"p" ~kind:Ir.Program.Irregular
           ~arrays:[ { Ir.Program.name = "a"; elem_size = 8; length = 4 } ]
           [
             {
               (nest_simple 4) with
               Ir.Loop_nest.body =
                 [ Ir.Access.read "a" (Ir.Access.indirect ~table:"t" ~pos:(Ir.Affine.var "i")) ];
             };
           ]));
  Alcotest.check_raises "duplicate arrays"
    (Invalid_argument "Program.create: duplicate array name") (fun () ->
      ignore
        (Ir.Program.create ~name:"p" ~kind:Ir.Program.Regular
           ~arrays:
             [
               { Ir.Program.name = "a"; elem_size = 8; length = 4 };
               { Ir.Program.name = "a"; elem_size = 8; length = 4 };
             ]
           [ nest_simple 4 ]))

let test_program_accessors () =
  let p = prog_ab ~time_steps:3 () in
  check_int "nests" 1 (Ir.Program.num_nests p);
  check_int "arrays" 2 (Ir.Program.num_arrays p);
  check_int "par iterations" 64 (Ir.Program.total_par_iterations p);
  check_int "accesses per step" 128 (Ir.Program.total_accesses_per_step p);
  check_int "footprint" (2 * 8 * 64) (Ir.Program.footprint_bytes p);
  check_int "array decl" 64 (Ir.Program.array_decl p "a").Ir.Program.length

(* ------------------------------------------------------------------ *)

let test_layout () =
  let p = prog_ab ~n:100 () in
  let l = Ir.Layout.allocate ~page_size:2048 p in
  check_int "a at zero" 0 (Ir.Layout.base l "a");
  check_int "a extent page aligned" 2048 (Ir.Layout.extent_bytes l "a");
  check_int "b after a" 2048 (Ir.Layout.base l "b");
  check_int "footprint" 4096 (Ir.Layout.footprint l);
  Alcotest.(check (list string)) "order" [ "a"; "b" ] (Ir.Layout.arrays l);
  let l2 = Ir.Layout.with_base l "b" 8192 in
  check_int "rebased" 8192 (Ir.Layout.base l2 "b");
  check_int "original untouched" 2048 (Ir.Layout.base l "b");
  check_int "footprint follows" (8192 + 2048) (Ir.Layout.footprint l2)

(* ------------------------------------------------------------------ *)

let test_iter_set_partition () =
  let p = prog_ab ~n:100 () in
  let sets = Ir.Iter_set.partition p ~fraction:0.1 in
  check_int "ten sets" 10 (Array.length sets);
  check_int "set size" 10 (Ir.Iter_set.size sets.(0));
  (* Coverage: every iteration in exactly one set. *)
  let seen = Array.make 100 0 in
  Array.iter
    (fun (s : Ir.Iter_set.t) ->
      for i = s.lo to s.hi - 1 do
        seen.(i) <- seen.(i) + 1
      done)
    sets;
  check_bool "exact cover" true (Array.for_all (( = ) 1) seen)

let qcheck_partition_cover =
  QCheck.Test.make ~name:"partition covers iterations exactly once" ~count:100
    QCheck.(pair (int_range 1 500) (int_range 1 100))
    (fun (n, pct) ->
      let p = prog_ab ~n () in
      let sets = Ir.Iter_set.partition p ~fraction:(float_of_int pct /. 100.) in
      let total = Array.fold_left (fun acc s -> acc + Ir.Iter_set.size s) 0 sets in
      total = n
      && Array.for_all (fun (s : Ir.Iter_set.t) -> s.lo < s.hi && s.hi <= n) sets)

(* ------------------------------------------------------------------ *)

let test_trace_emission_order () =
  let p = prog_ab ~n:8 () in
  let l = Ir.Layout.allocate ~page_size:2048 p in
  let t = Ir.Trace.create p l in
  let collected = ref [] in
  Ir.Trace.iter_range t ~nest:0 ~lo:2 ~hi:4 (fun ~addr ~write ->
      collected := (addr, write) :: !collected);
  let base_b = Ir.Layout.base l "b" in
  Alcotest.(check (list (pair int bool)))
    "addresses in program order"
    [ (16, false); (base_b + 16, true); (24, false); (base_b + 24, true) ]
    (List.rev !collected)

let test_trace_fill_matches_iter_range () =
  let p = prog_ab ~n:16 () in
  let l = Ir.Layout.allocate ~page_size:2048 p in
  let t = Ir.Trace.create p l in
  let buf = Array.make (Ir.Trace.accesses_per_par_iter t ~nest:0) 0 in
  let n = Ir.Trace.fill_iteration t ~nest:0 ~iter:3 ~buf in
  let via_range = ref [] in
  Ir.Trace.iter_range t ~nest:0 ~lo:3 ~hi:4 (fun ~addr ~write ->
      via_range := (addr, write) :: !via_range);
  let via_fill =
    List.init n (fun k -> (Ir.Trace.decode_addr buf.(k), Ir.Trace.decode_write buf.(k)))
  in
  Alcotest.(check (list (pair int bool))) "same accesses" (List.rev !via_range) via_fill

let test_trace_step_variable () =
  let n = 16 in
  let p =
    Ir.Program.create ~name:"p" ~kind:Ir.Program.Regular
      ~arrays:[ { Ir.Program.name = "a"; elem_size = 8; length = 2 * n } ]
      ~time_steps:2
      [
        Ir.Loop_nest.make ~name:"n"
          ~par:(Ir.Loop_nest.loop "i" ~hi:n)
          [
            Ir.Access.read "a"
              (Ir.Access.direct
                 Ir.Affine.(add (var "i") (var ~coeff:n Ir.Trace.step_var)));
          ];
      ]
  in
  let t = Ir.Trace.create p (Ir.Layout.allocate ~page_size:2048 p) in
  let at step =
    let acc = ref [] in
    Ir.Trace.iter_range ~step t ~nest:0 ~lo:0 ~hi:1 (fun ~addr ~write:_ ->
        acc := addr :: !acc);
    List.hd !acc
  in
  check_int "step 0 slice" 0 (at 0);
  check_int "step 1 slice" (n * 8) (at 1)

let test_trace_bounds_check () =
  let mk len =
    Ir.Program.create ~name:"p" ~kind:Ir.Program.Regular
      ~arrays:[ { Ir.Program.name = "a"; elem_size = 8; length = len } ]
      [
        Ir.Loop_nest.make ~name:"bad"
          ~par:(Ir.Loop_nest.loop "i" ~hi:16)
          [ Ir.Access.read "a" (Ir.Access.direct Ir.Affine.(add (var "i") (const 4))) ];
      ]
  in
  (* length 20 accommodates i+4 for i<16; length 16 does not. *)
  let ok = mk 20 in
  ignore (Ir.Trace.create ok (Ir.Layout.allocate ~page_size:2048 ok));
  let bad = mk 16 in
  check_bool "static bounds check fires" true
    (try
       ignore (Ir.Trace.create bad (Ir.Layout.allocate ~page_size:2048 bad));
       false
     with Invalid_argument _ -> true)

let test_trace_indirect_bounds () =
  let p =
    Ir.Program.create ~name:"p" ~kind:Ir.Program.Irregular
      ~arrays:[ { Ir.Program.name = "a"; elem_size = 8; length = 4 } ]
      ~index_tables:[ ("idx", [| 0; 1; 2; 99 |]) ]
      [
        Ir.Loop_nest.make ~name:"n"
          ~par:(Ir.Loop_nest.loop "i" ~hi:4)
          [ Ir.Access.read "a" (Ir.Access.indirect ~table:"idx" ~pos:(Ir.Affine.var "i")) ];
      ]
  in
  let t = Ir.Trace.create p (Ir.Layout.allocate ~page_size:2048 p) in
  (* Iterations 0-2 are fine; iteration 3 dereferences element 99. *)
  Ir.Trace.iter_range t ~nest:0 ~lo:0 ~hi:3 (fun ~addr:_ ~write:_ -> ());
  check_bool "runtime bounds check fires" true
    (try
       Ir.Trace.iter_range t ~nest:0 ~lo:3 ~hi:4 (fun ~addr:_ ~write:_ -> ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "ir"
    [
      ( "affine",
        [
          Alcotest.test_case "algebra" `Quick test_affine_algebra;
          Alcotest.test_case "operators" `Quick test_affine_operators;
        ] );
      ( "loop_nest",
        [
          Alcotest.test_case "trips" `Quick test_loop_nest_trips;
          Alcotest.test_case "errors" `Quick test_loop_nest_errors;
        ] );
      ( "program",
        [
          Alcotest.test_case "validation" `Quick test_program_validation;
          Alcotest.test_case "accessors" `Quick test_program_accessors;
        ] );
      ("layout", [ Alcotest.test_case "allocation" `Quick test_layout ]);
      ( "iter_set",
        [
          Alcotest.test_case "partition" `Quick test_iter_set_partition;
          QCheck_alcotest.to_alcotest qcheck_partition_cover;
        ] );
      ( "trace",
        [
          Alcotest.test_case "emission order" `Quick test_trace_emission_order;
          Alcotest.test_case "fill = iter_range" `Quick test_trace_fill_matches_iter_range;
          Alcotest.test_case "step variable" `Quick test_trace_step_variable;
          Alcotest.test_case "static bounds" `Quick test_trace_bounds_check;
          Alcotest.test_case "indirect bounds" `Quick test_trace_indirect_bounds;
        ] );
    ]
