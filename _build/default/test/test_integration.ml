(* End-to-end integration tests: the paper's mechanism must be visible
   through the whole stack — compile a program, map it, simulate it,
   and check the headline claims qualitatively (at reduced scale). *)

let check_bool = Alcotest.(check bool)

let private_cfg = Machine.Config.default
let shared_cfg = { private_cfg with Machine.Config.llc_org = Cache.Llc.Shared }

let improvement cfg name strategy =
  let p = Harness.Experiment.prepare_name ~scale:0.5 name in
  let base = Harness.Experiment.run cfg p Harness.Experiment.Default in
  let opt = Harness.Experiment.run cfg p strategy in
  Harness.Experiment.reductions ~base opt

(* Headline: the location-aware mapping reduces on-chip network latency
   substantially on localisable applications, private LLC. *)
let test_private_localisable_wins () =
  List.iter
    (fun name ->
      let net, time = improvement private_cfg name Harness.Experiment.Location_aware in
      check_bool
        (Printf.sprintf "%s: network latency cut by >20%% (got %.1f)" name net)
        true (net > 20.);
      check_bool
        (Printf.sprintf "%s: execution time improves (got %.1f)" name time)
        true (time > 0.))
    [ "jacobi-3d"; "lulesh"; "swim"; "diff" ]

(* Weakly localisable applications neither win nor regress much —
   matching the paper's barnes/volrend/equake behaviour. *)
let test_weakly_localisable_bounded () =
  List.iter
    (fun name ->
      let _, time = improvement private_cfg name Harness.Experiment.Location_aware in
      check_bool
        (Printf.sprintf "%s: execution within noise (got %.1f)" name time)
        true
        (time > -8.))
    [ "barnes"; "volrend"; "equake" ]

(* Shared-LLC mode: column-sweeping and clustered applications gain. *)
let test_shared_gains () =
  List.iter
    (fun name ->
      let net, _ = improvement shared_cfg name Harness.Experiment.Location_aware in
      check_bool
        (Printf.sprintf "%s: shared-LLC network latency reduced (got %.1f)"
           name net)
        true (net > 5.))
    [ "swim"; "art"; "lu" ]

(* The ideal network bounds any real mapping gain. *)
let test_ideal_bounds_la () =
  List.iter
    (fun name ->
      let _, t_ideal = improvement private_cfg name Harness.Experiment.Ideal_network in
      let _, t_la = improvement private_cfg name Harness.Experiment.Location_aware in
      check_bool
        (Printf.sprintf "%s: LA (%.1f) <= ideal (%.1f) + noise" name t_la t_ideal)
        true
        (t_la <= t_ideal +. 3.))
    [ "jacobi-3d"; "moldyn"; "fft" ]

(* Oracle estimation is not much better than realistic estimation
   (the paper's Figure 15 observation). *)
let test_oracle_close_to_realistic () =
  List.iter
    (fun name ->
      let _, t_real = improvement private_cfg name Harness.Experiment.Location_aware in
      let _, t_oracle = improvement private_cfg name Harness.Experiment.La_oracle in
      check_bool
        (Printf.sprintf "%s: oracle (%.1f) within 8 points of realistic (%.1f)"
           name t_oracle t_real)
        true
        (Float.abs (t_oracle -. t_real) < 8.))
    [ "jacobi-3d"; "swim" ]

(* The compiler approach beats the hardware placement scheme on
   multi-threaded apps (Figure 14's claim), at least on a localisable
   workload. *)
let test_la_beats_hw () =
  let _, t_la = improvement private_cfg "lulesh" Harness.Experiment.Location_aware in
  let _, t_hw = improvement private_cfg "lulesh" Harness.Experiment.Hw_placement in
  check_bool
    (Printf.sprintf "LA (%.1f) > HW (%.1f) on lulesh" t_la t_hw)
    true (t_la > t_hw)

(* LA+DO composes: not significantly worse than LA alone (Figure 13). *)
let test_la_plus_do_composes () =
  let _, t_la = improvement private_cfg "jacobi-3d" Harness.Experiment.Location_aware in
  let _, t_both = improvement private_cfg "jacobi-3d" Harness.Experiment.La_plus_do in
  check_bool
    (Printf.sprintf "LA+DO (%.1f) close to or above LA (%.1f)" t_both t_la)
    true
    (t_both > t_la -. 10.)

let () =
  Alcotest.run "integration"
    [
      ( "headline",
        [
          Alcotest.test_case "private localisable wins" `Slow
            test_private_localisable_wins;
          Alcotest.test_case "weakly localisable bounded" `Slow
            test_weakly_localisable_bounded;
          Alcotest.test_case "shared gains" `Slow test_shared_gains;
          Alcotest.test_case "ideal bounds LA" `Slow test_ideal_bounds_la;
          Alcotest.test_case "oracle close to realistic" `Slow
            test_oracle_close_to_realistic;
          Alcotest.test_case "LA beats HW placement" `Slow test_la_beats_hw;
          Alcotest.test_case "LA+DO composes" `Slow test_la_plus_do_composes;
        ] );
    ]
