(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see EXPERIMENTS.md for paper-vs-measured numbers), then
   runs Bechamel micro-benchmarks of the core algorithms.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --only fig7  # one figure
     dune exec bench/main.exe -- --quick      # half-size inputs
     dune exec bench/main.exe -- --no-micro   # skip micro-benchmarks *)

let selected : string list ref = ref []
let quick = ref false
let micro = ref true

let usage = "main.exe [--only FIG]... [--quick] [--no-micro] [--list]"

let list_figures () =
  List.iter
    (fun (f : Harness.Figures.fig) ->
      Printf.printf "%-10s %s\n" f.id f.title)
    Harness.Figures.all;
  exit 0

let args =
  [
    ( "--only",
      Arg.String (fun s -> selected := s :: !selected),
      "FIG run only this figure (repeatable); see --list" );
    ("--quick", Arg.Set quick, " run with half-size inputs");
    ("--no-micro", Arg.Unit (fun () -> micro := false), " skip micro-benchmarks");
    ("--micro-only", Arg.Unit (fun () -> selected := [ "none" ]), " only micro-benchmarks");
    ("--list", Arg.Unit list_figures, " list figure ids and exit");
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core algorithms.                   *)

let micro_tests () =
  let open Bechamel in
  let cfg = Machine.Config.default in
  let regions = Locmap.Region.create cfg in
  let tables = Locmap.Assign.create cfg regions in
  let summary =
    let s = Locmap.Summary.create ~num_mcs:4 ~num_regions:9 in
    Locmap.Summary.add_llc_miss s ~mc:0 ~bank_region:(-1);
    Locmap.Summary.add_llc_miss s ~mc:0 ~bank_region:(-1);
    Locmap.Summary.add_llc_miss s ~mc:1 ~bank_region:(-1);
    Locmap.Summary.add_llc_hit s ~region:4;
    s
  in
  let v1 = [| 0.5; 0.25; 0.25; 0.0 |] and v2 = [| 0.25; 0.25; 0.25; 0.25 |] in
  let topo = Machine.Config.topology cfg in
  let net = Noc.Network.create ~router_overhead:3 topo in
  let cachet =
    Cache.Sa_cache.create ~size:(16 * 1024) ~assoc:8 ~line_size:32 ()
  in
  let counter = ref 0 in
  let prepared = Harness.Experiment.prepare_name ~scale:0.25 "moldyn" in
  let small_cfg = cfg in
  [
    Test.make ~name:"eta (4-entry affinity vectors)"
      (Staged.stage (fun () -> Locmap.Affinity.eta v1 v2));
    Test.make ~name:"best_region (9 regions)"
      (Staged.stage (fun () -> Locmap.Assign.best_region tables summary));
    Test.make ~name:"network send (10 hops)"
      (Staged.stage (fun () ->
           ignore (Noc.Network.send net ~now:0 ~src:0 ~dst:35 ~flits:5)));
    Test.make ~name:"L1 cache access"
      (Staged.stage (fun () ->
           incr counter;
           ignore
             (Cache.Sa_cache.access cachet ~addr:(!counter * 8 mod 65536)
                ~write:false)));
    Test.make ~name:"full mapping pipeline (moldyn, 0.25x)"
      (Staged.stage (fun () ->
           ignore
             (Locmap.Mapper.map ~measure_error:false small_cfg
                prepared.Harness.Experiment.trace)));
  ]

let run_micro () =
  let open Bechamel in
  print_newline ();
  print_endline "Micro-benchmarks (Bechamel)";
  print_endline "---------------------------";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let estimates = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] -> Printf.printf "%-42s %12.1f ns/run\n" name t
          | _ -> Printf.printf "%-42s (no estimate)\n" name)
        estimates)
    (micro_tests ());
  flush stdout

(* ------------------------------------------------------------------ *)

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let scale = if !quick then 0.5 else 1.0 in
  let figs =
    match !selected with
    | [] -> Harness.Figures.all
    | [ "none" ] -> []
    | ids ->
        List.rev_map
          (fun id ->
            match Harness.Figures.find id with
            | Some f -> f
            | None ->
                Printf.eprintf "unknown figure %S (try --list)\n" id;
                exit 2)
          ids
  in
  List.iter
    (fun (f : Harness.Figures.fig) ->
      let t0 = Unix.gettimeofday () in
      f.run ~scale;
      Printf.printf "[%s ran in %.1fs]\n%!" f.id (Unix.gettimeofday () -. t0))
    figs;
  if !micro then run_micro ()
