(* Open-loop load generator for `locmap serve` (lib/net).

     dune exec bench/loadgen_bench.exe                 # self-hosted server
     dune exec bench/loadgen_bench.exe -- --port 7070  # external server
     dune exec bench/loadgen_bench.exe -- --smoke      # CI configuration

   Arrivals are open-loop Poisson (seeded exponential inter-arrival
   times at --rate req/s), so offered load does not slow down when the
   server does — exactly the regime admission control exists for. The
   request mix is Zipf-skewed over the registry × {private,shared}
   universe, round-robined across --conns connections, each driven by
   its own domain. Every response is matched FIFO to its send (the
   server answers each connection serially, in line order) and its
   latency lands in an obs histogram — one for served requests, one
   for shed ones — from which the report reads p50/p99. The point the
   report makes: past capacity the server sheds the excess in
   microseconds while the latency of what it does accept stays
   bounded.

   Without --port the bench hosts the server in-process (--domains,
   --max-inflight size it); with --port it drives an already-running
   `locmap serve`. --tolerate-drain accepts mid-run connection loss
   and unanswered tail sends as success — for smoke tests that SIGTERM
   the server mid-burst on purpose. *)

let scale = ref 0.35
let num_requests = ref 200
let rate = ref 50.
let conns = ref 8
let zipf_s = ref 1.1
let seed = ref 0xbeef
let port = ref 0 (* 0 = self-host *)
let host = ref "127.0.0.1"
let domains = ref 4
let max_inflight = ref 4
let tolerate_drain = ref false

let usage =
  "loadgen_bench.exe [--smoke] [--port P] [--rate R] [--requests N] \
   [--conns C] [--zipf S] [--scale S] [--seed N] [--domains N] \
   [--max-inflight N] [--tolerate-drain]"

let set_smoke () =
  (* CI bit-rot gate: tiny inputs, enough pressure to exercise the
     shed path (4 connections racing for 2 admission slots). *)
  scale := 0.05;
  num_requests := 60;
  rate := 100.;
  conns := 4;
  domains := 2;
  max_inflight := 2

let args =
  [
    ("--scale", Arg.Set_float scale, "S benchmark input-size scale (default 0.35)");
    ("--requests", Arg.Set_int num_requests, "N total sends (default 200)");
    ("--rate", Arg.Set_float rate, "R offered load, requests/second (default 50)");
    ("--conns", Arg.Set_int conns, "C client connections (default 8)");
    ("--zipf", Arg.Set_float zipf_s, "S Zipf skew exponent (default 1.1)");
    ("--seed", Arg.Set_int seed, "N RNG seed for mix and arrivals (default 0xbeef)");
    ( "--port",
      Arg.Set_int port,
      "P drive an external `locmap serve` (default: self-host in-process)" );
    ("--host", Arg.Set_string host, "ADDR server address (default 127.0.0.1)");
    ( "--domains",
      Arg.Set_int domains,
      "N worker domains for the self-hosted server (default 4)" );
    ( "--max-inflight",
      Arg.Set_int max_inflight,
      "N admission budget of the self-hosted server (default 4)" );
    ( "--tolerate-drain",
      Arg.Set tolerate_drain,
      " count connection loss / unanswered sends as drained, not failed" );
    ( "--smoke",
      Arg.Unit set_smoke,
      " quick CI configuration (scale 0.05, 60 requests, 4 conns)" );
  ]

(* Same universe and Zipf sampling as service_bench: every registry
   workload on private and shared LLC, popularity decoupled from
   registry order by a seeded permutation. *)
let universe () =
  List.concat_map
    (fun llc ->
      List.map
        (fun name ->
          let machine = { Machine.Config.default with llc_org = llc } in
          Service.Request.make ~scale:!scale ~machine name)
        Workloads.Registry.names)
    [ Cache.Llc.Private; Cache.Llc.Shared ]
  |> Array.of_list

let zipf_mix rng universe n =
  let u = Array.length universe in
  let perm = Array.init u Fun.id in
  for i = u - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let weights =
    Array.init u (fun k -> 1. /. Float.pow (float_of_int (k + 1)) !zipf_s)
  in
  let total = Array.fold_left ( +. ) 0. weights in
  let sample () =
    let x = Random.State.float rng total in
    let rec find k acc =
      let acc = acc +. weights.(k) in
      if x <= acc || k = u - 1 then perm.(k) else find (k + 1) acc
    in
    find 0 0.
  in
  Array.init n (fun _ -> universe.(sample ()))

(* Poisson arrivals: absolute offsets (seconds) with Exp(rate)
   inter-arrival gaps. *)
let arrival_times rng n =
  let t = ref 0. in
  Array.init n (fun _ ->
      t := !t +. (-.log (1. -. Random.State.float rng 1.) /. !rate);
      !t)

(* ------------------------------------------------------------------ *)
(* Per-connection client: send at the scheduled instants, match
   responses FIFO, classify by the wire fault kind.                    *)

type outcome = Served | Degraded | Shed | Failed of string | Unanswered

let classify line =
  match Service.Json.of_string line with
  | Error e -> Failed (Printf.sprintf "unparseable response: %s" e)
  | Ok j -> (
      match Option.map Service.Json.to_bool (Service.Json.member "ok" j) with
      | Some (Ok true) ->
          let degraded =
            match Service.Json.member "result" j with
            | Some r -> (
                match
                  Option.map Service.Json.to_bool
                    (Service.Json.member "degraded" r)
                with
                | Some (Ok true) -> true
                | _ -> false)
            | None -> false
          in
          if degraded then Degraded else Served
      | Some (Ok false) -> (
          match Service.Json.member "error" j with
          | Some e -> (
              match
                Option.map Service.Json.to_str (Service.Json.member "kind" e)
              with
              | Some (Ok "overload") -> Shed
              | Some (Ok k) -> Failed k
              | _ -> Failed "malformed error object")
          | None -> Failed "missing error object")
      | _ -> Failed "missing ok field")

type conn_result = {
  outcomes : outcome array;  (* indexed by this connection's send order *)
  send_failures : int;  (* sends the socket refused (drain/reset) *)
}

let ms_of_ns ns = Obs.Clock.ns_to_ms ns

let run_conn ~addr ~t0_ns ~schedule ~ok_hist ~shed_hist () =
  let n = Array.length schedule in
  let outcomes = Array.make n Unanswered in
  let send_failures = ref 0 in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | exception Unix.Unix_error (_, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      { outcomes; send_failures = n }
  | () ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      let reader = Net.Frame.create () in
      let buf = Bytes.create 16384 in
      let sent_ns = Array.make n 0L in
      let next_recv = ref 0 in
      let alive = ref true in
      let record line =
        let i = !next_recv in
        incr next_recv;
        if i < n then begin
          let lat = ms_of_ns (Int64.sub (Obs.Clock.now_ns ()) sent_ns.(i)) in
          let o = classify line in
          outcomes.(i) <- o;
          match o with
          | Served | Degraded -> Obs.Metrics.observe ok_hist lat
          | Shed -> Obs.Metrics.observe shed_hist lat
          | Failed _ | Unanswered -> ()
        end
      in
      let pump_frames () =
        let rec go () =
          match Net.Frame.next reader with
          | Some (Net.Frame.Line l) ->
              record l;
              go ()
          | Some (Net.Frame.Too_long _) ->
              record "";
              go ()
          | None -> ()
        in
        go ()
      in
      let read_once ~block =
        let timeout = if block then 0.2 else 0. in
        match Unix.select [ fd ] [] [] timeout with
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | [], _, _ -> ()
        | _ -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 ->
                Net.Frame.close reader;
                alive := false
            | got -> Net.Frame.feed reader buf 0 got
            | exception Unix.Unix_error (EINTR, _, _) -> ()
            | exception Unix.Unix_error (_, _, _) ->
                Net.Frame.close reader;
                alive := false)
      in
      let send_line line =
        let b = Bytes.unsafe_of_string line in
        let len = Bytes.length b in
        let rec go off =
          if off < len then
            match Unix.write fd b off (len - off) with
            | w -> go (off + w)
            | exception Unix.Unix_error (EINTR, _, _) -> go off
        in
        match go 0 with
        | () -> true
        | exception Unix.Unix_error (_, _, _) ->
            alive := false;
            false
      in
      Array.iteri
        (fun i (at, line) ->
          if !alive then begin
            (* Hold the open-loop schedule: sleep to the absolute
               offset, draining any responses that already arrived. *)
            let rec wait () =
              let now =
                ms_of_ns (Int64.sub (Obs.Clock.now_ns ()) t0_ns) /. 1000.
              in
              if now < at then begin
                read_once ~block:false;
                pump_frames ();
                (try Unix.sleepf (Float.min 0.002 (at -. now))
                 with Unix.Unix_error (EINTR, _, _) -> ());
                wait ()
              end
            in
            wait ();
            sent_ns.(i) <- Obs.Clock.now_ns ();
            if not (send_line (line ^ "\n")) then incr send_failures
          end
          else incr send_failures)
        schedule;
      (* Tail: everything is sent; block for the remaining responses
         until the server answered them all or closed on us. *)
      (try Unix.shutdown fd Unix.SHUTDOWN_SEND
       with Unix.Unix_error (_, _, _) -> ());
      while !alive && !next_recv < n do
        read_once ~block:true;
        pump_frames ()
      done;
      pump_frames ();
      (try Unix.close fd with Unix.Unix_error _ -> ());
      { outcomes; send_failures = !send_failures }

(* ------------------------------------------------------------------ *)

let percentile (h : Obs.Metrics.hist_view) q =
  if h.count = 0 then nan
  else
    let rank =
      max 1 (int_of_float (Float.ceil (q *. float_of_int h.count)))
    in
    let rec find i =
      if i >= Array.length h.counts - 1 then Float.infinity
      else if h.counts.(i) >= rank then h.upper.(i)
      else find (i + 1)
    in
    find 0

let pp_pctl v =
  if v <> v (* nan *) then "n/a"
  else if v = Float.infinity then ">5000ms"
  else Printf.sprintf "<=%gms" v

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let rng = Random.State.make [| !seed |] in
  let mix = zipf_mix rng (universe ()) !num_requests in
  let arrivals = arrival_times rng !num_requests in
  let duration = arrivals.(!num_requests - 1) in

  (* Self-host unless --port points at an external server. *)
  let hosted =
    if !port <> 0 then None
    else begin
      let api =
        Service.Api.create ~cache_capacity:64 ~num_domains:!domains ()
      in
      let config =
        {
          Net.Server.default_config with
          Net.Server.host = !host;
          max_inflight = !max_inflight;
          max_conns = !conns + 4;
        }
      in
      let server = Net.Server.create ~config ~api () in
      port := Net.Server.port server;
      Some (api, server)
    end
  in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string !host, !port) in

  Printf.printf
    "open-loop Poisson load: %d requests at %.0f req/s over %d conns \
     (Zipf s=%.2f, scale %.2f, ~%.1fs)\n"
    !num_requests !rate !conns !zipf_s !scale duration;
  (match hosted with
  | Some _ ->
      Printf.printf
        "self-hosted server: %d domains, admission budget %d\n%!" !domains
        !max_inflight
  | None -> Printf.printf "external server: %s:%d\n%!" !host !port);

  (* Shared latency histograms; the registry is thread-safe, so all
     connection domains observe into the same two instruments. *)
  let m = Obs.Metrics.create () in
  let ok_hist = Obs.Metrics.histogram m ~help:"served latency" "loadgen_ok_ms" in
  let shed_hist =
    Obs.Metrics.histogram m ~help:"shed latency" "loadgen_shed_ms"
  in

  (* Round-robin the global schedule across connections; each keeps
     its sends in global arrival order. *)
  let schedules =
    Array.init !conns (fun c ->
        let items = ref [] in
        for i = !num_requests - 1 downto 0 do
          if i mod !conns = c then
            items :=
              (arrivals.(i), Service.Json.to_string (Service.Request.to_json mix.(i)))
              :: !items
        done;
        Array.of_list !items)
  in
  let t0_ns = Obs.Clock.now_ns () in
  let doms =
    Array.map
      (fun schedule ->
        Domain.spawn (run_conn ~addr ~t0_ns ~schedule ~ok_hist ~shed_hist))
      schedules
  in
  let results = Array.map Domain.join doms in
  let elapsed = ms_of_ns (Int64.sub (Obs.Clock.now_ns ()) t0_ns) /. 1000. in

  let count p =
    Array.fold_left
      (fun acc r ->
        acc + Array.fold_left (fun a o -> if p o then a + 1 else a) 0 r.outcomes)
      0 results
  in
  let served = count (function Served | Degraded -> true | _ -> false) in
  let degraded = count (function Degraded -> true | _ -> false) in
  let shed = count (function Shed -> true | _ -> false) in
  let failed = count (function Failed _ -> true | _ -> false) in
  let unanswered = count (function Unanswered -> true | _ -> false) in
  let send_failures =
    Array.fold_left (fun a r -> a + r.send_failures) 0 results
  in
  Array.iter
    (fun r ->
      Array.iter
        (function
          | Failed k -> Printf.printf "!! failed response: %s\n" k
          | _ -> ())
        r.outcomes)
    results;

  Printf.printf "\n%-22s %d\n" "sent:" (!num_requests - send_failures);
  Printf.printf "%-22s %d (%d degraded)\n" "served:" served degraded;
  Printf.printf "%-22s %d (%.1f%% of sends)\n" "shed (overload):" shed
    (100. *. float_of_int shed /. float_of_int (max 1 !num_requests));
  if failed > 0 then Printf.printf "%-22s %d\n" "failed:" failed;
  if unanswered + send_failures > 0 then
    Printf.printf "%-22s %d unanswered, %d unsendable\n" "lost to drain:"
      unanswered send_failures;
  Printf.printf "%-22s %.1f req/s offered, %.1f req/s served\n" "throughput:"
    (float_of_int !num_requests /. elapsed)
    (float_of_int served /. elapsed);
  let view h =
    List.find_map
      (fun (s : Obs.Metrics.sample) ->
        match s.value with
        | Obs.Metrics.Histogram v when s.name = h -> Some v
        | _ -> None)
      (Obs.Metrics.snapshot m)
  in
  (match view "loadgen_ok_ms" with
  | Some v when v.count > 0 ->
      Printf.printf "%-22s p50 %s, p99 %s\n" "served latency:"
        (pp_pctl (percentile v 0.50))
        (pp_pctl (percentile v 0.99))
  | _ -> ());
  (match view "loadgen_shed_ms" with
  | Some v when v.count > 0 ->
      Printf.printf "%-22s p50 %s, p99 %s (shedding must be cheap)\n"
        "shed latency:"
        (pp_pctl (percentile v 0.50))
        (pp_pctl (percentile v 0.99))
  | _ -> ());

  let lost_in_server =
    match hosted with
    | None -> 0
    | Some (api, server) ->
        Net.Server.request_stop server;
        let st = Net.Server.drain server in
        Format.printf "%a@." Net.Server.pp_stats st;
        Service.Api.shutdown api;
        st.Net.Server.lost
  in
  let drain_losses = unanswered + send_failures in
  let ok =
    failed = 0 && lost_in_server = 0
    && (drain_losses = 0 || !tolerate_drain)
  in
  if not ok then begin
    Printf.printf
      "FAILED: %d failed, %d lost to drain, %d lost in server\n" failed
      drain_losses lost_in_server;
    exit 1
  end;
  print_endline "ok"
