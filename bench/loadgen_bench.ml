(* Open-loop load generator for `locmap serve` (lib/net).

     dune exec bench/loadgen_bench.exe                 # self-hosted server
     dune exec bench/loadgen_bench.exe -- --port 7070  # external server
     dune exec bench/loadgen_bench.exe -- --smoke      # CI configuration

   Arrivals are open-loop Poisson (seeded exponential inter-arrival
   times at --rate req/s), so offered load does not slow down when the
   server does — exactly the regime admission control exists for. The
   request mix is Zipf-skewed over the registry × {private,shared}
   universe, round-robined across --conns connections, each driven by
   its own domain. Every response is matched FIFO to its send (the
   server answers each connection serially, in line order) and its
   latency lands in an obs histogram — one for served requests, one
   for shed ones — from which the report reads p50/p99. The point the
   report makes: past capacity the server sheds the excess in
   microseconds while the latency of what it does accept stays
   bounded.

   The client survives a hostile server: a connection that dies
   mid-burst (drain close, chaos-injected RST) marks its in-flight
   sends as reset — a separate class from failed, because the server
   may legitimately cut connections — and reconnects within a bounded
   budget (--reconnects) to carry on with the remaining schedule.
   --tolerate-resets accepts those resets as success (for chaos runs);
   --tolerate-drain additionally accepts unsent/unanswered tails (for
   smoke tests that SIGTERM the server mid-burst on purpose).

   Without --port the bench hosts the server in-process (--domains,
   --max-inflight size it; --chaos and --breaker switch on socket
   fault injection and the brownout breaker); with --port it drives an
   already-running `locmap serve`. *)

let scale = ref 0.35
let num_requests = ref 200
let rate = ref 50.
let conns = ref 8
let zipf_s = ref 1.1
let seed = ref 0xbeef
let port = ref 0 (* 0 = self-host *)
let host = ref "127.0.0.1"
let domains = ref 4
let max_inflight = ref 4
let tolerate_drain = ref false
let tolerate_resets = ref false
let max_reconnects = ref 5
let chaos_spec = ref ""
let breaker = ref false

let usage =
  "loadgen_bench.exe [--smoke] [--port P] [--rate R] [--requests N] \
   [--conns C] [--zipf S] [--scale S] [--seed N] [--domains N] \
   [--max-inflight N] [--reconnects N] [--chaos SPEC] [--breaker] \
   [--tolerate-drain] [--tolerate-resets]"

let set_smoke () =
  (* CI bit-rot gate: tiny inputs, enough pressure to exercise the
     shed path (4 connections racing for 2 admission slots). *)
  scale := 0.05;
  num_requests := 60;
  rate := 100.;
  conns := 4;
  domains := 2;
  max_inflight := 2

let args =
  [
    ("--scale", Arg.Set_float scale, "S benchmark input-size scale (default 0.35)");
    ("--requests", Arg.Set_int num_requests, "N total sends (default 200)");
    ("--rate", Arg.Set_float rate, "R offered load, requests/second (default 50)");
    ("--conns", Arg.Set_int conns, "C client connections (default 8)");
    ("--zipf", Arg.Set_float zipf_s, "S Zipf skew exponent (default 1.1)");
    ("--seed", Arg.Set_int seed, "N RNG seed for mix and arrivals (default 0xbeef)");
    ( "--port",
      Arg.Set_int port,
      "P drive an external `locmap serve` (default: self-host in-process)" );
    ("--host", Arg.Set_string host, "ADDR server address (default 127.0.0.1)");
    ( "--domains",
      Arg.Set_int domains,
      "N worker domains for the self-hosted server (default 4)" );
    ( "--max-inflight",
      Arg.Set_int max_inflight,
      "N admission budget of the self-hosted server (default 4)" );
    ( "--reconnects",
      Arg.Set_int max_reconnects,
      "N per-connection reconnect budget after a reset (default 5)" );
    ( "--chaos",
      Arg.Set_string chaos_spec,
      "SPEC socket fault injection for the self-hosted server (see \
       Net.Chaos.of_spec, e.g. seed=1,short=0.3,reset=0.5)" );
    ( "--breaker",
      Arg.Set breaker,
      " enable the brownout circuit breaker on the self-hosted server" );
    ( "--tolerate-drain",
      Arg.Set tolerate_drain,
      " count resets and unsent/unanswered tails as drained, not failed" );
    ( "--tolerate-resets",
      Arg.Set tolerate_resets,
      " count connection resets (and their unsent tails) as expected" );
    ( "--smoke",
      Arg.Unit set_smoke,
      " quick CI configuration (scale 0.05, 60 requests, 4 conns)" );
  ]

(* Same universe and Zipf sampling as service_bench: every registry
   workload on private and shared LLC, popularity decoupled from
   registry order by a seeded permutation. *)
let universe () =
  List.concat_map
    (fun llc ->
      List.map
        (fun name ->
          let machine = { Machine.Config.default with llc_org = llc } in
          Service.Request.make ~scale:!scale ~machine name)
        Workloads.Registry.names)
    [ Cache.Llc.Private; Cache.Llc.Shared ]
  |> Array.of_list

(* Zipf request mix and Poisson arrivals, via the shared generator in
   lib/sched — Sched.Arrivals consumes the RNG in exactly the order the
   hand-rolled versions here used to, so fixed seeds reproduce the same
   request streams as before the refactor. *)
let zipf_mix rng universe n =
  let z = Sched.Arrivals.zipf rng ~s:!zipf_s ~n:(Array.length universe) in
  Array.init n (fun _ -> universe.(Sched.Arrivals.zipf_sample z rng))

(* Poisson arrivals: absolute offsets (seconds) with Exp(rate)
   inter-arrival gaps. *)
let arrival_times rng n =
  Sched.Arrivals.poisson_times rng ~rate:!rate ~n

(* ------------------------------------------------------------------ *)
(* Per-connection client: send at the scheduled instants, match
   responses FIFO, classify by the wire fault kind; survive resets.    *)

type outcome =
  | Served
  | Degraded
  | Shed of string  (* Overload, by scope: inflight/draining/quota/... *)
  | Failed of string
  | Reset  (* sent, but the connection died before the answer *)
  | Unsent  (* never sent: no live connection and no reconnect budget *)
  | Unanswered

let classify line =
  match Service.Json.of_string line with
  | Error e -> Failed (Printf.sprintf "unparseable response: %s" e)
  | Ok j -> (
      match Option.map Service.Json.to_bool (Service.Json.member "ok" j) with
      | Some (Ok true) ->
          let degraded =
            match Service.Json.member "result" j with
            | Some r -> (
                match
                  Option.map Service.Json.to_bool
                    (Service.Json.member "degraded" r)
                with
                | Some (Ok true) -> true
                | _ -> false)
            | None -> false
          in
          if degraded then Degraded else Served
      | Some (Ok false) -> (
          match Service.Json.member "error" j with
          | Some e -> (
              match
                Option.map Service.Json.to_str (Service.Json.member "kind" e)
              with
              | Some (Ok "overload") ->
                  let scope =
                    match
                      Option.map Service.Json.to_str
                        (Service.Json.member "scope" e)
                    with
                    | Some (Ok s) -> s
                    | _ -> "?"
                  in
                  Shed scope
              | Some (Ok k) -> Failed k
              | _ -> Failed "malformed error object")
          | None -> Failed "missing error object")
      | _ -> Failed "missing ok field")

type conn_result = {
  outcomes : outcome array;  (* indexed by this connection's send order *)
  reconnects : int;  (* successful re-connections after a reset *)
}

let ms_of_ns ns = Obs.Clock.ns_to_ms ns

let run_conn ~addr ~t0_ns ~schedule ~ok_hist ~shed_hist () =
  let n = Array.length schedule in
  let outcomes = Array.make n Unanswered in
  let sent_ns = Array.make n 0L in
  let buf = Bytes.create 16384 in
  (* Connection state. [inflight] holds schedule indexes sent on the
     *current* connection and not yet answered — exactly the requests a
     mid-burst reset loses. The frame reader is per-connection: a
     partial line cut off by a reset must be discarded with it, never
     matched FIFO against a later send. *)
  let fd = ref None in
  let reader = ref (Net.Frame.create ()) in
  let inflight = Queue.create () in
  let reconnects = ref 0 in
  let connect_budget = ref (1 + max 0 !max_reconnects) in
  let connect () =
    if !connect_budget <= 0 then false
    else begin
      decr connect_budget;
      let s = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect s addr with
      | exception Unix.Unix_error (_, _, _) ->
          (try Unix.close s with Unix.Unix_error _ -> ());
          false
      | () ->
          (try Unix.setsockopt s Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          fd := Some s;
          reader := Net.Frame.create ();
          true
    end
  in
  let record line =
    (* FIFO match against this connection's window; a line with no
       pending send is unsolicited (the conn-cap reject, an idle
       notice) and is dropped, not matched. *)
    match Queue.take_opt inflight with
    | None -> ()
    | Some i ->
        let lat = ms_of_ns (Int64.sub (Obs.Clock.now_ns ()) sent_ns.(i)) in
        let o = classify line in
        outcomes.(i) <- o;
        (match o with
        | Served | Degraded -> Obs.Metrics.observe ok_hist lat
        | Shed _ -> Obs.Metrics.observe shed_hist lat
        | Failed _ | Reset | Unsent | Unanswered -> ())
  in
  let pump_frames () =
    let rec go () =
      match Net.Frame.next !reader with
      | Some (Net.Frame.Line l) ->
          record l;
          go ()
      | Some (Net.Frame.Too_long _) ->
          record "";
          go ()
      | None -> ()
    in
    go ()
  in
  (* The connection died: answer-less sends become Reset, and the
     reader (holding at most a truncated partial line) is dropped. *)
  let drop_conn () =
    (match !fd with
    | Some s -> (try Unix.close s with Unix.Unix_error _ -> ())
    | None -> ());
    fd := None;
    pump_frames ();
    Queue.iter (fun i -> outcomes.(i) <- Reset) inflight;
    Queue.clear inflight
  in
  let read_once ~block =
    match !fd with
    | None -> ()
    | Some s -> (
        let timeout = if block then 0.2 else 0. in
        match Unix.select [ s ] [] [] timeout with
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | [], _, _ -> ()
        | _ -> (
            match Unix.read s buf 0 (Bytes.length buf) with
            | 0 -> drop_conn ()
            | got ->
                Net.Frame.feed !reader buf 0 got;
                pump_frames ()
            | exception Unix.Unix_error (EINTR, _, _) -> ()
            | exception Unix.Unix_error (_, _, _) -> drop_conn ()))
  in
  let send_line i line =
    match !fd with
    | None -> false
    | Some s -> (
        let b = Bytes.unsafe_of_string line in
        let len = Bytes.length b in
        let rec go off =
          if off < len then
            match Unix.write s b off (len - off) with
            | w -> go (off + w)
            | exception Unix.Unix_error (EINTR, _, _) -> go off
        in
        match go 0 with
        | () ->
            Queue.push i inflight;
            true
        | exception Unix.Unix_error (_, _, _) ->
            (* The send itself hit the dead socket: this request was
               (at least partially) on the wire — a reset in flight. *)
            outcomes.(i) <- Reset;
            drop_conn ();
            false)
  in
  ignore (connect () : bool);
  Array.iteri
    (fun i (at, line) ->
      (* Hold the open-loop schedule: sleep to the absolute offset,
         draining any responses that already arrived. *)
      let rec wait () =
        let now = ms_of_ns (Int64.sub (Obs.Clock.now_ns ()) t0_ns) /. 1000. in
        if now < at then begin
          read_once ~block:false;
          (try Unix.sleepf (Float.min 0.002 (at -. now))
           with Unix.Unix_error (EINTR, _, _) -> ());
          wait ()
        end
      in
      wait ();
      (* A reset between sends: reconnect within budget and press on
         with the remaining schedule. *)
      if !fd = None && connect () then incr reconnects;
      match !fd with
      | None -> outcomes.(i) <- Unsent
      | Some _ ->
          sent_ns.(i) <- Obs.Clock.now_ns ();
          ignore (send_line i (line ^ "\n") : bool))
    schedule;
  (* Tail: everything is sent; block for the remaining responses until
     the server answered them all or closed on us. *)
  (match !fd with
  | Some s -> (
      try Unix.shutdown s Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ())
  | None -> ());
  while !fd <> None && not (Queue.is_empty inflight) do
    read_once ~block:true
  done;
  (match !fd with
  | Some s -> (try Unix.close s with Unix.Unix_error _ -> ())
  | None -> ());
  { outcomes; reconnects = !reconnects }

(* ------------------------------------------------------------------ *)

let percentile (h : Obs.Metrics.hist_view) q =
  if h.count = 0 then nan
  else
    let rank =
      max 1 (int_of_float (Float.ceil (q *. float_of_int h.count)))
    in
    let rec find i =
      if i >= Array.length h.counts - 1 then Float.infinity
      else if h.counts.(i) >= rank then h.upper.(i)
      else find (i + 1)
    in
    find 0

let pp_pctl v =
  if v <> v (* nan *) then "n/a"
  else if v = Float.infinity then ">5000ms"
  else Printf.sprintf "<=%gms" v

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let chaos =
    if !chaos_spec = "" then Net.Chaos.none
    else
      match Net.Chaos.of_spec !chaos_spec with
      | Ok p -> p
      | Error e ->
          prerr_endline e;
          exit 2
  in
  let rng = Random.State.make [| !seed |] in
  let mix = zipf_mix rng (universe ()) !num_requests in
  let arrivals = arrival_times rng !num_requests in
  let duration = arrivals.(!num_requests - 1) in

  (* Self-host unless --port points at an external server. *)
  let hosted =
    if !port <> 0 then None
    else begin
      let api =
        Service.Api.create ~cache_capacity:64 ~num_domains:!domains ()
      in
      let config =
        {
          Net.Server.default_config with
          Net.Server.host = !host;
          max_inflight = !max_inflight;
          max_conns = !conns + 4;
          chaos;
          breaker =
            (if !breaker then Some Net.Breaker.default_config else None);
        }
      in
      let server = Net.Server.create ~config ~api () in
      port := Net.Server.port server;
      Some (api, server)
    end
  in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string !host, !port) in

  Printf.printf
    "open-loop Poisson load: %d requests at %.0f req/s over %d conns \
     (Zipf s=%.2f, scale %.2f, ~%.1fs)\n"
    !num_requests !rate !conns !zipf_s !scale duration;
  (match hosted with
  | Some _ ->
      Printf.printf
        "self-hosted server: %d domains, admission budget %d%s%s\n%!"
        !domains !max_inflight
        (if Net.Chaos.is_none chaos then ""
         else Printf.sprintf ", chaos [%s]" !chaos_spec)
        (if !breaker then ", breaker on" else "")
  | None -> Printf.printf "external server: %s:%d\n%!" !host !port);

  (* Shared latency histograms; the registry is thread-safe, so all
     connection domains observe into the same two instruments. *)
  let m = Obs.Metrics.create () in
  let ok_hist = Obs.Metrics.histogram m ~help:"served latency" "loadgen_ok_ms" in
  let shed_hist =
    Obs.Metrics.histogram m ~help:"shed latency" "loadgen_shed_ms"
  in

  (* Round-robin the global schedule across connections; each keeps
     its sends in global arrival order. *)
  let schedules =
    Array.init !conns (fun c ->
        let items = ref [] in
        for i = !num_requests - 1 downto 0 do
          if i mod !conns = c then
            items :=
              (arrivals.(i), Service.Json.to_string (Service.Request.to_json mix.(i)))
              :: !items
        done;
        Array.of_list !items)
  in
  let t0_ns = Obs.Clock.now_ns () in
  let doms =
    Array.map
      (fun schedule ->
        Domain.spawn (run_conn ~addr ~t0_ns ~schedule ~ok_hist ~shed_hist))
      schedules
  in
  let results = Array.map Domain.join doms in
  let elapsed = ms_of_ns (Int64.sub (Obs.Clock.now_ns ()) t0_ns) /. 1000. in

  let count p =
    Array.fold_left
      (fun acc r ->
        acc + Array.fold_left (fun a o -> if p o then a + 1 else a) 0 r.outcomes)
      0 results
  in
  let served = count (function Served | Degraded -> true | _ -> false) in
  let degraded = count (function Degraded -> true | _ -> false) in
  let shed = count (function Shed _ -> true | _ -> false) in
  let failed = count (function Failed _ -> true | _ -> false) in
  let reset = count (function Reset -> true | _ -> false) in
  let unsent = count (function Unsent -> true | _ -> false) in
  let unanswered = count (function Unanswered -> true | _ -> false) in
  let reconnects =
    Array.fold_left (fun a r -> a + r.reconnects) 0 results
  in
  let shed_by_scope =
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun r ->
        Array.iter
          (function
            | Shed scope ->
                Hashtbl.replace tbl scope
                  (1 + Option.value ~default:0 (Hashtbl.find_opt tbl scope))
            | _ -> ())
          r.outcomes)
      results;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  Array.iter
    (fun r ->
      Array.iter
        (function
          | Failed k -> Printf.printf "!! failed response: %s\n" k
          | _ -> ())
        r.outcomes)
    results;

  Printf.printf "\n%-22s %d\n" "sent:" (!num_requests - unsent);
  Printf.printf "%-22s %d (%d degraded)\n" "served:" served degraded;
  Printf.printf "%-22s %d (%.1f%% of sends)%s\n" "shed (overload):" shed
    (100. *. float_of_int shed /. float_of_int (max 1 !num_requests))
    (match shed_by_scope with
    | [] -> ""
    | l ->
        " — "
        ^ String.concat ", "
            (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) l));
  if failed > 0 then Printf.printf "%-22s %d\n" "failed:" failed;
  if reset + reconnects > 0 then
    Printf.printf "%-22s %d in flight (%d reconnects)\n" "reset:" reset
      reconnects;
  if unsent + unanswered > 0 then
    Printf.printf "%-22s %d unanswered, %d unsent\n" "lost to drain:"
      unanswered unsent;
  Printf.printf "%-22s %.1f req/s offered, %.1f req/s served\n" "throughput:"
    (float_of_int !num_requests /. elapsed)
    (float_of_int served /. elapsed);
  let view h =
    List.find_map
      (fun (s : Obs.Metrics.sample) ->
        match s.value with
        | Obs.Metrics.Histogram v when s.name = h -> Some v
        | _ -> None)
      (Obs.Metrics.snapshot m)
  in
  (match view "loadgen_ok_ms" with
  | Some v when v.count > 0 ->
      Printf.printf "%-22s p50 %s, p99 %s\n" "served latency:"
        (pp_pctl (percentile v 0.50))
        (pp_pctl (percentile v 0.99))
  | _ -> ());
  (match view "loadgen_shed_ms" with
  | Some v when v.count > 0 ->
      Printf.printf "%-22s p50 %s, p99 %s (shedding must be cheap)\n"
        "shed latency:"
        (pp_pctl (percentile v 0.50))
        (pp_pctl (percentile v 0.99))
  | _ -> ());

  let lost_in_server =
    match hosted with
    | None -> 0
    | Some (api, server) ->
        (match Net.Server.breaker_state server with
        | Some st ->
            Printf.printf "%-22s %s\n" "breaker:" (Net.Breaker.state_name st)
        | None -> ());
        Net.Server.request_stop server;
        let st = Net.Server.drain server in
        Format.printf "%a@." Net.Server.pp_stats st;
        Service.Api.shutdown api;
        st.Net.Server.lost
  in
  (* Resets (and the unsent tail a spent reconnect budget leaves) are
     expected under --tolerate-resets; drain additionally strands
     unanswered sends. Failures and server-side losses never are. *)
  let client_losses = reset + unsent + unanswered in
  let ok =
    failed = 0 && lost_in_server = 0
    && (client_losses = 0 || !tolerate_drain || !tolerate_resets)
  in
  if not ok then begin
    Printf.printf
      "FAILED: %d failed, %d reset, %d unsent, %d unanswered, %d lost in \
       server\n"
      failed reset unsent unanswered lost_in_server;
    exit 1
  end;
  print_endline "ok"
