(* Cluster-scheduler benchmark: the three placement policies (fcfs,
   easy backfilling, locality-aware) over the 21-workload registry at a
   sweep of offered loads.

     dune exec bench/sched_bench.exe                 # or: make bench-sched
     dune exec bench/sched_bench.exe -- --smoke      # CI bit-rot gate

   For every offered load the bench synthesises one Poisson/Zipf job
   trace (fixed seed) and replays it under each policy at every
   requested domain count, requiring the full per-job schedule dumps to
   be byte-identical across domain counts — the cluster-level extension
   of the analysis layer's determinism guarantee. All recorded numbers
   are modelled (ticks, counts, ratios), never wall times, so
   BENCH_sched.json itself is byte-identical however many domains ran
   the analysis.

   The acceptance gate: at >= 1 load point the locality-aware policy
   must beat BOTH fcfs and easy on mean stretch or on deadline-miss
   rate while keeping utilization within 5% of easy; otherwise the
   bench exits non-zero. *)

let scale = ref 0.1
let jobs = ref 300
let seed = ref 0xC0DE
let zipf_s = ref 1.1
let beta = ref 0.8
let loads = ref [ 0.5; 0.7; 0.9; 1.1 ]
let domain_counts = ref [ 1; 2; 4; 8 ]
let out_file = ref "BENCH_sched.json"
let smoke = ref false
let only = ref []

let usage =
  "sched_bench.exe [--scale S] [--jobs N] [--seed N] [--zipf S] [--beta B] \
   [--loads 0.5,0.9] [--domains 1,2,4,8] [--workloads W1,W2] [--out FILE] \
   [--smoke]"

let args =
  [
    ("--scale", Arg.Set_float scale, "S oracle input-size scale (default 0.1)");
    ("--jobs", Arg.Set_int jobs, "N jobs per trace (default 300)");
    ("--seed", Arg.Set_int seed, "N trace seed (default 0xC0DE)");
    ("--zipf", Arg.Set_float zipf_s, "S workload-mix skew (default 1.1)");
    ("--beta", Arg.Set_float beta, "B locality dilation strength (default 0.8)");
    ( "--loads",
      Arg.String
        (fun s ->
          loads := String.split_on_char ',' s |> List.map float_of_string),
      "LIST offered loads (default 0.5,0.7,0.9,1.1)" );
    ( "--domains",
      Arg.String
        (fun s ->
          domain_counts := String.split_on_char ',' s |> List.map int_of_string),
      "LIST domain counts for the oracle analysis (default 1,2,4,8)" );
    ( "--workloads",
      Arg.String (fun s -> only := String.split_on_char ',' s),
      "LIST restrict the mix to these workloads" );
    ("--out", Arg.Set_string out_file, "FILE output path (default BENCH_sched.json)");
    ( "--smoke",
      Arg.Unit
        (fun () ->
          smoke := true;
          jobs := 60;
          loads := [ 0.9 ];
          domain_counts := [ 1; 2 ];
          if !out_file = "BENCH_sched.json" then
            out_file := "BENCH_sched_smoke.json"),
      " quick CI variant: 6 workloads, 60 jobs, one load, domains 1,2" );
  ]

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let names =
    if !only <> [] then !only
    else if !smoke then
      [ "mxm"; "jacobi-3d"; "barnes"; "fft"; "swim"; "moldyn" ]
    else Workloads.Registry.names
  in
  let cfg = Machine.Config.default in
  Printf.printf "sched bench: %d workloads, %d jobs/trace, seed %#x, beta %.2f\n%!"
    (List.length names) !jobs !seed !beta;
  (* One oracle per domain count. Every downstream number must agree
     byte-for-byte across these — the dumps are compared below. *)
  let oracles =
    List.map
      (fun d ->
        let pool = Par.Pool.create ~num_domains:(if d <= 1 then 0 else d) () in
        let oracle =
          Sched.Oracle.build ~pool ~beta:!beta ~scale:!scale cfg names
        in
        Par.Pool.shutdown pool;
        (d, oracle))
      !domain_counts
  in
  let reference_oracle = snd (List.hd oracles) in
  let rows =
    List.map
      (fun load ->
        (* (dump bytes, results) per domain count; results are reused
           from the first entry once the dumps are proven identical. *)
        let per_domain =
          List.map
            (fun (d, oracle) ->
              let specs =
                Sched.Synth.jobs ~zipf_s:!zipf_s ~oracle ~seed:!seed ~load
                  ~n:!jobs ()
              in
              let results =
                List.map
                  (fun policy -> Sched.Sim.run ~oracle ~policy specs)
                  Sched.Policy.all
              in
              let dump =
                String.concat "" (List.map Sched.Sim.render results)
              in
              (d, dump, results))
            oracles
        in
        let ref_d, ref_dump, results = List.hd per_domain in
        List.iter
          (fun (d, dump, _) ->
            if dump <> ref_dump then begin
              Printf.eprintf
                "FATAL: load %.2f: %d-domain schedule differs from \
                 %d-domain schedule\n"
                load d ref_d;
              exit 1
            end)
          per_domain;
        Printf.printf "\noffered load %.2f:\n%!" load;
        List.iter
          (fun (r : Sched.Sim.result) ->
            Format.printf "%a@." Sched.Sim.pp_totals r.Sched.Sim.totals)
          results;
        (load, List.map (fun (r : Sched.Sim.result) -> r.Sched.Sim.totals) results))
      !loads
  in
  ignore reference_oracle;
  (* Acceptance: locality-aware must win somewhere, without giving up
     utilization against easy. *)
  let find_policy totals name =
    List.find (fun (t : Sched.Sim.totals) -> t.Sched.Sim.policy = name) totals
  in
  let point_verdict (load, totals) =
    let fcfs = find_policy totals "fcfs"
    and easy = find_policy totals "easy"
    and local = find_policy totals "local" in
    let stretch_win =
      local.Sched.Sim.mean_stretch < fcfs.Sched.Sim.mean_stretch
      && local.Sched.Sim.mean_stretch < easy.Sched.Sim.mean_stretch
    in
    let miss_win =
      local.Sched.Sim.miss_rate < fcfs.Sched.Sim.miss_rate
      && local.Sched.Sim.miss_rate < easy.Sched.Sim.miss_rate
    in
    let util_ratio =
      if easy.Sched.Sim.utilization = 0. then 1.
      else local.Sched.Sim.utilization /. easy.Sched.Sim.utilization
    in
    let util_ok = util_ratio >= 0.95 in
    (load, stretch_win, miss_win, util_ratio, (stretch_win || miss_win) && util_ok)
  in
  let verdicts = List.map point_verdict rows in
  Printf.printf "\nacceptance (local vs fcfs+easy):\n";
  List.iter
    (fun (load, sw, mw, ur, pass) ->
      Printf.printf
        "  load %.2f: stretch win %b, miss-rate win %b, util vs easy %.3f -> %s\n"
        load sw mw ur
        (if pass then "pass" else "fail"))
    verdicts;
  let passed = List.exists (fun (_, _, _, _, p) -> p) verdicts in
  (* The artifact: modelled numbers only, so the file's bytes do not
     depend on how many domains ran the analysis. *)
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"bench\":\"sched\",";
  Buffer.add_string b
    (Printf.sprintf
       "\"scale\":%.6f,\"jobs\":%d,\"seed\":%d,\"zipf\":%.6f,\"beta\":%.6f,"
       !scale !jobs !seed !zipf_s !beta);
  Buffer.add_string b
    (Printf.sprintf "\"smoke\":%b,\"domains\":[%s],\"deterministic\":true,"
       !smoke
       (String.concat "," (List.map string_of_int !domain_counts)));
  Buffer.add_string b
    (Printf.sprintf "\"workloads\":[%s],"
       (String.concat ","
          (List.map (fun n -> Printf.sprintf "\"%s\"" n) names)));
  Buffer.add_string b "\"loads\":[";
  List.iteri
    (fun i (load, totals) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"load\":%.6f,\"policies\":[" load);
      List.iteri
        (fun j t ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Sched.Sim.totals_to_json t))
        totals;
      Buffer.add_string b "]}")
    rows;
  Buffer.add_string b "],\"acceptance\":[";
  List.iteri
    (fun i (load, sw, mw, ur, pass) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"load\":%.6f,\"stretch_win\":%b,\"miss_rate_win\":%b,\
            \"utilization_vs_easy\":%.6f,\"pass\":%b}"
           load sw mw ur pass))
    verdicts;
  Buffer.add_string b (Printf.sprintf "],\"pass\":%b}\n" passed);
  (if !out_file = "/dev/null" then ()
   else begin
     let oc = open_out !out_file in
     output_string oc (Buffer.contents b);
     close_out oc;
     Printf.printf "wrote %s\n" !out_file
   end);
  if not passed then begin
    Printf.eprintf
      "FATAL: locality-aware placement never beat fcfs+easy on stretch or \
       miss rate with utilization within 5%% of easy\n";
    exit 1
  end;
  Printf.printf
    "acceptance ok: local wins at %d/%d load points; schedules byte-identical \
     across domains [%s]\n"
    (List.length (List.filter (fun (_, _, _, _, p) -> p) verdicts))
    (List.length verdicts)
    (String.concat ";" (List.map string_of_int !domain_counts))
