(* Analysis fast-path benchmark: summary construction per registry
   workload, sequential seed path vs the tiered fast path at
   1/2/4/8 domains.

     dune exec bench/analysis_bench.exe                # or: make bench-analysis
     dune exec bench/analysis_bench.exe -- --smoke     # CI bit-rot gate

   For every workload the bench times
     - the *seed* CME path: a faithful reimplementation of the
       pre-fast-path code (per-access closure via [Trace.iter_range],
       direct [Addr_map] translate/bank/MC calls, one streamed
       predictor) — the baseline the speedup targets are against;
     - [Analysis.cme_summaries] at each domain count (1 = no pool),
       with the symbolic tier on (the default);
     - the seed and fast observed paths, sequential by design (the
       replay threads shared cache state through the whole trace).

   It also records per-tier coverage (how many accesses the
   symbolic/periodic/traced CME tiers resolved) and enforces the
   observed-path regression gate: the fast replay must not be slower
   than the seed replay on any workload (with a noise margin), or the
   bench exits non-zero — in CI this runs as the --smoke gate.

   Results go to BENCH_analysis.json, including the geomean CME speedup
   of the 8-domain fast path over the seed sequential path. *)

let scale = ref 0.35
let domain_counts = ref [ 1; 2; 4; 8 ]
let smoke = ref false
let out_file = ref "BENCH_analysis.json"
let llc = ref Cache.Llc.Shared
let only = ref []

let usage =
  "analysis_bench.exe [--scale S] [--domains 1,2,4,8] [--llc private|shared] \
   [--out FILE] [--smoke]"

let args =
  [
    ( "--scale",
      Arg.Set_float scale,
      "S workload input-size scale (default 0.35)" );
    ( "--domains",
      Arg.String
        (fun s ->
          domain_counts := String.split_on_char ',' s |> List.map int_of_string),
      "LIST domain counts (default 1,2,4,8)" );
    ( "--llc",
      Arg.String
        (fun s ->
          llc :=
            match s with
            | "private" -> Cache.Llc.Private
            | "shared" -> Cache.Llc.Shared
            | _ -> raise (Arg.Bad ("unknown llc organisation " ^ s))),
      "ORG llc organisation (default shared — exercises region lookups)" );
    ("--out", Arg.Set_string out_file, "FILE output path (default BENCH_analysis.json)");
    ( "--only",
      Arg.String
        (fun s -> only := String.split_on_char ',' s),
      "LIST restrict to these workloads (comma-separated)" );
    ( "--smoke",
      Arg.Unit
        (fun () ->
          smoke := true;
          scale := 0.1;
          domain_counts := [ 1; 2 ];
          (* Keep the committed full-run artifact out of smoke's way:
             a CI smoke run must not dirty BENCH_analysis.json. *)
          if !out_file = "BENCH_analysis.json" then
            out_file := "BENCH_analysis_smoke.json"),
      " quick CI variant: 3 workloads, scale 0.1, domains 1,2" );
  ]

(* Best of [repeat] runs: each path is deterministic, so the minimum is
   the cleanest estimate of its cost on a noisy shared machine. The
   observed paths use more repeats — they are the ones a regression
   gate compares, and small workloads finish in single-digit
   milliseconds where scheduler noise dominates a single run. *)
let time ?(repeat = 3) f =
  let once () =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let r, ms0 = once () in
  let best = ref ms0 in
  for _ = 2 to repeat do
    let _, ms = once () in
    if ms < !best then best := ms
  done;
  (r, !best)

(* Time two deterministic paths in alternation: back-to-back runs see
   the same machine conditions (core placement, frequency), so their
   minima stay comparable even when the absolute numbers wander — on
   millisecond-scale workloads, timing the paths in separate blocks can
   put them in different scheduling regimes entirely. The observed
   regression gate compares these. *)
let time2 ?(repeat = 5) f g =
  let once h =
    let t0 = Unix.gettimeofday () in
    let r = h () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let rf, msf0 = once f in
  let rg, msg0 = once g in
  let bf = ref msf0 and bg = ref msg0 in
  for _ = 2 to repeat do
    let _, msf = once f in
    if msf < !bf then bf := msf;
    let _, msg = once g in
    if msg < !bg then bg := msg
  done;
  (rf, !bf, rg, !bg)

(* The seed implementation of [cme_summaries], kept verbatim-in-spirit
   so the speedup is measured against what the tree actually shipped:
   closure-per-access expansion and direct address-map calls. *)
let seed_cme_summaries (cfg : Machine.Config.t) amap trace ~sets =
  let prog = Ir.Trace.program trace in
  let layout = Ir.Trace.layout trace in
  let regions = Locmap.Region.create cfg in
  let shared = Cache.Llc.equal cfg.llc_org Cache.Llc.Shared in
  let summaries =
    Array.init (Array.length sets) (fun _ ->
        Locmap.Summary.create
          ~num_mcs:(Machine.Addr_map.num_mcs amap)
          ~num_regions:(Machine.Config.num_regions cfg))
  in
  let predictor = ref None in
  let current_nest = ref (-1) in
  Array.iteri
    (fun k (s : Ir.Iter_set.t) ->
      if s.nest <> !current_nest then begin
        current_nest := s.nest;
        predictor := Some (Cme.create cfg prog layout ~nest:s.nest)
      end;
      let p = Option.get !predictor in
      let sm = summaries.(k) in
      Ir.Trace.iter_range ~step:0 trace ~nest:s.nest ~lo:s.lo ~hi:s.hi
        (fun ~addr ~write:_ ->
          let pa = Machine.Addr_map.translate amap addr in
          match Cme.classify p with
          | Cme.L1_hit -> Locmap.Summary.add_l1_hit sm
          | Cme.Llc_hit ->
              let region =
                if shared then
                  Locmap.Region.of_node regions
                    (Machine.Addr_map.bank_node_of amap pa)
                else 0
              in
              Locmap.Summary.add_llc_hit sm ~region
          | Cme.Llc_miss ->
              let bank_region =
                if shared then
                  Locmap.Region.of_node regions
                    (Machine.Addr_map.bank_node_of amap pa)
                else -1
              in
              Locmap.Summary.add_llc_miss sm ~bank_region
                ~mc:(Machine.Addr_map.mc_of amap pa)))
    sets;
  summaries

(* Seed observed path, same vintage: closure expansion, per-access
   translate and bank lookups against the address map. *)
let seed_observed_summaries (cfg : Machine.Config.t) amap trace ~sets =
  let regions = Locmap.Region.create cfg in
  let shared = Cache.Llc.equal cfg.llc_org Cache.Llc.Shared in
  let l1 =
    Cache.Sa_cache.create ~size:cfg.l1_size ~assoc:cfg.l1_assoc
      ~line_size:cfg.l1_line ()
  in
  let banks =
    if shared then
      Array.init (Machine.Config.num_cores cfg) (fun _ ->
          Cache.Sa_cache.create ~size:cfg.l2_size ~assoc:cfg.l2_assoc
            ~line_size:cfg.l2_line ())
    else
      [|
        Cache.Sa_cache.create ~size:cfg.l2_size ~assoc:cfg.l2_assoc
          ~line_size:cfg.l2_line ();
      |]
  in
  let summaries =
    Array.init (Array.length sets) (fun _ ->
        Locmap.Summary.create
          ~num_mcs:(Machine.Addr_map.num_mcs amap)
          ~num_regions:(Machine.Config.num_regions cfg))
  in
  Array.iteri
    (fun k (s : Ir.Iter_set.t) ->
      let sm = summaries.(k) in
      Ir.Trace.iter_range ~step:0 trace ~nest:s.nest ~lo:s.lo ~hi:s.hi
        (fun ~addr ~write ->
          let pa = Machine.Addr_map.translate amap addr in
          match Cache.Sa_cache.access l1 ~addr:pa ~write with
          | Cache.Sa_cache.Hit -> Locmap.Summary.add_l1_hit sm
          | Cache.Sa_cache.Miss _ -> (
              let bank_node, bank =
                if shared then
                  let b = Machine.Addr_map.bank_node_of amap pa in
                  (b, banks.(b))
                else (0, banks.(0))
              in
              match Cache.Sa_cache.access bank ~addr:pa ~write with
              | Cache.Sa_cache.Hit ->
                  let region =
                    if shared then Locmap.Region.of_node regions bank_node
                    else 0
                  in
                  Locmap.Summary.add_llc_hit sm ~region
              | Cache.Sa_cache.Miss _ ->
                  let bank_region =
                    if shared then Locmap.Region.of_node regions bank_node
                    else -1
                  in
                  Locmap.Summary.add_llc_miss sm ~bank_region
                    ~mc:(Machine.Addr_map.mc_of amap pa))))
    sets;
  summaries

let total_accesses trace sets =
  Array.fold_left
    (fun acc (s : Ir.Iter_set.t) ->
      acc
      + (Ir.Iter_set.size s * Ir.Trace.accesses_per_par_iter trace ~nest:s.nest))
    0 sets

let summaries_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (x : Locmap.Summary.t) (y : Locmap.Summary.t) ->
         x.mc_counts = y.mc_counts
         && x.region_counts = y.region_counts
         && x.miss_region_counts = y.miss_region_counts
         && x.llc_hits = y.llc_hits
         && x.llc_misses = y.llc_misses
         && x.l1_hits = y.l1_hits)
       a b

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let names =
    if !only <> [] then !only
    else if !smoke then [ "mxm"; "jacobi-3d"; "barnes" ]
    else Workloads.Registry.names
  in
  let cfg = { Machine.Config.default with llc_org = !llc } in
  let pools =
    List.map
      (fun d -> (d, Par.Pool.create ~num_domains:(if d <= 1 then 0 else d) ()))
      !domain_counts
  in
  Printf.printf "analysis bench: scale %.2f, llc %s, %d workloads\n%!" !scale
    (match !llc with Cache.Llc.Private -> "private" | _ -> "shared")
    (List.length names);
  Printf.printf "%-12s %9s | %9s %s | %9s %9s\n" "workload" "accesses"
    "cme-seed"
    (String.concat " "
       (List.map (fun d -> Printf.sprintf "cme-%dd" d) !domain_counts))
    "obs-seed" "obs-fast";
  let rows =
    List.map
      (fun name ->
        let p = Harness.Experiment.prepare_name ~scale:!scale name in
        let trace = p.Harness.Experiment.trace in
        let pt = Mem.Page_table.create ~page_size:cfg.page_size () in
        let amap = Machine.Addr_map.create cfg pt in
        let sets =
          Ir.Iter_set.partition p.Harness.Experiment.prog
            ~fraction:cfg.iter_set_fraction
        in
        let accesses = total_accesses trace sets in
        let memo = Locmap.Line_memo.create cfg amap (Ir.Trace.layout trace) in
        (* Tier coverage, counted once with instrumentation on (the
           timed runs below stay uninstrumented). *)
        let tiers =
          let im = Obs.Metrics.create () in
          ignore
            (Locmap.Analysis.cme_summaries ~memo ~metrics:im cfg amap trace
               ~sets);
          let v n = Obs.Metrics.counter_value (Obs.Metrics.counter im n) in
          ( v "locmap_cme_tier_symbolic_accesses_total",
            v "locmap_cme_tier_periodic_accesses_total",
            v "locmap_cme_tier_traced_accesses_total" )
        in
        let seed_sum, cme_seed_ms =
          time (fun () -> seed_cme_summaries cfg amap trace ~sets)
        in
        (* The PR-4 fast path, measured in-run: the same code with the
           symbolic tier disabled falls back to the periodic/traced
           walkers, which is exactly what shipped before the symbolic
           tier. Sequential, so the comparison against the 1-domain
           symbolic time isolates the algorithmic win from pool
           scaling. *)
        let pr4_sum, cme_pr4_ms =
          time (fun () ->
              Locmap.Analysis.cme_summaries ~memo ~symbolic:false cfg amap
                trace ~sets)
        in
        if not (summaries_equal seed_sum pr4_sum) then begin
          Printf.eprintf
            "FATAL: %s: symbolic-off CME summaries differ from seed\n" name;
          exit 1
        end;
        let cme_ms =
          List.map
            (fun (d, pool) ->
              let fast, ms =
                time (fun () ->
                    Locmap.Analysis.cme_summaries ~pool ~memo cfg amap trace
                      ~sets)
              in
              if not (summaries_equal seed_sum fast) then begin
                Printf.eprintf
                  "FATAL: %s: %d-domain fast CME summaries differ from seed\n"
                  name d;
                exit 1
              end;
              (d, ms))
            pools
        in
        let seed_obs, obs_seed_ms, fast_obs, obs_fast_ms =
          time2 ~repeat:5
            (fun () -> seed_observed_summaries cfg amap trace ~sets)
            (fun () ->
              fst
                (Locmap.Analysis.observed_summaries ~warm_pass:false ~memo cfg
                   amap trace ~sets))
        in
        if not (summaries_equal seed_obs fast_obs) then begin
          Printf.eprintf
            "FATAL: %s: fast observed summaries differ from seed\n" name;
          exit 1
        end;
        Printf.printf "%-12s %9d | %8.1fms %s | %8.1fms %8.1fms\n%!" name
          accesses cme_seed_ms
          (String.concat " "
             (List.map (fun (_, ms) -> Printf.sprintf "%7.1fms" ms) cme_ms))
          obs_seed_ms obs_fast_ms;
        (name, p.Harness.Experiment.entry.Workloads.Registry.kind, accesses,
         Array.length sets, cme_seed_ms, cme_pr4_ms, cme_ms, obs_seed_ms,
         obs_fast_ms, tiers))
      names
  in
  List.iter (fun (_, pool) -> Par.Pool.shutdown pool) pools;
  let max_domains = List.fold_left max 1 !domain_counts in
  let speedup_at_max (_, _, _, _, seed_ms, _, cme_ms, _, _, _) =
    seed_ms /. List.assoc max_domains cme_ms
  in
  let geomean =
    let logs = List.map (fun r -> log (speedup_at_max r)) rows in
    exp (List.fold_left ( +. ) 0. logs /. float_of_int (List.length logs))
  in
  Printf.printf
    "geomean cme_summaries speedup (%d domains vs seed sequential): %.2fx\n"
    max_domains geomean;
  (* Symbolic-tier win in isolation: regular workloads only (100%
     symbolic coverage), sequential 1-domain symbolic time vs the
     in-run PR-4 walker time, so neither cross-run machine drift nor
     pool scaling pollutes the ratio. *)
  let geomean_regular_vs_pr4 =
    let logs =
      List.filter_map
        (fun (_, kind, _, _, _, pr4_ms, cme_ms, _, _, _) ->
          match (kind, List.assoc_opt 1 cme_ms) with
          | Ir.Program.Regular, Some ms1 -> Some (log (pr4_ms /. ms1))
          | _ -> None)
        rows
    in
    if logs = [] then 1.0
    else exp (List.fold_left ( +. ) 0. logs /. float_of_int (List.length logs))
  in
  Printf.printf
    "geomean symbolic-vs-pr4 speedup (regular workloads, 1 domain): %.2fx\n"
    geomean_regular_vs_pr4;
  (* Observed-path regression gate: the fast replay does strictly less
     work per access than the seed replay, so it must not measure
     slower — a relative margin plus a 1 ms absolute allowance absorbs
     timer noise on workloads that finish in single-digit
     milliseconds. *)
  let obs_margin = if !smoke then 1.5 else 1.15 in
  let regressions =
    List.filter
      (fun (_, _, _, _, _, _, _, obs_seed_ms, obs_fast_ms, _) ->
        obs_fast_ms > (obs_seed_ms *. obs_margin) +. 1.0)
      rows
  in
  if regressions <> [] then begin
    List.iter
      (fun (name, _, _, _, _, _, _, obs_seed_ms, obs_fast_ms, _) ->
        Printf.eprintf
          "FATAL: %s: observed fast path %.1fms slower than seed %.1fms \
           (margin %.2fx)\n"
          name obs_fast_ms obs_seed_ms obs_margin)
      regressions;
    exit 1
  end;
  let json =
    Service.Json.Obj
      [
        ("scale", Service.Json.Float !scale);
        ( "llc",
          Service.Json.String
            (match !llc with Cache.Llc.Private -> "private" | _ -> "shared")
        );
        ( "domains",
          Service.Json.List
            (List.map (fun d -> Service.Json.Int d) !domain_counts) );
        ("smoke", Service.Json.Bool !smoke);
        ( "workloads",
          Service.Json.List
            (List.map
               (fun (name, kind, accesses, nsets, cme_seed_ms, cme_pr4_ms,
                     cme_ms, obs_seed_ms, obs_fast_ms, (t_sym, t_per, t_tr)) ->
                 Service.Json.Obj
                   [
                     ("name", Service.Json.String name);
                     ( "kind",
                       Service.Json.String
                         (match kind with
                         | Ir.Program.Regular -> "regular"
                         | Ir.Program.Irregular -> "irregular") );
                     ("accesses", Service.Json.Int accesses);
                     ("sets", Service.Json.Int nsets);
                     ("cme_seed_ms", Service.Json.Float cme_seed_ms);
                     ("cme_pr4_ms", Service.Json.Float cme_pr4_ms);
                     ( "cme_ms",
                       Service.Json.Obj
                         (List.map
                            (fun (d, ms) ->
                              (string_of_int d, Service.Json.Float ms))
                            cme_ms) );
                     ( "cme_speedup_max_domains",
                       Service.Json.Float
                         (cme_seed_ms /. List.assoc max_domains cme_ms) );
                     ("observed_seed_ms", Service.Json.Float obs_seed_ms);
                     ("observed_fast_ms", Service.Json.Float obs_fast_ms);
                     ( "tier_accesses",
                       Service.Json.Obj
                         [
                           ("symbolic", Service.Json.Int t_sym);
                           ("periodic", Service.Json.Int t_per);
                           ("traced", Service.Json.Int t_tr);
                         ] );
                   ])
               rows) );
        ("geomean_cme_speedup_max_domains_vs_seed", Service.Json.Float geomean);
        ( "geomean_regular_symbolic_vs_pr4_1d",
          Service.Json.Float geomean_regular_vs_pr4 );
      ]
  in
  let oc = open_out !out_file in
  output_string oc (Service.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" !out_file
