(* Observability-cost benchmark: what lib/obs costs the serving path.

     dune exec bench/obs_bench.exe                 # or: make bench-obs
     dune exec bench/obs_bench.exe -- --smoke      # CI configuration

   Phase 1 is the macro view: the same distinct-request set is served
   three ways — (a) no obs handles at all, (b) metrics + tracer
   registered but disabled (every instrument operation short-circuits
   on the enabled flag), (c) metrics + tracer enabled — best-of-N
   fresh-cache passes each. Targets: disabled ~0%, enabled < 2%
   overhead over (a). Both are informational (wall-clock noise on a
   loaded CI box easily exceeds 2%); the exit code only reflects that
   the three paths produced the same responses.

   Phase 2 is the micro view: the per-operation cost of a counter
   increment and a histogram observation, enabled vs disabled, in
   ns/op — the numbers behind the macro claim. *)

let scale = ref 0.2
let rounds = ref 3
let micro_ops = ref 5_000_000
let usage = "obs_bench.exe [--smoke] [--scale S] [--rounds N]"

let set_smoke () =
  scale := 0.05;
  rounds := 1;
  micro_ops := 200_000

let args =
  [
    ("--scale", Arg.Set_float scale, "S benchmark input-size scale (default 0.2)");
    ( "--rounds",
      Arg.Set_int rounds,
      "N fresh-cache passes per variant; best-of (default 3)" );
    ( "--smoke",
      Arg.Unit set_smoke,
      " quick CI configuration (scale 0.05, 1 round, short micro loops)" );
  ]

let requests () =
  Workloads.Registry.names
  |> List.map (fun name -> Service.Request.make ~scale:!scale name)
  |> Array.of_list

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Best-of-N serve time over fresh Apis: every pass computes every
   request (fresh cache), so the three variants do identical work. *)
let serve_best mk_api reqs =
  let best = ref infinity in
  let first_responses = ref None in
  for _ = 1 to !rounds do
    let api : Service.Api.t = mk_api () in
    let responses, dt = time (fun () -> Service.Api.submit_batch api reqs) in
    Service.Api.shutdown api;
    if !first_responses = None then
      first_responses := Some (Array.map Service.Response.to_string responses);
    if dt < !best then best := dt
  done;
  (Option.get !first_responses, !best)

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let reqs = requests () in
  Printf.printf
    "Phase 1: serving overhead (%d workloads, best of %d fresh-cache \
     passes, scale %.2f, 1 domain)\n"
    (Array.length reqs) !rounds !scale;

  let plain () = Service.Api.create ~num_domains:1 () in
  let disabled () =
    Service.Api.create ~num_domains:1
      ~metrics:(Obs.Metrics.create ~enabled:false ())
      ~tracer:(Obs.Trace.create ~enabled:false ())
      ()
  in
  let enabled () =
    Service.Api.create ~num_domains:1
      ~metrics:(Obs.Metrics.create ())
      ~tracer:(Obs.Trace.create ())
      ()
  in
  let base_resp, base = serve_best plain reqs in
  let dis_resp, dis = serve_best disabled reqs in
  let en_resp, en = serve_best enabled reqs in
  let pct v = 100. *. ((v /. base) -. 1.) in
  Printf.printf "%-26s %8.3fs\n" "no obs" base;
  Printf.printf "%-26s %8.3fs  %+6.2f%%  (target ~0%%)\n" "registered, disabled"
    dis (pct dis);
  Printf.printf "%-26s %8.3fs  %+6.2f%%  (target < 2%%)\n" "enabled (+tracer)"
    en (pct en);

  (* The correctness half is load-bearing: instrumentation must not
     change a single response byte. *)
  let same = base_resp = dis_resp && base_resp = en_resp in
  Printf.printf "responses byte-identical across variants: %s\n"
    (if same then "yes" else "NO");

  Printf.printf "\nPhase 2: per-operation cost (%d ops per loop)\n" !micro_ops;
  let micro label f =
    let _, dt = time f in
    Printf.printf "%-34s %8.2f ns/op\n" label
      (dt *. 1e9 /. float_of_int !micro_ops)
  in
  let m_on = Obs.Metrics.create () in
  let m_off = Obs.Metrics.create ~enabled:false () in
  let c_on = Obs.Metrics.counter m_on "bench_counter_total" in
  let c_off = Obs.Metrics.counter m_off "bench_counter_total" in
  let h_on = Obs.Metrics.histogram m_on "bench_hist_ms" in
  let h_off = Obs.Metrics.histogram m_off "bench_hist_ms" in
  micro "counter incr, enabled" (fun () ->
      for _ = 1 to !micro_ops do
        Obs.Metrics.incr c_on
      done);
  micro "counter incr, disabled" (fun () ->
      for _ = 1 to !micro_ops do
        Obs.Metrics.incr c_off
      done);
  micro "histogram observe, enabled" (fun () ->
      for i = 1 to !micro_ops do
        Obs.Metrics.observe h_on (float_of_int (i land 1023) /. 10.)
      done);
  micro "histogram observe, disabled" (fun () ->
      for i = 1 to !micro_ops do
        Obs.Metrics.observe h_off (float_of_int (i land 1023) /. 10.)
      done);
  if not same then exit 1
