(* Resilience-layer benchmark: what fault tolerance costs when nothing
   is failing, and what degradation buys when everything is.

     dune exec bench/resilience_bench.exe
     dune exec bench/resilience_bench.exe -- --scale 0.3 --rounds 8

   Phase 1 serves the same distinct-request set under (a) the bypass
   path ([Resilience.off], no injection plan — the wrapper short-
   circuits to one branch) and (b) the default policy with retries
   armed and a deadline configured but never hit. The p50 gap is the
   steady-state overhead of fault tolerance; the target is < 2%.

   Phase 2 compares the full pipeline's per-request latency against the
   degraded path (every attempt failed by injection, answer produced by
   [Baselines.Fallback]) — the latency floor a caller sees when the
   service is running on its fallback. *)

let scale = ref 0.2
let rounds = ref 6
let usage = "resilience_bench.exe [--smoke] [--scale S] [--rounds N]"

let set_smoke () =
  (* CI bit-rot gate: one tiny pass; numbers are informational. *)
  scale := 0.05;
  rounds := 1

let args =
  [
    ("--scale", Arg.Set_float scale, "S benchmark input-size scale (default 0.2)");
    ( "--rounds",
      Arg.Set_int rounds,
      "N fresh-cache passes over the request set (default 6)" );
    ("--smoke", Arg.Unit set_smoke, " quick CI configuration (scale 0.05, 1 round)");
  ]

let requests () =
  Workloads.Registry.names
  |> List.map (fun name -> Service.Request.make ~scale:!scale name)
  |> Array.of_list

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(int_of_float (Float.round (p *. float_of_int (n - 1))))

(* Per-request serve latencies (ms) over [rounds] fresh Apis, so every
   sample is a genuine cache-miss computation. *)
let sample_ms mk_api reqs =
  let samples = ref [] in
  for _ = 1 to !rounds do
    let api : Service.Api.t = mk_api () in
    Array.iter
      (fun r ->
        let t0 = Unix.gettimeofday () in
        let resp = Service.Api.submit api r in
        let dt = (Unix.gettimeofday () -. t0) *. 1e3 in
        if Service.Response.is_ok resp then samples := dt :: !samples
        else
          Printf.printf "!! error: %s\n"
            (match resp.Service.Response.result with
            | Error f -> Service.Fault.to_string f
            | Ok _ -> assert false))
      reqs;
    Service.Api.shutdown api
  done;
  let a = Array.of_list !samples in
  Array.sort compare a;
  a

let report label a =
  Printf.printf "%-28s n=%-4d p50=%8.3fms  p99=%8.3fms  mean=%8.3fms\n%!"
    label (Array.length a) (percentile a 0.50) (percentile a 0.99)
    (Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a))

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let reqs = requests () in
  Printf.printf
    "Phase 1: resilience wrapper overhead (%d workloads x %d rounds, scale \
     %.2f, injection disabled)\n"
    (Array.length reqs) !rounds !scale;
  let off =
    sample_ms
      (fun () ->
        Service.Api.create ~num_domains:1 ~resilience:Service.Resilience.off ())
      reqs
  in
  let armed_policy =
    (* Retries armed, a deadline configured but generous enough to never
       fire: the wrapper runs its clock reads and checks on every
       request. *)
    { Service.Resilience.default with deadline_ms = Some 60_000. }
  in
  let armed =
    sample_ms
      (fun () ->
        Service.Api.create ~num_domains:1 ~resilience:armed_policy ())
      reqs
  in
  report "bypass (Resilience.off)" off;
  report "armed (default + deadline)" armed;
  let p50_off = percentile off 0.50 and p50_on = percentile armed 0.50 in
  let overhead = 100. *. ((p50_on /. p50_off) -. 1.) in
  Printf.printf "p50 overhead: %+.2f%% (target < 2%%)\n\n" overhead;

  Printf.printf "Phase 2: degraded path vs full pipeline\n";
  let degraded =
    sample_ms
      (fun () ->
        Service.Api.create ~num_domains:1
          ~resilience:
            {
              Service.Resilience.off with
              Service.Resilience.degrade = true;
            }
          ~injection:
            (Service.Fault_injection.create
               [
                 ( "compute",
                   Service.Fault_injection.Fail_rate
                     (1., Service.Fault.Transient "bench") );
               ])
          ())
      reqs
  in
  report "full pipeline" off;
  report "degraded (fallback mapping)" degraded;
  let p50_deg = percentile degraded 0.50 in
  Printf.printf "degraded path p50 is %.1fx faster than the full pipeline\n"
    (p50_off /. p50_deg)
