(* Verification-cost benchmark: what [Mapper.map ~verify:true] adds on
   top of the pipeline it checks.

     dune exec bench/verify_bench.exe
     dune exec bench/verify_bench.exe -- --scale 0.5 --rounds 12

   Each round maps every bundled workload once with verification off
   and once with it on (error replay disabled in both, as in serving
   mode — the configuration whose overhead the 5% budget governs).
   Per-workload medians are compared and the worst relative overhead is
   the headline. *)

let scale = ref 0.25
let rounds = ref 8
let usage = "verify_bench.exe [--scale S] [--rounds N]"

let args =
  [
    ( "--scale",
      Arg.Set_float scale,
      "S benchmark input-size scale (default 0.25)" );
    ("--rounds", Arg.Set_int rounds, "N timing rounds (default 8)")
  ]

let cfg = Machine.Config.default

let median a =
  let a = Array.copy a in
  Array.sort compare a;
  a.(Array.length a / 2)

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  ignore (Sys.opaque_identity x);
  (Unix.gettimeofday () -. t0) *. 1e3

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  Printf.printf
    "verify overhead: Mapper.map, %d rounds, scale %.2f (budget 5%%)\n\n"
    !rounds !scale;
  Printf.printf "%-11s %10s %10s %9s\n" "workload" "off ms" "on ms"
    "overhead";
  let worst = ref neg_infinity in
  let offs = ref [] and ons = ref [] in
  List.iter
    (fun name ->
      let p = Harness.Experiment.prepare_name ~scale:!scale name in
      let run ~verify () =
        Locmap.Mapper.map ~measure_error:false ~verify cfg
          p.Harness.Experiment.trace
      in
      ignore (run ~verify:true ());
      let sample verify =
        median
          (Array.init !rounds (fun _ -> time_ms (run ~verify)))
      in
      let off = sample false and on_ = sample true in
      let overhead = 100. *. ((on_ /. off) -. 1.) in
      if overhead > !worst then worst := overhead;
      offs := off :: !offs;
      ons := on_ :: !ons;
      Printf.printf "%-11s %10.3f %10.3f %+8.1f%%\n" name off on_ overhead)
    Workloads.Registry.names;
  let total l = List.fold_left ( +. ) 0. l in
  let agg = 100. *. ((total !ons /. total !offs) -. 1.) in
  Printf.printf "\naggregate (sum of medians): %+.1f%%   worst workload: %+.1f%%\n"
    agg !worst;
  if agg > 5. then begin
    Printf.printf "FAIL: aggregate verification overhead above the 5%% budget\n";
    exit 1
  end
  else Printf.printf "ok: aggregate within the 5%% budget\n"
