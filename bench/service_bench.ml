(* Serving-layer benchmark: throughput scaling of the service pool and
   solution-cache effectiveness.

     dune exec bench/service_bench.exe                # or: make bench-service
     dune exec bench/service_bench.exe -- --scale 0.5 --requests 400

   Phase 1 fans a cold batch of distinct requests across 1/2/4/8 worker
   domains and reports requests/second and speedup over the 1-domain
   run. Phase 2 replays a Zipf-skewed mix (a few popular requests
   dominate, as they would for a fleet scheduler's hot workloads)
   against one warm Api and reports the cache hit rate and the serve
   time with and without the cache. *)

let scale = ref 0.35
let num_requests = ref 300
let zipf_s = ref 1.1
let domain_counts = ref [ 1; 2; 4; 8 ]

let usage =
  "service_bench.exe [--smoke] [--scale S] [--requests N] [--zipf S] \
   [--domains 1,2,4,8]"

let set_smoke () =
  (* CI bit-rot gate: tiny inputs, two domain counts — the point is
     that the bench still runs end to end, not the numbers. *)
  scale := 0.05;
  num_requests := 60;
  domain_counts := [ 1; 2 ]

let args =
  [
    ("--scale", Arg.Set_float scale, "S benchmark input-size scale (default 0.35)");
    ( "--requests",
      Arg.Set_int num_requests,
      "N Zipf-mix length for phase 2 (default 300)" );
    ("--zipf", Arg.Set_float zipf_s, "S Zipf skew exponent (default 1.1)");
    ( "--domains",
      Arg.String
        (fun s ->
          domain_counts :=
            String.split_on_char ',' s |> List.map int_of_string),
      "LIST domain counts for phase 1 (default 1,2,4,8)" );
    ( "--smoke",
      Arg.Unit set_smoke,
      " quick CI configuration (scale 0.05, 60 requests, domains 1,2)" );
  ]

(* The request universe: every registry workload on private and shared
   LLC — 42 distinct requests on the paper's default machine. *)
let universe () =
  List.concat_map
    (fun llc ->
      List.map
        (fun name ->
          let machine = { Machine.Config.default with llc_org = llc } in
          Service.Request.make ~scale:!scale ~machine name)
        Workloads.Registry.names)
    [ Cache.Llc.Private; Cache.Llc.Shared ]
  |> Array.of_list

(* Zipf-skewed index sampling: P(rank k) ∝ 1/(k+1)^s over a fixed
   random permutation of the universe, so popularity is not correlated
   with registry order. *)
let zipf_mix universe n =
  let u = Array.length universe in
  let rng = Random.State.make [| 0xbeef |] in
  let perm = Array.init u Fun.id in
  for i = u - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let weights =
    Array.init u (fun k -> 1. /. Float.pow (float_of_int (k + 1)) !zipf_s)
  in
  let total = Array.fold_left ( +. ) 0. weights in
  let sample () =
    let x = Random.State.float rng total in
    let rec find k acc =
      let acc = acc +. weights.(k) in
      if x <= acc || k = u - 1 then perm.(k) else find (k + 1) acc
    in
    find 0 0.
  in
  Array.init n (fun _ -> universe.(sample ()))

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let universe = universe () in
  let n_uni = Array.length universe in

  Printf.printf "Phase 1: cold-batch throughput (%d distinct requests, scale %.2f)\n"
    n_uni !scale;
  Printf.printf
    "(machine reports %d usable core(s); speedup >1 needs more than one)\n"
    (Domain.recommended_domain_count ());
  Printf.printf "%-8s %10s %10s %8s\n" "domains" "time (s)" "req/s" "speedup";
  let base = ref None in
  List.iter
    (fun d ->
      let api = Service.Api.create ~cache_capacity:n_uni ~num_domains:d () in
      let responses, elapsed =
        time (fun () -> Service.Api.submit_batch api universe)
      in
      Service.Api.shutdown api;
      let errors =
        Array.fold_left
          (fun a r -> if Service.Response.is_ok r then a else a + 1)
          0 responses
      in
      if errors > 0 then Printf.printf "!! %d errors\n" errors;
      let speedup =
        match !base with
        | None ->
            base := Some elapsed;
            1.0
        | Some b -> b /. elapsed
      in
      Printf.printf "%-8d %10.2f %10.1f %7.2fx\n%!" d elapsed
        (float_of_int n_uni /. elapsed)
        speedup)
    !domain_counts;

  Printf.printf
    "\nPhase 2: Zipf(s=%.2f) mix of %d requests over the %d-request universe\n"
    !zipf_s !num_requests n_uni;
  let mix = zipf_mix universe !num_requests in
  let distinct =
    let tbl = Hashtbl.create 64 in
    Array.iter (fun r -> Hashtbl.replace tbl (Service.Request.hash r) ()) mix;
    Hashtbl.length tbl
  in
  Printf.printf "distinct requests in mix: %d\n" distinct;
  (* Serve in waves of 20, as a fleet front-end would: later waves hit
     the solutions cached by earlier ones. *)
  let api = Service.Api.create ~cache_capacity:n_uni ~num_domains:4 () in
  let wave = 20 in
  let _, cached_time =
    time (fun () ->
        let i = ref 0 in
        while !i < Array.length mix do
          let len = min wave (Array.length mix - !i) in
          ignore (Service.Api.submit_batch api (Array.sub mix !i len));
          i := !i + len
        done)
  in
  let s = Service.Api.stats api in
  Service.Api.shutdown api;
  let nocache_estimate =
    (* Every request computed (no dedup, no cache): distinct-cost times
       mean multiplicity, measured as the cached run's compute share
       scaled up. *)
    cached_time
    *. float_of_int !num_requests
    /. float_of_int (max 1 s.computed)
  in
  Printf.printf "served %d requests in %.2fs (%.1f req/s, 4 domains)\n"
    !num_requests cached_time
    (float_of_int !num_requests /. cached_time);
  Printf.printf "computed: %d, cache hit rate: %.1f%%\n" s.computed
    (100.
    *. float_of_int s.cache.Service.Solution_cache.hits
    /. float_of_int
         (max 1
            (s.cache.Service.Solution_cache.hits
           + s.cache.Service.Solution_cache.misses)));
  Printf.printf "estimated cache-less serve time: %.2fs (%.1fx saved)\n"
    nocache_estimate
    (nocache_estimate /. cached_time)
