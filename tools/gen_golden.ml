(* One-shot golden generator: formats Mapper.map info for every
   registry workload on both LLC organisations. The exact same
   formatting lives in test/test_analysis.ml; this tool exists only to
   (re)generate test/fixtures/golden_mapper.txt. *)

let ints a =
  String.concat "," (Array.to_list (Array.map string_of_int a))

let golden_of_info name llc (info : Locmap.Mapper.info) =
  let b = Buffer.create 256 in
  Printf.bprintf b "== %s llc=%s ==\n" name llc;
  Printf.bprintf b "estimation=%s\n"
    (match info.estimation with
    | Locmap.Mapper.Cme_estimate -> "cme"
    | Locmap.Mapper.Inspector -> "inspector"
    | Locmap.Mapper.Oracle -> "oracle");
  Printf.bprintf b "sets=%d\n" (Array.length info.sets);
  Printf.bprintf b "region_of_set=%s\n" (ints info.region_of_set);
  Printf.bprintf b "pre_balance=%s\n" (ints info.pre_balance_region);
  for c = 0 to 1023 do
    match Machine.Schedule.sets_of_core info.schedule ~core:c with
    | [] -> ()
    | ss ->
        Printf.bprintf b "core%d=%s\n" c
          (String.concat ";"
             (List.map
                (fun (s : Ir.Iter_set.t) ->
                  Printf.sprintf "%d/%d-%d" s.nest s.lo s.hi)
                ss))
  done;
  Printf.bprintf b "moved=%.6f alpha=%.9f mai_err=%.9f cai_err=%.9f overhead=%d\n"
    info.moved_fraction info.alpha_mean info.mai_error info.cai_error
    info.overhead_cycles;
  Buffer.contents b

let () =
  let scale = 0.2 in
  List.iter
    (fun llc ->
      List.iter
        (fun name ->
          let p = Harness.Experiment.prepare_name ~scale name in
          let cfg = { Machine.Config.default with llc_org = llc } in
          let info = Locmap.Mapper.map cfg p.Harness.Experiment.trace in
          print_string
            (golden_of_info name
               (match llc with
               | Cache.Llc.Private -> "private"
               | Cache.Llc.Shared -> "shared")
               info))
        Workloads.Registry.names)
    [ Cache.Llc.Private; Cache.Llc.Shared ]
