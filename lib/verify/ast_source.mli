(** Parsed compilation units for the AST lint ({!Ast_lint}).

    Wraps [compiler-libs.common]'s [Parse.implementation]: each [.ml]
    becomes a {!Parsetree.structure} plus the side tables the analyses
    need — the module name the file defines and the per-line
    suppression markers. A file that fails to parse is carried with
    [ast = None] and the error location, so one broken file degrades
    to a single [parse-error] finding instead of aborting the scan.

    Suppression comments: [lint:ignore] on a line suppresses every
    rule on that line; [lint:ignore[rule-a,rule-b]] suppresses only
    the named rules. Text after the marker is the human-readable
    justification and is required by convention (the triage log).

    {b Thread safety}: values are immutable after {!load}; scanning
    allocates per call. *)

type suppression = All | Rules of string list

type t = {
  path : string;  (** as given; reported in findings *)
  modname : string;  (** ["Server"] for [lib/net/server.ml] *)
  code : string;
  ast : Parsetree.structure option;  (** [None] when the parse failed *)
  parse_error : (int * string) option;  (** line, message *)
  suppressions : (int, suppression) Hashtbl.t;  (** keyed by 1-based line *)
}

val modname_of_path : string -> string
(** Capitalised basename without extension. *)

val load : path:string -> code:string -> t
(** Parse [code] as an implementation; never raises on bad input. *)

val read : string -> t
(** {!load} the file at [path]. Raises [Sys_error] on unreadable
    paths (the driver checks existence first). *)

val suppressed : t -> line:int -> rule:string -> bool
(** Does a [lint:ignore] marker on [line] cover [rule]? *)
