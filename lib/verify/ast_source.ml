type suppression = All | Rules of string list

type t = {
  path : string;
  modname : string;
  code : string;
  ast : Parsetree.structure option;
  parse_error : (int * string) option;
  suppressions : (int, suppression) Hashtbl.t;
}

let modname_of_path path = String.capitalize_ascii Filename.(remove_extension (basename path))

(* [lint:ignore] anywhere on a line suppresses every rule on that line;
   [lint:ignore[rule-a,rule-b]] suppresses only the named rules. The
   justification text after the marker is for the human reader. *)
let suppressions_of code =
  let tbl = Hashtbl.create 8 in
  let find_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = if i + nn > nh then None else if String.sub hay i nn = needle then Some i else go (i + 1) in
    go 0
  in
  List.iteri
    (fun idx line ->
      match find_sub line "lint:ignore" with
      | None -> ()
      | Some i -> (
          let j = i + String.length "lint:ignore" in
          if j < String.length line && line.[j] = '[' then
            match String.index_from_opt line j ']' with
            | Some k ->
                let rules =
                  String.sub line (j + 1) (k - j - 1)
                  |> String.split_on_char ','
                  |> List.map String.trim
                  |> List.filter (fun r -> r <> "")
                in
                Hashtbl.replace tbl (idx + 1) (Rules rules)
            | None -> Hashtbl.replace tbl (idx + 1) All
          else Hashtbl.replace tbl (idx + 1) All))
    (String.split_on_char '\n' code);
  tbl

let parse ~path code =
  let lexbuf = Lexing.from_string code in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> (Some ast, None)
  | exception Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      (None, Some (loc.Location.loc_start.Lexing.pos_lnum, "syntax error"))
  | exception e -> (None, Some (1, Printexc.to_string e))

let load ~path ~code =
  let ast, parse_error = parse ~path code in
  {
    path;
    modname = modname_of_path path;
    code;
    ast;
    parse_error;
    suppressions = suppressions_of code;
  }

let read path =
  let ic = open_in_bin path in
  let code =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  load ~path ~code

let suppressed t ~line ~rule =
  match Hashtbl.find_opt t.suppressions line with
  | None -> false
  | Some All -> true
  | Some (Rules rs) -> List.mem rule rs
