open Parsetree

type edge = {
  from_lock : string;
  to_lock : string;
  e_file : string;
  e_line : int;
  e_via : string;
}

type call = {
  callee : Longident.t;
  held_at : string list;
  call_line : int;
  call_args : (Asttypes.arg_label * expression) list;
  mutable replayed : bool;
}

type summary = {
  func : Callgraph.func;
  mutable acquires : (string * int) list;
  mutable blockers : (string * string option * int) list;
      (** op, released mutex (Condition.wait), line *)
  mutable calls : call list;
  mutable params_under_lock : (string * string list) list;
      (** stripped param name, locks held when it is invoked *)
}

type ctx = {
  sum : summary;
  modname : string;
  file : string;
  params : string list;  (** stripped names of the enclosing function *)
  findings : Lint.finding list ref;
  edges : edge list ref;
}

(* ------------------------------------------------------------------ *)
(* Names and identities.                                               *)

let flatten lid = try Longident.flatten lid with _ -> []

(* A mutex's identity. Record fields unify by field name within the
   defining module ([t.lock] and [pool.lock] in pool.ml are the same
   ["Pool#lock"]); plain identifiers — globals, locals, parameters —
   unify by name ["Pool.batch_lock"]. Cross-module identities never
   collide: both forms carry the module name. *)
let lock_id ~modname (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> modname ^ "." ^ x
  | Pexp_ident { txt; _ } -> String.concat "." (flatten txt)
  | Pexp_field (_, { txt; _ }) -> modname ^ "#" ^ Longident.last txt
  | _ -> modname ^ "#<expr>"

(* Calls that park the caller for an unbounded time: the syscalls the
   net stack is built on, domain/thread joins, and timed sleeps. Held
   across a mutex, any of these turns every contender into a victim of
   the slowest peer — the exact hazard the server's idle/write
   deadlines exist to contain. *)
let blocking_ops =
  [
    "Unix.read"; "Unix.write"; "Unix.single_write"; "Unix.select";
    "Unix.sleep"; "Unix.sleepf"; "Unix.accept"; "Unix.connect";
    "Unix.recv"; "Unix.recvfrom"; "Unix.send"; "Unix.sendto";
    "Unix.waitpid"; "Unix.wait"; "Domain.join"; "Thread.join";
    "Thread.delay";
  ]

(* Task-submission sinks whose literal closures run on another domain:
   the closure starts with an empty lock set, whatever the submitter
   holds. *)
let is_async_sink parts =
  match parts with
  | [ "Domain"; "spawn" ] | [ "Thread"; "create" ] -> true
  | _ -> (
      match List.rev parts with
      | "submit" :: _ -> true
      | ("map" | "try_map") :: rest -> List.mem "Pool" rest
      | _ -> false)

let is_closure e =
  match e.pexp_desc with Pexp_fun _ | Pexp_function _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Reporting.                                                          *)

let finding ctx ~line ~rule fmt =
  Printf.ksprintf
    (fun message ->
      let message = Printf.sprintf "in %s: %s" ctx.sum.func.fq message in
      ctx.findings :=
        { Lint.file = ctx.file; line; rule; message } :: !(ctx.findings))
    fmt

let add_edge ctx ~line ?(via = "") from_lock to_lock =
  if from_lock <> to_lock then
    ctx.edges :=
      { from_lock; to_lock; e_file = ctx.file; e_line = line; e_via = via }
      :: !(ctx.edges)

let release held id = List.filter (fun x -> x <> id) held

let acquire ctx held ~line id =
  if List.mem id held then begin
    finding ctx ~line ~rule:"double-acquire"
      "mutex %s acquired while already held (OCaml mutexes are \
       non-reentrant: this self-deadlocks)"
      id;
    held
  end
  else begin
    List.iter (fun h -> add_edge ctx ~line h id) held;
    ctx.sum.acquires <- (id, line) :: ctx.sum.acquires;
    held @ [ id ]
  end

let blocker ctx ~line ?released op held =
  ctx.sum.blockers <- (op, released, line) :: ctx.sum.blockers;
  let h =
    match released with Some m -> release held m | None -> held
  in
  if h <> [] then
    finding ctx ~line ~rule:"blocking-under-lock"
      "%s can block indefinitely while holding %s" op
      (String.concat ", " h)

(* ------------------------------------------------------------------ *)
(* The intraprocedural walk. [walk] threads the held lock set through
   sequences and [let] chains; branches are each analysed with the
   lock set at entry (a lock or unlock local to one branch does not
   leak past the join — see the .mli for what that misses). *)

let collect_unlocks ~modname e =
  let acc = ref [] in
  let rec it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun _ ce ->
          (match ce.pexp_desc with
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt; _ }; _ },
                [ (_, m) ] )
            when flatten txt = [ "Mutex"; "unlock" ] ->
              acc := lock_id ~modname m :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it ce);
    }
  in
  it.expr it e;
  !acc

let rec walk ctx held (e : expression) : string list =
  let line = e.pexp_loc.Location.loc_start.Lexing.pos_lnum in
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; _ }; _ }, args) ->
      apply ctx held ~line lid args
  | Pexp_sequence (a, b) ->
      let h = walk ctx held a in
      walk ctx h b
  | Pexp_let (_, vbs, body) ->
      let h =
        List.fold_left
          (fun h vb ->
            if is_closure vb.pvb_expr then begin
              (* A local function's body is analysed once, with the
                 lock set at its definition point. *)
              ignore (walk ctx h vb.pvb_expr);
              h
            end
            else walk ctx h vb.pvb_expr)
          held vbs
      in
      walk ctx h body
  | Pexp_ifthenelse (c, t, f) ->
      let h = walk ctx held c in
      ignore (walk ctx h t);
      Option.iter (fun e -> ignore (walk ctx h e)) f;
      h
  | Pexp_match (scr, cases) | Pexp_try (scr, cases) ->
      let h = walk ctx held scr in
      List.iter
        (fun c ->
          Option.iter (fun g -> ignore (walk ctx h g)) c.pc_guard;
          ignore (walk ctx h c.pc_rhs))
        cases;
      h
  | Pexp_function cases ->
      List.iter
        (fun c ->
          Option.iter (fun g -> ignore (walk ctx held g)) c.pc_guard;
          ignore (walk ctx held c.pc_rhs))
        cases;
      held
  | Pexp_while (c, b) ->
      ignore (walk ctx held c);
      ignore (walk ctx held b);
      held
  | Pexp_for (_, a, b, _, body) ->
      ignore (walk ctx held a);
      ignore (walk ctx held b);
      ignore (walk ctx held body);
      held
  | Pexp_fun (_, _, _, body) ->
      ignore (walk ctx held body);
      held
  | _ ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ ce -> ignore (walk ctx held ce));
        }
      in
      Ast_iterator.default_iterator.expr it e;
      held

(* The function-valued argument of a guard wrapper ([Mutex.protect],
   [Fun.protect], or a discovered in-repo wrapper): analyse it as
   running with [held]. *)
and invoke_under ctx held f =
  match f.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> ignore (walk ctx held f)
  | Pexp_ident { txt = Longident.Lident p; _ } when List.mem p ctx.params ->
      if
        not
          (List.exists
             (fun (q, h) -> q = p && h = held)
             ctx.sum.params_under_lock)
      then
        ctx.sum.params_under_lock <- (p, held) :: ctx.sum.params_under_lock
  | Pexp_ident { txt; _ } ->
      ctx.sum.calls <-
        {
          callee = txt;
          held_at = held;
          call_line = f.pexp_loc.Location.loc_start.Lexing.pos_lnum;
          call_args = [];
          replayed = false;
        }
        :: ctx.sum.calls
  | _ -> ignore (walk ctx held f)

and apply ctx held ~line lid args =
  let parts = flatten lid in
  let name = String.concat "." parts in
  match (name, args) with
  | "Mutex.lock", [ (_, m) ] ->
      acquire ctx held ~line (lock_id ~modname:ctx.modname m)
  | "Mutex.unlock", [ (_, m) ] ->
      release held (lock_id ~modname:ctx.modname m)
  | "Mutex.protect", (_, m) :: rest ->
      let id = lock_id ~modname:ctx.modname m in
      let held' = acquire ctx held ~line id in
      (match rest with
      | [ (_, f) ] -> invoke_under ctx held' f
      | _ -> List.iter (fun (_, a) -> ignore (walk ctx held' a)) rest);
      held
  | "Condition.wait", [ (_, _c); (_, m) ] ->
      blocker ctx ~line
        ~released:(lock_id ~modname:ctx.modname m)
        "Condition.wait" held;
      held
  | "Fun.protect", _ ->
      let unlocked = ref [] in
      let body_arg = ref None in
      List.iter
        (fun ((l : Asttypes.arg_label), a) ->
          match l with
          | Labelled "finally" ->
              unlocked :=
                collect_unlocks ~modname:ctx.modname a @ !unlocked;
              ignore (walk ctx held a)
          | _ -> body_arg := Some a)
        args;
      Option.iter (fun f -> invoke_under ctx held f) !body_arg;
      List.fold_left release held !unlocked
  | _ when List.mem name blocking_ops ->
      blocker ctx ~line name held;
      List.iter (fun (_, a) -> ignore (walk ctx held a)) args;
      held
  | _ ->
      let async = is_async_sink parts in
      if parts <> [] then
        ctx.sum.calls <-
          {
            callee = lid;
            held_at = held;
            call_line = line;
            call_args = args;
            replayed = false;
          }
          :: ctx.sum.calls;
      (* Arguments of an async sink — the task closure and anything
         used to build it, e.g. [Domain.spawn (worker_loop pool)] —
         run on the spawned domain with an empty lock set. *)
      let arg_held = if async then [] else held in
      List.iter
        (fun (_, a) ->
          match a.pexp_desc with
          | Pexp_ident { txt; _ }
            when (not async)
                 && List.mem (String.concat "." (flatten txt)) blocking_ops
            ->
              (* A blocking primitive handed to an iterator
                 ([List.iter Domain.join ds]) runs here, under the
                 current lock set. *)
              blocker ctx
                ~line:(a.pexp_loc.Location.loc_start.Lexing.pos_lnum)
                (String.concat "." (flatten txt))
                held
          | _ -> ignore (walk ctx arg_held a))
        args;
      held

(* ------------------------------------------------------------------ *)
(* Driver: summaries, wrapper replay, transitive effects, cycles.      *)

let summarize findings edges (f : Callgraph.func) =
  let sum =
    { func = f; acquires = []; blockers = []; calls = []; params_under_lock = [] }
  in
  let ctx =
    {
      sum;
      modname = f.src.Ast_source.modname;
      file = f.src.Ast_source.path;
      params = List.map Callgraph.strip_param f.params;
      findings;
      edges;
    }
  in
  ignore (walk ctx [] f.body);
  sum

(* Replay literal closures handed to discovered guard wrappers: when
   [g]'s summary says it invokes parameter [p] holding [L], a call
   [g ... (fun () -> body) ...] runs [body] with the caller's locks
   plus [L]. One worklist pass; closures analysed at most once per
   call site. *)
let replay_wrapper_closures findings edges cg summaries by_fq =
  let queue = Queue.create () in
  List.iter (fun s -> List.iter (fun c -> Queue.push (s, c) queue) s.calls) summaries;
  while not (Queue.is_empty queue) do
    let s, c = Queue.pop queue in
    if not c.replayed then begin
      c.replayed <- true;
      let callees =
        List.concat_map
          (fun (g : Callgraph.func) -> Hashtbl.find_all by_fq g.fq)
          (Callgraph.resolve cg
             ~current_module:s.func.src.Ast_source.modname c.callee)
      in
      List.iter
        (fun (g : summary) ->
          if g.params_under_lock <> [] then begin
            let pos = ref (-1) in
            List.iter
              (fun ((label : Asttypes.arg_label), arg) ->
                if label = Nolabel then incr pos;
                if is_closure arg then
                  match
                    Callgraph.param_for_arg g.func.params ~label
                      ~pos_index:!pos
                  with
                  | Some p -> (
                      match List.assoc_opt p g.params_under_lock with
                      | Some extra ->
                          let held =
                            c.held_at
                            @ List.filter
                                (fun l -> not (List.mem l c.held_at))
                                extra
                          in
                          let before = s.calls in
                          let ctx =
                            {
                              sum = s;
                              modname = s.func.src.Ast_source.modname;
                              file = s.func.src.Ast_source.path;
                              params =
                                List.map Callgraph.strip_param
                                  s.func.params;
                              findings;
                              edges;
                            }
                          in
                          ignore (walk ctx held arg);
                          (* enqueue calls the replay discovered *)
                          List.iter
                            (fun c' ->
                              if not (List.memq c' before) then
                                Queue.push (s, c') queue)
                            s.calls
                      | None -> ())
                  | None -> ())
              c.call_args
          end)
        callees
    end
  done

module SM = Map.Make (String)

(* Transitive effect sets: for every function, the blocking operations
   and lock acquisitions reachable through known calls, each with one
   representative call chain for the report. *)
let transitive summaries graph_resolve =
  let blockers = Hashtbl.create 64 and locks = Hashtbl.create 64 in
  let get tbl fq = try Hashtbl.find tbl fq with Not_found -> SM.empty in
  List.iter
    (fun s ->
      let fq = s.func.Callgraph.fq in
      let b =
        List.fold_left
          (fun m (op, _, _) -> SM.add op "" m)
          (get blockers fq) s.blockers
      in
      Hashtbl.replace blockers fq b;
      let l =
        List.fold_left
          (fun m (id, _) -> SM.add id "" m)
          (get locks fq) s.acquires
      in
      Hashtbl.replace locks fq l)
    summaries;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        let fq = s.func.Callgraph.fq in
        List.iter
          (fun c ->
            List.iter
              (fun (g : Callgraph.func) ->
                let extend tbl =
                  let own = get tbl fq in
                  let inherited = get tbl g.fq in
                  let own' =
                    SM.fold
                      (fun key via acc ->
                        if SM.mem key acc then acc
                        else begin
                          changed := true;
                          let via' =
                            if via = "" then g.fq
                            else if
                              String.length via < 120
                            then g.fq ^ " -> " ^ via
                            else via
                          in
                          SM.add key via' acc
                        end)
                      inherited own
                  in
                  Hashtbl.replace tbl fq own'
                in
                extend blockers;
                extend locks)
              (graph_resolve
                 ~current_module:s.func.src.Ast_source.modname c.callee))
          s.calls)
      summaries
  done;
  (blockers, locks)

(* Tarjan SCC over the lock-order graph; components of two or more
   locks are potential deadlocks. *)
let cycles edges =
  let adj = Hashtbl.create 16 in
  let nodes = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace nodes e.from_lock ();
      Hashtbl.replace nodes e.to_lock ();
      Hashtbl.replace adj e.from_lock
        (e.to_lock
        :: (try Hashtbl.find adj e.from_lock with Not_found -> [])))
    edges;
  let index = Hashtbl.create 16
  and low = Hashtbl.create 16
  and on_stack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (try Hashtbl.find adj v with Not_found -> []);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let scc = pop [] in
      if List.length scc > 1 then sccs := scc :: !sccs
    end
  in
  Hashtbl.iter (fun v () -> if not (Hashtbl.mem index v) then strong v) nodes;
  !sccs

let analyze (cg : Callgraph.t) =
  let findings = ref [] and edges = ref [] in
  let summaries = List.map (summarize findings edges) cg.funcs in
  let by_fq = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.add by_fq s.func.Callgraph.fq s) summaries;
  replay_wrapper_closures findings edges cg summaries by_fq;
  let resolve = Callgraph.resolve cg in
  let trans_blockers, trans_locks = transitive summaries resolve in
  (* Call-site checks: calling into code that eventually blocks or
     locks, while holding a mutex here. *)
  List.iter
    (fun s ->
      let file = s.func.src.Ast_source.path in
      let ctx_find ~line ~rule fmt =
        Printf.ksprintf
          (fun message ->
            let message =
              Printf.sprintf "in %s: %s" s.func.Callgraph.fq message
            in
            findings := { Lint.file; line; rule; message } :: !findings)
          fmt
      in
      List.iter
        (fun c ->
          if c.held_at <> [] then
            List.iter
              (fun (g : Callgraph.func) ->
                (match Hashtbl.find_opt trans_blockers g.fq with
                | Some ops ->
                    SM.iter
                      (fun op via ->
                        ctx_find ~line:c.call_line ~rule:"blocking-under-lock"
                          "call to %s can block in %s%s while holding %s"
                          g.fq op
                          (if via = "" then "" else " (via " ^ via ^ ")")
                          (String.concat ", " c.held_at))
                      ops
                | None -> ());
                match Hashtbl.find_opt trans_locks g.fq with
                | Some ls ->
                    SM.iter
                      (fun l via ->
                        if List.mem l c.held_at then
                          ctx_find ~line:c.call_line ~rule:"double-acquire"
                            "call to %s re-acquires %s%s already held here"
                            g.fq l
                            (if via = "" then "" else " (via " ^ via ^ ")")
                        else
                          List.iter
                            (fun h ->
                              edges :=
                                {
                                  from_lock = h;
                                  to_lock = l;
                                  e_file = file;
                                  e_line = c.call_line;
                                  e_via = g.fq;
                                }
                                :: !edges)
                            c.held_at)
                      ls
                | None -> ())
              (resolve ~current_module:s.func.src.Ast_source.modname
                 c.callee))
        s.calls)
    summaries;
  (* Lock-order cycles. *)
  let sccs = cycles !edges in
  List.iter
    (fun scc ->
      let in_scc l = List.mem l scc in
      let witness =
        List.filter (fun e -> in_scc e.from_lock && in_scc e.to_lock) !edges
      in
      let witness =
        (* one representative edge per (from, to) pair, stable order *)
        List.sort_uniq
          (fun a b ->
            compare (a.from_lock, a.to_lock) (b.from_lock, b.to_lock))
          witness
      in
      match witness with
      | [] -> ()
      | anchor :: _ ->
          let path =
            String.concat "; "
              (List.map
                 (fun e ->
                   Printf.sprintf "%s -> %s (%s:%d%s)" e.from_lock e.to_lock
                     e.e_file e.e_line
                     (if e.e_via = "" then "" else ", via " ^ e.e_via))
                 witness)
          in
          findings :=
            {
              Lint.file = anchor.e_file;
              line = anchor.e_line;
              rule = "lock-order-cycle";
              message =
                Printf.sprintf
                  "locks {%s} are acquired in conflicting orders \
                   (potential deadlock): %s"
                  (String.concat ", " scc) path;
            }
            :: !findings)
    sccs;
  !findings
