type finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

type source = {
  path : string;
  code : string;
  intf : string option;
}

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s" f.file f.line f.rule f.message

(* ------------------------------------------------------------------ *)
(* Lexical preparation.                                                *)

(* Replace comments (nested), string literals and character literals
   with spaces, preserving line structure so line numbers survive. *)
let strip code =
  let n = String.length code in
  let out = Bytes.of_string code in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let comment_depth = ref 0 in
  while !i < n do
    let c = code.[!i] in
    if !comment_depth > 0 then begin
      if c = '(' && !i + 1 < n && code.[!i + 1] = '*' then begin
        incr comment_depth;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && code.[!i + 1] = ')' then begin
        decr comment_depth;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else begin
        blank !i;
        incr i
      end
    end
    else if c = '(' && !i + 1 < n && code.[!i + 1] = '*' then begin
      comment_depth := 1;
      blank !i;
      blank (!i + 1);
      i := !i + 2
    end
    else if c = '"' then begin
      blank !i;
      incr i;
      let stop = ref false in
      while (not !stop) && !i < n do
        if code.[!i] = '\\' && !i + 1 < n then begin
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else begin
          if code.[!i] = '"' then stop := true;
          blank !i;
          incr i
        end
      done
    end
    else if c = '\'' then begin
      (* Character literal ('x', '\n', '\\') vs type variable ('a). *)
      if !i + 2 < n && code.[!i + 1] <> '\\' && code.[!i + 2] = '\'' then begin
        blank !i;
        blank (!i + 1);
        blank (!i + 2);
        i := !i + 3
      end
      else if !i + 1 < n && code.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && code.[!j] <> '\'' do
          incr j
        done;
        for k = !i to min !j (n - 1) do
          blank k
        done;
        i := !j + 1
      end
      else incr i
    end
    else incr i
  done;
  Bytes.to_string out

let lines_of s = String.split_on_char '\n' s

(* Identifier-ish tokens, with dotted module paths kept whole
   ("Mutex.lock", "Hashtbl.create"). *)
let tokens_of_line line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  let is_ident c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '\''
  in
  while !i < n do
    if is_ident line.[!i] then begin
      let j = ref !i in
      while
        !j < n
        && (is_ident line.[!j]
           || (line.[!j] = '.' && !j + 1 < n && is_ident line.[!j + 1]))
      do
        incr j
      done;
      toks := String.sub line !i (!j - !i) :: !toks;
      i := !j
    end
    else incr i
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Top-level items.                                                    *)

type item = {
  start_line : int;  (** 1-based *)
  head : string list;  (** tokens of the first line *)
  toks : (int * string) list;  (** (line, token) over the whole item *)
}

let item_starters =
  [ "let"; "and"; "type"; "module"; "exception"; "open"; "include";
    "external"; "class" ]

let items_of stripped =
  let ls = Array.of_list (lines_of stripped) in
  let starts = ref [] in
  Array.iteri
    (fun idx line ->
      if String.length line > 0 && line.[0] <> ' ' && line.[0] <> '\t' then
        match tokens_of_line line with
        | t :: _ when List.mem t item_starters -> starts := idx :: !starts
        | _ -> ())
    ls;
  let starts = Array.of_list (List.rev !starts) in
  Array.to_list
    (Array.mapi
       (fun k s ->
         let e =
           if k + 1 < Array.length starts then starts.(k + 1)
           else Array.length ls
         in
         let toks = ref [] in
         for idx = s to e - 1 do
           List.iter
             (fun t -> toks := (idx + 1, t) :: !toks)
             (tokens_of_line ls.(idx))
         done;
         {
           start_line = s + 1;
           head = tokens_of_line ls.(s);
           toks = List.rev !toks;
         })
       starts)

let has_token item t = List.exists (fun (_, x) -> x = t) item.toks

let first_line_of_token item t =
  match List.find_opt (fun (_, x) -> x = t) item.toks with
  | Some (l, _) -> l
  | None -> item.start_line

(* A top-level [let]/[and] binding's name, and whether it is a value
   (no parameters: name directly followed by [=] or a [: type =]
   annotation) rather than a function. *)
let binding_of item =
  match item.head with
  | kw :: rest when kw = "let" || kw = "and" -> (
      let rest = match rest with "rec" :: r -> r | r -> r in
      match rest with
      | name :: _ when name <> "_" ->
          (* The token list drops punctuation, so recover "what follows
             the name" from the raw head line shape: a value binding's
             name is followed (ignoring a type annotation) by '='
             before any further lowercase parameter token. *)
          Some (name, rest)
      | _ -> None)
  | _ -> None

(* Is the binding a parameterless value? We inspect the raw first line:
   after the name, the next non-space character must be '=' or ':'. *)
let is_value_binding raw_first_line name =
  match String.index_opt raw_first_line '=' with
  | None -> (
      (* Multi-line head: treat ": type" as a value annotation. *)
      match String.index_opt raw_first_line ':' with
      | None -> false
      | Some _ -> true)
  | Some _ ->
      let n = String.length raw_first_line in
      let rec find_name i =
        if i + String.length name > n then None
        else if
          String.sub raw_first_line i (String.length name) = name
          && (i = 0 || not (raw_first_line.[i - 1] = '_'
                            || (raw_first_line.[i - 1] >= 'a'
                               && raw_first_line.[i - 1] <= 'z')))
        then Some (i + String.length name)
        else find_name (i + 1)
      in
      (match find_name 0 with
      | None -> false
      | Some j ->
          let rec skip i =
            if i >= n then false
            else
              match raw_first_line.[i] with
              | ' ' | '\t' -> skip (i + 1)
              | '=' | ':' -> true
              | _ -> false
          in
          skip j)

let mutable_creators =
  [ "Hashtbl.create"; "Hashtbl.of_seq"; "Buffer.create"; "Queue.create";
    "Stack.create"; "ref" ]

let lock_tokens = [ "Mutex.protect"; "Mutex.lock" ]

(* ------------------------------------------------------------------ *)
(* The scan.                                                           *)

let scan_source ?(concurrency = true) ?(require_contract = true) src =
  let stripped = strip src.code in
  let raw_lines = Array.of_list (lines_of src.code) in
  let suppressed =
    let s = Hashtbl.create 8 in
    Array.iteri
      (fun idx l ->
        let contains needle hay =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        if contains "lint:ignore" l then Hashtbl.replace s (idx + 1) ())
      raw_lines;
    s
  in
  let findings = ref [] in
  let add ~line ~rule fmt =
    Printf.ksprintf
      (fun message ->
        if not (Hashtbl.mem suppressed line) then
          findings := { file = src.path; line; rule; message } :: !findings)
      fmt
  in
  (if concurrency then begin
     let items = items_of stripped in
     let file_has_mutex =
       List.exists
         (fun it ->
           List.exists
             (fun (_, t) ->
               String.length t > 6 && String.sub t 0 6 = "Mutex.")
             it.toks)
         items
     in
     (* Guard wrappers: top-level bindings whose body locks a mutex. *)
     let guards =
       List.filter_map
         (fun it ->
           if List.exists (has_token it) lock_tokens then
             Option.map fst (binding_of it)
           else None)
         items
     in
     (* A creator only makes the *binding itself* mutable state when it
        appears in the binding's top-level right-hand side — i.e.
        before any nested [let]/[fun]/[function] (a [ref] allocated
        inside a nested definition is local, not shared). *)
     let creates_top_level_mutable it =
       let rec go first = function
         | [] -> false
         | (_, t) :: rest ->
             if first then go false rest (* the item's own let/and *)
             else if t = "let" || t = "fun" || t = "function" then false
             else if List.mem t mutable_creators then true
             else go false rest
       in
       go true it.toks
     in
     (* Rule: top-level mutable values. *)
     List.iter
       (fun it ->
         match binding_of it with
         | Some (name, _)
           when creates_top_level_mutable it
                && is_value_binding raw_lines.(it.start_line - 1) name ->
             if not file_has_mutex then
               add ~line:it.start_line ~rule:"unguarded-global"
                 "top-level mutable state %S in a module that never takes a \
                  mutex — unsafe if reached from Pool workers"
                 name
             else
               List.iter
                 (fun use ->
                   if use.start_line <> it.start_line && has_token use name
                   then begin
                     let locked =
                       List.exists (has_token use) lock_tokens
                       || List.exists
                            (fun g -> g <> name && has_token use g)
                            guards
                     in
                     if not locked then
                       add
                         ~line:(first_line_of_token use name)
                         ~rule:"unguarded-global-use"
                         "%S is used without Mutex.protect/Mutex.lock or a \
                          guard wrapper"
                         name
                   end)
                 items
         | _ -> ())
       items;
     (* Rule: mutable record fields in a mutex-free module. *)
     if not file_has_mutex then
       List.iter
         (fun it ->
           match it.head with
           | "type" :: _ when has_token it "mutable" ->
               add
                 ~line:(first_line_of_token it "mutable")
                 ~rule:"mutable-field-no-mutex"
                 "record with mutable fields in a module that never takes a \
                  mutex — unsafe if shared across Pool workers"
           | _ -> ())
         items
   end);
  (if require_contract then
     match src.intf with
     | None -> ()
     | Some intf ->
         let lower = String.lowercase_ascii intf in
         let has needle =
           let nh = String.length lower and nn = String.length needle in
           let rec go i =
             i + nn <= nh && (String.sub lower i nn = needle || go (i + 1))
           in
           go 0
         in
         if
           not
             (has "thread safety" || has "thread-safety" || has "thread-safe")
         then
           add ~line:1 ~rule:"missing-thread-safety-contract"
             "interface documents no thread-safety contract for a \
              Pool-reachable module");
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Filesystem front-end.                                               *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_files ?concurrency ?require_contract ?(require_mli = false) paths =
  List.concat_map
    (fun path ->
      let mli_path = Filename.remove_extension path ^ ".mli" in
      let intf =
        if Sys.file_exists mli_path then Some (read_file mli_path) else None
      in
      let missing =
        if require_mli && intf = None then
          [
            {
              file = path;
              line = 1;
              rule = "missing-interface";
              message = "module has no .mli interface";
            };
          ]
        else []
      in
      missing
      @ scan_source ?concurrency ?require_contract
          { path; code = read_file path; intf })
    paths

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry ->
           if entry = "_build" || (String.length entry > 0 && entry.[0] = '.')
           then []
           else ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let scan_dirs ?concurrency ?require_contract ?require_mli paths =
  scan_files ?concurrency ?require_contract ?require_mli
    (List.concat_map ml_files_under paths)
