(** Domain-escape analysis ({!Ast_lint} rule [domain-escape]).

    Values captured by a closure handed to [Domain.spawn],
    [Thread.create], or a [Pool] submission ([submit]/[map]/[try_map])
    run concurrently with the submitting domain. The analysis computes
    the closure's free variables from the parsetree and flags two
    shapes of unsafe capture:

    - a {e top-level mutable binding} of the same file ([ref],
      [Hashtbl.create], [Queue.create], [Buffer.create], [Array.make],
      …) used inside the closure with no lock held;
    - a {e mutation} of any captured name — [x := …], [incr]/[decr],
      [x.f <- …], or an in-place container operation
      ([Hashtbl.replace], [Queue.push], [Buffer.add_*], …) — with no
      lock held, unless the name is a top-level [Atomic.make] or
      [Mutex.create] binding.

    "No lock held" is judged inside the closure: a region under
    [Mutex.protect] or after [Mutex.lock] in the same sequence is
    considered guarded. This replaces the lexical
    [unguarded-global]/[unguarded-global-use] heuristics with AST
    facts: reads of immutable captures, [Atomic] traffic, and
    lock-disciplined access are never flagged, while mutation through
    any captured alias is — the token scan could do neither.

    The analysis is intra-closure: state reached through calls made by
    the closure is covered by the interprocedural lock analysis, not
    re-checked here.

    {b Thread safety}: stateless; analysis allocates per call. *)

type kind = Mutable | Atomic | Mutex | Other

val toplevel_kinds : Ast_source.t -> (string, kind) Hashtbl.t
(** How each parameterless top-level binding of the file is created —
    the classification behind both the escape rule and {!Ast_lint}'s
    concurrency-surface test. *)

val analyze : Callgraph.t -> Lint.finding list
(** All domain-escape findings over the graph's sources, unfiltered
    (suppression markers are applied by {!Ast_lint}). *)
