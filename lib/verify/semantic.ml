module I = Locmap.Invariant

type diagnostic = Locmap.Invariant.diagnostic = {
  invariant : string;
  location : string;
  message : string;
}

type options = {
  estimation : Locmap.Mapper.estimation option;
  fraction : float option;
  balance : bool;
  alpha_override : float option;
}

let default_options =
  { estimation = None; fraction = None; balance = true; alpha_override = None }

type report = {
  subject : string;
  checks : int;
  diagnostics : diagnostic list;
}

let ok r = r.diagnostics = []

let pp_report ppf r =
  if ok r then
    Format.fprintf ppf "%s: ok (%d check groups)" r.subject r.checks
  else
    Format.fprintf ppf "@[<v>%a@]"
      (Format.pp_print_list I.pp)
      r.diagnostics

let diag ~where ~invariant fmt =
  Printf.ksprintf
    (fun message -> { invariant; location = where; message })
    fmt

(* ------------------------------------------------------------------ *)
(* Configuration.                                                      *)

let check_config ~where (cfg : Machine.Config.t) =
  match Machine.Config.validate cfg with
  | Error e -> [ diag ~where ~invariant:"machine-config" "%s" e ]
  | Ok () -> I.region_grid ~where cfg (Locmap.Region.create cfg)

(* ------------------------------------------------------------------ *)
(* IR well-formedness.                                                 *)

(* The affine range of [e] over the loop-domain ranges [(var, lo, hi)]
   (hi inclusive — the last value the variable actually takes). *)
let affine_range e ranges =
  List.fold_left
    (fun (lo, hi) (v, vlo, vhi) ->
      let c = Ir.Affine.coeff e v in
      if c >= 0 then (lo + (c * vlo), hi + (c * vhi))
      else (lo + (c * vhi), hi + (c * vlo)))
    (Ir.Affine.constant_part e, Ir.Affine.constant_part e)
    ranges

let loop_ranges (prog : Ir.Program.t) (n : Ir.Loop_nest.t) =
  (Ir.Trace.step_var, 0, prog.Ir.Program.time_steps - 1)
  :: List.map
       (fun (l : Ir.Loop_nest.loop) ->
         (l.var, l.lo, l.lo + ((Ir.Loop_nest.trip l - 1) * l.step)))
       (n.par :: n.inner)

let check_loop ~where (l : Ir.Loop_nest.loop) =
  if l.step <= 0 then
    [
      diag ~where ~invariant:"loop-domain" "loop %s has non-positive step %d"
        l.var l.step;
    ]
  else if l.hi <= l.lo then
    [
      diag ~where ~invariant:"loop-domain" "loop %s has empty domain [%d, %d)"
        l.var l.lo l.hi;
    ]
  else []

let check_access ~where prog n (a : Ir.Access.t) =
  let decl = Ir.Program.array_decl prog a.Ir.Access.array_name in
  let ranges = loop_ranges prog n in
  match a.Ir.Access.index with
  | Ir.Access.Direct e ->
      let lo, hi = affine_range e ranges in
      if lo < 0 || hi >= decl.Ir.Program.length then
        [
          diag ~where ~invariant:"affine-bounds"
            "affine index of %s ranges over [%d, %d] but the array has %d \
             elements"
            a.Ir.Access.array_name lo hi decl.Ir.Program.length;
        ]
      else []
  | Ir.Access.Indirect { table; pos; offset } ->
      let tbl = Ir.Program.find_table prog table in
      let plo, phi = affine_range pos ranges in
      let pos_bad =
        if plo < 0 || phi >= Array.length tbl then
          [
            diag ~where ~invariant:"index-domain"
              "position into index table %s ranges over [%d, %d] but the \
               table has %d entries"
              table plo phi (Array.length tbl);
          ]
        else []
      in
      let elem_bad =
        if Array.length tbl = 0 then []
        else begin
          let tmin = Array.fold_left min tbl.(0) tbl in
          let tmax = Array.fold_left max tbl.(0) tbl in
          let olo, ohi = affine_range offset ranges in
          if tmin + olo < 0 || tmax + ohi >= decl.Ir.Program.length then
            [
              diag ~where ~invariant:"indirect-bounds"
                "values of index table %s (range [%d, %d]) plus offset \
                 (range [%d, %d]) can index %s outside its %d elements"
                table tmin tmax olo ohi a.Ir.Access.array_name
                decl.Ir.Program.length;
            ]
          else []
        end
      in
      pos_bad @ elem_bad

let check_program ~where (prog : Ir.Program.t) =
  I.all
    (List.mapi
       (fun k (n : Ir.Loop_nest.t) ->
         let wn = Printf.sprintf "%s: nest %d (%s)" where k n.name in
         I.all
           (I.all (List.map (check_loop ~where:wn) (n.par :: n.inner))
           :: List.mapi
                (fun i a ->
                  check_access
                    ~where:(Printf.sprintf "%s, access %d" wn i)
                    prog n a)
                n.body))
       prog.Ir.Program.nests)

(* ------------------------------------------------------------------ *)
(* Mapping artifacts.                                                  *)

let nest_iterations (prog : Ir.Program.t) =
  Array.of_list (List.map Ir.Loop_nest.iterations prog.Ir.Program.nests)

let check_info ~where ?(balanced = true) (cfg : Machine.Config.t) prog
    (info : Locmap.Mapper.info) =
  let regions = Locmap.Region.create cfg in
  let num_regions = Locmap.Region.count regions in
  let baseline_total =
    match
      Machine.Schedule.validate info.Locmap.Mapper.baseline
        ~num_cores:(Machine.Config.num_cores cfg)
    with
    | Ok () -> []
    | Error e ->
        [ diag ~where:(where ^ ": baseline") ~invariant:"schedule-total" "%s" e ]
  in
  I.all
    [
      I.partition ~where ~nest_iterations:(nest_iterations prog)
        info.Locmap.Mapper.sets;
      I.assignment ~where ~num_regions info.Locmap.Mapper.region_of_set;
      (if balanced then
         I.balance ~where ~num_regions ~sets:info.Locmap.Mapper.sets
           info.Locmap.Mapper.region_of_set
       else []);
      I.placement ~where cfg regions
        ~region_of_set:info.Locmap.Mapper.region_of_set
        info.Locmap.Mapper.schedule;
      baseline_total;
    ]

let check_fallback ~where (cfg : Machine.Config.t) prog
    (fb : Baselines.Fallback.t) =
  let regions = Locmap.Region.create cfg in
  let num_regions = Locmap.Region.count regions in
  I.all
    [
      I.partition ~where ~nest_iterations:(nest_iterations prog)
        fb.Baselines.Fallback.sets;
      I.assignment ~where ~num_regions fb.Baselines.Fallback.region_of_set;
      I.balance ~where ~num_regions ~sets:fb.Baselines.Fallback.sets
        fb.Baselines.Fallback.region_of_set;
      I.placement ~where cfg regions
        ~region_of_set:fb.Baselines.Fallback.region_of_set
        fb.Baselines.Fallback.schedule;
    ]

(* ------------------------------------------------------------------ *)
(* The full battery.                                                   *)

let report ?(options = default_options) ~subject (cfg : Machine.Config.t)
    prog =
  let checks = ref 0 in
  let run c =
    incr checks;
    c ()
  in
  let config_diags = run (fun () -> check_config ~where:subject cfg) in
  let ir_diags =
    run (fun () -> check_program ~where:(subject ^ "/ir") prog)
  in
  (* Running the pipeline on a machine or program already known bad
     would only repeat the diagnosis as an exception. *)
  let pipeline_diags =
    if config_diags <> [] || ir_diags <> [] then []
    else
      run (fun () ->
          try
            let layout =
              Ir.Layout.allocate
                ~page_size:Machine.Config.default.Machine.Config.page_size
                prog
            in
            let trace = Ir.Trace.create prog layout in
            let info =
              Locmap.Mapper.map ?estimation:options.estimation
                ?fraction:options.fraction ~balance:options.balance
                ?alpha_override:options.alpha_override ~measure_error:false
                ~verify:true cfg trace
            in
            check_info ~where:(subject ^ "/pipeline")
              ~balanced:options.balance cfg prog info
          with
          | I.Violation ds -> ds
          | e ->
              [
                diag
                  ~where:(subject ^ "/pipeline")
                  ~invariant:"pipeline-crash" "%s" (Printexc.to_string e);
              ])
  in
  let fallback_diags =
    if config_diags <> [] || ir_diags <> [] then []
    else
      run (fun () ->
          try
            let fb =
              Baselines.Fallback.map ?fraction:options.fraction cfg prog
            in
            check_fallback ~where:(subject ^ "/fallback") cfg prog fb
          with e ->
            [
              diag
                ~where:(subject ^ "/fallback")
                ~invariant:"pipeline-crash" "%s" (Printexc.to_string e);
            ])
  in
  {
    subject;
    checks = !checks;
    diagnostics =
      I.all [ config_diags; ir_diags; pipeline_diags; fallback_diags ];
  }
