type func = {
  fq : string;
  name : string;
  params : string list;
  body : Parsetree.expression;
  line : int;
  src : Ast_source.t;
}

type t = {
  funcs : func list;
  by_fq : (string, func) Hashtbl.t;
  sources : Ast_source.t list;
}

(* Peel the [fun]-parameter spine of a binding's right-hand side. A
   labelled parameter is stored as ["~name"] (["?name"] when optional)
   so call sites can match labelled arguments by name and positional
   ones by position; an unnamed pattern becomes ["_"]. *)
let rec peel_params e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (label, _, pat, body) ->
      let name =
        match label with
        | Asttypes.Labelled l -> "~" ^ l
        | Asttypes.Optional l -> "?" ^ l
        | Asttypes.Nolabel -> (
            match pat.Parsetree.ppat_desc with
            | Parsetree.Ppat_var { txt; _ } -> txt
            | _ -> "_")
      in
      let rest, body = peel_params body in
      (name :: rest, body)
  | Parsetree.Pexp_newtype (_, body) -> peel_params body
  | _ -> ([], e)

let strip_param p =
  if p = "" then p
  else match p.[0] with
    | '~' | '?' -> String.sub p 1 (String.length p - 1)
    | _ -> p

(* Which declared parameter does each argument of a call bind to?
   Labelled arguments match by name, positional ones by position among
   the positional parameters. Returns the stripped parameter name. *)
let param_for_arg params ~label ~pos_index =
  match (label : Asttypes.arg_label) with
  | Labelled l | Optional l ->
      if List.exists (fun p -> strip_param p = l && p <> l) params then Some l
      else None
  | Nolabel -> (
      let positional = List.filter (fun p -> strip_param p = p) params in
      match List.nth_opt positional pos_index with
      | Some p when p <> "_" -> Some p
      | _ -> None)

let rec funcs_of_structure src prefix (str : Parsetree.structure) =
  List.concat_map
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.filter_map
            (fun (vb : Parsetree.value_binding) ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = name; _ } ->
                  let params, body = peel_params vb.pvb_expr in
                  Some
                    {
                      fq = prefix ^ "." ^ name;
                      name;
                      params;
                      body;
                      line = vb.pvb_loc.loc_start.pos_lnum;
                      src;
                    }
              | _ -> None)
            vbs
      | Pstr_module
          {
            pmb_name = { txt = Some mname; _ };
            pmb_expr = { pmod_desc = Pmod_structure sub; _ };
            _;
          } ->
          funcs_of_structure src (prefix ^ "." ^ mname) sub
      | _ -> [])
    str

let build sources =
  let funcs =
    List.concat_map
      (fun (src : Ast_source.t) ->
        match src.Ast_source.ast with
        | None -> []
        | Some str -> funcs_of_structure src src.Ast_source.modname str)
      sources
  in
  let by_fq = Hashtbl.create 256 in
  List.iter (fun f -> Hashtbl.add by_fq f.fq f) funcs;
  { funcs; by_fq; sources }

(* Resolve a call-site [Longident.t] to the known top-level bindings it
   may name. An unqualified [f] is the current module's [f]; a
   qualified [M.f] matches any scanned module whose name is a suffix
   of the path — [Service.Api.submit], [Api.submit] and (from inside
   api.ml) plain [submit] all resolve to the same binding. Ambiguity
   (two scanned files defining the same module name) returns every
   candidate; the analyses union their effects. *)
let resolve t ~current_module lid =
  let parts = Longident.flatten lid in
  match parts with
  | [] -> []
  | [ name ] -> Hashtbl.find_all t.by_fq (current_module ^ "." ^ name)
  | _ ->
      let rec suffixes = function
        | [] -> []
        | _ :: rest as l -> l :: suffixes rest
      in
      let candidates =
        List.concat_map
          (fun suffix -> Hashtbl.find_all t.by_fq (String.concat "." suffix))
          (suffixes parts)
      in
      (* Also try the path as a nested module of the current file. *)
      let nested =
        Hashtbl.find_all t.by_fq
          (current_module ^ "." ^ String.concat "." parts)
      in
      nested @ candidates
