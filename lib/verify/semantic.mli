(** The semantic verifier: whole-artifact invariant checks.

    [Locmap.Invariant] states the pipeline's invariants as pure check
    primitives; this module composes them — plus IR well-formedness
    checks that need the program text — into verdicts over the three
    artifact kinds the system emits: programs (IR), full mapper results
    ([Locmap.Mapper.info]) and degraded fallback mappings
    ([Baselines.Fallback.t]). {!report} runs the entire battery for one
    (machine, program) pair: configuration validity, region-grid
    consistency, IR well-formedness, a full [Mapper.map ~verify:true]
    run, post-hoc artifact checks, and the fallback path. The [locmap
    check] CLI subcommand and the test suite are thin wrappers around
    it.

    Every violation is a structured, source-located
    [Locmap.Invariant.diagnostic]; check functions never raise on
    malformed artifacts.

    {b Thread safety}: stateless; every call allocates its own working
    state, so reports may be produced concurrently from any domain. *)

type diagnostic = Locmap.Invariant.diagnostic = {
  invariant : string;
  location : string;
  message : string;
}

(** Mapper knobs a report runs the pipeline with (the subset of
    [Service.Request.options] that affects the produced artifacts). *)
type options = {
  estimation : Locmap.Mapper.estimation option;  (** [None] = per-kind default *)
  fraction : float option;  (** iteration-set fraction override *)
  balance : bool;  (** whether the balancing pass runs (and is checked) *)
  alpha_override : float option;
}

val default_options : options
(** Per-kind estimation, no overrides, balancing on. *)

type report = {
  subject : string;  (** what was checked (workload name or request label) *)
  checks : int;  (** invariant-check groups executed *)
  diagnostics : diagnostic list;  (** empty iff the subject is sound *)
}

val ok : report -> bool

val pp_report : Format.formatter -> report -> unit
(** One line per diagnostic, or a single "ok" line. *)

(** {1 Individual check batteries} *)

val check_config : where:string -> Machine.Config.t -> diagnostic list
(** [Machine.Config.validate] plus region-grid/mesh consistency. *)

val check_program : where:string -> Ir.Program.t -> diagnostic list
(** IR well-formedness: loop domains well-formed; every affine access
    provably in-bounds for the declared loop (and timing-step) domains;
    every indirection's position domain inside its index table; index
    tables' value range, shifted by the offset's affine range, inside
    the target array. *)

val check_info :
  where:string ->
  ?balanced:bool ->
  Machine.Config.t ->
  Ir.Program.t ->
  Locmap.Mapper.info ->
  diagnostic list
(** Mapping soundness of a full pipeline result: the partition covers
    the program exactly once, every set has exactly one in-range region
    and one core inside it, the baseline schedule is total, and (when
    [balanced], default [true]) per-nest loads sit within the
    balancer's declared tolerance. *)

val check_fallback :
  where:string ->
  Machine.Config.t ->
  Ir.Program.t ->
  Baselines.Fallback.t ->
  diagnostic list
(** Degraded mappings owe the same totality: exact-cover partition,
    in-range regions, per-nest balance, cores inside their regions. *)

(** {1 The full battery} *)

val report :
  ?options:options ->
  subject:string ->
  Machine.Config.t ->
  Ir.Program.t ->
  report
(** Runs every check above for one (machine, program) pair, including
    a [Mapper.map ~verify:true] pipeline run (with [measure_error]
    off) and a fallback mapping. Pipeline exceptions are converted to
    diagnostics ([pipeline-crash]), never raised. *)
