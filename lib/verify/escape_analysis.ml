open Parsetree

(* ------------------------------------------------------------------ *)
(* Module-level facts: how each top-level binding of a file is
   created. The escape rule only fires for values that are mutable by
   construction; [Atomic.make] and [Mutex.create] bindings are safe to
   share by design. *)

type kind = Mutable | Atomic | Mutex | Other

let creator_kind (e : expression) =
  let rec head e =
    match e.pexp_desc with
    | Pexp_apply (f, _) -> head f
    | Pexp_ident { txt; _ } -> (
        try Some (String.concat "." (Longident.flatten txt))
        with _ -> None)
    | _ -> None
  in
  match head e with
  | Some
      ( "ref" | "Hashtbl.create" | "Hashtbl.of_seq" | "Queue.create"
      | "Stack.create" | "Buffer.create" | "Array.make" | "Array.init"
      | "Bytes.create" | "Bytes.make" ) ->
      Mutable
  | Some "Atomic.make" -> Atomic
  | Some "Mutex.create" -> Mutex
  | _ -> Other

let toplevel_kinds (src : Ast_source.t) =
  let tbl = Hashtbl.create 16 in
  (match src.ast with
  | None -> ()
  | Some str ->
      List.iter
        (fun (item : structure_item) ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt; _ } -> (
                      (* A binding with parameters creates per-call
                         state, not shared state. *)
                      match Callgraph.peel_params vb.pvb_expr with
                      | [], body ->
                          Hashtbl.replace tbl txt (creator_kind body)
                      | _ -> ())
                  | _ -> ())
                vbs
          | _ -> ())
        str);
  tbl

(* ------------------------------------------------------------------ *)
(* Free variables of a closure: identifiers used but not bound by the
   closure's parameters, its [let]s, or its match/function patterns. *)

let pattern_vars p =
  let acc = ref [] in
  let rec it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun _ pp ->
          (match pp.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
              acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it pp);
    }
  in
  it.pat it p;
  !acc

(* Mutating operations on a captured value: direct assignment and the
   stdlib's in-place container operations, each with the positional
   indices of the argument(s) it mutates — [Hashtbl.replace tbl k v]
   mutates its first argument, [Queue.push x q] its last,
   [Array.blit src spos dst dpos len] its third. *)
let mutators =
  [
    ("Hashtbl.replace", [ 0 ]); ("Hashtbl.add", [ 0 ]);
    ("Hashtbl.remove", [ 0 ]); ("Hashtbl.reset", [ 0 ]);
    ("Hashtbl.clear", [ 0 ]);
    ("Queue.push", [ 1 ]); ("Queue.add", [ 1 ]); ("Queue.pop", [ 0 ]);
    ("Queue.take", [ 0 ]); ("Queue.clear", [ 0 ]);
    ("Queue.transfer", [ 0; 1 ]);
    ("Stack.push", [ 1 ]); ("Stack.pop", [ 0 ]); ("Stack.clear", [ 0 ]);
    ("Buffer.add_string", [ 0 ]); ("Buffer.add_char", [ 0 ]);
    ("Buffer.add_bytes", [ 0 ]); ("Buffer.add_substring", [ 0 ]);
    ("Buffer.clear", [ 0 ]); ("Buffer.reset", [ 0 ]);
    ("Array.set", [ 0 ]); ("Array.fill", [ 0 ]); ("Array.blit", [ 2 ]);
    ("Bytes.set", [ 0 ]); ("Bytes.fill", [ 0 ]); ("Bytes.blit", [ 2 ]);
  ]

type use = { u_line : int; u_what : string }

(* Walk a spawned closure body. [bound] is the set of names the
   closure binds itself; [locked] is true inside a [Mutex.protect]/
   [Mutex.lock] region. Collects (a) uses of captured names, and
   (b) unlocked mutations whose target is captured. *)
let scan_closure ~modname body =
  let uses : (string, use list) Hashtbl.t = Hashtbl.create 16 in
  let mutations : (string * use) list ref = ref [] in
  let line e = e.pexp_loc.Location.loc_start.Lexing.pos_lnum in
  let add_use bound name u =
    if not (List.mem name bound) then
      Hashtbl.replace uses name
        (u :: (try Hashtbl.find uses name with Not_found -> []))
  in
  let add_mutation bound name u =
    if not (List.mem name bound) then mutations := (name, u) :: !mutations
  in
  let rec walk bound locked e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } ->
        if not locked then
          add_use bound x { u_line = line e; u_what = "use" }
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident ":="; _ }; _ },
          [ (_, lhs); (_, rhs) ] ) ->
        (match lhs.pexp_desc with
        | Pexp_ident { txt = Longident.Lident x; _ } when not locked ->
            add_mutation bound x { u_line = line e; u_what = x ^ " := ..." }
        | _ -> walk bound locked lhs);
        walk bound locked rhs
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident ("incr" | "decr" as op); _ }; _ },
          [ (_, arg) ] ) -> (
        match arg.pexp_desc with
        | Pexp_ident { txt = Longident.Lident x; _ } when not locked ->
            add_mutation bound x { u_line = line e; u_what = op ^ " " ^ x }
        | _ -> walk bound locked arg)
    | Pexp_setfield (r, { txt; _ }, v) ->
        (match r.pexp_desc with
        | Pexp_ident { txt = Longident.Lident x; _ } when not locked ->
            add_mutation bound x
              {
                u_line = line e;
                u_what = x ^ "." ^ Longident.last txt ^ " <- ...";
              }
        | _ -> walk bound locked r);
        walk bound locked v
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        let name =
          try String.concat "." (Longident.flatten txt) with _ -> ""
        in
        match (name, args) with
        | "Mutex.protect", (_, _m) :: rest ->
            List.iter (fun (_, a) -> walk bound true a) rest
        | "Mutex.lock", _ ->
            (* Sequence-level tracking is handled by the caller via
               [locked]; a bare lock inside a spawned closure guards
               the rest of the enclosing sequence. *)
            ()
        | _, _ when List.mem_assoc name mutators && not locked ->
            let targets = List.assoc name mutators in
            List.iteri
              (fun i (_, a) ->
                if List.mem i targets then
                  match a.pexp_desc with
                  | Pexp_ident { txt = Longident.Lident x; _ } ->
                      add_mutation bound x
                        { u_line = line e; u_what = name ^ " " ^ x }
                  | _ -> ())
              args;
            List.iter (fun (_, a) -> walk bound locked a) args
        | _ -> List.iter (fun (_, a) -> walk bound locked a) args)
    | Pexp_sequence (a, b) ->
        let locks_here =
          match a.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
              match try Longident.flatten txt with _ -> [] with
              | [ "Mutex"; "lock" ] -> true
              | _ -> false)
          | _ -> false
        in
        walk bound locked a;
        walk bound (locked || locks_here) b
    | Pexp_let (_, vbs, body) ->
        let bound' =
          List.concat_map (fun vb -> pattern_vars vb.pvb_pat) vbs @ bound
        in
        List.iter (fun vb -> walk bound locked vb.pvb_expr) vbs;
        walk bound' locked body
    | Pexp_fun (_, _, p, body) -> walk (pattern_vars p @ bound) locked body
    | Pexp_function cases | Pexp_match (_, cases) | Pexp_try (_, cases) ->
        (match e.pexp_desc with
        | Pexp_match (scr, _) | Pexp_try (scr, _) -> walk bound locked scr
        | _ -> ());
        List.iter
          (fun c ->
            let bound' = pattern_vars c.pc_lhs @ bound in
            Option.iter (walk bound' locked) c.pc_guard;
            walk bound' locked c.pc_rhs)
          cases
    | Pexp_for ({ ppat_desc = Ppat_var { txt; _ }; _ }, a, b, _, fb) ->
        walk bound locked a;
        walk bound locked b;
        walk (txt :: bound) locked fb
    | _ ->
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ ce -> walk bound locked ce);
          }
        in
        Ast_iterator.default_iterator.expr it e
  in
  ignore modname;
  walk [] false body;
  (uses, !mutations)

(* ------------------------------------------------------------------ *)
(* The rule. *)

let analyze (cg : Callgraph.t) =
  let findings = ref [] in
  let kinds_by_src = Hashtbl.create 8 in
  List.iter
    (fun (src : Ast_source.t) ->
      Hashtbl.replace kinds_by_src src.path (toplevel_kinds src))
    cg.sources;
  List.iter
    (fun (f : Callgraph.func) ->
      let src = f.src in
      let kinds =
        try Hashtbl.find kinds_by_src src.Ast_source.path
        with Not_found -> Hashtbl.create 0
      in
      let report ~line fmt =
        Printf.ksprintf
          (fun message ->
            findings :=
              {
                Lint.file = src.Ast_source.path;
                line;
                rule = "domain-escape";
                message = Printf.sprintf "in %s: %s" f.fq message;
              }
              :: !findings)
          fmt
      in
      let check_sink sink_name closure =
        let params, body = Callgraph.peel_params closure in
        let bound0 = List.map Callgraph.strip_param params in
        let uses, mutations =
          scan_closure ~modname:src.Ast_source.modname body
        in
        (* strip closure parameters from both result sets *)
        let captured_uses =
          Hashtbl.fold
            (fun name us acc ->
              if List.mem name bound0 then acc else (name, us) :: acc)
            uses []
        in
        let mutations =
          List.filter (fun (n, _) -> not (List.mem n bound0)) mutations
        in
        (* (a) captured top-level mutable state, used with no lock *)
        List.iter
          (fun (name, us) ->
            match Hashtbl.find_opt kinds name with
            | Some Mutable ->
                let u = List.nth us (List.length us - 1) in
                report ~line:u.u_line
                  "closure passed to %s captures top-level mutable %S \
                   and uses it with no lock held — share it as \
                   Atomic.t or guard it with its mutex"
                  sink_name name
            | _ -> ())
          (List.sort compare captured_uses);
        (* (b) unlocked mutation of any captured value *)
        let seen = Hashtbl.create 4 in
        List.iter
          (fun (name, u) ->
            if
              (not (Hashtbl.mem seen name))
              && Hashtbl.find_opt kinds name <> Some Atomic
              && Hashtbl.find_opt kinds name <> Some Mutex
            then begin
              Hashtbl.replace seen name ();
              report ~line:u.u_line
                "closure passed to %s mutates captured %S (%s) with no \
                 lock held — another domain may run this concurrently"
                sink_name name u.u_what
            end)
          (List.rev mutations)
      in
      let rec hunt e =
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
            let parts = try Longident.flatten txt with _ -> [] in
            if Lock_analysis.is_async_sink parts then
              List.iter
                (fun (_, a) ->
                  match a.pexp_desc with
                  | Pexp_fun _ | Pexp_function _ ->
                      check_sink (String.concat "." parts) a
                  | _ -> ())
                args
        | _ -> ());
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ ce -> hunt ce);
          }
        in
        Ast_iterator.default_iterator.expr it e
      in
      hunt f.body)
    cg.funcs;
  !findings
