(** Static analysis over the pipeline's artifacts and this repository's
    own sources.

    Two prongs (see DESIGN.md, "Verification & lint"):

    - the {e semantic verifier} ({!Semantic}, re-exported here) checks
      IR well-formedness, affinity invariants and mapping soundness of
      what the pipeline emits — {!report} is the one-call battery the
      [locmap check] CLI subcommand and the test suite share, and
      [Locmap.Mapper.map ~verify:true] asserts the same invariants at
      each pipeline phase boundary;
    - the {e concurrency analyzer} ({!Ast_lint} over {!Ast_source} /
      {!Callgraph} / {!Lock_analysis} / {!Escape_analysis}): a
      parsetree-based, interprocedural analysis of lock order,
      blocking-under-lock, and domain-escape across the repository's
      sources ([bin/locmap_lint.ml], [make lint]). The older lexical
      token scan ({!Lint}) is kept as a fallback tier.

    {b Thread safety}: stateless; see the submodule contracts. *)

include module type of Semantic

module Lint : module type of Lint
module Ast_source : module type of Ast_source
module Callgraph : module type of Callgraph
module Lock_analysis : module type of Lock_analysis
module Escape_analysis : module type of Escape_analysis
module Ast_lint : module type of Ast_lint
