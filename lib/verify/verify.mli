(** Static analysis over the pipeline's artifacts and this repository's
    own sources.

    Two prongs (see DESIGN.md, "Verification & lint"):

    - the {e semantic verifier} ({!Semantic}, re-exported here) checks
      IR well-formedness, affinity invariants and mapping soundness of
      what the pipeline emits — {!report} is the one-call battery the
      [locmap check] CLI subcommand and the test suite share, and
      [Locmap.Mapper.map ~verify:true] asserts the same invariants at
      each pipeline phase boundary;
    - the {e concurrency lint} ({!Lint}) scans [lib/service] and
      [lib/harness] sources for shared mutable state reachable from
      [Service.Pool] workers without a mutex, and for missing
      thread-safety contracts ([bin/locmap_lint.ml], [make lint]).

    {b Thread safety}: stateless; see the submodule contracts. *)

include module type of Semantic

module Lint : module type of Lint
