(** Lock-set, lock-order, and blocking-under-lock analysis over the
    parsetree ({!Ast_lint} rules [double-acquire], [lock-order-cycle],
    [blocking-under-lock]).

    For every top-level binding in the {!Callgraph}, a symbolic walk
    threads the set of held mutexes through the body: [Mutex.lock]/
    [Mutex.unlock] and [Mutex.protect] update it through sequences and
    [let] chains; [Fun.protect ~finally:(... Mutex.unlock m ...)] is
    recognised as releasing [m]; a function parameter invoked under a
    lock marks the binding as a {e guard wrapper}, and literal
    closures handed to it at call sites are re-analysed with the
    wrapper's locks added (the repo's [locked t f] / [with_lock]
    idiom). Closures handed to [Domain.spawn] or [Pool] submission
    start with an empty lock set — they run on another domain.

    Interprocedural step: per-function summaries (acquisitions,
    blocking operations, calls with the lock set held at the call
    site) are closed transitively over resolved calls, so
    "[drain] calls [reap] which joins a domain" is reported at the
    call site with its chain. The global lock-{e acquisition}-order
    graph accumulates an edge [a -> b] whenever [b] is acquired (or a
    callee acquires it) with [a] held; strongly-connected components
    of two or more locks are reported as potential deadlocks.

    Blocking operations: [Unix] read/write/select/accept/connect/
    sleep/wait syscalls, [Domain.join], [Thread.join]/[delay], and
    [Condition.wait] — the latter only counts the mutexes it does
    {e not} release (waiting on your own mutex is the intended use;
    waiting while a second mutex is held is the hazard).

    Known approximations (all documented false-negative-only, except
    the last): a lock taken in one branch of an [if]/[match] does not
    propagate past the join; [Mutex.try_lock] is not tracked; calls
    that resolve to nothing (stdlib, parameters, closures in data
    structures) contribute no effects. Local functions are analysed
    with the lock set at their {e definition} point, which can both
    miss and over-report when the definition and call sites differ —
    in this tree they do not.

    Mutex identity is syntactic: record fields unify by field name
    within the defining module (rendered [Module#field]), plain
    identifiers by name ([Module.name]).

    {b Thread safety}: stateless; analysis allocates per call. *)

val blocking_ops : string list
(** Qualified names treated as indefinitely-blocking calls. *)

val is_async_sink : string list -> bool
(** Is this flattened callee path a task-submission sink whose literal
    closure arguments run on another domain ([Domain.spawn],
    [Thread.create], [*.submit], [Pool.map]/[Pool.try_map])? Shared
    with {!Escape_analysis}. *)

val analyze : Callgraph.t -> Lint.finding list
(** All lock-discipline findings over the graph's sources, unfiltered
    (suppression markers are applied by {!Ast_lint}). *)
