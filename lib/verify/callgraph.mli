(** Per-run call graph of top-level bindings, for the AST lint.

    Every [let]-bound name at the top level of a scanned file (or of a
    nested [module M = struct .. end]) becomes a {!func} keyed by its
    fully-qualified name ([Server.handle], [Pool.try_map],
    [Api.Sub.f]). The interprocedural analyses ({!Lock_analysis})
    resolve call sites against this table to propagate effects —
    "calling [Api.submit] eventually blocks in [Condition.wait]" —
    across function and library boundaries within one scan.

    Resolution is purely syntactic (no typing, no [open] tracking): a
    qualified path matches any scanned module name that is a suffix of
    it, and an unqualified name matches the current module. Unresolved
    calls (stdlib, parameters, closures) contribute no effects.

    {b Thread safety}: values are immutable after {!build}. *)

type func = {
  fq : string;  (** fully-qualified: ["Server.handle"] *)
  name : string;  (** last component *)
  params : string list;
      (** in order; labelled as ["~name"], optional as ["?name"] *)
  body : Parsetree.expression;  (** after peeling the [fun] spine *)
  line : int;  (** 1-based line of the binding *)
  src : Ast_source.t;
}

type t = {
  funcs : func list;
  by_fq : (string, func) Hashtbl.t;
  sources : Ast_source.t list;
}

val peel_params : Parsetree.expression -> string list * Parsetree.expression
(** Split a binding RHS into its parameter names and inner body. *)

val strip_param : string -> string
(** Drop the ["~"]/["?"] label marker from a parameter name. *)

val param_for_arg :
  string list -> label:Asttypes.arg_label -> pos_index:int -> string option
(** The stripped name of the declared parameter an argument binds to:
    labelled arguments by label, the [pos_index]-th positional argument
    by position among positional parameters. *)

val build : Ast_source.t list -> t
(** Index every parsed source; files with parse errors contribute no
    functions. *)

val resolve : t -> current_module:string -> Longident.t -> func list
(** All known bindings a call-site identifier may refer to (empty for
    stdlib and local names; several on module-name ambiguity). *)
