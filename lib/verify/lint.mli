(** Concurrency lint: a lexical pass over OCaml sources.

    The serving stack fans work across [Service.Pool] domains, so any
    module reachable from a worker must guard its shared mutable state.
    This lint enforces that contract lexically — no typed AST, just
    comment/string-stripped token scanning — which keeps it dependency-
    free and fast enough for a pre-commit hook, at the cost of being a
    heuristic: it flags the patterns that have bitten this codebase
    rather than proving data-race freedom.

    Rules (kebab-case ids reported in findings):

    - [unguarded-global]: a top-level value binding that creates
      mutable state ([Hashtbl.create], [ref], [Buffer.create],
      [Queue.create], [Stack.create]) in a file that never touches a
      [Mutex] at all.
    - [unguarded-global-use]: such a binding used by a top-level item
      that neither locks a mutex ([Mutex.protect] / [Mutex.lock]) nor
      calls one of the file's guard functions (a top-level binding
      whose body locks a mutex, e.g. a [with_lock] wrapper).
    - [mutable-field-no-mutex]: a record type with [mutable] fields in
      a file that never touches a [Mutex].
    - [missing-thread-safety-contract]: a scanned [.ml] whose [.mli]
      lacks the thread-safety contract comment (any spelling of
      "thread safety" / "thread-safe").
    - [missing-interface] (only with [require_mli]): a [.ml] with no
      sibling [.mli].

    Function bindings ([let f x = ...]) are exempt from the global
    rules — state they create is per-call, not shared. A finding can
    be suppressed by putting [lint:ignore] in a comment on the
    offending line.

    {b Thread safety}: stateless; scanning allocates per call. *)

type finding = {
  file : string;
  line : int;  (** 1-based *)
  rule : string;
  message : string;
}

type source = {
  path : string;  (** reported in findings; need not exist on disk *)
  code : string;  (** the [.ml] contents *)
  intf : string option;  (** the sibling [.mli] contents, if any *)
}

val pp_finding : Format.formatter -> finding -> unit
(** [file:line: [rule] message]. *)

val scan_source : ?concurrency:bool -> ?require_contract:bool -> source -> finding list
(** Pure scan of one compilation unit. [concurrency] (default [true])
    enables the mutable-state rules; [require_contract] (default
    [true]) enables the [.mli] contract rule (it only fires when
    [intf] is [Some _]). *)

val scan_files :
  ?concurrency:bool ->
  ?require_contract:bool ->
  ?require_mli:bool ->
  string list ->
  finding list
(** Reads each [.ml] path (and its sibling [.mli], when present) and
    scans it. [require_mli] (default [false]) additionally flags
    missing interfaces. *)

val scan_dirs :
  ?concurrency:bool ->
  ?require_contract:bool ->
  ?require_mli:bool ->
  string list ->
  finding list
(** {!scan_files} over every [.ml] found by recursive directory walk
    (entries sorted, so output order is stable). A path that is a
    plain file is scanned directly. *)
