include Semantic
module Lint = Lint
module Ast_source = Ast_source
module Callgraph = Callgraph
module Lock_analysis = Lock_analysis
module Escape_analysis = Escape_analysis
module Ast_lint = Ast_lint
