include Semantic
module Lint = Lint
