(** The AST concurrency lint: orchestrates {!Lock_analysis} and
    {!Escape_analysis} over {!Ast_source}-parsed files, applies
    suppression markers, and renders findings for humans and CI.

    This is the symbolic replacement for the lexical {!Lint} pass:
    instead of token heuristics it analyses the parsetree and a
    per-run call graph of top-level bindings, so lock discipline is
    checked across function and library boundaries. Rules:

    - [lock-order-cycle] — the global lock-acquisition-order graph has
      a cycle (potential deadlock between domains).
    - [double-acquire] — a non-reentrant mutex is acquired while
      already held, directly or through a callee (self-deadlock).
    - [blocking-under-lock] — a call that can block indefinitely
      ([Unix] syscalls, [Domain.join], [Condition.wait] on a foreign
      mutex, …) runs while a mutex is held, directly or through a
      callee.
    - [domain-escape] — a closure handed to [Domain.spawn]/[Pool]
      submission captures mutable state without its lock (see
      {!Escape_analysis}).
    - [missing-thread-safety-contract] — the implementation has a
      concurrency surface (mutex/atomic/domain use, shared mutable
      state) but its [.mli] documents no thread-safety contract.
      AST-driven: pure modules are exempt, unlike the lexical tier's
      blanket requirement.
    - [missing-interface] (opt-in) — a scanned [.ml] has no [.mli].
    - [parse-error] — the file did not parse; it contributes nothing
      else to the scan.

    Findings are suppressed by [lint:ignore] / [lint:ignore[rule]]
    markers on the reported line (see {!Ast_source}), sorted by
    file/line/rule, and deduplicated.

    {b Thread safety}: stateless; scanning allocates per call. *)

type config = {
  lock_rules : bool;
  escape_rules : bool;
  contract_rule : bool;
  require_mli : bool;
}

val default_config : config
(** Everything on except [require_mli]. *)

val rules : string list
(** Every rule id this lint can emit. *)

type unit_ = { src : Ast_source.t; intf : string option }
(** One compilation unit: parsed implementation plus raw sibling
    interface text, when present. *)

val scan_units : ?config:config -> unit_ list -> Lint.finding list
(** Analyse the units as one program (one call graph). Pure. *)

val scan_files : ?config:config -> string list -> Lint.finding list
(** Read each [.ml] path (and sibling [.mli]) and {!scan_units}. *)

val scan_dirs :
  ?config:config -> ?exclude:string list -> string list -> Lint.finding list
(** {!scan_files} over every [.ml] under the given roots (recursive,
    sorted, [_build] and dot-directories skipped; a plain file is
    scanned directly). [exclude] entries are path prefixes relative to
    how the roots are spelled, e.g. ["lib/verify"]. *)

val to_json : Lint.finding list -> string
(** Machine-readable findings: [{"findings":[{file,line,rule,message}
    …],"count":n}] — the CI artifact format. *)

val selftest_expectations : (string * string) list
(** Fixture stem → rule id pairs the self-test drives. *)

val selftest : dir:string -> (string, string) result
(** Seeded-fixture gate: for every expectation, [<stem>_pos.ml] in
    [dir] must produce its rule and [<stem>_neg.ml] must not.
    [Error] lists every silent rule and wrongly-flagged near-miss. *)
