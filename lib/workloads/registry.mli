(** The benchmark suite: the paper's 21 multi-threaded applications.

    Regular applications (compile-time analysable) and irregular ones
    (index-array based, inspector–executor) in the same proportions the
    paper's Table 3 lists. Every entry is a synthetic kernel whose
    access-pattern shape follows the original application — see
    DESIGN.md for the substitution rationale.

    {b Thread safety}: the registry is immutable after module
    initialisation and every [program] constructor builds a fresh,
    deterministic program from its arguments alone, so entries may be
    resolved and instantiated concurrently from any domain. *)

type entry = {
  name : string;
  kind : Ir.Program.kind;
  description : string;
  program : ?scale:float -> unit -> Ir.Program.t;
}

val all : entry list
(** All 21 benchmarks, in the paper's Figure 7 order. *)

val names : string list

val find : string -> entry
(** Raises [Not_found] for an unknown benchmark. *)

val find_opt : string -> entry option

val regular : entry list

val irregular : entry list
