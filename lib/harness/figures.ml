let private_cfg = Machine.Config.default

let shared_cfg = { Machine.Config.default with llc_org = Cache.Llc.Shared }

let both_orgs = [ ("private", private_cfg); ("shared", shared_cfg) ]

let all_apps = Workloads.Registry.names

(* Representative subset (4 regular + 3 irregular, spanning strong and
   weak localisability) used by the parameter sweeps to bound
   simulation time. *)
let sweep_apps =
  [ "fmm"; "lu"; "fft"; "jacobi-3d"; "swim"; "moldyn"; "equake" ]

(* The nine applications the paper could scale up on KNL (Figure 17). *)
let knl_apps =
  [ "fmm"; "cholesky"; "fft"; "lu"; "radix"; "mxm"; "hpccg"; "moldyn";
    "diff" ]

(* Mutex-guarded like [Experiment]'s memo table, so figure drivers stay
   usable from service worker domains. *)
let prepared_cache : (string * float, Experiment.prepared) Hashtbl.t =
  Hashtbl.create 64

let prepared_lock = Mutex.create ()

let prep ~scale name =
  Mutex.lock prepared_lock;
  let found = Hashtbl.find_opt prepared_cache (name, scale) in
  Mutex.unlock prepared_lock;
  match found with
  | Some p -> p
  | None ->
      let p = Experiment.prepare_name ~scale name in
      Mutex.lock prepared_lock;
      Hashtbl.replace prepared_cache (name, scale) p;
      Mutex.unlock prepared_lock;
      p

let exec_improvement cfg p strategy =
  let base = Experiment.run cfg p Experiment.Default in
  let opt = Experiment.run cfg p strategy in
  snd (Experiment.reductions ~base opt)

let both_reductions cfg p strategy =
  let base = Experiment.run cfg p Experiment.Default in
  let opt = Experiment.run cfg p strategy in
  Experiment.reductions ~base opt

(* -------------------------------------------------------------- *)

let table4 ~scale:_ =
  print_newline ();
  print_endline "Table 4: system setup";
  print_endline "---------------------";
  Format.printf "%a@." Machine.Config.pp private_cfg

let table3 ~scale =
  let rows =
    List.map
      (fun name ->
        let p = prep ~scale name in
        let opt = Experiment.run private_cfg p Experiment.Location_aware in
        let info = Option.get opt.info in
        [
          name;
          string_of_int (Ir.Program.num_nests p.prog);
          string_of_int (Ir.Program.num_arrays p.prog);
          string_of_int (Array.length info.Locmap.Mapper.sets);
          Report.pct (100. *. info.Locmap.Mapper.moved_fraction) ^ "%";
        ])
      all_apps
  in
  Report.table ~title:"Table 3: benchmark properties"
    ~headers:[ "benchmark"; "loop nests"; "arrays"; "iter sets"; "frac moved" ]
    rows

let fig2 ~scale =
  let per_org cfg p = exec_improvement cfg p Experiment.Ideal_network in
  let rows =
    List.map
      (fun name ->
        let p = prep ~scale name in
        [
          name;
          Report.pct (per_org private_cfg p);
          Report.pct (per_org shared_cfg p);
        ])
      all_apps
  in
  let geo org =
    Report.geomean_reduction
      (List.map (fun n -> per_org org (prep ~scale n)) all_apps)
  in
  Report.table
    ~title:
      "Figure 2: potential execution-time improvement with an ideal network \
       (%)"
    ~headers:[ "benchmark"; "private LLC"; "shared LLC" ]
    (rows
    @ [ [ "GEOMEAN"; Report.pct (geo private_cfg); Report.pct (geo shared_cfg) ] ])

let per_app_details cfg ~scale =
  List.map
    (fun name ->
      let p = prep ~scale name in
      let base = Experiment.run cfg p Experiment.Default in
      let opt = Experiment.run cfg p Experiment.Location_aware in
      let info = Option.get opt.Experiment.info in
      let net, time = Experiment.reductions ~base opt in
      let overhead = 100. *. Machine.Stats.overhead_fraction opt.stats in
      (name, info, net, time, overhead))
    all_apps

let fig7or8 ~scale ~cfg ~fig ~sub_err ~sub_red ~sub_ovh ~shared =
  let details = per_app_details cfg ~scale in
  let err_headers =
    if shared then [ "benchmark"; "MAI error"; "CAI error" ]
    else [ "benchmark"; "MAI error" ]
  in
  Report.table
    ~title:
      (Printf.sprintf "Figure %s: estimation error (mean eta, est vs observed)"
         sub_err)
    ~headers:err_headers
    (List.map
       (fun (name, (info : Locmap.Mapper.info), _, _, _) ->
         if shared then
           [ name; Report.f3 info.mai_error; Report.f3 info.cai_error ]
         else [ name; Report.f3 info.mai_error ])
       details
    @ [
        (let maes =
           List.map (fun (_, (i : Locmap.Mapper.info), _, _, _) -> i.mai_error)
             details
         in
         let caes =
           List.map (fun (_, (i : Locmap.Mapper.info), _, _, _) -> i.cai_error)
             details
         in
         if shared then
           [ "MEAN"; Report.f3 (Report.mean maes); Report.f3 (Report.mean caes) ]
         else [ "MEAN"; Report.f3 (Report.mean maes) ]);
      ]);
  Report.table
    ~title:
      (Printf.sprintf
         "Figure %s (%s LLC): reduction in network latency and execution time \
          (%%)"
         sub_red fig)
    ~headers:[ "benchmark"; "network latency"; "execution time" ]
    (List.map
       (fun (name, _, net, time, _) ->
         [ name; Report.pct net; Report.pct time ])
       details
    @ [
        [
          "GEOMEAN";
          Report.pct
            (Report.geomean_reduction
               (List.map (fun (_, _, n, _, _) -> n) details));
          Report.pct
            (Report.geomean_reduction
               (List.map (fun (_, _, _, t, _) -> t) details));
        ];
      ]);
  Report.table
    ~title:(Printf.sprintf "Figure %s: runtime overheads (%%)" sub_ovh)
    ~headers:[ "benchmark"; "overhead" ]
    (List.map
       (fun (name, _, _, _, ovh) -> [ name; Report.pct ovh ])
       details
    @ [
        [
          "MEAN";
          Report.pct
            (Report.mean (List.map (fun (_, _, _, _, o) -> o) details));
        ];
      ])

let fig7 ~scale =
  fig7or8 ~scale ~cfg:private_cfg ~fig:"private" ~sub_err:"7a" ~sub_red:"7b"
    ~sub_ovh:"7c" ~shared:false

let fig8 ~scale =
  fig7or8 ~scale ~cfg:shared_cfg ~fig:"shared" ~sub_err:"8a" ~sub_red:"8b"
    ~sub_ovh:"8c" ~shared:true

let fig9 ~scale =
  let scale = 0.5 *. scale in
  let variants =
    [
      ("default parameters", fun (c : Machine.Config.t) -> c);
      ( "8x8 network",
        fun (c : Machine.Config.t) -> { c with rows = 8; cols = 8 } );
      ( "1MB/core LLC",
        fun (c : Machine.Config.t) -> { c with l2_size = 1024 * 1024 } );
      ( "page size = 8KB",
        fun (c : Machine.Config.t) -> { c with page_size = 8192 } );
      ( "different MC placement",
        fun (c : Machine.Config.t) ->
          { c with mc_placement = Noc.Topology.Edge_midpoints } );
    ]
  in
  let rows =
    List.concat_map
      (fun (org, base_cfg) ->
        List.map
          (fun (label, f) ->
            let cfg = f base_cfg in
            let nets, times =
              List.split
                (List.map
                   (fun name ->
                     both_reductions cfg (prep ~scale name)
                       Experiment.Location_aware)
                   sweep_apps)
            in
            [
              org;
              label;
              Report.pct (Report.geomean_reduction nets);
              Report.pct (Report.geomean_reduction times);
            ])
          variants)
      both_orgs
  in
  Report.table
    ~title:
      "Figure 9: sensitivity to hardware parameters (geomean %, 8-app subset \
       at half scale)"
    ~headers:[ "LLC"; "variant"; "network latency"; "execution time" ]
    rows

let fig10 ~scale =
  let scale = 0.5 *. scale in
  let region_variants =
    (* (label, region_h, region_w) on the 6x6 mesh, paper Figure 10a/b *)
    [
      ("4 (3x3)", 3, 3);
      ("6 (3x2)", 3, 2);
      ("9 (2x2)", 2, 2);
      ("18 (2x1)", 2, 1);
      ("36 (1x1)", 1, 1);
    ]
  in
  let region_rows =
    List.concat_map
      (fun (org, base_cfg) ->
        List.map
          (fun (label, h, w) ->
            let cfg =
              { base_cfg with Machine.Config.region_h = h; region_w = w }
            in
            let nets, times =
              List.split
                (List.map
                   (fun name ->
                     both_reductions cfg (prep ~scale name)
                       Experiment.Location_aware)
                   sweep_apps)
            in
            [
              org;
              label;
              Report.pct (Report.geomean_reduction nets);
              Report.pct (Report.geomean_reduction times);
            ])
          region_variants)
      both_orgs
  in
  Report.table
    ~title:
      "Figure 10a/b: sensitivity to the number of regions (geomean %, 8-app \
       subset at half scale)"
    ~headers:[ "LLC"; "regions (size)"; "network latency"; "execution time" ]
    region_rows;
  let fraction_variants =
    [ 0.001; 0.0025; 0.005; 0.0075; 0.01; 0.02 ]
  in
  let frac_rows =
    List.concat_map
      (fun (org, base_cfg) ->
        List.map
          (fun f ->
            let cfg = { base_cfg with Machine.Config.iter_set_fraction = f } in
            let nets, times =
              List.split
                (List.map
                   (fun name ->
                     both_reductions cfg (prep ~scale name)
                       Experiment.Location_aware)
                   sweep_apps)
            in
            [
              org;
              Printf.sprintf "%.2f%%" (100. *. f);
              Report.pct (Report.geomean_reduction nets);
              Report.pct (Report.geomean_reduction times);
            ])
          fraction_variants)
      both_orgs
  in
  Report.table
    ~title:
      "Figure 10c/d: sensitivity to iteration-set size (geomean %, 8-app \
       subset at half scale)"
    ~headers:[ "LLC"; "set size"; "network latency"; "execution time" ]
    frac_rows

let fig11 ~scale =
  let scale = 0.5 *. scale in
  let combos =
    [
      ("(page mem, line LLC) [default]", Mem.Distribution.Page_grain,
       Mem.Distribution.Line_grain);
      ("(line mem, line LLC)", Mem.Distribution.Line_grain,
       Mem.Distribution.Line_grain);
      ("(page mem, page LLC)", Mem.Distribution.Page_grain,
       Mem.Distribution.Page_grain);
      ("(line mem, page LLC)", Mem.Distribution.Line_grain,
       Mem.Distribution.Page_grain);
    ]
  in
  let rows =
    List.concat_map
      (fun (org, base_cfg) ->
        List.map
          (fun (label, mem_gran, llc_gran) ->
            let cfg =
              {
                base_cfg with
                Machine.Config.dist =
                  { base_cfg.Machine.Config.dist with mem_gran; llc_gran };
              }
            in
            let times =
              List.map
                (fun name ->
                  exec_improvement cfg (prep ~scale name)
                    Experiment.Location_aware)
                sweep_apps
            in
            [ org; label; Report.pct (Report.geomean_reduction times) ])
          combos)
      both_orgs
  in
  Report.table
    ~title:
      "Figure 11: physical-address distribution combinations (geomean \
       execution-time improvement %, subset)"
    ~headers:[ "LLC"; "(memory, cache) distribution"; "execution time" ]
    rows

let fig12 ~scale =
  let ddr4 (c : Machine.Config.t) =
    { c with dram_kind = Mem.Dram.Ddr4_2400 }
  in
  let rows =
    List.map
      (fun name ->
        let p = prep ~scale name in
        [
          name;
          Report.pct
            (exec_improvement (ddr4 private_cfg) p Experiment.Location_aware);
          Report.pct
            (exec_improvement (ddr4 shared_cfg) p Experiment.Location_aware);
        ])
      all_apps
  in
  let geo cfg =
    Report.geomean_reduction
      (List.map
         (fun n ->
           exec_improvement (ddr4 cfg) (prep ~scale n)
             Experiment.Location_aware)
         all_apps)
  in
  Report.table
    ~title:"Figure 12: execution-time improvement with DDR-4 (%)"
    ~headers:[ "benchmark"; "private LLC"; "shared LLC" ]
    (rows
    @ [ [ "GEOMEAN"; Report.pct (geo private_cfg); Report.pct (geo shared_cfg) ] ])

let fig13 ~scale =
  let apps = [ "jacobi-3d"; "lulesh"; "minighost"; "swim"; "mxm"; "art" ] in
  let rows =
    List.concat_map
      (fun (org, cfg) ->
        List.map
          (fun name ->
            let p = prep ~scale name in
            let la = exec_improvement cfg p Experiment.Location_aware in
            let don = exec_improvement cfg p Experiment.Data_opt in
            let both = exec_improvement cfg p Experiment.La_plus_do in
            [ org; name; Report.pct la; Report.pct don; Report.pct both ])
          apps)
      both_orgs
  in
  Report.table
    ~title:
      "Figure 13: comparison against data-layout reorganisation (execution-\
       time improvement %)"
    ~headers:[ "LLC"; "benchmark"; "LA"; "DO"; "LA+DO" ]
    rows

let fig14 ~scale =
  let rows =
    List.map
      (fun name ->
        let p = prep ~scale name in
        [
          name;
          Report.pct (exec_improvement private_cfg p Experiment.Location_aware);
          Report.pct (exec_improvement shared_cfg p Experiment.Location_aware);
          Report.pct (exec_improvement private_cfg p Experiment.Hw_placement);
          Report.pct (exec_improvement shared_cfg p Experiment.Hw_placement);
        ])
      all_apps
  in
  let geo cfg strat =
    Report.geomean_reduction
      (List.map
         (fun n -> exec_improvement cfg (prep ~scale n) strat)
         all_apps)
  in
  Report.table
    ~title:
      "Figure 14: compiler-based (ours) vs hardware-based computation \
       placement (execution-time improvement %)"
    ~headers:
      [ "benchmark"; "LA private"; "LA shared"; "HW private"; "HW shared" ]
    (rows
    @ [
        [
          "GEOMEAN";
          Report.pct (geo private_cfg Experiment.Location_aware);
          Report.pct (geo shared_cfg Experiment.Location_aware);
          Report.pct (geo private_cfg Experiment.Hw_placement);
          Report.pct (geo shared_cfg Experiment.Hw_placement);
        ];
      ])

let fig15 ~scale =
  let rows =
    List.map
      (fun name ->
        let p = prep ~scale name in
        [
          name;
          Report.pct (exec_improvement private_cfg p Experiment.La_oracle);
          Report.pct (exec_improvement shared_cfg p Experiment.La_oracle);
        ])
      all_apps
  in
  let geo cfg =
    Report.geomean_reduction
      (List.map
         (fun n -> exec_improvement cfg (prep ~scale n) Experiment.La_oracle)
         all_apps)
  in
  Report.table
    ~title:
      "Figure 15: perfect MAI/CAI and cache-miss estimation \
       (execution-time improvement %)"
    ~headers:[ "benchmark"; "private LLC"; "shared LLC" ]
    (rows
    @ [ [ "GEOMEAN"; Report.pct (geo private_cfg); Report.pct (geo shared_cfg) ] ])

(* KNL-like machine: bigger per-tile L2, cluster modes as address-
   mapping policies (see DESIGN.md substitutions). *)
let knl_cfg mode =
  {
    private_cfg with
    Machine.Config.l2_size = 1024 * 1024;
    dist = { Mem.Distribution.default with cluster = mode };
  }

let knl_exec_cycles ~scale name mode strategy =
  let p = prep ~scale name in
  let o = Experiment.run (knl_cfg mode) p strategy in
  o.Experiment.stats.Machine.Stats.cycles

let fig16 ~scale =
  let modes =
    [
      ("all-to-all", Mem.Distribution.All_to_all);
      ("quadrant", Mem.Distribution.Quadrant);
      ("SNC-4", Mem.Distribution.Snc4);
    ]
  in
  (* Everything is reported against the original (default-mapped)
     all-to-all mode, as in the paper. *)
  let rows =
    List.concat_map
      (fun (mlabel, mode) ->
        List.map
          (fun (slabel, strat) ->
            let impr =
              List.map
                (fun name ->
                  let base =
                    knl_exec_cycles ~scale name Mem.Distribution.All_to_all
                      Experiment.Default
                  in
                  Experiment.reduction ~base
                    (knl_exec_cycles ~scale name mode strat))
                knl_apps
            in
            [ slabel ^ " " ^ mlabel; Report.pct (Report.geomean_reduction impr) ])
          [ ("original", Experiment.Default);
            ("optimized", Experiment.Location_aware) ])
      modes
  in
  Report.table
    ~title:
      "Figure 16: KNL-style cluster modes (execution-time improvement over \
       original all-to-all, %)"
    ~headers:[ "configuration"; "improvement" ]
    rows

let fig17 ~scale =
  let run_at mult name mode strat =
    knl_exec_cycles ~scale:(scale *. mult) name mode strat
  in
  let rows =
    List.map
      (fun name ->
        let cell mult mode =
          let base = run_at mult name mode Experiment.Default in
          Report.pct
            (Experiment.reduction ~base
               (run_at mult name mode Experiment.Location_aware))
        in
        [
          name;
          cell 2.0 Mem.Distribution.Quadrant;
          cell 2.0 Mem.Distribution.Snc4;
          cell 4.0 Mem.Distribution.Quadrant;
          cell 4.0 Mem.Distribution.Snc4;
        ])
      knl_apps
  in
  Report.table
    ~title:
      "Figure 17: KNL-style modes with larger inputs (execution-time \
       improvement of optimized over original, %)"
    ~headers:[ "benchmark"; "quad 2x"; "SNC-4 2x"; "quad 4x"; "SNC-4 4x" ]
    rows

let multiprog ~scale =
  let apps = [ "jacobi-3d"; "moldyn"; "fft"; "swim" ] in
  let scale = scale *. 0.5 in
  let quadrant_cores q =
    (* 3x3 corner blocks of the 6x6 mesh *)
    let r0 = if q land 2 = 0 then 0 else 3 in
    let c0 = if q land 1 = 0 then 0 else 3 in
    Array.init 9 (fun k -> ((r0 + (k / 3)) * 6) + c0 + (k mod 3))
  in
  let run_mix cfg optimized =
    let jobs =
      List.mapi
        (fun q name ->
          let p = prep ~scale name in
          let cores = quadrant_cores q in
          if optimized then begin
            let info = Locmap.Mapper.map ~cores cfg p.Experiment.trace in
            Locmap.Mapper.job ~cores p.Experiment.trace info
          end
          else begin
            let sets =
              Ir.Iter_set.partition p.Experiment.prog
                ~fraction:cfg.Machine.Config.iter_set_fraction
            in
            let schedule =
              Machine.Schedule.round_robin ~cores
                ~num_cores:(Machine.Config.num_cores cfg) sets
            in
            Machine.Engine.job ~cores ~trace:p.Experiment.trace
              ~schedule_of_step:(fun _ -> schedule)
              ()
          end)
        apps
    in
    Machine.Engine.run cfg jobs
  in
  let rows =
    List.map
      (fun (org, cfg) ->
        let base = run_mix cfg false in
        let opt = run_mix cfg true in
        let impr =
          List.mapi
            (fun j _ ->
              Experiment.reduction ~base:base.Machine.Engine.job_finish.(j)
                opt.Machine.Engine.job_finish.(j))
            apps
        in
        [ org; Report.pct (Report.geomean_reduction impr) ])
      both_orgs
  in
  Report.table
    ~title:
      "Multiprogrammed: four co-running applications (geomean per-app \
       execution-time improvement %)"
    ~headers:[ "LLC"; "improvement" ]
    rows

(* Ablations of the design choices DESIGN.md calls out: the load
   balancer, the α weighting of Algorithm 2, and the MAC tolerance that
   shapes the nearest-MC sets. *)
let ablations ~scale =
  let improvement cfg ~mapf p =
    let base = Experiment.run cfg p Experiment.Default in
    let info = mapf cfg p.Experiment.trace in
    let r =
      Machine.Engine.run cfg [ Locmap.Mapper.job p.Experiment.trace info ]
    in
    Experiment.reduction ~base:base.Experiment.stats.Machine.Stats.cycles
      r.Machine.Engine.stats.Machine.Stats.cycles
  in
  let geo cfg mapf =
    Report.geomean_reduction
      (List.map (fun n -> improvement cfg ~mapf (prep ~scale n)) sweep_apps)
  in
  let full cfg t = Locmap.Mapper.map ~measure_error:false cfg t in
  let rows =
    [
      [ "private"; "full scheme";
        Report.pct (geo private_cfg full) ];
      [ "private"; "without load balancing";
        Report.pct
          (geo private_cfg (fun cfg t ->
               Locmap.Mapper.map ~measure_error:false ~balance:false cfg t)) ];
      [ "private"; "MAC tolerance 0";
        Report.pct
          (geo { private_cfg with Machine.Config.mac_tolerance = 0 } full) ];
      [ "private"; "MAC tolerance 4";
        Report.pct
          (geo { private_cfg with Machine.Config.mac_tolerance = 4 } full) ];
      [ "shared"; "full scheme (adaptive alpha)";
        Report.pct (geo shared_cfg full) ];
      [ "shared"; "alpha = 0 (memory term only)";
        Report.pct
          (geo shared_cfg (fun cfg t ->
               Locmap.Mapper.map ~measure_error:false ~alpha_override:0.0 cfg t)) ];
      [ "shared"; "alpha = 1 (cache term only)";
        Report.pct
          (geo shared_cfg (fun cfg t ->
               Locmap.Mapper.map ~measure_error:false ~alpha_override:1.0 cfg t)) ];
      [ "shared"; "without load balancing";
        Report.pct
          (geo shared_cfg (fun cfg t ->
               Locmap.Mapper.map ~measure_error:false ~balance:false cfg t)) ];
      [ "private"; "torus topology (midpoint MCs)";
        Report.pct
          (geo
             { private_cfg with
               Machine.Config.topology_kind = Noc.Topology.Torus;
               mc_placement = Noc.Topology.Edge_midpoints }
             full) ];
      [ "private"; "inverse-distance MAC";
        Report.pct
          (geo
             { private_cfg with
               Machine.Config.mac_mode = Machine.Config.Inverse_distance }
             full) ];
      [ "private"; "least-loaded placement";
        Report.pct
          (geo
             { private_cfg with
               Machine.Config.placement = Machine.Config.Least_loaded }
             full) ];
    ]
  in
  Report.table
    ~title:
      "Ablations: design choices of the mapping scheme (geomean execution-       time improvement %, subset)"
    ~headers:[ "LLC"; "variant"; "execution time" ]
    rows

type fig = {
  id : string;
  title : string;
  run : scale:float -> unit;
}

let all =
  [
    { id = "table3"; title = "benchmark properties"; run = table3 };
    { id = "table4"; title = "system setup"; run = table4 };
    { id = "fig2"; title = "ideal-network potential"; run = fig2 };
    { id = "fig7"; title = "private LLC results"; run = fig7 };
    { id = "fig8"; title = "shared LLC results"; run = fig8 };
    { id = "fig9"; title = "hardware sensitivity"; run = fig9 };
    { id = "fig10"; title = "region / set-size sensitivity"; run = fig10 };
    { id = "fig11"; title = "address distribution combos"; run = fig11 };
    { id = "fig12"; title = "DDR-4"; run = fig12 };
    { id = "fig13"; title = "vs data-layout optimisation"; run = fig13 };
    { id = "fig14"; title = "vs hardware placement"; run = fig14 };
    { id = "fig15"; title = "perfect estimation"; run = fig15 };
    { id = "fig16"; title = "KNL cluster modes"; run = fig16 };
    { id = "fig17"; title = "KNL larger inputs"; run = fig17 };
    { id = "multiprog"; title = "multiprogrammed co-runs"; run = multiprog };
    { id = "ablations"; title = "design-choice ablations"; run = ablations };
  ]

let find id = List.find_opt (fun f -> f.id = id) all
