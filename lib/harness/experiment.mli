(** Running benchmarks under the evaluated mapping strategies.

    One [prepared] bundle per (benchmark, scale); one [run] per
    (configuration, benchmark, strategy), memoised process-wide so the
    figure drivers can share results without re-simulating.

    {b Thread safety}: the memo table is mutex-protected, so [run] and
    [clear_cache] may be called from any domain. Concurrent [run]s of
    the same key may each simulate before one stores — wasted work, not
    corruption, since outcomes are deterministic. [prepare] allocates
    fresh state per call and is unconditionally safe. *)

type prepared = {
  entry : Workloads.Registry.entry;
  scale : float;
  prog : Ir.Program.t;
  trace : Ir.Trace.t;
}

val prepare : ?scale:float -> Workloads.Registry.entry -> prepared

val prepare_name : ?scale:float -> string -> prepared
(** Raises [Not_found] for an unknown benchmark name. *)

type strategy =
  | Default  (** round-robin iteration sets, the paper's baseline *)
  | Location_aware  (** the paper's scheme (CME / inspector–executor) *)
  | La_oracle  (** perfect MAI/CAI/miss estimation (Figure 15) *)
  | Ideal_network  (** default mapping, zero-latency NoC (Figure 2) *)
  | Hw_placement  (** Das et al. [16]-style placement (Figure 14) *)
  | Data_opt  (** Ding et al. [22] layout optimisation (Figure 13) *)
  | La_plus_do  (** DO first, then the paper's mapping (Figure 13) *)
  | Co_optimized
      (** alternating data/computation co-optimisation — the paper's
          future work, implemented in {!Extensions.Cooptimize} *)

val strategy_name : strategy -> string

type outcome = {
  stats : Machine.Stats.t;
  info : Locmap.Mapper.info option;
      (** mapping diagnostics, for location-aware strategies *)
}

val run : Machine.Config.t -> prepared -> strategy -> outcome
(** Simulates (memoised). *)

val clear_cache : unit -> unit

val reduction : base:int -> int -> float
(** Percentage reduction of a metric versus a baseline value. *)

val reductions : base:outcome -> outcome -> float * float
(** (network-latency reduction %, execution-time reduction %). *)
