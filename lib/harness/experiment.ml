type prepared = {
  entry : Workloads.Registry.entry;
  scale : float;
  prog : Ir.Program.t;
  trace : Ir.Trace.t;
}

let prepare ?(scale = 1.0) (entry : Workloads.Registry.entry) =
  let prog = entry.program ~scale () in
  (* The layout uses the default page size; experiments that change the
     page size only affect interleaving, and layouts stay page-aligned
     for any power-of-two page size below 8 KB because arrays are 8 KB
     aligned. *)
  let layout =
    Ir.Layout.allocate ~page_size:Machine.Config.default.page_size prog
  in
  { entry; scale; prog; trace = Ir.Trace.create prog layout }

let prepare_name ?scale name =
  prepare ?scale (Workloads.Registry.find name)

type strategy =
  | Default
  | Location_aware
  | La_oracle
  | Ideal_network
  | Hw_placement
  | Data_opt
  | La_plus_do
  | Co_optimized

let strategy_name = function
  | Default -> "default"
  | Location_aware -> "location-aware"
  | La_oracle -> "location-aware (oracle)"
  | Ideal_network -> "ideal network"
  | Hw_placement -> "hardware placement"
  | Data_opt -> "data layout opt"
  | La_plus_do -> "LA+DO"
  | Co_optimized -> "co-optimized"

type outcome = {
  stats : Machine.Stats.t;
  info : Locmap.Mapper.info option;
}

(* Process-wide memo table. Guarded by [cache_lock] so figure drivers
   may run from multiple domains; racing computations of the same key
   are allowed (results are deterministic — last store wins). *)
let cache : (string, outcome) Hashtbl.t = Hashtbl.create 256
let cache_lock = Mutex.create ()

let with_cache f =
  Mutex.lock cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_lock) f

let clear_cache () = with_cache (fun () -> Hashtbl.reset cache)

let key cfg prepared strategy =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (cfg, prepared.entry.Workloads.Registry.name, prepared.scale,
           strategy_name strategy)
          []))

let fresh_pt (cfg : Machine.Config.t) =
  Mem.Page_table.create ~page_size:cfg.page_size ()

(* Estimation-error measurement costs two extra functional replays per
   mapping; only the Figure 7a/8a configurations report it. *)
let wants_error_measurement (cfg : Machine.Config.t) =
  cfg = Machine.Config.default
  || cfg = { Machine.Config.default with llc_org = Cache.Llc.Shared }

let compute cfg prepared strategy =
  let trace = prepared.trace in
  match strategy with
  | Default ->
      let schedule = Locmap.Mapper.default_schedule cfg trace in
      let r = Machine.Engine.run_single cfg ~trace ~schedule () in
      { stats = r.stats; info = None }
  | Ideal_network ->
      let schedule = Locmap.Mapper.default_schedule cfg trace in
      let r =
        Machine.Engine.run_single ~ideal_network:true cfg ~trace ~schedule ()
      in
      { stats = r.stats; info = None }
  | Location_aware ->
      let pt = fresh_pt cfg in
      let info =
        Locmap.Mapper.map ~measure_error:(wants_error_measurement cfg)
          ~page_table:pt cfg trace
      in
      let r =
        Machine.Engine.run ~page_table:pt cfg [ Locmap.Mapper.job trace info ]
      in
      { stats = r.stats; info = Some info }
  | La_oracle ->
      let pt = fresh_pt cfg in
      let info =
        Locmap.Mapper.map ~estimation:Locmap.Mapper.Oracle
          ~measure_error:false ~page_table:pt cfg trace
      in
      let r =
        Machine.Engine.run ~page_table:pt cfg [ Locmap.Mapper.job trace info ]
      in
      { stats = r.stats; info = Some info }
  | Hw_placement ->
      let schedule = Baselines.Hw_mapping.schedule cfg trace in
      let r = Machine.Engine.run_single cfg ~trace ~schedule () in
      { stats = r.stats; info = None }
  | Data_opt ->
      let pt = fresh_pt cfg in
      let schedule = Locmap.Mapper.default_schedule cfg trace in
      Baselines.Layout_opt.optimize cfg trace ~schedule pt;
      let r =
        Machine.Engine.run_single ~page_table:pt cfg ~trace ~schedule ()
      in
      { stats = r.stats; info = None }
  | La_plus_do ->
      let pt = fresh_pt cfg in
      let schedule = Locmap.Mapper.default_schedule cfg trace in
      Baselines.Layout_opt.optimize cfg trace ~schedule pt;
      let info = Locmap.Mapper.map ~page_table:pt cfg trace in
      let r =
        Machine.Engine.run ~page_table:pt cfg [ Locmap.Mapper.job trace info ]
      in
      { stats = r.stats; info = Some info }
  | Co_optimized ->
      let pt = fresh_pt cfg in
      let info = Extensions.Cooptimize.run cfg trace pt in
      let r =
        Machine.Engine.run ~page_table:pt cfg [ Locmap.Mapper.job trace info ]
      in
      { stats = r.stats; info = Some info }

let run cfg prepared strategy =
  let k = key cfg prepared strategy in
  match with_cache (fun () -> Hashtbl.find_opt cache k) with
  | Some o -> o
  | None ->
      let o = compute cfg prepared strategy in
      with_cache (fun () -> Hashtbl.replace cache k o);
      o

let reduction ~base v =
  if base = 0 then 0.
  else 100. *. (1. -. (float_of_int v /. float_of_int base))

let reductions ~base opt =
  ( reduction ~base:base.stats.Machine.Stats.net_latency
      opt.stats.Machine.Stats.net_latency,
    reduction ~base:base.stats.Machine.Stats.cycles
      opt.stats.Machine.Stats.cycles )
