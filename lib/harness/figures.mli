(** Reproduction drivers: one function per table/figure of the paper's
    evaluation (Section 5). Each prints a plain-text table whose rows
    correspond to the paper's bars/series; EXPERIMENTS.md records the
    paper-reported values next to ours.

    [scale] scales every benchmark's input size (1.0 = the calibrated
    defaults); the sweep figures run on a fixed representative subset
    of applications to bound simulation time, as noted per figure.

    {b Thread safety}: each driver prints to stdout and must be run
    from a single thread; drivers share no mutable state with each
    other, so distinct figures may run in parallel from {!Pool}
    workers only if their output is serialised by the caller. *)

type fig = {
  id : string;
  title : string;
  run : scale:float -> unit;
}

val table3 : scale:float -> unit
(** Benchmark properties: nests, arrays, iteration sets, fraction of
    sets moved by load balancing. *)

val table4 : scale:float -> unit
(** The simulated system setup. *)

val fig2 : scale:float -> unit
(** Potential execution-time improvement with an ideal (zero-latency)
    network, private and shared LLCs. *)

val fig7 : scale:float -> unit
(** Private LLC: (a) MAI estimation error, (b) network-latency and
    execution-time reductions, (c) runtime overheads. *)

val fig8 : scale:float -> unit
(** Shared LLC: (a) MAI and CAI errors, (b) reductions, (c)
    overheads. *)

val fig9 : scale:float -> unit
(** Sensitivity to mesh size, LLC capacity, page size and MC
    placement. *)

val fig10 : scale:float -> unit
(** Sensitivity to the number of regions and the iteration-set size. *)

val fig11 : scale:float -> unit
(** Physical-address distribution combinations over (memory banks,
    cache banks). *)

val fig12 : scale:float -> unit
(** DDR-4 instead of DDR-3. *)

val fig13 : scale:float -> unit
(** Comparison and composition with data-layout optimisation (DO). *)

val fig14 : scale:float -> unit
(** Comparison with hardware-based computation placement. *)

val fig15 : scale:float -> unit
(** Perfect MAI/CAI/cache-miss estimation (optimality study). *)

val fig16 : scale:float -> unit
(** KNL-style cluster modes: all-to-all, quadrant, SNC-4, original vs
    optimised. *)

val fig17 : scale:float -> unit
(** KNL-style cluster modes with 2x and 4x input sizes. *)

val multiprog : scale:float -> unit
(** Four multi-threaded applications co-running. *)

val ablations : scale:float -> unit
(** Design-choice ablations beyond the paper: load balancing off, fixed
    α weights, MAC tolerance settings. *)

val all : fig list
(** Every driver, in paper order. *)

val find : string -> fig option
