(** Plain-text tables and aggregate statistics for the experiment
    reports.

    {b Thread safety}: the statistics helpers are pure; {!table}
    prints to stdout and concurrent callers (e.g. {!Pool} workers)
    must serialise their own output. *)

val table :
  title:string -> headers:string list -> string list list -> unit
(** Prints an aligned table on stdout. *)

val geomean_ratio : float list -> float
(** Geometric mean of positive ratios ([opt/base]); non-positive
    entries are clamped to a small epsilon. Empty list is 1. *)

val geomean_reduction : float list -> float
(** Aggregates percentage reductions the way the paper's GEOMEAN bars
    do: converts to ratios, takes the geometric mean, converts back to
    a percentage. *)

val mean : float list -> float

val pct : float -> string
(** Formats a percentage with one decimal. *)

val f3 : float -> string
(** Three-decimal float. *)
