type t = {
  sets : Ir.Iter_set.t array;
  region_of_set : int array;
  core_of : int array;
  schedule : Machine.Schedule.t;
}

let map ?fraction (cfg : Machine.Config.t) prog =
  let fraction =
    Option.value fraction ~default:cfg.Machine.Config.iter_set_fraction
  in
  let sets = Ir.Iter_set.partition prog ~fraction in
  let regions = Locmap.Region.create cfg in
  let num_regions = Locmap.Region.count regions in
  let num_cores = Machine.Config.num_cores cfg in
  let n = Array.length sets in
  let region_of_set = Array.init n (fun k -> k mod num_regions) in
  let loads = Array.make num_cores 0 in
  let core_of = Array.make n 0 in
  Array.iteri
    (fun k r ->
      let nodes = Locmap.Region.nodes_of regions r in
      let best = ref nodes.(0) in
      Array.iter (fun c -> if loads.(c) < loads.(!best) then best := c) nodes;
      core_of.(k) <- !best;
      loads.(!best) <- loads.(!best) + Ir.Iter_set.size sets.(k))
    region_of_set;
  {
    sets;
    region_of_set;
    core_of;
    schedule = Machine.Schedule.make ~sets ~core_of;
  }
