(** The degraded-mode mapping: a cheap, analysis-free baseline.

    When the serving layer cannot complete the full
    analyse→assign→balance pipeline within budget (deadline exceeded,
    retries exhausted, worker crashed — see [Service.Resilience]), it
    still owes the caller {e a} mapping. This module produces one in
    O(sets + cores) with no trace compilation and no replay: iteration
    sets are dealt round-robin over the regions in row-major region
    order — the same spatial blocking intuition as the BLP-style
    locality baselines — and within each region every set takes the
    least-loaded core (load in iterations, ties to the lowest node id).
    Everything is a pure function of the program shape and the machine
    geometry, so degraded responses are as deterministic as full ones.

    This is a quality floor, not a contender: it ignores MAI/CAI
    affinity entirely. Its one virtue is costing around three orders of
    magnitude less than the pipeline (measured by
    [bench/resilience_bench.exe]). *)

type t = {
  sets : Ir.Iter_set.t array;
  region_of_set : int array;  (** row-major round-robin region per set *)
  core_of : int array;  (** chosen core per set *)
  schedule : Machine.Schedule.t;
}

val map : ?fraction:float -> Machine.Config.t -> Ir.Program.t -> t
(** [fraction] defaults to the configuration's iteration-set fraction,
    mirroring [Locmap.Mapper.map]. Raises like the pipeline front end
    (e.g. [Invalid_argument] for a fraction outside (0, 1]) — callers in
    the service catch and classify via [Service.Fault.of_exn]. *)
