type t = {
  line_size : int;
  sets : int;
  assoc : int;
  line_shift : int;  (* log2 line_size when pow2 geometry, else -1 *)
  set_mask : int;  (* sets - 1 when pow2 geometry *)
  tags : int array;  (* sets * assoc; -1 = invalid; tag = line index *)
  dirty : Bytes.t;
  stamp : int array;  (* LRU timestamps *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

type result =
  | Hit
  | Miss of {
      victim_line_addr : int;
      victim_dirty : bool;
    }

let create ~size ~assoc ~line_size () =
  if size <= 0 || assoc <= 0 || line_size <= 0 then
    invalid_arg "Sa_cache.create: non-positive geometry";
  let lines = size / line_size in
  if lines = 0 || lines mod assoc <> 0 then
    invalid_arg "Sa_cache.create: size not divisible into sets";
  let sets = lines / assoc in
  (* Real geometries are powers of two; shift/mask then replaces the
     division and modulo on every lookup. A degenerate hand-built
     geometry keeps the arithmetic path. *)
  let pow2 n = n > 0 && n land (n - 1) = 0 in
  let line_shift =
    if pow2 line_size && pow2 sets then begin
      let rec log2 s = if 1 lsl s >= line_size then s else log2 (s + 1) in
      log2 0
    end
    else -1
  in
  {
    line_size;
    sets;
    assoc;
    line_shift;
    set_mask = sets - 1;
    tags = Array.make lines (-1);
    dirty = Bytes.make lines '\000';
    stamp = Array.make lines 0;
    clock = 0;
    hits = 0;
    misses = 0;
    writebacks = 0;
  }

let line_of t addr =
  if t.line_shift >= 0 then addr lsr t.line_shift else addr / t.line_size

let set_of t line =
  if t.line_shift >= 0 then line land t.set_mask else line mod t.sets

let access t ~addr ~write =
  if addr < 0 then invalid_arg "Sa_cache.access: negative address";
  let line = line_of t addr in
  let set = set_of t line in
  let base = set * t.assoc in
  t.clock <- t.clock + 1;
  (* Search the set for a hit, remembering the LRU (or an invalid)
     way as the victim. *)
  let found = ref (-1) in
  let victim = ref (-1) in
  let oldest = ref max_int in
  let invalid = ref (-1) in
  for w = base to base + t.assoc - 1 do
    if t.tags.(w) = line then found := w
    else if t.tags.(w) = -1 then invalid := w
    else if t.stamp.(w) < !oldest then begin
      oldest := t.stamp.(w);
      victim := w
    end
  done;
  let victim = if !invalid >= 0 then invalid else victim in
  if !found >= 0 then begin
    let w = !found in
    t.stamp.(w) <- t.clock;
    if write then Bytes.unsafe_set t.dirty w '\001';
    t.hits <- t.hits + 1;
    Hit
  end
  else begin
    let w = !victim in
    let victim_tag = t.tags.(w) in
    let victim_dirty = victim_tag >= 0 && Bytes.unsafe_get t.dirty w = '\001' in
    if victim_dirty then t.writebacks <- t.writebacks + 1;
    let victim_line_addr = if victim_tag >= 0 then victim_tag * t.line_size else -1 in
    t.tags.(w) <- line;
    Bytes.unsafe_set t.dirty w (if write then '\001' else '\000');
    t.stamp.(w) <- t.clock;
    t.misses <- t.misses + 1;
    Miss { victim_line_addr; victim_dirty }
  end

(* [access] for callers that only branch on hit/miss: identical state
   transitions (clock, LRU stamps, dirtiness, counters — interleaving
   with [access] is exact), but no result block is allocated. This is
   the replay inner loop's variant: its allocation-budget test requires
   zero words allocated per access. *)
let access_hit t ~addr ~write =
  if addr < 0 then invalid_arg "Sa_cache.access_hit: negative address";
  let line = line_of t addr in
  let set = set_of t line in
  let base = set * t.assoc in
  t.clock <- t.clock + 1;
  let found = ref (-1) in
  let victim = ref (-1) in
  let oldest = ref max_int in
  let invalid = ref (-1) in
  for w = base to base + t.assoc - 1 do
    if t.tags.(w) = line then found := w
    else if t.tags.(w) = -1 then invalid := w
    else if t.stamp.(w) < !oldest then begin
      oldest := t.stamp.(w);
      victim := w
    end
  done;
  if !found >= 0 then begin
    let w = !found in
    t.stamp.(w) <- t.clock;
    if write then Bytes.unsafe_set t.dirty w '\001';
    t.hits <- t.hits + 1;
    true
  end
  else begin
    let w = if !invalid >= 0 then !invalid else !victim in
    if t.tags.(w) >= 0 && Bytes.unsafe_get t.dirty w = '\001' then
      t.writebacks <- t.writebacks + 1;
    t.tags.(w) <- line;
    Bytes.unsafe_set t.dirty w (if write then '\001' else '\000');
    t.stamp.(w) <- t.clock;
    t.misses <- t.misses + 1;
    false
  end

let probe t ~addr =
  let line = line_of t addr in
  let set = set_of t line in
  let base = set * t.assoc in
  let rec go w = w < base + t.assoc && (t.tags.(w) = line || go (w + 1)) in
  go base

let invalidate t ~addr =
  let line = line_of t addr in
  let set = set_of t line in
  let base = set * t.assoc in
  for w = base to base + t.assoc - 1 do
    if t.tags.(w) = line then begin
      t.tags.(w) <- -1;
      Bytes.unsafe_set t.dirty w '\000'
    end
  done

let line_size t = t.line_size
let num_sets t = t.sets
let assoc t = t.assoc
let capacity t = t.sets * t.assoc * t.line_size

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  t.clock <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0

let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks
let accesses t = t.hits + t.misses

let hit_rate t =
  let n = accesses t in
  if n = 0 then 0. else float_of_int t.hits /. float_of_int n
