(** Set-associative, write-back, write-allocate cache with LRU
    replacement.

    One instance models an L1 data cache or one LLC (L2) bank. The
    implementation is imperative and allocation-free on the access path
    — it sits in the innermost loop of the simulator.

    {b Thread safety}: not thread-safe. A cache is private mutable
    state of the engine run that created it; every simulation builds
    its own instances and keeps them domain-confined. *)

type t

type result =
  | Hit
  | Miss of {
      victim_line_addr : int;
          (** base address of the evicted line, [-1] if the victim way
              was invalid *)
      victim_dirty : bool;
          (** whether the eviction must write back to memory *)
    }

val create : size:int -> assoc:int -> line_size:int -> unit -> t
(** [create ~size ~assoc ~line_size ()] builds an empty cache of [size]
    bytes, [assoc] ways and [line_size]-byte lines. Raises
    [Invalid_argument] if the geometry is inconsistent (size not
    divisible into at least one set of [assoc] lines). *)

val access : t -> addr:int -> write:bool -> result
(** [access t ~addr ~write] looks up the line containing [addr],
    installing it on a miss (write-allocate) and marking it dirty on a
    write. LRU state is updated. *)

val access_hit : t -> addr:int -> write:bool -> bool
(** [access] for callers that only branch on hit ([true]) vs miss
    ([false]): identical state transitions — interleaving with
    {!access} on the same cache is exact — but no victim information
    and {e no allocation}. The analysis replay's inner loop uses this;
    its allocation-budget test requires zero words allocated per
    access. *)

val probe : t -> addr:int -> bool
(** [probe t ~addr] is [true] iff the line is resident. Does not update
    LRU or statistics — for inspection only. *)

val invalidate : t -> addr:int -> unit
(** Drops the line containing [addr] if resident (dirtiness is
    discarded; the caller is responsible for any writeback). *)

val line_size : t -> int

val num_sets : t -> int

val assoc : t -> int

val capacity : t -> int

val reset : t -> unit
(** Empties the cache and clears statistics. *)

(** {2 Statistics} *)

val hits : t -> int

val misses : t -> int

val writebacks : t -> int
(** Dirty evictions performed so far. *)

val accesses : t -> int

val hit_rate : t -> float
