(** The top-level location-aware mapper — the paper's contribution,
    end to end.

    [map] runs the full pipeline of Figure 4: partition the parallel
    iterations into sets, summarise each set's memory behaviour (CME at
    compile time for regular applications, inspector replay for
    irregular ones), compute MAI/CAI against the machine's MAC/CAC
    tables, assign each set to its best region (Algorithm 1 or 2),
    rebalance loads location-awarely, and finally pick a concrete core
    inside each region (randomised but load-bounded, Section 3.9).

    The returned {!info} carries everything the evaluation needs: the
    optimised schedule, the matching round-robin baseline, the fraction
    of sets moved by balancing (Table 3), the estimation errors
    (Figures 7a/8a) and the modelled runtime overhead (Figures
    7c/8c).

    {b Thread safety}: this module holds no mutable state. Every run of
    [map] allocates its own page table (unless one is passed in), RNG
    (seeded from [cfg.seed], which also makes runs deterministic),
    caches and working arrays, so concurrent calls from multiple
    domains — as issued by [Service.Pool] workers — are safe provided
    callers do not share a mutable [page_table] argument across
    concurrent calls. *)

type estimation =
  | Cme_estimate  (** compile-time CME summaries (regular applications) *)
  | Inspector
      (** cold-cache runtime replay — the inspector's first-timing-step
          view, with its overhead charged *)
  | Oracle
      (** warm-cache replay: perfect MAI/CAI/miss knowledge (the
          paper's Figure 15 experiment) *)

type info = {
  schedule : Machine.Schedule.t;  (** the optimised mapping *)
  baseline : Machine.Schedule.t;  (** round-robin default, same sets *)
  sets : Ir.Iter_set.t array;
  region_of_set : int array;  (** post-balance region per set *)
  pre_balance_region : int array;
  moved_fraction : float;  (** sets moved by load balancing *)
  alpha_mean : float;  (** mean α over sets (shared LLC) *)
  mai_error : float;  (** mean η(MAI_est, MAI_observed) *)
  cai_error : float;  (** mean η(CAI_est, CAI_observed); 0 for private *)
  overhead_cycles : int;  (** one-time runtime-scheme cost *)
  estimation : estimation;  (** the estimation mode actually used *)
}

val map :
  ?estimation:estimation ->
  ?fraction:float ->
  ?measure_error:bool ->
  ?page_table:Mem.Page_table.t ->
  ?cores:int array ->
  ?balance:bool ->
  ?alpha_override:float ->
  ?on_phase:(string -> unit) ->
  ?verify:bool ->
  ?pool:Par.Pool.t ->
  ?metrics:Obs.Metrics.t ->
  Machine.Config.t ->
  Ir.Trace.t ->
  info
(** [estimation] defaults per program kind (regular → [Cme_estimate],
    irregular → [Inspector]); [fraction] overrides the configuration's
    iteration-set size; [measure_error] (default [true]) additionally
    replays the trace to measure estimation error — disable it in large
    parameter sweeps. [cores] restricts placement to a core subset (a
    multiprogrammed co-run): a region with no allowed core falls back
    to the allowed cores nearest to it. [balance] (default [true])
    disables the load-balancing pass when [false] and [alpha_override]
    fixes the shared-LLC α weight — both are ablation knobs for the
    design-choice studies.

    [on_phase] is called at each pipeline phase boundary, in order:
    ["partition"], ["summarise"], ["assign"], ["balance"], ["place"] —
    the serving layer's deadline checks and fault-injection points hang
    off it. The hook may raise to abort the run (the exception
    propagates to the caller); it must not mutate mapper inputs.

    [verify] (default [false]) is the debug mode: just before each
    [on_phase] boundary the pipeline's invariants over the artifacts
    produced so far (partition cover, affinity distributions, MAC/CAC
    tables, assignment range, per-nest balance tolerance, placement
    soundness — see {!Invariant}) are asserted, and a violation raises
    {!Invariant.Violation} with one structured diagnostic per broken
    invariant. With [verify = false] no check runs and the pipeline is
    byte-for-byte the non-verifying one.

    [pool] parallelises the summarisation phase inside this one call:
    {!Analysis.cme_summaries} shards iteration sets across the pool's
    domains, with results byte-identical to the sequential path at any
    domain count. Results, including every float in {!info}, are
    identical with and without a pool. {b Never} pass the pool whose
    worker is executing this very call (the serving layer's batch pool):
    a job fanning out into its own pool deadlocks once all workers are
    occupied — give the analysis a dedicated pool, as the analysis
    bench does.

    [metrics] instruments the summarisation fast path: it is passed to
    the {!Line_memo} built here (fallback-lookup counter) and to
    {!Analysis.cme_summaries} (closed-form accounting — see its
    documentation for the [locmap_cme_*] counters). Metrics never
    change results: counts are accumulated outside the hot loops and
    the pipeline's outputs are byte-identical with instrumentation on,
    off, or absent. Phase {e timing} is not collected here — the
    serving layer wraps [on_phase] with {!Obs.Trace.phase_hook} and a
    phase-duration histogram instead. *)

val default_schedule :
  ?fraction:float -> Machine.Config.t -> Ir.Trace.t -> Machine.Schedule.t
(** The paper's baseline: same iteration sets, round-robin cores. *)

val job :
  ?cores:int array -> Ir.Trace.t -> info -> Machine.Engine.job
(** Packages an optimised mapping as an engine job, honouring the
    inspector–executor protocol: irregular programs run their first
    timing step under the baseline schedule, pay the inspector overhead,
    and switch to the optimised schedule for the remaining steps;
    regular programs use the optimised schedule throughout. *)
