type estimation =
  | Cme_estimate
  | Inspector
  | Oracle

type info = {
  schedule : Machine.Schedule.t;
  baseline : Machine.Schedule.t;
  sets : Ir.Iter_set.t array;
  region_of_set : int array;
  pre_balance_region : int array;
  moved_fraction : float;
  alpha_mean : float;
  mai_error : float;
  cai_error : float;
  overhead_cycles : int;
  estimation : estimation;
}

(* Runtime-scheme cost model (cycles). The inspector instruments one
   timing step's accesses, and the eta/assignment solve is data-parallel
   over iteration sets, so both phases run spread across the cores; the
   executor pays a per-set dispatch-table lookup. *)
let inspector_cycles_per_access = 2
let assignment_cycles_per_set_region = 20
let table_lookup_cycles_per_set = 30

let overhead_cycles_of (cfg : Machine.Config.t) trace ~num_sets ~estimation =
  let prog = Ir.Trace.program trace in
  let num_regions = Machine.Config.num_regions cfg in
  let cores = Machine.Config.num_cores cfg in
  match (estimation, prog.Ir.Program.kind) with
  | Cme_estimate, _ | (Inspector | Oracle), Ir.Program.Regular ->
      (* Compile-time mapping: only the embedded-table lookups remain. *)
      num_sets * table_lookup_cycles_per_set / cores
  | (Inspector | Oracle), Ir.Program.Irregular ->
      let per_step_accesses = Ir.Program.total_accesses_per_step prog in
      ((inspector_cycles_per_access * per_step_accesses)
      + (num_sets * num_regions * assignment_cycles_per_set_region)
      + (num_sets * table_lookup_cycles_per_set))
      / cores

let default_estimation (prog : Ir.Program.t) =
  match prog.kind with
  | Ir.Program.Regular -> Cme_estimate
  | Ir.Program.Irregular -> Inspector

(* Random-but-balanced core choice inside each region (Section 3.9):
   each set goes to a random core among the least-loaded cores of its
   region, load measured in iterations. *)
let place_within_regions (cfg : Machine.Config.t) regions rng ~allowed
    ~region_of_set ~(sets : Ir.Iter_set.t array) =
  let num_cores = Machine.Config.num_cores cfg in
  let loads = Array.make num_cores 0 in
  let core_of = Array.make (Array.length sets) 0 in
  let cols = cfg.Machine.Config.cols in
  let dist_to_region_center r c =
    let cr, cc = Region.center regions r in
    Float.abs (cr -. float_of_int (c / cols))
    +. Float.abs (cc -. float_of_int (c mod cols))
  in
  Array.iteri
    (fun k r ->
      let in_region =
        Array.to_list (Region.nodes_of regions r)
        |> List.filter (fun c -> allowed.(c))
      in
      let pool =
        match in_region with
        | _ :: _ -> in_region
        | [] ->
            (* Multiprogrammed run whose core subset misses this region:
               fall back to the allowed cores nearest the region. *)
            let all =
              List.filter (fun c -> allowed.(c)) (List.init num_cores Fun.id)
            in
            let best =
              List.fold_left
                (fun acc c ->
                  Float.min acc (dist_to_region_center r c))
                infinity all
            in
            List.filter (fun c -> dist_to_region_center r c <= best +. 1e-9) all
      in
      let min_load =
        List.fold_left (fun acc c -> min acc loads.(c)) max_int pool
      in
      let candidates =
        Array.of_list (List.filter (fun c -> loads.(c) = min_load) pool)
      in
      let c =
        match cfg.Machine.Config.placement with
        | Machine.Config.Random_balanced ->
            candidates.(Random.State.int rng (Array.length candidates))
        | Machine.Config.Least_loaded -> candidates.(0)
      in
      core_of.(k) <- c;
      loads.(c) <- loads.(c) + Ir.Iter_set.size sets.(k))
    region_of_set;
  core_of

let default_schedule ?fraction (cfg : Machine.Config.t) trace =
  let fraction =
    Option.value fraction ~default:cfg.Machine.Config.iter_set_fraction
  in
  let sets = Ir.Iter_set.partition (Ir.Trace.program trace) ~fraction in
  Machine.Schedule.round_robin ~num_cores:(Machine.Config.num_cores cfg) sets

let map ?estimation ?fraction ?(measure_error = true) ?page_table ?cores
    ?(balance = true) ?alpha_override ?(on_phase = fun (_ : string) -> ())
    ?(verify = false) ?pool ?metrics (cfg : Machine.Config.t) trace =
  let prog = Ir.Trace.program trace in
  (* Debug mode: assert pipeline invariants just before each [on_phase]
     boundary. [verify = false] (the default) skips every check, so the
     serving path is unchanged. *)
  let vcheck phase checks =
    if verify then
      Invariant.fail_if_any
        (Invariant.all
           (List.map
              (fun c -> c (prog.Ir.Program.name ^ "/" ^ phase))
              checks))
  in
  let nest_iterations =
    lazy
      (Array.of_list
         (List.map Ir.Loop_nest.iterations prog.Ir.Program.nests))
  in
  let estimation =
    Option.value estimation ~default:(default_estimation prog)
  in
  let fraction =
    Option.value fraction ~default:cfg.Machine.Config.iter_set_fraction
  in
  let pt =
    match page_table with
    | Some pt -> pt
    | None -> Mem.Page_table.create ~page_size:cfg.Machine.Config.page_size ()
  in
  let amap = Machine.Addr_map.create cfg pt in
  (* One line memo serves every summarisation below: the CME pass and
     up to two observed replays resolve locations for the same layout. *)
  let memo = Line_memo.create ?metrics cfg amap (Ir.Trace.layout trace) in
  let regions = Region.create cfg in
  let sets = Ir.Iter_set.partition prog ~fraction in
  vcheck "partition"
    [
      (fun where -> Invariant.region_grid ~where cfg regions);
      (fun where ->
        Invariant.partition ~where
          ~nest_iterations:(Lazy.force nest_iterations) sets);
    ];
  on_phase "partition";
  (* Summarise every set under the requested estimation mode. *)
  let summaries, mai_error, cai_error =
    match estimation with
    | Cme_estimate ->
        let est =
          Analysis.cme_summaries ?pool ~memo ?metrics cfg amap trace ~sets
        in
        if measure_error then begin
          let _, warm =
            Analysis.observed_summaries ~memo cfg amap trace ~sets
          in
          ( est,
            Analysis.mean_error Summary.mai est warm,
            Analysis.mean_error Summary.cai est warm )
        end
        else (est, 0., 0.)
    | Inspector ->
        let cold, warm =
          Analysis.observed_summaries ~warm_pass:measure_error ~memo cfg amap
            trace ~sets
        in
        if measure_error then
          ( cold,
            Analysis.mean_error Summary.mai cold warm,
            Analysis.mean_error Summary.cai cold warm )
        else (cold, 0., 0.)
    | Oracle ->
        let _, warm = Analysis.observed_summaries ~memo cfg amap trace ~sets in
        (warm, 0., 0.)
  in
  vcheck "summarise"
    [
      (fun where -> Invariant.summaries ~where summaries);
      (fun where ->
        (* Each set executes (iterations x accesses-per-iteration); the
           bulk-arithmetic CME tiers must conserve that count exactly. *)
        let expected_accesses =
          Array.map
            (fun (s : Ir.Iter_set.t) ->
              Ir.Iter_set.size s
              * Ir.Trace.accesses_per_par_iter trace ~nest:s.nest)
            sets
        in
        Invariant.summary_totals ~where
          ~shared:(Cache.Llc.equal cfg.llc_org Cache.Llc.Shared)
          ~expected_accesses summaries);
    ];
  on_phase "summarise";
  let tables = Assign.create ?alpha_override cfg regions in
  let pre_balance_region = Assign.assign tables summaries in
  vcheck "assign"
    [
      (fun where ->
        Invariant.tables ~where ~num_regions:(Region.count regions) tables);
      (fun where ->
        Invariant.assignment ~where ~num_regions:(Region.count regions)
          pre_balance_region);
    ];
  on_phase "assign";
  (* Algorithm 1 runs once per parallel loop nest: balancing (and the
     in-region placement below) must level each nest's load separately,
     because nests are barrier-separated phases. *)
  let nest_slices =
    let slices = ref [] in
    let start = ref 0 in
    Array.iteri
      (fun k (s : Ir.Iter_set.t) ->
        if k > 0 && s.nest <> sets.(k - 1).Ir.Iter_set.nest then begin
          slices := (!start, k - !start) :: !slices;
          start := k
        end)
      sets;
    if Array.length sets > 0 then
      slices := (!start, Array.length sets - !start) :: !slices;
    List.rev !slices
  in
  let region_of_set = Array.copy pre_balance_region in
  if balance then
    List.iter
      (fun (lo, len) ->
        let sub = Array.sub pre_balance_region lo len in
        let balanced =
          Balance.balance ~regions
            ~cost:(fun local r ->
              Assign.error tables summaries.(lo + local) ~region:r)
            ~region_of_set:sub
        in
        Array.blit balanced 0 region_of_set lo len)
      nest_slices;
  vcheck "balance"
    [
      (fun where ->
        Invariant.assignment ~where ~num_regions:(Region.count regions)
          region_of_set);
      (fun where ->
        if balance then
          Invariant.balance ~where ~num_regions:(Region.count regions) ~sets
            region_of_set
        else []);
    ];
  on_phase "balance";
  let moved =
    let n = Array.length region_of_set in
    if n = 0 then 0.
    else begin
      let m = ref 0 in
      Array.iteri
        (fun k r -> if r <> pre_balance_region.(k) then incr m)
        region_of_set;
      float_of_int !m /. float_of_int n
    end
  in
  let rng = Random.State.make [| cfg.Machine.Config.seed |] in
  let allowed =
    let a = Array.make (Machine.Config.num_cores cfg) false in
    (match cores with
    | None -> Array.fill a 0 (Array.length a) true
    | Some cs ->
        if cs = [||] then invalid_arg "Mapper.map: empty core subset";
        Array.iter
          (fun c ->
            if c < 0 || c >= Array.length a then
              invalid_arg "Mapper.map: core out of range";
            a.(c) <- true)
          cs);
    a
  in
  let core_of = Array.make (Array.length sets) 0 in
  List.iter
    (fun (lo, len) ->
      let sub_core =
        place_within_regions cfg regions rng ~allowed
          ~region_of_set:(Array.sub region_of_set lo len)
          ~sets:(Array.sub sets lo len)
      in
      Array.blit sub_core 0 core_of lo len)
    nest_slices;
  vcheck "place"
    [
      (fun where ->
        Invariant.placement ~where ~in_region:(cores = None) cfg regions
          ~region_of_set
          (Machine.Schedule.make ~sets ~core_of));
    ];
  on_phase "place";
  let alpha_mean =
    if Array.length summaries = 0 then 0.5
    else
      Array.fold_left (fun acc s -> acc +. Summary.alpha s) 0. summaries
      /. float_of_int (Array.length summaries)
  in
  let cai_error =
    match cfg.Machine.Config.llc_org with
    | Cache.Llc.Private -> 0.
    | Cache.Llc.Shared -> cai_error
  in
  {
    schedule = Machine.Schedule.make ~sets ~core_of;
    baseline =
      Machine.Schedule.round_robin ?cores
        ~num_cores:(Machine.Config.num_cores cfg)
        sets;
    sets;
    region_of_set;
    pre_balance_region;
    moved_fraction = moved;
    alpha_mean;
    mai_error;
    cai_error;
    overhead_cycles =
      overhead_cycles_of cfg trace ~num_sets:(Array.length sets) ~estimation;
    estimation;
  }

let job ?cores trace info =
  let prog = Ir.Trace.program trace in
  let schedule_of_step, step_overhead =
    match prog.Ir.Program.kind with
    | Ir.Program.Regular ->
        ( (fun _ -> info.schedule),
          fun step -> if step = 0 then info.overhead_cycles else 0 )
    | Ir.Program.Irregular ->
        (* Inspector–executor: step 0 runs under the default mapping and
           pays the inspector; later steps use the optimised mapping. *)
        ( (fun step -> if step = 0 then info.baseline else info.schedule),
          fun step -> if step = 0 then info.overhead_cycles else 0 )
  in
  Machine.Engine.job ?cores ~trace ~schedule_of_step ~step_overhead ()
