let is_shared (cfg : Machine.Config.t) =
  Cache.Llc.equal cfg.llc_org Cache.Llc.Shared

let fresh_summaries cfg amap ~count =
  let num_regions = Machine.Config.num_regions cfg in
  Array.init count (fun _ ->
      Summary.create ~num_mcs:(Machine.Addr_map.num_mcs amap) ~num_regions)

(* ------------------------------------------------------------------ *)
(* Chunked trace expansion.

   Both paths expand the trace through [Trace.fill_range] into a
   reusable flat buffer, one chunk of parallel iterations at a time:
   the inner loops then walk encoded ints instead of paying a closure
   call per access, and the buffer stays cache-resident. *)

let chunk_accesses = 1 lsl 16

let max_appi trace sets =
  Array.fold_left
    (fun acc (s : Ir.Iter_set.t) ->
      max acc (Ir.Trace.accesses_per_par_iter trace ~nest:s.nest))
    1 sets

let fresh_buffer trace sets = Array.make (max chunk_accesses (max_appi trace sets)) 0

(* ------------------------------------------------------------------ *)
(* CME path.

   The classifier's verdict for reference [r]'s execution [c] is pure
   period arithmetic ({!Cme.l1_period}): L1 miss iff [c mod p1 = 0]
   (iff [c = 0] when cold-only), and that miss reaches memory iff
   [c / p1] is a multiple of [p2]. Summaries are commutative counters,
   so instead of streaming every access through [Cme.classify] the set
   is folded per reference: L1 hits are bulk-counted in O(1), and only
   the LLC-reaching executions — one in [p1] — are visited at all,
   through {!Ir.Trace.iter_body_periodic}, to resolve their line's
   location from the memo. The result is byte-identical to the
   streamed walk (the analysis bench and test suite cross-check this),
   and a set's summary depends only on the set itself, which is what
   makes sharding sets across domains byte-identical too. *)

(* Multiples of [p] in [lo, hi), for 0 <= lo <= hi. *)
let multiples_in p ~lo ~hi = ((hi + p - 1) / p) - ((lo + p - 1) / p)

(* Fast-path accounting, accumulated as plain ints per shard range and
   flushed to sharded counters once per range — the hot loops never
   touch an atomic. Location lookups through the memo are
   [visited + line_blocks]; with [Line_memo]'s fallback counter this
   yields the memo hit rate. *)
type cme_stats = {
  (* One record per shard range, never shared across domains; flushed
     into the registry's sharded counters at range end. *)
  mutable st_accesses : int;  (* lint:ignore — closed-form executions *)
  mutable st_bulk_l1_hits : int;  (* L1 hits counted without visiting *)
  mutable st_visited : int;  (* executions visited individually *)
  mutable st_line_blocks : int;  (* bulk line-block summary updates *)
}

type cme_instruments = {
  ci_im : Obs.Metrics.t;
  ci_accesses : Obs.Metrics.counter;
  ci_bulk_l1_hits : Obs.Metrics.counter;
  ci_visited : Obs.Metrics.counter;
  ci_line_blocks : Obs.Metrics.counter;
}

let cme_instruments im =
  {
    ci_im = im;
    ci_accesses =
      Obs.Metrics.counter im
        ~help:"accesses classified by the CME closed form"
        "locmap_cme_accesses_total";
    ci_bulk_l1_hits =
      Obs.Metrics.counter im
        ~help:"L1 hits bulk-counted without visiting the access"
        "locmap_cme_bulk_l1_hits_total";
    ci_visited =
      Obs.Metrics.counter im
        ~help:"accesses visited individually for location lookup"
        "locmap_cme_visited_total";
    ci_line_blocks =
      Obs.Metrics.counter im
        ~help:"bulk line-block summary updates (one memo lookup each)"
        "locmap_cme_line_block_updates_total";
  }

let flush_stats ci st =
  if Obs.Metrics.is_enabled ci.ci_im then begin
    Obs.Metrics.add ci.ci_accesses st.st_accesses;
    Obs.Metrics.add ci.ci_bulk_l1_hits st.st_bulk_l1_hits;
    Obs.Metrics.add ci.ci_visited st.st_visited;
    Obs.Metrics.add ci.ci_line_blocks st.st_line_blocks
  end

let cme_set ~shared ~stats memo trace p (s : Ir.Iter_set.t) sm =
  let inner_trip = Cme.inner_trip p in
  let c0 = s.lo * inner_trip and c1 = s.hi * inner_trip in
  let total = c1 - c0 in
  (* The [shared] branch, hoisted out of every loop. *)
  let add_hit, add_miss, add_misses =
    if shared then
      ( (fun addr ->
          let loc = Line_memo.loc_of memo addr in
          Summary.add_llc_hit sm ~region:(Line_memo.region_of_loc loc)),
        (fun addr ->
          let loc = Line_memo.loc_of memo addr in
          Summary.add_llc_miss sm
            ~bank_region:(Line_memo.region_of_loc loc)
            ~mc:(Line_memo.mc_of_loc loc)),
        fun addr count ->
          let loc = Line_memo.loc_of memo addr in
          Summary.add_llc_misses sm
            ~bank_region:(Line_memo.region_of_loc loc)
            ~mc:(Line_memo.mc_of_loc loc) count )
    else
      ( (fun _addr -> Summary.add_llc_hit sm ~region:0),
        (fun addr ->
          Summary.add_llc_miss sm ~bank_region:(-1)
            ~mc:(Line_memo.mc_of memo addr)),
        fun addr count ->
          Summary.add_llc_misses sm ~bank_region:(-1)
            ~mc:(Line_memo.mc_of memo addr) count )
  in
  for r = 0 to Cme.num_refs p - 1 do
    stats.st_accesses <- stats.st_accesses + total;
    let p1 = Cme.l1_period p r in
    if p1 = max_int then begin
      (* Cold-only at L1: the single miss is execution 0, and with no
         prior L1 misses the classifier always sends it to memory. *)
      let nmiss = if c0 = 0 && c1 > 0 then 1 else 0 in
      Summary.add_l1_hits sm (total - nmiss);
      stats.st_bulk_l1_hits <- stats.st_bulk_l1_hits + (total - nmiss);
      stats.st_visited <- stats.st_visited + nmiss;
      if nmiss = 1 then
        Ir.Trace.iter_body_periodic trace ~nest:s.nest ~body:r ~first:0 ~hi:1
          ~period:1 (fun ~exec:_ ~addr -> add_miss addr)
    end
    else if p1 = 1 && Cme.llc_period p r = 1 && Line_memo.memoized memo then
      (* Every execution is an LLC miss (streaming references, and all
         references of irregular nests). Outcomes are order-independent
         counts, so the set is walked in line blocks: consecutive
         parallel iterations on the same line share one location lookup
         and one bulk summary update. Only sound when the memo is exact
         (one location per line); otherwise the ordered walk below
         handles it. *)
      Ir.Trace.iter_body_line_blocks trace ~nest:s.nest ~body:r ~lo:s.lo
        ~hi:s.hi
        ~line:(Line_memo.line_size memo)
        (fun ~addr ~count ->
          stats.st_line_blocks <- stats.st_line_blocks + 1;
          add_misses addr count)
    else begin
      let nmiss = multiples_in p1 ~lo:c0 ~hi:c1 in
      Summary.add_l1_hits sm (total - nmiss);
      stats.st_bulk_l1_hits <- stats.st_bulk_l1_hits + (total - nmiss);
      stats.st_visited <- stats.st_visited + nmiss;
      if nmiss > 0 then begin
        let first = (c0 + p1 - 1) / p1 * p1 in
        let p2 = Cme.llc_period p r in
        if p2 = max_int then
          (* Cold-only at LLC: only L1-miss index 0, i.e. execution 0. *)
          Ir.Trace.iter_body_periodic trace ~nest:s.nest ~body:r ~first ~hi:c1
            ~period:p1 (fun ~exec ~addr ->
              if exec = 0 then add_miss addr else add_hit addr)
        else begin
          (* The visited executions have L1-miss indices first/p1,
             first/p1 + 1, ...; every [p2]-th of those is an LLC miss.
             A countdown avoids a division per visit. *)
          let until_miss = ref ((p2 - (first / p1 mod p2)) mod p2) in
          Ir.Trace.iter_body_periodic trace ~nest:s.nest ~body:r ~first ~hi:c1
            ~period:p1 (fun ~exec:_ ~addr ->
              if !until_miss = 0 then begin
                add_miss addr;
                until_miss := p2 - 1
              end
              else begin
                add_hit addr;
                decr until_miss
              end)
        end
      end
    end
  done

(* Contiguous set ranges with roughly equal access counts, so every
   domain gets comparable work no matter how set sizes vary. *)
let shard_ranges trace sets ~nshards =
  let n = Array.length sets in
  let cost k =
    let s : Ir.Iter_set.t = sets.(k) in
    Ir.Iter_set.size s * Ir.Trace.accesses_per_par_iter trace ~nest:s.nest
  in
  let total = ref 0 in
  for k = 0 to n - 1 do
    total := !total + cost k
  done;
  let ranges = ref [] in
  let start = ref 0 in
  let acc = ref 0 in
  let shard = ref 0 in
  for k = 0 to n - 1 do
    acc := !acc + cost k;
    let boundary = !total * (!shard + 1) / nshards in
    if !acc >= boundary && k + 1 > !start && !shard < nshards - 1 then begin
      ranges := (!start, k + 1) :: !ranges;
      start := k + 1;
      incr shard
    end
  done;
  if !start < n then ranges := (!start, n) :: !ranges;
  Array.of_list (List.rev !ranges)

let cme_summaries ?pool ?memo ?metrics (cfg : Machine.Config.t) amap trace
    ~sets =
  let prog = Ir.Trace.program trace in
  let layout = Ir.Trace.layout trace in
  let memo =
    match memo with
    | Some m -> m
    | None -> Line_memo.create ?metrics cfg amap layout
  in
  let shared = is_shared cfg in
  let ci = Option.map cme_instruments metrics in
  (* Summaries for the contiguous set range [a, b): the unit of work a
     shard executes. Each range carries its own predictors — and its own
     plain-int stats, flushed to the shared counters once at the end —
     so ranges share nothing but the immutable memo/trace. *)
  let run_range (a, b) =
    let out = fresh_summaries cfg amap ~count:(b - a) in
    let stats =
      { st_accesses = 0; st_bulk_l1_hits = 0; st_visited = 0; st_line_blocks = 0 }
    in
    let predictor = ref None in
    let current_nest = ref (-1) in
    for k = a to b - 1 do
      let s : Ir.Iter_set.t = sets.(k) in
      if s.nest <> !current_nest then begin
        current_nest := s.nest;
        predictor := Some (Cme.create cfg prog layout ~nest:s.nest)
      end;
      cme_set ~shared ~stats memo trace (Option.get !predictor) s out.(k - a)
    done;
    (match ci with Some ci -> flush_stats ci stats | None -> ());
    out
  in
  let nsets = Array.length sets in
  let domains =
    match pool with Some p -> Par.Pool.num_domains p | None -> 0
  in
  if domains <= 1 || nsets <= 1 then run_range (0, nsets)
  else begin
    let nshards = min nsets (4 * domains) in
    let ranges = shard_ranges trace sets ~nshards in
    let slices = Par.Pool.map (Option.get pool) run_range ranges in
    (* Deterministic merge: shards are contiguous ranges concatenated
       back in set order, so the result is positionally identical to
       the sequential walk. *)
    Array.concat (Array.to_list slices)
  end

(* ------------------------------------------------------------------ *)
(* Observed path.

   The replay is inherently sequential: one L1 and one set of bank
   caches model the machine's state as the whole trace streams
   through, so every access's hit/miss outcome depends on all earlier
   accesses — across set boundaries (and, for the warm pass, across
   the cold pass too). Sharding sets would give each shard cold caches
   and change every outcome; the fast path here is therefore the memo
   plus chunked expansion only, never domains. *)

let observed_summaries ?(warm_pass = true) ?memo (cfg : Machine.Config.t) amap
    trace ~sets =
  let memo =
    match memo with
    | Some m -> m
    | None -> Line_memo.create cfg amap (Ir.Trace.layout trace)
  in
  let shared = is_shared cfg in
  let l1 =
    Cache.Sa_cache.create ~size:cfg.l1_size ~assoc:cfg.l1_assoc
      ~line_size:cfg.l1_line ()
  in
  let banks =
    if shared then
      Array.init (Machine.Config.num_cores cfg) (fun _ ->
          Cache.Sa_cache.create ~size:cfg.l2_size ~assoc:cfg.l2_assoc
            ~line_size:cfg.l2_line ())
    else
      [|
        Cache.Sa_cache.create ~size:cfg.l2_size ~assoc:cfg.l2_assoc
          ~line_size:cfg.l2_line ();
      |]
  in
  let steps = (Ir.Trace.program trace).Ir.Program.time_steps in
  let buf = fresh_buffer trace sets in
  let bank0 = banks.(0) in
  let replay ~step summaries =
    Array.iteri
      (fun k (s : Ir.Iter_set.t) ->
        let sm = summaries.(k) in
        let appi = Ir.Trace.accesses_per_par_iter trace ~nest:s.nest in
        let iters_per_chunk = max 1 (chunk_accesses / max 1 appi) in
        let lo = ref s.lo in
        while !lo < s.hi do
          let hi = min s.hi (!lo + iters_per_chunk) in
          let n = Ir.Trace.fill_range ~step trace ~nest:s.nest ~lo:!lo ~hi ~buf in
          if shared then
            for i = 0 to n - 1 do
              let enc = Array.unsafe_get buf i in
              let va = enc lsr 1 in
              let write = enc land 1 = 1 in
              let pa = Line_memo.translate memo va in
              match Cache.Sa_cache.access l1 ~addr:pa ~write with
              | Cache.Sa_cache.Hit -> Summary.add_l1_hit sm
              | Cache.Sa_cache.Miss _ -> (
                  let loc = Line_memo.loc_of memo va in
                  let bank = banks.(Line_memo.node_of_loc loc) in
                  match Cache.Sa_cache.access bank ~addr:pa ~write with
                  | Cache.Sa_cache.Hit ->
                      Summary.add_llc_hit sm
                        ~region:(Line_memo.region_of_loc loc)
                  | Cache.Sa_cache.Miss _ ->
                      Summary.add_llc_miss sm
                        ~bank_region:(Line_memo.region_of_loc loc)
                        ~mc:(Line_memo.mc_of_loc loc))
            done
          else
            for i = 0 to n - 1 do
              let enc = Array.unsafe_get buf i in
              let va = enc lsr 1 in
              let write = enc land 1 = 1 in
              let pa = Line_memo.translate memo va in
              match Cache.Sa_cache.access l1 ~addr:pa ~write with
              | Cache.Sa_cache.Hit -> Summary.add_l1_hit sm
              | Cache.Sa_cache.Miss _ -> (
                  match Cache.Sa_cache.access bank0 ~addr:pa ~write with
                  | Cache.Sa_cache.Hit -> Summary.add_llc_hit sm ~region:0
                  | Cache.Sa_cache.Miss _ ->
                      Summary.add_llc_miss sm ~bank_region:(-1)
                        ~mc:(Line_memo.mc_of memo va))
            done;
          lo := hi
        done)
      sets
  in
  let cold = fresh_summaries cfg amap ~count:(Array.length sets) in
  replay ~step:0 cold;
  if not warm_pass then (cold, cold)
  else begin
    (* Second pass continues with warm caches — and, for programs that
       advance through per-step data slices, with the next step's
       addresses: the executor's view. *)
    let warm = fresh_summaries cfg amap ~count:(Array.length sets) in
    replay ~step:(min 1 (steps - 1)) warm;
    (cold, warm)
  end

let mean_error proj est truth =
  let n = Array.length est in
  if n <> Array.length truth then
    invalid_arg "Analysis.mean_error: mismatched lengths";
  if n = 0 then 0.
  else begin
    let sum = ref 0. in
    for k = 0 to n - 1 do
      sum := !sum +. Affinity.eta (proj est.(k)) (proj truth.(k))
    done;
    !sum /. float_of_int n
  end
