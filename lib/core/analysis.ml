let is_shared (cfg : Machine.Config.t) =
  Cache.Llc.equal cfg.llc_org Cache.Llc.Shared

let fresh_summaries cfg amap ~count =
  let num_regions = Machine.Config.num_regions cfg in
  Array.init count (fun _ ->
      Summary.create ~num_mcs:(Machine.Addr_map.num_mcs amap) ~num_regions)

(* ------------------------------------------------------------------ *)
(* CME path.

   The classifier's verdict for reference [r]'s execution [c] is pure
   period arithmetic ({!Cme.l1_period}): L1 miss iff [c mod p1 = 0]
   (iff [c = 0] when cold-only), and that miss reaches memory iff
   [c / p1] is a multiple of [p2]. Summaries are commutative counters,
   so instead of streaming every access through [Cme.classify] the set
   is folded per reference, through a three-tier dispatch:

   - {e symbolic}: pure-affine references with a {!Cme.Symbolic.plan}
     never touch the trace at all — the set's misses and hits are
     address arithmetic progressions instantiated in O(plan entries)
     and resolved against the memo's location prefix tables, so the
     cost is independent of the set's execution count;
   - {e periodic}: affine references whose shape exceeded the plan caps
     bulk-count L1 hits and visit only the LLC-reaching executions
     ({!Ir.Trace.iter_body_periodic}) or walk same-line blocks
     ({!Ir.Trace.iter_body_line_blocks});
   - {e traced}: index-array references have no closed form and expand
     their stream (as one-execution line blocks).

   Every tier is byte-identical to the streamed walk (the analysis
   bench and test suite cross-check this), and a set's summary depends
   only on the set itself, which is what makes sharding sets across
   domains byte-identical too. *)

(* Multiples of [p] in [lo, hi), for 0 <= lo <= hi. *)
let multiples_in p ~lo ~hi = ((hi + p - 1) / p) - ((lo + p - 1) / p)

(* Fast-path accounting, accumulated as plain ints per shard range and
   flushed to sharded counters once per range — the hot loops never
   touch an atomic. Location lookups through the memo are
   [visited + line_blocks]; with [Line_memo]'s fallback counter this
   yields the memo hit rate. *)
type cme_stats = {
  (* One record per shard range, never shared across domains; flushed
     into the registry's sharded counters at range end. *)
  mutable st_accesses : int;  (* lint:ignore — closed-form executions *)
  mutable st_bulk_l1_hits : int;  (* L1 hits counted without visiting *)
  mutable st_visited : int;  (* executions visited individually *)
  mutable st_line_blocks : int;  (* bulk line-block summary updates *)
  mutable st_symbolic : int;  (* accesses resolved trace-free *)
  mutable st_periodic : int;  (* accesses on the periodic trace walkers *)
  mutable st_traced : int;  (* accesses of index-array references *)
}

let fresh_stats () =
  {
    st_accesses = 0;
    st_bulk_l1_hits = 0;
    st_visited = 0;
    st_line_blocks = 0;
    st_symbolic = 0;
    st_periodic = 0;
    st_traced = 0;
  }

type cme_instruments = {
  ci_im : Obs.Metrics.t;
  ci_accesses : Obs.Metrics.counter;
  ci_bulk_l1_hits : Obs.Metrics.counter;
  ci_visited : Obs.Metrics.counter;
  ci_line_blocks : Obs.Metrics.counter;
  ci_symbolic : Obs.Metrics.counter;
  ci_periodic : Obs.Metrics.counter;
  ci_traced : Obs.Metrics.counter;
}

let cme_instruments im =
  {
    ci_im = im;
    ci_accesses =
      Obs.Metrics.counter im
        ~help:"accesses classified by the CME closed form"
        "locmap_cme_accesses_total";
    ci_bulk_l1_hits =
      Obs.Metrics.counter im
        ~help:"L1 hits bulk-counted without visiting the access"
        "locmap_cme_bulk_l1_hits_total";
    ci_visited =
      Obs.Metrics.counter im
        ~help:"accesses visited individually for location lookup"
        "locmap_cme_visited_total";
    ci_line_blocks =
      Obs.Metrics.counter im
        ~help:"bulk line-block summary updates (one memo lookup each)"
        "locmap_cme_line_block_updates_total";
    ci_symbolic =
      Obs.Metrics.counter im
        ~help:"accesses resolved by the trace-free symbolic tier"
        "locmap_cme_tier_symbolic_accesses_total";
    ci_periodic =
      Obs.Metrics.counter im
        ~help:"accesses resolved by the periodic trace-walking tier"
        "locmap_cme_tier_periodic_accesses_total";
    ci_traced =
      Obs.Metrics.counter im
        ~help:"accesses of index-array references (full trace expansion)"
        "locmap_cme_tier_traced_accesses_total";
  }

let flush_stats ci st =
  if Obs.Metrics.is_enabled ci.ci_im then begin
    Obs.Metrics.add ci.ci_accesses st.st_accesses;
    Obs.Metrics.add ci.ci_bulk_l1_hits st.st_bulk_l1_hits;
    Obs.Metrics.add ci.ci_visited st.st_visited;
    Obs.Metrics.add ci.ci_line_blocks st.st_line_blocks;
    Obs.Metrics.add ci.ci_symbolic st.st_symbolic;
    Obs.Metrics.add ci.ci_periodic st.st_periodic;
    Obs.Metrics.add ci.ci_traced st.st_traced
  end

(* ---- Symbolic tier: progression resolution against the memo ---- *)

(* [n] accesses, all on the line [loc] describes. *)
let add_at ~shared sm ~miss loc n =
  if miss then
    Summary.add_llc_misses sm
      ~bank_region:(if shared then Line_memo.region_of_loc loc else -1)
      ~mc:(Line_memo.mc_of_loc loc) n
  else
    Summary.add_llc_hits sm
      ~region:(if shared then Line_memo.region_of_loc loc else 0)
      n

(* Below this many interior lines, walking them beats the prefix
   tables: a line costs ~3 reads and 2-3 bin writes, a prefix query
   costs 2 divisions plus a multiply and 2 reads for every MC and
   region bin regardless of the range. *)
let interior_enum_cutoff = 8

(* Interior lines [lo, hi) of a progression, [weight] accesses each:
   O(num_mcs + num_regions) through the location prefix tables, line
   enumeration when the range is short or the memo has no tables. *)
let add_interior ~shared memo sm ~miss ~lo ~hi ~weight =
  if hi - lo <= interior_enum_cutoff || not (Line_memo.prefix_available memo)
  then
    for l = lo to hi - 1 do
      add_at ~shared sm ~miss (Line_memo.loc_of_line memo l) weight
    done
  else begin
    let n = weight * (hi - lo) in
    if miss then begin
      Line_memo.add_mc_line_counts memo ~lo ~hi ~weight sm.Summary.mc_counts;
      if shared then
        Line_memo.add_region_line_counts memo ~lo ~hi ~weight
          sm.Summary.miss_region_counts;
      sm.Summary.llc_misses <- sm.Summary.llc_misses + n
    end
    else if shared then begin
      Line_memo.add_region_line_counts memo ~lo ~hi ~weight
        sm.Summary.region_counts;
      sm.Summary.llc_hits <- sm.Summary.llc_hits + n
    end
    else Summary.add_llc_hits sm ~region:0 n
  end

(* One progression: [count] elements at [a0 + k*stride], [mult]
   accesses each. Single-line and aligned-stride shapes resolve in
   O(edges + location classes); the rest enumerate elements.

   Symbolic plans only exist over a memoized (power-of-two line size)
   memo, so every division and modulus by the line size is a shift or
   mask — profiling showed the divisions were the single largest cost
   of the whole tier once the prefix tables were in place. *)
let resolve_aps ~shared memo sm (aps : Cme.Symbolic.aps) =
  let lsize = Line_memo.line_size memo in
  let lshift = Line_memo.line_shift memo in
  let lmask = lsize - 1 in
  for j = 0 to aps.Cme.Symbolic.n - 1 do
    let a0 = Array.unsafe_get aps.Cme.Symbolic.ap_a0 j
    and stride = Array.unsafe_get aps.Cme.Symbolic.ap_stride j
    and count = Array.unsafe_get aps.Cme.Symbolic.ap_count j
    and mult = Array.unsafe_get aps.Cme.Symbolic.ap_mult j
    and miss = Array.unsafe_get aps.Cme.Symbolic.ap_miss j in
    let a0, s =
      if stride < 0 then (a0 + ((count - 1) * stride), -stride)
      else (a0, stride)
    in
    let aend = a0 + ((count - 1) * s) in
    let l0 = a0 asr lshift in
    let l1 = aend asr lshift in
    if l0 = l1 then
      add_at ~shared sm ~miss (Line_memo.loc_of_line memo l0) (count * mult)
    else if s <= lsize && s land (s - 1) = 0 then begin
      (* Boundary-aligned walk: a power-of-two stride divides the line
         size, so after a partial first line every interior line
         carries exactly [lsize / s] elements. *)
      let sshift =
        let k = ref 0 in
        while 1 lsl !k < s do
          incr k
        done;
        !k
      in
      let n_first = (lsize - (a0 land lmask) + s - 1) asr sshift in
      let n_last = ((aend land lmask) asr sshift) + 1 in
      add_at ~shared sm ~miss (Line_memo.loc_of_line memo l0) (n_first * mult);
      add_at ~shared sm ~miss (Line_memo.loc_of_line memo l1) (n_last * mult);
      if l1 - l0 > 1 then
        add_interior ~shared memo sm ~miss ~lo:(l0 + 1) ~hi:l1
          ~weight:((lsize asr sshift) * mult)
    end
    else if s land lmask = 0 then begin
      let d = s asr lshift in
      for k = 0 to count - 1 do
        add_at ~shared sm ~miss (Line_memo.loc_of_line memo (l0 + (k * d))) mult
      done
    end
    else
      for k = 0 to count - 1 do
        add_at ~shared sm ~miss
          (Line_memo.loc_of_line memo ((a0 + (k * s)) asr lshift))
          mult
      done
  done

(* An LLC-cold-only reference's progressions are all hit classes;
   execution 0 — the one access that did go to memory — was counted as
   a hit on its own line and is reclassified here. *)
let flip_exec0 ~shared memo sm plan =
  let loc = Line_memo.loc_of memo (Cme.Symbolic.exec0_addr plan) in
  let region = if shared then Line_memo.region_of_loc loc else 0 in
  sm.Summary.region_counts.(region) <- sm.Summary.region_counts.(region) - 1;
  sm.Summary.llc_hits <- sm.Summary.llc_hits - 1;
  Summary.add_llc_miss sm
    ~bank_region:(if shared then region else -1)
    ~mc:(Line_memo.mc_of_loc loc)

(* Per-nest dispatch context: the predictor plus one symbolic plan per
   reference (None = irregular, over the plan caps, or symbolic tier
   disabled) and each reference's regularity for tier accounting. *)
type nest_ctx = {
  pred : Cme.t;
  plans : Cme.Symbolic.plan option array;
  direct : bool array;
}

let nest_ctx ~symbolic cfg prog layout memo trace ~nest =
  let pred = Cme.create cfg prog layout ~nest in
  let nrefs = Cme.num_refs pred in
  let direct =
    Array.init nrefs (fun r -> Ir.Trace.direct_ref trace ~nest ~body:r <> None)
  in
  let plans =
    Array.init nrefs (fun r ->
        if symbolic && Line_memo.memoized memo then
          Cme.Symbolic.plan trace ~nest ~body:r ~p1:(Cme.l1_period pred r)
            ~p2:(Cme.llc_period pred r) ~step:0
        else None)
  in
  { pred; plans; direct }

let cme_set ~shared ~stats memo trace ctx aps (s : Ir.Iter_set.t) sm =
  let p = ctx.pred in
  let inner_trip = Cme.inner_trip p in
  let c0 = s.lo * inner_trip and c1 = s.hi * inner_trip in
  let total = c1 - c0 in
  (* The [shared] branch, hoisted out of every loop. *)
  let add_hit, add_miss, add_misses =
    if shared then
      ( (fun addr ->
          let loc = Line_memo.loc_of memo addr in
          Summary.add_llc_hit sm ~region:(Line_memo.region_of_loc loc)),
        (fun addr ->
          let loc = Line_memo.loc_of memo addr in
          Summary.add_llc_miss sm
            ~bank_region:(Line_memo.region_of_loc loc)
            ~mc:(Line_memo.mc_of_loc loc)),
        fun addr count ->
          let loc = Line_memo.loc_of memo addr in
          Summary.add_llc_misses sm
            ~bank_region:(Line_memo.region_of_loc loc)
            ~mc:(Line_memo.mc_of_loc loc) count )
    else
      ( (fun _addr -> Summary.add_llc_hit sm ~region:0),
        (fun addr ->
          Summary.add_llc_miss sm ~bank_region:(-1)
            ~mc:(Line_memo.mc_of memo addr)),
        fun addr count ->
          Summary.add_llc_misses sm ~bank_region:(-1)
            ~mc:(Line_memo.mc_of memo addr) count )
  in
  for r = 0 to Cme.num_refs p - 1 do
    stats.st_accesses <- stats.st_accesses + total;
    let p1 = Cme.l1_period p r in
    if p1 = max_int then begin
      (* Cold-only at L1: the single miss is execution 0, and with no
         prior L1 misses the classifier always sends it to memory —
         trivially closed-form, so the symbolic tier. *)
      let nmiss = if c0 = 0 && c1 > 0 then 1 else 0 in
      Summary.add_l1_hits sm (total - nmiss);
      stats.st_bulk_l1_hits <- stats.st_bulk_l1_hits + (total - nmiss);
      stats.st_visited <- stats.st_visited + nmiss;
      stats.st_symbolic <- stats.st_symbolic + total;
      if nmiss = 1 then
        Ir.Trace.iter_body_periodic trace ~nest:s.nest ~body:r ~first:0 ~hi:1
          ~period:1 (fun ~exec:_ ~addr -> add_miss addr)
    end
    else
      match ctx.plans.(r) with
      | Some plan ->
          (* Symbolic tier: the set's LLC-reaching executions are the
             plan's residue classes instantiated over [s.lo, s.hi) —
             address progressions resolved against the memo without
             touching the trace. *)
          stats.st_symbolic <- stats.st_symbolic + total;
          let nmiss = multiples_in p1 ~lo:c0 ~hi:c1 in
          Summary.add_l1_hits sm (total - nmiss);
          stats.st_bulk_l1_hits <- stats.st_bulk_l1_hits + (total - nmiss);
          if nmiss > 0 then begin
            Cme.Symbolic.decompose plan ~lo:s.lo ~hi:s.hi aps;
            assert (Cme.Symbolic.visited_total aps = nmiss);
            resolve_aps ~shared memo sm aps;
            (* LLC cold-only: the classes above are all hits; execution
               0, when in range, is the one memory access. *)
            if Cme.Symbolic.flips_exec0 plan && c0 = 0 then
              flip_exec0 ~shared memo sm plan
          end
      | None ->
          (if ctx.direct.(r) then
             stats.st_periodic <- stats.st_periodic + total
           else stats.st_traced <- stats.st_traced + total);
          if p1 = 1 && Cme.llc_period p r = 1 && Line_memo.memoized memo then
            (* Every execution is an LLC miss (wide streaming references
               beyond the plan caps, and all references of irregular
               nests). Outcomes are order-independent counts, so the set
               is walked in line blocks: consecutive parallel iterations
               on the same line share one location lookup and one bulk
               summary update. Only sound when the memo is exact (one
               location per line); otherwise the ordered walk below
               handles it. *)
            Ir.Trace.iter_body_line_blocks trace ~nest:s.nest ~body:r ~lo:s.lo
              ~hi:s.hi
              ~line:(Line_memo.line_size memo)
              (fun ~addr ~count ->
                stats.st_line_blocks <- stats.st_line_blocks + 1;
                add_misses addr count)
          else begin
            let nmiss = multiples_in p1 ~lo:c0 ~hi:c1 in
            Summary.add_l1_hits sm (total - nmiss);
            stats.st_bulk_l1_hits <- stats.st_bulk_l1_hits + (total - nmiss);
            stats.st_visited <- stats.st_visited + nmiss;
            if nmiss > 0 then begin
              let first = (c0 + p1 - 1) / p1 * p1 in
              let p2 = Cme.llc_period p r in
              if p2 = max_int then
                (* Cold-only at LLC: only L1-miss index 0, i.e.
                   execution 0. *)
                Ir.Trace.iter_body_periodic trace ~nest:s.nest ~body:r ~first
                  ~hi:c1 ~period:p1 (fun ~exec ~addr ->
                    if exec = 0 then add_miss addr else add_hit addr)
              else begin
                (* The visited executions have L1-miss indices first/p1,
                   first/p1 + 1, ...; every [p2]-th of those is an LLC
                   miss. A countdown avoids a division per visit. *)
                let until_miss = ref ((p2 - (first / p1 mod p2)) mod p2) in
                Ir.Trace.iter_body_periodic trace ~nest:s.nest ~body:r ~first
                  ~hi:c1 ~period:p1 (fun ~exec:_ ~addr ->
                    if !until_miss = 0 then begin
                      add_miss addr;
                      until_miss := p2 - 1
                    end
                    else begin
                      add_hit addr;
                      decr until_miss
                    end)
              end
            end
          end
  done

(* Contiguous set ranges with roughly equal access counts, so every
   domain gets comparable work no matter how set sizes vary. *)
let shard_ranges trace sets ~nshards =
  let n = Array.length sets in
  let cost k =
    let s : Ir.Iter_set.t = sets.(k) in
    Ir.Iter_set.size s * Ir.Trace.accesses_per_par_iter trace ~nest:s.nest
  in
  let total = ref 0 in
  for k = 0 to n - 1 do
    total := !total + cost k
  done;
  let ranges = ref [] in
  let start = ref 0 in
  let acc = ref 0 in
  let shard = ref 0 in
  for k = 0 to n - 1 do
    acc := !acc + cost k;
    let boundary = !total * (!shard + 1) / nshards in
    if !acc >= boundary && k + 1 > !start && !shard < nshards - 1 then begin
      ranges := (!start, k + 1) :: !ranges;
      start := k + 1;
      incr shard
    end
  done;
  if !start < n then ranges := (!start, n) :: !ranges;
  Array.of_list (List.rev !ranges)

let cme_summaries ?pool ?memo ?metrics ?(symbolic = true)
    (cfg : Machine.Config.t) amap trace ~sets =
  let prog = Ir.Trace.program trace in
  let layout = Ir.Trace.layout trace in
  let memo =
    match memo with
    | Some m -> m
    | None -> Line_memo.create ?metrics cfg amap layout
  in
  let shared = is_shared cfg in
  let ci = Option.map cme_instruments metrics in
  (* Summaries for the contiguous set range [a, b): the unit of work a
     shard executes. Each range carries its own predictors, plans and
     progression scratch — and its own plain-int stats, flushed to the
     shared counters once at the end — so ranges share nothing but the
     immutable memo/trace. *)
  let run_range (a, b) =
    let out = fresh_summaries cfg amap ~count:(b - a) in
    let stats = fresh_stats () in
    let aps = Cme.Symbolic.make_aps () in
    let ctx = ref None in
    let current_nest = ref (-1) in
    for k = a to b - 1 do
      let s : Ir.Iter_set.t = sets.(k) in
      if s.nest <> !current_nest then begin
        current_nest := s.nest;
        ctx := Some (nest_ctx ~symbolic cfg prog layout memo trace ~nest:s.nest)
      end;
      cme_set ~shared ~stats memo trace (Option.get !ctx) aps s out.(k - a)
    done;
    (match ci with Some ci -> flush_stats ci stats | None -> ());
    out
  in
  let nsets = Array.length sets in
  let domains =
    match pool with Some p -> Par.Pool.num_domains p | None -> 0
  in
  if domains <= 1 || nsets <= 1 then run_range (0, nsets)
  else begin
    let nshards = min nsets (4 * domains) in
    let ranges = shard_ranges trace sets ~nshards in
    let slices = Par.Pool.map (Option.get pool) run_range ranges in
    (* Deterministic merge: shards are contiguous ranges concatenated
       back in set order, so the result is positionally identical to
       the sequential walk. *)
    Array.concat (Array.to_list slices)
  end

(* ------------------------------------------------------------------ *)
(* Observed path.

   The replay is inherently sequential: one L1 and one set of bank
   caches model the machine's state as the whole trace streams
   through, so every access's hit/miss outcome depends on all earlier
   accesses — across set boundaries (and, for the warm pass, across
   the cold pass too). Sharding sets would give each shard cold caches
   and change every outcome; the fast path here is therefore doing
   strictly less work per access, never domains: the trace streams
   through a preallocated scratch walker ({!Ir.Trace.iter_range_s}),
   outcomes come from the allocation-free {!Cache.Sa_cache.access_hit},
   locations from the memo, and the address-translation branch is
   hoisted out of the loop entirely when the layout has no remaps
   ([pa = va]). The inner loop allocates nothing — the replay
   allocation-budget test holds it to zero words per access. *)

let observed_summaries ?(warm_pass = true) ?memo (cfg : Machine.Config.t) amap
    trace ~sets =
  let memo =
    match memo with
    | Some m -> m
    | None -> Line_memo.create cfg amap (Ir.Trace.layout trace)
  in
  let shared = is_shared cfg in
  let l1 =
    Cache.Sa_cache.create ~size:cfg.l1_size ~assoc:cfg.l1_assoc
      ~line_size:cfg.l1_line ()
  in
  let banks =
    if shared then
      Array.init (Machine.Config.num_cores cfg) (fun _ ->
          Cache.Sa_cache.create ~size:cfg.l2_size ~assoc:cfg.l2_assoc
            ~line_size:cfg.l2_line ())
    else
      [|
        Cache.Sa_cache.create ~size:cfg.l2_size ~assoc:cfg.l2_assoc
          ~line_size:cfg.l2_line ();
      |]
  in
  let steps = (Ir.Trace.program trace).Ir.Program.time_steps in
  let sc = Ir.Trace.make_scratch trace in
  let identity = Line_memo.identity_translation memo in
  let bank0 = banks.(0) in
  (* Locations are resolved arithmetically through the address map plus
     a 1-cell-per-node region table — NOT through the memo's per-line
     location array. The replay is the one consumer whose access
     pattern follows the program (an irregular workload replays random
     lines), and there a multi-megabyte lookup table is itself a
     cache-thrashing random read per miss, slower than recomputing the
     interleave arithmetic. The memo still contributes the
     identity-translation hoist. *)
  let region_of_node =
    let regions = Region.create cfg in
    Array.init (Machine.Config.num_cores cfg) (Region.of_node regions)
  in
  (* Four flat loops — (shared | private) x (identity | remapped
     translation) — each a single closure over the set walk with every
     per-access branch it can shed hoisted out. *)
  let replay ~step summaries =
    Array.iteri
      (fun k (s : Ir.Iter_set.t) ->
        let sm = summaries.(k) in
        if shared then
          if identity then
            Ir.Trace.iter_range_s ~step trace sc ~nest:s.nest ~lo:s.lo ~hi:s.hi
              (fun ~addr ~write ->
                if Cache.Sa_cache.access_hit l1 ~addr ~write then
                  Summary.add_l1_hit sm
                else begin
                  let node = Machine.Addr_map.bank_node_of amap addr in
                  let region = Array.unsafe_get region_of_node node in
                  if Cache.Sa_cache.access_hit banks.(node) ~addr ~write then
                    Summary.add_llc_hit sm ~region
                  else
                    Summary.add_llc_miss sm ~bank_region:region
                      ~mc:(Machine.Addr_map.mc_of amap addr)
                end)
          else
            Ir.Trace.iter_range_s ~step trace sc ~nest:s.nest ~lo:s.lo ~hi:s.hi
              (fun ~addr ~write ->
                let pa = Machine.Addr_map.translate amap addr in
                if Cache.Sa_cache.access_hit l1 ~addr:pa ~write then
                  Summary.add_l1_hit sm
                else begin
                  let node = Machine.Addr_map.bank_node_of amap pa in
                  let region = Array.unsafe_get region_of_node node in
                  if Cache.Sa_cache.access_hit banks.(node) ~addr:pa ~write
                  then Summary.add_llc_hit sm ~region
                  else
                    Summary.add_llc_miss sm ~bank_region:region
                      ~mc:(Machine.Addr_map.mc_of amap pa)
                end)
        else if identity then
          Ir.Trace.iter_range_s ~step trace sc ~nest:s.nest ~lo:s.lo ~hi:s.hi
            (fun ~addr ~write ->
              if Cache.Sa_cache.access_hit l1 ~addr ~write then
                Summary.add_l1_hit sm
              else if Cache.Sa_cache.access_hit bank0 ~addr ~write then
                Summary.add_llc_hit sm ~region:0
              else
                Summary.add_llc_miss sm ~bank_region:(-1)
                  ~mc:(Machine.Addr_map.mc_of amap addr))
        else
          Ir.Trace.iter_range_s ~step trace sc ~nest:s.nest ~lo:s.lo ~hi:s.hi
            (fun ~addr ~write ->
              let pa = Machine.Addr_map.translate amap addr in
              if Cache.Sa_cache.access_hit l1 ~addr:pa ~write then
                Summary.add_l1_hit sm
              else if Cache.Sa_cache.access_hit bank0 ~addr:pa ~write then
                Summary.add_llc_hit sm ~region:0
              else
                Summary.add_llc_miss sm ~bank_region:(-1)
                  ~mc:(Machine.Addr_map.mc_of amap pa)))
      sets
  in
  let cold = fresh_summaries cfg amap ~count:(Array.length sets) in
  replay ~step:0 cold;
  if not warm_pass then (cold, cold)
  else begin
    (* Second pass continues with warm caches — and, for programs that
       advance through per-step data slices, with the next step's
       addresses: the executor's view. *)
    let warm = fresh_summaries cfg amap ~count:(Array.length sets) in
    replay ~step:(min 1 (steps - 1)) warm;
    (cold, warm)
  end

let mean_error proj est truth =
  let n = Array.length est in
  if n <> Array.length truth then
    invalid_arg "Analysis.mean_error: mismatched lengths";
  if n = 0 then 0.
  else begin
    let sum = ref 0. in
    for k = 0 to n - 1 do
      sum := !sum +. Affinity.eta (proj est.(k)) (proj truth.(k))
    done;
    !sum /. float_of_int n
  end
