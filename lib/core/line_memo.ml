(* Packed per-line location records. A mesh has well under 2^21 nodes,
   regions and MCs, so one 63-bit OCaml int holds all three fields. *)
let pack ~mc ~region ~node = (mc lsl 42) lor (region lsl 21) lor node
let node_of_loc loc = loc land 0x1FFFFF
let region_of_loc loc = (loc lsr 21) land 0x1FFFFF
let mc_of_loc loc = loc lsr 42

(* Eager tables beyond this many lines would cost more memory than the
   walk they save; larger layouts fall back to direct computation. *)
let max_lines = 1 lsl 22

(* Location prefix sums over one verified period (or the whole
   footprint when the pattern is aperiodic but small): the symbolic
   CME tier resolves a contiguous line range's per-MC / per-region
   counts in O(1) per class instead of walking the lines. *)
type prefix = {
  period : int;  (* lines; pattern verified to repeat at this period *)
  mc_pre : int array array;  (* per MC: running count over one period *)
  region_pre : int array array;
  mc_tot : int array;  (* per-period totals *)
  region_tot : int array;
}

(* A prefix beyond this period would cost more to build and hold than
   the enumeration it replaces. *)
let max_prefix_lines = 1 lsl 16

type t = {
  amap : Machine.Addr_map.t;
  regions : Region.t;
  line_size : int;
  line_shift : int;  (* log2 line_size: lookups shift, never divide *)
  line_mask : int;  (* line_size - 1 *)
  num_lines : int;
  exact : bool;
      (* The memo is line-granular: it is sound only when an LLC line
         never straddles a page (translation is page-granular), i.e.
         when [l2_line] divides [page_size] — true for every valid
         machine config, but checked so a hand-built config degrades to
         direct computation instead of silently misplacing lines. A
         non-power-of-two line size (equally impossible on a real
         machine) also degrades, so the hot lookups can shift and mask
         instead of dividing. *)
  phys : int array;  (* line -> physical line *)
  loc : int array;  (* line -> pack ~mc ~region ~node *)
  identity : bool;  (* translation is the identity over the footprint *)
  num_mcs : int;
  num_regions : int;
  prefix : prefix option;
  fallbacks : Obs.Metrics.counter option;
      (* Counted only on the slow (non-memoized) branch, so the memo
         hit path stays a pure array load. *)
}

let log2_of line_size =
  let rec go s = if 1 lsl s >= line_size then s else go (s + 1) in
  go 0

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

(* Builds prefix sums over [period] lines of [loc], assuming the caller
   verified (or will trivially satisfy, when [period = num_lines]) that
   the pattern repeats. *)
let build_prefix loc ~period ~num_mcs ~num_regions =
  let mc_pre = Array.init num_mcs (fun _ -> Array.make (period + 1) 0) in
  let region_pre =
    Array.init num_regions (fun _ -> Array.make (period + 1) 0)
  in
  for l = 0 to period - 1 do
    let p = loc.(l) in
    let mc = mc_of_loc p and rg = region_of_loc p in
    for m = 0 to num_mcs - 1 do
      mc_pre.(m).(l + 1) <- mc_pre.(m).(l) + if m = mc then 1 else 0
    done;
    for r = 0 to num_regions - 1 do
      region_pre.(r).(l + 1) <- region_pre.(r).(l) + if r = rg then 1 else 0
    done
  done;
  {
    period;
    mc_pre;
    region_pre;
    mc_tot = Array.map (fun pre -> pre.(period)) mc_pre;
    region_tot = Array.map (fun pre -> pre.(period)) region_pre;
  }

(* The location pattern of every structured address map is periodic in
   the line index: bank interleaving cycles with the node count and MC
   selection with [num_mcs] pages, so — under identity translation —
   the candidate period is their lcm. Rather than trusting any per-map
   derivation, the pattern is *verified* against the eager table; a map
   that breaks it (hash-interleaved, remapped pages) just degrades to
   the whole-footprint table or to no prefix at all. *)
let make_prefix (cfg : Machine.Config.t) ~num_lines ~num_mcs ~num_regions
    ~line_size loc =
  let nodes = Machine.Config.num_cores cfg in
  let candidate =
    if cfg.page_size mod line_size = 0 then
      lcm nodes (cfg.page_size / line_size * num_mcs)
    else num_lines
  in
  let periodic_at p =
    p < num_lines
    && begin
         let ok = ref true in
         (try
            for l = p to num_lines - 1 do
              if loc.(l) <> loc.(l - p) then begin
                ok := false;
                raise Exit
              end
            done
          with Exit -> ());
         !ok
       end
  in
  if candidate <= max_prefix_lines && periodic_at candidate then
    Some (build_prefix loc ~period:candidate ~num_mcs ~num_regions)
  else if num_lines <= max_prefix_lines then
    Some (build_prefix loc ~period:num_lines ~num_mcs ~num_regions)
  else None

let create ?metrics (cfg : Machine.Config.t) amap layout =
  let fallbacks =
    match metrics with
    | None -> None
    | Some im ->
        Some
          (Obs.Metrics.counter im
             ~help:"location lookups that bypassed the line memo"
             "locmap_line_memo_fallback_lookups_total")
  in
  let line_size = cfg.l2_line in
  let regions = Region.create cfg in
  let footprint = Ir.Layout.footprint layout in
  let num_lines = (footprint + line_size - 1) / line_size in
  let pow2 = line_size > 0 && line_size land (line_size - 1) = 0 in
  let exact =
    pow2
    && cfg.page_size mod line_size = 0
    && num_lines <= max_lines && num_lines > 0
  in
  let line_shift = if pow2 then log2_of line_size else 0 in
  let num_mcs = Machine.Addr_map.num_mcs amap in
  let num_regions = Region.count regions in
  if not exact then
    {
      amap;
      regions;
      line_size;
      line_shift;
      line_mask = line_size - 1;
      num_lines = 0;
      exact;
      phys = [||];
      loc = [||];
      identity = false;
      num_mcs;
      num_regions;
      prefix = None;
      fallbacks;
    }
  else begin
    let phys = Array.make num_lines 0 in
    let loc = Array.make num_lines 0 in
    let identity = ref true in
    for l = 0 to num_lines - 1 do
      let pa = Machine.Addr_map.translate amap (l * line_size) in
      let node = Machine.Addr_map.bank_node_of amap pa in
      phys.(l) <- pa / line_size;
      if pa <> l * line_size then identity := false;
      loc.(l) <-
        pack
          ~mc:(Machine.Addr_map.mc_of amap pa)
          ~region:(Region.of_node regions node)
          ~node
    done;
    {
      amap;
      regions;
      line_size;
      line_shift;
      line_mask = line_size - 1;
      num_lines;
      exact;
      phys;
      loc;
      identity = !identity;
      num_mcs;
      num_regions;
      prefix = make_prefix cfg ~num_lines ~num_mcs ~num_regions ~line_size loc;
      fallbacks;
    }
  end

let addr_map t = t.amap
let regions t = t.regions
let line_size t = t.line_size
let line_shift t = t.line_shift
let num_lines t = t.num_lines
let memoized t = t.exact

let loc_of t va =
  let l = va lsr t.line_shift in
  if va >= 0 && l < t.num_lines then Array.unsafe_get t.loc l
  else begin
    (match t.fallbacks with Some c -> Obs.Metrics.incr c | None -> ());
    let pa = Machine.Addr_map.translate t.amap va in
    let node = Machine.Addr_map.bank_node_of t.amap pa in
    pack
      ~mc:(Machine.Addr_map.mc_of t.amap pa)
      ~region:(Region.of_node t.regions node)
      ~node
  end

let translate t va =
  let l = va lsr t.line_shift in
  if va >= 0 && l < t.num_lines then
    (Array.unsafe_get t.phys l lsl t.line_shift) + (va land t.line_mask)
  else begin
    (match t.fallbacks with Some c -> Obs.Metrics.incr c | None -> ());
    Machine.Addr_map.translate t.amap va
  end

let bank_node_of t va = node_of_loc (loc_of t va)
let region_of t va = region_of_loc (loc_of t va)
let mc_of t va = mc_of_loc (loc_of t va)
let identity_translation t = t.identity
let num_mcs t = t.num_mcs
let num_regions t = t.num_regions
let prefix_available t = t.prefix <> None

(* Count of lines of class [pre] in [0, x): whole periods contribute
   the per-period total, the remainder reads one prefix cell. *)
let check_range t ~lo ~hi =
  if lo < 0 || hi < lo || hi > t.num_lines then
    invalid_arg "Line_memo: line range outside the memoized footprint"

(* The per-bin count over [lo, hi) is a prefix difference; the cycle
   quotients and remainders depend only on the boundaries, so they are
   computed once per call, not once per bin — these run per resolved
   progression in the symbolic tier, where a division per bin was the
   single largest cost. *)
let add_mc_line_counts t ~lo ~hi ~weight into =
  check_range t ~lo ~hi;
  match t.prefix with
  | None -> invalid_arg "Line_memo.add_mc_line_counts: no prefix tables"
  | Some p ->
      let cycles = (hi / p.period) - (lo / p.period) in
      let rhi = hi mod p.period and rlo = lo mod p.period in
      for m = 0 to t.num_mcs - 1 do
        let pre = Array.unsafe_get p.mc_pre m in
        let n =
          (cycles * Array.unsafe_get p.mc_tot m)
          + Array.unsafe_get pre rhi - Array.unsafe_get pre rlo
        in
        into.(m) <- into.(m) + (weight * n)
      done

let add_region_line_counts t ~lo ~hi ~weight into =
  check_range t ~lo ~hi;
  match t.prefix with
  | None -> invalid_arg "Line_memo.add_region_line_counts: no prefix tables"
  | Some p ->
      let cycles = (hi / p.period) - (lo / p.period) in
      let rhi = hi mod p.period and rlo = lo mod p.period in
      for r = 0 to t.num_regions - 1 do
        let pre = Array.unsafe_get p.region_pre r in
        let n =
          (cycles * Array.unsafe_get p.region_tot r)
          + Array.unsafe_get pre rhi - Array.unsafe_get pre rlo
        in
        into.(r) <- into.(r) + (weight * n)
      done

let loc_of_line t l =
  if t.exact && l >= 0 && l < t.num_lines then Array.unsafe_get t.loc l
  else loc_of t (l * t.line_size)
