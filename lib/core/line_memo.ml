(* Packed per-line location records. A mesh has well under 2^21 nodes,
   regions and MCs, so one 63-bit OCaml int holds all three fields. *)
let pack ~mc ~region ~node = (mc lsl 42) lor (region lsl 21) lor node
let node_of_loc loc = loc land 0x1FFFFF
let region_of_loc loc = (loc lsr 21) land 0x1FFFFF
let mc_of_loc loc = loc lsr 42

(* Eager tables beyond this many lines would cost more memory than the
   walk they save; larger layouts fall back to direct computation. *)
let max_lines = 1 lsl 22

type t = {
  amap : Machine.Addr_map.t;
  regions : Region.t;
  line_size : int;
  line_shift : int;  (* log2 line_size: lookups shift, never divide *)
  line_mask : int;  (* line_size - 1 *)
  num_lines : int;
  exact : bool;
      (* The memo is line-granular: it is sound only when an LLC line
         never straddles a page (translation is page-granular), i.e.
         when [l2_line] divides [page_size] — true for every valid
         machine config, but checked so a hand-built config degrades to
         direct computation instead of silently misplacing lines. A
         non-power-of-two line size (equally impossible on a real
         machine) also degrades, so the hot lookups can shift and mask
         instead of dividing. *)
  phys : int array;  (* line -> physical line *)
  loc : int array;  (* line -> pack ~mc ~region ~node *)
  fallbacks : Obs.Metrics.counter option;
      (* Counted only on the slow (non-memoized) branch, so the memo
         hit path stays a pure array load. *)
}

let log2_of line_size =
  let rec go s = if 1 lsl s >= line_size then s else go (s + 1) in
  go 0

let create ?metrics (cfg : Machine.Config.t) amap layout =
  let fallbacks =
    match metrics with
    | None -> None
    | Some im ->
        Some
          (Obs.Metrics.counter im
             ~help:"location lookups that bypassed the line memo"
             "locmap_line_memo_fallback_lookups_total")
  in
  let line_size = cfg.l2_line in
  let regions = Region.create cfg in
  let footprint = Ir.Layout.footprint layout in
  let num_lines = (footprint + line_size - 1) / line_size in
  let pow2 = line_size > 0 && line_size land (line_size - 1) = 0 in
  let exact =
    pow2
    && cfg.page_size mod line_size = 0
    && num_lines <= max_lines && num_lines > 0
  in
  let line_shift = if pow2 then log2_of line_size else 0 in
  if not exact then
    {
      amap;
      regions;
      line_size;
      line_shift;
      line_mask = line_size - 1;
      num_lines = 0;
      exact;
      phys = [||];
      loc = [||];
      fallbacks;
    }
  else begin
    let phys = Array.make num_lines 0 in
    let loc = Array.make num_lines 0 in
    for l = 0 to num_lines - 1 do
      let pa = Machine.Addr_map.translate amap (l * line_size) in
      let node = Machine.Addr_map.bank_node_of amap pa in
      phys.(l) <- pa / line_size;
      loc.(l) <-
        pack
          ~mc:(Machine.Addr_map.mc_of amap pa)
          ~region:(Region.of_node regions node)
          ~node
    done;
    {
      amap;
      regions;
      line_size;
      line_shift;
      line_mask = line_size - 1;
      num_lines;
      exact;
      phys;
      loc;
      fallbacks;
    }
  end

let addr_map t = t.amap
let regions t = t.regions
let line_size t = t.line_size
let num_lines t = t.num_lines
let memoized t = t.exact

let loc_of t va =
  let l = va lsr t.line_shift in
  if va >= 0 && l < t.num_lines then Array.unsafe_get t.loc l
  else begin
    (match t.fallbacks with Some c -> Obs.Metrics.incr c | None -> ());
    let pa = Machine.Addr_map.translate t.amap va in
    let node = Machine.Addr_map.bank_node_of t.amap pa in
    pack
      ~mc:(Machine.Addr_map.mc_of t.amap pa)
      ~region:(Region.of_node t.regions node)
      ~node
  end

let translate t va =
  let l = va lsr t.line_shift in
  if va >= 0 && l < t.num_lines then
    (Array.unsafe_get t.phys l lsl t.line_shift) + (va land t.line_mask)
  else begin
    (match t.fallbacks with Some c -> Obs.Metrics.incr c | None -> ());
    Machine.Addr_map.translate t.amap va
  end

let bank_node_of t va = node_of_loc (loc_of t va)
let region_of t va = region_of_loc (loc_of t va)
let mc_of t va = mc_of_loc (loc_of t va)
