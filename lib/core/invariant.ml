type diagnostic = {
  invariant : string;
  location : string;
  message : string;
}

exception Violation of diagnostic list

let pp ppf d =
  Format.fprintf ppf "%s: [%s] %s" d.location d.invariant d.message

let to_string d = Format.asprintf "%a" pp d

let all = List.concat

let fail_if_any = function [] -> () | ds -> raise (Violation ds)

let diag ~where ~invariant fmt =
  Printf.ksprintf
    (fun message -> { invariant; location = where; message })
    fmt

(* ------------------------------------------------------------------ *)
(* Partition: every nest's iteration space covered exactly once.       *)

let partition ~where ~nest_iterations (sets : Ir.Iter_set.t array) =
  let num_nests = Array.length nest_iterations in
  let bad = ref [] in
  let add d = bad := d :: !bad in
  let w nest = Printf.sprintf "%s: nest %d" where nest in
  (* Per-nest sweep position: [next.(n)] is the first iteration of nest
     [n] not yet covered; sets must arrive in nest order then
     iteration order, each starting exactly at the sweep position. *)
  let next = Array.make (max 1 num_nests) 0 in
  let last_nest = ref (-1) in
  Array.iteri
    (fun k (s : Ir.Iter_set.t) ->
      if s.nest < 0 || s.nest >= num_nests then
        add
          (diag ~where ~invariant:"partition-cover"
             "set %d names nest %d, but the program has %d nests" k s.nest
             num_nests)
      else begin
        if s.nest < !last_nest then
          add
            (diag ~where:(w s.nest) ~invariant:"partition-order"
               "set %d of nest %d appears after sets of nest %d" k s.nest
               !last_nest);
        last_nest := max !last_nest s.nest;
        if s.hi <= s.lo then
          add
            (diag ~where:(w s.nest) ~invariant:"set-bounds"
               "set %d is empty ([%d, %d))" k s.lo s.hi)
        else if s.lo < 0 || s.hi > nest_iterations.(s.nest) then
          add
            (diag ~where:(w s.nest) ~invariant:"set-bounds"
               "set %d spans [%d, %d) outside the nest's %d iterations" k
               s.lo s.hi nest_iterations.(s.nest))
        else if s.lo > next.(s.nest) then
          add
            (diag ~where:(w s.nest) ~invariant:"partition-cover"
               "iterations [%d, %d) are covered by no set (set %d starts at \
                %d)"
               next.(s.nest) s.lo k s.lo)
        else if s.lo < next.(s.nest) then
          add
            (diag ~where:(w s.nest) ~invariant:"partition-overlap"
               "set %d re-covers iterations [%d, %d) (already covered up to \
                %d)"
               k s.lo (min s.hi next.(s.nest))
               next.(s.nest));
        if s.nest >= 0 && s.nest < num_nests then
          next.(s.nest) <- max next.(s.nest) s.hi
      end)
    sets;
  for n = 0 to num_nests - 1 do
    if next.(n) < nest_iterations.(n) then
      add
        (diag ~where:(w n) ~invariant:"partition-cover"
           "iterations [%d, %d) are covered by no set — the partition \
            dropped an iteration set"
           next.(n) nest_iterations.(n))
  done;
  List.rev !bad

(* ------------------------------------------------------------------ *)
(* Affinity vectors.                                                   *)

let distribution ~where ~invariant ?(eps = 1e-6) v =
  if Array.length v = 0 then
    [ diag ~where ~invariant "vector is empty" ]
  else begin
    let bad = ref [] in
    Array.iteri
      (fun k x ->
        if not (x >= -.eps) (* also catches NaN *) then
          bad :=
            diag ~where ~invariant "entry %d is negative (%g)" k x :: !bad)
      v;
    let sum = Array.fold_left ( +. ) 0. v in
    if not (Float.abs (sum -. 1.) <= eps) then
      bad :=
        diag ~where ~invariant "entries sum to %g, expected 1 (±%g)" sum eps
        :: !bad;
    List.rev !bad
  end

let summaries ~where (ss : Summary.t array) =
  let bad = ref [] in
  Array.iteri
    (fun k s ->
      let w = Printf.sprintf "%s: set %d" where k in
      bad :=
        distribution ~where:w ~invariant:"mai-distribution" (Summary.mai s)
        :: distribution ~where:w ~invariant:"cai-distribution"
             (Summary.cai s)
        :: distribution ~where:w ~invariant:"mai-llc-distribution"
             (Summary.mai_regions s)
        :: !bad;
      let a = Summary.alpha s in
      if not (a >= 0. && a <= 1.) then
        bad :=
          [ diag ~where:w ~invariant:"alpha-range" "alpha = %g not in [0, 1]" a ]
          :: !bad)
    ss;
  all (List.rev !bad)

(* Counting conservation over raw summaries. The distribution checks
   above only see normalised vectors; these see the integers, which is
   where a bulk-arithmetic tier (progression resolution, prefix-table
   adds, the execution-0 reclassification) would leak an off-by-one —
   e.g. a negative region count survives normalisation unseen when the
   row still sums right. *)
let summary_totals ~where ~shared ~expected_accesses (ss : Summary.t array) =
  let bad = ref [] in
  let add d = bad := d :: !bad in
  if Array.length expected_accesses <> Array.length ss then
    add
      (diag ~where ~invariant:"summary-totals"
         "%d summaries but %d expected access counts" (Array.length ss)
         (Array.length expected_accesses))
  else
    Array.iteri
      (fun k s ->
        let w = Printf.sprintf "%s: set %d" where k in
        let sum = Array.fold_left ( + ) 0 in
        let nonneg name a =
          Array.iteri
            (fun j x ->
              if x < 0 then
                add
                  (diag ~where:w ~invariant:"summary-nonnegative"
                     "%s entry %d is negative (%d)" name j x))
            a
        in
        nonneg "mc_counts" s.Summary.mc_counts;
        nonneg "region_counts" s.Summary.region_counts;
        nonneg "miss_region_counts" s.Summary.miss_region_counts;
        List.iter
          (fun (name, v) ->
            if v < 0 then
              add
                (diag ~where:w ~invariant:"summary-nonnegative"
                   "%s is negative (%d)" name v))
          [
            ("l1_hits", s.Summary.l1_hits);
            ("llc_hits", s.Summary.llc_hits);
            ("llc_misses", s.Summary.llc_misses);
          ];
        if Summary.accesses s <> expected_accesses.(k) then
          add
            (diag ~where:w ~invariant:"summary-totals"
               "l1_hits + llc_hits + llc_misses = %d, but the set executes \
                %d accesses"
               (Summary.accesses s) expected_accesses.(k));
        if sum s.Summary.mc_counts <> s.Summary.llc_misses then
          add
            (diag ~where:w ~invariant:"summary-totals"
               "mc_counts sum to %d but llc_misses = %d"
               (sum s.Summary.mc_counts) s.Summary.llc_misses);
        if sum s.Summary.region_counts <> s.Summary.llc_hits then
          add
            (diag ~where:w ~invariant:"summary-totals"
               "region_counts sum to %d but llc_hits = %d"
               (sum s.Summary.region_counts)
               s.Summary.llc_hits);
        let mrc = sum s.Summary.miss_region_counts in
        if shared then begin
          if mrc <> s.Summary.llc_misses then
            add
              (diag ~where:w ~invariant:"summary-totals"
                 "miss_region_counts sum to %d but llc_misses = %d (shared \
                  LLC)"
                 mrc s.Summary.llc_misses)
        end
        else if mrc <> 0 then
          add
            (diag ~where:w ~invariant:"summary-totals"
               "miss_region_counts sum to %d on a private LLC" mrc))
      ss;
  List.rev !bad

let tables ~where ~num_regions t =
  let bad = ref [] in
  for r = 0 to num_regions - 1 do
    let w = Printf.sprintf "%s: region %d" where r in
    bad :=
      distribution ~where:w ~invariant:"mac-distribution" (Assign.mac t r)
      :: distribution ~where:w ~invariant:"cac-distribution" (Assign.cac t r)
      :: !bad
  done;
  (* eta is a metric on distributions; on valid MAC/CAC rows every
     pairwise dissimilarity must land in [0, 1]. *)
  for r = 0 to num_regions - 1 do
    for r' = r to num_regions - 1 do
      List.iter
        (fun (name, a, b) ->
          let e = Affinity.eta a b in
          if not (e >= 0. && e <= 1.) then
            bad :=
              [ diag
                  ~where:
                    (Printf.sprintf "%s: regions %d/%d" where r r')
                  ~invariant:"eta-range" "eta(%s) = %g not in [0, 1]" name e
              ]
              :: !bad)
        [
          ("MAC", Assign.mac t r, Assign.mac t r');
          ("CAC", Assign.cac t r, Assign.cac t r');
        ]
    done
  done;
  all (List.rev !bad)

(* ------------------------------------------------------------------ *)
(* Region grid vs mesh.                                                *)

let region_grid ~where (cfg : Machine.Config.t) regions =
  let bad = ref [] in
  let add d = bad := d :: !bad in
  let count = Region.count regions in
  if
    Region.grid_rows regions <> Machine.Config.region_rows cfg
    || Region.grid_cols regions <> Machine.Config.region_cols cfg
    || count <> Machine.Config.num_regions cfg
  then
    add
      (diag ~where ~invariant:"region-grid"
         "region grid %dx%d (%d regions) disagrees with the configured \
          %dx%d (%d regions)"
         (Region.grid_rows regions) (Region.grid_cols regions) count
         (Machine.Config.region_rows cfg)
         (Machine.Config.region_cols cfg)
         (Machine.Config.num_regions cfg));
  let num_cores = Machine.Config.num_cores cfg in
  let owner = Array.make num_cores (-1) in
  for r = 0 to count - 1 do
    Array.iter
      (fun node ->
        if node < 0 || node >= num_cores then
          add
            (diag ~where ~invariant:"region-grid"
               "region %d claims node %d outside the %d-core mesh" r node
               num_cores)
        else if owner.(node) >= 0 then
          add
            (diag ~where ~invariant:"region-grid"
               "node %d belongs to regions %d and %d" node owner.(node) r)
        else begin
          owner.(node) <- r;
          if Region.of_node regions node <> r then
            add
              (diag ~where ~invariant:"region-grid"
                 "of_node %d = %d but node is listed by region %d" node
                 (Region.of_node regions node)
                 r)
        end)
      (Region.nodes_of regions r)
  done;
  Array.iteri
    (fun node r ->
      if r < 0 then
        add
          (diag ~where ~invariant:"region-grid"
             "node %d belongs to no region" node))
    owner;
  for r = 0 to count - 1 do
    List.iter
      (fun q ->
        if q < 0 || q >= count then
          add
            (diag ~where ~invariant:"region-grid"
               "region %d lists out-of-range neighbour %d" r q)
        else begin
          if Region.grid_distance regions r q <> 1 then
            add
              (diag ~where ~invariant:"region-grid"
                 "neighbours %d/%d are at grid distance %d, expected 1" r q
                 (Region.grid_distance regions r q));
          if not (List.mem r (Region.neighbors regions q)) then
            add
              (diag ~where ~invariant:"region-grid"
                 "neighbour relation not symmetric between %d and %d" r q)
        end)
      (Region.neighbors regions r)
  done;
  List.rev !bad

(* ------------------------------------------------------------------ *)
(* Assignment, balance, placement.                                     *)

let assignment ~where ~num_regions region_of_set =
  let bad = ref [] in
  Array.iteri
    (fun k r ->
      if r < 0 || r >= num_regions then
        bad :=
          diag ~where ~invariant:"assignment-range"
            "set %d assigned region %d, outside [0, %d)" k r num_regions
          :: !bad)
    region_of_set;
  List.rev !bad

(* Nest boundaries as (lo, len) slices of a set array, mirroring the
   per-nest slicing of [Mapper.map]. *)
let nest_slices (sets : Ir.Iter_set.t array) =
  let slices = ref [] in
  let start = ref 0 in
  Array.iteri
    (fun k (s : Ir.Iter_set.t) ->
      if k > 0 && s.nest <> sets.(k - 1).Ir.Iter_set.nest then begin
        slices := (sets.(k - 1).Ir.Iter_set.nest, !start, k - !start) :: !slices;
        start := k
      end)
    sets;
  if Array.length sets > 0 then
    slices :=
      ( sets.(Array.length sets - 1).Ir.Iter_set.nest,
        !start,
        Array.length sets - !start )
      :: !slices;
  List.rev !slices

let balance ~where ~num_regions ~sets region_of_set =
  if Array.length sets <> Array.length region_of_set then
    [
      diag ~where ~invariant:"balance-tolerance"
        "%d sets but %d region assignments" (Array.length sets)
        (Array.length region_of_set);
    ]
  else
    all
      (List.map
         (fun (nest, lo, len) ->
           let slice = Array.sub region_of_set lo len in
           match Balance.counts ~num_regions slice with
           | exception Invalid_argument _ ->
               (* Out-of-range regions are reported by [assignment]. *)
               []
           | counts ->
               if Balance.is_balanced ~num_regions slice then []
               else
                 let lo_b = len / num_regions in
                 let hi_b = if len mod num_regions = 0 then lo_b else lo_b + 1 in
                 [
                   diag
                     ~where:(Printf.sprintf "%s: nest %d" where nest)
                     ~invariant:"balance-tolerance"
                     "region set counts (%s) leave the declared tolerance \
                      [%d, %d] for %d sets over %d regions"
                     (String.concat ", "
                        (Array.to_list (Array.map string_of_int counts)))
                     lo_b hi_b len num_regions;
                 ])
         (nest_slices sets))

let placement ~where ?(in_region = true) (cfg : Machine.Config.t) regions
    ~region_of_set (sched : Machine.Schedule.t) =
  let bad = ref [] in
  let add d = bad := d :: !bad in
  let num_cores = Machine.Config.num_cores cfg in
  if Array.length sched.Machine.Schedule.core_of <> Array.length sched.sets
  then
    add
      (diag ~where ~invariant:"schedule-total"
         "%d sets but %d core assignments"
         (Array.length sched.sets)
         (Array.length sched.core_of));
  if Array.length region_of_set <> Array.length sched.sets then
    add
      (diag ~where ~invariant:"schedule-total"
         "%d sets but %d region assignments"
         (Array.length sched.sets)
         (Array.length region_of_set));
  Array.iteri
    (fun k c ->
      if c < 0 || c >= num_cores then
        add
          (diag ~where ~invariant:"placement-core-range"
             "set %d placed on core %d, outside [0, %d)" k c num_cores)
      else if
        in_region
        && k < Array.length region_of_set
        && region_of_set.(k) >= 0
        && region_of_set.(k) < Region.count regions
        && Region.of_node regions c <> region_of_set.(k)
      then
        add
          (diag ~where ~invariant:"placement-core-region"
             "set %d placed on core %d (region %d) but assigned to region %d"
             k c
             (Region.of_node regions c)
             region_of_set.(k)))
    sched.Machine.Schedule.core_of;
  List.rev !bad
