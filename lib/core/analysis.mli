(** Building per-set summaries, at compile time and at runtime.

    [cme_summaries] is the compile-time path for regular applications:
    every access is classified by the CME estimator and its MC/bank
    located through the exposed address mapping (paper, Section 4).

    [observed_summaries] is the runtime path: a functional replay of the
    access stream through L1/LLC-shaped caches. It returns two views:
    the *cold* view — what the inspector sees during the first timing
    iteration — and the *warm* view — the steady state the executor
    experiences. The gap between estimated (or cold) and warm summaries
    is exactly the MAI/CAI error the paper reports in Figures 7a/8a.

    {b Fast path}: both functions resolve per-access locations through
    a {!Line_memo} (one array load instead of a
    translate/bank/region/MC recomputation). The CME path dispatches
    each (set, reference) to one of three tiers:

    - {e symbolic} — pure-affine references with a {!Cme.Symbolic.plan}
      never touch the trace: the set's LLC hits and misses are address
      arithmetic progressions resolved against the memo (and its
      location prefix tables), at cost independent of the execution
      count;
    - {e periodic} — affine references beyond the plan caps bulk-count
      L1 hits arithmetically and visit only the LLC-reaching executions
      ({!Ir.Trace.iter_body_periodic}), or aggregate all-miss same-line
      runs into bulk updates ({!Ir.Trace.iter_body_line_blocks});
    - {e traced} — index-array references have no closed form and
      expand their stream as line blocks.

    The observed path streams the trace through a preallocated scratch
    walker ({!Ir.Trace.iter_range_s}) and the allocation-free
    {!Cache.Sa_cache.access_hit}, with the translation branch hoisted
    out when the layout has no remaps; its inner loop allocates zero
    words per access (enforced by the replay allocation-budget test).
    Callers that summarise the same trace more than once — {!Mapper.map}
    runs the CME path and up to two observed replays — should build the
    memo once and pass it to every call.

    [cme_summaries] additionally shards iteration sets across the
    domains of an optional {!Par.Pool}: summaries are additive per set
    and {!Cme.seek} re-derives the classifier state at any set
    boundary, so per-shard results merged in set order are
    byte-identical to the sequential walk at any domain count (the
    determinism tests check 1/2/4/8). The observed path never uses the
    pool: its replay threads one L1 and one set of bank caches through
    the whole trace, so every outcome depends on all earlier accesses
    and sharding would change the answers.

    {b Thread safety}: both functions only read the trace, address map
    and memo (all immutable here) and write summaries they allocate
    themselves, so concurrent calls — including from inside Pool
    workers, as the serving layer does — are safe. Do not pass the pool
    that is executing the current job (a job fanning out into its own
    pool can deadlock); give the analysis its own pool, as
    {!Mapper.map} documents. *)

val cme_summaries :
  ?pool:Par.Pool.t ->
  ?memo:Line_memo.t ->
  ?metrics:Obs.Metrics.t ->
  ?symbolic:bool ->
  Machine.Config.t ->
  Machine.Addr_map.t ->
  Ir.Trace.t ->
  sets:Ir.Iter_set.t array ->
  Summary.t array
(** [memo], when given, must have been built from the same config,
    address map and layout (as {!Mapper.map} does); the default builds
    a fresh one. [pool], when given with more than one domain, shards
    sets across its workers. [symbolic:false] (default [true]) disables
    the trace-free tier, forcing every affine reference onto the
    periodic walkers — the results are byte-identical either way (the
    equivalence tests check this); the flag exists for that cross-check
    and for timing the tiers against each other.

    [metrics] feeds the fast-path counters —
    [locmap_cme_accesses_total] (executions folded by the closed form),
    [locmap_cme_bulk_l1_hits_total] (L1 hits counted without visiting),
    [locmap_cme_visited_total] (executions visited individually),
    [locmap_cme_line_block_updates_total] (bulk line-block updates) and
    the per-tier coverage counters
    [locmap_cme_tier_symbolic_accesses_total],
    [locmap_cme_tier_periodic_accesses_total] and
    [locmap_cme_tier_traced_accesses_total] (every access lands in
    exactly one tier, so the three sum to [locmap_cme_accesses_total])
    — accumulated as plain ints per shard range and flushed once per
    range, so the hot loops never touch an atomic and the results stay
    byte-identical with instrumentation on. Memo location lookups on
    the walking tiers are [visited + line_blocks]; combined with
    [locmap_line_memo_fallback_lookups_total] (registered on the memo
    it builds, or by the caller on a passed-in memo) this gives the
    memo hit rate [1 - fallbacks / lookups]. *)

val observed_summaries :
  ?warm_pass:bool ->
  ?memo:Line_memo.t ->
  Machine.Config.t ->
  Machine.Addr_map.t ->
  Ir.Trace.t ->
  sets:Ir.Iter_set.t array ->
  Summary.t array * Summary.t array
(** [(cold, warm)] summaries, one per set. [warm_pass:false] (default
    [true]) skips the second replay and returns the cold summaries in
    both positions — for callers that only need the inspector view. *)

val mean_error :
  (Summary.t -> float array) -> Summary.t array -> Summary.t array -> float
(** [mean_error proj est truth] is the mean over sets of
    [Affinity.eta (proj est.(k)) (proj truth.(k))] — the per-application
    MAI/CAI error metric. *)
