type t = {
  mc_counts : int array;
  region_counts : int array;
  miss_region_counts : int array;
  mutable llc_hits : int;
  mutable llc_misses : int;
  mutable l1_hits : int;
}

let create ~num_mcs ~num_regions =
  if num_mcs <= 0 || num_regions <= 0 then
    invalid_arg "Summary.create: non-positive dimension";
  {
    mc_counts = Array.make num_mcs 0;
    region_counts = Array.make num_regions 0;
    miss_region_counts = Array.make num_regions 0;
    llc_hits = 0;
    llc_misses = 0;
    l1_hits = 0;
  }

let add_l1_hit t = t.l1_hits <- t.l1_hits + 1

let add_l1_hits t n =
  if n < 0 then invalid_arg "Summary.add_l1_hits: negative count";
  t.l1_hits <- t.l1_hits + n

let add_llc_hit t ~region =
  t.region_counts.(region) <- t.region_counts.(region) + 1;
  t.llc_hits <- t.llc_hits + 1

let add_llc_hits t ~region n =
  if n < 0 then invalid_arg "Summary.add_llc_hits: negative count";
  t.region_counts.(region) <- t.region_counts.(region) + n;
  t.llc_hits <- t.llc_hits + n

let add_llc_miss t ~mc ~bank_region =
  t.mc_counts.(mc) <- t.mc_counts.(mc) + 1;
  if bank_region >= 0 then
    t.miss_region_counts.(bank_region) <-
      t.miss_region_counts.(bank_region) + 1;
  t.llc_misses <- t.llc_misses + 1

let add_llc_misses t ~mc ~bank_region n =
  if n < 0 then invalid_arg "Summary.add_llc_misses: negative count";
  t.mc_counts.(mc) <- t.mc_counts.(mc) + n;
  if bank_region >= 0 then
    t.miss_region_counts.(bank_region) <-
      t.miss_region_counts.(bank_region) + n;
  t.llc_misses <- t.llc_misses + n

let mai t = Affinity.of_counts t.mc_counts
let mai_regions t = Affinity.of_counts t.miss_region_counts
let cai t = Affinity.of_counts t.region_counts

let alpha t =
  let n = t.llc_hits + t.llc_misses in
  if n = 0 then 0.5 else float_of_int t.llc_hits /. float_of_int n

let accesses t = t.l1_hits + t.llc_hits + t.llc_misses

let merge a b =
  if
    Array.length a.mc_counts <> Array.length b.mc_counts
    || Array.length a.region_counts <> Array.length b.region_counts
  then invalid_arg "Summary.merge: mismatched dimensions";
  {
    mc_counts = Array.init (Array.length a.mc_counts) (fun k -> a.mc_counts.(k) + b.mc_counts.(k));
    region_counts =
      Array.init (Array.length a.region_counts) (fun k ->
          a.region_counts.(k) + b.region_counts.(k));
    miss_region_counts =
      Array.init (Array.length a.miss_region_counts) (fun k ->
          a.miss_region_counts.(k) + b.miss_region_counts.(k));
    llc_hits = a.llc_hits + b.llc_hits;
    llc_misses = a.llc_misses + b.llc_misses;
    l1_hits = a.l1_hits + b.l1_hits;
  }
