(** Invariant checks over the pipeline's intermediate artifacts.

    Every mapping the pipeline emits is supposed to satisfy a small set
    of invariants drawn directly from the paper: iteration-set
    partitions cover the iteration space exactly once (Section 3.2),
    affinity vectors are discrete probability distributions and
    η(δ, δ′) ∈ [0, 1] (Sections 3.3–3.7), assignment puts every set in
    exactly one region (Algorithms 1–2), balancing leaves every region
    within one set of the per-nest average (Algorithm 1, lines 15–24),
    and placement puts every set on exactly one core inside its region
    (Section 3.9). This module states those invariants as total check
    functions returning structured {!diagnostic}s; [Mapper.map
    ~verify:true] asserts them at each [~on_phase] boundary, and the
    [Verify] library builds its whole-artifact reports out of them.

    Checks never raise on malformed input — a malformed artifact is
    precisely what they exist to describe. {!all} combines check
    results; {!fail_if_any} converts them into the {!Violation}
    exception for assertion-style use.

    {b Thread safety}: stateless; all functions are pure. *)

type diagnostic = {
  invariant : string;  (** violated invariant, kebab-case (e.g. ["partition-cover"]) *)
  location : string;  (** where: workload / phase / nest / set / region *)
  message : string;  (** what was expected and what was found *)
}

exception Violation of diagnostic list
(** Raised by {!fail_if_any} (and thus by [Mapper.map ~verify:true])
    with the non-empty list of violated invariants. *)

val pp : Format.formatter -> diagnostic -> unit
(** [<location>: [<invariant>] <message>]. *)

val to_string : diagnostic -> string

val all : diagnostic list list -> diagnostic list
(** Concatenation, preserving order. *)

val fail_if_any : diagnostic list -> unit
(** Raises {!Violation} unless the list is empty. *)

(** {1 Partition invariants (Section 3.2)} *)

val partition :
  where:string -> nest_iterations:int array -> Ir.Iter_set.t array ->
  diagnostic list
(** Every nest's parallel iteration space [0, nest_iterations.(n))
    must be covered exactly once by sets in nest order then iteration
    order: in-range nest ids, non-empty in-bounds sets, contiguous
    starts, no gap, no overlap, full cover. *)

(** {1 Affinity invariants (Sections 3.3–3.8)} *)

val distribution :
  where:string -> invariant:string -> ?eps:float -> float array ->
  diagnostic list
(** The vector must be a discrete probability distribution: non-empty,
    entries ≥ -eps, Σ within [eps] of 1 (default [eps] 1e-6). The
    reported diagnostic uses [invariant] (e.g. ["mai-distribution"]). *)

val summaries : where:string -> Summary.t array -> diagnostic list
(** Per set: MAI, CAI and shared-LLC MAI distributions valid and
    α ∈ [0, 1]. *)

val summary_totals :
  where:string ->
  shared:bool ->
  expected_accesses:int array ->
  Summary.t array ->
  diagnostic list
(** Counting conservation over the raw summaries, which the
    (normalised) {!summaries} checks cannot see: every count
    non-negative, [l1_hits + llc_hits + llc_misses] equal to the set's
    access count, [mc_counts] summing to [llc_misses], [region_counts]
    summing to [llc_hits], and [miss_region_counts] summing to
    [llc_misses] on a shared LLC (zero on a private one). These are the
    integers the bulk-arithmetic CME tiers produce without visiting
    accesses, so this is the check that catches a progression counted
    twice or an execution-0 reclassification gone negative. *)

val tables : where:string -> num_regions:int -> Assign.t -> diagnostic list
(** MAC and CAC of every region are distributions, and every pairwise
    η(MAC r, MAC r′) and η(CAC r, CAC r′) lies in [0, 1]. *)

val region_grid : where:string -> Machine.Config.t -> Region.t -> diagnostic list
(** The region grid is consistent with the mesh: grid dimensions match
    the configuration, every node belongs to exactly one region,
    [of_node] agrees with [nodes_of], and neighbour lists are symmetric
    unit-distance edges. *)

(** {1 Mapping invariants (Algorithms 1–2, Section 3.9)} *)

val assignment :
  where:string -> num_regions:int -> int array -> diagnostic list
(** Every set is assigned exactly one in-range region. *)

val balance :
  where:string ->
  num_regions:int ->
  sets:Ir.Iter_set.t array ->
  int array ->
  diagnostic list
(** Post-balance set counts, per nest, are within the balancer's
    declared tolerance: every region within one set of the nest's exact
    average (the guarantee of [Balance.balance], checked with
    [Balance.is_balanced]). *)

val placement :
  where:string ->
  ?in_region:bool ->
  Machine.Config.t ->
  Region.t ->
  region_of_set:int array ->
  Machine.Schedule.t ->
  diagnostic list
(** The schedule is total — same partition length, every set on exactly
    one in-range core — and, when [in_region] (default [true], the
    unrestricted-core case), each set's core lies inside its assigned
    region. Pass [~in_region:false] for multiprogrammed runs whose core
    subset may force out-of-region placement. *)
