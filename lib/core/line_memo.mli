(** Line-granular memo of the address map.

    Both summary-construction paths ask, for every access, where the
    line lives: its physical line, its home LLC bank (and that bank's
    region) and its MC. All four are pure functions of the cache line
    under a fixed [(Addr_map, Region)] pair, so this module precomputes
    them once per layout — one flat array indexed by
    [virtual address / l2_line] holding the physical line, and one
    holding the (mc, region, node) triple packed into a single int —
    and the per-access work in {!Analysis} collapses to one array load
    plus a shift/mask.

    Soundness: translation is page-granular and every location function
    depends on the address only through its line (and page), so a
    per-line memo is exact whenever [l2_line] divides [page_size] —
    guaranteed by every validated config. A degenerate hand-built
    config, a layout larger than the memo cap, and any address outside
    the layout footprint all fall back to direct {!Machine.Addr_map}
    calls, so answers are {e always} identical to the direct path (the
    determinism tests check this on random addresses).

    {b Thread safety}: the tables are built eagerly in {!create} and
    never mutated afterwards, so a memo may be shared freely across
    domains — the domain-parallel analysis reads one memo from all
    shards. The optional fallback counter is a domain-safe sharded
    {!Obs.Metrics.counter}. *)

type t

val create :
  ?metrics:Obs.Metrics.t ->
  Machine.Config.t ->
  Machine.Addr_map.t ->
  Ir.Layout.t ->
  t
(** Precomputes the tables for every line of the layout's footprint.
    Cost is one address-map evaluation per line — amortised over the
    (far larger) number of trace accesses that reuse it. [metrics]
    registers [locmap_line_memo_fallback_lookups_total], counting
    lookups that bypassed the memo (degenerate config, oversized
    layout, or out-of-footprint address); the memo-hit path is never
    instrumented, so it stays a pure array load. Together with
    [locmap_cme_accesses_total] this yields the memo hit rate. *)

val addr_map : t -> Machine.Addr_map.t

val regions : t -> Region.t

val line_size : t -> int
(** The memo granularity: the config's [l2_line]. *)

val line_shift : t -> int
(** log2 of {!line_size} when the memo is {!memoized} (the line size is
    then a power of two); 0 for degenerate memos. Lets hot callers
    shift instead of divide. *)

val num_lines : t -> int
(** Lines covered by the eager tables (0 when degenerate). *)

val memoized : t -> bool
(** Whether the eager tables were built (false only for degenerate
    configs or layouts beyond the memo cap — the fallback still answers
    identically, just without the speedup). *)

val translate : t -> int -> int
(** Virtual-to-physical translation of any address, via the memo. *)

val bank_node_of : t -> int -> int
(** Home-bank node of a {e virtual} address (the memo folds the
    translate step in). *)

val region_of : t -> int -> int
(** Region of the home bank of a virtual address. *)

val mc_of : t -> int -> int
(** MC serving a virtual address. *)

val loc_of : t -> int -> int
(** The packed (mc, region, node) record of a virtual address — the
    single array load the hot loops use; decode with the accessors
    below. *)

val node_of_loc : int -> int

val region_of_loc : int -> int

val mc_of_loc : int -> int

val loc_of_line : t -> int -> int
(** Packed location of line index [l] (i.e. of address
    [l * line_size]) — the symbolic tier's unit of lookup. *)

val identity_translation : t -> bool
(** True when virtual-to-physical translation is the identity over the
    whole memoized footprint (no page remaps) — the observed replay
    skips {!translate} entirely then. False whenever the memo is
    degenerate. *)

val num_mcs : t -> int

val num_regions : t -> int

(** {2 Location prefix tables}

    The symbolic CME tier reduces an iteration set's misses and hits to
    address arithmetic progressions; resolving one progression needs
    the per-MC and per-region {e counts} of a contiguous line range,
    not each line's location. Every structured address map's location
    pattern is periodic in the line index (bank interleave cycles with
    the node count, MC selection with [num_mcs] pages), so {!create}
    builds prefix sums over one such period — {e verified} against the
    eager tables, never assumed: a hash-interleaved or remapped map
    that breaks periodicity degrades to a whole-footprint table when
    small enough, else to no prefix ({!prefix_available} false, and
    callers enumerate lines through {!loc_of_line} instead). *)

val prefix_available : t -> bool

val add_mc_line_counts :
  t -> lo:int -> hi:int -> weight:int -> int array -> unit
(** [add_mc_line_counts t ~lo ~hi ~weight into] adds
    [weight * (lines of line-index range [lo, hi) served by MC m)] into
    [into.(m)], for every MC — O(num_mcs), independent of the range
    length. Raises [Invalid_argument] when no prefix is available or
    the range leaves the memoized footprint. *)

val add_region_line_counts :
  t -> lo:int -> hi:int -> weight:int -> int array -> unit
(** Same, per home-bank region. *)
