(** Line-granular memo of the address map.

    Both summary-construction paths ask, for every access, where the
    line lives: its physical line, its home LLC bank (and that bank's
    region) and its MC. All four are pure functions of the cache line
    under a fixed [(Addr_map, Region)] pair, so this module precomputes
    them once per layout — one flat array indexed by
    [virtual address / l2_line] holding the physical line, and one
    holding the (mc, region, node) triple packed into a single int —
    and the per-access work in {!Analysis} collapses to one array load
    plus a shift/mask.

    Soundness: translation is page-granular and every location function
    depends on the address only through its line (and page), so a
    per-line memo is exact whenever [l2_line] divides [page_size] —
    guaranteed by every validated config. A degenerate hand-built
    config, a layout larger than the memo cap, and any address outside
    the layout footprint all fall back to direct {!Machine.Addr_map}
    calls, so answers are {e always} identical to the direct path (the
    determinism tests check this on random addresses).

    {b Thread safety}: the tables are built eagerly in {!create} and
    never mutated afterwards, so a memo may be shared freely across
    domains — the domain-parallel analysis reads one memo from all
    shards. The optional fallback counter is a domain-safe sharded
    {!Obs.Metrics.counter}. *)

type t

val create :
  ?metrics:Obs.Metrics.t ->
  Machine.Config.t ->
  Machine.Addr_map.t ->
  Ir.Layout.t ->
  t
(** Precomputes the tables for every line of the layout's footprint.
    Cost is one address-map evaluation per line — amortised over the
    (far larger) number of trace accesses that reuse it. [metrics]
    registers [locmap_line_memo_fallback_lookups_total], counting
    lookups that bypassed the memo (degenerate config, oversized
    layout, or out-of-footprint address); the memo-hit path is never
    instrumented, so it stays a pure array load. Together with
    [locmap_cme_accesses_total] this yields the memo hit rate. *)

val addr_map : t -> Machine.Addr_map.t

val regions : t -> Region.t

val line_size : t -> int
(** The memo granularity: the config's [l2_line]. *)

val num_lines : t -> int
(** Lines covered by the eager tables (0 when degenerate). *)

val memoized : t -> bool
(** Whether the eager tables were built (false only for degenerate
    configs or layouts beyond the memo cap — the fallback still answers
    identically, just without the speedup). *)

val translate : t -> int -> int
(** Virtual-to-physical translation of any address, via the memo. *)

val bank_node_of : t -> int -> int
(** Home-bank node of a {e virtual} address (the memo folds the
    translate step in). *)

val region_of : t -> int -> int
(** Region of the home bank of a virtual address. *)

val mc_of : t -> int -> int
(** MC serving a virtual address. *)

val loc_of : t -> int -> int
(** The packed (mc, region, node) record of a virtual address — the
    single array load the hot loops use; decode with the accessors
    below. *)

val node_of_loc : int -> int

val region_of_loc : int -> int

val mc_of_loc : int -> int
