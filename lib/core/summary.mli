(** Per-iteration-set access summaries.

    A summary accumulates, for one iteration set, where its LLC misses
    go (per MC) and where its LLC hits are served from (per region of
    the home bank) — the raw counts behind MAI, CAI and α. Summaries
    are produced either by the compile-time CME analysis (regular
    applications) or by the runtime inspector (irregular applications),
    and in both cases consumed identically by the mapping algorithms.

    {b Thread safety}: not thread-safe. The count arrays are mutated
    in place while a summary is being accumulated; a summary belongs
    to the single analysis pass building it and is treated as
    read-only once handed to the mappers. *)

type t = {
  mc_counts : int array;  (** LLC misses destined to each MC *)
  region_counts : int array;  (** LLC hits served by banks in each region *)
  miss_region_counts : int array;
      (** LLC misses by home-bank region (shared LLC): in S-NUCA a miss
          is requested from and returned through the line's home bank,
          so the on-chip distance its traffic travels from the core is
          governed by the bank's region — the paper's "MAI of the LLC"
          (Section 3.8) *)
  mutable llc_hits : int;
  mutable llc_misses : int;
  mutable l1_hits : int;
}

val create : num_mcs:int -> num_regions:int -> t

val add_l1_hit : t -> unit

val add_l1_hits : t -> int -> unit
(** Bulk variant of {!add_l1_hit}: the CME fast path counts a whole
    reference's L1 hits per iteration set arithmetically and records
    them with one call. Raises [Invalid_argument] on a negative
    count. *)

val add_llc_hit : t -> region:int -> unit

val add_llc_hits : t -> region:int -> int -> unit
(** Bulk variant of {!add_llc_hit}: the symbolic CME tier records a
    whole progression's same-line hits with one call. Raises
    [Invalid_argument] on a negative count. *)

val add_llc_miss : t -> mc:int -> bank_region:int -> unit
(** [bank_region] is the miss's home-bank region (shared LLC); pass
    [-1] for a private LLC, where the notion does not apply. *)

val add_llc_misses : t -> mc:int -> bank_region:int -> int -> unit
(** Bulk variant of {!add_llc_miss}: the CME fast path records a whole
    same-line block of misses with one call. Raises [Invalid_argument]
    on a negative count. *)

val mai : t -> float array
(** Memory affinity of the set: normalised MC miss distribution
    (uniform when the set never missed). *)

val mai_regions : t -> float array
(** Shared-LLC memory affinity: normalised distribution of misses over
    home-bank regions. *)

val cai : t -> float array
(** Cache affinity of the set: normalised per-region hit distribution
    (uniform when the set never hit in the LLC). *)

val alpha : t -> float
(** Estimated LLC hit fraction among LLC-reaching accesses — the α
    weight of Section 3.8 (0.5 when the set never reached the LLC). *)

val accesses : t -> int

val merge : t -> t -> t
(** Element-wise sum (fresh summary). Raises [Invalid_argument] on
    mismatched dimensions. *)
