type plan = {
  seed : int;
  short_rate : float;
  stall_rate : float;
  stall_ms : float;
  reset_rate : float;
  reset_max_bytes : int;
  trickle_rate : float;
}

let none =
  {
    seed = 0;
    short_rate = 0.;
    stall_rate = 0.;
    stall_ms = 0.;
    reset_rate = 0.;
    reset_max_bytes = 4096;
    trickle_rate = 0.;
  }

let is_none p =
  p.short_rate = 0. && p.stall_rate = 0. && p.reset_rate = 0.
  && p.trickle_rate = 0.

let seed p = p.seed

let check_rate name r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg (Printf.sprintf "Chaos.create: %s must be in [0, 1]" name)

let create ?(seed = 0) ?(short_rate = 0.) ?(stall_rate = 0.) ?(stall_ms = 1.)
    ?(reset_rate = 0.) ?(reset_max_bytes = 4096) ?(trickle_rate = 0.) () =
  check_rate "short_rate" short_rate;
  check_rate "stall_rate" stall_rate;
  check_rate "reset_rate" reset_rate;
  check_rate "trickle_rate" trickle_rate;
  if stall_ms < 0. then invalid_arg "Chaos.create: stall_ms must be >= 0";
  if reset_max_bytes <= 0 then
    invalid_arg "Chaos.create: reset_max_bytes must be positive";
  { seed; short_rate; stall_rate; stall_ms; reset_rate; reset_max_bytes;
    trickle_rate }

let of_spec s =
  let ( let* ) = Result.bind in
  let float_of k v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "chaos spec: bad value %S for %s" v k)
  in
  let int_of k v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "chaos spec: bad value %S for %s" v k)
  in
  let step acc pair =
    let* p = acc in
    match String.index_opt pair '=' with
    | None -> Error (Printf.sprintf "chaos spec: expected key=value, got %S" pair)
    | Some eq -> (
        let k = String.trim (String.sub pair 0 eq) in
        let v =
          String.trim
            (String.sub pair (eq + 1) (String.length pair - eq - 1))
        in
        match k with
        | "seed" ->
            let* i = int_of k v in
            Ok { p with seed = i }
        | "short" ->
            let* f = float_of k v in
            Ok { p with short_rate = f }
        | "stall" ->
            let* f = float_of k v in
            Ok { p with stall_rate = f }
        | "stall_ms" ->
            let* f = float_of k v in
            Ok { p with stall_ms = f }
        | "reset" ->
            let* f = float_of k v in
            Ok { p with reset_rate = f }
        | "reset_bytes" ->
            let* i = int_of k v in
            Ok { p with reset_max_bytes = i }
        | "trickle" ->
            let* f = float_of k v in
            Ok { p with trickle_rate = f }
        | _ -> Error (Printf.sprintf "chaos spec: unknown key %S" k))
  in
  let* p =
    List.fold_left step (Ok none)
      (List.filter
         (fun s -> String.trim s <> "")
         (String.split_on_char ',' s))
  in
  match create ~seed:p.seed ~short_rate:p.short_rate ~stall_rate:p.stall_rate
          ~stall_ms:p.stall_ms ~reset_rate:p.reset_rate
          ~reset_max_bytes:p.reset_max_bytes ~trickle_rate:p.trickle_rate ()
  with
  | p -> Ok p
  | exception Invalid_argument m -> Error m

(* ------------------------------------------------------------------ *)
(* Seeded decisions — the same MD5 construction as
   [Service.Fault_injection.coin]: pure in the full decision identity,
   so identical seeds draw identical outcomes whatever the
   scheduling. *)

let coin plan ~conn ~op ~index =
  let d =
    Digest.string (Printf.sprintf "%d|%d|%s|%d" plan.seed conn op index)
  in
  let bits =
    (Char.code d.[0] lsl 22)
    lor (Char.code d.[1] lsl 14)
    lor (Char.code d.[2] lsl 6)
    lor (Char.code d.[3] lsr 2)
  in
  float_of_int bits /. 1073741824.0 (* 2^30 *)

(* Connection-confined by contract (see the .mli): one handler domain
   owns each wrapper, so the mutable counters need no lock. *)
type conn = {
  plan : plan;
  id : int;
  trickled : bool;
  reset_at : (bool * int) option;
      (** [(on_read, byte threshold)] — the threshold counts only that
          direction's bytes, because the interleaving of reads and
          writes (and hence any combined count at a given point)
          depends on OS chunking, while each direction's own byte
          stream does not *)
  mutable read_bytes : int;  (* lint:ignore — connection-confined, see .mli *)
  mutable write_bytes : int;
  mutable reads : int;
  mutable writes : int;
  mutable is_reset : bool;
}

let wrap plan ~conn =
  let trickled = coin plan ~conn ~op:"trickle" ~index:0 < plan.trickle_rate in
  let reset_at =
    if coin plan ~conn ~op:"reset" ~index:0 < plan.reset_rate then
      let on_read = coin plan ~conn ~op:"reset" ~index:2 < 0.5 in
      Some
        ( on_read,
          1
          + int_of_float
              (coin plan ~conn ~op:"reset" ~index:1
              *. float_of_int plan.reset_max_bytes) )
    else None
  in
  {
    plan;
    id = conn;
    trickled;
    reset_at;
    read_bytes = 0;
    write_bytes = 0;
    reads = 0;
    writes = 0;
    is_reset = false;
  }

let reset t fn =
  t.is_reset <- true;
  raise (Unix.Unix_error (Unix.ECONNRESET, "chaos", fn))

(* The byte budget left before the seeded reset; ops in the reset
   direction are clamped so they never cross the threshold, which is
   what makes the cut point — and hence the exact bytes a client sees
   — independent of OS read chunking. A reset, once fired, kills both
   directions (like a real RST). *)
let budget t ~on_read fn =
  if t.is_reset then reset t fn;
  match t.reset_at with
  | Some (dir, th) when dir = on_read ->
      let left = th - if on_read then t.read_bytes else t.write_bytes in
      if left <= 0 then reset t fn else left
  | _ -> max_int

let clamp t ~op ~index len =
  if t.trickled then 1
  else if coin t.plan ~conn:t.id ~op ~index < t.plan.short_rate then
    1 + int_of_float (coin t.plan ~conn:t.id ~op ~index:(index + 1_000_000)
                      *. 15.)
  else len

let stall t ~op ~index =
  if
    t.plan.stall_rate > 0. && t.plan.stall_ms > 0.
    && coin t.plan ~conn:t.id ~op ~index:(index + 2_000_000)
       < t.plan.stall_rate
  then Unix.sleepf (t.plan.stall_ms /. 1000.)

(* On EAGAIN/EINTR (anything the underlying syscall raises) the op
   index is rolled back: the op transferred nothing and will be
   retried, so it must not consume a seeded decision — otherwise the
   decision sequence would depend on scheduling-dependent backpressure
   and determinism would be lost. Injected resets are raised *before*
   the syscall and keep their index. *)
let read t fd buf pos len =
  let index = t.reads in
  t.reads <- index + 1;
  let b = budget t ~on_read:true "read" in
  stall t ~op:"read" ~index;
  let len = min len (min b (max 1 (clamp t ~op:"read" ~index len))) in
  let n =
    try Unix.read fd buf pos len
    with e ->
      t.reads <- index;
      raise e
  in
  t.read_bytes <- t.read_bytes + n;
  n

let write t fd buf pos len =
  let index = t.writes in
  t.writes <- index + 1;
  let b = budget t ~on_read:false "write" in
  stall t ~op:"write" ~index;
  let len = min len (min b (max 1 (clamp t ~op:"write" ~index len))) in
  let n =
    try Unix.write fd buf pos len
    with e ->
      t.writes <- index;
      raise e
  in
  t.write_bytes <- t.write_bytes + n;
  n
