(** A circuit breaker over the shed/fault rate: deliberate brownout.

    Per-request shedding ([Admission]) keeps the pool from drowning,
    but under {e sustained} overload it still burns a parse, an
    admission attempt and a response per excess request — and every
    admitted request competes with the backlog. SRE practice says the
    edge should instead degrade {e deliberately}: notice that it is
    drowning, stop attempting fresh work for a beat, serve what it can
    cheaply (cache, fallback), and probe its way back.

    The breaker is that state machine:

    - {b Closed} (healthy): outcomes of fresh compute — served ok vs
      shed/faulted — stream into a sliding window. When the window
      holds at least [min_events] outcomes and the bad fraction
      reaches [trip_ratio], the breaker {e trips} to Open.
    - {b Open} (brownout): {!allow} refuses fresh compute; the server
      answers from cache or with the cheap fallback mapping, shedding
      the rest with a retryable [Fault.Overload] (scope ["brownout"]).
      After [open_ms] the breaker moves to Half-open.
    - {b Half-open} (probing): {!allow} lets through up to [probes]
      requests. [probes] consecutive successes close the breaker; any
      failure reopens it (and restarts the [open_ms] clock).

    The clock is injectable ([?now]) so every transition is exactly
    testable — [test/test_net.ml] drives a full
    closed → open → half-open → closed cycle on a fake clock.

    {b Thread safety}: fully thread-safe — state, window and probe
    accounting sit behind one internal mutex; {!state} and the
    counters are safe from any domain. *)

type state = Closed | Open | Half_open

val state_name : state -> string
(** ["closed"], ["open"], ["half_open"] — the health-surface JSON
    rendering. *)

type config = {
  window : int;  (** sliding window of recent outcomes, >= 1 *)
  min_events : int;  (** outcomes required before tripping, >= 1 *)
  trip_ratio : float;  (** bad fraction that trips, in (0, 1] *)
  open_ms : float;  (** brownout dwell before probing, > 0 *)
  probes : int;  (** consecutive successes to close, >= 1 *)
}

val default_config : config
(** Window 64, min 16 events, trip at 50% bad, 1 s open, 3 probes. *)

type t

val create : ?metrics:Obs.Metrics.t -> ?now:(unit -> int64) -> config -> t
(** Raises [Invalid_argument] on an out-of-range field. [metrics]
    registers [locmap_net_breaker_state] (gauge: 0 closed, 1
    half-open, 2 open) and [locmap_net_breaker_trips_total] (counter).
    [now] supplies monotonic nanoseconds. *)

val allow : t -> bool
(** May fresh compute proceed? Closed: always. Open: [false] until
    [open_ms] has elapsed, at which point the breaker flips to
    Half-open and this call is the first probe. Half-open: [true] for
    up to [probes] outstanding probes, [false] beyond. *)

val record : t -> ok:bool -> unit
(** The outcome of one allowed request: [ok = true] for a served
    (non-degraded) response, [false] for a shed or faulted one.
    Closed: feeds the window (and may trip). Half-open: a success
    advances toward closing, a failure reopens. Open: ignored (a
    straggler from before the trip). *)

val state : t -> state
(** The current state as last transitioned (time-based Open →
    Half-open movement happens in {!allow}). *)

val trips_total : t -> int
(** Times the breaker has tripped (Closed/Half-open → Open). *)
