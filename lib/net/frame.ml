type frame =
  | Line of string
  | Too_long of int

(* Connection-confined by contract (see the .mli): one handler domain
   owns each framer, so the mutable state below needs no lock. *)
type t = {
  max_line : int;
  acc : Buffer.t;  (** the current incomplete line *)
  pending : frame Queue.t;  (** complete frames not yet taken *)
  mutable discarded : int;  (* lint:ignore — connection-confined, see .mli *)
  mutable discarding : bool;
  mutable closed : bool;
}

let default_max_line_bytes = 1 lsl 20

let create ?(max_line_bytes = default_max_line_bytes) () =
  if max_line_bytes <= 0 then
    invalid_arg "Frame.create: max_line_bytes must be positive";
  {
    max_line = max_line_bytes;
    acc = Buffer.create 256;
    pending = Queue.create ();
    discarded = 0;
    discarding = false;
    closed = false;
  }

let is_closed t = t.closed

let buffered_bytes t = Buffer.length t.acc

(* Emit the buffered line, stripping one trailing CR so CRLF and LF
   streams frame identically. *)
let emit_line t =
  let n = Buffer.length t.acc in
  let line =
    if n > 0 && Buffer.nth t.acc (n - 1) = '\r' then Buffer.sub t.acc 0 (n - 1)
    else Buffer.contents t.acc
  in
  Buffer.clear t.acc;
  Queue.push (Line line) t.pending

let emit_too_long t =
  (* A CRLF terminator leaves the CR counted in [discarded]; length
     reporting for a discarded line need not split that hair. *)
  Queue.push (Too_long t.discarded) t.pending;
  t.discarded <- 0;
  t.discarding <- false

let feed t buf pos len =
  if t.closed then invalid_arg "Frame.feed: framer is closed";
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Frame.feed: range out of bounds";
  for i = pos to pos + len - 1 do
    let c = Bytes.get buf i in
    if t.discarding then
      if c = '\n' then emit_too_long t else t.discarded <- t.discarded + 1
    else if c = '\n' then emit_line t
    else begin
      Buffer.add_char t.acc c;
      if Buffer.length t.acc > t.max_line then begin
        t.discarded <- Buffer.length t.acc;
        t.discarding <- true;
        Buffer.clear t.acc
      end
    end
  done

let close t =
  if not t.closed then begin
    t.closed <- true;
    if t.discarding then emit_too_long t
    else if Buffer.length t.acc > 0 then emit_line t
  end

let next t = Queue.take_opt t.pending
