type config = {
  host : string;
  port : int;
  backlog : int;
  max_conns : int;
  max_inflight : int;
  drain_timeout_ms : float;
  max_line_bytes : int;
  poll_interval_ms : float;
  idle_timeout_ms : float;
  write_timeout_ms : float;
  quota : Quota.config option;
  quota_per_conn : bool;
  breaker : Breaker.config option;
  brownout_degrade : bool;
  chaos : Chaos.plan;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    backlog = 64;
    max_conns = 32;
    max_inflight = 8;
    drain_timeout_ms = 5_000.;
    max_line_bytes = Frame.default_max_line_bytes;
    poll_interval_ms = 50.;
    idle_timeout_ms = 60_000.;
    write_timeout_ms = 10_000.;
    quota = None;
    quota_per_conn = false;
    breaker = None;
    brownout_degrade = true;
    chaos = Chaos.none;
  }

type stats = {
  conns_accepted : int;
  conns_rejected : int;
  conns_active : int;
  frames : int;
  requests : int;
  admitted : int;
  shed_inflight : int;
  shed_draining : int;
  shed_quota : int;
  shed_brownout : int;
  brownout_cached : int;
  brownout_degraded : int;
  idle_closed : int;
  malformed : int;
  completed : int;
  write_errors : int;
  lost : int;
}

type instruments = {
  i_conns_accepted : Obs.Metrics.counter;
  i_conns_rejected : Obs.Metrics.counter;
  i_conns_active : Obs.Metrics.gauge;
  i_frames : Obs.Metrics.counter;
  i_requests : Obs.Metrics.counter;
  i_shed_inflight : Obs.Metrics.counter;
  i_shed_draining : Obs.Metrics.counter;
  i_shed_quota : Obs.Metrics.counter;
  i_shed_brownout : Obs.Metrics.counter;
  i_brownout_cached : Obs.Metrics.counter;
  i_brownout_degraded : Obs.Metrics.counter;
  i_idle_closed : Obs.Metrics.counter;
  i_malformed : Obs.Metrics.counter;
  i_completed : Obs.Metrics.counter;
  i_write_errors : Obs.Metrics.counter;
  i_request_ms : Obs.Metrics.histogram;
}

let instruments im =
  let shed reason =
    Obs.Metrics.counter im
      ~labels:[ ("reason", reason) ]
      ~help:"requests shed with Overload" "locmap_net_shed_total"
  in
  {
    i_conns_accepted =
      Obs.Metrics.counter im ~help:"connections accepted"
        "locmap_net_conns_accepted_total";
    i_conns_rejected =
      Obs.Metrics.counter im
        ~help:"connections refused over the connection cap"
        "locmap_net_conns_rejected_total";
    i_conns_active =
      Obs.Metrics.gauge im ~help:"connections currently open"
        "locmap_net_conns_active";
    i_frames =
      Obs.Metrics.counter im
        ~help:"complete line frames received (blank/comment included)"
        "locmap_net_frames_total";
    i_requests =
      Obs.Metrics.counter im ~help:"lines processed (parsed or malformed)"
        "locmap_net_requests_total";
    i_shed_inflight = shed "inflight";
    i_shed_draining = shed "draining";
    i_shed_quota = shed "quota";
    i_shed_brownout = shed "brownout";
    i_brownout_cached =
      Obs.Metrics.counter im
        ~help:"brownout requests answered from the solution cache"
        "locmap_net_brownout_cached_total";
    i_brownout_degraded =
      Obs.Metrics.counter im
        ~help:"brownout requests answered with the fallback mapping"
        "locmap_net_brownout_degraded_total";
    i_idle_closed =
      Obs.Metrics.counter im
        ~help:"connections closed by the idle/read deadline (slowloris)"
        "locmap_net_idle_closed_total";
    i_malformed =
      Obs.Metrics.counter im
        ~help:"lines answered with a per-line parse-error fault"
        "locmap_net_malformed_total";
    i_completed =
      Obs.Metrics.counter im
        ~help:"admitted requests answered (response write attempted)"
        "locmap_net_completed_total";
    i_write_errors =
      Obs.Metrics.counter im
        ~help:"response writes a closed/stalled peer never read"
        "locmap_net_write_errors_total";
    i_request_ms =
      Obs.Metrics.histogram im
        ~help:"admission-to-response latency of admitted requests (ms)"
        "locmap_net_request_ms";
  }

type conn = { fd : Unix.file_descr; dom : unit Domain.t }

type t = {
  cfg : config;
  api : Service.Api.t;
  lfd : Unix.file_descr;
  bound_port : int;
  admission : Admission.t;
  quota : Quota.t option;
  breaker : Breaker.t option;
  stop : bool Atomic.t;
  lock : Mutex.t;  (** guards [conns], [dead], [next_conn_id] *)
  drain_lock : Mutex.t;  (** guards [final] and [draining] *)
  drain_cv : Condition.t;  (** signals [final] becoming [Some _] *)
  conns : (int, conn) Hashtbl.t;
  dead : int Queue.t;
  mutable next_conn_id : int;
  mutable acceptor : unit Domain.t option;
  mutable draining : bool;
  mutable final : stats option;
  c_conns_accepted : int Atomic.t;
  c_conns_rejected : int Atomic.t;
  c_active : int Atomic.t;
  c_frames : int Atomic.t;
  c_requests : int Atomic.t;
  c_shed_inflight : int Atomic.t;
  c_shed_draining : int Atomic.t;
  c_shed_quota : int Atomic.t;
  c_shed_brownout : int Atomic.t;
  c_brownout_cached : int Atomic.t;
  c_brownout_degraded : int Atomic.t;
  c_idle_closed : int Atomic.t;
  c_malformed : int Atomic.t;
  c_completed : int Atomic.t;
  c_write_errors : int Atomic.t;
  obs : instruments option;
  tracer : Obs.Trace.t option;
}

let port t = t.bound_port
let stopping t = Atomic.get t.stop
let request_stop t = Atomic.set t.stop true

(* Bump a plain stats cell and, when instrumented, its obs twin. *)
let tick t cell inst =
  Atomic.incr cell;
  match t.obs with Some i -> Obs.Metrics.incr (inst i) | None -> ()

let stats t =
  let admitted = Admission.admitted_total t.admission in
  let completed = Atomic.get t.c_completed in
  {
    conns_accepted = Atomic.get t.c_conns_accepted;
    conns_rejected = Atomic.get t.c_conns_rejected;
    conns_active = Atomic.get t.c_active;
    frames = Atomic.get t.c_frames;
    requests = Atomic.get t.c_requests;
    admitted;
    shed_inflight = Atomic.get t.c_shed_inflight;
    shed_draining = Atomic.get t.c_shed_draining;
    shed_quota = Atomic.get t.c_shed_quota;
    shed_brownout = Atomic.get t.c_shed_brownout;
    brownout_cached = Atomic.get t.c_brownout_cached;
    brownout_degraded = Atomic.get t.c_brownout_degraded;
    idle_closed = Atomic.get t.c_idle_closed;
    malformed = Atomic.get t.c_malformed;
    completed;
    write_errors = Atomic.get t.c_write_errors;
    lost = admitted - completed - Admission.in_flight t.admission;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>connections: %d accepted, %d rejected, %d active, %d idle-closed@ \
     requests: %d (%d frames), %d admitted, %d completed, %d lost@ shed: %d \
     over capacity, %d draining, %d quota, %d brownout; %d malformed, %d \
     write errors@ brownout served: %d cached, %d degraded@]"
    s.conns_accepted s.conns_rejected s.conns_active s.idle_closed s.requests
    s.frames s.admitted s.completed s.lost s.shed_inflight s.shed_draining
    s.shed_quota s.shed_brownout s.malformed s.write_errors s.brownout_cached
    s.brownout_degraded

let breaker_state t =
  match t.breaker with None -> None | Some b -> Some (Breaker.state b)

let health_json t =
  let s = stats t in
  let open Service.Json in
  let breaker =
    match t.breaker with
    | None -> String "off"
    | Some b ->
        Obj
          [
            ("state", String (Breaker.state_name (Breaker.state b)));
            ("trips", Int (Breaker.trips_total b));
          ]
  in
  let quota =
    match t.quota with
    | None -> String "off"
    | Some q ->
        Obj
          [
            ("clients", Int (Quota.clients q));
            ("denied", Int (Quota.denied_total q));
            ("evictions", Int (Quota.evictions_total q));
          ]
  in
  to_string
    (Obj
       [
         ( "health",
           Obj
             [
               ("draining", Bool (Atomic.get t.stop));
               ( "conns",
                 Obj
                   [
                     ("active", Int s.conns_active);
                     ("accepted", Int s.conns_accepted);
                     ("rejected", Int s.conns_rejected);
                     ("idle_closed", Int s.idle_closed);
                     ("limit", Int t.cfg.max_conns);
                   ] );
               ( "admission",
                 Obj
                   [
                     ("in_flight", Int (Admission.in_flight t.admission));
                     ("limit", Int (Admission.limit t.admission));
                     ("admitted", Int s.admitted);
                   ] );
               ("breaker", breaker);
               ("quota", quota);
               ( "shed",
                 Obj
                   [
                     ("inflight", Int s.shed_inflight);
                     ("draining", Int s.shed_draining);
                     ("quota", Int s.shed_quota);
                     ("brownout", Int s.shed_brownout);
                   ] );
               ("completed", Int s.completed);
             ] );
       ])

(* ------------------------------------------------------------------ *)
(* Socket plumbing.                                                    *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let overload_response ~id ~scope ~limit =
  Service.Response.error ~id ~hash:""
    (Service.Fault.Overload { scope; limit })

(* Best-effort single write on a (nonblocking) socket the server is
   about to close anyway — the connection-cap reject line. A peer that
   vanished mid-reject is not our problem. *)
let write_best_effort fd s =
  let b = Bytes.unsafe_of_string s in
  match Unix.write fd b 0 (Bytes.length b) with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Connection handler: one domain, one socket, strictly serial.        *)

exception Write_timed_out

let handle t ~conn_id ~peer fd =
  let cfg = t.cfg in
  let conn_span =
    match t.tracer with
    | Some tr when Obs.Trace.is_enabled tr ->
        Some
          ( tr,
            Obs.Trace.root tr ~trace_id:(Printf.sprintf "conn-%d" conn_id)
              "conn" )
    | _ -> None
  in
  let chaos =
    if Chaos.is_none cfg.chaos then None
    else Some (Chaos.wrap cfg.chaos ~conn:conn_id)
  in
  let chaos_read fd buf pos len =
    match chaos with
    | Some c -> Chaos.read c fd buf pos len
    | None -> Unix.read fd buf pos len
  in
  let chaos_write fd buf pos len =
    match chaos with
    | Some c -> Chaos.write c fd buf pos len
    | None -> Unix.write fd buf pos len
  in
  let reader = Frame.create ~max_line_bytes:cfg.max_line_bytes () in
  let buf = Bytes.create 16384 in
  let raw_line = ref 0 in
  let next_id = ref 0 in
  let last_frame_ns = ref (Obs.Clock.now_ns ()) in
  (* [alive] goes false when the peer is gone (write failed or timed
     out), the idle deadline reclaimed the connection, or the fd was
     force-closed under us during drain; either way the handler winds
     down without touching the socket again. *)
  let alive = ref true in
  (* The fd is nonblocking (set at accept) so a peer that stops
     reading cannot wedge the handler: the write loop waits for
     writability in poll-sized slices and gives up at the write
     deadline. *)
  let write_all s =
    let b = Bytes.unsafe_of_string s in
    let n = Bytes.length b in
    let deadline =
      if cfg.write_timeout_ms > 0. then
        Some
          (Int64.add (Obs.Clock.now_ns ())
             (Int64.of_float (cfg.write_timeout_ms *. 1_000_000.)))
      else None
    in
    let rec go off =
      if off < n then begin
        (match deadline with
        | Some d when Obs.Clock.now_ns () > d -> raise Write_timed_out
        | _ -> ());
        match chaos_write fd b off (n - off) with
        | w -> go (off + w)
        | exception Unix.Unix_error (EINTR, _, _) -> go off
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
            (match
               Unix.select [] [ fd ] [] (cfg.poll_interval_ms /. 1000.)
             with
            | exception Unix.Unix_error (EINTR, _, _) -> ()
            | _ -> ());
            go off
      end
    in
    go 0
  in
  let respond_line line =
    match write_all (line ^ "\n") with
    | () -> ()
    | exception (Unix.Unix_error (_, _, _) | Write_timed_out) ->
        tick t t.c_write_errors (fun i -> i.i_write_errors);
        alive := false
  in
  let respond resp = respond_line (Service.Response.to_string resp) in
  (* One processed line: parse, admit (or shed), compute, answer. The
     response id numbers processed lines per connection and the
     per-line fault message carries the raw (blank/comment-counting)
     line ordinal — both exactly as `locmap batch` assigns them, which
     is what makes socket and batch output byte-comparable. Control
     lines ([!health]) are a serve-only extension: answered in place,
     never numbered, never counted as requests. *)
  let process line =
    incr raw_line;
    last_frame_ns := Obs.Clock.now_ns ();
    tick t t.c_frames (fun i -> i.i_frames);
    let s = String.trim line in
    if s = "" || s.[0] = '#' then ()
    else if s.[0] = '!' then begin
      if s = "!health" then respond_line (health_json t)
      else
        respond
          (Service.Response.error ~id:(-1) ~hash:""
             (Service.Fault.Invalid_request
                (Printf.sprintf "unknown control line %S" s)))
    end
    else begin
      let id = !next_id in
      incr next_id;
      tick t t.c_requests (fun i -> i.i_requests);
      let body () =
        match Service.Request.of_string line with
        | Error e ->
            tick t t.c_malformed (fun i -> i.i_malformed);
            respond
              (Service.Response.error ~id ~hash:""
                 (Service.Fault.Invalid_request
                    (Printf.sprintf "line %d: %s" !raw_line e)))
        | Ok req ->
            if Atomic.get t.stop then begin
              tick t t.c_shed_draining (fun i -> i.i_shed_draining);
              respond
                (overload_response ~id ~scope:"draining"
                   ~limit:cfg.max_inflight)
            end
            else if
              match t.quota with
              | Some q -> not (Quota.try_take q peer)
              | None -> false
            then begin
              (* Greedy client: shed before it can touch the shared
                 admission budget. Not fed to the breaker — one
                 client over its quota is not server overload. *)
              tick t t.c_shed_quota (fun i -> i.i_shed_quota);
              let limit =
                match cfg.quota with
                | Some q -> int_of_float q.Quota.burst
                | None -> 0
              in
              respond (overload_response ~id ~scope:"quota" ~limit)
            end
            else if
              match t.breaker with
              | Some b -> not (Breaker.allow b)
              | None -> false
            then begin
              (* Brownout: no fresh compute. Serve what is cheap — the
                 cache, then the fallback mapping — and shed the rest
                 with a retryable fault. None of these outcomes feed
                 the breaker; only probes and fresh compute do. *)
              let hash = Service.Request.hash req in
              match
                Service.Solution_cache.find
                  (Service.Api.cache t.api)
                  hash
              with
              | Some p ->
                  tick t t.c_brownout_cached (fun i -> i.i_brownout_cached);
                  respond { Service.Response.id; hash; result = Ok p }
              | None -> (
                  let fault =
                    Service.Fault.Overload
                      { scope = "brownout"; limit = cfg.max_inflight }
                  in
                  let fallback =
                    if cfg.brownout_degrade then
                      Service.Api.fallback_response t.api ~id ~fault req
                    else None
                  in
                  match fallback with
                  | Some resp ->
                      tick t t.c_brownout_degraded (fun i ->
                          i.i_brownout_degraded);
                      respond resp
                  | None ->
                      tick t t.c_shed_brownout (fun i -> i.i_shed_brownout);
                      respond
                        (overload_response ~id ~scope:"brownout"
                           ~limit:cfg.max_inflight))
            end
            else if not (Admission.try_acquire t.admission) then begin
              tick t t.c_shed_inflight (fun i -> i.i_shed_inflight);
              (match t.breaker with
              | Some b -> Breaker.record b ~ok:false
              | None -> ());
              respond
                (overload_response ~id ~scope:"inflight"
                   ~limit:cfg.max_inflight)
            end
            else begin
              (* Admitted: this request now always runs to completion
                 — drain waits for it — and the slot is released even
                 if the pipeline faults (the response then carries the
                 fault; the server never re-raises). *)
              let compute () =
                Fun.protect
                  ~finally:(fun () -> Admission.release t.admission)
                  (fun () -> Service.Api.submit t.api req)
              in
              let r =
                match t.obs with
                | Some i -> Obs.Metrics.time i.i_request_ms compute
                | None -> compute ()
              in
              tick t t.c_completed (fun i -> i.i_completed);
              (match t.breaker with
              | Some b ->
                  Breaker.record b
                    ~ok:
                      (Service.Response.is_ok r
                      && not (Service.Response.is_degraded r))
              | None -> ());
              respond { r with Service.Response.id }
            end
      in
      match conn_span with
      | Some (tr, parent) ->
          Obs.Trace.with_span tr ~parent "frame" (fun _ -> body ())
      | None -> body ()
    end
  in
  let process_too_long n =
    incr raw_line;
    last_frame_ns := Obs.Clock.now_ns ();
    tick t t.c_frames (fun i -> i.i_frames);
    let id = !next_id in
    incr next_id;
    tick t t.c_requests (fun i -> i.i_requests);
    tick t t.c_malformed (fun i -> i.i_malformed);
    respond
      (Service.Response.error ~id ~hash:""
         (Service.Fault.Invalid_request
            (Printf.sprintf "line %d: line of %d bytes exceeds the %d-byte limit"
               !raw_line n cfg.max_line_bytes)))
  in
  (* The slowloris defense: a connection that completes no frame
     within the idle deadline — whether silent or trickling one byte
     at a time — is answered with a retryable Overload (scope "idle")
     and closed, reclaiming its handler domain. *)
  let idle_expired () =
    cfg.idle_timeout_ms > 0.
    && Obs.Clock.ns_to_ms (Int64.sub (Obs.Clock.now_ns ()) !last_frame_ns)
       > cfg.idle_timeout_ms
  in
  let rec pump () =
    if !alive then
      match Frame.next reader with
      | Some (Frame.Line l) ->
          process l;
          pump ()
      | Some (Frame.Too_long n) ->
          process_too_long n;
          pump ()
      | None ->
          if Frame.is_closed reader then ()
          else if Atomic.get t.stop then ()
            (* Draining: already-buffered frames were answered above;
               stop reading new bytes and close. *)
          else if idle_expired () then begin
            tick t t.c_idle_closed (fun i -> i.i_idle_closed);
            respond
              (overload_response ~id:(-1) ~scope:"idle"
                 ~limit:(int_of_float cfg.idle_timeout_ms));
            alive := false
          end
          else begin
            (match Unix.select [ fd ] [] [] (cfg.poll_interval_ms /. 1000.) with
            | exception Unix.Unix_error (EINTR, _, _) -> ()
            | exception Unix.Unix_error (EBADF, _, _) -> alive := false
            | [], _, _ -> ()
            | _ -> (
                match chaos_read fd buf 0 (Bytes.length buf) with
                | 0 -> Frame.close reader
                | n -> Frame.feed reader buf 0 n
                | exception Unix.Unix_error (EINTR, _, _) -> ()
                | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
                    ()
                | exception Unix.Unix_error (_, _, _) -> Frame.close reader));
            pump ()
          end
  in
  Fun.protect
    ~finally:(fun () ->
      (match conn_span with
      | Some (tr, sp) -> Obs.Trace.finish tr sp
      | None -> ());
      close_quietly fd;
      Atomic.decr t.c_active;
      (match t.obs with
      | Some i -> Obs.Metrics.add_gauge i.i_conns_active (-1)
      | None -> ());
      Mutex.protect t.lock (fun () -> Queue.push conn_id t.dead))
    (fun () ->
      (* A handler must never take the server down; unexpected
         exceptions (a pathological socket error mid-write) drop only
         this connection. *)
      try pump () with _ -> ())

(* ------------------------------------------------------------------ *)
(* Acceptor domain.                                                    *)

(* Join handler domains that announced completion. Runs on the
   acceptor between accepts (bounding the domain backlog) and during
   drain. *)
let reap t =
  let finished =
    Mutex.protect t.lock (fun () ->
        let ds = ref [] in
        while not (Queue.is_empty t.dead) do
          let id = Queue.pop t.dead in
          match Hashtbl.find_opt t.conns id with
          | Some c ->
              Hashtbl.remove t.conns id;
              ds := c.dom :: !ds
          | None -> ()
        done;
        !ds)
  in
  List.iter Domain.join finished

let peer_key t sockaddr =
  match sockaddr with
  | Unix.ADDR_INET (a, p) ->
      if t.cfg.quota_per_conn then
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
      else Unix.string_of_inet_addr a
  | Unix.ADDR_UNIX s -> s

let acceptor_loop t () =
  let rec loop () =
    reap t;
    if not (Atomic.get t.stop) then begin
      (match Unix.select [ t.lfd ] [] [] (t.cfg.poll_interval_ms /. 1000.) with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept ~cloexec:true t.lfd with
          | exception
              Unix.Unix_error
                ((EAGAIN | EWOULDBLOCK | ECONNABORTED | EINTR), _, _) ->
              ()
          | fd, sockaddr ->
              (try Unix.setsockopt fd Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ());
              (* Nonblocking from birth: the handler's read loop
                 already selects first, and the write loop needs
                 EAGAIN to enforce the write deadline against a peer
                 that stops reading. *)
              (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
              if Atomic.get t.c_active >= t.cfg.max_conns then begin
                (* Connection-level shed: one Overload line, close. *)
                tick t t.c_conns_rejected (fun i -> i.i_conns_rejected);
                write_best_effort fd
                  (Service.Response.to_string
                     (overload_response ~id:0 ~scope:"connections"
                        ~limit:t.cfg.max_conns)
                  ^ "\n");
                close_quietly fd
              end
              else begin
                tick t t.c_conns_accepted (fun i -> i.i_conns_accepted);
                Atomic.incr t.c_active;
                (match t.obs with
                | Some i -> Obs.Metrics.add_gauge i.i_conns_active 1
                | None -> ());
                (* Spawn and register under one lock so the handler's
                   completion notice (also under [t.lock]) can never
                   precede registration. *)
                let peer = peer_key t sockaddr in
                Mutex.protect t.lock (fun () ->
                    let id = t.next_conn_id in
                    t.next_conn_id <- id + 1;
                    let dom =
                      Domain.spawn (fun () -> handle t ~conn_id:id ~peer fd)
                    in
                    Hashtbl.replace t.conns id { fd; dom })
              end));
      loop ()
    end
  in
  loop ();
  (* Stop accepting the instant drain begins: new connects get
     ECONNREFUSED rather than a silently idle socket. *)
  close_quietly t.lfd

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                          *)

let create ?(config = default_config) ?metrics ?tracer ~api () =
  if config.max_conns < 1 then
    invalid_arg "Server.create: max_conns must be positive";
  if config.poll_interval_ms <= 0. then
    invalid_arg "Server.create: poll_interval_ms must be positive";
  if config.idle_timeout_ms < 0. then
    invalid_arg "Server.create: idle_timeout_ms must be >= 0";
  if config.write_timeout_ms < 0. then
    invalid_arg "Server.create: write_timeout_ms must be >= 0";
  (* A dead peer must surface as a write error, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let lfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let bound_port =
    try
      Unix.setsockopt lfd Unix.SO_REUSEADDR true;
      Unix.bind lfd
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      Unix.listen lfd config.backlog;
      match Unix.getsockname lfd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false
    with e ->
      close_quietly lfd;
      raise e
  in
  let t =
    {
      cfg = config;
      api;
      lfd;
      bound_port;
      admission = Admission.create ?metrics ~limit:config.max_inflight ();
      quota = Option.map (fun q -> Quota.create ?metrics q) config.quota;
      breaker = Option.map (fun b -> Breaker.create ?metrics b) config.breaker;
      stop = Atomic.make false;
      lock = Mutex.create ();
      drain_lock = Mutex.create ();
      drain_cv = Condition.create ();
      conns = Hashtbl.create 32;
      dead = Queue.create ();
      next_conn_id = 0;
      acceptor = None;
      draining = false;
      final = None;
      c_conns_accepted = Atomic.make 0;
      c_conns_rejected = Atomic.make 0;
      c_active = Atomic.make 0;
      c_frames = Atomic.make 0;
      c_requests = Atomic.make 0;
      c_shed_inflight = Atomic.make 0;
      c_shed_draining = Atomic.make 0;
      c_shed_quota = Atomic.make 0;
      c_shed_brownout = Atomic.make 0;
      c_brownout_cached = Atomic.make 0;
      c_brownout_degraded = Atomic.make 0;
      c_idle_closed = Atomic.make 0;
      c_malformed = Atomic.make 0;
      c_completed = Atomic.make 0;
      c_write_errors = Atomic.make 0;
      obs = Option.map instruments metrics;
      tracer;
    }
  in
  t.acceptor <- Some (Domain.spawn (acceptor_loop t));
  t

let live_conns t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])

let drain t =
  request_stop t;
  (* Elect a single draining domain without holding [drain_lock]
     across the blocking work (Domain.join / reap / sleeps): the
     winner flips [draining] and releases the lock before joining
     anything; latecomers wait on [drain_cv], which releases
     [drain_lock] while they sleep. *)
  let role =
    Mutex.protect t.drain_lock (fun () ->
        match t.final with
        | Some s -> `Done s
        | None ->
            if t.draining then begin
              while t.final = None do
                Condition.wait t.drain_cv t.drain_lock
              done;
              `Done (Option.get t.final)
            end
            else begin
              t.draining <- true;
              `Winner
            end)
  in
  match role with
  | `Done s -> s
  | `Winner ->
      (* Only the winner reaches this point, so [acceptor] and the
         wind-down below need no lock. *)
      (match t.acceptor with
      | Some d ->
          Domain.join d;
          t.acceptor <- None
      | None -> ());
      let t0 = Obs.Clock.now_ns () in
      let budget_ns = Int64.of_float (t.cfg.drain_timeout_ms *. 1_000_000.) in
      let forced = ref false in
      let rec wait () =
        reap t;
        match live_conns t with
        | [] -> ()
        | remaining ->
            if
              (not !forced)
              && Int64.sub (Obs.Clock.now_ns ()) t0 > budget_ns
            then begin
              (* Patience exhausted: shut the remaining sockets so
                 idle handlers see EOF and wind down. A handler
                 inside Api.submit is unaffected — its request
                 still completes (the zero-loss guarantee); only
                 the read side is cut short. *)
              forced := true;
              List.iter
                (fun c ->
                  try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
                  with Unix.Unix_error _ -> ())
                remaining
            end
            else Unix.sleepf (t.cfg.poll_interval_ms /. 1000.);
            wait ()
      in
      wait ();
      let s = stats t in
      Mutex.protect t.drain_lock (fun () ->
          t.final <- Some s;
          Condition.broadcast t.drain_cv);
      s

let run t =
  while not (Atomic.get t.stop) do
    try Unix.sleepf (t.cfg.poll_interval_ms /. 1000.)
    with Unix.Unix_error (EINTR, _, _) -> ()
  done;
  drain t
