(** Admission control: a bounded in-flight budget with fast rejection.

    The server admits at most [limit] requests into computation at
    once. A connection handler {!try_acquire}s a slot before
    submitting a request to the pool and {!release}s it once the
    response is written; when no slot is free the handler does {e not}
    wait — it answers immediately with a retryable [Fault.Overload]
    (load shedding), which costs microseconds instead of a pipeline
    run and tells well-behaved clients to back off.

    Backpressure and shedding compose: each connection is handled
    serially (one frame at a time, so an unread socket buffer pushes
    back on the client via TCP), and this budget bounds the {e cross-
    connection} concurrency that reaches the {!Par.Pool} — the queue
    feeding the pool can never hold more than [limit] jobs, so
    accepted-request latency stays bounded no matter the offered
    load.

    {b Thread safety}: fully thread-safe and lock-free — the slot
    count is a single atomic updated by CAS, so any number of
    connection-handler domains may acquire and release concurrently.
    Counters are exact. *)

type t

val create : ?metrics:Obs.Metrics.t -> limit:int -> unit -> t
(** Raises [Invalid_argument] on a non-positive [limit]
    (construction-time caller contract). [metrics] registers
    [locmap_net_inflight] (gauge: admitted, not yet released) and
    [locmap_net_admitted_total] (counter). *)

val limit : t -> int

val try_acquire : t -> bool
(** [true]: a slot was taken and must be {!release}d exactly once.
    [false]: the budget is full; nothing to release. Never blocks. *)

val release : t -> unit
(** Raises [Invalid_argument] if called with no slot held (release
    without acquire — a caller bug worth failing loudly on). *)

val in_flight : t -> int
(** Slots currently held (between 0 and [limit]). *)

val admitted_total : t -> int
(** Successful {!try_acquire}s since creation. *)
