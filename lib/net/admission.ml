type instruments = {
  inflight_gauge : Obs.Metrics.gauge;
  admitted : Obs.Metrics.counter;
}

type t = {
  limit : int;
  inflight : int Atomic.t;
  admitted_total : int Atomic.t;
  obs : instruments option;
}

let create ?metrics ~limit () =
  if limit <= 0 then invalid_arg "Admission.create: limit must be positive";
  let obs =
    match metrics with
    | None -> None
    | Some im ->
        Some
          {
            inflight_gauge =
              Obs.Metrics.gauge im ~help:"requests admitted, not yet answered"
                "locmap_net_inflight";
            admitted =
              Obs.Metrics.counter im
                ~help:"requests admitted into computation"
                "locmap_net_admitted_total";
          }
  in
  { limit; inflight = Atomic.make 0; admitted_total = Atomic.make 0; obs }

let limit t = t.limit

let rec try_acquire t =
  let cur = Atomic.get t.inflight in
  if cur >= t.limit then false
  else if Atomic.compare_and_set t.inflight cur (cur + 1) then begin
    Atomic.incr t.admitted_total;
    (match t.obs with
    | Some i ->
        Obs.Metrics.add_gauge i.inflight_gauge 1;
        Obs.Metrics.incr i.admitted
    | None -> ());
    true
  end
  else try_acquire t

let rec release t =
  let cur = Atomic.get t.inflight in
  if cur <= 0 then invalid_arg "Admission.release: no slot held"
  else if Atomic.compare_and_set t.inflight cur (cur - 1) then
    match t.obs with
    | Some i -> Obs.Metrics.add_gauge i.inflight_gauge (-1)
    | None -> ()
  else release t

let in_flight t = Atomic.get t.inflight
let admitted_total t = Atomic.get t.admitted_total
