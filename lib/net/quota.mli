(** Per-client request quotas: a token bucket per peer address.

    The admission budget ([Admission]) bounds {e total} concurrency,
    but it is first-come-first-served — one greedy client pipelining
    requests over many connections can monopolise every slot and
    starve everyone else. A quota puts a per-client rate in front of
    admission: each client (keyed by peer address) owns a token bucket
    of [burst] tokens refilled at [rate] tokens/second; a request that
    finds the bucket empty is shed immediately with a retryable
    [Fault.Overload] (scope ["quota"]) {e before} it can touch the
    shared admission budget.

    The client table is bounded ([max_clients]): admitting a new
    client past the bound evicts the longest-idle one (its bucket
    restarts full if it returns — a brief amnesty, which errs on the
    side of serving). Evictions are counted; a production deployment
    alerts on them (a full table plus churn means the keying is too
    fine or an attack is underway).

    The clock is injectable ([?now]) so refill behaviour is exactly
    testable; the default is the shared monotonic [Obs.Clock].

    {b Thread safety}: fully thread-safe — the table and buckets sit
    behind one internal mutex (handlers take it once per request;
    the critical section is a hash lookup and a few float ops), and
    the counters are atomics readable without the lock. *)

type config = {
  rate : float;  (** sustained tokens (requests) per second, > 0 *)
  burst : float;  (** bucket capacity — the tolerated burst, >= 1 *)
  max_clients : int;  (** bound on tracked clients, >= 1 *)
}

val default_config : config
(** 50 req/s sustained, burst 25, 1024 tracked clients. *)

type t

val create : ?metrics:Obs.Metrics.t -> ?now:(unit -> int64) -> config -> t
(** Raises [Invalid_argument] on a non-positive [rate], a [burst]
    below 1, or a non-positive [max_clients]. [metrics] registers
    [locmap_net_quota_denied_total], [locmap_net_quota_evictions_total]
    (counters) and [locmap_net_quota_clients] (gauge). [now] supplies
    monotonic nanoseconds (tests inject a fake clock). *)

val try_take : t -> string -> bool
(** [try_take t client] spends one token from [client]'s bucket:
    [true] = proceed, [false] = over quota (shed). A first-seen client
    starts with a full bucket. *)

val clients : t -> int
(** Clients currently tracked (<= [max_clients]). *)

val denied_total : t -> int

val evictions_total : t -> int
