(** Incremental JSON-lines framing for socket connections.

    The wire format of the serving stack is JSON lines; a socket
    delivers it as arbitrary byte chunks. A {!t} turns that chunk
    stream back into line frames without ever requiring a complete
    line per read: {!feed} appends whatever [Unix.read] produced
    (partial lines, several lines, a line split across chunks, a CRLF
    split across chunks) and {!next} yields the complete frames
    accumulated so far.

    Robustness contract (per-line, never per-connection):

    - {b Partial reads}: bytes are buffered until a terminator
      arrives; feeding one byte at a time yields exactly the same
      frames as feeding the whole stream at once.
    - {b Terminators}: LF ends a line; a single trailing CR is
      stripped, so CRLF streams and LF streams frame identically. A
      final unterminated line is still a frame (delivered by
      {!close}), matching how [locmap batch] treats a file whose last
      line has no newline.
    - {b Oversized lines}: a line exceeding [max_line_bytes] becomes a
      {!Too_long} frame carrying its total length. The overflow is
      discarded as it streams through — memory stays bounded by
      [max_line_bytes] — and framing resynchronises at the next
      terminator, so one hostile line never kills the connection.

    The framer never looks inside a line: malformed JSON is the
    caller's per-line problem ({!Server} answers it with a
    [Fault.Invalid_request] response and keeps the connection).

    {b Thread safety}: a framer is {e connection-confined} mutable
    state — it must only be touched by the single connection-handler
    domain that created it (the contract {!Server} upholds). It is
    not thread-safe and needs no lock. *)

type t

type frame =
  | Line of string
      (** A complete line, terminator (LF or CRLF) stripped. May be
          empty ([""] for a blank line). *)
  | Too_long of int
      (** An oversized line, fully discarded; the payload is the
          number of bytes the line held before its terminator (or
          EOF). *)

val default_max_line_bytes : int
(** 1 MiB — generous for mapping requests (a few hundred bytes each)
    while bounding per-connection buffering. *)

val create : ?max_line_bytes:int -> unit -> t
(** A fresh framer. Raises [Invalid_argument] on a non-positive
    [max_line_bytes] (construction-time caller contract). *)

val feed : t -> bytes -> int -> int -> unit
(** [feed t buf pos len] appends [len] bytes of [buf] starting at
    [pos] — the exact shape of a [Unix.read] result. Raises
    [Invalid_argument] on an out-of-bounds range or after {!close}. *)

val close : t -> unit
(** Signals EOF: an unterminated trailing line (or oversized tail)
    becomes a final frame. Idempotent; {!feed} afterwards raises. *)

val is_closed : t -> bool

val next : t -> frame option
(** The next complete frame, in stream order; [None] when more bytes
    (or {!close}) are needed. After {!close}, [None] means the stream
    is fully drained. *)

val buffered_bytes : t -> int
(** Bytes of the current incomplete line held in the buffer (0 while
    discarding an oversized line) — for tests and introspection. *)
