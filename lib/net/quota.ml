type config = {
  rate : float;
  burst : float;
  max_clients : int;
}

let default_config = { rate = 50.; burst = 25.; max_clients = 1024 }

type bucket = {
  mutable tokens : float;  (* lint:ignore — guarded by [t.lock] *)
  mutable last_ns : int64;  (* lint:ignore — guarded by [t.lock] *)
}

type instruments = {
  i_denied : Obs.Metrics.counter;
  i_evictions : Obs.Metrics.counter;
  i_clients : Obs.Metrics.gauge;
}

type t = {
  cfg : config;
  now : unit -> int64;
  lock : Mutex.t;  (** guards [buckets] and every bucket's fields *)
  buckets : (string, bucket) Hashtbl.t;
  denied : int Atomic.t;
  evictions : int Atomic.t;
  obs : instruments option;
}

let create ?metrics ?(now = Obs.Clock.now_ns) cfg =
  if cfg.rate <= 0. then invalid_arg "Quota.create: rate must be positive";
  if cfg.burst < 1. then invalid_arg "Quota.create: burst must be >= 1";
  if cfg.max_clients < 1 then
    invalid_arg "Quota.create: max_clients must be positive";
  let obs =
    Option.map
      (fun im ->
        {
          i_denied =
            Obs.Metrics.counter im
              ~help:"requests shed by a per-client quota"
              "locmap_net_quota_denied_total";
          i_evictions =
            Obs.Metrics.counter im
              ~help:"idle clients evicted from the quota table"
              "locmap_net_quota_evictions_total";
          i_clients =
            Obs.Metrics.gauge im ~help:"clients tracked by the quota table"
              "locmap_net_quota_clients";
        })
      metrics
  in
  {
    cfg;
    now;
    lock = Mutex.create ();
    buckets = Hashtbl.create 64;
    denied = Atomic.make 0;
    evictions = Atomic.make 0;
    obs;
  }

(* Longest-idle eviction: linear scan over a table bounded by
   [max_clients] — the bound is the point, and the scan only runs when
   a *new* client arrives at a full table. *)
let evict_oldest t =
  let victim =
    Hashtbl.fold
      (fun k b acc ->
        match acc with
        | Some (_, oldest) when oldest <= b.last_ns -> acc
        | _ -> Some (k, b.last_ns))
      t.buckets None
  in
  match victim with
  | None -> ()
  | Some (k, _) ->
      Hashtbl.remove t.buckets k;
      Atomic.incr t.evictions;
      (match t.obs with
      | Some i -> Obs.Metrics.incr i.i_evictions
      | None -> ())

let try_take t client =
  let now = t.now () in
  let taken =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.buckets client with
        | Some b ->
            let dt_s =
              Int64.to_float (Int64.sub now b.last_ns) /. 1e9
            in
            let refilled =
              Float.min t.cfg.burst (b.tokens +. (dt_s *. t.cfg.rate))
            in
            b.last_ns <- now;
            if refilled >= 1. then begin
              b.tokens <- refilled -. 1.;
              true
            end
            else begin
              b.tokens <- refilled;
              false
            end
        | None ->
            if Hashtbl.length t.buckets >= t.cfg.max_clients then
              evict_oldest t;
            Hashtbl.replace t.buckets client
              { tokens = t.cfg.burst -. 1.; last_ns = now };
            (match t.obs with
            | Some i ->
                Obs.Metrics.set_gauge i.i_clients (Hashtbl.length t.buckets)
            | None -> ());
            true)
  in
  if not taken then begin
    Atomic.incr t.denied;
    match t.obs with Some i -> Obs.Metrics.incr i.i_denied | None -> ()
  end;
  taken

let clients t = Mutex.protect t.lock (fun () -> Hashtbl.length t.buckets)
let denied_total t = Atomic.get t.denied
let evictions_total t = Atomic.get t.evictions
