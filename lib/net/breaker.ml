type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type config = {
  window : int;
  min_events : int;
  trip_ratio : float;
  open_ms : float;
  probes : int;
}

let default_config =
  { window = 64; min_events = 16; trip_ratio = 0.5; open_ms = 1_000.;
    probes = 3 }

type instruments = {
  i_state : Obs.Metrics.gauge;
  i_trips : Obs.Metrics.counter;
}

type t = {
  cfg : config;
  now : unit -> int64;
  lock : Mutex.t;  (** guards every mutable field below *)
  ring : bool array;  (** [true] = bad outcome; a sliding window *)
  mutable next : int;  (* lint:ignore — guarded by [t.lock] *)
  mutable filled : int;  (* lint:ignore — guarded by [t.lock] *)
  mutable bad : int;  (* lint:ignore — guarded by [t.lock] *)
  mutable st : state;  (* lint:ignore — guarded by [t.lock] *)
  mutable opened_at : int64;  (* lint:ignore — guarded by [t.lock] *)
  mutable probes_out : int;  (* lint:ignore — guarded by [t.lock] *)
  mutable probes_ok : int;  (* lint:ignore — guarded by [t.lock] *)
  trips : int Atomic.t;
  obs : instruments option;
}

let gauge_of_state = function Closed -> 0 | Half_open -> 1 | Open -> 2

let create ?metrics ?(now = Obs.Clock.now_ns) cfg =
  if cfg.window < 1 then invalid_arg "Breaker.create: window must be >= 1";
  if cfg.min_events < 1 then
    invalid_arg "Breaker.create: min_events must be >= 1";
  if not (cfg.trip_ratio > 0. && cfg.trip_ratio <= 1.) then
    invalid_arg "Breaker.create: trip_ratio must be in (0, 1]";
  if cfg.open_ms <= 0. then
    invalid_arg "Breaker.create: open_ms must be positive";
  if cfg.probes < 1 then invalid_arg "Breaker.create: probes must be >= 1";
  let obs =
    Option.map
      (fun im ->
        {
          i_state =
            Obs.Metrics.gauge im
              ~help:"breaker state (0 closed, 1 half-open, 2 open)"
              "locmap_net_breaker_state";
          i_trips =
            Obs.Metrics.counter im ~help:"breaker trips into brownout"
              "locmap_net_breaker_trips_total";
        })
      metrics
  in
  {
    cfg;
    now;
    lock = Mutex.create ();
    ring = Array.make cfg.window false;
    next = 0;
    filled = 0;
    bad = 0;
    st = Closed;
    opened_at = 0L;
    probes_out = 0;
    probes_ok = 0;
    trips = Atomic.make 0;
    obs;
  }

(* All three helpers below run with [t.lock] held. *)

let set_state t st =
  t.st <- st;
  match t.obs with
  | Some i -> Obs.Metrics.set_gauge i.i_state (gauge_of_state st)
  | None -> ()

let clear_window t =
  Array.fill t.ring 0 (Array.length t.ring) false;
  t.next <- 0;
  t.filled <- 0;
  t.bad <- 0

let trip t =
  Atomic.incr t.trips;
  (match t.obs with Some i -> Obs.Metrics.incr i.i_trips | None -> ());
  t.opened_at <- t.now ();
  t.probes_out <- 0;
  t.probes_ok <- 0;
  clear_window t;
  set_state t Open

let allow t =
  Mutex.protect t.lock (fun () ->
      match t.st with
      | Closed -> true
      | Open ->
          let elapsed_ms =
            Obs.Clock.ns_to_ms (Int64.sub (t.now ()) t.opened_at)
          in
          if elapsed_ms >= t.cfg.open_ms then begin
            set_state t Half_open;
            t.probes_out <- 1;
            t.probes_ok <- 0;
            true
          end
          else false
      | Half_open ->
          if t.probes_out < t.cfg.probes then begin
            t.probes_out <- t.probes_out + 1;
            true
          end
          else false)

let record t ~ok =
  Mutex.protect t.lock (fun () ->
      match t.st with
      | Open -> () (* a straggler from before the trip *)
      | Half_open ->
          if ok then begin
            t.probes_ok <- t.probes_ok + 1;
            if t.probes_ok >= t.cfg.probes then begin
              clear_window t;
              set_state t Closed
            end
          end
          else trip t
      | Closed ->
          let slot = t.next in
          t.next <- (slot + 1) mod t.cfg.window;
          if t.filled = t.cfg.window then begin
            if t.ring.(slot) then t.bad <- t.bad - 1
          end
          else t.filled <- t.filled + 1;
          t.ring.(slot) <- not ok;
          if not ok then t.bad <- t.bad + 1;
          if
            t.filled >= t.cfg.min_events
            && float_of_int t.bad
               >= t.cfg.trip_ratio *. float_of_int t.filled
          then trip t)

let state t = Mutex.protect t.lock (fun () -> t.st)
let trips_total t = Atomic.get t.trips
