(** A long-running TCP front-end for {!Service.Api}: the gate between
    "batch tool" and "service under live traffic".

    Architecture (see DESIGN.md §10):

    {v
    clients ──TCP──► acceptor domain ──spawn──► handler domain (per conn)
                     (select + accept,          read → Frame → parse
                      conn cap, drain           → Admission.try_acquire
                      flag)                     → Api.submit (Par.Pool)
                                                → write response line
    v}

    One {e acceptor domain} owns the listening socket: it polls with a
    short select timeout (so a stop request is noticed within ~50 ms),
    accepts, enforces the connection cap ([max_conns] — over it, the
    client gets one [Fault.Overload] line and a close), and spawns one
    {e handler domain} per connection. Handlers speak the exact
    JSON-lines wire format of [locmap batch]: frames come from
    {!Frame} (partial reads, CRLF/LF, oversized lines), blank and
    [#]-comment lines are skipped, a malformed line is answered with a
    per-line [Invalid_request] response — never a dropped connection —
    and response [id]s number the processed lines per connection, so a
    client that pipelines a file over one connection gets byte-for-byte
    the lines [locmap batch] would have produced.

    {b Admission control}: before computing, a handler takes a slot
    from the shared {!Admission} budget ([max_inflight]). No slot →
    the request is {e shed}: an immediate, retryable [Fault.Overload]
    response (scope ["inflight"]) that costs microseconds. Because
    each connection is handled serially, TCP backpressure naturally
    throttles a client that outruns its own connection; the admission
    budget bounds what reaches the {!Par.Pool} across connections, so
    accepted-request latency stays bounded at any offered load
    (bench/loadgen_bench.exe demonstrates both effects).

    {b Graceful drain}: {!request_stop} (async-signal-safe — the
    [SIGTERM] handler of [locmap serve] calls exactly this) flips one
    atomic. The acceptor stops accepting and closes the listen socket;
    handlers finish the request they are computing, answer any frames
    already buffered with [Overload] (scope ["draining"]), stop
    reading, and close. {!drain} then joins everything, force-closing
    only connections idle past [drain_timeout_ms] (a request in flight
    is always allowed to finish — that is the zero-loss guarantee:
    after drain, [admitted = completed]). Metrics are left fully
    consistent for a final snapshot; nothing is dropped.

    {b Observability} ([?metrics]): [locmap_net_conns_accepted_total],
    [locmap_net_conns_rejected_total], [locmap_net_conns_active]
    (gauge), [locmap_net_frames_total],
    [locmap_net_requests_total], [locmap_net_shed_total{reason}]
    (["inflight"]/["draining"]), [locmap_net_malformed_total],
    [locmap_net_completed_total], [locmap_net_write_errors_total],
    the admission instruments of {!Admission}, and
    [locmap_net_request_ms] (admission-to-response latency histogram).
    [?tracer] opens one root span per connection (["conn"], trace id
    ["conn-<ordinal>"]) with one child ["frame"] span per processed
    line; the per-request/attempt/phase spans of {!Service.Api} hang
    off the request hash as usual.

    {b Edge hardening} (DESIGN.md §11). Sockets are nonblocking from
    accept, which enables three defenses:

    - {e Idle/read deadline} ([idle_timeout_ms]): a connection that
      completes no {e frame} within the deadline — silent or
      byte-trickling (slowloris) — is answered with one retryable
      [Fault.Overload] line (scope ["idle"], [id] -1) and closed,
      reclaiming its handler domain. The clock restarts on every
      complete frame, so a legitimate slow-but-working client is never
      cut off mid-conversation.
    - {e Write deadline} ([write_timeout_ms]): a peer that stops
      reading cannot wedge a handler mid-response; the write loop
      waits for writability in poll-sized slices and gives up at the
      deadline (counted as a write error, connection dropped).
    - {e Per-client quota} ([quota], {!Quota}): a token bucket per
      peer address, checked {e before} the shared admission budget, so
      one greedy client is shed (scope ["quota"]) without starving the
      rest. [quota_per_conn] keys by [ip:port] instead of [ip] —
      for tests and trusted-proxy setups where all peers share an IP.

    {b Brownout} ([breaker], {!Breaker}): a circuit breaker watches
    fresh-compute outcomes (shed-for-capacity and faulted/degraded
    responses are "bad"). Tripped, the server stops fresh compute:
    cache hits are still served, cache misses get the cheap fallback
    mapping ([Service.Api.fallback_response], a degraded response
    carrying scope ["brownout"]) when [brownout_degrade] is on, and a
    retryable [Overload] (scope ["brownout"]) otherwise. Brownout
    outcomes do not feed the breaker; recovery happens via half-open
    probes (see {!Breaker}). Quota and draining sheds never feed the
    breaker either — they are client or lifecycle conditions, not
    server overload.

    {b Chaos} ([chaos], {!Chaos}): wraps every connection's socket ops
    in seeded fault injection (short reads/writes, stalls, resets,
    trickle) for the `make chaos-net` harness; [Chaos.none] (default)
    adds zero overhead.

    {b Health surface}: the in-band control line [!health] (not a
    request: consumes no response id, sheds nothing) answers one JSON
    line — draining flag, connection/admission occupancy, breaker
    state, quota counters, shed breakdown — see {!health_json}.

    {b Thread safety}: fully thread-safe. The stop flag and all stats
    counters are atomics; the connection table is mutex-protected;
    {!stats}, {!request_stop} and {!port} may be called from any
    domain (or a signal handler, for {!request_stop}). Sockets are
    owned by exactly one handler each; {!drain}'s force-close is the
    single documented exception and handlers treat a concurrently
    closed fd as EOF. {!Quota} and {!Breaker} are internally locked;
    {!Chaos} wrappers are connection-confined. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 = ephemeral; see {!port} for the actual one *)
  backlog : int;
  max_conns : int;  (** connection cap (each holds a handler domain) *)
  max_inflight : int;  (** admission budget fed to {!Admission} *)
  drain_timeout_ms : float;
      (** how long {!drain} waits for idle connections before
          force-closing them; in-flight computation always completes *)
  max_line_bytes : int;  (** per-line cap fed to {!Frame} *)
  poll_interval_ms : float;
      (** select granularity — the latency bound on noticing a stop
          request or a newly readable socket *)
  idle_timeout_ms : float;
      (** close a connection that completes no frame within this
          deadline (slowloris defense); 0 disables *)
  write_timeout_ms : float;
      (** give up on a response write the peer will not drain within
          this deadline; 0 disables (writes may then block on select
          forever against a stuck peer) *)
  quota : Quota.config option;  (** per-client token bucket; [None] = off *)
  quota_per_conn : bool;
      (** key quotas by [ip:port] instead of [ip] (tests, proxies) *)
  breaker : Breaker.config option;
      (** circuit breaker / brownout; [None] = off *)
  brownout_degrade : bool;
      (** in brownout, answer cache misses with the fallback mapping
          (degraded) instead of shedding them *)
  chaos : Chaos.plan;  (** socket fault injection; {!Chaos.none} = off *)
}

val default_config : config
(** 127.0.0.1:0 (ephemeral), backlog 64, 32 connections, 8 in flight,
    5 s drain timeout, {!Frame.default_max_line_bytes}, 50 ms poll,
    60 s idle deadline, 10 s write deadline, quota and breaker off,
    [brownout_degrade = true], {!Chaos.none}. *)

type stats = {
  conns_accepted : int;
  conns_rejected : int;  (** over [max_conns]: one Overload line, close *)
  conns_active : int;
  frames : int;  (** complete frames seen (blank/comment included) *)
  requests : int;  (** processed lines (parsed or malformed) *)
  admitted : int;  (** requests that took an admission slot *)
  shed_inflight : int;  (** Overload: admission budget full *)
  shed_draining : int;  (** Overload: arrived during drain *)
  shed_quota : int;  (** Overload: client over its token bucket *)
  shed_brownout : int;
      (** Overload: breaker open and no cache/fallback answer *)
  brownout_cached : int;  (** brownout requests served from cache *)
  brownout_degraded : int;
      (** brownout requests answered with the fallback mapping *)
  idle_closed : int;  (** connections reclaimed by the idle deadline *)
  malformed : int;  (** per-line parse errors answered in place *)
  completed : int;  (** admitted requests answered (write attempted) *)
  write_errors : int;  (** responses a dead peer never read *)
  lost : int;  (** [admitted - completed - in_flight]; 0 after drain *)
}

type t

val create :
  ?config:config ->
  ?metrics:Obs.Metrics.t ->
  ?tracer:Obs.Trace.t ->
  api:Service.Api.t ->
  unit ->
  t
(** Binds, listens and spawns the acceptor domain; serving starts
    immediately. The server borrows [api] (it does not shut it down).
    [SIGPIPE] is set to ignore process-wide — a dead peer must surface
    as a write error, not kill the server. Raises [Unix.Unix_error]
    when the address cannot be bound. *)

val port : t -> int
(** The actually bound port (resolves port 0). *)

val request_stop : t -> unit
(** Flips the stop atomic: stop accepting, start draining. Safe from
    any domain and from a signal handler; idempotent; returns
    immediately (pair with {!drain} or {!run}). *)

val stopping : t -> bool

val drain : t -> stats
(** {!request_stop}, then wait: joins the acceptor, waits for handlers
    to finish in-flight work (force-closing connections only once
    [drain_timeout_ms] has passed), joins them, closes the listen
    socket and returns the final stats. Idempotent — later calls
    return the same final stats. *)

val run : t -> stats
(** Blocks until {!request_stop} is called (e.g. from a signal
    handler), then {!drain}s. *)

val stats : t -> stats
(** A consistent-enough live view (each field is individually exact;
    cross-field invariants like [lost = 0] are only guaranteed after
    {!drain}). *)

val breaker_state : t -> Breaker.state option
(** [None] when no breaker is configured. *)

val health_json : t -> string
(** The [!health] control-line answer: one JSON object (no trailing
    newline) of the form
    [{"health": {"draining": ..., "conns": {...}, "admission": {...},
    "breaker": ..., "quota": ..., "shed": {...}, "completed": ...}}].
    [breaker]/[quota] are the string ["off"] when not configured.
    Callable from any domain (it reads only atomics and the
    internally-locked quota/breaker). *)

val pp_stats : Format.formatter -> stats -> unit
