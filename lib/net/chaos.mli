(** Deterministic socket-level fault injection for the server's I/O.

    The compute path earned its chaos discipline in the resilience
    layer ([Service.Fault_injection]): every fault decision is a pure
    function of a seed and the decision's identity, so chaos runs are
    byte-reproducible. This module applies the same discipline to the
    {e socket} layer — the faults an adversarial network or client
    inflicts on [read(2)]/[write(2)]:

    - {b short reads/writes}: an op is clamped to a handful of bytes,
      exercising every partial-I/O resumption path;
    - {b stalls}: an op sleeps first, exercising deadline handling;
    - {b abrupt resets}: the connection dies mid-stream
      ([ECONNRESET]), exercising error paths and the zero-loss
      accounting;
    - {b trickle mode}: a whole connection is degraded to one-byte
      ops — a tame slowloris for deadline tests.

    Every decision is pure in [(seed, conn, op, index)]:

    - per-connection traits (is this connection trickled? at which
      byte does it reset?) depend only on [(seed, conn)];
    - per-op choices (stall? clamp to how much?) depend only on
      [(seed, conn, op-kind, op-ordinal)].

    Resets are {e byte-deterministic}: the reset threshold is a byte
    position in one seeded direction of the connection (its read
    stream or its write stream — never a combined count, whose
    crossing point would depend on how the OS chunks reads), and ops
    in that direction are clamped so they never cross it — so the
    exact bytes a client receives before the reset do not depend on OS
    chunking, domain count or wall-clock timing. [test/test_net.ml] asserts that the
    served-response bytes of a chaos run are identical across 1/2/4/8
    worker domains for the same seed.

    A wrapper raises [Unix.Unix_error (ECONNRESET, "chaos", _)] for an
    injected reset; once a connection is reset every further op on it
    raises too. The server treats these exactly like real peer resets.

    {b Thread safety}: a {!plan} is immutable and freely shared. A
    {!conn} wrapper is {e connection-confined} mutable state (op and
    byte counters) — owned by the single handler domain driving that
    connection, like [Frame.t]; it is not thread-safe and needs no
    lock. *)

type plan

val none : plan
(** No chaos: wrappers pass straight through to [Unix.read]/[write]. *)

val is_none : plan -> bool

val seed : plan -> int

val create :
  ?seed:int ->
  ?short_rate:float ->
  ?stall_rate:float ->
  ?stall_ms:float ->
  ?reset_rate:float ->
  ?reset_max_bytes:int ->
  ?trickle_rate:float ->
  unit ->
  plan
(** [short_rate] — per-op probability of clamping the op to 1–16
    bytes; [stall_rate]/[stall_ms] — per-op probability of sleeping
    [stall_ms] first; [reset_rate] — per-{e connection} probability
    that the connection carries a seeded reset threshold, drawn
    uniformly in \[1, [reset_max_bytes]\] (default 4096) of one
    seeded direction's traffic; [trickle_rate] — per-connection probability
    that every op is clamped to one byte. All rates default to 0.
    Raises [Invalid_argument] on a rate outside \[0, 1\] or a
    non-positive [reset_max_bytes]. *)

val of_spec : string -> (plan, string) result
(** Parses a compact CLI/Makefile spec: comma-separated [key=value]
    pairs over the keys [seed], [short], [stall], [stall_ms], [reset],
    [reset_bytes], [trickle] — e.g.
    ["seed=42,short=0.3,stall=0.1,stall_ms=2,reset=0.5,trickle=0.1"].
    Unknown keys and malformed values are errors. *)

type conn
(** Per-connection wrapper state: the plan plus op/byte counters. *)

val wrap : plan -> conn:int -> conn
(** The wrapper for connection ordinal [conn] (the server's
    connection id, assigned in accept order). *)

val read : conn -> Unix.file_descr -> bytes -> int -> int -> int
(** Drop-in for [Unix.read], with injected stalls, clamped lengths and
    resets. Raises [Unix.Unix_error (ECONNRESET, "chaos", "read")] at
    the seeded reset point (and on every op after it). *)

val write : conn -> Unix.file_descr -> bytes -> int -> int -> int
(** Drop-in for [Unix.write]; may write fewer bytes than asked (the
    caller's short-write loop resumes), and resets like {!read}. *)
