type caccess =
  | Cdirect of {
      base : int;  (* array base + const offset, bytes *)
      coeffs : int array;  (* per loop var, in bytes *)
      write : bool;
    }
  | Cindirect of {
      abase : int;
      elem : int;
      alen : int;  (* elements, for bounds checking *)
      table : int array;
      pconst : int;
      pcoeffs : int array;
      oconst : int;
      ocoeffs : int array;
      write : bool;
    }

type cnest = {
  par : Loop_nest.loop;
  inner : Loop_nest.loop array;
  body : caccess array;
  nvars : int;
  appi : int;
  compute_per_par_iter : int;
  iterations : int;
}

type t = {
  prog : Program.t;
  layout : Layout.t;
  nests : cnest array;
}

(* Position 0 of the variable vector is the timing-step variable "t";
   the parallel and inner loop variables follow. *)
let step_var = "t"

let compile_coeffs vars e =
  Array.map (fun v -> Affine.coeff e v) vars

(* Static bounds check: the extreme element indices of an affine
   reference over the loop (and step) ranges must stay inside the
   array. *)
let check_direct_bounds prog (n : Loop_nest.t) (a : Access.t) e =
  let decl = Program.array_decl prog a.array_name in
  let ranges =
    (step_var, 0, prog.Program.time_steps - 1)
    :: List.map
         (fun (l : Loop_nest.loop) ->
           (l.var, l.lo, l.lo + ((Loop_nest.trip l - 1) * l.step)))
         (n.par :: n.inner)
  in
  let lo, hi =
    List.fold_left
      (fun (lo, hi) (v, vlo, vhi) ->
        let c = Affine.coeff e v in
        if c >= 0 then (lo + (c * vlo), hi + (c * vhi))
        else (lo + (c * vhi), hi + (c * vlo)))
      (Affine.constant_part e, Affine.constant_part e)
      ranges
  in
  if lo < 0 || hi >= decl.length then
    invalid_arg
      (Printf.sprintf
         "Trace: reference to %s in nest %s ranges over [%d, %d] but the \
          array has %d elements"
         a.array_name n.name lo hi decl.length)

let compile_access (prog : Program.t) layout vars nest (a : Access.t) =
  let decl = Program.array_decl prog a.array_name in
  let abase = Layout.base layout a.array_name in
  let write = Access.is_write a in
  match a.index with
  | Access.Direct e ->
      check_direct_bounds prog nest a e;
      Cdirect
        {
          base = abase + (decl.elem_size * Affine.constant_part e);
          coeffs =
            Array.map (fun c -> c * decl.elem_size) (compile_coeffs vars e);
          write;
        }
  | Access.Indirect { table; pos; offset } ->
      Cindirect
        {
          abase;
          elem = decl.elem_size;
          alen = decl.length;
          table = Program.find_table prog table;
          pconst = Affine.constant_part pos;
          pcoeffs = compile_coeffs vars pos;
          oconst = Affine.constant_part offset;
          ocoeffs = compile_coeffs vars offset;
          write;
        }

let compile_nest prog layout (n : Loop_nest.t) =
  let vars =
    Array.of_list
      (step_var :: n.par.var
      :: List.map (fun (l : Loop_nest.loop) -> l.var) n.inner)
  in
  {
    par = n.par;
    inner = Array.of_list n.inner;
    body =
      Array.of_list (List.map (compile_access prog layout vars n) n.body);
    nvars = Array.length vars;
    appi = Loop_nest.accesses_per_par_iter n;
    compute_per_par_iter = Loop_nest.inner_trip n * n.compute_cycles;
    iterations = Loop_nest.iterations n;
  }

let create prog layout =
  {
    prog;
    layout;
    nests =
      Array.of_list (List.map (compile_nest prog layout) prog.Program.nests);
  }

let program t = t.prog
let layout t = t.layout
let num_nests t = Array.length t.nests

let get_nest t nest =
  if nest < 0 || nest >= Array.length t.nests then
    invalid_arg "Trace: nest index out of range";
  t.nests.(nest)

let iterations t ~nest = (get_nest t nest).iterations
let accesses_per_par_iter t ~nest = (get_nest t nest).appi
let compute_cycles_per_par_iter t ~nest = (get_nest t nest).compute_per_par_iter

let eval_terms coeffs vals nvars =
  let acc = ref 0 in
  for k = 0 to nvars - 1 do
    acc := !acc + (Array.unsafe_get coeffs k * Array.unsafe_get vals k)
  done;
  !acc

let addr_of cn vals = function
  | Cdirect { base; coeffs; _ } -> base + eval_terms coeffs vals cn.nvars
  | Cindirect
      { abase; elem; alen; table; pconst; pcoeffs; oconst; ocoeffs; _ } ->
      let pos = pconst + eval_terms pcoeffs vals cn.nvars in
      if pos < 0 || pos >= Array.length table then
        invalid_arg
          (Printf.sprintf "Trace: index-table position %d out of bounds" pos);
      let idx = Array.unsafe_get table pos + oconst + eval_terms ocoeffs vals cn.nvars in
      if idx < 0 || idx >= alen then
        invalid_arg
          (Printf.sprintf "Trace: indirect element index %d out of bounds" idx);
      abase + (elem * idx)

let is_write = function
  | Cdirect { write; _ } | Cindirect { write; _ } -> write

(* Walk the inner loops of [cn] with the parallel variable fixed,
   calling [f] per body access. *)
let iter_inner cn vals f =
  let ninner = Array.length cn.inner in
  let body = cn.body in
  let nbody = Array.length body in
  let rec go d =
    if d = ninner then
      for b = 0 to nbody - 1 do
        f (Array.unsafe_get body b)
      done
    else begin
      let l = cn.inner.(d) in
      let v = ref l.lo in
      while !v < l.hi do
        vals.(d + 2) <- !v;
        go (d + 1);
        v := !v + l.step
      done
    end
  in
  go 0

let iter_range ?(step = 0) t ~nest ~lo ~hi f =
  let cn = get_nest t nest in
  if lo < 0 || hi > cn.iterations || lo > hi then
    invalid_arg "Trace.iter_range: bad range";
  let vals = Array.make cn.nvars 0 in
  vals.(0) <- step;
  for i = lo to hi - 1 do
    vals.(1) <- cn.par.lo + (i * cn.par.step);
    iter_inner cn vals (fun ca ->
        f ~addr:(addr_of cn vals ca) ~write:(is_write ca))
  done

let fill_iteration ?(step = 0) t ~nest ~iter ~buf =
  let cn = get_nest t nest in
  if iter < 0 || iter >= cn.iterations then
    invalid_arg "Trace.fill_iteration: iteration out of range";
  if Array.length buf < cn.appi then
    invalid_arg "Trace.fill_iteration: buffer too small";
  let vals = Array.make cn.nvars 0 in
  vals.(0) <- step;
  vals.(1) <- cn.par.lo + (iter * cn.par.step);
  let n = ref 0 in
  iter_inner cn vals (fun ca ->
      let addr = addr_of cn vals ca in
      buf.(!n) <- (addr lsl 1) lor (if is_write ca then 1 else 0);
      incr n);
  !n

(* Visit the accesses of one body reference whose per-reference
   execution counter is [first], [first + period], ... below [hi].
   Execution counters order a single reference's executions: one per
   complete inner-iteration combination, [inner_trip] per parallel
   iteration. The CME fast path uses this to touch only the accesses
   whose miss period fires, instead of expanding the whole stream. *)
let iter_body_periodic ?(step = 0) t ~nest ~body ~first ~hi ~period f =
  let cn = get_nest t nest in
  if body < 0 || body >= Array.length cn.body then
    invalid_arg "Trace.iter_body_periodic: body reference out of range";
  if period <= 0 then
    invalid_arg "Trace.iter_body_periodic: non-positive period";
  if first < 0 then invalid_arg "Trace.iter_body_periodic: negative start";
  let ninner = Array.length cn.inner in
  let inner_trip =
    Array.fold_left (fun acc l -> acc * Loop_nest.trip l) 1 cn.inner
  in
  if hi > cn.iterations * inner_trip then
    invalid_arg "Trace.iter_body_periodic: range beyond nest executions";
  let ca = cn.body.(body) in
  let vals = Array.make cn.nvars 0 in
  vals.(0) <- step;
  if period = 1 then begin
    (* Dense: nested-loop walk from the enclosing iteration boundary,
       guarded by two compares per execution — no decode divisions. *)
    let c = ref (first / inner_trip * inner_trip) in
    try
      for i = first / inner_trip to cn.iterations - 1 do
        vals.(1) <- cn.par.lo + (i * cn.par.step);
        let rec go d =
          if d = ninner then begin
            let cc = !c in
            if cc >= hi then raise Exit;
            if cc >= first then f ~exec:cc ~addr:(addr_of cn vals ca);
            incr c
          end
          else begin
            let l = cn.inner.(d) in
            let v = ref l.lo in
            while !v < l.hi do
              vals.(d + 2) <- !v;
              go (d + 1);
              v := !v + l.step
            done
          end
        in
        go 0
      done
    with Exit -> ()
  end
  else begin
    (* Sparse: decode each firing execution counter into loop-variable
       values directly (innermost inner loop varies fastest). *)
    let trips = Array.map Loop_nest.trip cn.inner in
    let c = ref first in
    while !c < hi do
      let cc = !c in
      vals.(1) <- cn.par.lo + (cc / inner_trip * cn.par.step);
      let rem = ref (cc mod inner_trip) in
      for d = ninner - 1 downto 0 do
        let l = cn.inner.(d) in
        vals.(d + 2) <- l.lo + (!rem mod trips.(d) * l.step);
        rem := !rem / trips.(d)
      done;
      f ~exec:cc ~addr:(addr_of cn vals ca);
      c := cc + period
    done
  end

(* Visit every execution of one body reference over parallel iterations
   [lo, hi), grouped into blocks of consecutive parallel iterations that
   fall on the same [line]-byte line for a fixed inner combination. The
   visit order is NOT program order (inner combinations are walked in
   the outer position, parallel iterations innermost) — callers must
   only aggregate order-independent counts. Affine references advance by
   a fixed byte stride per parallel iteration, so a block's length is
   one boundary computation; indirect references degrade to
   one-execution blocks. *)
let iter_body_line_blocks ?(step = 0) t ~nest ~body ~lo ~hi ~line f =
  let cn = get_nest t nest in
  if body < 0 || body >= Array.length cn.body then
    invalid_arg "Trace.iter_body_line_blocks: body reference out of range";
  if lo < 0 || hi > cn.iterations || lo > hi then
    invalid_arg "Trace.iter_body_line_blocks: bad range";
  if line <= 0 then invalid_arg "Trace.iter_body_line_blocks: bad line size";
  let ca = cn.body.(body) in
  let ninner = Array.length cn.inner in
  let vals = Array.make cn.nvars 0 in
  vals.(0) <- step;
  let at_leaf =
    match ca with
    | Cindirect _ ->
        fun () ->
          for i = lo to hi - 1 do
            vals.(1) <- cn.par.lo + (i * cn.par.step);
            f ~addr:(addr_of cn vals ca) ~count:1
          done
    | Cdirect { coeffs; _ } ->
        let sp = coeffs.(1) * cn.par.step in
        fun () ->
          vals.(1) <- cn.par.lo + (lo * cn.par.step);
          let a_lo = addr_of cn vals ca in
          let n = hi - lo in
          if n = 0 then ()
          else if sp = 0 then f ~addr:a_lo ~count:n
          else begin
            let a = ref a_lo in
            let remaining = ref n in
            while !remaining > 0 do
              let a0 = !a in
              let room =
                if sp > 0 then
                  let next = ((a0 / line) + 1) * line in
                  (next - a0 + sp - 1) / sp
                else (a0 - (a0 / line * line)) / -sp + 1
              in
              let cnt = min room !remaining in
              f ~addr:a0 ~count:cnt;
              a := a0 + (cnt * sp);
              remaining := !remaining - cnt
            done
          end
  in
  let rec go d =
    if d = ninner then at_leaf ()
    else begin
      let l = cn.inner.(d) in
      let v = ref l.lo in
      while !v < l.hi do
        vals.(d + 2) <- !v;
        go (d + 1);
        v := !v + l.step
      done
    end
  in
  go 0

let fill_range ?(step = 0) t ~nest ~lo ~hi ~buf =
  let cn = get_nest t nest in
  if lo < 0 || hi > cn.iterations || lo > hi then
    invalid_arg "Trace.fill_range: bad range";
  if Array.length buf < (hi - lo) * cn.appi then
    invalid_arg "Trace.fill_range: buffer too small";
  let vals = Array.make cn.nvars 0 in
  vals.(0) <- step;
  let n = ref 0 in
  for i = lo to hi - 1 do
    vals.(1) <- cn.par.lo + (i * cn.par.step);
    iter_inner cn vals (fun ca ->
        let addr = addr_of cn vals ca in
        Array.unsafe_set buf !n
          ((addr lsl 1) lor (if is_write ca then 1 else 0));
        incr n)
  done;
  !n

let decode_addr enc = enc lsr 1
let decode_write enc = enc land 1 = 1

(* ------------------------------------------------------------------ *)
(* Compiled-reference introspection: the symbolic CME tier rebuilds a
   reference's address function addr(vars) = base + Σ coeffs·vars from
   the compiled form instead of re-deriving it from the AST. *)

type direct = {
  dbase : int;
  dcoeffs : int array;
  dwrite : bool;
}

let direct_ref t ~nest ~body =
  let cn = get_nest t nest in
  if body < 0 || body >= Array.length cn.body then
    invalid_arg "Trace.direct_ref: body reference out of range";
  match cn.body.(body) with
  | Cindirect _ -> None
  | Cdirect { base; coeffs; write } ->
      Some { dbase = base; dcoeffs = Array.copy coeffs; dwrite = write }

let num_body_refs t ~nest = Array.length (get_nest t nest).body
let par_loop t ~nest = (get_nest t nest).par
let inner_loops t ~nest = Array.copy (get_nest t nest).inner

(* ------------------------------------------------------------------ *)
(* Preallocated replay scratch. [iter_range] allocates one loop-variable
   vector per call; the observed replay calls it once per set per chunk
   and its allocation-budget test wants the steady-state inner loop to
   allocate nothing at all, so callers preallocate the vector once and
   walk through it. *)

type scratch = { mutable svals : int array }

let make_scratch t =
  let n =
    Array.fold_left (fun acc cn -> max acc cn.nvars) 1 t.nests
  in
  { svals = Array.make n 0 }

let scratch_vals sc cn =
  if Array.length sc.svals < cn.nvars then
    sc.svals <- Array.make cn.nvars 0;
  sc.svals

let iter_range_s ?(step = 0) t sc ~nest ~lo ~hi f =
  let cn = get_nest t nest in
  if lo < 0 || hi > cn.iterations || lo > hi then
    invalid_arg "Trace.iter_range_s: bad range";
  let vals = scratch_vals sc cn in
  Array.fill vals 0 cn.nvars 0;
  vals.(0) <- step;
  (* The inner walk is open-coded here rather than delegated to
     [iter_inner] so the recursive walker is built once per call, not
     once per parallel iteration — the replay's allocation budget is
     per {e set}, not per iteration. *)
  let ninner = Array.length cn.inner in
  let body = cn.body in
  let nbody = Array.length body in
  let rec go d =
    if d = ninner then
      for b = 0 to nbody - 1 do
        let ca = Array.unsafe_get body b in
        f ~addr:(addr_of cn vals ca) ~write:(is_write ca)
      done
    else begin
      let l = cn.inner.(d) in
      let v = ref l.lo in
      while !v < l.hi do
        vals.(d + 2) <- !v;
        go (d + 1);
        v := !v + l.step
      done
    end
  in
  for i = lo to hi - 1 do
    vals.(1) <- cn.par.lo + (i * cn.par.step);
    go 0
  done
