(** Deterministic expansion of programs into address streams.

    [create] compiles a program against a memory layout: every reference
    is lowered to precomputed base/stride form so address generation is
    a few integer operations per access. Both the compile-time analysis
    (CME, affinity construction), the runtime inspector, and the
    simulator replay exactly the same stream, which is what makes
    compile-time MAI/CAI estimates comparable to observed ones.

    Addresses are *virtual*; callers translate through a
    {!Mem.Page_table} where needed. *)

type t

val create : Program.t -> Layout.t -> t
(** Compiles all nests. Raises [Invalid_argument] if a reference's
    index table or array cannot be resolved (programs built with
    {!Program.create} always can), or if an affine reference can
    provably range outside its array over the loop and timing-step
    bounds. *)

val program : t -> Program.t

val layout : t -> Layout.t

val num_nests : t -> int

val iterations : t -> nest:int -> int

val accesses_per_par_iter : t -> nest:int -> int

val compute_cycles_per_par_iter : t -> nest:int -> int

val step_var : string
(** The reserved timing-step variable name (["t"]): references may use
    it to address per-step data slices; it is bound to the timing-loop
    index during expansion. *)

val iter_range :
  ?step:int ->
  t ->
  nest:int ->
  lo:int ->
  hi:int ->
  (addr:int -> write:bool -> unit) ->
  unit
(** [iter_range t ~nest ~lo ~hi f] calls [f] for every access issued by
    parallel iterations [lo, hi) of [nest], in program order, with the
    step variable bound to [step] (default 0). Raises
    [Invalid_argument] on a range outside the nest's iteration space,
    or if an indirection reads outside its index table. *)

val fill_iteration :
  ?step:int -> t -> nest:int -> iter:int -> buf:int array -> int
(** [fill_iteration t ~nest ~iter ~buf] writes the encoded accesses of
    one parallel iteration into [buf] and returns their count. Each
    element encodes [(addr lsl 1) lor write_bit] — see {!decode_addr}
    and {!decode_write}. [buf] must hold at least
    [accesses_per_par_iter] elements. *)

val fill_range :
  ?step:int -> t -> nest:int -> lo:int -> hi:int -> buf:int array -> int
(** [fill_range t ~nest ~lo ~hi ~buf] expands parallel iterations
    [lo, hi) of [nest] into [buf] — the same
    [(addr lsl 1) lor write_bit] encoding as {!fill_iteration}, in
    exactly the order {!iter_range} emits — and returns the access
    count ([(hi - lo) * accesses_per_par_iter]). [buf] must hold at
    least that many elements. The flat buffer lets hot consumers (the
    analysis fast path) iterate a chunk of the trace without paying a
    closure call per access. *)

val iter_body_periodic :
  ?step:int ->
  t ->
  nest:int ->
  body:int ->
  first:int ->
  hi:int ->
  period:int ->
  (exec:int -> addr:int -> unit) ->
  unit
(** [iter_body_periodic t ~nest ~body ~first ~hi ~period f] calls [f]
    for the accesses of body reference [body] (its index in the nest's
    body list) whose per-reference execution counter is [first],
    [first + period], [first + 2*period], ... strictly below [hi].
    Execution counters number a single reference's executions in
    program order: one per complete inner-iteration combination,
    [inner_trip] of them per parallel iteration — exactly the counter
    the CME classifier keys its miss periods on. [f] receives the
    execution counter and the access's virtual address.

    This is the sparse complement of {!fill_range}: when only every
    [period]-th execution of a reference needs an address (because the
    rest are classified L1 hits arithmetically), visiting just those is
    asymptotically cheaper than expanding the whole stream. Raises
    [Invalid_argument] on a bad body index, non-positive period,
    negative [first], or [hi] beyond the nest's execution count. *)

val iter_body_line_blocks :
  ?step:int ->
  t ->
  nest:int ->
  body:int ->
  lo:int ->
  hi:int ->
  line:int ->
  (addr:int -> count:int -> unit) ->
  unit
(** [iter_body_line_blocks t ~nest ~body ~lo ~hi ~line f] visits every
    execution of body reference [body] over parallel iterations
    [lo, hi), grouped into blocks of consecutive parallel iterations
    whose accesses fall on the same [line]-byte cache line for a fixed
    inner-iteration combination; [f] receives the block's first address
    and its execution count. Affine references advance by a fixed byte
    stride per parallel iteration, so block lengths come from one
    boundary computation — small strides (unit-stride parallel loops)
    collapse [line / stride] executions into one visit. Indirect
    references degrade to one-execution blocks.

    {b The visit order is not program order} (inner combinations are
    walked outermost, parallel iterations innermost): callers must only
    aggregate order-independent counts from it, as the CME fast path
    does for references whose every execution misses. Raises
    [Invalid_argument] on a bad body index, bad range, or non-positive
    line size. *)

val decode_addr : int -> int

val decode_write : int -> bool

(** {2 Compiled-reference introspection}

    The symbolic CME tier ({!Cme.Symbolic}) derives whole-nest miss/hit
    address progressions in closed form. It needs each affine
    reference's compiled address function — the byte-level base and
    per-variable byte coefficients {!create} lowered it to — rather
    than the source AST, so the algebra matches the expanded stream
    exactly (same layout bases, same element scaling). *)

type direct = {
  dbase : int;  (** array base + constant offset, bytes *)
  dcoeffs : int array;
      (** per loop variable, bytes: position 0 is the timing step
          {!step_var}, 1 the parallel variable, then the inner loops
          outermost first — the order {!iter_range} binds them in *)
  dwrite : bool;
}

val direct_ref : t -> nest:int -> body:int -> direct option
(** The compiled form of body reference [body] of [nest], or [None] for
    an index-array (irregular) reference — those have no affine closed
    form and stay on the trace-walking tiers. The coefficient array is
    a fresh copy. Raises [Invalid_argument] on a bad body index. *)

val num_body_refs : t -> nest:int -> int

val par_loop : t -> nest:int -> Loop_nest.loop

val inner_loops : t -> nest:int -> Loop_nest.loop array
(** Inner loops of a nest, outermost first (fresh copy) — the trip
    counts and steps the symbolic tier folds into its progressions. *)

(** {2 Preallocated replay scratch}

    {!iter_range} allocates one loop-variable vector per call. The
    observed replay iterates set-by-set over the whole trace and its
    inner loop must allocate {e zero} words per access (the
    allocation-budget test gates this), so it preallocates the vector
    once in a [scratch] and reuses it across every walk.

    {b Thread safety}: a scratch is not thread-safe — it is private
    mutable state of the single replay that made it; never share one
    across domains. The trace itself stays immutable and freely
    shareable. *)

type scratch

val make_scratch : t -> scratch
(** A scratch sized for the largest nest of [t] (it grows if later used
    with a bigger trace). *)

val iter_range_s :
  ?step:int ->
  t ->
  scratch ->
  nest:int ->
  lo:int ->
  hi:int ->
  (addr:int -> write:bool -> unit) ->
  unit
(** Exactly {!iter_range} — same order, same addresses — but walking
    through the caller's [scratch] instead of allocating: the only
    per-call cost beyond the walk is clearing the vector. *)
