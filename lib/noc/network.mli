(** Contention-aware network state.

    The network models wormhole-switched X-Y routing at packet
    granularity: a packet traversing a link occupies it for [flits]
    cycles; a later packet wanting the same link queues until the link
    frees. Each hop additionally pays the router pipeline overhead plus
    one link-traversal cycle. This captures the two first-order effects
    the paper optimises: distance travelled and congestion
    (Section 3.9).

    An [ideal] network transfers every packet in zero cycles — the
    paper's Figure 2 upper bound.

    {b Thread safety}: not thread-safe. Link occupancy is mutated in
    place as packets are routed; a network belongs to the single
    engine run that created it. *)

type t

val create : ?ideal:bool -> router_overhead:int -> Topology.t -> t
(** [create ~router_overhead topo] builds an idle network.
    [router_overhead] is the per-hop router pipeline delay in cycles
    (Table 4 uses 3). *)

val topology : t -> Topology.t

val is_ideal : t -> bool

val send : t -> now:int -> src:int -> dst:int -> flits:int -> int
(** [send t ~now ~src ~dst ~flits] injects a packet at cycle [now] and
    returns its arrival cycle at [dst]. Link occupancy state is updated;
    statistics accumulate the packet's total latency and its queueing
    component. [src = dst] transfers instantly. *)

val reset : t -> unit
(** Clears link occupancy and statistics. *)

(** {2 Statistics} *)

val total_latency : t -> int
(** Sum over packets of (arrival - injection) cycles. *)

val total_queueing : t -> int
(** Portion of {!total_latency} spent waiting for busy links. *)

val packets_sent : t -> int

val total_hops : t -> int

val avg_latency : t -> float
(** Mean packet latency in cycles; [0.] if nothing was sent. *)

val latency_histogram : t -> int array
(** Per-packet latency histogram: bucket [k] counts packets with
    latency in [2^k, 2^(k+1)). *)

val link_busy : t -> int array
(** Cumulative occupancy cycles per directed link id. *)
