(** Deterministic JSON emission for the observability layer.

    [lib/obs] sits below the serving layer (it is used by [lib/par] and
    [lib/core]), so it cannot reuse [Service.Json]; this is the tiny
    write-only subset it needs. The encoding matches [Service.Json]
    byte-for-byte on the values both can produce — compact, no
    whitespace, fields in construction order, floats printed with the
    shortest representation that round-trips — so metrics snapshots and
    trace lines written here parse back through the service decoder and
    two structurally equal values always print identically (the trace
    byte-reproducibility guarantee rides on this).

    {b Thread safety}: stateless; every function allocates its own
    buffers and is safe to call from concurrent domains. *)

val escape : Buffer.t -> string -> unit
(** Appends the JSON string literal (quotes included) for [s]. *)

val float_repr : float -> string
(** Shortest decimal representation that round-trips; integral floats
    print with one decimal ("2.0"); NaN prints as [null]. *)

val obj : Buffer.t -> (string * string) list -> unit
(** Appends [{"k":v,...}] with the values taken verbatim (callers
    pre-encode them with {!escape} / {!float_repr} / [string_of_int]). *)

val field_str : string -> string -> string * string
(** [field_str k v] is [(k, encoded-string v)] for {!obj}. *)

val field_int : string -> int -> string * string

val field_float : string -> float -> string * string
