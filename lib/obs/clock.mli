(** Monotonic time for the observability layer.

    One wrapper over the vendored monotonic clock so that every obs
    consumer — span timing in {!Trace}, busy-time accounting in
    [Par.Pool], the histogram timer in {!Metrics} — reads the same
    clock, and so that the lower layers ([lib/par], [lib/core]) do not
    each grow their own clock dependency.

    {b Thread safety}: stateless; both functions are safe to call from
    any domain without synchronisation. *)

val now_ns : unit -> int64
(** Monotonic nanoseconds since an arbitrary epoch. Never goes
    backwards; differences are wall-time durations. *)

val ns_to_ms : int64 -> float
(** Nanoseconds as fractional milliseconds (the unit every obs
    histogram uses). *)
