(** A registry of named counters, gauges and fixed-bucket histograms.

    This is the measurement half of the observability subsystem: the
    serving layer, the domain pool and the analysis fast path register
    instruments here and bump them on their hot paths; a snapshot
    merges everything into immutable samples for exposition as JSON
    ({!to_json}, what [locmap batch --metrics] writes and [locmap
    stats] pretty-prints) or Prometheus text ({!to_prometheus}).

    {b Cost model}. Instruments are {e lock-cheap}:

    - a counter is an array of per-domain shard cells ([int Atomic.t],
      indexed by the calling domain's id), so concurrent increments
      from different domains almost never contend — {!incr} is one
      enabled-flag load plus one atomic fetch-and-add;
    - a gauge is a single atomic cell (gauges are set, not
      accumulated, so sharding would change their meaning);
    - a histogram shards whole bucket tables per domain, each shard
      behind its own mutex — an observation takes an uncontended lock,
      bumps one bucket and the sum/count, and unlocks.

    Shards are merged only on {!snapshot}, so reads never stall
    writers for more than one shard's critical section.

    {b Off switch}. A registry created with [~enabled:false] (or
    switched off with {!set_enabled}) turns every instrument operation
    into a single load-and-branch no-op — instrumented code can stay
    compiled in at ~0% cost (bench/obs_bench.exe measures this).
    Registration is independent of the flag, so a registry can be
    enabled after the instruments exist.

    {b Determinism}. Counter and gauge values are exact whatever the
    domain count; {!to_json} and {!to_prometheus} print samples in
    registration order with deterministic number formatting, so equal
    states print byte-identically. Timing-valued metrics (histograms
    fed by {!time}) are inherently wall-clock dependent — the byte-
    reproducibility guarantee of the serving layer covers responses
    and deterministic-mode traces, {e not} metrics snapshots.

    {b Thread safety}: fully thread-safe. Registration takes the
    registry mutex; instrument updates are atomic (counters, gauges)
    or per-domain-shard locked (histograms); {!snapshot} may run
    concurrently with updates and sees each instrument in a consistent
    (if instantaneously racy across instruments) state. *)

type t

val create : ?shards:int -> ?enabled:bool -> unit -> t
(** [shards] (default 8, rounded up to a power of two, max 256) is the
    number of per-domain cells each sharded instrument carries;
    [enabled] defaults to [true]. Raises [Invalid_argument] on
    [shards < 1]. *)

val is_enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Flips the registry-wide switch; takes effect on the next
    instrument operation (no fence — in-flight updates may still
    land). *)

val num_shards : t -> int

(** {2 Instruments}

    Registration is idempotent: asking for an existing (name, labels)
    pair returns the same instrument, so independent components may
    register the same metric. Asking for it with a different
    instrument kind (or different buckets) raises [Invalid_argument].
    Names must match [[a-zA-Z_][a-zA-Z0-9_]*] (Prometheus-compatible);
    label keys likewise, label values are free-form. *)

type counter
type gauge
type histogram

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter

val incr : counter -> unit

val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative amount (counters are
    monotone). *)

val counter_value : counter -> int
(** Sum over shards — exact, since shard cells only grow. *)

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val set_gauge : gauge -> int -> unit

val add_gauge : gauge -> int -> unit
(** Signed; gauges go up and down (queue depths, entry counts). *)

val gauge_value : gauge -> int

val default_buckets : float array
(** Latency buckets in milliseconds, 0.05 ms to 5 s in a 1–2.5–5
    progression — the buckets every obs histogram in this repo uses
    unless it asks for its own. *)

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string ->
  histogram
(** [buckets] are upper bounds (inclusive, Prometheus [le] semantics),
    strictly increasing and finite; an overflow (+Inf) bucket is
    implicit. Raises [Invalid_argument] on an empty or non-increasing
    bucket array. *)

val observe : histogram -> float -> unit
(** Records one observation: the first bucket with [v <= upper] (or
    the overflow bucket) gains a count, and sum/count advance. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Runs the thunk and observes its wall-clock duration in
    milliseconds; when the registry is disabled the clock is never
    read. Exceptions propagate without observing. *)

(** {2 Snapshots and exposition} *)

type hist_view = {
  upper : float array;  (** bucket upper bounds, ascending *)
  counts : int array;
      (** cumulative counts per bucket (Prometheus convention); the
          last entry is the overflow bucket and equals [count] *)
  sum : float;
  count : int;
}

type value = Counter of int | Gauge of int | Histogram of hist_view

type sample = {
  name : string;
  help : string;
  labels : (string * string) list;  (** in registration order *)
  value : value;
}

val snapshot : t -> sample list
(** Immutable merged view, in registration order. *)

val to_json : sample list -> string
(** One compact JSON object:
    [{"metrics":[{"name":..,"type":"counter",..},..]}]. Histograms
    carry ["count"], ["sum"] and a cumulative ["buckets"] array whose
    final entry has ["le":"+Inf"]. Parses back through [Service.Json]
    (the [locmap stats] path). *)

val to_prometheus : sample list -> string
(** Prometheus text exposition format 0.0.4: [# HELP]/[# TYPE]
    comments, [_bucket]/[_sum]/[_count] series for histograms. *)

val pp_text : Format.formatter -> sample list -> unit
(** Human-readable table ([locmap stats]): one line per counter/gauge,
    and count, sum and bucket-estimated p50/p95/p99 per histogram. *)
