(* Sharded instruments: counters and histograms keep one cell (or one
   bucket table) per domain-id slot, so concurrent updates from
   different domains land on different cache lines and different
   mutexes. The shard index is the domain id masked to the shard
   count — collisions are possible (two domains may share a slot) and
   harmless, because every cell is itself safe (atomic, or behind the
   shard mutex); sharding is a contention optimisation, not a
   correctness mechanism. *)

type hist_shard = {
  hlock : Mutex.t;
  bucket_counts : int array;  (* per-bucket, last = overflow *)
  mutable hsum : float;
  mutable hcount : int;
}

type kind =
  | Kcounter of int Atomic.t array  (* shard cells *)
  | Kgauge of int Atomic.t
  | Khistogram of { upper : float array; hshards : hist_shard array }

type metric = {
  name : string;
  help : string;
  labels : (string * string) list;
  kind : kind;
  on : bool Atomic.t;  (* the registry's switch, shared *)
  mask : int;
}

type t = {
  lock : Mutex.t;  (* registration only *)
  tbl : (string, metric) Hashtbl.t;  (* keyed by name + canonical labels *)
  mutable order : metric list;  (* reverse registration order *)
  enabled : bool Atomic.t;
  shards : int;
}

type counter = metric
type gauge = metric
type histogram = metric

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let rec pow2_ceil n k = if k >= n then k else pow2_ceil n (2 * k)

let create ?(shards = 8) ?(enabled = true) () =
  if shards < 1 then invalid_arg "Metrics.create: shards < 1";
  let shards = min 256 (pow2_ceil shards 1) in
  {
    lock = Mutex.create ();
    tbl = Hashtbl.create 64;
    order = [];
    enabled = Atomic.make enabled;
    shards;
  }

let is_enabled t = Atomic.get t.enabled
let set_enabled t b = Atomic.set t.enabled b
let num_shards t = t.shards

let key name labels =
  let b = Buffer.create 32 in
  Buffer.add_string b name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b '\x00';
      Buffer.add_string b k;
      Buffer.add_char b '\x01';
      Buffer.add_string b v)
    labels;
  Buffer.contents b

let same_kind a b =
  match (a, b) with
  | Kcounter _, Kcounter _ | Kgauge _, Kgauge _ -> true
  | Khistogram h1, Khistogram h2 -> h1.upper = h2.upper
  | _ -> false

(* Register-or-find under the registry lock; the instrument itself is
   built outside any hot path. *)
let register t ~name ~help ~labels mk =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_name k) then
        invalid_arg (Printf.sprintf "Metrics: invalid label key %S" k))
    labels;
  let k = key name labels in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some m ->
          let fresh = mk () in
          if not (same_kind m.kind fresh) then
            invalid_arg
              (Printf.sprintf
                 "Metrics: %S already registered with a different kind" name);
          m
      | None ->
          let m =
            { name; help; labels; kind = mk (); on = t.enabled;
              mask = t.shards - 1 }
          in
          Hashtbl.replace t.tbl k m;
          t.order <- m :: t.order;
          m)

let counter t ?(help = "") ?(labels = []) name =
  register t ~name ~help ~labels (fun () ->
      Kcounter (Array.init t.shards (fun _ -> Atomic.make 0)))

let gauge t ?(help = "") ?(labels = []) name =
  register t ~name ~help ~labels (fun () -> Kgauge (Atomic.make 0))

let default_buckets =
  [|
    0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.;
    1000.; 2500.; 5000.;
  |]

let histogram t ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: empty buckets";
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then
        invalid_arg "Metrics.histogram: non-finite bucket bound";
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: buckets not strictly increasing")
    buckets;
  let upper = Array.copy buckets in
  register t ~name ~help ~labels (fun () ->
      Khistogram
        {
          upper;
          hshards =
            Array.init t.shards (fun _ ->
                {
                  hlock = Mutex.create ();
                  bucket_counts = Array.make (Array.length upper + 1) 0;
                  hsum = 0.;
                  hcount = 0;
                });
        })

let shard_ix (m : metric) = (Domain.self () :> int) land m.mask

let incr (m : counter) =
  if Atomic.get m.on then
    match m.kind with
    | Kcounter cells -> Atomic.incr cells.(shard_ix m)
    | _ -> assert false

let add (m : counter) n =
  if n < 0 then invalid_arg "Metrics.add: negative amount";
  if n > 0 && Atomic.get m.on then
    match m.kind with
    | Kcounter cells -> ignore (Atomic.fetch_and_add cells.(shard_ix m) n)
    | _ -> assert false

let counter_value (m : counter) =
  match m.kind with
  | Kcounter cells -> Array.fold_left (fun a c -> a + Atomic.get c) 0 cells
  | _ -> assert false

let set_gauge (m : gauge) v =
  if Atomic.get m.on then
    match m.kind with Kgauge c -> Atomic.set c v | _ -> assert false

let add_gauge (m : gauge) n =
  if n <> 0 && Atomic.get m.on then
    match m.kind with
    | Kgauge c -> ignore (Atomic.fetch_and_add c n)
    | _ -> assert false

let gauge_value (m : gauge) =
  match m.kind with Kgauge c -> Atomic.get c | _ -> assert false

(* First bucket with [v <= upper], else the overflow slot. Bucket
   arrays are small (the default is 16), so a linear scan beats the
   branch mispredictions of binary search. *)
let bucket_of upper v =
  let n = Array.length upper in
  let i = ref 0 in
  while !i < n && v > Array.unsafe_get upper !i do
    i := !i + 1
  done;
  !i

let observe (m : histogram) v =
  if Atomic.get m.on then
    match m.kind with
    | Khistogram { upper; hshards } ->
        let s = hshards.(shard_ix m) in
        let b = bucket_of upper v in
        Mutex.lock s.hlock;
        s.bucket_counts.(b) <- s.bucket_counts.(b) + 1;
        s.hsum <- s.hsum +. v;
        s.hcount <- s.hcount + 1;
        Mutex.unlock s.hlock
    | _ -> assert false

let time (m : histogram) f =
  if not (Atomic.get m.on) then f ()
  else begin
    let t0 = Clock.now_ns () in
    let r = f () in
    observe m (Clock.ns_to_ms (Int64.sub (Clock.now_ns ()) t0));
    r
  end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type hist_view = {
  upper : float array;
  counts : int array;
  sum : float;
  count : int;
}

type value = Counter of int | Gauge of int | Histogram of hist_view

type sample = {
  name : string;
  help : string;
  labels : (string * string) list;
  value : value;
}

let read_metric (m : metric) =
  let value =
    match m.kind with
    | Kcounter _ -> Counter (counter_value m)
    | Kgauge c -> Gauge (Atomic.get c)
    | Khistogram { upper; hshards } ->
        let n = Array.length upper + 1 in
        let merged = Array.make n 0 in
        let sum = ref 0. in
        let count = ref 0 in
        Array.iter
          (fun s ->
            Mutex.lock s.hlock;
            for i = 0 to n - 1 do
              merged.(i) <- merged.(i) + s.bucket_counts.(i)
            done;
            sum := !sum +. s.hsum;
            count := !count + s.hcount;
            Mutex.unlock s.hlock)
          hshards;
        (* Cumulate in place: Prometheus [le] buckets are running
           totals, and the estimators below want them that way too. *)
        for i = 1 to n - 1 do
          merged.(i) <- merged.(i) + merged.(i - 1)
        done;
        Histogram
          { upper = Array.copy upper; counts = merged; sum = !sum;
            count = !count }
  in
  { name = m.name; help = m.help; labels = m.labels; value }

let snapshot t =
  Mutex.lock t.lock;
  let metrics = List.rev t.order in
  Mutex.unlock t.lock;
  List.map read_metric metrics

(* ------------------------------------------------------------------ *)
(* Exposition                                                          *)

let labels_json labels =
  let b = Buffer.create 32 in
  Emit.obj b (List.map (fun (k, v) -> Emit.field_str k v) labels);
  Buffer.contents b

let sample_json buf (s : sample) =
  let base ty = [ Emit.field_str "name" s.name; ("type", "\"" ^ ty ^ "\"") ] in
  let help = if s.help = "" then [] else [ Emit.field_str "help" s.help ] in
  let labels =
    if s.labels = [] then [] else [ ("labels", labels_json s.labels) ]
  in
  match s.value with
  | Counter v -> Emit.obj buf (base "counter" @ help @ labels @ [ Emit.field_int "value" v ])
  | Gauge v -> Emit.obj buf (base "gauge" @ help @ labels @ [ Emit.field_int "value" v ])
  | Histogram h ->
      let buckets =
        let bb = Buffer.create 64 in
        Buffer.add_char bb '[';
        Array.iteri
          (fun i c ->
            if i > 0 then Buffer.add_char bb ',';
            let le =
              if i < Array.length h.upper then
                ("le", Emit.float_repr h.upper.(i))
              else Emit.field_str "le" "+Inf"
            in
            Emit.obj bb [ le; Emit.field_int "count" c ])
          h.counts;
        Buffer.add_char bb ']';
        Buffer.contents bb
      in
      Emit.obj buf
        (base "histogram" @ help @ labels
        @ [
            Emit.field_int "count" h.count;
            Emit.field_float "sum" h.sum;
            ("buckets", buckets);
          ])

let to_json samples =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      sample_json buf s)
    samples;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let prom_labels labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             let b = Buffer.create 16 in
             Emit.escape b v;
             k ^ "=" ^ Buffer.contents b)
           labels)
    ^ "}"

let prom_number f =
  if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.0f" f
  else Emit.float_repr f

let to_prometheus samples =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun (s : sample) ->
      let ty =
        match s.value with
        | Counter _ -> "counter"
        | Gauge _ -> "gauge"
        | Histogram _ -> "histogram"
      in
      (* One HELP/TYPE header per metric family, even when label sets
         split it into several samples. *)
      if not (Hashtbl.mem seen_header s.name) then begin
        Hashtbl.add seen_header s.name ();
        if s.help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" s.name s.help);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" s.name ty)
      end;
      let ls = prom_labels s.labels in
      match s.value with
      | Counter v | Gauge v ->
          Buffer.add_string buf (Printf.sprintf "%s%s %d\n" s.name ls v)
      | Histogram h ->
          Array.iteri
            (fun i c ->
              let le =
                if i < Array.length h.upper then prom_number h.upper.(i)
                else "+Inf"
              in
              let ls =
                prom_labels (s.labels @ [ ("le", le) ])
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" s.name ls c))
            h.counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" s.name ls (prom_number h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.name ls h.count))
    samples;
  Buffer.contents buf

(* Upper bound of the first cumulative bucket reaching quantile [q] —
   a coarse estimate, but the honest one a fixed-bucket histogram can
   give. *)
let quantile_le (h : hist_view) q =
  if h.count = 0 then "-"
  else begin
    let target =
      int_of_float (Float.round (q *. float_of_int h.count)) |> max 1
    in
    let rec find i =
      if i >= Array.length h.counts - 1 then "+Inf"
      else if h.counts.(i) >= target then Emit.float_repr h.upper.(i)
      else find (i + 1)
    in
    find 0
  end

let pp_text ppf samples =
  let label_str labels =
    if labels = [] then ""
    else
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
      ^ "}"
  in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (s : sample) ->
      if i > 0 then Format.fprintf ppf "@ ";
      let name = s.name ^ label_str s.labels in
      match s.value with
      | Counter v -> Format.fprintf ppf "counter    %-52s %12d" name v
      | Gauge v -> Format.fprintf ppf "gauge      %-52s %12d" name v
      | Histogram h ->
          Format.fprintf ppf
            "histogram  %-52s count=%d sum=%.3f p50<=%s p95<=%s p99<=%s" name
            h.count h.sum (quantile_le h 0.50) (quantile_le h 0.95)
            (quantile_le h 0.99))
    samples;
  Format.fprintf ppf "@]"
