(** Hierarchical spans: who spent how long inside whom.

    A {e span} is a named interval with a parent; spans sharing a root
    form a trace identified by a [trace_id] string. The serving layer
    opens one root span per computed request (trace id = the request's
    canonical hash prefix, so identical requests trace identically),
    one child per retry attempt, and one grandchild per mapper pipeline
    phase — the paper's CME → affinity → assignment → balance
    breakdown, live instead of re-derived in benches (see DESIGN.md).

    Spans are timed with the monotonic clock and collected into an
    in-memory buffer; {!to_jsonl} drains a sorted JSON-lines view
    ([locmap batch --trace] writes it to a file).

    {b Deterministic-ID mode} ([~deterministic:seed]): span ids are
    small ints assigned in creation order within each trace, automatic
    trace ids are seeded digests, and the exported lines carry {e no
    wall-clock fields at all} (the clock is never read), so a traced
    batch is byte-reproducible — at any domain count, provided each
    trace's spans are created by one domain in a deterministic order
    (true for the serving layer: a request computes on exactly one
    worker) and concurrently-created traces carry caller-supplied
    trace ids (the service derives them from request hashes).
    {!to_jsonl} sorts by (trace id, span id), so the interleaving of
    domains never shows in the output.

    {b Cost}: a disabled tracer ([~enabled:false]) short-circuits
    every operation to a constant — spans become a zero-allocation
    dummy, hooks become [fun _ -> ()] — so instrumentation can stay
    compiled in at ~0% cost (bench/obs_bench.exe measures this).

    {b Thread safety}: {!root}, {!child}, {!finish} and {!to_jsonl}
    are thread-safe (the event buffer is mutex-protected; id counters
    are atomic). A {!phase_hook} closure carries per-request state and
    must be called from one domain at a time — the contract
    [Locmap.Mapper.map]'s [on_phase] already imposes. *)

type t

type span
(** A started (possibly finished) span; immutable handle. *)

val create : ?deterministic:int -> ?enabled:bool -> unit -> t
(** [deterministic] (a seed) selects deterministic-ID mode; [enabled]
    defaults to [true]. The enabled flag is fixed at creation — a
    tracer is either collecting or a no-op for its whole life. *)

val is_enabled : t -> bool

val is_deterministic : t -> bool

val root : t -> ?trace_id:string -> string -> span
(** Starts a new trace. Without [trace_id] an id is generated: seeded
    and reproducible in deterministic mode (per (seed, name,
    occurrence)), unique otherwise. *)

val child : t -> span -> string -> span
(** Starts a span under [parent]; it joins the parent's trace and
    draws the next span id from it. Children of a dummy (disabled-
    tracer) span are dummies. *)

val finish : t -> span -> unit
(** Records the span into the buffer with its duration (zero-cost and
    record-free on a disabled tracer). Finishing a span twice records
    it twice — don't. Parents may finish after their children; order
    of {!finish} calls does not affect the exported nesting. *)

val with_span : t -> ?trace_id:string -> ?parent:span -> string -> (span -> 'a) -> 'a
(** [root]-or-[child], run the function, [finish] — also on
    exception (the exception propagates). *)

val phase_hook : t -> parent:span -> (string -> unit)
(** A closure for [Locmap.Mapper.map]'s [on_phase]: each call records
    one child span named ["phase.<name>"] covering the time since the
    hook's creation (first call) or the previous call — i.e. the phase
    that just ended. Not thread-safe across domains; one hook per
    request. *)

val num_spans : t -> int
(** Recorded (finished) spans so far. *)

val to_jsonl : t -> string
(** One JSON object per line, sorted by (trace id, span id):
    [{"trace":..,"span":n,"parent":n,"name":..}] plus ["start_ns"]
    (epoch-relative) and ["dur_ns"] outside deterministic mode.
    Non-destructive; byte-deterministic in deterministic mode. *)

val clear : t -> unit
(** Drops the recorded spans (id generators keep advancing). *)
