(* Kept byte-compatible with Service.Json printing: the service-side
   tooling parses obs output with that decoder. *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let obj buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      escape buf k;
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}'

let encode_str v =
  let b = Buffer.create (String.length v + 2) in
  escape b v;
  Buffer.contents b

let field_str k v = (k, encode_str v)
let field_int k v = (k, string_of_int v)
let field_float k v = (k, float_repr v)
