type event = {
  e_trace : string;
  e_id : int;
  e_parent : int;  (* 0 = root *)
  e_name : string;
  e_start_ns : int64;  (* epoch-relative; 0 in deterministic mode *)
  e_dur_ns : int64;
}

(* Per-trace identity: the id string plus the next-span-id counter all
   descendants draw from. Atomic for safety, though a request's spans
   are normally created by one worker. *)
type ids = { trace_id : string; next : int Atomic.t }

type span =
  | Dummy  (* disabled tracer: zero-allocation, no-op everywhere *)
  | Span of {
      ids : ids;
      id : int;
      parent : int;
      name : string;
      start_ns : int64;
    }

type t = {
  enabled : bool;
  det : int option;  (* deterministic-ID seed *)
  epoch : int64;  (* subtracted from starts so numbers stay small *)
  lock : Mutex.t;
  mutable events : event list;
  mutable count : int;
  auto : (string, int) Hashtbl.t;  (* auto trace-id occurrence counters *)
  uniq : int Atomic.t;  (* non-deterministic auto-id entropy *)
}

let create ?deterministic ?(enabled = true) () =
  {
    enabled;
    det = deterministic;
    epoch = (if deterministic = None then Clock.now_ns () else 0L);
    lock = Mutex.create ();
    events = [];
    count = 0;
    auto = Hashtbl.create 16;
    uniq = Atomic.make 0;
  }

let is_enabled t = t.enabled
let is_deterministic t = t.det <> None

let now t = match t.det with Some _ -> 0L | None -> Clock.now_ns ()

let auto_trace_id t name =
  match t.det with
  | Some seed ->
      (* Reproducible: a digest of (seed, name, per-name occurrence).
         Single-threaded creation gives a deterministic occurrence
         sequence; concurrent creators should pass explicit ids. *)
      let k =
        Mutex.lock t.lock;
        let k = Option.value ~default:0 (Hashtbl.find_opt t.auto name) in
        Hashtbl.replace t.auto name (k + 1);
        Mutex.unlock t.lock;
        k
      in
      String.sub
        (Digest.to_hex
           (Digest.string (Printf.sprintf "trace|%d|%s|%d" seed name k)))
        0 16
  | None ->
      let n = Atomic.fetch_and_add t.uniq 1 in
      String.sub
        (Digest.to_hex
           (Digest.string
              (Printf.sprintf "trace|%Ld|%s|%d" (Clock.now_ns ()) name n)))
        0 16

let root t ?trace_id name =
  if not t.enabled then Dummy
  else
    let tid =
      match trace_id with Some id -> id | None -> auto_trace_id t name
    in
    Span
      {
        ids = { trace_id = tid; next = Atomic.make 2 };
        id = 1;
        parent = 0;
        name;
        start_ns = now t;
      }

let child t parent name =
  match parent with
  | Dummy -> Dummy
  | Span p ->
      Span
        {
          ids = p.ids;
          id = Atomic.fetch_and_add p.ids.next 1;
          parent = p.id;
          name;
          start_ns = now t;
        }

let record t e =
  Mutex.lock t.lock;
  t.events <- e :: t.events;
  t.count <- t.count + 1;
  Mutex.unlock t.lock

let finish t span =
  match span with
  | Dummy -> ()
  | Span s ->
      let start_rel, dur =
        match t.det with
        | Some _ -> (0L, 0L)
        | None ->
            ( Int64.sub s.start_ns t.epoch,
              Int64.sub (Clock.now_ns ()) s.start_ns )
      in
      record t
        {
          e_trace = s.ids.trace_id;
          e_id = s.id;
          e_parent = s.parent;
          e_name = s.name;
          e_start_ns = start_rel;
          e_dur_ns = dur;
        }

let with_span t ?trace_id ?parent name f =
  if not t.enabled then f Dummy
  else
    let span =
      match parent with
      | Some p -> child t p name
      | None -> root t ?trace_id name
    in
    match f span with
    | r ->
        finish t span;
        r
    | exception e ->
        finish t span;
        raise e

let phase_hook t ~parent =
  match parent with
  | Dummy -> fun (_ : string) -> ()
  | Span p -> (
      match t.det with
      | Some _ ->
          fun phase ->
            record t
              {
                e_trace = p.ids.trace_id;
                e_id = Atomic.fetch_and_add p.ids.next 1;
                e_parent = p.id;
                e_name = "phase." ^ phase;
                e_start_ns = 0L;
                e_dur_ns = 0L;
              }
      | None ->
          (* Per-request state: the previous boundary's timestamp. The
             on_phase contract guarantees single-domain calls. *)
          let last = ref (Clock.now_ns ()) in
          fun phase ->
            let now_ns = Clock.now_ns () in
            record t
              {
                e_trace = p.ids.trace_id;
                e_id = Atomic.fetch_and_add p.ids.next 1;
                e_parent = p.id;
                e_name = "phase." ^ phase;
                e_start_ns = Int64.sub !last t.epoch;
                e_dur_ns = Int64.sub now_ns !last;
              };
            last := now_ns)

let num_spans t =
  Mutex.lock t.lock;
  let n = t.count in
  Mutex.unlock t.lock;
  n

let clear t =
  Mutex.lock t.lock;
  t.events <- [];
  t.count <- 0;
  Mutex.unlock t.lock

let to_jsonl t =
  Mutex.lock t.lock;
  let events = t.events in
  Mutex.unlock t.lock;
  let events =
    List.sort
      (fun a b ->
        match compare a.e_trace b.e_trace with
        | 0 -> compare a.e_id b.e_id
        | c -> c)
      events
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      let base =
        [
          Emit.field_str "trace" e.e_trace;
          Emit.field_int "span" e.e_id;
          Emit.field_int "parent" e.e_parent;
          Emit.field_str "name" e.e_name;
        ]
      in
      let timing =
        match t.det with
        | Some _ -> []
        | None ->
            [
              ("start_ns", Int64.to_string e.e_start_ns);
              ("dur_ns", Int64.to_string e.e_dur_ns);
            ]
      in
      Emit.obj buf (base @ timing);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf
