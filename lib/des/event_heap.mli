(** Binary min-heap of (time, id) events — the ready queue shared by
    every discrete-event loop in the tree.

    Two consumers pull from this one implementation: the manycore
    simulator ([Machine.Engine], which re-exports this module as
    [Machine.Event_heap]) pushes one event per shared-resource
    transaction, and the cluster scheduler ([Sched.Sim]) pushes job
    arrivals and completions. Both care about the same two properties,
    which the direct unit tests ([test/test_event_heap.ml]) pin:

    - {e ordering}: [pop] always returns a minimum-time event, so the
      sequence of popped times is non-decreasing whatever the
      interleaving of pushes and pops;
    - {e determinism}: the heap is a pure sequential structure — the
      same sequence of [push]/[pop] calls always yields the same
      sequence of results. Ties ({e equal} times) are popped in an
      {e unspecified but reproducible} order; a caller that needs a
      total order across simultaneous events must impose its own
      tie-break on the ids it popped (the cluster scheduler drains all
      events of the current time and sorts them by id).

    Specialised to unboxed ints for speed.

    {b Thread safety}: not thread-safe. A heap is private to the event
    loop that allocated it and is mutated without locks. *)

type t

val create : capacity:int -> t
(** Initial capacity hint; the heap grows as needed. *)

val push : t -> time:int -> id:int -> unit
(** Raises [Invalid_argument] on a negative time. *)

val pop : t -> (int * int) option
(** Smallest-time event as [(time, id)], or [None] when empty. *)

val peek_time : t -> int option

val size : t -> int

val is_empty : t -> bool
