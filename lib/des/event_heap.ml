type t = {
  mutable times : int array;
  mutable ids : int array;
  mutable len : int;
}

let create ~capacity =
  let capacity = max 1 capacity in
  { times = Array.make capacity 0; ids = Array.make capacity 0; len = 0 }

let grow t =
  let cap = Array.length t.times * 2 in
  let times = Array.make cap 0 and ids = Array.make cap 0 in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.ids 0 ids 0 t.len;
  t.times <- times;
  t.ids <- ids

let swap t i j =
  let tt = t.times.(i) and ti = t.ids.(i) in
  t.times.(i) <- t.times.(j);
  t.ids.(i) <- t.ids.(j);
  t.times.(j) <- tt;
  t.ids.(j) <- ti

let push t ~time ~id =
  if time < 0 then invalid_arg "Event_heap.push: negative time";
  if t.len = Array.length t.times then grow t;
  t.times.(t.len) <- time;
  t.ids.(t.len) <- id;
  let i = ref t.len in
  t.len <- t.len + 1;
  while !i > 0 && t.times.((!i - 1) / 2) > t.times.(!i) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) and id = t.ids.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.times.(0) <- t.times.(t.len);
      t.ids.(0) <- t.ids.(t.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && t.times.(l) < t.times.(!smallest) then smallest := l;
        if r < t.len && t.times.(r) < t.times.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap t !i !smallest;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (time, id)
  end

let peek_time t = if t.len = 0 then None else Some t.times.(0)
let size t = t.len
let is_empty t = t.len = 0
