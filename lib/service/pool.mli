(** Re-export of {!Par.Pool}, the fixed-size domain pool.

    The pool moved to [lib/par] so the core analysis can shard work
    over domains without depending on the serving stack; the service
    keeps this alias because every serving-layer module (and its
    callers) address the pool as [Service.Pool].

    {b Thread safety}: identical to {!Par.Pool} — the pool is fully
    thread-safe; see its interface for the crash-isolation and
    determinism contracts. *)

include module type of struct
  include Par.Pool
end
