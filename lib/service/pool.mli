(** A fixed-size pool of OCaml 5 domains fed by a mutex-protected work
    queue.

    [create ~num_domains ()] spawns [num_domains] worker domains that
    block on the queue; {!map} fans an array of independent jobs across
    them and collects results in submission order, so callers see a
    parallel [Array.map]. Jobs must be self-contained: they may share
    immutable data and thread-safe structures (e.g. {!Solution_cache})
    but must not submit work back into the same pool (a job waiting on
    its own pool can deadlock once all workers are occupied).

    Exceptions raised by a job are caught on the worker, carried back,
    and re-raised in the calling domain by {!map} after every other job
    of the batch has finished — one failing job never wedges the pool.

    A pool with [num_domains <= 1] spawns no domains at all and runs
    jobs inline in the caller; the sequential and parallel paths execute
    the same code in the same submission order, which is what makes the
    determinism guarantee of {!Api.submit_batch} checkable. *)

type t

val default_domains : unit -> int
(** [min 8 (Domain.recommended_domain_count () - 1)], at least 1 — a
    sensible worker count that leaves the submitting domain a core. *)

val create : ?num_domains:int -> unit -> t
(** Defaults to {!default_domains}. Raises [Invalid_argument] on a
    negative count. *)

val num_domains : t -> int
(** Worker domains actually spawned (0 for an inline pool). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map], submission order preserved. Safe to call
    repeatedly; concurrent calls from different domains interleave
    their jobs in the shared queue. Raises the (first-indexed) job
    exception after the whole batch has drained. *)

val shutdown : t -> unit
(** Drains nothing: waits only for already-running jobs, then joins the
    workers. Idempotent. Calling {!map} after shutdown raises
    [Invalid_argument]. *)
