(** Mapping responses.

    A response pairs a batch-local request id and the request's
    canonical hash with either a {!payload} — the mapper's result,
    reduced to the serializable facts a client needs to apply the
    mapping — or an error message. Payloads are immutable and shared:
    {!Solution_cache} hands the same payload to every request with the
    same hash, and {!to_string} prints deterministically, so equal
    results serialize byte-identically regardless of which domain (or
    which cache hit) produced them. *)

type payload = {
  workload : string;
  num_sets : int;  (** iteration sets in the schedule *)
  estimation : string;  (** estimation mode actually used *)
  moved_fraction : float;  (** sets moved by load balancing *)
  alpha_mean : float;
  mai_error : float;
  cai_error : float;
  overhead_cycles : int;
  region_of_set : int array;  (** post-balance region per set *)
  core_of : int array;  (** chosen core per set — the mapping itself *)
}

type t = {
  id : int;  (** submission index within the batch *)
  hash : string;  (** the request's {!Request.hash} *)
  result : (payload, string) result;
}

val of_info : id:int -> hash:string -> workload:string -> Locmap.Mapper.info -> t
(** Projects a mapper result into a response payload. *)

val error : id:int -> hash:string -> string -> t

val is_ok : t -> bool

val to_json : t -> Json.t
(** [{"id": .., "hash": .., "ok": true, "result": {..}}] on success,
    [{"id": .., "hash": .., "ok": false, "error": ".."}] on failure. *)

val to_string : t -> string
(** One JSON line (no trailing newline), deterministic. *)
