(** Mapping responses.

    A response pairs a batch-local request id and the request's
    canonical hash with either a {!payload} — the mapper's result,
    reduced to the serializable facts a client needs to apply the
    mapping — or a structured {!Fault.t}. Payloads are immutable and
    shared: {!Solution_cache} hands the same payload to every request
    with the same hash, and {!to_string} prints deterministically, so
    equal results serialize byte-identically regardless of which domain
    (or which cache hit) produced them.

    A payload with [degraded = true] came from the cheap fallback
    mapping ([Baselines.Fallback]) after the full pipeline failed;
    [fault] then records what triggered the degradation. Degraded
    payloads are never cached (see {!Api}).

    {b Thread safety}: responses and payloads are immutable, so
    sharing one payload across requests — and across concurrent
    {!Pool} workers — needs no synchronisation. *)

type payload = {
  workload : string;
  num_sets : int;  (** iteration sets in the schedule *)
  estimation : string;
      (** estimation mode actually used; ["fallback"] when degraded *)
  moved_fraction : float;  (** sets moved by load balancing *)
  alpha_mean : float;
  mai_error : float;
  cai_error : float;
  overhead_cycles : int;
  region_of_set : int array;  (** post-balance region per set *)
  core_of : int array;  (** chosen core per set — the mapping itself *)
  degraded : bool;  (** [true] iff this is a fallback mapping *)
  fault : Fault.t option;  (** the fault that triggered degradation *)
}

type t = {
  id : int;  (** submission index within the batch *)
  hash : string;  (** the request's {!Request.hash} *)
  result : (payload, Fault.t) result;
}

val of_info : id:int -> hash:string -> workload:string -> Locmap.Mapper.info -> t
(** Projects a mapper result into a response payload. *)

val of_fallback :
  id:int -> hash:string -> workload:string -> fault:Fault.t ->
  Baselines.Fallback.t -> t
(** A degraded response: the fallback mapping, [degraded = true], and
    the triggering fault. *)

val error : id:int -> hash:string -> Fault.t -> t

val is_ok : t -> bool

val is_degraded : t -> bool
(** [true] for a successful but degraded (fallback) response. *)

val to_json : t -> Json.t
(** [{"id": .., "hash": .., "ok": true, "result": {.., "degraded": b}}]
    on success (plus ["fault"] when degraded),
    [{"id": .., "hash": .., "ok": false, "error": {"kind": ..,
    "message": ..}}] on failure. *)

val to_string : t -> string
(** One JSON line (no trailing newline), deterministic. *)
