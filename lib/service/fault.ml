type t =
  | Invalid_request of string
  | Unknown_workload of string
  | Deadline_exceeded of { phase : string; budget_ms : float }
  | Worker_crashed of string
  | Transient of string
  | Internal of string
  | Overload of { scope : string; limit : int }

exception Error of t

exception Crash = Par.Pool.Crash

let retryable = function Transient _ | Overload _ -> true | _ -> false

let degradable = function
  | Deadline_exceeded _ | Worker_crashed _ | Transient _ | Internal _ -> true
  | Invalid_request _ | Unknown_workload _ | Overload _ -> false

let kind = function
  | Invalid_request _ -> "invalid_request"
  | Unknown_workload _ -> "unknown_workload"
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Worker_crashed _ -> "worker_crashed"
  | Transient _ -> "transient"
  | Internal _ -> "internal"
  | Overload _ -> "overload"

let message = function
  | Invalid_request m | Worker_crashed m | Transient m | Internal m -> m
  | Unknown_workload w ->
      Printf.sprintf "unknown workload %S (see `locmap list')" w
  | Deadline_exceeded { phase; budget_ms } ->
      (* %g keeps the rendering free of locale/precision surprises. *)
      Printf.sprintf "deadline of %gms exceeded at phase %S" budget_ms phase
  | Overload { scope = "draining"; _ } ->
      "server draining: not accepting new requests"
  | Overload { scope = "idle"; limit } ->
      Printf.sprintf
        "connection idle past the %dms deadline; reconnect to retry" limit
  | Overload { scope = "brownout"; _ } ->
      "server browned out (circuit breaker open); retry with backoff"
  | Overload { scope = "quota"; limit } ->
      Printf.sprintf
        "client over its request quota (burst %d); retry with backoff" limit
  | Overload { scope; limit } ->
      Printf.sprintf "server over capacity (%s limit %d); retry with backoff"
        scope limit

let to_string f = kind f ^ ": " ^ message f

let to_json f =
  let common =
    [ ("kind", Json.String (kind f)); ("message", Json.String (message f)) ]
  in
  match f with
  | Deadline_exceeded { phase; budget_ms } ->
      Json.Obj
        (common
        @ [ ("phase", Json.String phase); ("budget_ms", Json.Float budget_ms) ])
  | Overload { scope; limit } ->
      Json.Obj
        (common
        @ [
            ("scope", Json.String scope);
            ("limit", Json.Int limit);
            ("retryable", Json.Bool true);
          ])
  | _ -> Json.Obj common

let of_exn = function
  | Error f -> f
  | Crash m -> Worker_crashed m
  | Invalid_argument m -> Invalid_request ("rejected by the pipeline: " ^ m)
  | Not_found -> Internal "pipeline raised Not_found"
  | Failure m -> Internal m
  | e -> Internal (Printexc.to_string e)

let pp ppf f = Format.pp_print_string ppf (to_string f)
