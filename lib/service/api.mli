(** The service front-end: submit mapping requests, get responses.

    An [Api.t] owns a {!Solution_cache} and a {!Pool}. {!submit_batch}
    looks every request up in the cache, deduplicates the misses by
    canonical hash, fans the unique computations across the pool's
    domains — each worker independently runs workload synthesis, trace
    compilation and the full analyse→assign→balance pipeline
    ({!Locmap.Mapper.map}) — stores the solutions, and assembles
    responses in submission order.

    {b Determinism}: the mapper is deterministic for a given request
    (its RNG is seeded from the machine configuration), cache lookups
    and stores happen on the submitting domain in submission order, and
    workers never share mutable state; so a batch's responses — and the
    cache counters — are byte-identical whether the pool runs 0 or 8
    worker domains, and whether a solution was computed or served from
    cache. The [test/test_service.ml] determinism suite asserts this.

    Failures (unknown workload, invalid configuration, mapper
    exceptions) become [Error] responses; they are reported but never
    cached, and never take down the batch. *)

type t

type stats = {
  served : int;  (** requests answered (ok + error) since creation *)
  errors : int;  (** error responses among them *)
  computed : int;  (** pipeline executions (cache misses actually run) *)
  cache : Solution_cache.counters;
  cache_entries : int;
  cache_capacity : int;
  num_domains : int;  (** worker domains in the pool *)
}

val create : ?cache_capacity:int -> ?num_domains:int -> unit -> t
(** [cache_capacity] defaults to 512 solutions; [num_domains] to 1
    (inline execution, no spawned domains). *)

val submit : t -> Request.t -> Response.t
(** Single-request convenience: a one-element {!submit_batch} (the
    response's [id] is 0). *)

val submit_batch : t -> Request.t array -> Response.t array
(** Responses in submission order, [id] = submission index. *)

val stats : t -> stats

val cache : t -> Response.payload Solution_cache.t
(** The underlying cache (shared, thread-safe). *)

val shutdown : t -> unit
(** Joins the pool's domains. The cache stays readable; further
    submissions raise. *)

val pp_stats : Format.formatter -> stats -> unit
