(** The service front-end: submit mapping requests, get responses.

    An [Api.t] owns a {!Solution_cache}, a {!Pool}, a
    {!Resilience.policy} and (for chaos testing) a
    {!Fault_injection.plan}. {!submit_batch} looks every request up in
    the cache, deduplicates the misses by canonical hash, fans the
    unique computations across the pool's domains — each worker
    independently runs workload synthesis, trace compilation and the
    full analyse→assign→balance pipeline ({!Locmap.Mapper.map}) under
    the resilience wrapper (deadline checks at phase boundaries,
    bounded retry with deterministic backoff for transient faults) —
    stores the solutions, and assembles responses in submission order.

    {b Fault handling}: every failure is a structured {!Fault.t}. A
    worker-domain death ({!Fault.Crash}) fails only its own task — the
    pool records the slot, respawns the worker, and the batch drains.
    With [resilience.degrade = true], degradable faults (deadline,
    crash, exhausted retries, internal) are answered with the cheap
    fallback mapping ([Baselines.Fallback]), flagged
    [degraded = true] and carrying the triggering fault, so callers
    always get {e a} mapping for a well-formed request. Degraded
    solutions are {e never} cached — the fallback must not shadow the
    real solution once the fault clears. Caller errors
    ([Invalid_request], [Unknown_workload]) are never degraded, never
    cached, and never take down the batch.

    {b Determinism}: the mapper is deterministic for a given request,
    cache and degradation passes run on the submitting domain in
    submission order, fault-injection decisions are pure functions of
    [(seed, site, key, index, attempt)], and workers never share
    mutable state; so a batch's responses — including [degraded] flags
    and fault payloads — are byte-identical whether the pool runs 0 or
    8 worker domains. [test/test_resilience.ml] asserts this under
    active fault injection.

    {b Observability}: [create ?metrics] instruments the whole stack
    behind this front-end — the cache ([locmap_cache_*]), the pool
    ([locmap_pool_*]) and the serving layer itself:
    [locmap_requests_served_total], [locmap_requests_computed_total],
    [locmap_responses_error_total], [locmap_responses_degraded_total],
    [locmap_retries_total], [locmap_faults_total{kind}] (counted
    {e before} degradation, so masked deadline expiries and crashes
    stay visible), the [locmap_request_ms] latency histogram and
    [locmap_mapper_phase_ms{phase}] per-pipeline-phase histograms.
    [create ?tracer] opens one root span per {e computed} request
    (trace id = the request hash's first 16 hex chars), a child span
    per resilience attempt, and a ["phase.*"] span per mapper phase.
    Instrumentation never changes responses: in the tracer's
    deterministic-ID mode the exported trace of a batch is itself
    byte-identical at any domain count (trace ids come from request
    hashes, spans within a trace are created by the one worker
    computing it, and the export is sorted). Metrics snapshots are
    {e not} byte-stable — they measure real time and real
    interleavings. *)

type t

type stats = {
  served : int;  (** requests answered (ok + error) since creation *)
  errors : int;  (** error responses among them *)
  computed : int;  (** pipeline executions (cache misses actually run) *)
  degraded : int;  (** fallback-mapping responses served *)
  retried : int;  (** retry attempts spent on transient faults *)
  crashes : int;  (** worker domains that died (and were replaced) *)
  cache : Solution_cache.counters;
  cache_entries : int;
  cache_capacity : int;
  num_domains : int;  (** worker domains in the pool *)
}

val create :
  ?cache_capacity:int ->
  ?num_domains:int ->
  ?resilience:Resilience.policy ->
  ?injection:Fault_injection.plan ->
  ?metrics:Obs.Metrics.t ->
  ?tracer:Obs.Trace.t ->
  unit ->
  t
(** [cache_capacity] defaults to 512 solutions; [num_domains] to 1
    (inline execution, no spawned domains); [resilience] to
    {!Resilience.default} (2 retries, no deadline, no degradation);
    [injection] to {!Fault_injection.none}. [metrics] and [tracer]
    (both off by default) enable the instrumentation described above;
    the caller keeps the handles and drains them
    ({!Obs.Metrics.snapshot}, {!Obs.Trace.to_jsonl}). *)

val submit : t -> Request.t -> Response.t
(** Single-request convenience: a one-element {!submit_batch} (the
    response's [id] is 0). *)

val submit_batch : t -> Request.t array -> Response.t array
(** Responses in submission order, [id] = submission index. *)

val fallback_response :
  t -> id:int -> fault:Fault.t -> Request.t -> Response.t option
(** A degraded response from the cheap fallback mapping, computed
    inline on the calling domain — no pool submission, no admission
    slot, no cache write (degraded payloads must never shadow real
    solutions). This is the brownout path of [Net.Server]: when the
    circuit breaker is open, cache misses are answered with this
    instead of fresh compute. [fault] is recorded as the degradation
    reason inside the payload (typically [Fault.Overload] with scope
    ["brownout"]). [None] when the fallback itself cannot be built
    (unknown workload, invalid machine) — the caller sheds instead.
    Counts toward [served]/[degraded] in {!stats}. *)

val stats : t -> stats

val cache : t -> Response.payload Solution_cache.t
(** The underlying cache (shared, thread-safe). *)

val resilience : t -> Resilience.policy

val shutdown : t -> unit
(** Joins the pool's domains. The cache stays readable; further
    submissions raise. *)

val pp_stats : Format.formatter -> stats -> unit
