(** Minimal JSON values for the serving front-end.

    The request/response wire format of {!Api} is JSON lines; this
    module is the self-contained encoder/decoder it rides on (the
    toolchain carries no JSON library, and the service only needs the
    scalar-heavy subset below).

    Printing is deterministic: object fields keep their construction
    order, floats print with the shortest representation that
    round-trips, and no whitespace is emitted — two structurally equal
    values always print byte-identically, which the batch determinism
    guarantee of {!Api.submit_batch} relies on.

    {b Thread safety}: values are immutable and the encoder/decoder
    keep no shared state; all functions are safe to call from
    concurrent {!Pool} workers without synchronisation. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line, deterministic encoding. *)

val of_string : string -> (t, string) result
(** Parses one JSON value (surrounding whitespace allowed; trailing
    garbage is an error). Errors carry a character offset. *)

(** {2 Accessors}

    All return [Error] with a descriptive message on shape mismatch —
    the request decoder surfaces these verbatim. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] for absent fields or non-objects. *)

val to_int : t -> (int, string) result
(** Accepts [Int] and integral [Float]. *)

val to_float : t -> (float, string) result
(** Accepts [Float] and [Int]. *)

val to_bool : t -> (bool, string) result

val to_str : t -> (string, string) result

val to_list : t -> (t list, string) result

val obj_fields : t -> ((string * t) list, string) result
