(** Structured fault taxonomy for the serving layer.

    Every service-reachable failure is classified into one of seven
    kinds so that callers — and the {!Resilience} machinery — can decide
    mechanically whether to retry, degrade, or report:

    {v
    kind               retryable  degradable  typical source
    -----------------  ---------  ----------  -------------------------------
    Invalid_request    no         no          bad scale/config, parse errors
    Unknown_workload   no         no          name not in Workloads.Registry
    Deadline_exceeded  no         yes         per-request budget ran out
    Worker_crashed     no         yes         a pool domain died mid-task
    Transient          yes        yes         injected/externally flaky step
    Internal           no         yes         invariant breach in the pipeline
    Overload           yes        no          server shed the request (Net)
    v}

    [retryable] faults are worth re-running unchanged (bounded retry with
    backoff); [degradable] faults still admit a useful answer — the cheap
    fallback mapping of {!Baselines.Fallback} — because the request itself
    was well-formed. Caller errors ([Invalid_request],
    [Unknown_workload]) are neither: no amount of retrying fixes them and
    no fallback mapping exists for a workload we cannot even synthesise.
    [Overload] is the odd one out: the request was fine, the {e server}
    was not — [Net.Server] answers it without running (or degrading)
    anything, because the whole point of shedding is that a rejection
    costs microseconds. It is retryable {e by the client, after backing
    off}, ideally against another replica; the server itself never
    retries it.

    {b Raise-site audit} (PR 2). Of the ~89 [failwith]/[invalid_arg]/
    [raise] sites in [lib/], the service-reachable ones funnel through
    {!Api}'s per-request boundary and are converted here via {!of_exn}:
    [Invalid_argument] from workload synthesis, layout, tracing or the
    mapper means the request asked for something impossible (e.g. a scale
    so small a nest is empty) and becomes [Invalid_request]; everything
    else becomes [Internal]. The remaining sites are internal contracts
    that no request can trigger — e.g. [Machine.Addr_map.create] re-raising
    on an invalid config ({!Api} validates the config first),
    [Solution_cache.create: capacity < 1] and [Pool.create: negative
    num_domains] (construction-time caller contracts, not request data),
    and the [assert false] arms in [Api.submit_batch] (every hash in the
    todo list is, by construction, in the solved table). Those keep their
    exceptions and are documented in place.

    {b Thread safety}: faults are immutable values; every function in
    this interface is pure and safe to call from concurrent
    {!Pool} workers without synchronisation. *)

type t =
  | Invalid_request of string
      (** The request itself is malformed (bad scale, bad machine
          geometry, unparseable JSON line). *)
  | Unknown_workload of string
      (** The named workload is not in the registry. *)
  | Deadline_exceeded of { phase : string; budget_ms : float }
      (** The per-request budget ran out; [phase] is the pipeline phase
          boundary at which the overrun was observed. The payload
          deliberately excludes the measured elapsed time so that
          responses stay byte-deterministic. *)
  | Worker_crashed of string
      (** The pool domain running the task died mid-task. *)
  | Transient of string
      (** A transient fault: retrying the same request may succeed. *)
  | Internal of string
      (** An internal invariant failed; the request was well-formed. *)
  | Overload of { scope : string; limit : int }
      (** The server shed this request under load instead of running
          it. [scope] names the exhausted budget — ["inflight"] (the
          admission budget of [Net.Admission]), ["connections"] (the
          acceptor's connection cap) or ["draining"] (the server is
          shutting down) — and [limit] its configured size. The
          payload deliberately excludes momentary occupancy so
          responses stay byte-deterministic. *)

exception Error of t
(** Carrier for aborting a pipeline run from a phase hook or injection
    point; caught at the {!Api} per-request boundary. *)

exception Crash of string
(** Simulated death of the executing domain. Unlike {!Error}, [Crash]
    deliberately escapes the per-task handler so that {!Pool} exercises
    its crash-isolation path (fail the task, respawn the worker). *)

val retryable : t -> bool
val degradable : t -> bool

val kind : t -> string
(** Stable lower-snake identifier ("invalid_request", ...). *)

val message : t -> string

val to_string : t -> string
(** ["kind: message"], deterministic. *)

val to_json : t -> Json.t
(** [{"kind": .., "message": ..}]; [Deadline_exceeded] additionally
    carries ["phase"] and ["budget_ms"], [Overload] carries ["scope"],
    ["limit"] and ["retryable": true] (the client's back-off cue).
    Deterministic. *)

val of_exn : exn -> t
(** Classify an exception escaping the pipeline: [Error f] unwraps to
    [f], [Crash m] to [Worker_crashed m], [Invalid_argument m] to
    [Invalid_request], and anything else to [Internal]. *)

val pp : Format.formatter -> t -> unit
