(** Size-bounded LRU cache of mapping solutions.

    Keys are {!Request.hash} digests; values are whatever solved
    artifact the caller stores (the service stores
    {!Response.payload}s). Capacity is a hard bound on entry count:
    inserting into a full cache evicts the least-recently-used entry.
    Both {!find} and {!add} refresh recency.

    {b Thread safety}: every structural operation takes an internal
    mutex, so a cache may be shared freely across domains. The
    statistics — {!counters}, {!hit_rate}, {!length} — are kept in
    atomics {e outside} that mutex and read lock-free: a stats scrape
    never contends with (or stalls) the serving hot path. The price is
    that a statistics read concurrent with operations sees each atomic
    at its own instant — e.g. a [find] whose structural step has
    completed but whose hit is not yet counted — so cross-counter sums
    are momentarily approximate under concurrency, and exact once the
    operations in flight have returned. A find/add pair is likewise not
    a transaction — under concurrent misses of the same key both
    callers may compute and store (last store wins, which is harmless
    for deterministic solutions). {!Api} avoids even that by
    deduplicating batches before dispatch.

    {b Observability}: pass [?metrics] to {!create} to additionally
    feed [locmap_cache_hits_total], [locmap_cache_misses_total],
    [locmap_cache_insertions_total], [locmap_cache_evictions_total]
    (counters) and [locmap_cache_entries] (gauge). *)

type 'a t

type counters = {
  hits : int;
  misses : int;  (** [find]s that returned [None] *)
  insertions : int;  (** [add]s of a key not already present *)
  evictions : int;  (** entries dropped by capacity pressure *)
}

val create : capacity:int -> ?metrics:Obs.Metrics.t -> unit -> 'a t
(** Raises [Invalid_argument] unless [capacity >= 1]. [metrics]
    registers the cache instruments described above. *)

val capacity : 'a t -> int

val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Counts a hit (and refreshes recency) or a miss. *)

val mem : 'a t -> string -> bool
(** Counter- and recency-neutral membership probe. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts (evicting the LRU entry if full) or — for a present key —
    replaces the value and refreshes recency without counting an
    insertion. *)

val keys_mru : 'a t -> string list
(** Keys from most- to least-recently used (a test/debug view). *)

val counters : 'a t -> counters

val hit_rate : 'a t -> float
(** [hits / (hits + misses)]; 0 before any [find]. *)

val reset_counters : 'a t -> unit

val clear : 'a t -> unit
(** Drops all entries (not counted as evictions) and resets counters. *)
