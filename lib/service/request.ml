type estimation_opt =
  | Auto
  | Cme
  | Inspector
  | Oracle

type options = {
  estimation : estimation_opt;
  fraction : float option;
  balance : bool;
  alpha_override : float option;
  measure_error : bool;
}

let default_options =
  {
    estimation = Auto;
    fraction = None;
    balance = true;
    alpha_override = None;
    measure_error = false;
  }

type t = {
  workload : string;
  scale : float;
  machine : Machine.Config.t;
  options : options;
}

let make ?(scale = 1.0) ?(machine = Machine.Config.default)
    ?(options = default_options) workload =
  { workload; scale; machine; options }

(* ------------------------------------------------------------------ *)
(* Canonical encoding. Floats are encoded by IEEE bit pattern so the
   hash never depends on decimal formatting.                           *)

let estimation_name = function
  | Auto -> "auto"
  | Cme -> "cme"
  | Inspector -> "inspector"
  | Oracle -> "oracle"

let topology_name = function
  | Noc.Topology.Mesh -> "mesh"
  | Noc.Topology.Torus -> "torus"

let mc_placement_repr = function
  | Noc.Topology.Corners -> "corners"
  | Noc.Topology.Edge_midpoints -> "edge-midpoints"
  | Noc.Topology.Custom coords ->
      "custom:"
      ^ String.concat ";"
          (List.map
             (fun (c : Noc.Coord.t) -> Printf.sprintf "%d,%d" c.row c.col)
             coords)

let llc_name = Cache.Llc.to_string

let dram_name = function
  | Mem.Dram.Ddr3_1333 -> "ddr3-1333"
  | Mem.Dram.Ddr4_2400 -> "ddr4-2400"

let gran_name = function
  | Mem.Distribution.Page_grain -> "page"
  | Mem.Distribution.Line_grain -> "line"

let cluster_name = function
  | Mem.Distribution.Mesh_default -> "mesh-default"
  | Mem.Distribution.All_to_all -> "all-to-all"
  | Mem.Distribution.Quadrant -> "quadrant"
  | Mem.Distribution.Snc4 -> "snc4"

let mac_mode_name = function
  | Machine.Config.Nearest_set -> "nearest"
  | Machine.Config.Inverse_distance -> "inverse-distance"

let placement_name = function
  | Machine.Config.Random_balanced -> "random"
  | Machine.Config.Least_loaded -> "least-loaded"

let add_float buf name f =
  Buffer.add_string buf
    (Printf.sprintf "%s=%Lx;" name (Int64.bits_of_float f))

let add_int buf name i = Buffer.add_string buf (Printf.sprintf "%s=%d;" name i)
let add_str buf name s = Buffer.add_string buf (Printf.sprintf "%s=%s;" name s)

let canonical r =
  let m = r.machine in
  let o = r.options in
  let buf = Buffer.create 512 in
  add_str buf "workload" r.workload;
  add_float buf "scale" r.scale;
  add_int buf "rows" m.rows;
  add_int buf "cols" m.cols;
  add_str buf "topology" (topology_name m.topology_kind);
  add_str buf "mc_placement" (mc_placement_repr m.mc_placement);
  add_int buf "region_h" m.region_h;
  add_int buf "region_w" m.region_w;
  add_int buf "l1_size" m.l1_size;
  add_int buf "l1_assoc" m.l1_assoc;
  add_int buf "l1_line" m.l1_line;
  add_int buf "l2_size" m.l2_size;
  add_int buf "l2_assoc" m.l2_assoc;
  add_int buf "l2_line" m.l2_line;
  add_str buf "llc" (llc_name m.llc_org);
  add_int buf "router_overhead" m.router_overhead;
  add_int buf "flit_bytes" m.flit_bytes;
  add_int buf "page_size" m.page_size;
  add_int buf "row_buffer" m.row_buffer;
  add_str buf "dram" (dram_name m.dram_kind);
  add_str buf "mem_gran" (gran_name m.dist.mem_gran);
  add_str buf "llc_gran" (gran_name m.dist.llc_gran);
  add_str buf "cluster" (cluster_name m.dist.cluster);
  add_int buf "l1_hit_lat" m.l1_hit_lat;
  add_int buf "l2_hit_lat" m.l2_hit_lat;
  add_float buf "iter_set_fraction" m.iter_set_fraction;
  add_int buf "mac_tolerance" m.mac_tolerance;
  add_str buf "mac_mode" (mac_mode_name m.mac_mode);
  add_str buf "placement" (placement_name m.placement);
  add_int buf "seed" m.seed;
  add_str buf "estimation" (estimation_name o.estimation);
  (match o.fraction with
  | None -> add_str buf "fraction" "default"
  | Some f -> add_float buf "fraction" f);
  add_str buf "balance" (if o.balance then "true" else "false");
  (match o.alpha_override with
  | None -> add_str buf "alpha" "default"
  | Some a -> add_float buf "alpha" a);
  add_str buf "measure_error" (if o.measure_error then "true" else "false");
  Buffer.contents buf

let equal a b = String.equal (canonical a) (canonical b)

let hash r = Digest.to_hex (Digest.string (canonical r))

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let opt_float_json = function None -> Json.Null | Some f -> Json.Float f

let to_json r =
  let m = r.machine in
  let o = r.options in
  Json.Obj
    [
      ("workload", Json.String r.workload);
      ("scale", Json.Float r.scale);
      ( "machine",
        Json.Obj
          [
            ("rows", Json.Int m.rows);
            ("cols", Json.Int m.cols);
            ("topology", Json.String (topology_name m.topology_kind));
            ("region_h", Json.Int m.region_h);
            ("region_w", Json.Int m.region_w);
            ("llc", Json.String (llc_name m.llc_org));
            ("placement", Json.String (placement_name m.placement));
            ("mac_mode", Json.String (mac_mode_name m.mac_mode));
            ("mac_tolerance", Json.Int m.mac_tolerance);
            ("router_overhead", Json.Int m.router_overhead);
            ("page_size", Json.Int m.page_size);
            ("iter_set_fraction", Json.Float m.iter_set_fraction);
            ("seed", Json.Int m.seed);
          ] );
      ( "options",
        Json.Obj
          [
            ("estimation", Json.String (estimation_name o.estimation));
            ("fraction", opt_float_json o.fraction);
            ("balance", Json.Bool o.balance);
            ("alpha", opt_float_json o.alpha_override);
            ("measure_error", Json.Bool o.measure_error);
          ] );
    ]

let ( let* ) = Result.bind

let in_field name = Result.map_error (fun e -> name ^ ": " ^ e)

let decode_machine json =
  let* fields = Json.obj_fields json in
  let apply m (key, v) =
    let open Machine.Config in
    match key with
    | "rows" ->
        let* i = in_field key (Json.to_int v) in
        Ok { m with rows = i }
    | "cols" ->
        let* i = in_field key (Json.to_int v) in
        Ok { m with cols = i }
    | "topology" -> (
        let* s = in_field key (Json.to_str v) in
        match s with
        | "mesh" -> Ok { m with topology_kind = Noc.Topology.Mesh }
        | "torus" -> Ok { m with topology_kind = Noc.Topology.Torus }
        | s -> Error (Printf.sprintf "topology: unknown kind %S" s))
    | "region_h" ->
        let* i = in_field key (Json.to_int v) in
        Ok { m with region_h = i }
    | "region_w" ->
        let* i = in_field key (Json.to_int v) in
        Ok { m with region_w = i }
    | "llc" ->
        let* s = in_field key (Json.to_str v) in
        let* org = in_field key (Cache.Llc.of_string s) in
        Ok { m with llc_org = org }
    | "placement" -> (
        let* s = in_field key (Json.to_str v) in
        match s with
        | "random" | "random-balanced" ->
            Ok { m with placement = Random_balanced }
        | "least-loaded" -> Ok { m with placement = Least_loaded }
        | s -> Error (Printf.sprintf "placement: unknown policy %S" s))
    | "mac_mode" -> (
        let* s = in_field key (Json.to_str v) in
        match s with
        | "nearest" | "nearest-set" -> Ok { m with mac_mode = Nearest_set }
        | "inverse-distance" -> Ok { m with mac_mode = Inverse_distance }
        | s -> Error (Printf.sprintf "mac_mode: unknown mode %S" s))
    | "mac_tolerance" ->
        let* i = in_field key (Json.to_int v) in
        Ok { m with mac_tolerance = i }
    | "router_overhead" ->
        let* i = in_field key (Json.to_int v) in
        Ok { m with router_overhead = i }
    | "page_size" ->
        let* i = in_field key (Json.to_int v) in
        Ok { m with page_size = i }
    | "iter_set_fraction" ->
        let* f = in_field key (Json.to_float v) in
        Ok { m with iter_set_fraction = f }
    | "seed" ->
        let* i = in_field key (Json.to_int v) in
        Ok { m with seed = i }
    | key -> Error (Printf.sprintf "machine: unknown key %S" key)
  in
  List.fold_left
    (fun acc kv ->
      let* m = acc in
      apply m kv)
    (Ok Machine.Config.default) fields

let decode_options json =
  let* fields = Json.obj_fields json in
  let opt_float key v =
    match v with
    | Json.Null -> Ok None
    | v ->
        let* f = in_field key (Json.to_float v) in
        Ok (Some f)
  in
  let apply o (key, v) =
    match key with
    | "estimation" -> (
        let* s = in_field key (Json.to_str v) in
        match s with
        | "auto" -> Ok { o with estimation = Auto }
        | "cme" -> Ok { o with estimation = Cme }
        | "inspector" -> Ok { o with estimation = Inspector }
        | "oracle" -> Ok { o with estimation = Oracle }
        | s -> Error (Printf.sprintf "estimation: unknown mode %S" s))
    | "fraction" ->
        let* f = opt_float key v in
        Ok { o with fraction = f }
    | "balance" ->
        let* b = in_field key (Json.to_bool v) in
        Ok { o with balance = b }
    | "alpha" ->
        let* a = opt_float key v in
        Ok { o with alpha_override = a }
    | "measure_error" ->
        let* b = in_field key (Json.to_bool v) in
        Ok { o with measure_error = b }
    | key -> Error (Printf.sprintf "options: unknown key %S" key)
  in
  List.fold_left
    (fun acc kv ->
      let* o = acc in
      apply o kv)
    (Ok default_options) fields

let of_json json =
  let* fields = Json.obj_fields json in
  let check_keys =
    List.fold_left
      (fun acc (k, _) ->
        let* () = acc in
        match k with
        | "workload" | "scale" | "machine" | "options" -> Ok ()
        | k -> Error (Printf.sprintf "request: unknown key %S" k))
      (Ok ()) fields
  in
  let* () = check_keys in
  let* workload =
    match Json.member "workload" json with
    | None -> Error "request: missing \"workload\""
    | Some v -> in_field "workload" (Json.to_str v)
  in
  let* scale =
    match Json.member "scale" json with
    | None -> Ok 1.0
    | Some v -> in_field "scale" (Json.to_float v)
  in
  let* machine =
    match Json.member "machine" json with
    | None -> Ok Machine.Config.default
    | Some v -> decode_machine v
  in
  let* options =
    match Json.member "options" json with
    | None -> Ok default_options
    | Some v -> decode_options v
  in
  if scale <= 0. then Error "scale: must be positive"
  else
    let* () =
      Result.map_error
        (fun e -> "machine: " ^ e)
        (Machine.Config.validate machine)
    in
    Ok { workload; scale; machine; options }

let of_string s =
  let* json = Json.of_string s in
  of_json json
