(** Deterministic, seeded fault injection for chaos testing.

    A {e plan} maps injection {e sites} — stable string labels compiled
    into the serving path ("compute", "mapper.partition", ...,
    "mapper.place") — to actions. The pool's task wrapper and the
    mapper's phase hooks consult the plan at each site with the identity
    of the work at hand: the request's canonical [key] (its
    {!Request.hash}), its [index] in the batch's deduplicated todo list,
    and the retry [attempt] number.

    {b Determinism}: every decision is a {e pure function} of
    [(seed, site, key, index, attempt)] — there are no shared counters,
    so the outcome does not depend on which domain runs the task or in
    what order tasks interleave. This is what makes a chaos batch's
    responses byte-identical at 1, 2, 4 and 8 domains (asserted by
    [test/test_resilience.ml]).

    {b Thread safety}: a [plan] is immutable after {!create} and
    consultation allocates only locally; any number of pool domains may
    call {!fire}/{!fault_at} concurrently on the same plan without
    synchronisation. [Slow] sleeps on the calling domain only.

    Action semantics:
    - [Fail_nth (n, f)] injects [f] on the {e first} attempt of the task
      with todo-index [n] — so a retryable fault recovers on retry.
    - [Fail_rate (p, f)] injects [f] with probability [p], decided by a
      seeded coin over [(site, key, attempt)]; [p = 1.0] fires on every
      attempt (the exhausted-retries path), [p = 0.0] never.
    - [Slow ms] sleeps [ms] milliseconds at the site before any fault
      decision — for exercising real deadline overruns.

    A [Worker_crashed] fault is raised as {!Fault.Crash} (simulated
    domain death, handled by {!Pool}); every other fault is raised as
    {!Fault.Error} and handled at the request boundary. *)

type action =
  | Fail_nth of int * Fault.t
  | Fail_rate of float * Fault.t
  | Slow of float  (** milliseconds *)

type plan

val none : plan
(** The empty plan: consultation is a single physical-equality test. *)

val create : ?seed:int -> (string * action) list -> plan
(** [create ~seed bindings] — several actions may share a site; they are
    evaluated in list order, all [Slow]s apply, the first fault wins.
    [seed] defaults to 0. *)

val is_none : plan -> bool
val seed : plan -> int

val fault_at :
  plan -> site:string -> key:string -> index:int -> attempt:int ->
  Fault.t option
(** Pure decision, no sleeping, no raising. *)

val fire : plan -> site:string -> key:string -> index:int -> attempt:int -> unit
(** Applies [Slow] delays, then raises the injected fault, if any, as
    {!Fault.Crash} ([Worker_crashed]) or {!Fault.Error} (others). *)
