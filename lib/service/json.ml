type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal representation that round-trips, so structurally
   equal values always print byte-identically. *)
let float_repr f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the input string.                   *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Parse (!pos, msg)) in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   (* Keep it simple: encode the code point as UTF-8. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end;
                   pos := !pos + 5
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            loop ()
        | c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let tok = String.sub s start (!pos - start) in
    if String.contains tok '.' || String.contains tok 'e'
       || String.contains tok 'E'
    then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec loop () =
            items := parse_value () :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          loop ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          loop ();
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Parse (at, msg) ->
      Error (Printf.sprintf "JSON error at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let kind_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "array"
  | Obj _ -> "object"

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function
  | Int i -> Ok i
  | Float f when Float.is_integer f -> Ok (int_of_float f)
  | v -> Error (Printf.sprintf "expected integer, got %s" (kind_name v))

let to_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | v -> Error (Printf.sprintf "expected number, got %s" (kind_name v))

let to_bool = function
  | Bool b -> Ok b
  | v -> Error (Printf.sprintf "expected bool, got %s" (kind_name v))

let to_str = function
  | String s -> Ok s
  | v -> Error (Printf.sprintf "expected string, got %s" (kind_name v))

let to_list = function
  | List xs -> Ok xs
  | v -> Error (Printf.sprintf "expected array, got %s" (kind_name v))

let obj_fields = function
  | Obj fields -> Ok fields
  | v -> Error (Printf.sprintf "expected object, got %s" (kind_name v))
