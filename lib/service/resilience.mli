(** Per-request resilience policy: deadlines, bounded retry with
    deterministic backoff, and graceful degradation.

    A {!policy} travels with an {!Api} instance and governs every
    request it serves:

    - {b Deadline}: [deadline_ms] is a monotonic-clock budget for the
      whole request, retries included. The budget is checked at pipeline
      {e phase boundaries} (the [Mapper.map ~on_phase] hooks) — a phase
      in flight is never interrupted, so an overrun is observed within
      one phase boundary of the budget. Overruns raise
      [Fault.Deadline_exceeded] naming the phase.
    - {b Retry}: [Fault.Transient] failures are re-run up to
      [max_retries] times with exponential backoff
      ([backoff_base_ms * backoff_multiplier^attempt]) plus a
      {e deterministic} seeded jitter in [±jitter] of the backoff,
      derived from [(seed, key, attempt)] — no RNG state is shared
      between domains, and the same request backs off identically on
      every run. A request whose deadline has already expired is not
      retried.
    - {b Degradation}: with [degrade = true], a request that still fails
      with a degradable fault (see {!Fault.degradable}) is answered with
      the cheap fallback mapping of [Baselines.Fallback], flagged
      [degraded = true] and carrying the triggering fault. Degraded
      solutions are never cached.

    {b Thread safety}: policies are immutable; {!Deadline.t} values are
    confined to the single task that created them; {!with_retries} keeps
    its state on the calling domain's stack. *)

type policy = {
  deadline_ms : float option;  (** [None] = no deadline *)
  max_retries : int;  (** additional attempts after the first *)
  backoff_base_ms : float;
  backoff_multiplier : float;
  jitter : float;  (** fraction of the backoff, in [0, 1] *)
  seed : int;  (** jitter seed *)
  degrade : bool;  (** fall back to a cheap mapping on degradable faults *)
}

val default : policy
(** No deadline, 2 retries, 5 ms base backoff doubling per attempt,
    ±50% jitter, seed 0, [degrade = false]. *)

val off : policy
(** No deadline, no retries, no degradation — {!Api} short-circuits the
    whole resilience wrapper for this policy, which is what the
    [resilience_bench] overhead comparison measures against. *)

val is_off : policy -> bool

val now_ms : unit -> float
(** Monotonic milliseconds (CLOCK_MONOTONIC via bechamel); meaningful
    only as a difference. *)

val backoff_ms : policy -> key:string -> attempt:int -> float
(** Deterministic backoff before retry [attempt] (0-based): exponential
    plus seeded jitter, never negative. *)

module Deadline : sig
  type t

  val start : policy -> t
  (** Reads the monotonic clock once; a [None] budget never expires. *)

  val expired : t -> bool

  val check : t -> phase:string -> unit
  (** Raises [Fault.Error (Deadline_exceeded {phase; budget_ms})] if the
      budget has run out. The fault's payload carries only [phase] and
      the configured budget — never the measured elapsed time — so that
      responses stay byte-deterministic. *)
end

val with_retries :
  ?sleep:(float -> unit) ->
  policy ->
  key:string ->
  deadline:Deadline.t ->
  (attempt:int -> ('a, Fault.t) result) ->
  ('a, Fault.t) result * int
(** [with_retries policy ~key ~deadline f] runs [f ~attempt:0] and
    re-runs it (after sleeping the backoff — [sleep] defaults to
    [Unix.sleepf] of seconds, injectable for tests) while the result is
    a retryable fault, the attempt budget lasts, and the deadline has
    not expired. Returns the final result and the number of retries
    actually performed. Exceptions from [f] propagate — in particular
    {!Fault.Crash} must reach the pool's crash handler. *)
