(* Mapper pipeline phases, in [on_phase] order, and the fault kinds of
   [Fault.kind] — both closed sets, so every (name, label) pair is
   registered once at [create] and the serving path only ever does list
   lookups on tiny assoc lists. *)
let phase_names = [ "partition"; "summarise"; "assign"; "balance"; "place" ]

let fault_kinds =
  [
    "invalid_request";
    "unknown_workload";
    "deadline_exceeded";
    "worker_crashed";
    "transient";
    "internal";
    "overload";
  ]

type instruments = {
  im : Obs.Metrics.t;
  i_served : Obs.Metrics.counter;
  i_computed : Obs.Metrics.counter;
  i_errors : Obs.Metrics.counter;
  i_degraded : Obs.Metrics.counter;
  i_retries : Obs.Metrics.counter;
  i_request_ms : Obs.Metrics.histogram;
  i_phase_ms : (string * Obs.Metrics.histogram) list;
  i_faults : (string * Obs.Metrics.counter) list;
}

let instruments im =
  {
    im;
    i_served =
      Obs.Metrics.counter im ~help:"requests answered (ok or error)"
        "locmap_requests_served_total";
    i_computed =
      Obs.Metrics.counter im
        ~help:"pipeline executions (cache misses actually run)"
        "locmap_requests_computed_total";
    i_errors =
      Obs.Metrics.counter im ~help:"error responses"
        "locmap_responses_error_total";
    i_degraded =
      Obs.Metrics.counter im ~help:"fallback-mapping responses"
        "locmap_responses_degraded_total";
    i_retries =
      Obs.Metrics.counter im ~help:"retry attempts spent on transient faults"
        "locmap_retries_total";
    i_request_ms =
      Obs.Metrics.histogram im ~help:"end-to-end compute latency (ms)"
        "locmap_request_ms";
    i_phase_ms =
      List.map
        (fun p ->
          ( p,
            Obs.Metrics.histogram im ~labels:[ ("phase", p) ]
              ~help:"mapper pipeline phase latency (ms)"
              "locmap_mapper_phase_ms" ))
        phase_names;
    i_faults =
      List.map
        (fun k ->
          ( k,
            Obs.Metrics.counter im ~labels:[ ("kind", k) ]
              ~help:"faults by kind (final per attempt sequence)"
              "locmap_faults_total" ))
        fault_kinds;
  }

type t = {
  cache : Response.payload Solution_cache.t;
  pool : Pool.t;
  resilience : Resilience.policy;
  injection : Fault_injection.plan;
  obs : instruments option;
  tracer : Obs.Trace.t option;
  stats_lock : Mutex.t;
  mutable served : int;
  mutable errors : int;
  mutable computed : int;
  mutable degraded : int;
  mutable retried : int;
}

type stats = {
  served : int;
  errors : int;
  computed : int;
  degraded : int;
  retried : int;
  crashes : int;
  cache : Solution_cache.counters;
  cache_entries : int;
  cache_capacity : int;
  num_domains : int;
}

let create ?(cache_capacity = 512) ?(num_domains = 1)
    ?(resilience = Resilience.default) ?(injection = Fault_injection.none)
    ?metrics ?tracer () =
  {
    cache = Solution_cache.create ~capacity:cache_capacity ?metrics ();
    pool = Pool.create ~num_domains ?metrics ();
    resilience;
    injection;
    obs = Option.map instruments metrics;
    tracer;
    stats_lock = Mutex.create ();
    served = 0;
    errors = 0;
    computed = 0;
    degraded = 0;
    retried = 0;
  }

let cache (t : t) = t.cache
let resilience (t : t) = t.resilience

(* One full pipeline run, on whichever domain the pool schedules it.
   Everything here is freshly allocated per call — see the thread-safety
   notes in [Locmap.Mapper] — so workers share nothing mutable. *)
let plain_compute ?metrics ?on_phase (req : Request.t) :
    (Response.payload, Fault.t) result =
  match Workloads.Registry.find_opt req.workload with
  | None -> Error (Fault.Unknown_workload req.workload)
  | Some entry -> (
      if req.scale <= 0. then
        Error (Fault.Invalid_request "scale must be positive")
      else
        match Machine.Config.validate req.machine with
        | Error e -> Error (Fault.Invalid_request ("invalid machine config: " ^ e))
        | Ok () -> (
            try
              let prog = entry.program ~scale:req.scale () in
              (* Layouts are 8 KB-aligned, so the default page size keeps
                 them page-aligned for any configured size below 8 KB —
                 same convention as [Harness.Experiment.prepare]. *)
              let layout =
                Ir.Layout.allocate
                  ~page_size:Machine.Config.default.Machine.Config.page_size
                  prog
              in
              let trace = Ir.Trace.create prog layout in
              let o = req.options in
              let estimation =
                match o.estimation with
                | Request.Auto -> None
                | Request.Cme -> Some Locmap.Mapper.Cme_estimate
                | Request.Inspector -> Some Locmap.Mapper.Inspector
                | Request.Oracle -> Some Locmap.Mapper.Oracle
              in
              let info =
                Locmap.Mapper.map ?estimation ?fraction:o.fraction
                  ~measure_error:o.measure_error ~balance:o.balance
                  ?alpha_override:o.alpha_override ?on_phase ?metrics
                  req.machine trace
              in
              let r =
                Response.of_info ~id:0 ~hash:"" ~workload:req.workload info
              in
              match r.Response.result with
              | Ok p -> Ok p
              | Error _ -> assert false
            with
            | Fault.Crash _ as c ->
                (* Simulated domain death must reach the pool's crash
                   handler, not the per-request classifier. *)
                raise c
            | e -> Error (Fault.of_exn e)))

(* The obs side of a phase boundary: a child span per phase under
   [parent] (when tracing) plus a per-phase duration observation (when
   metrics are on). Returns [None] when both sides are off so the
   existing on_phase stays untouched — and so does the bypass path's
   [?on_phase:None]. Never raises and never affects results. *)
let obs_phase_hook (t : t) ~parent =
  let span_hook =
    match (t.tracer, parent) with
    | Some tr, Some sp when Obs.Trace.is_enabled tr ->
        Some (Obs.Trace.phase_hook tr ~parent:sp)
    | _ -> None
  in
  let hist_hook =
    match t.obs with
    | Some i when Obs.Metrics.is_enabled i.im ->
        let last = ref (Obs.Clock.now_ns ()) in
        Some
          (fun phase ->
            let now = Obs.Clock.now_ns () in
            (match List.assoc_opt phase i.i_phase_ms with
            | Some h ->
                Obs.Metrics.observe h (Obs.Clock.ns_to_ms (Int64.sub now !last))
            | None -> ());
            last := now)
    | _ -> None
  in
  match (span_hook, hist_hook) with
  | None, None -> None
  | sh, hh ->
      Some
        (fun phase ->
          (match sh with Some f -> f phase | None -> ());
          match hh with Some f -> f phase | None -> ())

(* The resilience wrapper: injection points, per-request monotonic
   deadline checked at phase boundaries, bounded retry for transient
   faults. Returns the final result plus the retries spent. When the
   policy is off and no plan is loaded this is bypassed entirely (obs
   phase hooks still fire there when on), so the no-fault,
   no-observability overhead is one branch per side. [span] is the
   request's root span (None when not tracing); each attempt gets a
   child span, and phase spans hang off the attempt. *)
let compute (t : t) ~index ~hash ~span (req : Request.t) :
    (Response.payload, Fault.t) result * int =
  let metrics = Option.map (fun i -> i.im) t.obs in
  if Resilience.is_off t.resilience && Fault_injection.is_none t.injection
  then
    let r =
      match obs_phase_hook t ~parent:span with
      | None -> plain_compute ?metrics req
      | Some on_phase -> plain_compute ?metrics ~on_phase req
    in
    (r, 0)
  else
    let deadline = Resilience.Deadline.start t.resilience in
    Resilience.with_retries t.resilience ~key:hash ~deadline (fun ~attempt ->
        let attempt_body attempt_span =
          try
            Fault_injection.fire t.injection ~site:"compute" ~key:hash ~index
              ~attempt;
            Resilience.Deadline.check deadline ~phase:"start";
            let obs_hook = obs_phase_hook t ~parent:attempt_span in
            let on_phase phase =
              (* Obs first: the phase just ended, so its span/duration
                 is recorded even when injection or the deadline then
                 kills the attempt. *)
              (match obs_hook with Some f -> f phase | None -> ());
              Fault_injection.fire t.injection ~site:("mapper." ^ phase)
                ~key:hash ~index ~attempt;
              Resilience.Deadline.check deadline ~phase
            in
            plain_compute ?metrics ~on_phase req
          with
          | Fault.Crash _ as c -> raise c
          | Fault.Error f -> Error f
        in
        match (t.tracer, span) with
        | Some tr, Some root when Obs.Trace.is_enabled tr ->
            Obs.Trace.with_span tr ~parent:root "attempt" (fun sp ->
                attempt_body (Some sp))
        | _ -> attempt_body None)

(* Graceful degradation: a cheap, analysis-free fallback mapping for a
   well-formed request whose pipeline run failed. Runs on the
   submitting domain (it is O(sets), no trace or replay), so the
   degraded path is deterministic regardless of pool width. *)
let degrade (req : Request.t) ~hash fault :
    (Response.payload, Fault.t) result =
  match Workloads.Registry.find_opt req.workload with
  | None -> Error fault
  | Some entry -> (
      try
        let prog = entry.program ~scale:req.scale () in
        let fb =
          Baselines.Fallback.map ?fraction:req.options.Request.fraction
            req.machine prog
        in
        let r =
          Response.of_fallback ~id:0 ~hash ~workload:req.workload ~fault fb
        in
        match r.Response.result with
        | Ok p -> Ok p
        | Error _ -> assert false
      with Fault.Error _ | Invalid_argument _ | Not_found | Failure _ ->
        (* The fallback itself failed: report the original fault. *)
        Error fault)

let submit_batch (t : t) (reqs : Request.t array) : Response.t array =
  let n = Array.length reqs in
  let hashes = Array.map Request.hash reqs in
  (* Pass 1 (sequential, submitting domain): cache lookups, and the
     first-occurrence list of hashes that need computing. Duplicates
     within the batch are coalesced into one computation. The todo
     index [k] is part of each task's identity for fault injection —
     and is deterministic, because it depends only on submission
     order. *)
  let cached = Array.make n None in
  let todo = ref [] in
  let pending = Hashtbl.create 16 in
  Array.iteri
    (fun i h ->
      match Solution_cache.find t.cache h with
      | Some p -> cached.(i) <- Some p
      | None ->
          if not (Hashtbl.mem pending h) then begin
            Hashtbl.add pending h ();
            todo := (i, h) :: !todo
          end)
    hashes;
  let todo =
    Array.of_list (List.rev !todo) |> Array.mapi (fun k (i, h) -> (k, i, h))
  in
  (* Pass 2: fan the unique misses across the pool. [try_map] isolates
     every task failure — including a worker-domain crash — to that
     task's own slot, so the batch always drains. Each computed request
     gets a root span whose trace id is its canonical hash prefix —
     caller-supplied and order-independent, so traces stay
     byte-reproducible in deterministic mode at any domain count — and
     its end-to-end latency observed into the request histogram. *)
  let run_one (k, i, h) =
    let computed () =
      match t.tracer with
      | Some tr when Obs.Trace.is_enabled tr ->
          Obs.Trace.with_span tr ~trace_id:(String.sub h 0 16) "request"
            (fun root -> compute t ~index:k ~hash:h ~span:(Some root) reqs.(i))
      | _ -> compute t ~index:k ~hash:h ~span:None reqs.(i)
    in
    match t.obs with
    | Some inst -> Obs.Metrics.time inst.i_request_ms computed
    | None -> computed ()
  in
  let raw = Pool.try_map t.pool run_one todo in
  (* Pass 3 (sequential again): classify crashes, degrade if the policy
     says so, store cacheable solutions, and assemble responses in
     submission order. Degraded payloads are never cached: the cheap
     fallback must not shadow the real solution once the fault clears. *)
  let retried = ref 0 in
  let solved = Hashtbl.create 16 in
  Array.iter
    (fun (k, i, h) ->
      let result =
        match raw.(k) with
        | Ok (res, retries) ->
            retried := !retried + retries;
            res
        | Error e -> Error (Fault.of_exn e)
      in
      (* Fault accounting happens before degradation, so the faults
         that degradation masks (deadline expiries, crashes) are still
         visible in locmap_faults_total. *)
      (match (result, t.obs) with
      | Error f, Some inst -> (
          match List.assoc_opt (Fault.kind f) inst.i_faults with
          | Some c -> Obs.Metrics.incr c
          | None -> ())
      | _ -> ());
      let result =
        match result with
        | Ok _ as ok -> ok
        | Error f when t.resilience.Resilience.degrade && Fault.degradable f
          ->
            degrade reqs.(i) ~hash:h f
        | Error _ as err -> err
      in
      (match result with
      | Ok p when not p.Response.degraded -> Solution_cache.add t.cache h p
      | Ok _ | Error _ -> ());
      Hashtbl.replace solved h result)
    todo;
  let responses =
    Array.init n (fun i ->
        match cached.(i) with
        | Some p -> { Response.id = i; hash = hashes.(i); result = Ok p }
        | None -> (
            match Hashtbl.find_opt solved hashes.(i) with
            | Some r -> { Response.id = i; hash = hashes.(i); result = r }
            | None ->
                (* Every non-cached hash was queued in pass 1 and solved
                   in pass 3; unreachable by construction. *)
                assert false))
  in
  let errors = ref 0 and degraded = ref 0 in
  Array.iter
    (fun r ->
      if not (Response.is_ok r) then incr errors;
      if Response.is_degraded r then incr degraded)
    responses;
  Mutex.lock t.stats_lock;
  t.served <- t.served + n;
  t.errors <- t.errors + !errors;
  t.computed <- t.computed + Array.length todo;
  t.degraded <- t.degraded + !degraded;
  t.retried <- t.retried + !retried;
  Mutex.unlock t.stats_lock;
  (match t.obs with
  | Some inst ->
      Obs.Metrics.add inst.i_served n;
      Obs.Metrics.add inst.i_computed (Array.length todo);
      Obs.Metrics.add inst.i_errors !errors;
      Obs.Metrics.add inst.i_degraded !degraded;
      Obs.Metrics.add inst.i_retries !retried
  | None -> ());
  responses

let submit (t : t) req =
  match submit_batch t [| req |] with
  | [| r |] -> r
  | _ -> assert false

(* The brownout escape hatch: a degraded response without touching the
   pool or the cache. Runs entirely on the calling domain ([degrade] is
   O(sets)); degraded payloads are never cached, so a browned-out
   server cannot poison the cache with fallback mappings. *)
let fallback_response (t : t) ~id ~fault (req : Request.t) :
    Response.t option =
  let hash = Request.hash req in
  match degrade req ~hash fault with
  | Error _ -> None
  | Ok p ->
      Mutex.lock t.stats_lock;
      t.served <- t.served + 1;
      t.degraded <- t.degraded + 1;
      Mutex.unlock t.stats_lock;
      (match t.obs with
      | Some inst ->
          Obs.Metrics.add inst.i_served 1;
          Obs.Metrics.add inst.i_degraded 1
      | None -> ());
      Some { Response.id; hash; result = Ok p }

let stats (t : t) =
  Mutex.lock t.stats_lock;
  let served = t.served
  and errors = t.errors
  and computed = t.computed
  and degraded = t.degraded
  and retried = t.retried in
  Mutex.unlock t.stats_lock;
  {
    served;
    errors;
    computed;
    degraded;
    retried;
    crashes = Pool.crashes t.pool;
    cache = Solution_cache.counters t.cache;
    cache_entries = Solution_cache.length t.cache;
    cache_capacity = Solution_cache.capacity t.cache;
    num_domains = Pool.num_domains t.pool;
  }

let shutdown (t : t) = Pool.shutdown t.pool

let pp_stats ppf s =
  let total = s.cache.hits + s.cache.misses in
  let rate =
    if total = 0 then 0.
    else 100. *. float_of_int s.cache.hits /. float_of_int total
  in
  Format.fprintf ppf
    "@[<v>served: %d (%d errors, %d degraded, %d computed, %d retries, %d \
     worker crashes)@ cache: %d/%d entries, %d hits / %d misses (%.1f%% hit \
     rate), %d evictions@ domains: %d@]"
    s.served s.errors s.degraded s.computed s.retried s.crashes
    s.cache_entries s.cache_capacity s.cache.hits s.cache.misses rate
    s.cache.evictions s.num_domains
