type t = {
  cache : Response.payload Solution_cache.t;
  pool : Pool.t;
  stats_lock : Mutex.t;
  mutable served : int;
  mutable errors : int;
  mutable computed : int;
}

type stats = {
  served : int;
  errors : int;
  computed : int;
  cache : Solution_cache.counters;
  cache_entries : int;
  cache_capacity : int;
  num_domains : int;
}

let create ?(cache_capacity = 512) ?(num_domains = 1) () =
  {
    cache = Solution_cache.create ~capacity:cache_capacity ();
    pool = Pool.create ~num_domains ();
    stats_lock = Mutex.create ();
    served = 0;
    errors = 0;
    computed = 0;
  }

let cache (t : t) = t.cache

(* One full pipeline run, on whichever domain the pool schedules it.
   Everything here is freshly allocated per call — see the thread-safety
   notes in [Locmap.Mapper] — so workers share nothing mutable. *)
let compute (req : Request.t) : (Response.payload, string) result =
  match Workloads.Registry.find_opt req.workload with
  | None ->
      Error
        (Printf.sprintf "unknown workload %S (see `locmap list')" req.workload)
  | Some entry -> (
      match Machine.Config.validate req.machine with
      | Error e -> Error ("invalid machine config: " ^ e)
      | Ok () -> (
          try
            let prog = entry.program ~scale:req.scale () in
            (* Layouts are 8 KB-aligned, so the default page size keeps
               them page-aligned for any configured size below 8 KB —
               same convention as [Harness.Experiment.prepare]. *)
            let layout =
              Ir.Layout.allocate
                ~page_size:Machine.Config.default.Machine.Config.page_size prog
            in
            let trace = Ir.Trace.create prog layout in
            let o = req.options in
            let estimation =
              match o.estimation with
              | Request.Auto -> None
              | Request.Cme -> Some Locmap.Mapper.Cme_estimate
              | Request.Inspector -> Some Locmap.Mapper.Inspector
              | Request.Oracle -> Some Locmap.Mapper.Oracle
            in
            let info =
              Locmap.Mapper.map ?estimation ?fraction:o.fraction
                ~measure_error:o.measure_error ~balance:o.balance
                ?alpha_override:o.alpha_override req.machine trace
            in
            let r =
              Response.of_info ~id:0 ~hash:"" ~workload:req.workload info
            in
            match r.Response.result with
            | Ok p -> Ok p
            | Error _ -> assert false
          with
          | Invalid_argument msg -> Error ("mapper rejected request: " ^ msg)
          | Not_found -> Error "mapper raised Not_found"))

let submit_batch (t : t) (reqs : Request.t array) : Response.t array =
  let n = Array.length reqs in
  let hashes = Array.map Request.hash reqs in
  (* Pass 1 (sequential, submitting domain): cache lookups, and the
     first-occurrence list of hashes that need computing. Duplicates
     within the batch are coalesced into one computation. *)
  let cached = Array.make n None in
  let todo = ref [] in
  let pending = Hashtbl.create 16 in
  Array.iteri
    (fun i h ->
      match Solution_cache.find t.cache h with
      | Some p -> cached.(i) <- Some p
      | None ->
          if not (Hashtbl.mem pending h) then begin
            Hashtbl.add pending h ();
            todo := (i, h) :: !todo
          end)
    hashes;
  let todo = Array.of_list (List.rev !todo) in
  (* Pass 2: fan the unique misses across the pool. *)
  let results = Pool.map t.pool (fun (i, _h) -> compute reqs.(i)) todo in
  (* Pass 3 (sequential again): store solutions and assemble responses
     in submission order. *)
  let solved = Hashtbl.create 16 in
  Array.iteri
    (fun k (_, h) ->
      (match results.(k) with
      | Ok p -> Solution_cache.add t.cache h p
      | Error _ -> ());
      Hashtbl.replace solved h results.(k))
    todo;
  let responses =
    Array.init n (fun i ->
        match cached.(i) with
        | Some p -> { Response.id = i; hash = hashes.(i); result = Ok p }
        | None -> (
            match Hashtbl.find_opt solved hashes.(i) with
            | Some r -> { Response.id = i; hash = hashes.(i); result = r }
            | None -> assert false))
  in
  let errors =
    Array.fold_left
      (fun acc r -> if Response.is_ok r then acc else acc + 1)
      0 responses
  in
  Mutex.lock t.stats_lock;
  t.served <- t.served + n;
  t.errors <- t.errors + errors;
  t.computed <- t.computed + Array.length todo;
  Mutex.unlock t.stats_lock;
  responses

let submit (t : t) req =
  match submit_batch t [| req |] with
  | [| r |] -> r
  | _ -> assert false

let stats (t : t) =
  Mutex.lock t.stats_lock;
  let served = t.served and errors = t.errors and computed = t.computed in
  Mutex.unlock t.stats_lock;
  {
    served;
    errors;
    computed;
    cache = Solution_cache.counters t.cache;
    cache_entries = Solution_cache.length t.cache;
    cache_capacity = Solution_cache.capacity t.cache;
    num_domains = Pool.num_domains t.pool;
  }

let shutdown (t : t) = Pool.shutdown t.pool

let pp_stats ppf s =
  let total = s.cache.hits + s.cache.misses in
  let rate =
    if total = 0 then 0. else 100. *. float_of_int s.cache.hits /. float_of_int total
  in
  Format.fprintf ppf
    "@[<v>served: %d (%d errors, %d computed)@ cache: %d/%d entries, %d \
     hits / %d misses (%.1f%% hit rate), %d evictions@ domains: %d@]"
    s.served s.errors s.computed s.cache_entries s.cache_capacity s.cache.hits
    s.cache.misses rate s.cache.evictions s.num_domains
