type payload = {
  workload : string;
  num_sets : int;
  estimation : string;
  moved_fraction : float;
  alpha_mean : float;
  mai_error : float;
  cai_error : float;
  overhead_cycles : int;
  region_of_set : int array;
  core_of : int array;
}

type t = {
  id : int;
  hash : string;
  result : (payload, string) result;
}

let estimation_name = function
  | Locmap.Mapper.Cme_estimate -> "cme"
  | Locmap.Mapper.Inspector -> "inspector"
  | Locmap.Mapper.Oracle -> "oracle"

let of_info ~id ~hash ~workload (info : Locmap.Mapper.info) =
  {
    id;
    hash;
    result =
      Ok
        {
          workload;
          num_sets = Array.length info.sets;
          estimation = estimation_name info.estimation;
          moved_fraction = info.moved_fraction;
          alpha_mean = info.alpha_mean;
          mai_error = info.mai_error;
          cai_error = info.cai_error;
          overhead_cycles = info.overhead_cycles;
          region_of_set = info.region_of_set;
          core_of = info.schedule.Machine.Schedule.core_of;
        };
  }

let error ~id ~hash msg = { id; hash; result = Error msg }

let is_ok t = Result.is_ok t.result

let int_array a = Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))

let to_json t =
  let common = [ ("id", Json.Int t.id); ("hash", Json.String t.hash) ] in
  match t.result with
  | Ok p ->
      Json.Obj
        (common
        @ [
            ("ok", Json.Bool true);
            ( "result",
              Json.Obj
                [
                  ("workload", Json.String p.workload);
                  ("num_sets", Json.Int p.num_sets);
                  ("estimation", Json.String p.estimation);
                  ("moved_fraction", Json.Float p.moved_fraction);
                  ("alpha_mean", Json.Float p.alpha_mean);
                  ("mai_error", Json.Float p.mai_error);
                  ("cai_error", Json.Float p.cai_error);
                  ("overhead_cycles", Json.Int p.overhead_cycles);
                  ("region_of_set", int_array p.region_of_set);
                  ("core_of", int_array p.core_of);
                ] );
          ])
  | Error e ->
      Json.Obj (common @ [ ("ok", Json.Bool false); ("error", Json.String e) ])

let to_string t = Json.to_string (to_json t)
