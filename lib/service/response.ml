type payload = {
  workload : string;
  num_sets : int;
  estimation : string;
  moved_fraction : float;
  alpha_mean : float;
  mai_error : float;
  cai_error : float;
  overhead_cycles : int;
  region_of_set : int array;
  core_of : int array;
  degraded : bool;
  fault : Fault.t option;
}

type t = {
  id : int;
  hash : string;
  result : (payload, Fault.t) result;
}

let estimation_name = function
  | Locmap.Mapper.Cme_estimate -> "cme"
  | Locmap.Mapper.Inspector -> "inspector"
  | Locmap.Mapper.Oracle -> "oracle"

let of_info ~id ~hash ~workload (info : Locmap.Mapper.info) =
  {
    id;
    hash;
    result =
      Ok
        {
          workload;
          num_sets = Array.length info.sets;
          estimation = estimation_name info.estimation;
          moved_fraction = info.moved_fraction;
          alpha_mean = info.alpha_mean;
          mai_error = info.mai_error;
          cai_error = info.cai_error;
          overhead_cycles = info.overhead_cycles;
          region_of_set = info.region_of_set;
          core_of = info.schedule.Machine.Schedule.core_of;
          degraded = false;
          fault = None;
        };
  }

let of_fallback ~id ~hash ~workload ~fault (fb : Baselines.Fallback.t) =
  {
    id;
    hash;
    result =
      Ok
        {
          workload;
          num_sets = Array.length fb.Baselines.Fallback.sets;
          estimation = "fallback";
          moved_fraction = 0.;
          alpha_mean = 0.;
          mai_error = 0.;
          cai_error = 0.;
          overhead_cycles = 0;
          region_of_set = fb.Baselines.Fallback.region_of_set;
          core_of = fb.Baselines.Fallback.core_of;
          degraded = true;
          fault = Some fault;
        };
  }

let error ~id ~hash fault = { id; hash; result = Error fault }

let is_ok t = Result.is_ok t.result

let is_degraded t =
  match t.result with Ok p -> p.degraded | Error _ -> false

let int_array a = Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))

let to_json t =
  let common = [ ("id", Json.Int t.id); ("hash", Json.String t.hash) ] in
  match t.result with
  | Ok p ->
      let fault_field =
        match p.fault with
        | None -> []
        | Some f -> [ ("fault", Fault.to_json f) ]
      in
      Json.Obj
        (common
        @ [
            ("ok", Json.Bool true);
            ( "result",
              Json.Obj
                ([
                   ("workload", Json.String p.workload);
                   ("num_sets", Json.Int p.num_sets);
                   ("estimation", Json.String p.estimation);
                   ("moved_fraction", Json.Float p.moved_fraction);
                   ("alpha_mean", Json.Float p.alpha_mean);
                   ("mai_error", Json.Float p.mai_error);
                   ("cai_error", Json.Float p.cai_error);
                   ("overhead_cycles", Json.Int p.overhead_cycles);
                   ("region_of_set", int_array p.region_of_set);
                   ("core_of", int_array p.core_of);
                   ("degraded", Json.Bool p.degraded);
                 ]
                @ fault_field) );
          ])
  | Error f ->
      Json.Obj (common @ [ ("ok", Json.Bool false); ("error", Fault.to_json f) ])

let to_string t = Json.to_string (to_json t)
