type action =
  | Fail_nth of int * Fault.t
  | Fail_rate of float * Fault.t
  | Slow of float

type plan = {
  seed : int;
  sites : (string * action) list;
}

let none = { seed = 0; sites = [] }

let create ?(seed = 0) sites = { seed; sites }

let is_none plan = plan.sites = []

let seed plan = plan.seed

(* Seeded coin in [0, 1): the first 30 bits of an MD5 over the full
   decision identity. Pure, so the same (plan, site, key, attempt)
   always lands the same way regardless of scheduling. *)
let coin plan ~site ~key ~attempt =
  let d =
    Digest.string (Printf.sprintf "%d|%s|%s|%d" plan.seed site key attempt)
  in
  let bits =
    (Char.code d.[0] lsl 22)
    lor (Char.code d.[1] lsl 14)
    lor (Char.code d.[2] lsl 6)
    lor (Char.code d.[3] lsr 2)
  in
  float_of_int bits /. 1073741824.0 (* 2^30 *)

let fault_at plan ~site ~key ~index ~attempt =
  if plan.sites = [] then None
  else
    List.fold_left
      (fun acc (s, action) ->
        match acc with
        | Some _ -> acc
        | None when s <> site -> None
        | None -> (
            match action with
            | Fail_nth (n, f) when n = index && attempt = 0 -> Some f
            | Fail_nth _ -> None
            | Fail_rate (p, f) when coin plan ~site ~key ~attempt < p -> Some f
            | Fail_rate _ -> None
            | Slow _ -> None))
      None plan.sites

let fire plan ~site ~key ~index ~attempt =
  if plan.sites <> [] then begin
    List.iter
      (fun (s, action) ->
        match action with
        | Slow ms when s = site && ms > 0. -> Unix.sleepf (ms /. 1000.)
        | _ -> ())
      plan.sites;
    match fault_at plan ~site ~key ~index ~attempt with
    | None -> ()
    | Some (Fault.Worker_crashed m) -> raise (Fault.Crash m)
    | Some f -> raise (Fault.Error f)
  end
