(** Mapping requests — the service's unit of work.

    A request names a workload from {!Workloads.Registry} (plus an
    input-size scale), a machine configuration, and the mapper options
    to run the analyse→assign→balance pipeline with. Requests are pure
    data: building one performs no work, and two structurally equal
    requests are interchangeable.

    {!hash} is the canonical identity used by {!Solution_cache}: it
    digests a field-by-field canonical encoding (floats by their IEEE
    bit pattern), so it is stable across equal-but-not-physically-
    identical requests, across processes, and across the JSON
    round-trip.

    {b Thread safety}: requests are immutable pure data; every
    function here is safe to call from concurrent {!Pool} workers
    without synchronisation. *)

type estimation_opt =
  | Auto  (** per-program default: CME for regular, inspector otherwise *)
  | Cme
  | Inspector
  | Oracle

type options = {
  estimation : estimation_opt;
  fraction : float option;  (** iteration-set fraction override *)
  balance : bool;  (** run the location-aware balancing pass *)
  alpha_override : float option;  (** fix the shared-LLC α weight *)
  measure_error : bool;
      (** replay the trace to measure MAI/CAI estimation error — off by
          default in serving mode, where only the mapping matters *)
}

val default_options : options
(** [Auto] estimation, no overrides, balancing on, error replay off. *)

type t = {
  workload : string;  (** registry name; resolved at execution time *)
  scale : float;  (** benchmark input-size scale factor *)
  machine : Machine.Config.t;
  options : options;
}

val make :
  ?scale:float ->
  ?machine:Machine.Config.t ->
  ?options:options ->
  string ->
  t
(** [make name] is a request for [name] at scale 1.0 on the paper's
    default machine with {!default_options}. *)

val equal : t -> t -> bool
(** Structural equality (same canonical encoding). *)

val canonical : t -> string
(** Deterministic field-by-field encoding; equal requests produce equal
    strings. Covers every {!Machine.Config.t} field. *)

val hash : t -> string
(** MD5 hex digest of {!canonical} — the {!Solution_cache} key. *)

val to_json : t -> Json.t
(** Wire encoding: the machine object carries only the keys
    {!of_json} accepts; unsupported config fields must stay at their
    defaults to round-trip. *)

val of_json : Json.t -> (t, string) result
(** Decodes a request object:

    {v
    {"workload": "moldyn",            // required
     "scale": 1.0,
     "machine": {"rows": 6, "cols": 6, "topology": "mesh",
                 "region_h": 2, "region_w": 2, "llc": "private",
                 "placement": "random", "mac_mode": "nearest",
                 "mac_tolerance": 2, "router_overhead": 3,
                 "page_size": 2048, "iter_set_fraction": 0.0025,
                 "seed": 42},
     "options": {"estimation": "auto", "fraction": null,
                 "balance": true, "alpha": null,
                 "measure_error": false}}
    v}

    Every key is optional except ["workload"]; omitted machine keys
    keep {!Machine.Config.default} values. Unknown keys and invalid
    configurations (per {!Machine.Config.validate}) are errors. *)

val of_string : string -> (t, string) result
(** [of_json] after {!Json.of_string}. *)
