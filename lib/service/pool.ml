type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let default_domains () =
  max 1 (min 8 (Domain.recommended_domain_count () - 1))

let worker_loop pool () =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.nonempty pool.lock
    done;
    if pool.stop then Mutex.unlock pool.lock
    else begin
      let job = Queue.pop pool.queue in
      Mutex.unlock pool.lock;
      job ();
      loop ()
    end
  in
  loop ()

let create ?num_domains () =
  let n =
    match num_domains with
    | None -> default_domains ()
    | Some n when n < 0 -> invalid_arg "Pool.create: negative num_domains"
    | Some n -> n
  in
  let pool =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [||];
    }
  in
  if n > 1 then
    pool.workers <- Array.init n (fun _ -> Domain.spawn (worker_loop pool));
  pool

let num_domains t = Array.length t.workers

let submit t job =
  Mutex.lock t.lock;
  if t.stop then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.map: pool is shut down"
  end;
  Queue.push job t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

type 'b slot = Pending | Done of 'b | Failed of exn

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if Array.length t.workers = 0 then begin
    if t.stop then invalid_arg "Pool.map: pool is shut down";
    Array.map f xs
  end
  else begin
    let results = Array.make n Pending in
    let batch_lock = Mutex.create () in
    let batch_done = Condition.create () in
    let remaining = ref n in
    Array.iteri
      (fun i x ->
        submit t (fun () ->
            let r = try Done (f x) with e -> Failed e in
            Mutex.lock batch_lock;
            results.(i) <- r;
            decr remaining;
            if !remaining = 0 then Condition.signal batch_done;
            Mutex.unlock batch_lock))
      xs;
    Mutex.lock batch_lock;
    while !remaining > 0 do
      Condition.wait batch_done batch_lock
    done;
    Mutex.unlock batch_lock;
    Array.map
      (function
        | Done r -> r
        | Failed e -> raise e
        | Pending -> assert false)
      results
  end

let shutdown t =
  Mutex.lock t.lock;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers
