include Par.Pool
