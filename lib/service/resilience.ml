type policy = {
  deadline_ms : float option;
  max_retries : int;
  backoff_base_ms : float;
  backoff_multiplier : float;
  jitter : float;
  seed : int;
  degrade : bool;
}

let default =
  {
    deadline_ms = None;
    max_retries = 2;
    backoff_base_ms = 5.0;
    backoff_multiplier = 2.0;
    jitter = 0.5;
    seed = 0;
    degrade = false;
  }

let off = { default with max_retries = 0; degrade = false }

let is_off p = p.deadline_ms = None && p.max_retries = 0 && not p.degrade

let now_ms () = Int64.to_float (Monotonic_clock.now ()) /. 1e6

(* Jitter in [-1, 1), a pure function of (seed, key, attempt) — the
   same construction as Fault_injection.coin, so backoff schedules are
   reproducible and need no shared RNG. *)
let jitter_unit ~seed ~key ~attempt =
  let d = Digest.string (Printf.sprintf "backoff|%d|%s|%d" seed key attempt) in
  let bits =
    (Char.code d.[0] lsl 22)
    lor (Char.code d.[1] lsl 14)
    lor (Char.code d.[2] lsl 6)
    lor (Char.code d.[3] lsr 2)
  in
  (2.0 *. float_of_int bits /. 1073741824.0) -. 1.0

let backoff_ms p ~key ~attempt =
  let base =
    p.backoff_base_ms *. (p.backoff_multiplier ** float_of_int attempt)
  in
  let j = p.jitter *. jitter_unit ~seed:p.seed ~key ~attempt in
  Float.max 0.0 (base *. (1.0 +. j))

module Deadline = struct
  type t = { start_ms : float; budget_ms : float option }

  let start (p : policy) =
    { start_ms = (if p.deadline_ms = None then 0.0 else now_ms ());
      budget_ms = p.deadline_ms }

  let expired t =
    match t.budget_ms with
    | None -> false
    | Some b -> now_ms () -. t.start_ms > b

  let check t ~phase =
    match t.budget_ms with
    | None -> ()
    | Some budget_ms ->
        if now_ms () -. t.start_ms > budget_ms then
          raise (Fault.Error (Fault.Deadline_exceeded { phase; budget_ms }))
end

let with_retries ?(sleep = Unix.sleepf) p ~key ~deadline f =
  let rec go attempt =
    match f ~attempt with
    | Ok _ as ok -> (ok, attempt)
    | Error fault as err ->
        if
          Fault.retryable fault
          && attempt < p.max_retries
          && not (Deadline.expired deadline)
        then begin
          let ms = backoff_ms p ~key ~attempt in
          if ms > 0.0 then sleep (ms /. 1000.0);
          go (attempt + 1)
        end
        else (err, attempt)
  in
  go 0
