(* Classic hash-table + doubly-linked-list LRU. The list runs from
   most-recently used (head) to least (tail); the table maps key to its
   list node for O(1) touch/remove. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type counters = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Solution_cache.create: capacity < 1";
  {
    cap = capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = t.cap

let length t = locked t (fun () -> Hashtbl.length t.table)

(* List surgery; all callers hold the lock. *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
      unlink t n;
      push_front t n

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
          t.hits <- t.hits + 1;
          touch t n;
          Some n.value
      | None ->
          t.misses <- t.misses + 1;
          None)

let mem t key = locked t (fun () -> Hashtbl.mem t.table key)

let add t key value =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
          n.value <- value;
          touch t n
      | None ->
          if Hashtbl.length t.table >= t.cap then begin
            match t.tail with
            | Some lru ->
                unlink t lru;
                Hashtbl.remove t.table lru.key;
                t.evictions <- t.evictions + 1
            | None -> assert false
          end;
          let n = { key; value; prev = None; next = None } in
          push_front t n;
          Hashtbl.replace t.table key n;
          t.insertions <- t.insertions + 1)

let keys_mru t =
  locked t (fun () ->
      let rec collect acc = function
        | None -> List.rev acc
        | Some n -> collect (n.key :: acc) n.next
      in
      collect [] t.head)

let counters t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        insertions = t.insertions;
        evictions = t.evictions;
      })

let hit_rate t =
  locked t (fun () ->
      let total = t.hits + t.misses in
      if total = 0 then 0. else float_of_int t.hits /. float_of_int total)

let reset_counters t =
  locked t (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.insertions <- 0;
      t.evictions <- 0)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None;
      t.hits <- 0;
      t.misses <- 0;
      t.insertions <- 0;
      t.evictions <- 0)
