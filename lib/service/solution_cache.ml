(* Classic hash-table + doubly-linked-list LRU. The list runs from
   most-recently used (head) to least (tail); the table maps key to its
   list node for O(1) touch/remove.

   Counters live outside the mutex as atomics so that statistics reads
   ([counters], [hit_rate], [length]) never contend with the LRU lock —
   a stats scrape cannot stall the serving hot path. [size] mirrors
   [Hashtbl.length table] for the same reason. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type counters = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
}

(* Registered once per cache when a registry is passed to [create]. *)
type instruments = {
  m_hits : Obs.Metrics.counter;
  m_misses : Obs.Metrics.counter;
  m_insertions : Obs.Metrics.counter;
  m_evictions : Obs.Metrics.counter;
  m_entries : Obs.Metrics.gauge;
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  hits : int Atomic.t;
  misses : int Atomic.t;
  insertions : int Atomic.t;
  evictions : int Atomic.t;
  size : int Atomic.t;
  obs : instruments option;
  lock : Mutex.t;
}

let create ~capacity ?metrics () =
  if capacity < 1 then invalid_arg "Solution_cache.create: capacity < 1";
  let obs =
    match metrics with
    | None -> None
    | Some im ->
        Some
          {
            m_hits =
              Obs.Metrics.counter im ~help:"cache lookups that hit"
                "locmap_cache_hits_total";
            m_misses =
              Obs.Metrics.counter im ~help:"cache lookups that missed"
                "locmap_cache_misses_total";
            m_insertions =
              Obs.Metrics.counter im ~help:"new entries inserted"
                "locmap_cache_insertions_total";
            m_evictions =
              Obs.Metrics.counter im
                ~help:"entries dropped by capacity pressure"
                "locmap_cache_evictions_total";
            m_entries =
              Obs.Metrics.gauge im ~help:"entries currently cached"
                "locmap_cache_entries";
          }
  in
  {
    cap = capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    insertions = Atomic.make 0;
    evictions = Atomic.make 0;
    size = Atomic.make 0;
    obs;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = t.cap

let length t = Atomic.get t.size

let obs_incr t pick =
  match t.obs with Some i -> Obs.Metrics.incr (pick i) | None -> ()

let sync_entries t =
  match t.obs with
  | Some i -> Obs.Metrics.set_gauge i.m_entries (Atomic.get t.size)
  | None -> ()

(* List surgery; all callers hold the lock. *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
      unlink t n;
      push_front t n

let find t key =
  let r =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some n ->
            touch t n;
            Some n.value
        | None -> None)
  in
  (match r with
  | Some _ ->
      Atomic.incr t.hits;
      obs_incr t (fun i -> i.m_hits)
  | None ->
      Atomic.incr t.misses;
      obs_incr t (fun i -> i.m_misses));
  r

let mem t key = locked t (fun () -> Hashtbl.mem t.table key)

let add t key value =
  let evicted, inserted =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some n ->
            n.value <- value;
            touch t n;
            (false, false)
        | None ->
            let evicted =
              if Hashtbl.length t.table >= t.cap then begin
                match t.tail with
                | Some lru ->
                    unlink t lru;
                    Hashtbl.remove t.table lru.key;
                    Atomic.decr t.size;
                    true
                | None -> assert false
              end
              else false
            in
            let n = { key; value; prev = None; next = None } in
            push_front t n;
            Hashtbl.replace t.table key n;
            Atomic.incr t.size;
            (evicted, true))
  in
  if evicted then begin
    Atomic.incr t.evictions;
    obs_incr t (fun i -> i.m_evictions)
  end;
  if inserted then begin
    Atomic.incr t.insertions;
    obs_incr t (fun i -> i.m_insertions)
  end;
  if evicted || inserted then sync_entries t

let keys_mru t =
  locked t (fun () ->
      let rec collect acc = function
        | None -> List.rev acc
        | Some n -> collect (n.key :: acc) n.next
      in
      collect [] t.head)

let counters t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    insertions = Atomic.get t.insertions;
    evictions = Atomic.get t.evictions;
  }

let hit_rate t =
  let h = Atomic.get t.hits and m = Atomic.get t.misses in
  let total = h + m in
  if total = 0 then 0. else float_of_int h /. float_of_int total

let reset_counters t =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.insertions 0;
  Atomic.set t.evictions 0

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None;
      Atomic.set t.size 0);
  reset_counters t;
  sync_entries t
