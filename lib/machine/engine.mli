(** The discrete-event manycore simulator.

    The engine replays one or more *jobs* (programs with schedules) on
    the configured machine. Cores execute their assigned iteration sets
    in order; private-level hits are batched at fixed latencies, and
    every transaction that touches a shared resource (NoC link, S-NUCA
    bank, MC/DRAM) is sequenced through a global event heap so that
    contention is resolved in global-time order. Parallel nests are
    barrier-synchronised per job, and a job's timing loop re-runs its
    nests [steps] times with warm caches — the structure the
    inspector–executor scheme relies on.

    Latency model per L1 miss:
    - private LLC: local bank probe; on a bank miss, request packet
      core→MC, DRAM service, data packet MC→core (plus fire-and-forget
      dirty writebacks);
    - shared LLC (S-NUCA): request core→home bank, bank port
      serialisation, then either data bank→core (hit) or request
      bank→MC, DRAM, data MC→bank→core (miss).

    {b Thread safety}: not thread-safe. An engine run owns all of its
    simulation state (caches, heap, network, DRAM, stats); the service
    layer runs one simulation per request and never shares a run
    across domains. *)

type job = {
  trace : Ir.Trace.t;
  schedule_of_step : int -> Schedule.t;
      (** schedule used for timing-loop step [k]; an inspector–executor
          job returns the default schedule for step 0 and the optimised
          one afterwards *)
  steps : int;  (** timing-loop trip count *)
  cores : int array;  (** cores this job may use *)
  step_overhead : int -> int;
      (** extra cycles charged after step [k] completes (inspector
          analysis and remapping cost); return 0 for none *)
}

val job :
  ?steps:int ->
  ?cores:int array ->
  ?step_overhead:(int -> int) ->
  trace:Ir.Trace.t ->
  schedule_of_step:(int -> Schedule.t) ->
  unit ->
  job
(** [steps] defaults to the program's [time_steps]; [cores] to all
    cores of the configuration at {!run} time. *)

type result = {
  stats : Stats.t;
  job_finish : int array;  (** completion cycle of each job *)
  net_latency_histogram : int array;
      (** bucket [k] counts packets with latency in [2^k, 2^(k+1)) *)
  link_busy : int array;  (** cumulative occupancy per directed link *)
}

val run :
  ?ideal_network:bool ->
  ?page_table:Mem.Page_table.t ->
  Config.t ->
  job list ->
  result
(** Simulates all jobs concurrently from cycle 0. [ideal_network]
    makes every packet free — the paper's Figure 2 bound. Raises
    [Invalid_argument] on an invalid configuration, overlapping job
    core sets, or a schedule naming an out-of-range core. *)

val run_single :
  ?ideal_network:bool ->
  ?page_table:Mem.Page_table.t ->
  Config.t ->
  trace:Ir.Trace.t ->
  schedule:Schedule.t ->
  unit ->
  result
(** One job, one fixed schedule, the program's own [time_steps]. *)
