(** Binary min-heap of (time, id) events — the engine's ready queue.

    Specialised to unboxed ints for speed: the engine pushes one event
    per shared-resource transaction. Ties are popped in unspecified
    order (the simulator treats equal-time events as concurrent).

    {b Thread safety}: not thread-safe. The heap is private to the
    engine run that allocated it and is mutated without locks. *)

type t

val create : capacity:int -> t
(** Initial capacity hint; the heap grows as needed. *)

val push : t -> time:int -> id:int -> unit
(** Raises [Invalid_argument] on a negative time. *)

val pop : t -> (int * int) option
(** Smallest-time event as [(time, id)], or [None] when empty. *)

val peek_time : t -> int option

val size : t -> int

val is_empty : t -> bool
