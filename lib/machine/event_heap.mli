(** The engine's ready queue — a re-export of {!Des.Event_heap}, the
    (time, id) min-heap shared with the cluster scheduler ([lib/sched]).
    Kept under its historical [Machine.Event_heap] name so engine code
    and its callers are untouched; see {!Des.Event_heap} for the
    ordering and determinism guarantees (and their direct tests).

    {b Thread safety}: not thread-safe. The heap is private to the
    engine run that allocated it and is mutated without locks. *)

include module type of Des.Event_heap with type t = Des.Event_heap.t
