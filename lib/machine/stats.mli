(** Simulation statistics.

    Mutable counters filled by the engine. [cycles] is the modelled
    execution time (barrier-synchronised, including any inspector
    overhead charged by the harness); network counters separate total
    latency from its queueing (congestion) component.

    {b Thread safety}: not thread-safe. A stats record is written by
    exactly one engine run and read only after that run returns. *)

type t = {
  mutable cycles : int;
  mutable overhead_cycles : int;  (** inspector / runtime-scheme cycles *)
  mutable accesses : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable llc_hits : int;
  mutable llc_misses : int;
  mutable net_latency : int;
  mutable net_queueing : int;
  mutable net_packets : int;
  mutable net_hops : int;
  mutable dram_row_hits : int;
  mutable dram_row_misses : int;
  mutable writebacks : int;
}

val create : unit -> t

val l1_hit_rate : t -> float

val llc_hit_rate : t -> float
(** Hit rate among accesses that reached the LLC. *)

val llc_miss_ratio : t -> float
(** LLC misses over all memory accesses (the paper reports 13-37 %). *)

val avg_net_latency : t -> float
(** Mean packet latency in cycles. *)

val overhead_fraction : t -> float
(** [overhead_cycles / cycles]. *)

val pp : Format.formatter -> t -> unit
