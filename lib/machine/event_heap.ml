include Des.Event_heap
