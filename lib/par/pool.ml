exception Crash of string

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable target : int;
  mutable crashes : int;
}

let default_domains () =
  max 1 (min 8 (Domain.recommended_domain_count () - 1))

(* Worker domains run [loop] until shutdown. A job whose exception
   escapes the per-task wrapper of [try_map] is a {e crash}: the task's
   result has already been recorded (see [try_map]), so the worker's
   only duties are to count the crash, respawn a replacement domain (so
   the pool keeps its configured width and queued jobs still drain),
   and die. The crash handler takes [pool.lock] only after the job has
   released every lock it held, so no mutex is orphaned. *)
let rec worker_loop pool () =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.nonempty pool.lock
    done;
    if pool.stop then Mutex.unlock pool.lock
    else begin
      let job = Queue.pop pool.queue in
      Mutex.unlock pool.lock;
      match job () with
      | () -> loop ()
      | exception _ ->
          Mutex.lock pool.lock;
          pool.crashes <- pool.crashes + 1;
          if not pool.stop then
            pool.workers <- Domain.spawn (worker_loop pool) :: pool.workers;
          Mutex.unlock pool.lock
          (* fall off the end: this domain is dead *)
    end
  in
  loop ()

let create ?num_domains () =
  let n =
    match num_domains with
    | None -> default_domains ()
    | Some n when n < 0 ->
        (* Construction-time caller contract, not request data: never
           reachable from a served request, so it stays an exception
           rather than a Fault. *)
        invalid_arg "Pool.create: negative num_domains"
    | Some n -> n
  in
  let pool =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
      target = (if n > 1 then n else 0);
      crashes = 0;
    }
  in
  if n > 1 then
    pool.workers <- List.init n (fun _ -> Domain.spawn (worker_loop pool));
  pool

let num_domains t = t.target

let crashes t =
  Mutex.lock t.lock;
  let c = t.crashes in
  Mutex.unlock t.lock;
  c

let submit t job =
  Mutex.lock t.lock;
  if t.stop then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.map: pool is shut down"
  end;
  Queue.push job t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

let try_map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.target = 0 then begin
    if t.stop then invalid_arg "Pool.map: pool is shut down";
    (* Inline pool: the caller's domain cannot be allowed to die, so a
       crash is contained here — producing the same per-task [Error] a
       worker-backed pool records before its domain exits. *)
    Array.map (fun x -> try Ok (f x) with e -> Error e) xs
  end
  else begin
    let results = Array.make n None in
    let batch_lock = Mutex.create () in
    let batch_done = Condition.create () in
    let remaining = ref n in
    let fill i r =
      Mutex.lock batch_lock;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.signal batch_done;
      Mutex.unlock batch_lock
    in
    Array.iteri
      (fun i x ->
        submit t (fun () ->
            let r = try Ok (f x) with e -> Error e in
            fill i r;
            (* A simulated domain death must actually kill the worker so
               the crash-isolation path (respawn, batch drain) is
               exercised — but only after the slot is filled, so the
               batch can never hang on a crashed task. *)
            match r with
            | Error (Crash _ as c) -> raise c
            | _ -> ()))
      xs;
    Mutex.lock batch_lock;
    while !remaining > 0 do
      Condition.wait batch_done batch_lock
    done;
    Mutex.unlock batch_lock;
    Array.map
      (function Some r -> r | None -> assert false (* all slots filled *))
      results
  end

let map t f xs =
  let results = try_map t f xs in
  Array.map (function Ok r -> r | Error e -> raise e) results

let shutdown t =
  Mutex.lock t.lock;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.lock;
  (* A crashing worker may have spawned a replacement concurrently with
     the stop flag being raised; respawns are decided under [t.lock]
     after checking [stop], so draining the list until it is empty
     joins every domain ever spawned. *)
  let rec drain () =
    Mutex.lock t.lock;
    let ws = t.workers in
    t.workers <- [];
    Mutex.unlock t.lock;
    if ws <> [] then begin
      List.iter Domain.join ws;
      drain ()
    end
  in
  drain ()
