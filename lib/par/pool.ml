exception Crash of string

(* Obs instruments, registered once per pool when a registry is passed
   to [create]. Handles are shared across pools on the same registry
   (registration is idempotent), so the metrics aggregate fleet-wide. *)
type instruments = {
  im : Obs.Metrics.t;
  queue_depth : Obs.Metrics.gauge;
  tasks : Obs.Metrics.counter;
  busy_ns : Obs.Metrics.counter;
  icrashes : Obs.Metrics.counter;
}

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable target : int;
  mutable crashes : int;
  obs : instruments option;
}

let default_domains () =
  max 1 (min 8 (Domain.recommended_domain_count () - 1))

(* Worker domains run [loop] until shutdown. A job whose exception
   escapes the per-task wrapper of [try_map] is a {e crash}: the task's
   result has already been recorded (see [try_map]), so the worker's
   only duties are to count the crash, respawn a replacement domain (so
   the pool keeps its configured width and queued jobs still drain),
   and die. The crash handler takes [pool.lock] only after the job has
   released every lock it held, so no mutex is orphaned. *)
let rec worker_loop pool () =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.nonempty pool.lock
    done;
    if pool.stop then Mutex.unlock pool.lock
    else begin
      let job = Queue.pop pool.queue in
      Mutex.unlock pool.lock;
      (match pool.obs with
      | Some i -> Obs.Metrics.add_gauge i.queue_depth (-1)
      | None -> ());
      match job () with
      | () -> loop ()
      | exception _ ->
          Mutex.lock pool.lock;
          pool.crashes <- pool.crashes + 1;
          if not pool.stop then
            pool.workers <- Domain.spawn (worker_loop pool) :: pool.workers;
          Mutex.unlock pool.lock;
          (match pool.obs with
          | Some i -> Obs.Metrics.incr i.icrashes
          | None -> ())
          (* fall off the end: this domain is dead *)
    end
  in
  loop ()

let create ?num_domains ?metrics () =
  let n =
    match num_domains with
    | None -> default_domains ()
    | Some n when n < 0 ->
        (* Construction-time caller contract, not request data: never
           reachable from a served request, so it stays an exception
           rather than a Fault. *)
        invalid_arg "Pool.create: negative num_domains"
    | Some n -> n
  in
  let obs =
    match metrics with
    | None -> None
    | Some im ->
        Some
          {
            im;
            queue_depth =
              Obs.Metrics.gauge im ~help:"jobs queued, not yet running"
                "locmap_pool_queue_depth";
            tasks =
              Obs.Metrics.counter im ~help:"jobs completed (ok or error)"
                "locmap_pool_tasks_total";
            busy_ns =
              Obs.Metrics.counter im
                ~help:"worker nanoseconds spent inside jobs"
                "locmap_pool_busy_ns_total";
            icrashes =
              Obs.Metrics.counter im
                ~help:"worker domains that died and were replaced"
                "locmap_pool_crashes_total";
          }
  in
  let pool =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
      target = (if n > 1 then n else 0);
      crashes = 0;
      obs;
    }
  in
  if n > 1 then
    pool.workers <- List.init n (fun _ -> Domain.spawn (worker_loop pool));
  pool

let num_domains t = t.target

let crashes t =
  Mutex.lock t.lock;
  let c = t.crashes in
  Mutex.unlock t.lock;
  c

let submit t job =
  Mutex.lock t.lock;
  if t.stop then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.map: pool is shut down"
  end;
  Queue.push job t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock;
  match t.obs with
  | Some i -> Obs.Metrics.add_gauge i.queue_depth 1
  | None -> ()

(* One job with per-job fault containment, its wall time charged to the
   busy counter when instrumentation is on (the clock is only read with
   the registry enabled, so a disabled registry costs one branch). *)
let run_job t f x =
  match t.obs with
  | Some i when Obs.Metrics.is_enabled i.im ->
      let t0 = Obs.Clock.now_ns () in
      let r = try Ok (f x) with e -> Error e in
      Obs.Metrics.add i.busy_ns
        (Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) t0));
      Obs.Metrics.incr i.tasks;
      r
  | _ -> ( try Ok (f x) with e -> Error e)

let try_map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.target = 0 then begin
    if t.stop then invalid_arg "Pool.map: pool is shut down";
    (* Inline pool: the caller's domain cannot be allowed to die, so a
       crash is contained here — producing the same per-task [Error] a
       worker-backed pool records before its domain exits. *)
    Array.map (run_job t f) xs
  end
  else begin
    let results = Array.make n None in
    let batch_lock = Mutex.create () in
    let batch_done = Condition.create () in
    let remaining = ref n in
    let fill i r =
      Mutex.lock batch_lock;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.signal batch_done;
      Mutex.unlock batch_lock
    in
    Array.iteri
      (fun i x ->
        submit t (fun () ->
            let r = run_job t f x in
            fill i r;
            (* A simulated domain death must actually kill the worker so
               the crash-isolation path (respawn, batch drain) is
               exercised — but only after the slot is filled, so the
               batch can never hang on a crashed task. *)
            match r with
            | Error (Crash _ as c) -> raise c
            | _ -> ()))
      xs;
    Mutex.lock batch_lock;
    while !remaining > 0 do
      Condition.wait batch_done batch_lock
    done;
    Mutex.unlock batch_lock;
    Array.map
      (function Some r -> r | None -> assert false (* all slots filled *))
      results
  end

let map t f xs =
  let results = try_map t f xs in
  Array.map (function Ok r -> r | Error e -> raise e) results

let shutdown t =
  Mutex.lock t.lock;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.lock;
  (* A crashing worker may have spawned a replacement concurrently with
     the stop flag being raised; respawns are decided under [t.lock]
     after checking [stop], so draining the list until it is empty
     joins every domain ever spawned. *)
  let rec drain () =
    Mutex.lock t.lock;
    let ws = t.workers in
    t.workers <- [];
    Mutex.unlock t.lock;
    if ws <> [] then begin
      List.iter Domain.join ws;
      drain ()
    end
  in
  drain ()
