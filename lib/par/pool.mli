(** A fixed-size pool of OCaml 5 domains fed by a mutex-protected work
    queue.

    [create ~num_domains ()] spawns [num_domains] worker domains that
    block on the queue; {!try_map} fans an array of independent jobs
    across them and collects per-job results in submission order, so
    callers see a parallel [Array.map]. Jobs must be self-contained:
    they may share immutable data and thread-safe structures (e.g. the
    service's solution cache) but must not submit work back into the
    same pool (a job waiting on its own pool can deadlock once all
    workers are occupied).

    {b Crash isolation}: exceptions raised by a job are caught on the
    worker and recorded as that job's [Error] — one failing job never
    wedges the pool or the batch. {!Crash} (simulated domain death, as
    injected by the service's fault-injection plans, which re-export it
    as [Fault.Crash]) goes one step further:
    after the job's slot is recorded, the exception is re-raised past
    the task wrapper, the worker domain counts the crash, spawns a
    replacement domain so the pool keeps its configured width, and
    dies. The batch always drains — the crashed task's result is
    recorded {e before} the worker dies, the replacement keeps serving
    the queue, and no mutex is held across the death. An inline pool
    (no workers) contains [Fault.Crash] like any other job exception,
    producing byte-identical results to the worker-backed path.

    A pool with [num_domains <= 1] spawns no domains at all and runs
    jobs inline in the caller; the sequential and parallel paths execute
    the same code in the same submission order, which is what makes the
    determinism guarantees of the serving layer and of the
    domain-parallel analysis checkable.

    {b Thread safety}: the pool itself is thread-safe — every queue and
    counter access is under the pool mutex, and {!try_map} may be called
    concurrently from different domains.

    {b Observability}: pass [?metrics] to {!create} to register and
    feed four metrics — [locmap_pool_queue_depth] (gauge: submitted,
    not yet started), [locmap_pool_tasks_total],
    [locmap_pool_busy_ns_total] (counters: jobs completed and worker
    time inside jobs — only accumulated while the registry is enabled)
    and [locmap_pool_crashes_total]. Metric updates happen outside the
    pool mutex and never affect job results or ordering. *)

type t

exception Crash of string
(** Simulated death of the executing domain (see crash isolation
    above). Declared here, at the lowest layer, so both the serving
    stack (as [Fault.Crash]) and the analysis fast path share one
    extension constructor. *)

val default_domains : unit -> int
(** [min 8 (Domain.recommended_domain_count () - 1)], at least 1 — a
    sensible worker count that leaves the submitting domain a core. *)

val create : ?num_domains:int -> ?metrics:Obs.Metrics.t -> unit -> t
(** Defaults to {!default_domains}. Raises [Invalid_argument] on a
    negative count (construction-time caller contract — never reachable
    from request data, hence not a {!Fault}). [metrics] registers the
    pool instruments described above; pools sharing a registry share
    (aggregate into) the same instruments. *)

val num_domains : t -> int
(** Configured worker-domain count (0 for an inline pool); crash
    respawns keep the live count at this width. *)

val crashes : t -> int
(** Worker domains that have died (and been replaced) since creation. *)

val try_map : t -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** Parallel [Array.map] with per-job fault containment, submission
    order preserved. Safe to call repeatedly; concurrent calls from
    different domains interleave their jobs in the shared queue. Never
    raises for job failures — each job's exception is its own [Error]. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [try_map] that re-raises the first-indexed job exception after the
    whole batch has drained. *)

val shutdown : t -> unit
(** Drains nothing: waits only for already-running jobs, then joins the
    workers (including crash replacements). Idempotent. Calling
    {!map}/{!try_map} after shutdown raises [Invalid_argument]. *)
