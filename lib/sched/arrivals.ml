let shuffle rng n =
  if n < 0 then invalid_arg "Arrivals.shuffle: negative n";
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  perm

type zipf = { perm : int array; weights : float array; total : float }

let zipf rng ~s ~n =
  if n <= 0 then invalid_arg "Arrivals.zipf: non-positive n";
  let perm = shuffle rng n in
  let weights =
    Array.init n (fun k -> 1. /. Float.pow (float_of_int (k + 1)) s)
  in
  let total = Array.fold_left ( +. ) 0. weights in
  { perm; weights; total }

let zipf_sample z rng =
  let n = Array.length z.perm in
  let x = Random.State.float rng z.total in
  let rec find k acc =
    let acc = acc +. z.weights.(k) in
    if x <= acc || k = n - 1 then z.perm.(k) else find (k + 1) acc
  in
  find 0 0.

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Arrivals.exponential: non-positive rate";
  -.log (1. -. Random.State.float rng 1.) /. rate

let poisson_times rng ~rate ~n =
  let t = ref 0. in
  Array.init n (fun _ ->
      t := !t +. exponential rng ~rate;
      !t)
