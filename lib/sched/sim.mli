(** The event-driven cluster scheduler.

    [run] replays a job trace against one {!Policy} on the machine the
    {!Oracle} was built for. The loop is a classic discrete-event
    simulation over the shared {!Des.Event_heap}: job arrivals and
    completions are the only events; after draining all events of the
    current tick (completions before arrivals, each class in id order,
    so simultaneity is deterministic) the scheduler takes one
    placement pass over the wait queue.

    Semantics, per {!Policy}:

    - the queue is served in {!Job.compare_queue} order;
    - a job starts when the policy grants it cores; its modelled
      runtime is {!Oracle.runtime} of the cores it actually got — so
      {e where} a job lands changes {e how long} it holds its cores;
    - under a backfilling policy a blocked head job gets a
      {e reservation}: the earliest tick enough cores are certain to
      be free, computed from the running jobs' {e upper-bound}
      estimates ({!Oracle.estimate}). Later queued jobs may start now
      only if their own estimate ends by the reservation ([shadow])
      or they fit into the cores the reservation leaves spare —
      the EASY guarantee that backfill never delays the head. Because
      actual runtimes never exceed estimates, the head always starts
      at or before its promised tick; [run] enforces this internally
      and records the promise per job so tests can check it;
    - a job whose demand exceeds the whole machine is killed at
      arrival; every other admitted job terminates as [Completed] or
      [Missed] (finished past its deadline). The returned records
      always carry an outcome for every job.

    Determinism: everything downstream of the oracle is sequential
    integer/float arithmetic on its (domain-count-independent)
    summaries, so for a fixed trace and oracle config the whole
    {!result} — including {!render}'s bytes — is identical however
    many domains analysed the workloads.

    {b Thread safety}: [run] allocates all its state per call and the
    oracle is immutable, so concurrent runs (e.g. the bench comparing
    policies in parallel) are safe. The mutable fields of {!record}
    are written only by the run that allocated them; treat a returned
    result as read-only. *)

type record = {
  spec : Job.spec;
  mutable start : int;  (** tick the job started; -1 if killed *)
  mutable finish : int;  (** tick it finished; -1 if killed *)
  mutable cores : int array;  (** the cores it actually held *)
  mutable cost : float;  (** {!Oracle.cost} of that placement *)
  mutable outcome : Job.outcome option;  (** always [Some] after [run] *)
  mutable reserved_at : int;
      (** latest promised start while it was the blocked head; -1 if
          never reserved (or the promise was voided by a
          higher-priority arrival taking the head) *)
  mutable backfilled : bool;  (** started ahead of a blocked head *)
}

type totals = {
  policy : string;
  jobs : int;
  completed : int;
  missed : int;
  killed : int;
  backfilled : int;
  reservations : int;  (** head jobs that ever needed a promise *)
  makespan : int;  (** first arrival to last completion, ticks *)
  utilization : float;  (** busy core-ticks / (cores * makespan) *)
  mean_stretch : float;  (** mean bounded slowdown, see [stretch_bound] *)
  max_stretch : float;
  miss_rate : float;  (** missed / (completed + missed) *)
  fragmentation : float;
      (** share of core capacity left idle while the queue head was
          blocked — free-but-unusable core-ticks / (cores * makespan) *)
  mean_wait : float;  (** mean start - arrival over started jobs *)
}

type result = {
  policy : Policy.t;
  records : record array;  (** indexed by job id *)
  totals : totals;
}

val run :
  ?metrics:Obs.Metrics.t ->
  ?stretch_bound:int ->
  oracle:Oracle.t ->
  policy:Policy.t ->
  Job.spec array ->
  result
(** Jobs must have dense unique ids [0 .. n-1] (as {!Job.of_lines} and
    {!Synth.jobs} produce); raises [Invalid_argument] otherwise.
    [stretch_bound] (default 10 ticks) is the bounded-slowdown floor:
    a job's stretch is [max 1 ((finish - arrival) / max bound
    runtime)]. [metrics] exports the per-policy counters
    [locmap_sched_jobs_total{policy,outcome}],
    [locmap_sched_backfills_total], [locmap_sched_reservations_total],
    the [locmap_sched_stretch] and [locmap_sched_wait_ticks]
    histograms and the [locmap_sched_utilization_bp] /
    [locmap_sched_miss_rate_bp] / [locmap_sched_fragmentation_bp]
    gauges (basis points), all labelled by policy — metrics never
    change results. *)

val render : result -> string
(** Full deterministic dump: one line per job (id, workload, arrival,
    demand, priority, deadline, start, finish, cores, placement cost,
    outcome, stretch, backfilled, promise) and a totals line. Fixed
    number formatting; byte-identical across runs and domain counts
    for the same trace and oracle configuration — the determinism
    suites compare these bytes. *)

val totals_to_json : totals -> string
(** One compact JSON object (the bench embeds it in
    [BENCH_sched.json]). *)

val pp_totals : Format.formatter -> totals -> unit
(** Human-readable summary table row block. *)
