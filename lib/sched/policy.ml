type t = Fcfs | Easy | Local

let all = [ Fcfs; Easy; Local ]

let name = function Fcfs -> "fcfs" | Easy -> "easy" | Local -> "local"

let of_string = function
  | "fcfs" -> Ok Fcfs
  | "easy" -> Ok Easy
  | "local" | "locality" -> Ok Local
  | s -> Error (Printf.sprintf "unknown policy %S (want fcfs, easy or local)" s)

let backfills = function Fcfs -> false | Easy | Local -> true

type ctx = {
  regions : Locmap.Region.t;
  region_of_core : int array;
  free : bool array;
  free_count : int;
  score : int array -> float;
}

(* Location-oblivious fit: the lowest-numbered free cores. *)
let first_fit ctx ~demand =
  let cores = Array.make demand 0 in
  let k = ref 0 in
  let i = ref 0 in
  while !k < demand do
    if ctx.free.(!i) then begin
      cores.(!k) <- !i;
      incr k
    end;
    incr i
  done;
  cores

(* Free cores inside a rectangular block of the region grid, lowest
   core ids first, capped at [demand]. *)
let block_cores ctx ~demand ~r0 ~c0 ~h ~w =
  let gc = Locmap.Region.grid_cols ctx.regions in
  let in_block r =
    let gr = r / gc and gcol = r mod gc in
    gr >= r0 && gr < r0 + h && gcol >= c0 && gcol < c0 + w
  in
  let cores = Array.make demand 0 in
  let k = ref 0 in
  let i = ref 0 in
  let n = Array.length ctx.free in
  while !k < demand && !i < n do
    if ctx.free.(!i) && in_block ctx.region_of_core.(!i) then begin
      cores.(!k) <- !i;
      incr k
    end;
    incr i
  done;
  if !k = demand then Some cores else None

(* Contiguous-region placement: enumerate every rectangular block of
   the region grid (smallest area first) that can supply the demand
   from its free cores, and keep the one the oracle prices lowest —
   ties broken by smaller area (tighter packing leaves larger holes
   for later jobs), then by position. *)
let local_fit ctx ~demand =
  let gr = Locmap.Region.grid_rows ctx.regions in
  let gc = Locmap.Region.grid_cols ctx.regions in
  let best = ref None in
  for h = 1 to gr do
    for w = 1 to gc do
      for r0 = 0 to gr - h do
        for c0 = 0 to gc - w do
          match block_cores ctx ~demand ~r0 ~c0 ~h ~w with
          | None -> ()
          | Some cores ->
              let s = ctx.score cores in
              let area = h * w in
              let better =
                match !best with
                | None -> true
                | Some (s', area', _) ->
                    s < s' -. 1e-12
                    || (Float.abs (s -. s') <= 1e-12 && area < area')
              in
              if better then best := Some (s, area, cores)
        done
      done
    done
  done;
  match !best with
  | Some (_, _, cores) -> cores
  | None -> first_fit ctx ~demand

let select policy ctx ~demand =
  if demand <= 0 then invalid_arg "Policy.select: non-positive demand";
  if demand > ctx.free_count then None
  else
    Some
      (match policy with
      | Fcfs | Easy -> first_fit ctx ~demand
      | Local -> local_fit ctx ~demand)
