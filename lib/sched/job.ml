type spec = {
  id : int;
  name : string;
  arrival : int;
  demand : int;
  priority : int;
  deadline : int option;
}

type outcome = Completed | Missed | Killed

let outcome_name = function
  | Completed -> "completed"
  | Missed -> "missed"
  | Killed -> "killed"

let compare_queue a b =
  if a.priority <> b.priority then compare b.priority a.priority
  else if a.arrival <> b.arrival then compare a.arrival b.arrival
  else compare a.id b.id

let validate ~num_cores:_ s =
  if s.demand <= 0 then Error "demand must be positive"
  else if s.arrival < 0 then Error "arrival must be non-negative"
  else if s.priority < 0 then Error "priority must be non-negative"
  else
    match s.deadline with
    | Some d when d <= s.arrival -> Error "deadline must be after arrival"
    | _ -> Ok ()

let of_line ~id line =
  let s = String.trim line in
  if s = "" || s.[0] = '#' then Ok None
  else
    let fields =
      String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) s)
      |> List.filter (fun f -> f <> "")
    in
    let int_field what v =
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "%s: not an integer (%S)" what v)
    in
    let ( let* ) = Result.bind in
    match fields with
    | arrival :: name :: demand :: rest ->
        let* arrival = int_field "arrival" arrival in
        let* demand = int_field "demand" demand in
        let* priority, deadline =
          match rest with
          | [] -> Ok (0, None)
          | [ p ] ->
              let* p = int_field "priority" p in
              Ok (p, None)
          | [ p; d ] ->
              let* p = int_field "priority" p in
              if d = "-" then Ok (p, None)
              else
                let* d = int_field "deadline" d in
                Ok (p, Some d)
          | _ -> Error "too many fields (want: arrival workload demand \
                        [priority] [deadline|-])"
        in
        let spec = { id; name; arrival; demand; priority; deadline } in
        let* () = validate ~num_cores:max_int spec in
        Ok (Some spec)
    | _ ->
        Error "too few fields (want: arrival workload demand [priority] \
               [deadline|-])"

let to_line s =
  Printf.sprintf "%d %s %d %d %s" s.arrival s.name s.demand s.priority
    (match s.deadline with None -> "-" | Some d -> string_of_int d)

let of_lines lines =
  let rec go ln id acc = function
    | [] -> Ok (List.rev acc)
    | line :: tl -> (
        match of_line ~id line with
        | Error e -> Error (Printf.sprintf "line %d: %s" ln e)
        | Ok None -> go (ln + 1) id acc tl
        | Ok (Some s) -> go (ln + 1) (id + 1) (s :: acc) tl)
  in
  match go 1 0 [] lines with
  | Error _ as e -> e
  | Ok specs ->
      let a = Array.of_list specs in
      Array.sort
        (fun x y ->
          if x.arrival <> y.arrival then compare x.arrival y.arrival
          else compare x.id y.id)
        a;
      Ok a
