(** The placement cost oracle: the paper's affinity analysis, reused
    one level up.

    For each workload the oracle runs the existing fast CME path
    ({!Locmap.Analysis.cme_summaries} — symbolic/periodic/traced
    tiers, optionally sharded over a {!Par.Pool}) once, merges the
    per-set summaries, and keeps the aggregate affinity facts the
    cluster scheduler needs to price a candidate placement:

    - [work] — total accesses, scaled into {e ticks} of serial service
      demand (a job on [c] cores runs for [work / c] ticks before
      locality dilation);
    - [mai] — the workload's memory affinity vector (where its LLC
      misses go, per MC);
    - [alpha] — its LLC hit fraction (how much of its off-core traffic
      stays on-chip).

    A candidate placement (a set of cores) is priced as a normalised
    cost in [0, 1]:

    [cost = (1 - alpha) * mc_term + alpha * spread_term]

    where [mc_term] is the MAI-weighted mean distance from the
    placement's regions to the MCs (miss traffic crosses the mesh to
    its controllers) and [spread_term] is the core-weighted mean
    pairwise region distance of the placement (hit and sharing traffic
    stays between the job's own cores and its banks — a proxy that
    directly rewards contiguity). Both are normalised by the mesh
    diameter. The modelled runtime of a job on cores [C] is
    [work / |C| * (1 + beta * cost C)] — so a locality-aware placement
    shortens jobs, and the upper bound [cost <= 1] gives every policy
    a safe runtime estimate for backfill reservations.

    Summaries are byte-identical across pool domain counts (the PR-4
    guarantee), and every cost/runtime here is derived from them by
    the same float arithmetic, so scheduler results are too — the
    cluster-level determinism tests check 1/2/4/8.

    {b Thread safety}: an oracle is immutable after {!build}; all
    queries are read-only and safe from any domain. [build] itself may
    use the given pool (do not call it from inside that pool's own
    workers). *)

type t

type entry = {
  name : string;
  kind : Ir.Program.kind;
  work : int;  (** serial service demand, ticks *)
  mai : float array;  (** per-MC miss affinity (sums to 1) *)
  alpha : float;  (** LLC hit fraction among LLC-reaching accesses *)
}

val build :
  ?pool:Par.Pool.t ->
  ?metrics:Obs.Metrics.t ->
  ?symbolic:bool ->
  ?beta:float ->
  ?scale:float ->
  ?work_unit:int ->
  Machine.Config.t ->
  string list ->
  t
(** [build cfg names] analyses each named registry workload at input
    scale [scale] (default 0.1) on machine [cfg]. [beta] (default 0.8)
    is the dilation strength; [work_unit] (default 64) divides raw
    access counts into ticks. [pool], [metrics] and [symbolic] are
    passed through to {!Locmap.Analysis.cme_summaries}. Raises
    [Not_found] on an unknown workload name and [Invalid_argument] on
    a non-positive [beta], [scale] or [work_unit]. *)

val config : t -> Machine.Config.t

val regions : t -> Locmap.Region.t

val num_cores : t -> int

val beta : t -> float

val names : t -> string list
(** In [build] argument order. *)

val entry : t -> string -> entry
(** Raises [Not_found] for a workload [build] was not given. *)

val mean_work : t -> float
(** Mean serial work over the oracle's workloads — what a load
    generator divides the machine's core count by to turn an offered
    load into an arrival rate. *)

val cost : t -> string -> cores:int array -> float
(** Normalised locality cost in [0, 1] of placing the named workload
    on exactly these cores (see the formula above). Raises
    [Invalid_argument] on an empty or out-of-range core set. *)

val dilation : t -> string -> cores:int array -> float
(** [1 + beta * cost]. *)

val runtime : t -> string -> cores:int array -> int
(** Modelled service time in ticks: [work / |cores|] dilated by the
    placement's cost, at least 1. *)

val estimate : t -> string -> demand:int -> int
(** Upper bound on {!runtime} over every possible placement of
    [demand] cores ([cost = 1]) — what reservations and backfill
    decisions must use so that backfilled jobs can never delay a
    reserved head job. *)
