type record = {
  spec : Job.spec;
  mutable start : int;
  mutable finish : int;
  mutable cores : int array;
  mutable cost : float;
  mutable outcome : Job.outcome option;
  mutable reserved_at : int;
  mutable backfilled : bool;
}

type totals = {
  policy : string;
  jobs : int;
  completed : int;
  missed : int;
  killed : int;
  backfilled : int;
  reservations : int;
  makespan : int;
  utilization : float;
  mean_stretch : float;
  max_stretch : float;
  miss_rate : float;
  fragmentation : float;
  mean_wait : float;
}

type result = {
  policy : Policy.t;
  records : record array;
  totals : totals;
}

(* ------------------------------------------------------------------ *)

type state = {
  oracle : Oracle.t;
  policy : Policy.t;
  region_of_core : int array;
  records : record array;
  heap : Des.Event_heap.t;
  free : bool array;
  mutable free_count : int;
  mutable queue : record list;  (* sorted by Job.compare_queue *)
  mutable running : (int * record) list;  (* (estimated finish, job) *)
  mutable reserved_head : int;  (* job id holding the active promise *)
  mutable reservations : int;
  mutable busy_core_ticks : int;
  mutable wasted_core_ticks : int;
  mutable blocked_free : int;  (* free cores while head was blocked *)
  mutable last_t : int;
}

let enqueue st r =
  let rec ins = function
    | [] -> [ r ]
    | hd :: tl ->
        if Job.compare_queue r.spec hd.spec < 0 then r :: hd :: tl
        else hd :: ins tl
  in
  st.queue <- ins st.queue

let remove_queued st r =
  st.queue <- List.filter (fun x -> x.spec.Job.id <> r.spec.Job.id) st.queue

let ctx st name =
  {
    Policy.regions = Oracle.regions st.oracle;
    region_of_core = st.region_of_core;
    free = st.free;
    free_count = st.free_count;
    score = (fun cores -> Oracle.cost st.oracle name ~cores);
  }

let num_jobs st = Array.length st.records

let start_job st t r ~backfilled cores =
  let name = r.spec.Job.name in
  let demand = r.spec.Job.demand in
  Array.iter
    (fun c ->
      if not st.free.(c) then failwith "Sched.Sim: placement on a busy core";
      st.free.(c) <- false)
    cores;
  st.free_count <- st.free_count - demand;
  let rt = Oracle.runtime st.oracle name ~cores in
  let est = Oracle.estimate st.oracle name ~demand in
  if rt > est then failwith "Sched.Sim: runtime exceeds its upper bound";
  r.start <- t;
  r.finish <- t + rt;
  r.cores <- cores;
  r.cost <- Oracle.cost st.oracle name ~cores;
  r.backfilled <- backfilled;
  st.busy_core_ticks <- st.busy_core_ticks + (demand * rt);
  st.running <- (t + est, r) :: st.running;
  remove_queued st r;
  if st.reserved_head = r.spec.Job.id then st.reserved_head <- -1;
  Des.Event_heap.push st.heap ~time:r.finish ~id:(num_jobs st + r.spec.Job.id)

(* Earliest tick at which [demand] cores are certain to be free,
   assuming every running job holds its cores until its *estimated*
   finish; [spare] is how many cores beyond the head's demand that
   tick frees. Only called when demand > free_count, so some running
   job must contribute — and demand <= num_cores guarantees one
   will. *)
let reservation st ~demand =
  let by_estimate =
    List.sort
      (fun (e1, r1) (e2, r2) ->
        if e1 <> e2 then compare e1 e2 else compare r1.spec.Job.id r2.spec.Job.id)
      st.running
  in
  let acc = ref st.free_count in
  let found = ref None in
  List.iter
    (fun (ef, r) ->
      if !found = None then begin
        acc := !acc + Array.length r.cores;
        if !acc >= demand then found := Some (ef, !acc - demand)
      end)
    by_estimate;
  match !found with
  | Some sh -> sh
  | None -> failwith "Sched.Sim: reservation unreachable"

let rec schedule_pass st t =
  match st.queue with
  | [] -> st.blocked_free <- 0
  | head :: tail -> (
      (* A promise binds the job while it is the head; a
         higher-priority arrival that takes the head position voids
         the old head's promise. *)
      if st.reserved_head >= 0 && st.reserved_head <> head.spec.Job.id then begin
        st.records.(st.reserved_head).reserved_at <- -1;
        st.reserved_head <- -1
      end;
      match
        Policy.select st.policy (ctx st head.spec.Job.name)
          ~demand:head.spec.Job.demand
      with
      | Some cores ->
          if head.reserved_at >= 0 && t > head.reserved_at then
            failwith "Sched.Sim: head started after its promise";
          start_job st t head ~backfilled:false cores;
          schedule_pass st t
      | None ->
          if Policy.backfills st.policy then begin
            let shadow, spare0 = reservation st ~demand:head.spec.Job.demand in
            if head.reserved_at < 0 then begin
              st.reservations <- st.reservations + 1;
              st.reserved_head <- head.spec.Job.id
            end
            else if shadow > head.reserved_at then
              failwith "Sched.Sim: promise moved later";
            head.reserved_at <- shadow;
            (* EASY backfill: a later job may start now iff it is
               certain to end by the shadow tick, or it fits into the
               cores the shadow leaves spare beyond the head's
               demand. *)
            let spare = ref spare0 in
            List.iter
              (fun r ->
                let demand = r.spec.Job.demand in
                if demand <= st.free_count then begin
                  let est = Oracle.estimate st.oracle r.spec.Job.name ~demand in
                  let by_shadow = t + est <= shadow in
                  if by_shadow || demand <= !spare then
                    match
                      Policy.select st.policy (ctx st r.spec.Job.name) ~demand
                    with
                    | Some cores ->
                        if not by_shadow then spare := !spare - demand;
                        start_job st t r ~backfilled:true cores
                    | None -> ()
                end)
              tail;
            st.blocked_free <- st.free_count
          end
          else st.blocked_free <- st.free_count)

(* ------------------------------------------------------------------ *)

let run ?metrics ?(stretch_bound = 10) ~oracle ~policy specs =
  let n = Array.length specs in
  let seen = Array.make n false in
  Array.iter
    (fun (s : Job.spec) ->
      if s.Job.id < 0 || s.Job.id >= n || seen.(s.Job.id) then
        invalid_arg "Sched.Sim.run: job ids must be dense and unique";
      seen.(s.Job.id) <- true)
    specs;
  let num_cores = Oracle.num_cores oracle in
  let records = Array.make n None in
  Array.iter
    (fun (s : Job.spec) ->
      records.(s.Job.id) <-
        Some
          {
            spec = s;
            start = -1;
            finish = -1;
            cores = [||];
            cost = 0.;
            outcome = None;
            reserved_at = -1;
            backfilled = false;
          })
    specs;
  let records = Array.map Option.get records in
  let st =
    {
      oracle;
      policy;
      region_of_core =
        Array.init num_cores (Locmap.Region.of_node (Oracle.regions oracle));
      records;
      heap = Des.Event_heap.create ~capacity:((2 * n) + 1);
      free = Array.make num_cores true;
      free_count = num_cores;
      queue = [];
      running = [];
      reserved_head = -1;
      reservations = 0;
      busy_core_ticks = 0;
      wasted_core_ticks = 0;
      blocked_free = 0;
      last_t = 0;
    }
  in
  Array.iter
    (fun r -> Des.Event_heap.push st.heap ~time:r.spec.Job.arrival ~id:r.spec.Job.id)
    records;
  let first_arrival =
    Array.fold_left (fun acc r -> min acc r.spec.Job.arrival) max_int records
  in
  if n > 0 then st.last_t <- first_arrival;
  let last_finish = ref (if n = 0 then 0 else first_arrival) in
  let peak_queue = ref 0 in
  while not (Des.Event_heap.is_empty st.heap) do
    let t =
      match Des.Event_heap.peek_time st.heap with
      | Some t -> t
      | None -> assert false
    in
    (* Capacity that sat free while the head was blocked over
       [last_t, t): external fragmentation. *)
    st.wasted_core_ticks <- st.wasted_core_ticks + (st.blocked_free * (t - st.last_t));
    st.last_t <- t;
    (* Drain every event of this tick; completions release cores
       before arrivals queue, and each class goes in job-id order, so
       simultaneous events replay identically everywhere. *)
    let ids = ref [] in
    let rec drain () =
      match Des.Event_heap.peek_time st.heap with
      | Some t' when t' = t -> (
          match Des.Event_heap.pop st.heap with
          | Some (_, id) ->
              ids := id :: !ids;
              drain ()
          | None -> ())
      | _ -> ()
    in
    drain ();
    let ids = List.sort compare !ids in
    let finishes = List.filter (fun id -> id >= n) ids in
    let arrivals = List.filter (fun id -> id < n) ids in
    List.iter
      (fun id ->
        let r = records.(id - n) in
        Array.iter (fun c -> st.free.(c) <- true) r.cores;
        st.free_count <- st.free_count + Array.length r.cores;
        st.running <-
          List.filter (fun (_, x) -> x.spec.Job.id <> r.spec.Job.id) st.running;
        r.outcome <-
          Some
            (match r.spec.Job.deadline with
            | Some d when r.finish > d -> Job.Missed
            | _ -> Job.Completed);
        last_finish := max !last_finish r.finish)
      finishes;
    List.iter
      (fun id ->
        let r = records.(id) in
        if r.spec.Job.demand > num_cores then r.outcome <- Some Job.Killed
        else enqueue st r)
      arrivals;
    schedule_pass st t;
    peak_queue := max !peak_queue (List.length st.queue)
  done;
  (* Totals. Every job must have terminated: arrivals all processed,
     and a queued job always eventually starts because completions
     keep freeing cores until the whole machine is idle. *)
  let completed = ref 0
  and missed = ref 0
  and killed = ref 0
  and backfilled = ref 0 in
  let stretch_sum = ref 0.
  and stretch_max = ref 0.
  and stretched = ref 0
  and wait_sum = ref 0
  and started = ref 0 in
  let stretch_of r =
    let rt = r.finish - r.start in
    Float.max 1.
      (float_of_int (r.finish - r.spec.Job.arrival)
      /. float_of_int (max stretch_bound rt))
  in
  Array.iter
    (fun r ->
      (match r.outcome with
      | None -> failwith "Sched.Sim: job never terminated"
      | Some Job.Completed -> incr completed
      | Some Job.Missed -> incr missed
      | Some Job.Killed -> incr killed);
      if r.backfilled then incr backfilled;
      if r.start >= 0 then begin
        incr started;
        wait_sum := !wait_sum + (r.start - r.spec.Job.arrival);
        let s = stretch_of r in
        stretch_sum := !stretch_sum +. s;
        stretch_max := Float.max !stretch_max s;
        incr stretched
      end)
    records;
  let makespan = if n = 0 then 0 else max 0 (!last_finish - first_arrival) in
  let cap = float_of_int (num_cores * max 1 makespan) in
  let totals =
    {
      policy = Policy.name policy;
      jobs = n;
      completed = !completed;
      missed = !missed;
      killed = !killed;
      backfilled = !backfilled;
      reservations = st.reservations;
      makespan;
      utilization = (if n = 0 then 0. else float_of_int st.busy_core_ticks /. cap);
      mean_stretch =
        (if !stretched = 0 then 0.
         else !stretch_sum /. float_of_int !stretched);
      max_stretch = !stretch_max;
      miss_rate =
        (if !completed + !missed = 0 then 0.
         else float_of_int !missed /. float_of_int (!completed + !missed));
      fragmentation =
        (if n = 0 then 0. else float_of_int st.wasted_core_ticks /. cap);
      mean_wait =
        (if !started = 0 then 0.
         else float_of_int !wait_sum /. float_of_int !started);
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
      let labels = [ ("policy", Policy.name policy) ] in
      let c name v =
        Obs.Metrics.add (Obs.Metrics.counter m ~labels name) v
      in
      let outcome_counter o v =
        Obs.Metrics.add
          (Obs.Metrics.counter m
             ~labels:(labels @ [ ("outcome", Job.outcome_name o) ])
             "locmap_sched_jobs_total")
          v
      in
      outcome_counter Job.Completed !completed;
      outcome_counter Job.Missed !missed;
      outcome_counter Job.Killed !killed;
      c "locmap_sched_backfills_total" !backfilled;
      c "locmap_sched_reservations_total" st.reservations;
      let bp g v =
        Obs.Metrics.set_gauge (Obs.Metrics.gauge m ~labels g)
          (int_of_float (Float.round (v *. 10000.)))
      in
      bp "locmap_sched_utilization_bp" totals.utilization;
      bp "locmap_sched_miss_rate_bp" totals.miss_rate;
      bp "locmap_sched_fragmentation_bp" totals.fragmentation;
      Obs.Metrics.set_gauge
        (Obs.Metrics.gauge m ~labels "locmap_sched_queue_peak")
        !peak_queue;
      let stretch_h =
        Obs.Metrics.histogram m ~labels
          ~buckets:[| 1.; 1.5; 2.; 3.; 5.; 10.; 20.; 50. |]
          "locmap_sched_stretch"
      in
      let wait_h =
        Obs.Metrics.histogram m ~labels
          ~buckets:[| 0.; 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000. |]
          "locmap_sched_wait_ticks"
      in
      Array.iter
        (fun r ->
          if r.start >= 0 then begin
            Obs.Metrics.observe stretch_h (stretch_of r);
            Obs.Metrics.observe wait_h (float_of_int (r.start - r.spec.Job.arrival))
          end)
        records);
  { policy; records; totals }

(* ------------------------------------------------------------------ *)

let render (res : result) =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "# policy %s jobs %d\n" (Policy.name res.policy)
       (Array.length res.records));
  Array.iter
    (fun r ->
      let cores =
        String.concat "," (Array.to_list (Array.map string_of_int r.cores))
      in
      Buffer.add_string b
        (Printf.sprintf
           "job %d %s arrival=%d demand=%d priority=%d deadline=%s start=%d \
            finish=%d cores=%s cost=%.6f outcome=%s backfilled=%d reserved=%d\n"
           r.spec.Job.id r.spec.Job.name r.spec.Job.arrival r.spec.Job.demand
           r.spec.Job.priority
           (match r.spec.Job.deadline with
           | None -> "-"
           | Some d -> string_of_int d)
           r.start r.finish cores r.cost
           (match r.outcome with
           | None -> "?"
           | Some o -> Job.outcome_name o)
           (if r.backfilled then 1 else 0)
           r.reserved_at))
    res.records;
  let t = res.totals in
  Buffer.add_string b
    (Printf.sprintf
       "totals policy=%s jobs=%d completed=%d missed=%d killed=%d \
        backfilled=%d reservations=%d makespan=%d utilization=%.6f \
        mean_stretch=%.6f max_stretch=%.6f miss_rate=%.6f \
        fragmentation=%.6f mean_wait=%.6f\n"
       t.policy t.jobs t.completed t.missed t.killed t.backfilled
       t.reservations t.makespan t.utilization t.mean_stretch t.max_stretch
       t.miss_rate t.fragmentation t.mean_wait);
  Buffer.contents b

let totals_to_json (t : totals) =
  Printf.sprintf
    "{\"policy\":\"%s\",\"jobs\":%d,\"completed\":%d,\"missed\":%d,\
     \"killed\":%d,\"backfilled\":%d,\"reservations\":%d,\"makespan\":%d,\
     \"utilization\":%.6f,\"mean_stretch\":%.6f,\"max_stretch\":%.6f,\
     \"miss_rate\":%.6f,\"fragmentation\":%.6f,\"mean_wait\":%.6f}"
    t.policy t.jobs t.completed t.missed t.killed t.backfilled t.reservations
    t.makespan t.utilization t.mean_stretch t.max_stretch t.miss_rate
    t.fragmentation t.mean_wait

let pp_totals ppf (t : totals) =
  Format.fprintf ppf
    "@[<v>%-8s jobs %d (%d completed, %d missed, %d killed), %d backfilled@,\
    \         utilization %.1f%%  mean stretch %.3f  max %.2f  miss rate \
     %.1f%%@,\
    \         fragmentation %.1f%%  mean wait %.0f ticks  makespan %d@]"
    t.policy t.jobs t.completed t.missed t.killed t.backfilled
    (100. *. t.utilization) t.mean_stretch t.max_stretch
    (100. *. t.miss_rate) (100. *. t.fragmentation) t.mean_wait t.makespan
