(** Seedable synthetic job traces (Poisson arrivals, Zipf workload
    mix) over the oracle's workloads.

    The generator turns an {e offered load} — the fraction of the
    machine's core capacity the trace asks for — into a Poisson
    arrival rate using the realised mix's mean serial work, so a
    [load] of 1.0 offers roughly one machine's worth of core-ticks per
    tick whatever the workload mix samples.

    Randomness is drawn from one [Random.State.t] seeded with [seed],
    in a fixed documented order (workload mix first, then arrival
    instants, then per-job demand/priority/deadline draws), so a seed
    fixes the whole trace — the byte-determinism guarantees of
    [locmap sched] and [bench/sched_bench.exe] start here.

    {b Thread safety}: pure generation — every call allocates its own
    RNG and returns fresh specs; safe from any domain. *)

val default_demands : int array
(** The demand mix jobs sample uniformly: mostly region-sized
    requests with occasional near-machine-wide ones
    ([1,2,4,4,6,8,8,12,16,24]) — enough big jobs to force
    reservations and fragmentation. *)

val jobs :
  ?zipf_s:float ->
  ?demands:int array ->
  ?slack:float * float ->
  ?deadline_fraction:float ->
  ?priority_levels:int ->
  oracle:Oracle.t ->
  seed:int ->
  load:float ->
  n:int ->
  unit ->
  Job.spec array
(** [jobs ~oracle ~seed ~load ~n ()] generates [n] specs with dense
    ids in arrival order. [zipf_s] (default 1.1) skews the workload
    mix; [demands] (default {!default_demands}) are capped at the
    machine's core count; [slack] (default [(2.0, 6.0)]) bounds the
    uniform deadline slack factor — a job's deadline is its arrival
    plus slack times its upper-bound estimate; [deadline_fraction]
    (default 1.0) is the share of jobs that get a deadline at all;
    [priority_levels] (default 1, i.e. all priority 0) samples
    priorities uniformly in [0 .. levels-1]. Raises [Invalid_argument]
    on a non-positive [load] or [n], an empty [demands], or a
    [slack] pair with [lo > hi] or [lo <= 0]. *)

val to_trace : Job.spec array -> string
(** The trace-file text (one {!Job.to_line} per job plus a header
    comment) — what [locmap sched --emit-trace] writes and
    [--trace] reads back. *)
