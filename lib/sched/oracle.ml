type entry = {
  name : string;
  kind : Ir.Program.kind;
  work : int;
  mai : float array;
  alpha : float;
}

type t = {
  cfg : Machine.Config.t;
  regions : Locmap.Region.t;
  beta : float;
  order : string list;
  entries : (string, entry) Hashtbl.t;
  rm_dist : float array array;  (** region -> MC -> link distance *)
  d_mc : float;  (** max region-to-MC distance (normaliser) *)
  d_rr : float;  (** max region-grid distance (normaliser) *)
  region_of_core : int array;
}

let analyse ?pool ?metrics ?symbolic cfg name ~scale ~work_unit =
  let entry_ = Workloads.Registry.find name in
  let p = Harness.Experiment.prepare ~scale entry_ in
  let pt = Mem.Page_table.create ~page_size:cfg.Machine.Config.page_size () in
  let amap = Machine.Addr_map.create cfg pt in
  let sets =
    Ir.Iter_set.partition p.Harness.Experiment.prog
      ~fraction:cfg.Machine.Config.iter_set_fraction
  in
  let summaries =
    Locmap.Analysis.cme_summaries ?pool ?metrics ?symbolic cfg amap
      p.Harness.Experiment.trace ~sets
  in
  let merged =
    match Array.to_list summaries with
    | [] ->
        Locmap.Summary.create
          ~num_mcs:(Machine.Config.num_mcs cfg)
          ~num_regions:(Machine.Config.num_regions cfg)
    | s :: tl -> List.fold_left Locmap.Summary.merge s tl
  in
  {
    name;
    kind = entry_.Workloads.Registry.kind;
    work = max 1 (Locmap.Summary.accesses merged / work_unit);
    mai = Locmap.Summary.mai merged;
    alpha = Locmap.Summary.alpha merged;
  }

let build ?pool ?metrics ?symbolic ?(beta = 0.8) ?(scale = 0.1)
    ?(work_unit = 64) cfg names =
  if beta <= 0. then invalid_arg "Oracle.build: non-positive beta";
  if scale <= 0. then invalid_arg "Oracle.build: non-positive scale";
  if work_unit <= 0 then invalid_arg "Oracle.build: non-positive work_unit";
  let regions = Locmap.Region.create cfg in
  let topo = Machine.Config.topology cfg in
  let num_mcs = Machine.Config.num_mcs cfg in
  let nr = Locmap.Region.count regions in
  let rm_dist =
    Array.init nr (fun r ->
        let c = Locmap.Region.center regions r in
        Array.init num_mcs (fun m ->
            Noc.Topology.distance_f topo c (Noc.Topology.mc_coord topo m)))
  in
  let d_mc =
    Array.fold_left
      (fun acc row -> Array.fold_left Float.max acc row)
      1. rm_dist
  in
  let d_rr =
    float_of_int
      (max 1
         (Locmap.Region.grid_rows regions - 1
         + (Locmap.Region.grid_cols regions - 1)))
  in
  let region_of_core =
    Array.init (Machine.Config.num_cores cfg) (Locmap.Region.of_node regions)
  in
  let entries = Hashtbl.create 32 in
  List.iter
    (fun name ->
      if not (Hashtbl.mem entries name) then
        Hashtbl.replace entries name
          (analyse ?pool ?metrics ?symbolic cfg name ~scale ~work_unit))
    names;
  { cfg; regions; beta; order = names; entries; rm_dist; d_mc; d_rr;
    region_of_core }

let config t = t.cfg
let regions t = t.regions
let num_cores t = Array.length t.region_of_core
let beta t = t.beta
let names t = t.order
let entry t name = Hashtbl.find t.entries name

let mean_work t =
  let n = List.length t.order in
  if n = 0 then 1.
  else
    List.fold_left
      (fun acc name -> acc +. float_of_int (entry t name).work)
      0. t.order
    /. float_of_int n

(* Core-weighted region occupancy of a placement: w.(r) is the
   fraction of the job's cores sitting in region r. *)
let region_weights t ~cores =
  let n = Array.length cores in
  if n = 0 then invalid_arg "Oracle.cost: empty core set";
  let w = Array.make (Locmap.Region.count t.regions) 0. in
  let unit_ = 1. /. float_of_int n in
  Array.iter
    (fun c ->
      if c < 0 || c >= Array.length t.region_of_core then
        invalid_arg "Oracle.cost: core out of range";
      w.(t.region_of_core.(c)) <- w.(t.region_of_core.(c)) +. unit_)
    cores;
  w

let cost t name ~cores =
  let e = entry t name in
  let w = region_weights t ~cores in
  let nr = Array.length w in
  (* MAI-weighted mean region->MC distance: where this workload's miss
     traffic actually goes, from where the job would sit. *)
  let mc_term = ref 0. in
  for r = 0 to nr - 1 do
    if w.(r) > 0. then
      Array.iteri
        (fun m a -> mc_term := !mc_term +. (w.(r) *. a *. t.rm_dist.(r).(m)))
        e.mai
  done;
  let mc_term = !mc_term /. t.d_mc in
  (* Core-weighted mean pairwise region distance: scatter a contiguous
     block avoids. *)
  let spread = ref 0. in
  for r = 0 to nr - 1 do
    if w.(r) > 0. then
      for r' = 0 to nr - 1 do
        if w.(r') > 0. then
          spread :=
            !spread
            +. w.(r) *. w.(r')
               *. float_of_int (Locmap.Region.grid_distance t.regions r r')
      done
  done;
  let spread = !spread /. t.d_rr in
  Float.min 1. (((1. -. e.alpha) *. mc_term) +. (e.alpha *. spread))

let dilation t name ~cores = 1. +. (t.beta *. cost t name ~cores)

let serial_ticks work demand =
  (work + demand - 1) / demand (* ceil division *)

let runtime t name ~cores =
  let e = entry t name in
  let base = serial_ticks e.work (Array.length cores) in
  max 1
    (int_of_float
       (Float.ceil (float_of_int base *. dilation t name ~cores)))

let estimate t name ~demand =
  if demand <= 0 then invalid_arg "Oracle.estimate: non-positive demand";
  let e = entry t name in
  let base = serial_ticks e.work demand in
  max 1 (int_of_float (Float.ceil (float_of_int base *. (1. +. t.beta))))
