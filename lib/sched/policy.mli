(** The three pluggable placement policies.

    All three serve the wait queue in {!Job.compare_queue} order and
    differ in two dimensions:

    - {e when} a job may start: {!Fcfs} starts jobs strictly in queue
      order (a blocked head blocks everyone); {!Easy} and {!Local} use
      EASY backfilling — the blocked head gets a reservation computed
      from upper-bound runtime estimates, and later jobs may start out
      of order only if they provably cannot delay it;
    - {e where} a job runs: {!Fcfs} and {!Easy} are
      location-oblivious (lowest-numbered free cores); {!Local} places
      each job on a contiguous block of mesh regions, choosing among
      candidate blocks by the {!Oracle}'s affinity cost, and falls
      back to the oblivious fit when fragmentation leaves no block
      with enough free cores — so it is never {e less} able to start a
      job than {!Easy}.

    {!select} is the placement half: given the free map and a cost
    function it returns the cores a job would get, or [None] when not
    enough cores are free. The timing half (reservations, backfill
    legality) lives in {!Sim}.

    {b Thread safety}: policies are pure values; {!select} only reads
    the context it is given (the caller owns the free map) and
    allocates its result, so concurrent calls on separate contexts are
    safe. *)

type t = Fcfs | Easy | Local

val all : t list
(** In comparison order: [Fcfs; Easy; Local]. *)

val name : t -> string
(** ["fcfs"], ["easy"], ["local"]. *)

val of_string : string -> (t, string) result

val backfills : t -> bool
(** Whether the policy runs EASY backfilling ({!Easy} and {!Local}). *)

type ctx = {
  regions : Locmap.Region.t;
  region_of_core : int array;
  free : bool array;  (** per core; read-only to {!select} *)
  free_count : int;
  score : int array -> float;
      (** oracle cost of a candidate core set for the job being
          placed (see {!Oracle.cost}) *)
}

val select : t -> ctx -> demand:int -> int array option
(** The cores the policy gives a [demand]-core job right now, sorted
    ascending, or [None] iff [demand > free_count] (every policy can
    place any job that numerically fits — {!Local}'s contiguous
    search degrades to the oblivious fit rather than failing). Raises
    [Invalid_argument] on a non-positive demand. *)
