(** Seedable arrival-process and workload-mix distributions.

    One implementation of the load shapes every traffic generator in
    the repo uses: open-loop Poisson arrivals (exponential
    inter-arrival gaps) and a Zipf-skewed choice over a universe whose
    popularity ranks are decoupled from index order by a seeded
    permutation. [bench/loadgen_bench.exe] draws its wire-request
    schedule from here and [Sched.Synth] draws its job traces — the
    two benches used to hand-roll the same distributions separately.

    Every sampler consumes randomness from a caller-supplied
    [Random.State.t] in a documented order, so a fixed seed fixes the
    whole sample sequence (the byte-determinism guarantees of the
    scheduler bench and the chaos suites rely on this).

    {b Thread safety}: the module holds no state of its own; samplers
    mutate only the caller's [Random.State.t] (and {!zipf} values are
    immutable after construction). An RNG state must not be shared
    across domains without external synchronisation. *)

val shuffle : Random.State.t -> int -> int array
(** [shuffle rng n] is a Fisher–Yates permutation of [0 .. n-1],
    consuming exactly [n - 1] draws ([Random.State.int] with bounds
    [n, n-1, ..., 2]). Raises [Invalid_argument] on [n < 0]. *)

type zipf
(** A Zipf(s) sampler over [0 .. n-1]: rank [k] (0-based, after a
    seeded permutation of ranks to indices) has weight
    [1 / (k + 1)^s]. *)

val zipf : Random.State.t -> s:float -> n:int -> zipf
(** Builds the sampler, consuming the {!shuffle} draws for the rank
    permutation. Raises [Invalid_argument] on [n <= 0]. *)

val zipf_sample : zipf -> Random.State.t -> int
(** One index, consuming one [Random.State.float] draw. *)

val exponential : Random.State.t -> rate:float -> float
(** One Exp(rate) variate ([-ln(1 - u) / rate]), consuming one draw.
    Raises [Invalid_argument] on a non-positive rate. *)

val poisson_times : Random.State.t -> rate:float -> n:int -> float array
(** [n] absolute arrival instants of a Poisson process with intensity
    [rate]: a running sum of {!exponential} gaps, consuming [n] draws.
    The result is strictly increasing (gaps are positive). *)
