(** The cluster scheduler's job model.

    A job is one mapping request elevated to cluster granularity: it
    names a registry workload, arrives at a tick, demands a number of
    cores, and optionally carries a priority class and an absolute
    deadline. The scheduler admits jobs onto regions of the simulated
    mesh; the workload name is what the {!Oracle} uses to price a
    candidate placement.

    Jobs also have a one-line text form (the {e trace file} format of
    [locmap sched --trace]):

    {v
    # arrival  workload  demand  [priority]  [deadline|-]
    0    mxm      8   0   52000
    120  jacobi3d 4
    v}

    Whitespace-separated fields; [#] starts a comment line; a missing
    priority is 0 and a missing (or [-]) deadline means none.

    {b Thread safety}: specs are immutable; parsing and printing
    allocate fresh values, so everything here may be used concurrently
    from any domain. *)

type spec = {
  id : int;  (** dense index, also the event tie-break *)
  name : string;  (** registry workload this job maps *)
  arrival : int;  (** submission tick (>= 0) *)
  demand : int;  (** cores requested (> 0) *)
  priority : int;  (** larger = more urgent; 0 = normal *)
  deadline : int option;  (** absolute tick the answer is due by *)
}

type outcome =
  | Completed  (** finished by its deadline (or had none) *)
  | Missed  (** finished, but past its deadline *)
  | Killed
      (** never ran: the demand exceeds the machine, rejected at
          arrival *)

val outcome_name : outcome -> string

val compare_queue : spec -> spec -> int
(** Wait-queue order: higher priority first, then earlier arrival,
    then lower id — the total order every policy serves jobs in. *)

val validate : num_cores:int -> spec -> (unit, string) result
(** Structural checks independent of the machine's current state:
    positive demand, non-negative arrival/priority, deadline after
    arrival. A demand beyond [num_cores] is {e not} an error here —
    the scheduler kills such a job at arrival (so a trace file can
    deliberately exercise the [Killed] path). *)

val of_line : id:int -> string -> (spec option, string) result
(** Parses one trace-file line; [Ok None] for a blank or comment
    line. *)

val to_line : spec -> string
(** The canonical one-line form ({!of_line} round-trips it). *)

val of_lines : string list -> (spec array, string) result
(** Parses a whole trace file (ids assigned in line order), sorting
    the result by {!compare_queue}-independent arrival order: jobs are
    returned sorted by [(arrival, id)]. The first malformed line fails
    the parse with a message naming its 1-based line number. *)
