let default_demands = [| 1; 2; 4; 4; 6; 8; 8; 12; 16; 24 |]

let jobs ?(zipf_s = 1.1) ?(demands = default_demands) ?(slack = (2.0, 6.0))
    ?(deadline_fraction = 1.0) ?(priority_levels = 1) ~oracle ~seed ~load ~n
    () =
  if load <= 0. then invalid_arg "Synth.jobs: non-positive load";
  if n <= 0 then invalid_arg "Synth.jobs: non-positive n";
  if Array.length demands = 0 then invalid_arg "Synth.jobs: empty demands";
  let slack_lo, slack_hi = slack in
  if slack_lo <= 0. || slack_lo > slack_hi then
    invalid_arg "Synth.jobs: invalid slack range";
  if priority_levels < 1 then
    invalid_arg "Synth.jobs: priority_levels must be at least 1";
  let rng = Random.State.make [| seed |] in
  let names = Array.of_list (Oracle.names oracle) in
  let num_cores = Oracle.num_cores oracle in
  (* 1. Workload mix (Zipf over the oracle's workloads). *)
  let z = Arrivals.zipf rng ~s:zipf_s ~n:(Array.length names) in
  let mix = Array.init n (fun _ -> names.(Arrivals.zipf_sample z rng)) in
  (* 2. Arrival instants: offered load -> rate via the realised mix's
     mean serial work (core-ticks per job ~ serial work). *)
  let mean_work =
    Array.fold_left
      (fun acc name -> acc +. float_of_int (Oracle.entry oracle name).Oracle.work)
      0. mix
    /. float_of_int n
  in
  let rate = load *. float_of_int num_cores /. mean_work in
  let times = Arrivals.poisson_times rng ~rate ~n in
  (* 3. Per-job demand, priority and deadline draws, in job order. *)
  Array.init n (fun k ->
      let name = mix.(k) in
      let arrival = int_of_float (Float.round times.(k)) in
      let demand =
        min num_cores demands.(Random.State.int rng (Array.length demands))
      in
      let priority =
        if priority_levels = 1 then 0 else Random.State.int rng priority_levels
      in
      let deadline =
        let u = Random.State.float rng 1. in
        if u <= deadline_fraction then begin
          let s = slack_lo +. Random.State.float rng (slack_hi -. slack_lo) in
          let est = Oracle.estimate oracle name ~demand in
          Some (arrival + max 1 (int_of_float (Float.ceil (s *. float_of_int est))))
        end
        else None
      in
      { Job.id = k; name; arrival; demand; priority; deadline })

let to_trace specs =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# arrival workload demand priority deadline\n";
  Array.iter
    (fun s ->
      Buffer.add_string b (Job.to_line s);
      Buffer.add_char b '\n')
    specs;
  Buffer.contents b
