(** Banked, row-buffer DRAM timing model (one instance per MC).

    The model captures the contention effects that matter to the paper's
    evaluation: per-bank row-buffer hits vs. misses, bank-level
    parallelism, and channel serialisation of data bursts. Timings are
    expressed in core cycles at 1 GHz (Table 4: DDR3-1333; Figure 12:
    DDR-4).

    {b Thread safety}: not thread-safe. Bank and channel occupancy are
    mutated in place; each engine run builds its own per-MC instances
    and keeps them domain-confined. *)

type kind =
  | Ddr3_1333
  | Ddr4_2400

type t

val create : ?kind:kind -> row_buffer:int -> unit -> t
(** [create ~row_buffer ()] builds an idle device. [row_buffer] is the
    row-buffer (page) size in bytes — 2 KB in Table 4. Default kind is
    {!Ddr3_1333}. *)

val kind : t -> kind

val service : t -> now:int -> addr:int -> int
(** [service t ~now ~addr] issues a line transfer for [addr] at cycle
    [now] and returns its completion cycle. Updates open-row, bank and
    channel occupancy state. *)

val reset : t -> unit

(** {2 Statistics} *)

val row_hits : t -> int

val row_misses : t -> int

val accesses : t -> int

val row_hit_rate : t -> float

val pp_kind : Format.formatter -> kind -> unit
